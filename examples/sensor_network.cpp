// Scenario from the paper's motivation: a mobile sensor network with a base
// station (BST). Cheap sensors boot with garbage memory and suffer transient
// faults; the BST must keep them uniquely named so higher layers (counting,
// leader election, data collection) can run on top.
//
// Uses Protocol 2 (Prop 16): self-stabilizing symmetric naming under weak
// fairness with P+1 states — even the BST may start corrupted. The demo
// converges, then injects bursts of memory corruption and shows recovery.
//
//   ./sensor_network --n 8 --p 8 --faults 5 --seed 7
#include <cstdio>

#include "core/engine.h"
#include "naming/selfstab_weak_naming.h"
#include "sched/random_scheduler.h"
#include "sim/fault_injector.h"
#include "sim/runner.h"
#include "util/cli.h"

namespace {

void printPopulation(const ppn::SelfStabWeakNaming& protocol,
                     const ppn::Configuration& c, const char* tag) {
  std::printf("%-12s %s\n", tag,
              c.toString(protocol.describeLeaderState(*c.leader)).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  ppn::Cli cli("sensor_network",
               "self-stabilizing naming with a base station (Protocol 2)");
  const auto* n = cli.addUint("n", "number of sensors N", 8);
  const auto* p = cli.addUint("p", "known upper bound P on N", 8);
  const auto* faults = cli.addUint("faults", "number of fault bursts", 5);
  const auto* burst = cli.addUint("burst", "sensors corrupted per burst", 3);
  const auto* seed = cli.addUint("seed", "rng seed", 7);
  if (!cli.parse(argc, argv)) return 1;
  if (*n == 0 || *n > *p || *p > 12) {
    std::fprintf(stderr, "need 1 <= N <= P <= 12 (leader-state enumeration)\n");
    return 1;
  }

  const ppn::SelfStabWeakNaming protocol(static_cast<ppn::StateId>(*p));
  ppn::Rng rng(*seed);

  // Sensors AND base station boot with arbitrary memory contents.
  ppn::Engine engine(
      protocol, ppn::arbitraryConfiguration(
                    protocol, static_cast<std::uint32_t>(*n), rng));
  ppn::RandomScheduler scheduler(engine.numParticipants(), rng.next());
  printPopulation(protocol, engine.config(), "boot:");

  const ppn::RunLimits limits{20'000'000, 64};
  const ppn::RunOutcome first = ppn::runUntilSilent(engine, scheduler, limits);
  if (!first.namingSolved) {
    std::fprintf(stderr, "initial convergence failed (budget too small?)\n");
    return 2;
  }
  printPopulation(protocol, engine.config(), "named:");
  std::printf("             converged after %llu interactions\n\n",
              static_cast<unsigned long long>(first.convergenceInteractions));

  const ppn::FaultPlan plan{
      .corruptAgents = static_cast<std::uint32_t>(*burst),
      .corruptLeader = true,
  };
  for (std::uint64_t f = 0; f < *faults; ++f) {
    ppn::injectFault(engine, plan, rng);
    printPopulation(protocol, engine.config(), "corrupted:");
    const std::uint64_t before = engine.totalInteractions();
    const ppn::RunOutcome rec = ppn::runUntilSilent(engine, scheduler, limits);
    if (!rec.namingSolved) {
      std::fprintf(stderr, "recovery %llu failed\n",
                   static_cast<unsigned long long>(f));
      return 2;
    }
    printPopulation(protocol, engine.config(), "recovered:");
    std::printf("             self-stabilized in %llu interactions\n\n",
                static_cast<unsigned long long>(engine.lastChangeAt() > before
                                                    ? engine.lastChangeAt() - before
                                                    : 0));
  }
  std::printf("all %llu fault bursts repaired; names stable.\n",
              static_cast<unsigned long long>(*faults));
  return 0;
}
