// Naming as a design module (paper introduction): compose the
// self-stabilizing naming protocol with a payload task — exact majority —
// and derive leader election from the converged names, all in one running
// population.
//
//   ./composition --n 8 --ayes 5 --seed 3
#include <cstdio>

#include "core/engine.h"
#include "naming/asymmetric_naming.h"
#include "sched/random_scheduler.h"
#include "tasks/composed_protocol.h"
#include "tasks/leader_election.h"
#include "tasks/majority.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  ppn::Cli cli("composition",
               "naming || majority, with leader election as a by-product");
  const auto* n = cli.addUint("n", "population size (P = N)", 8);
  const auto* ayes = cli.addUint("ayes", "initial strong-A supporters", 5);
  const auto* seed = cli.addUint("seed", "rng seed", 3);
  if (!cli.parse(argc, argv)) return 1;
  if (*n < 2 || *ayes > *n || 2 * *ayes == *n) {
    std::fprintf(stderr, "need n >= 2, ayes <= n, and no tie (4-state limit)\n");
    return 1;
  }

  const ppn::AsymmetricNaming naming(static_cast<ppn::StateId>(*n));
  const ppn::MajorityProtocol majority;
  const ppn::ComposedProtocol combo(naming, majority);
  std::printf("composed protocol: %s — %u states per agent (%u x %u)\n",
              combo.name().c_str(), combo.numMobileStates(),
              naming.numMobileStates(), majority.numMobileStates());

  ppn::Rng rng(*seed);
  ppn::Configuration start;
  for (std::uint64_t i = 0; i < *n; ++i) {
    const auto nameState = static_cast<ppn::StateId>(rng.below(*n));
    const ppn::StateId opinion = (i < *ayes) ? ppn::MajorityProtocol::kStrongA
                                             : ppn::MajorityProtocol::kStrongB;
    start.mobile.push_back(combo.compose(nameState, opinion));
  }
  ppn::Engine engine(combo, std::move(start));
  ppn::RandomScheduler sched(engine.numParticipants(), rng.next());

  const bool expectA = 2 * *ayes > *n;
  std::uint64_t steps = 0;
  for (; steps < 50'000'000; ++steps) {
    engine.step(sched.next());
    if (steps % 128 != 0) continue;
    ppn::Configuration names, opinions;
    for (const ppn::StateId s : engine.config().mobile) {
      names.mobile.push_back(combo.componentA(s));
      opinions.mobile.push_back(combo.componentB(s));
    }
    const bool namingDone = ppn::isNamingSolved(naming, names);
    const bool majorityDone =
        expectA ? ppn::allOpinionA(opinions) : ppn::allOpinionB(opinions);
    if (namingDone && majorityDone) {
      std::printf("converged after ~%llu interactions\n",
                  static_cast<unsigned long long>(steps));
      std::printf("  names:    %s\n", names.toString().c_str());
      std::printf("  majority: %s (initial %llu A vs %llu B)\n",
                  expectA ? "A" : "B",
                  static_cast<unsigned long long>(*ayes),
                  static_cast<unsigned long long>(*n - *ayes));
      // Leader election by-product: N = P, so names are exactly {0..N-1}
      // and the holder of name 0 is the unique leader.
      for (std::uint64_t agent = 0; agent < *n; ++agent) {
        if (names.mobile[agent] == 0) {
          std::printf("  leader:   agent %llu (holds name 0; unique=%s)\n",
                      static_cast<unsigned long long>(agent),
                      ppn::uniqueLeaderElected(names, 0) ? "yes" : "no");
        }
      }
      return 0;
    }
  }
  std::fprintf(stderr, "did not converge within the budget\n");
  return 2;
}
