// Quickstart: name an anonymous population with the space-optimal
// self-stabilizing asymmetric protocol (Proposition 12).
//
//   ./quickstart --n 10 --p 10 --seed 42
//
// Walks through the library's three core steps: build a protocol, build a
// starting configuration, run it under a scheduler until silent.
#include <cstdio>

#include "core/engine.h"
#include "naming/asymmetric_naming.h"
#include "sched/random_scheduler.h"
#include "sim/runner.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  ppn::Cli cli("quickstart",
               "space-optimal self-stabilizing naming (Proposition 12)");
  const auto* n = cli.addUint("n", "population size N", 10);
  const auto* p = cli.addUint("p", "known upper bound P on N", 10);
  const auto* seed = cli.addUint("seed", "rng seed", 42);
  if (!cli.parse(argc, argv)) return 1;
  if (*n == 0 || *n > *p) {
    std::fprintf(stderr, "need 1 <= N <= P\n");
    return 1;
  }

  // 1. The protocol: P states per agent, one asymmetric rule
  //    (s, s) -> (s, s+1 mod P), no leader, no initialization.
  const ppn::AsymmetricNaming protocol(static_cast<ppn::StateId>(*p));

  // 2. An adversarially (randomly) initialized configuration — the protocol
  //    is self-stabilizing, so any start is fine.
  ppn::Rng rng(*seed);
  ppn::Configuration start = ppn::arbitraryConfiguration(
      protocol, static_cast<std::uint32_t>(*n), rng);
  std::printf("start:     %s\n", start.toString().c_str());

  // 3. Run under the uniform random scheduler (globally fair w.p. 1; the
  //    protocol also tolerates any weakly fair scheduler) until silent.
  ppn::Engine engine(protocol, std::move(start));
  ppn::RandomScheduler scheduler(engine.numParticipants(), rng.next());
  const ppn::RunOutcome out =
      ppn::runUntilSilent(engine, scheduler, ppn::RunLimits{});

  std::printf("converged: %s\n", out.finalConfig.toString().c_str());
  std::printf("named=%s  interactions=%llu  parallel-time=%.1f\n",
              out.namingSolved ? "yes" : "no",
              static_cast<unsigned long long>(out.convergenceInteractions),
              out.parallelTime());
  return out.namingSolved ? 0 : 2;
}
