// Weak vs. global fairness, hands-on — the paper's Section 2 example plus
// the naming protocols' fairness boundaries.
//
// Part 1 replays the black/white example: an adversarial weakly fair
// schedule keeps the lone black token jumping forever, while the random
// (globally fair) scheduler terminates all-black.
//
// Part 2 shows the same phenomenon on naming: Protocol 3 (P states,
// initialized leader) converges under the random scheduler at N = P, yet the
// exact weak-fairness checker exhibits a weakly fair schedule on which it
// can never converge (the Theorem 11 boundary).
//
//   ./fairness_explorer --p 3 --steps 12 [--progress]
#include <cstdio>
#include <memory>

#include "analysis/initial_sets.h"
#include "analysis/weak_checker.h"
#include "core/engine.h"
#include "naming/color_example.h"
#include "naming/global_leader_naming.h"
#include "obs/progress.h"
#include "sched/adversary.h"
#include "sched/random_scheduler.h"
#include "sim/runner.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  ppn::Cli cli("fairness_explorer", "weak vs global fairness demonstrations");
  const auto* p = cli.addUint("p", "bound P for part 2 (2..4)", 3);
  const auto* steps = cli.addUint("steps", "adversary steps to display", 12);
  const auto* seed = cli.addUint("seed", "rng seed", 5);
  const auto* progress = cli.addFlag(
      "progress", "print checker nodes/sec + ETA to stderr (part 2)");
  if (!cli.parse(argc, argv)) return 1;
  if (*p < 2 || *p > 4) {
    std::fprintf(stderr, "need 2 <= p <= 4\n");
    return 1;
  }

  std::printf("== Part 1: the black/white example (paper, Section 2) ==\n");
  const ppn::ColorExample colors;
  {
    ppn::Engine engine(colors, ppn::Configuration{{1, 0, 0}, std::nullopt});
    ppn::CallbackScheduler adversary("token-spinner", [](std::uint64_t t) {
      switch (t % 3) {
        case 0: return ppn::Interaction{0, 1};
        case 1: return ppn::Interaction{1, 2};
        default: return ppn::Interaction{2, 0};
      }
    });
    std::printf("adversarial weakly fair schedule (token never dies):\n");
    std::printf("  t=0  %s\n", engine.config().toString().c_str());
    for (std::uint64_t t = 1; t <= *steps; ++t) {
      engine.step(adversary.next());
      std::printf("  t=%-3llu%s\n", static_cast<unsigned long long>(t),
                  engine.config().toString().c_str());
    }
    std::printf("  ... repeats forever; every pair interacts infinitely often,"
                " yet never all-black.\n");
  }
  {
    ppn::Engine engine(colors, ppn::Configuration{{1, 0, 0}, std::nullopt});
    ppn::RandomScheduler sched(3, *seed);
    std::uint64_t t = 0;
    while (!ppn::allBlack(engine.config())) {
      engine.step(sched.next());
      ++t;
    }
    std::printf("globally fair (random) scheduler: all-black after %llu "
                "interactions.\n\n",
                static_cast<unsigned long long>(t));
  }

  std::printf("== Part 2: Protocol 3 at the Theorem 11 boundary (P=%llu) ==\n",
              static_cast<unsigned long long>(*p));
  const ppn::GlobalLeaderNaming proto(static_cast<ppn::StateId>(*p));
  {
    ppn::Rng rng(*seed);
    ppn::Engine engine(
        proto, ppn::arbitraryConfiguration(
                   proto, static_cast<std::uint32_t>(*p), rng));
    ppn::RandomScheduler sched(engine.numParticipants(), rng.next());
    const ppn::RunOutcome out =
        ppn::runUntilSilent(engine, sched, ppn::RunLimits{20'000'000, 64});
    std::printf("random scheduler (global fairness w.p.1): named=%s after %llu"
                " interactions\n",
                out.namingSolved ? "yes" : "no",
                static_cast<unsigned long long>(out.convergenceInteractions));
  }
  {
    std::unique_ptr<ppn::ExploreProgressReporter> reporter;
    if (*progress) {
      reporter = std::make_unique<ppn::ExploreProgressReporter>(4'000'000);
    }
    const ppn::WeakVerdict v = ppn::checkWeakFairness(
        proto, ppn::namingProblem(proto),
        ppn::allConcreteConfigurations(proto, static_cast<std::uint32_t>(*p)),
        4'000'000, nullptr, reporter.get());
    std::printf("exact weak-fairness checker: solves=%s (%s)\n",
                v.solves ? "yes" : "no", v.reason.c_str());
    if (v.witness.has_value()) {
      std::printf("  a weakly fair adversary can trap the system around %s\n",
                  v.witness->toString(
                        proto.describeLeaderState(*v.witness->leader))
                      .c_str());
    }
    std::printf("=> P states suffice under global fairness (Prop 17) but not "
                "under weak fairness (Theorem 11); the P+1-state Protocol 2 "
                "closes the gap.\n");
  }
  return 0;
}
