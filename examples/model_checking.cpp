// Drive the exact model checker on any protocol/assumption combination from
// the command line — the interactive companion to the Table 1 bench.
//
//   ./model_checking --protocol=selfstab-weak --p=3 --n=3 --fairness=weak --init=arbitrary
//
// Prints the verdict, the explored state-space size and, for failures, a
// witness configuration. --progress streams nodes/sec + ETA-to-cap lines to
// stderr while the checker explores (handy at p=4, where the graph runs to
// millions of configurations).
#include <cstdio>
#include <memory>
#include <string>

#include "analysis/global_checker.h"
#include "analysis/initial_sets.h"
#include "analysis/weak_checker.h"
#include "naming/registry.h"
#include "obs/progress.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  ppn::Cli cli("model_checking", "exact fairness checker front-end");
  const auto* key = cli.addString(
      "protocol", "one of: asymmetric, symmetric-global, leader-uniform, "
                  "counting, selfstab-weak, global-leader",
      "selfstab-weak");
  const auto* p = cli.addUint("p", "bound P (2..4 recommended)", 3);
  const auto* n = cli.addUint("n", "population size N <= P", 3);
  const auto* fairness = cli.addString("fairness", "weak | global", "weak");
  const auto* init =
      cli.addString("init", "arbitrary | uniform | all-uniform", "arbitrary");
  const auto* maxNodes = cli.addUint("max-nodes", "exploration cap", 4'000'000);
  const auto* progress =
      cli.addFlag("progress", "print nodes/sec + ETA to stderr while exploring");
  if (!cli.parse(argc, argv)) return 1;

  std::unique_ptr<ppn::ExploreProgressReporter> reporter;
  if (*progress) {
    reporter = std::make_unique<ppn::ExploreProgressReporter>(*maxNodes);
  }

  std::unique_ptr<ppn::Protocol> proto;
  try {
    proto = ppn::makeProtocol(*key, static_cast<ppn::StateId>(*p));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("protocol:    %s\n", proto->name().c_str());
  std::printf("assumptions: %s\n", ppn::protocolAssumptions(*key).c_str());

  std::vector<ppn::Configuration> initials;
  const auto numMobile = static_cast<std::uint32_t>(*n);
  try {
    if (*init == "arbitrary") {
      initials = (*fairness == "global")
                     ? ppn::allCanonicalConfigurations(*proto, numMobile)
                     : ppn::allConcreteConfigurations(*proto, numMobile);
    } else if (*init == "uniform") {
      initials = ppn::declaredUniformInitials(*proto, numMobile);
    } else if (*init == "all-uniform") {
      initials = ppn::allUniformInitials(*proto, numMobile);
    } else {
      std::fprintf(stderr, "unknown --init '%s'\n", init->c_str());
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot build initial set: %s\n", e.what());
    return 1;
  }
  std::printf("initials:    %zu configuration(s), N=%u\n", initials.size(),
              numMobile);

  const ppn::Problem problem = ppn::namingProblem(*proto);
  if (*fairness == "global") {
    const ppn::GlobalVerdict v = ppn::checkGlobalFairness(
        *proto, problem, initials, *maxNodes, reporter.get());
    std::printf("explored:    %zu canonical configurations\n", v.numConfigs);
    std::printf("verdict:     %s — %s\n",
                !v.explored ? "UNKNOWN" : (v.solves ? "SOLVES" : "FAILS"),
                v.reason.c_str());
    if (v.witness.has_value()) {
      std::printf("witness:     %s\n",
                  v.witness
                      ->toString(v.witness->leader.has_value()
                                     ? proto->describeLeaderState(
                                           *v.witness->leader)
                                     : "")
                      .c_str());
    }
    return v.explored && v.solves ? 0 : 2;
  }
  if (*fairness != "weak") {
    std::fprintf(stderr, "unknown --fairness '%s'\n", fairness->c_str());
    return 1;
  }
  const ppn::WeakVerdict v = ppn::checkWeakFairness(
      *proto, problem, initials, *maxNodes, nullptr, reporter.get());
  std::printf("explored:    %zu concrete configurations, %zu SCCs\n",
              v.numConfigs, v.numSccs);
  std::printf("verdict:     %s — %s\n",
              !v.explored ? "UNKNOWN" : (v.solves ? "SOLVES" : "FAILS"),
              v.reason.c_str());
  if (v.witness.has_value()) {
    std::printf("witness:     %s (in a violating SCC of %zu configurations)\n",
                v.witness
                    ->toString(v.witness->leader.has_value()
                                   ? proto->describeLeaderState(
                                         *v.witness->leader)
                                   : "")
                    .c_str(),
                v.witnessSccSize);
  }
  return v.explored && v.solves ? 0 : 2;
}
