# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-rev/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("obs")
subdirs("core")
subdirs("sched")
subdirs("naming")
subdirs("tasks")
subdirs("analysis")
subdirs("stats")
subdirs("sim")
subdirs("faults")
