// E24 integration: SIGKILL an orchestrating process mid-campaign, resume in a
// fresh process, and verify the merged outputs are byte-identical to an
// uninterrupted campaign — the end-to-end crash-safety contract.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/merge.h"
#include "campaign/orchestrator.h"

namespace ppn {
namespace {

std::string freshDir(const std::string& tag) {
  const auto base = std::filesystem::temp_directory_path() /
                    ("ppn_kill_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(base);
  return base.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Chunky enough that SIGKILL usually lands mid-campaign: 4 robustness units
/// of 96 campaigns each (a few hundred ms per unit), striped over 3 shards.
CampaignManifest killManifest(std::uint32_t threads) {
  CampaignManifest m;
  m.certify.protocols = {"asymmetric"};
  m.certify.populations = {6};
  m.certify.regimes = {FaultRegime::kPoissonTransient, FaultRegime::kChurn,
                       FaultRegime::kTargetedAdversary,
                       FaultRegime::kStuckAgent};
  m.certify.schedulers = {SchedulerKind::kRandom};
  m.certify.runs = 96;
  m.certify.faultWindow = 20'000;
  m.certify.threads = threads;
  m.shards = 3;
  return m;
}

OrchestratorOptions testOptions() {
  OrchestratorOptions options;
  options.workers = 2;
  options.backoffMillis = 5;
  options.pollMillis = 5;
  options.installSignalHandlers = false;
  return options;
}

/// True once any shard checkpoint holds at least one durable line.
bool anyCheckpointData(const CampaignManifest& m, const std::string& dir) {
  for (std::uint32_t shard = 0; shard < m.shards; ++shard) {
    std::error_code ec;
    if (std::filesystem::file_size(shardPartialPath(dir, shard), ec) > 0 &&
        !ec) {
      return true;
    }
    if (std::filesystem::exists(shardFinalPath(dir, shard))) return true;
  }
  return false;
}

TEST(CampaignKillResume, MergedOutputSurvivesSigkillByteIdentically) {
  const CampaignManifest m = killManifest(1);

  // Uninterrupted baseline.
  const std::string baseline = freshDir("baseline");
  ASSERT_TRUE(orchestrateCampaign(m, baseline, testOptions()).ok());
  ASSERT_TRUE(mergeCampaign(baseline).clean());
  const std::string expectedMerged = slurp(mergedUnitsPath(baseline));
  const std::string expectedTable = slurp(mergedRobustnessTablePath(baseline));
  ASSERT_FALSE(expectedMerged.empty());

  // Orchestrate in a disposable process group and SIGKILL it as soon as some
  // unit has been durably checkpointed (shard workers die with it).
  const std::string dir = freshDir("killed");
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    setpgid(0, 0);
    try {
      orchestrateCampaign(m, dir, testOptions());
    } catch (...) {
    }
    std::_Exit(0);
  }
  setpgid(child, child);  // parent side of the race
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(120);
  int status = 0;
  bool childRunning = true;
  while (std::chrono::steady_clock::now() < deadline) {
    if (waitpid(child, &status, WNOHANG) == child) {
      childRunning = false;  // finished before we got to shoot it
      break;
    }
    if (anyCheckpointData(m, dir)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (childRunning) {
    kill(-child, SIGKILL);
    ASSERT_EQ(waitpid(child, &status, 0), child);
  }

  // Resume in THIS process (a different pid than the victim) and merge.
  OrchestratorOptions resumeOptions = testOptions();
  resumeOptions.resume = true;
  const OrchestratorOutcome outcome =
      orchestrateCampaign(m, dir, resumeOptions);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.completedUnits, outcome.totalUnits);
  ASSERT_TRUE(mergeCampaign(dir).clean());

  EXPECT_EQ(slurp(mergedUnitsPath(dir)), expectedMerged);
  EXPECT_EQ(slurp(mergedRobustnessTablePath(dir)), expectedTable);
}

TEST(CampaignKillResume, ShardThreadCountDoesNotChangeUnitBytes) {
  // Same grid, shards running 4 worker threads internally: the merged unit
  // record must be byte-identical to the serial campaign.
  const CampaignManifest serial = killManifest(1);
  const std::string serialDir = freshDir("serial");
  ASSERT_TRUE(orchestrateCampaign(serial, serialDir, testOptions()).ok());
  ASSERT_TRUE(mergeCampaign(serialDir).clean());

  const CampaignManifest threaded = killManifest(4);
  const std::string threadedDir = freshDir("threaded");
  ASSERT_TRUE(orchestrateCampaign(threaded, threadedDir, testOptions()).ok());
  ASSERT_TRUE(mergeCampaign(threadedDir).clean());

  EXPECT_EQ(slurp(mergedUnitsPath(threadedDir)),
            slurp(mergedUnitsPath(serialDir)));
}

}  // namespace
}  // namespace ppn
