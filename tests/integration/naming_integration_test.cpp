// End-to-end parameterized sweeps: every protocol is run to convergence via
// simulation under the scheduler family its assumptions allow, across
// (P, N, scheduler, seed) grids — the "does the whole stack hang together"
// suite complementing the exact checker verdicts.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "naming/registry.h"
#include "sim/runner.h"
#include "util/rng.h"

namespace ppn {
namespace {

struct SweepCase {
  std::string key;
  StateId p;
  std::uint32_t n;
  SchedulerKind sched;
};

std::string caseName(const SweepCase& c) {
  std::string key = c.key;
  for (auto& ch : key)
    if (ch == '-') ch = '_';
  std::string s = schedulerKindName(c.sched);
  for (auto& ch : s)
    if (ch == '-') ch = '_';
  return key + "_P" + std::to_string(c.p) + "_N" + std::to_string(c.n) + "_" + s;
}

class NamingSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(NamingSweep, ConvergesToDistinctNames) {
  const SweepCase& c = GetParam();
  const auto proto = makeProtocol(c.key, c.p);
  Rng rng(0xABCDEF ^ (static_cast<std::uint64_t>(c.p) << 16) ^ c.n);
  const std::uint32_t participants =
      c.n + (proto->hasLeader() ? 1u : 0u);

  for (int trial = 0; trial < 4; ++trial) {
    Configuration start =
        (c.key == "leader-uniform")
            ? uniformConfiguration(*proto, c.n)
            : arbitraryConfiguration(*proto, c.n, rng);
    Engine engine(*proto, std::move(start));
    auto sched = makeScheduler(c.sched, participants, rng.next());
    const RunOutcome out =
        runUntilSilent(engine, *sched, RunLimits{20'000'000, 64});
    ASSERT_TRUE(out.silent) << caseName(c) << " trial " << trial;
    EXPECT_TRUE(out.namingSolved) << caseName(c) << " trial " << trial;
    EXPECT_TRUE(out.finalConfig.allDistinct());
  }
}

std::vector<SweepCase> buildCases() {
  std::vector<SweepCase> cases;
  // Weak-fairness-capable protocols: all four scheduler kinds are legal.
  const std::vector<SchedulerKind> allKinds{
      SchedulerKind::kRandom, SchedulerKind::kSkewed,
      SchedulerKind::kRoundRobin, SchedulerKind::kTournament};
  // Globally-fair-only protocols: random schedulers only.
  const std::vector<SchedulerKind> randomKinds{SchedulerKind::kRandom,
                                               SchedulerKind::kSkewed};

  for (const SchedulerKind k : allKinds) {
    cases.push_back({"asymmetric", 6, 6, k});
    cases.push_back({"asymmetric", 8, 5, k});
    cases.push_back({"leader-uniform", 6, 6, k});
    cases.push_back({"leader-uniform", 6, 3, k});
    cases.push_back({"selfstab-weak", 5, 5, k});
    cases.push_back({"selfstab-weak", 6, 4, k});
  }
  for (const SchedulerKind k : randomKinds) {
    cases.push_back({"symmetric-global", 5, 5, k});
    cases.push_back({"symmetric-global", 6, 4, k});
    // N = P capped at 4 for Protocol 3: its name_ptr walk completes in
    // ~5e5 interactions at P=4 but ~1e9 at P=5 (see convergence_sweep).
    cases.push_back({"global-leader", 4, 4, k});
    cases.push_back({"global-leader", 6, 4, k});
  }
  // Counting protocol names only N < P.
  for (const SchedulerKind k : allKinds) {
    cases.push_back({"counting", 6, 4, k});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, NamingSweep, ::testing::ValuesIn(buildCases()),
                         [](const auto& paramInfo) { return caseName(paramInfo.param); });

TEST(CountingIntegration, AnswerMatchesNAcrossSchedulers) {
  const auto proto = makeProtocol("counting", 7);
  Rng rng(555);
  for (std::uint32_t n = 1; n <= 7; ++n) {
    for (const SchedulerKind k :
         {SchedulerKind::kRandom, SchedulerKind::kRoundRobin}) {
      Engine engine(*proto, arbitraryConfiguration(*proto, n, rng));
      auto sched = makeScheduler(k, n + 1, rng.next());
      const RunOutcome out =
          runUntilSilent(engine, *sched, RunLimits{20'000'000, 64});
      ASSERT_TRUE(out.silent) << "N=" << n;
      EXPECT_EQ(*proto->countingAnswer(*out.finalConfig.leader), n)
          << schedulerKindName(k);
    }
  }
}

TEST(StabilityIntegration, NamesNeverChangeAfterConvergence) {
  // The defining property of naming: once converged, run another million
  // interactions and verify the configuration is bit-identical.
  const auto proto = makeProtocol("selfstab-weak", 5);
  Rng rng(777);
  Engine engine(*proto, arbitraryConfiguration(*proto, 5, rng));
  auto sched = makeScheduler(SchedulerKind::kRandom, 6, 999);
  const RunOutcome out = runUntilSilent(engine, *sched, RunLimits{10'000'000, 64});
  ASSERT_TRUE(out.namingSolved);
  const Configuration frozen = engine.config();
  for (int i = 0; i < 1'000'000; ++i) engine.step(sched->next());
  EXPECT_EQ(engine.config(), frozen);
}

TEST(ScaleIntegration, ModeratePopulationsConverge) {
  // Larger-scale smoke: protocols with polynomial convergence handle bigger
  // populations comfortably.
  Rng rng(31337);
  {
    const auto proto = makeProtocol("asymmetric", 64);
    Engine engine(*proto, arbitraryConfiguration(*proto, 64, rng));
    auto sched = makeScheduler(SchedulerKind::kRandom, 64, 1);
    const RunOutcome out =
        runUntilSilent(engine, *sched, RunLimits{50'000'000, 1024});
    ASSERT_TRUE(out.silent);
    EXPECT_TRUE(out.namingSolved);
  }
  {
    const auto proto = makeProtocol("leader-uniform", 128);
    Engine engine(*proto, uniformConfiguration(*proto, 128));
    auto sched = makeScheduler(SchedulerKind::kRandom, 129, 2);
    const RunOutcome out =
        runUntilSilent(engine, *sched, RunLimits{50'000'000, 1024});
    ASSERT_TRUE(out.silent);
    EXPECT_TRUE(out.namingSolved);
  }
}

}  // namespace
}  // namespace ppn
