#include "util/table.h"

#include <gtest/gtest.h>

namespace ppn {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::uint64_t{5});
  t.row().cell("b").cell(std::uint64_t{12345});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 5     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos);
}

TEST(Table, RowBuilderTypes) {
  Table t({"a", "b", "c", "d"});
  t.row().cell("x").cell(std::int64_t{-3}).cell(2.5, 2).cell(std::uint64_t{7});
  const std::string csv = t.renderCsv();
  EXPECT_NE(csv.find("x,-3,2.5,7"), std::string::npos);
}

TEST(Table, CsvHeaderFirst) {
  Table t({"h1", "h2"});
  t.row().cell("v1").cell("v2");
  const std::string csv = t.renderCsv();
  EXPECT_EQ(csv.rfind("h1,h2\n", 0), 0u);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"x"});
  t.row().cell("has,comma");
  t.row().cell("has\"quote");
  const std::string csv = t.renderCsv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, EmptyTableStillRendersHeader) {
  Table t({"only"});
  EXPECT_EQ(t.rowCount(), 0u);
  EXPECT_NE(t.render().find("only"), std::string::npos);
  EXPECT_EQ(t.renderCsv(), "only\n");
}

TEST(Table, SeparatorLinePresent) {
  Table t({"col"});
  t.row().cell("v");
  const std::string out = t.render();
  EXPECT_NE(out.find("|----"), std::string::npos);
}

}  // namespace
}  // namespace ppn
