#include "util/seed.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace ppn {
namespace {

// The three derivation schemes in util/seed.h ARE the repo's determinism
// contract: campaign units, batch workers and the batch engine must keep
// deriving identical seeds forever. These tests pin the schemes against
// hand-rolled reference loops so a refactor cannot silently change them.

TEST(Seed, SplitRunRngsMatchesSequentialMasterSplit) {
  for (const std::uint64_t seed : {0ull, 1ull, 42ull, 0xDEADBEEFull}) {
    Rng master(seed);
    std::vector<std::uint64_t> expected;
    for (std::uint32_t r = 0; r < 17; ++r) {
      Rng split = master.split();
      expected.push_back(split.next());
    }

    std::vector<Rng> rngs = splitRunRngs(seed, 17);
    ASSERT_EQ(rngs.size(), 17u);
    for (std::uint32_t r = 0; r < 17; ++r) {
      EXPECT_EQ(rngs[r].next(), expected[r]) << "seed " << seed << " run " << r;
    }
  }
}

TEST(Seed, SplitRunRngsPrefixesAreStable) {
  // Run r's generator depends only on (seed, r), never on the total count —
  // a resumed batch re-deriving a prefix gets the same streams.
  std::vector<Rng> small = splitRunRngs(7, 3);
  std::vector<Rng> large = splitRunRngs(7, 64);
  for (std::uint32_t r = 0; r < 3; ++r) {
    EXPECT_EQ(small[r].next(), large[r].next()) << r;
  }
}

TEST(Seed, DrawRunSeedsMatchesSequentialMasterNext) {
  Rng master(99);
  std::vector<std::uint64_t> expected;
  for (std::uint32_t r = 0; r < 11; ++r) expected.push_back(master.next());

  EXPECT_EQ(drawRunSeeds(99, 11), expected);
  // Prefix stability, same reason as above.
  const std::vector<std::uint64_t> longer = drawRunSeeds(99, 32);
  for (std::uint32_t r = 0; r < 11; ++r) EXPECT_EQ(longer[r], expected[r]);
}

TEST(Seed, ZeroRunsYieldEmpty) {
  EXPECT_TRUE(splitRunRngs(5, 0).empty());
  EXPECT_TRUE(drawRunSeeds(5, 0).empty());
}

TEST(Seed, Fnv1aMatchesReferenceImplementation) {
  constexpr std::uint64_t kBasis = 1469598103934665603ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;

  EXPECT_EQ(Fnv1a().value(), kBasis);
  EXPECT_EQ(Fnv1a(2026).value(), kBasis ^ 2026ULL);

  std::uint64_t h = kBasis ^ 7ULL;
  h ^= 123456789ULL;
  h *= kPrime;
  EXPECT_EQ(Fnv1a(7).mix(std::uint64_t{123456789}).value(), h);

  const std::string s = "asymmetric";
  std::uint64_t hs = kBasis;
  for (const char c : s) {
    hs ^= static_cast<unsigned char>(c);
    hs *= kPrime;
  }
  EXPECT_EQ(Fnv1a().mix(s).value(), hs);
}

TEST(Seed, Fnv1aIsOrderSensitive) {
  // Cell seeds mix several coordinates; swapping two must change the hash
  // (the sweep relies on distinct cells getting distinct campaign seeds).
  const std::uint64_t ab =
      Fnv1a(1).mix(std::uint64_t{10}).mix(std::uint64_t{20}).value();
  const std::uint64_t ba =
      Fnv1a(1).mix(std::uint64_t{20}).mix(std::uint64_t{10}).value();
  EXPECT_NE(ab, ba);
}

}  // namespace
}  // namespace ppn
