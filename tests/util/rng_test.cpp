#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace ppn {
namespace {

TEST(SplitMix64, KnownVector) {
  // Reference values for seed 0 from the SplitMix64 reference implementation.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(42);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next());
  a.reseed(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.between(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    sawLo |= (v == 5);
    sawHi |= (v == 8);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  // Each bucket expects 10000; allow +-5% (far beyond 5 sigma).
  for (const int c : counts) {
    EXPECT_GT(c, 9500);
    EXPECT_LT(c, 10500);
  }
}

TEST(Rng, Uniform01InRange) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  // The child stream should not coincide with the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (parent.next() == child.next()) ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Shuffle, PermutesAllElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Shuffle, ReachesManyPermutations) {
  Rng rng(37);
  std::set<std::vector<int>> seen;
  for (int i = 0; i < 300; ++i) {
    std::vector<int> v{1, 2, 3, 4};
    shuffle(v, rng);
    seen.insert(v);
  }
  // 4! = 24 permutations; 300 draws should see nearly all of them.
  EXPECT_GE(seen.size(), 20u);
}

TEST(Shuffle, HandlesTinyContainers) {
  Rng rng(41);
  std::vector<int> empty;
  shuffle(empty, rng);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  shuffle(one, rng);
  EXPECT_EQ(one, std::vector<int>{7});
}

}  // namespace
}  // namespace ppn
