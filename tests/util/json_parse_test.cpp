#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "util/json.h"

namespace ppn {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(jsonParse("null")->isNull());
  EXPECT_TRUE(jsonParse("true")->asBool());
  EXPECT_FALSE(jsonParse("false")->asBool());
  EXPECT_DOUBLE_EQ(jsonParse("1.5")->asDouble(), 1.5);
  EXPECT_EQ(jsonParse("\"hi\"")->asString(), "hi");
  EXPECT_EQ(jsonParse(" 42 ")->asU64(), std::uint64_t{42});
}

TEST(JsonParse, ExactU64RoundTrip) {
  // A double would round 2^64 - 1; the DOM keeps the source text.
  const auto v = jsonParse("18446744073709551615");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->asU64(), std::uint64_t{18446744073709551615ull});
  // Out of range / fractional / exponent reads refuse instead of rounding.
  EXPECT_FALSE(jsonParse("18446744073709551616")->asU64().has_value());
  EXPECT_FALSE(jsonParse("1.5")->asU64().has_value());
  EXPECT_FALSE(jsonParse("1e3")->asU64().has_value());
  EXPECT_FALSE(jsonParse("-1")->asU64().has_value());
  EXPECT_EQ(jsonParse("-1")->asI64(), std::int64_t{-1});
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(jsonParse("\"a\\\"b\\\\c\\n\"")->asString(), "a\"b\\c\n");
  EXPECT_EQ(jsonParse("\"\\u0041\\u00e9\"")->asString(), "A\xc3\xa9");
}

TEST(JsonParse, ObjectPreservesMemberOrderAndFinds) {
  const auto v = jsonParse("{\"z\":1,\"a\":{\"nested\":[1,2,3]}}");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->isObject());
  ASSERT_EQ(v->members().size(), 2u);
  EXPECT_EQ(v->members()[0].first, "z");
  EXPECT_EQ(v->members()[1].first, "a");
  const JsonValue* nested = v->find("a");
  ASSERT_NE(nested, nullptr);
  ASSERT_NE(nested->find("nested"), nullptr);
  EXPECT_EQ(nested->find("nested")->items().size(), 3u);
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(jsonParse("", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(jsonParse("{\"a\":}", &error).has_value());
  EXPECT_FALSE(jsonParse("[1,2", &error).has_value());
  EXPECT_FALSE(jsonParse("{} trailing", &error).has_value());
  EXPECT_FALSE(jsonParse("{'single':1}", &error).has_value());
  EXPECT_FALSE(jsonParse("\"unterminated", &error).has_value());
}

TEST(JsonParse, KindMismatchThrows) {
  const auto v = jsonParse("7");
  ASSERT_TRUE(v.has_value());
  EXPECT_THROW(v->asString(), std::logic_error);
  EXPECT_THROW(v->asBool(), std::logic_error);
}

TEST(JsonParse, WriterOutputRoundTrips) {
  JsonWriter w;
  w.beginObject();
  w.key("seed").value(std::uint64_t{0xDEADBEEFCAFEBABEull});
  w.key("name").value("line\nbreak \"quoted\"");
  w.key("list").beginArray().value(1).value(2).endArray();
  w.endObject();
  const auto v = jsonParse(w.str());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("seed")->asU64(), std::uint64_t{0xDEADBEEFCAFEBABEull});
  EXPECT_EQ(v->find("name")->asString(), "line\nbreak \"quoted\"");
  EXPECT_EQ(v->find("list")->items().size(), 2u);
}

}  // namespace
}  // namespace ppn
