#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ppn {
namespace {

TEST(JsonEscape, QuotesAndEscapesPerRfc8259) {
  EXPECT_EQ(jsonEscape("plain"), "\"plain\"");
  EXPECT_EQ(jsonEscape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(jsonEscape("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(jsonEscape("line\nbreak\ttab\r"), "\"line\\nbreak\\ttab\\r\"");
  EXPECT_EQ(jsonEscape(std::string_view("\x01\x1f", 2)), "\"\\u0001\\u001f\"");
  EXPECT_EQ(jsonEscape(""), "\"\"");
}

TEST(JsonWriter, BuildsNestedDocument) {
  JsonWriter w;
  w.beginObject();
  w.key("name").value("robustness");
  w.key("certified").value(true);
  w.key("runs").value(std::uint64_t{24});
  w.key("offset").value(std::int64_t{-3});
  w.key("cells").beginArray();
  w.beginObject();
  w.key("rate").value(0.5);
  w.key("note").null();
  w.endObject();
  w.beginArray().value(1).value(2).endArray();
  w.endArray();
  w.endObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"robustness\",\"certified\":true,\"runs\":24,"
            "\"offset\":-3,\"cells\":[{\"rate\":0.5,\"note\":null},[1,2]]}");
}

TEST(JsonWriter, NonFiniteDoublesDegradeToNull) {
  JsonWriter w;
  w.beginArray();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(1.25);
  w.endArray();
  EXPECT_EQ(w.str(), "[null,null,1.25]");
}

TEST(JsonWriter, RootScalarIsAValidDocument) {
  JsonWriter w;
  w.value("hello");
  EXPECT_EQ(w.str(), "\"hello\"");
}

TEST(JsonWriter, MisuseThrowsInsteadOfEmittingGarbage) {
  {
    JsonWriter w;
    w.beginObject();
    EXPECT_THROW(w.value(1), std::logic_error) << "object value needs a key";
  }
  {
    JsonWriter w;
    w.beginArray();
    EXPECT_THROW(w.key("k"), std::logic_error) << "key() outside an object";
  }
  {
    JsonWriter w;
    w.beginObject();
    EXPECT_THROW(w.endArray(), std::logic_error) << "mismatched container end";
  }
  {
    JsonWriter w;
    w.beginArray();
    EXPECT_THROW(w.str(), std::logic_error) << "incomplete document";
  }
  {
    JsonWriter w;
    EXPECT_THROW(w.str(), std::logic_error) << "empty document";
  }
  {
    JsonWriter w;
    w.value(1);
    EXPECT_THROW(w.value(2), std::logic_error) << "second root value";
  }
}

TEST(JsonValidator, AcceptsValidDocuments) {
  EXPECT_TRUE(jsonIsValid("{}"));
  EXPECT_TRUE(jsonIsValid("[]"));
  EXPECT_TRUE(jsonIsValid("null"));
  EXPECT_TRUE(jsonIsValid("true"));
  EXPECT_TRUE(jsonIsValid("-12.5e3"));
  EXPECT_TRUE(jsonIsValid("0"));
  EXPECT_TRUE(jsonIsValid("\"a\\n\\u00e9\""));
  EXPECT_TRUE(jsonIsValid(R"({"a":[1,2,{"b":null}],"c":"x"})"));
  EXPECT_TRUE(jsonIsValid("  [ 1 ,\t2 ]\n"));
}

TEST(JsonValidator, RejectsInvalidDocuments) {
  EXPECT_FALSE(jsonIsValid(""));
  EXPECT_FALSE(jsonIsValid("{"));
  EXPECT_FALSE(jsonIsValid("[1,]"));
  EXPECT_FALSE(jsonIsValid("{\"a\":}"));
  EXPECT_FALSE(jsonIsValid("{'a':1}"));
  EXPECT_FALSE(jsonIsValid("01"));
  EXPECT_FALSE(jsonIsValid("1."));
  EXPECT_FALSE(jsonIsValid("1e"));
  EXPECT_FALSE(jsonIsValid("nul"));
  EXPECT_FALSE(jsonIsValid("\"unterminated"));
  EXPECT_FALSE(jsonIsValid("\"bad\\qescape\""));
  EXPECT_FALSE(jsonIsValid("\"raw\ncontrol\""));
  EXPECT_FALSE(jsonIsValid("\"\\u12g4\""));
  EXPECT_FALSE(jsonIsValid("{} trailing"));
  EXPECT_FALSE(jsonIsValid("1 2"));
}

TEST(JsonValidator, WriterOutputAlwaysValidates) {
  JsonWriter w;
  w.beginObject();
  w.key("text").value("line\nbreak \"quoted\" \\slash");
  w.key("num").value(3.25);
  w.key("neg").value(std::int64_t{-7});
  w.key("arr").beginArray().value(true).null().endArray();
  w.endObject();
  EXPECT_TRUE(jsonIsValid(w.str()));
}

TEST(JsonValidator, DeepNestingIsBounded) {
  // 300 nested arrays exceed the validator's depth cap; it must return
  // false, not crash.
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(jsonIsValid(deep));
  std::string ok(100, '[');
  ok += "1";
  ok += std::string(100, ']');
  EXPECT_TRUE(jsonIsValid(ok));
}

}  // namespace
}  // namespace ppn
