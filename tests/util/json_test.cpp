#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ppn {
namespace {

TEST(JsonEscape, QuotesAndEscapesPerRfc8259) {
  EXPECT_EQ(jsonEscape("plain"), "\"plain\"");
  EXPECT_EQ(jsonEscape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(jsonEscape("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(jsonEscape("line\nbreak\ttab\r"), "\"line\\nbreak\\ttab\\r\"");
  EXPECT_EQ(jsonEscape(std::string_view("\x01\x1f", 2)), "\"\\u0001\\u001f\"");
  EXPECT_EQ(jsonEscape(""), "\"\"");
}

TEST(JsonWriter, BuildsNestedDocument) {
  JsonWriter w;
  w.beginObject();
  w.key("name").value("robustness");
  w.key("certified").value(true);
  w.key("runs").value(std::uint64_t{24});
  w.key("offset").value(std::int64_t{-3});
  w.key("cells").beginArray();
  w.beginObject();
  w.key("rate").value(0.5);
  w.key("note").null();
  w.endObject();
  w.beginArray().value(1).value(2).endArray();
  w.endArray();
  w.endObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"robustness\",\"certified\":true,\"runs\":24,"
            "\"offset\":-3,\"cells\":[{\"rate\":0.5,\"note\":null},[1,2]]}");
}

TEST(JsonWriter, NonFiniteDoublesDegradeToNull) {
  JsonWriter w;
  w.beginArray();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(1.25);
  w.endArray();
  EXPECT_EQ(w.str(), "[null,null,1.25]");
}

TEST(JsonWriter, RootScalarIsAValidDocument) {
  JsonWriter w;
  w.value("hello");
  EXPECT_EQ(w.str(), "\"hello\"");
}

TEST(JsonWriter, MisuseThrowsInsteadOfEmittingGarbage) {
  {
    JsonWriter w;
    w.beginObject();
    EXPECT_THROW(w.value(1), std::logic_error) << "object value needs a key";
  }
  {
    JsonWriter w;
    w.beginArray();
    EXPECT_THROW(w.key("k"), std::logic_error) << "key() outside an object";
  }
  {
    JsonWriter w;
    w.beginObject();
    EXPECT_THROW(w.endArray(), std::logic_error) << "mismatched container end";
  }
  {
    JsonWriter w;
    w.beginArray();
    EXPECT_THROW(w.str(), std::logic_error) << "incomplete document";
  }
  {
    JsonWriter w;
    EXPECT_THROW(w.str(), std::logic_error) << "empty document";
  }
  {
    JsonWriter w;
    w.value(1);
    EXPECT_THROW(w.value(2), std::logic_error) << "second root value";
  }
}

}  // namespace
}  // namespace ppn
