#include "util/log.h"

#include <gtest/gtest.h>

namespace ppn {
namespace {

TEST(Log, ThresholdRoundTrip) {
  const LogLevel original = logThreshold();
  setLogThreshold(LogLevel::kError);
  EXPECT_EQ(logThreshold(), LogLevel::kError);
  setLogThreshold(LogLevel::kDebug);
  EXPECT_EQ(logThreshold(), LogLevel::kDebug);
  setLogThreshold(original);
}

TEST(Log, MacrosCompileAndRespectThreshold) {
  const LogLevel original = logThreshold();
  setLogThreshold(LogLevel::kOff);
  // Nothing should be emitted (and nothing should crash) at kOff.
  PPN_DEBUG("debug %d", 1);
  PPN_INFO("info %s", "x");
  PPN_WARN("warn");
  PPN_ERROR("error %f", 1.5);
  setLogThreshold(original);
}

TEST(Log, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug), static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo), static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn), static_cast<int>(LogLevel::kError));
  EXPECT_LT(static_cast<int>(LogLevel::kError), static_cast<int>(LogLevel::kOff));
}

}  // namespace
}  // namespace ppn
