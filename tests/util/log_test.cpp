#include "util/log.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace ppn {
namespace {

/// Captures delivered messages for the duration of a test.
class SinkCapture {
 public:
  SinkCapture() {
    setLogSink([this](LogLevel level, std::string_view msg) {
      messages_.emplace_back(level, std::string(msg));
    });
  }
  ~SinkCapture() { setLogSink({}); }

  const std::vector<std::pair<LogLevel, std::string>>& messages() const {
    return messages_;
  }

 private:
  std::vector<std::pair<LogLevel, std::string>> messages_;
};

TEST(Log, ThresholdRoundTrip) {
  const LogLevel original = logThreshold();
  setLogThreshold(LogLevel::kError);
  EXPECT_EQ(logThreshold(), LogLevel::kError);
  setLogThreshold(LogLevel::kDebug);
  EXPECT_EQ(logThreshold(), LogLevel::kDebug);
  setLogThreshold(original);
}

TEST(Log, MacrosCompileAndRespectThreshold) {
  const LogLevel original = logThreshold();
  setLogThreshold(LogLevel::kOff);
  // Nothing should be emitted (and nothing should crash) at kOff.
  PPN_DEBUG("debug %d", 1);
  PPN_INFO("info %s", "x");
  PPN_WARN("warn");
  PPN_ERROR("error %f", 1.5);
  setLogThreshold(original);
}

TEST(Log, ParseLogLevelAcceptsAllFiveLevels) {
  EXPECT_EQ(parseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(parseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(parseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(parseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(parseLogLevel("off"), LogLevel::kOff);
}

TEST(Log, ParseLogLevelGarbageYieldsFallback) {
  EXPECT_EQ(parseLogLevel(""), LogLevel::kInfo);
  EXPECT_EQ(parseLogLevel("DEBUG"), LogLevel::kInfo);     // case-sensitive
  EXPECT_EQ(parseLogLevel("verbose"), LogLevel::kInfo);
  EXPECT_EQ(parseLogLevel("warn "), LogLevel::kInfo);     // no trimming
  EXPECT_EQ(parseLogLevel("2"), LogLevel::kInfo);
  EXPECT_EQ(parseLogLevel("garbage", LogLevel::kError), LogLevel::kError);
  EXPECT_EQ(parseLogLevel("", LogLevel::kOff), LogLevel::kOff);
}

TEST(Log, SinkReceivesOnlyMessagesAtOrAboveThreshold) {
  const LogLevel original = logThreshold();
  SinkCapture capture;
  setLogThreshold(LogLevel::kWarn);
  PPN_DEBUG("dropped %d", 1);
  PPN_INFO("dropped too");
  PPN_WARN("kept %s", "warn");
  PPN_ERROR("kept error");
  setLogThreshold(original);
  ASSERT_EQ(capture.messages().size(), 2u);
  EXPECT_EQ(capture.messages()[0].first, LogLevel::kWarn);
  EXPECT_EQ(capture.messages()[0].second, "kept warn");
  EXPECT_EQ(capture.messages()[1].first, LogLevel::kError);
  EXPECT_EQ(capture.messages()[1].second, "kept error");
}

TEST(Log, OverflowingMessageEndsInTruncationMarker) {
  const LogLevel original = logThreshold();
  SinkCapture capture;
  setLogThreshold(LogLevel::kInfo);
  const std::string longText(2000, 'x');
  PPN_INFO("%s", longText.c_str());
  setLogThreshold(original);
  ASSERT_EQ(capture.messages().size(), 1u);
  const std::string& msg = capture.messages()[0].second;
  // The macro's buffer is 512 bytes: 511 chars survive, the last three
  // replaced by the marker.
  EXPECT_EQ(msg.size(), 511u);
  EXPECT_EQ(msg.substr(msg.size() - 3), "...");
  EXPECT_EQ(msg.substr(0, 8), "xxxxxxxx");
}

TEST(Log, ShortMessagesAreDeliveredVerbatim) {
  const LogLevel original = logThreshold();
  SinkCapture capture;
  setLogThreshold(LogLevel::kDebug);
  PPN_DEBUG("n=%d p=%d", 4, 6);
  setLogThreshold(original);
  ASSERT_EQ(capture.messages().size(), 1u);
  EXPECT_EQ(capture.messages()[0].second, "n=4 p=6");
}

TEST(Log, FinishLogBufferHandlesEdgeCases) {
  char buf[16];
  // Exact fit (written == cap-1) is NOT truncation.
  const std::string fits = "123456789012345";
  std::snprintf(buf, sizeof buf, "%s", fits.c_str());
  EXPECT_EQ(detail::finishLogBuffer(buf, sizeof buf, 15), "123456789012345");
  // One past the end is.
  const std::string over = fits + "6";
  std::snprintf(buf, sizeof buf, "%s", over.c_str());
  EXPECT_EQ(detail::finishLogBuffer(buf, sizeof buf, 16), "123456789012...");
  // Encoding error replaces the message wholesale.
  const std::string_view bad = detail::finishLogBuffer(buf, sizeof buf, -1);
  EXPECT_EQ(bad, std::string_view("(log formatting").substr(0, sizeof buf - 1));
}

TEST(Log, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug), static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo), static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn), static_cast<int>(LogLevel::kError));
  EXPECT_LT(static_cast<int>(LogLevel::kError), static_cast<int>(LogLevel::kOff));
}

}  // namespace
}  // namespace ppn
