#include "util/strings.h"

#include <gtest/gtest.h>

namespace ppn {
namespace {

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(ParseU64, Valid) {
  EXPECT_EQ(parseU64("0"), 0u);
  EXPECT_EQ(parseU64("42"), 42u);
  EXPECT_EQ(parseU64(" 17 "), 17u);
  EXPECT_EQ(parseU64("18446744073709551615"), UINT64_MAX);
}

TEST(ParseU64, Invalid) {
  EXPECT_FALSE(parseU64("").has_value());
  EXPECT_FALSE(parseU64("-1").has_value());
  EXPECT_FALSE(parseU64("12x").has_value());
  EXPECT_FALSE(parseU64("18446744073709551616").has_value());  // overflow
  EXPECT_FALSE(parseU64("1.5").has_value());
}

TEST(ParseI64, ValidAndInvalid) {
  EXPECT_EQ(parseI64("-5"), -5);
  EXPECT_EQ(parseI64("7"), 7);
  EXPECT_FALSE(parseI64("abc").has_value());
  EXPECT_FALSE(parseI64("").has_value());
}

TEST(ParseDouble, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*parseDouble("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*parseDouble("-2"), -2.0);
  EXPECT_DOUBLE_EQ(*parseDouble("1e3"), 1000.0);
  EXPECT_FALSE(parseDouble("x").has_value());
  EXPECT_FALSE(parseDouble("").has_value());
  EXPECT_FALSE(parseDouble("1.5z").has_value());
}

TEST(StartsWith, Cases) {
  EXPECT_TRUE(startsWith("--flag", "--"));
  EXPECT_FALSE(startsWith("-f", "--"));
  EXPECT_TRUE(startsWith("abc", ""));
  EXPECT_FALSE(startsWith("", "a"));
}

TEST(Join, Cases) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcd", 2), "abcd");  // no truncation
  EXPECT_EQ(padRight("abcd", 2), "abcd");
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(formatDouble(1.5, 3), "1.5");
  EXPECT_EQ(formatDouble(2.0, 3), "2");
  EXPECT_EQ(formatDouble(0.125, 3), "0.125");
  EXPECT_EQ(formatDouble(0.1234, 2), "0.12");
  EXPECT_EQ(formatDouble(-3.10, 2), "-3.1");
}

}  // namespace
}  // namespace ppn
