#include "util/cli.h"

#include <gtest/gtest.h>

#include <array>

namespace ppn {
namespace {

TEST(Cli, DefaultsSurviveEmptyArgv) {
  Cli cli("prog", "test");
  const auto* n = cli.addUint("n", "count", 10);
  const auto* s = cli.addString("mode", "mode", "fast");
  const auto* f = cli.addFlag("verbose", "talk");
  const std::array<const char*, 1> argv{"prog"};
  ASSERT_TRUE(cli.parse(1, argv.data()));
  EXPECT_EQ(*n, 10u);
  EXPECT_EQ(*s, "fast");
  EXPECT_FALSE(*f);
}

TEST(Cli, ParsesEqualsForm) {
  Cli cli("prog", "test");
  const auto* n = cli.addUint("n", "count", 10);
  const auto* d = cli.addDouble("rate", "rate", 0.5);
  const std::array<const char*, 3> argv{"prog", "--n=42", "--rate=1.25"};
  ASSERT_TRUE(cli.parse(3, argv.data()));
  EXPECT_EQ(*n, 42u);
  EXPECT_DOUBLE_EQ(*d, 1.25);
}

TEST(Cli, ParsesSpaceForm) {
  Cli cli("prog", "test");
  const auto* n = cli.addUint("n", "count", 10);
  const std::array<const char*, 3> argv{"prog", "--n", "7"};
  ASSERT_TRUE(cli.parse(3, argv.data()));
  EXPECT_EQ(*n, 7u);
}

TEST(Cli, ParsesFlagsAndInts) {
  Cli cli("prog", "test");
  const auto* f = cli.addFlag("verbose", "talk");
  const auto* i = cli.addInt("delta", "signed", -1);
  const std::array<const char*, 3> argv{"prog", "--verbose", "--delta=-9"};
  ASSERT_TRUE(cli.parse(3, argv.data()));
  EXPECT_TRUE(*f);
  EXPECT_EQ(*i, -9);
}

TEST(Cli, RejectsUnknownOption) {
  Cli cli("prog", "test");
  const std::array<const char*, 2> argv{"prog", "--bogus=1"};
  EXPECT_FALSE(cli.parse(2, argv.data()));
}

TEST(Cli, RejectsBadValue) {
  Cli cli("prog", "test");
  cli.addUint("n", "count", 10);
  const std::array<const char*, 2> argv{"prog", "--n=notanumber"};
  EXPECT_FALSE(cli.parse(2, argv.data()));
}

TEST(Cli, RejectsMissingValue) {
  Cli cli("prog", "test");
  cli.addUint("n", "count", 10);
  const std::array<const char*, 2> argv{"prog", "--n"};
  EXPECT_FALSE(cli.parse(2, argv.data()));
}

TEST(Cli, RejectsValueOnFlag) {
  Cli cli("prog", "test");
  cli.addFlag("verbose", "talk");
  const std::array<const char*, 2> argv{"prog", "--verbose=1"};
  EXPECT_FALSE(cli.parse(2, argv.data()));
}

TEST(Cli, RejectsPositional) {
  Cli cli("prog", "test");
  const std::array<const char*, 2> argv{"prog", "stray"};
  EXPECT_FALSE(cli.parse(2, argv.data()));
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("prog", "test");
  const std::array<const char*, 2> argv{"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv.data()));
}

TEST(Cli, HelpTextMentionsOptionsAndDefaults) {
  Cli cli("prog", "does things");
  cli.addUint("n", "population size", 10);
  cli.addFlag("verbose", "talk a lot");
  const std::string help = cli.helpText();
  EXPECT_NE(help.find("--n"), std::string::npos);
  EXPECT_NE(help.find("population size"), std::string::npos);
  EXPECT_NE(help.find("default: 10"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
}

TEST(Cli, StringWithEqualsInValue) {
  Cli cli("prog", "test");
  const auto* s = cli.addString("expr", "expression", "");
  const std::array<const char*, 2> argv{"prog", "--expr=a=b"};
  ASSERT_TRUE(cli.parse(2, argv.data()));
  EXPECT_EQ(*s, "a=b");
}

}  // namespace
}  // namespace ppn
