#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/runner.h"
#include "util/json.h"

namespace ppn {
namespace {

TEST(Metrics, CounterStartsAtZeroAndAccumulates) {
  MetricsRegistry reg;
  const CounterHandle c = reg.counter("runs");
  {
    const auto snap = reg.snapshot();
    ASSERT_NE(snap.counterValue("runs"), nullptr);
    EXPECT_EQ(*snap.counterValue("runs"), 0u);
  }
  reg.add(c);
  reg.add(c, 41);
  const auto snap = reg.snapshot();
  EXPECT_EQ(*snap.counterValue("runs"), 42u);
  EXPECT_EQ(snap.counterValue("missing"), nullptr);
}

TEST(Metrics, RegistrationIsIdempotentByName) {
  MetricsRegistry reg;
  const CounterHandle a = reg.counter("same");
  const CounterHandle b = reg.counter("same");
  EXPECT_EQ(a.slot, b.slot);
  reg.add(a);
  reg.add(b);
  EXPECT_EQ(*reg.snapshot().counterValue("same"), 2u);
  // Only one entry appears in the snapshot.
  EXPECT_EQ(reg.snapshot().counters.size(), 1u);

  const HistogramHandle h1 = reg.histogram("hist", {1.0, 2.0});
  const HistogramHandle h2 = reg.histogram("hist", {1.0, 2.0});
  EXPECT_EQ(h1.slot, h2.slot);
  EXPECT_THROW(reg.histogram("hist", {1.0, 3.0}), std::logic_error);
}

TEST(Metrics, HistogramRejectsNonAscendingBounds) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("bad", {2.0, 1.0}), std::logic_error);
  EXPECT_THROW(reg.histogram("flat", {1.0, 1.0}), std::logic_error);
}

TEST(Metrics, GaugeIsLastWriteWins) {
  MetricsRegistry reg;
  const GaugeHandle g = reg.gauge("depth");
  MetricsRegistry::set(g, 7);
  MetricsRegistry::set(g, -3);
  EXPECT_EQ(MetricsRegistry::get(g), -3);
  const auto snap = reg.snapshot();
  ASSERT_NE(snap.gaugeValue("depth"), nullptr);
  EXPECT_EQ(*snap.gaugeValue("depth"), -3);
}

TEST(Metrics, HistogramBucketsByUpperBound) {
  MetricsRegistry reg;
  const HistogramHandle h = reg.histogram("lat", {10.0, 100.0});
  reg.observe(h, 5.0);     // <= 10      -> bucket 0
  reg.observe(h, 10.0);    // <= 10      -> bucket 0 (inclusive upper bound)
  reg.observe(h, 11.0);    // <= 100     -> bucket 1
  reg.observe(h, 1000.0);  // overflow   -> bucket 2
  const auto snap = reg.snapshot();
  const auto* hist = snap.histogramNamed("lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->bounds, (std::vector<double>{10.0, 100.0}));
  EXPECT_EQ(hist->counts, (std::vector<std::uint64_t>{2, 1, 1}));
  EXPECT_EQ(hist->count, 4u);
  EXPECT_DOUBLE_EQ(hist->sum, 5.0 + 10.0 + 11.0 + 1000.0);
  EXPECT_DOUBLE_EQ(hist->mean(), hist->sum / 4.0);
  EXPECT_EQ(snap.histogramNamed("nope"), nullptr);
}

TEST(Metrics, SnapshotToJsonIsValidJson) {
  MetricsRegistry reg;
  reg.add(reg.counter("c"), 3);
  MetricsRegistry::set(reg.gauge("g"), 5);
  reg.observe(reg.histogram("h", {1.0}), 0.5);
  const std::string doc = reg.toJson();
  EXPECT_TRUE(jsonIsValid(doc)) << doc;
  EXPECT_NE(doc.find("\"kind\":\"ppn-metrics\""), std::string::npos);
  EXPECT_NE(doc.find("\"c\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"g\":5"), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
}

TEST(Metrics, EmptyRegistrySnapshotStillValidates) {
  MetricsRegistry reg;
  EXPECT_TRUE(jsonIsValid(reg.toJson()));
  EXPECT_TRUE(reg.snapshot().counters.empty());
}

// The acceptance criterion: exercised concurrently via parallelRunIndexed
// across thread counts, final totals must be identical.
TEST(Metrics, ConcurrentRecordingTotalsAreThreadCountIndependent) {
  constexpr std::uint32_t kTasks = 64;
  constexpr std::uint64_t kAddsPerTask = 1000;
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    MetricsRegistry reg;
    const CounterHandle c = reg.counter("adds");
    const HistogramHandle h = reg.histogram("values", {16.0, 48.0});
    parallelRunIndexed(kTasks, threads,
                       [&](std::uint32_t index, CancelToken&) {
                         for (std::uint64_t i = 0; i < kAddsPerTask; ++i) {
                           reg.add(c);
                         }
                         reg.observe(h, static_cast<double>(index));
                       });
    const auto snap = reg.snapshot();
    EXPECT_EQ(*snap.counterValue("adds"), kTasks * kAddsPerTask)
        << "threads=" << threads;
    const auto* hist = snap.histogramNamed("values");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, kTasks) << "threads=" << threads;
    // Sum of 0..63 = 2016, split 0..16 | 17..48 | 49..63.
    EXPECT_DOUBLE_EQ(hist->sum, 2016.0) << "threads=" << threads;
    EXPECT_EQ(hist->counts, (std::vector<std::uint64_t>{17, 32, 15}))
        << "threads=" << threads;
  }
}

TEST(Metrics, SnapshotSurvivesWorkerThreadExit) {
  // Shards are registry-owned: recording threads may be long gone by the
  // time snapshot() runs.
  MetricsRegistry reg;
  const CounterHandle c = reg.counter("from_workers");
  parallelRunIndexed(8, 8, [&](std::uint32_t, CancelToken&) { reg.add(c); });
  // All workers joined inside parallelRunIndexed.
  EXPECT_EQ(*reg.snapshot().counterValue("from_workers"), 8u);
}

TEST(Metrics, LateRegistrationAfterRecordingStarted) {
  MetricsRegistry reg;
  const CounterHandle first = reg.counter("first");
  reg.add(first);  // creates this thread's shard at the current size
  const CounterHandle second = reg.counter("second");
  reg.add(second);  // shard must grow to cover the late slot
  const auto snap = reg.snapshot();
  EXPECT_EQ(*snap.counterValue("first"), 1u);
  EXPECT_EQ(*snap.counterValue("second"), 1u);
}

}  // namespace
}  // namespace ppn
