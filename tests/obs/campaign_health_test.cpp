#include "obs/campaign_health.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "obs/progress.h"

namespace ppn {
namespace {

namespace fs = std::filesystem;

fs::path freshDir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() /
                       ("ppn_health_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Shard 0 completes five ~10ms units; shard 1 wedges on unit 9 — three
/// stall-retries, a SIGKILL, a respawn — and finally fails it 60s in. The
/// campaign median stays 10ms, so shard 1 is the textbook straggler.
std::vector<std::string> stragglerCampaign() {
  return {
      R"({"event":"campaign_start","units":6,"shards":2,"workers":2,"resumed":false,"elapsed_ms":0})",
      R"({"event":"shard_spawn","shard":0,"pid":100,"spawn":1,"elapsed_ms":0})",
      R"({"event":"shard_spawn","shard":1,"pid":200,"spawn":1,"elapsed_ms":0})",
      R"({"event":"unit_start","unit":9,"shard":1,"attempt":1,"elapsed_ms":0})",
      R"({"event":"unit_start","unit":0,"shard":0,"attempt":1,"elapsed_ms":0})",
      R"({"event":"unit_end","unit":0,"shard":0,"attempt":1,"status":"ok","elapsed_ms":10})",
      R"({"event":"unit_start","unit":1,"shard":0,"attempt":1,"elapsed_ms":10})",
      R"({"event":"unit_end","unit":1,"shard":0,"attempt":1,"status":"ok","elapsed_ms":20})",
      R"({"event":"unit_start","unit":2,"shard":0,"attempt":1,"elapsed_ms":20})",
      R"({"event":"unit_end","unit":2,"shard":0,"attempt":1,"status":"ok","elapsed_ms":30})",
      R"({"event":"unit_start","unit":3,"shard":0,"attempt":1,"elapsed_ms":30})",
      R"({"event":"unit_end","unit":3,"shard":0,"attempt":1,"status":"ok","elapsed_ms":40})",
      R"({"event":"unit_start","unit":4,"shard":0,"attempt":1,"elapsed_ms":40})",
      R"({"event":"unit_end","unit":4,"shard":0,"attempt":1,"status":"ok","elapsed_ms":50})",
      R"({"event":"resource_sample","shard":0,"pid":100,"rss_bytes":1000000,"vsize_bytes":4000000,"utime_ms":5,"stime_ms":1,"cpu_permille":150,"read_bytes":0,"write_bytes":0,"elapsed_ms":50})",
      R"({"event":"shard_exit","shard":0,"pid":100,"code":0,"signal":0,"elapsed_ms":60})",
      R"({"event":"unit_retry","unit":9,"shard":1,"attempt":1,"backoff_ms":5,"reason":"stalled","elapsed_ms":10000})",
      R"({"event":"shard_exit","shard":1,"pid":200,"code":-1,"signal":9,"elapsed_ms":10000})",
      R"({"event":"shard_spawn","shard":1,"pid":201,"spawn":2,"elapsed_ms":10010})",
      R"({"event":"resource_sample","shard":1,"pid":201,"rss_bytes":5000000,"vsize_bytes":9000000,"utime_ms":50,"stime_ms":10,"cpu_permille":900,"read_bytes":0,"write_bytes":0,"elapsed_ms":15000})",
      R"({"event":"unit_start","unit":9,"shard":1,"attempt":2,"elapsed_ms":20000})",
      R"({"event":"unit_retry","unit":9,"shard":1,"attempt":2,"backoff_ms":10,"reason":"stalled","elapsed_ms":30000})",
      R"({"event":"unit_retry","unit":9,"shard":1,"attempt":3,"backoff_ms":20,"reason":"stalled","elapsed_ms":40000})",
      R"({"event":"unit_failed","unit":9,"shard":1,"attempts":3,"reason":"retries exhausted","elapsed_ms":40000})",
      R"({"event":"unit_end","unit":9,"shard":1,"attempt":3,"status":"failed","elapsed_ms":60000})",
      R"({"event":"shard_exit","shard":1,"pid":201,"code":0,"signal":0,"elapsed_ms":60001})",
      R"({"event":"campaign_end","completed":5,"failed":1,"total":6,"interrupted":false,"elapsed_ms":60002})",
  };
}

TEST(SafeRateMath, DegenerateInputsYieldQuietZeroes) {
  // A resume-immediately-then-status call sees zero elapsed time and zero
  // completed units; neither division may surface inf or NaN.
  EXPECT_EQ(safeRate(0, 0.0), 0.0);
  EXPECT_EQ(safeRate(5, 0.0), 0.0);
  EXPECT_EQ(safeRate(5, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(safeRate(10, 2.0), 5.0);

  EXPECT_EQ(safeEta(100, 0.0), 0.0);
  EXPECT_EQ(safeEta(100, -0.5), 0.0);
  EXPECT_EQ(safeEta(0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(safeEta(10, 2.0), 5.0);
}

TEST(ComputeCampaignHealth, AggregatesCountsAndFlagsTheStraggler) {
  const CampaignHealth health = computeCampaignHealth(stragglerCampaign());
  EXPECT_TRUE(health.campaignSeen);
  EXPECT_TRUE(health.finished);
  EXPECT_FALSE(health.interrupted);
  EXPECT_EQ(health.totalUnits, 6u);
  EXPECT_EQ(health.unitsCompleted, 5u);
  EXPECT_EQ(health.unitsFailed, 1u);
  EXPECT_EQ(health.retries, 3u);
  EXPECT_EQ(health.stalls, 3u);
  EXPECT_EQ(health.kills, 1u);
  EXPECT_DOUBLE_EQ(health.elapsedMillis, 60002.0);
  // Latencies: five 10ms units + one 60000ms saga -> median 10ms.
  EXPECT_DOUBLE_EQ(health.medianUnitLatencyMillis, 10.0);

  ASSERT_EQ(health.shards.size(), 2u);
  const ShardHealth& fast = health.shards[0];
  EXPECT_EQ(fast.shard, 0u);
  EXPECT_EQ(fast.spawns, 1u);
  EXPECT_EQ(fast.unitsCompleted, 5u);
  EXPECT_EQ(fast.latencySamples, 5u);
  EXPECT_DOUBLE_EQ(fast.meanUnitLatencyMillis, 10.0);
  EXPECT_DOUBLE_EQ(fast.activeMillis, 60.0);
  EXPECT_FALSE(fast.straggler);
  EXPECT_FALSE(fast.retryStorm);

  const ShardHealth& slow = health.shards[1];
  EXPECT_EQ(slow.shard, 1u);
  EXPECT_EQ(slow.spawns, 2u);
  EXPECT_EQ(slow.unitsFailed, 1u);
  EXPECT_EQ(slow.retries, 3u);
  EXPECT_EQ(slow.stalls, 3u);
  EXPECT_EQ(slow.kills, 1u);
  // Anchored at the FIRST unit_start: the whole retry saga is the latency.
  EXPECT_EQ(slow.latencySamples, 1u);
  EXPECT_DOUBLE_EQ(slow.meanUnitLatencyMillis, 60000.0);
  EXPECT_TRUE(slow.straggler);
  EXPECT_TRUE(slow.retryStorm);

  ASSERT_EQ(health.stragglers.size(), 1u);
  EXPECT_EQ(health.stragglers[0], 1u);
}

TEST(ComputeCampaignHealth, PeakRssIsAttributedToTheHungriestShard) {
  const CampaignHealth health = computeCampaignHealth(stragglerCampaign());
  EXPECT_EQ(health.peakRssShard, 1);
  EXPECT_DOUBLE_EQ(health.peakRssBytes, 5'000'000.0);
  EXPECT_DOUBLE_EQ(health.shards[0].peakRssBytes, 1'000'000.0);
  EXPECT_DOUBLE_EQ(health.shards[1].peakCpuPermille, 900.0);
  const std::string json = campaignHealthJson(health);
  EXPECT_NE(json.find("\"peak_rss\":{\"shard\":1,\"bytes\":5000000}"),
            std::string::npos)
      << json;
}

TEST(ComputeCampaignHealth, ZeroElapsedStreamYieldsZeroRatesNotNan) {
  // The resume-immediately path: campaign_start and shard_spawn share
  // timestamp 0 and nothing has completed yet.
  const CampaignHealth health = computeCampaignHealth({
      R"({"event":"campaign_start","units":6,"shards":1,"workers":1,"resumed":true,"elapsed_ms":0})",
      R"({"event":"shard_spawn","shard":0,"pid":100,"spawn":1,"elapsed_ms":0})",
  });
  EXPECT_EQ(health.unitsPerSec, 0.0);
  ASSERT_EQ(health.shards.size(), 1u);
  EXPECT_EQ(health.shards[0].unitsPerSec, 0.0);
  EXPECT_EQ(health.shards[0].activeMillis, 0.0);
  const std::string json = campaignHealthJson(health);
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

TEST(CampaignHealthJson, EmptyStreamRendersThePinnedDocument) {
  // Byte-level pin of the schema: CI diffs this artifact, so accidental key
  // renames or float-format drift must fail loudly.
  EXPECT_EQ(campaignHealthJson(computeCampaignHealth({})),
            "{\"kind\":\"ppn-campaign-health\",\"finished\":false,"
            "\"interrupted\":false,\"units\":0,\"completed\":0,\"failed\":0,"
            "\"retries\":0,\"stalls\":0,\"kills\":0,\"elapsed_ms\":0.000,"
            "\"units_per_sec\":0.000,\"median_unit_latency_ms\":0.000,"
            "\"peak_rss\":null,\"shards\":[],\"stragglers\":[]}");
}

TEST(CampaignHealthJson, SameStreamProducesIdenticalBytes) {
  const std::string a = campaignHealthJson(computeCampaignHealth(
      stragglerCampaign()));
  const std::string b = campaignHealthJson(computeCampaignHealth(
      stragglerCampaign()));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find("nan"), std::string::npos);
  EXPECT_NE(a.find("\"stragglers\":[1]"), std::string::npos) << a;
}

TEST(LoadCampaignHealth, ThrowsWithoutAStreamAndReadsTheTmpFallback) {
  const fs::path dir = freshDir("load");
  EXPECT_THROW(loadCampaignHealth(dir.string()), std::runtime_error);

  std::ofstream out(dir / "events.jsonl.tmp", std::ios::binary);
  for (const std::string& line : stragglerCampaign()) out << line << '\n';
  out.close();
  const CampaignHealth health = loadCampaignHealth(dir.string());
  EXPECT_TRUE(health.finished);
  EXPECT_EQ(health.unitsCompleted, 5u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ppn
