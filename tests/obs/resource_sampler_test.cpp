#include "obs/resource_sampler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include <unistd.h>

namespace ppn {
namespace {

using Clock = ResourceSampler::Clock;
using std::chrono::milliseconds;

using PidList = std::vector<std::pair<std::uint32_t, std::int64_t>>;

PidList self(std::uint32_t tag = 0) {
  return {{tag, static_cast<std::int64_t>(::getpid())}};
}

TEST(SampleProcessResources, SelfReportsResidentMemory) {
  const auto sample = sampleProcessResources(::getpid());
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->pid, ::getpid());
  EXPECT_GT(sample->rssBytes, 0u);
  EXPECT_GE(sample->vsizeBytes, sample->rssBytes);
  // Standalone sampling has no previous reading to diff against.
  EXPECT_EQ(sample->cpuPermille, 0u);
}

TEST(SampleProcessResources, NonexistentPidIsNullopt) {
  // pid_max is bounded well below INT32_MAX on every Linux configuration.
  const std::int64_t pid = std::numeric_limits<std::int32_t>::max();
  EXPECT_FALSE(sampleProcessResources(pid).has_value());
}

TEST(ResourceSampler, BaselineIsImmediateThenThrottledToInterval) {
  ResourceSampler sampler(1'000);
  const auto t0 = Clock::now();

  const auto baseline = sampler.sample(self(7), t0);
  ASSERT_EQ(baseline.size(), 1u);
  EXPECT_EQ(baseline[0].first, 7u);
  EXPECT_GT(baseline[0].second.rssBytes, 0u);
  EXPECT_EQ(baseline[0].second.cpuPermille, 0u);

  EXPECT_TRUE(sampler.sample(self(7), t0 + milliseconds(10)).empty());
  EXPECT_TRUE(sampler.sample(self(7), t0 + milliseconds(999)).empty());
  const auto due = sampler.sample(self(7), t0 + milliseconds(1'000));
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].first, 7u);
}

TEST(ResourceSampler, IntervalZeroDisablesSamplingEntirely) {
  ResourceSampler sampler(0);
  const auto t0 = Clock::now();
  EXPECT_TRUE(sampler.sample(self(), t0).empty());
  EXPECT_TRUE(sampler.sample(self(), t0 + milliseconds(60'000)).empty());
}

TEST(ResourceSampler, DeadPidIsDroppedNotReported) {
  ResourceSampler sampler(10);
  const PidList dead = {{3u, std::numeric_limits<std::int32_t>::max()}};
  EXPECT_TRUE(sampler.sample(dead, Clock::now()).empty());
}

TEST(ResourceSampler, ForgottenPidStartsFromFreshBaseline) {
  // A pid absent from one poll (shard exited) must be re-baselined when it
  // reappears (pid recycled): the sample is immediate even though less than
  // an interval has passed since the pid was last sampled.
  ResourceSampler sampler(60'000);
  const auto t0 = Clock::now();
  ASSERT_EQ(sampler.sample(self(), t0).size(), 1u);
  EXPECT_TRUE(sampler.sample({}, t0 + milliseconds(1)).empty());
  const auto again = sampler.sample(self(), t0 + milliseconds(2));
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].second.cpuPermille, 0u);  // baseline again, no delta
}

TEST(ResourceSampler, TracksMultiplePidsIndependently) {
  ResourceSampler sampler(1'000);
  const auto t0 = Clock::now();
  const std::int64_t me = static_cast<std::int64_t>(::getpid());
  const std::int64_t parent = static_cast<std::int64_t>(::getppid());
  ASSERT_EQ(sampler.sample({{0u, me}}, t0).size(), 1u);
  // The parent pid is new at t0+10ms: it gets an immediate baseline while
  // our own pid stays throttled.
  const auto mixed =
      sampler.sample({{0u, me}, {1u, parent}}, t0 + milliseconds(10));
  ASSERT_EQ(mixed.size(), 1u);
  EXPECT_EQ(mixed[0].first, 1u);
  EXPECT_EQ(mixed[0].second.pid, parent);
}

}  // namespace
}  // namespace ppn
