#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"

namespace ppn {
namespace {

ConvergenceSample sample(std::uint64_t runId, std::uint64_t at,
                         std::vector<std::uint32_t> occupancy) {
  ConvergenceSample s;
  s.runId = runId;
  s.interactions = at;
  s.distinctNames = static_cast<std::uint32_t>(occupancy.size());
  for (const std::uint32_t c : occupancy) {
    if (c > 1) s.collisions += c;
  }
  s.occupancy = std::move(occupancy);
  return s;
}

std::vector<std::string> lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string tempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(FlightRecorderTest, RetainsEverythingBelowCapacity) {
  FlightRecorder rec(8, 100);
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.stride(), 100u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.totalRecorded(), 0u);

  for (std::uint64_t i = 0; i < 5; ++i) {
    rec.record(sample(7, i * 100, {2, 1}));
  }
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.totalRecorded(), 5u);
  const auto got = rec.samples();
  ASSERT_EQ(got.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(got[i].interactions, i * 100) << i;
    EXPECT_EQ(got[i].runId, 7u);
  }
}

// Wraparound must be exact: after k > capacity records, the ring holds
// precisely the last `capacity` samples, oldest first, fields intact.
TEST(FlightRecorderTest, WraparoundKeepsExactlyTheMostRecentSamples) {
  FlightRecorder rec(4, 1);
  for (std::uint64_t i = 0; i < 11; ++i) {
    rec.record(sample(i, 10 * i, {static_cast<std::uint32_t>(i + 1)}));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.totalRecorded(), 11u);

  const auto got = rec.samples();
  ASSERT_EQ(got.size(), 4u);
  for (std::uint64_t k = 0; k < 4; ++k) {
    const std::uint64_t i = 7 + k;  // samples 7, 8, 9, 10 survive
    EXPECT_EQ(got[k].runId, i);
    EXPECT_EQ(got[k].interactions, 10 * i);
    ASSERT_EQ(got[k].occupancy.size(), 1u);
    EXPECT_EQ(got[k].occupancy[0], i + 1);
  }
}

TEST(FlightRecorderTest, WraparoundAtExactCapacityBoundary) {
  FlightRecorder rec(3, 1);
  for (std::uint64_t i = 0; i < 6; ++i) rec.record(sample(i, i, {1}));
  // total_ == 2 * capacity: next write position wrapped to 0 twice.
  EXPECT_EQ(rec.totalRecorded(), 6u);
  const auto got = rec.samples();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].runId, 3u);
  EXPECT_EQ(got[2].runId, 5u);
}

TEST(FlightRecorderTest, DumpEmitsValidJsonlWithHeader) {
  FlightRecorder rec(4, 64);
  for (std::uint64_t i = 0; i < 6; ++i) {
    rec.record(sample(3, 64 * (i + 1), {2, 2, 1}));
  }
  std::ostringstream out;
  rec.dump("unit test", out);
  const auto ls = lines(out.str());
  ASSERT_EQ(ls.size(), 5u);  // header + 4 retained samples
  for (const auto& line : ls) {
    EXPECT_TRUE(jsonIsValid(line)) << line;
  }
  EXPECT_NE(ls[0].find("\"event\":\"flight_recorder_dump\""), std::string::npos);
  EXPECT_NE(ls[0].find("\"reason\":\"unit test\""), std::string::npos);
  EXPECT_NE(ls[0].find("\"capacity\":4"), std::string::npos);
  EXPECT_NE(ls[0].find("\"stride\":64"), std::string::npos);
  EXPECT_NE(ls[0].find("\"total_recorded\":6"), std::string::npos);
  EXPECT_NE(ls[0].find("\"retained\":4"), std::string::npos);
  for (std::size_t i = 1; i < ls.size(); ++i) {
    EXPECT_NE(ls[i].find("\"event\":\"convergence_sample\""), std::string::npos);
    EXPECT_NE(ls[i].find("\"occupancy\":[2,2,1]"), std::string::npos);
    EXPECT_NE(ls[i].find("\"collisions\":4"), std::string::npos);
  }
}

TEST(FlightRecorderTest, DumpToConfiguredPathWritesAndOverwrites) {
  const std::string path = tempPath("flight_dump.jsonl");
  FlightRecorder rec(4, 1, path);
  rec.record(sample(1, 1, {3}));
  ASSERT_TRUE(rec.dumpToConfiguredPath("first abort"));
  EXPECT_NE(slurp(path).find("first abort"), std::string::npos);

  rec.record(sample(2, 2, {2, 1}));
  ASSERT_TRUE(rec.dumpToConfiguredPath("second abort"));
  const std::string second = slurp(path);
  EXPECT_EQ(second.find("first abort"), std::string::npos);
  EXPECT_NE(second.find("second abort"), std::string::npos);
  EXPECT_EQ(lines(second).size(), 3u);  // header + both samples
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, DumpToConfiguredPathFailsSilentlyWithoutPath) {
  FlightRecorder rec(4, 1);
  rec.record(sample(1, 1, {1}));
  EXPECT_FALSE(rec.dumpToConfiguredPath("nowhere to go"));
}

TEST(ChromeTraceWriterTest, WriteIsValidJsonWithExpectedStructure) {
  ChromeTraceWriter writer;
  writer.setThreadName("checker");
  writer.begin("check", {{"explore", 1}});
  writer.begin("explore", {{"explore", 1}});
  writer.counter("explore_nodes", 42);
  writer.instant("explore_truncated", {{"nodes", 42}});
  writer.end("explore");
  writer.end("check");

  std::ostringstream out;
  writer.write(out);
  const std::string json = out.str();
  EXPECT_TRUE(jsonIsValid(json)) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // The track label lives in args.name of a reserved thread_name metadata
  // event — NOT in the event's own name (chrome://tracing ignores it there).
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"checker\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);

  // B/E pairs nest LIFO: the inner "explore" closes before the outer "check".
  const auto bCheck = json.find("\"name\":\"check\",\"ph\":\"B\"");
  const auto bExplore = json.find("\"name\":\"explore\",\"ph\":\"B\"");
  const auto eExplore = json.find("\"name\":\"explore\",\"ph\":\"E\"");
  const auto eCheck = json.find("\"name\":\"check\",\"ph\":\"E\"");
  ASSERT_NE(bCheck, std::string::npos);
  ASSERT_NE(bExplore, std::string::npos);
  ASSERT_NE(eExplore, std::string::npos);
  ASSERT_NE(eCheck, std::string::npos);
  EXPECT_LT(bCheck, bExplore);
  EXPECT_LT(bExplore, eExplore);
  EXPECT_LT(eExplore, eCheck);
}

TEST(ChromeTraceWriterTest, EmptyWriterStillProducesValidJson) {
  ChromeTraceWriter writer;
  std::ostringstream out;
  writer.write(out);
  EXPECT_TRUE(jsonIsValid(out.str())) << out.str();
}

TEST(ChromeTraceWriterTest, CapsEventsAndReportsDrops) {
  ChromeTraceWriter writer(2);
  for (int i = 0; i < 7; ++i) writer.instant("tick");
  EXPECT_GT(writer.droppedEvents(), 0u);
  std::ostringstream out;
  writer.write(out);
  EXPECT_TRUE(jsonIsValid(out.str())) << out.str();
  EXPECT_NE(out.str().find("events_dropped"), std::string::npos);
}

TEST(ChromeTraceWriterTest, WriteToFileRoundTrips) {
  const std::string path = tempPath("chrome_trace.json");
  ChromeTraceWriter writer;
  writer.begin("run 0", {{"run", 0}});
  writer.end("run 0");
  ASSERT_TRUE(writer.writeToFile(path));
  const std::string json = slurp(path);
  EXPECT_TRUE(jsonIsValid(json)) << json;
  EXPECT_NE(json.find("\"run 0\""), std::string::npos);
  std::remove(path.c_str());
  EXPECT_FALSE(writer.writeToFile("/nonexistent-dir/trace.json"));
}

TEST(ChromeTraceObserverTest, AdaptsRunAndExploreEvents) {
  ChromeTraceWriter writer;
  ChromeTraceObserver obs(writer);

  obs.onRunStart(RunStartEvent{5, 4, 5});
  obs.onFaultInjected(FaultInjectedEvent{5, 120, FaultTarget::kMobile, 2});
  obs.onBatchProgress(BatchProgressEvent{1, 8, 0});
  obs.onRunEnd(RunEndEvent{5, true, true, false, false, 950, 1000, 3.5});

  obs.onPhaseStart(ExplorePhaseStartEvent{9, "check"});
  obs.onExploreProgress(ExploreProgressEvent{9, 100, 10, 300, 5, 1 << 12,
                                             1e6, 17, false});
  obs.onTruncated(ExploreTruncatedEvent{9, 100, 100, {1, 2, 3}});
  obs.onPhaseEnd(ExplorePhaseEndEvent{9, "check", 0.8});
  obs.onSearchProgress(SearchProgressEvent{2, 128, 256, 3, 1, 64.0, 2000,
                                           false});

  std::ostringstream out;
  writer.write(out);
  const std::string json = out.str();
  EXPECT_TRUE(jsonIsValid(json)) << json;
  EXPECT_NE(json.find("\"run 5\""), std::string::npos);
  EXPECT_NE(json.find("fault_injected"), std::string::npos);
  EXPECT_NE(json.find("batch_completed"), std::string::npos);
  EXPECT_NE(json.find("\"check\""), std::string::npos);
  EXPECT_NE(json.find("explore_nodes"), std::string::npos);
  EXPECT_NE(json.find("explore_truncated"), std::string::npos);
  EXPECT_NE(json.find("search_examined"), std::string::npos);
}

}  // namespace
}  // namespace ppn
