#include "obs/events.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "faults/campaign.h"
#include "naming/asymmetric_naming.h"
#include "naming/registry.h"
#include "sched/random_scheduler.h"
#include "sim/runner.h"
#include "util/json.h"

namespace ppn {
namespace {

std::vector<std::string> lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

bool isEvent(const std::string& line, const std::string& name) {
  return line.find("\"event\":\"" + name + "\"") != std::string::npos;
}

/// Extracts an integer field ("run":17) with plain string surgery — enough
/// for lines produced by our own JsonWriter.
std::uint64_t intField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " in " << line;
  if (pos == std::string::npos) return 0;
  return std::stoull(line.substr(pos + needle.size()));
}

TEST(JsonlEventSink, EveryLineIsValidJsonWithElapsedMs) {
  std::ostringstream buffer;
  const AsymmetricNaming proto(5);
  {
    JsonlEventSink sink(buffer);
    BatchSpec spec;
    spec.numMobile = 5;
    spec.runs = 6;
    spec.seed = 11;
    spec.threads = 2;
    spec.observer = &sink;
    runBatch(proto, spec);
    sink.flush();
  }
  const auto all = lines(buffer.str());
  ASSERT_FALSE(all.empty());
  for (const auto& line : all) {
    EXPECT_TRUE(jsonIsValid(line)) << line;
    EXPECT_NE(line.find("\"elapsed_ms\":"), std::string::npos) << line;
  }
}

TEST(JsonlEventSink, RunStartAndRunEndPairPerRun) {
  std::ostringstream buffer;
  const AsymmetricNaming proto(5);
  JsonlEventSink sink(buffer);
  BatchSpec spec;
  spec.numMobile = 5;
  spec.runs = 8;
  spec.seed = 3;
  spec.threads = 4;
  spec.observer = &sink;
  spec.runIdBase = 100;
  const BatchResult result = runBatch(proto, spec);
  sink.flush();

  std::map<std::uint64_t, int> starts, ends;
  std::uint32_t named = 0;
  for (const auto& line : lines(buffer.str())) {
    if (isEvent(line, "run_start")) ++starts[intField(line, "run")];
    if (isEvent(line, "run_end")) {
      ++ends[intField(line, "run")];
      if (line.find("\"named\":true") != std::string::npos) ++named;
    }
  }
  EXPECT_EQ(starts.size(), 8u);
  EXPECT_EQ(ends.size(), 8u);
  for (std::uint64_t id = 100; id < 108; ++id) {
    EXPECT_EQ(starts[id], 1) << "run " << id;
    EXPECT_EQ(ends[id], 1) << "run " << id;
  }
  EXPECT_EQ(named, result.named);
}

TEST(JsonlEventSink, BatchProgressReachesTotal) {
  std::ostringstream buffer;
  const AsymmetricNaming proto(4);
  JsonlEventSink sink(buffer);  // interval 0: every progress event written
  BatchSpec spec;
  spec.numMobile = 4;
  spec.runs = 5;
  spec.seed = 7;
  spec.observer = &sink;
  runBatch(proto, spec);
  sink.flush();

  std::vector<std::string> progress;
  for (const auto& line : lines(buffer.str())) {
    if (isEvent(line, "batch_progress")) progress.push_back(line);
  }
  ASSERT_FALSE(progress.empty());
  const auto& last = progress.back();
  EXPECT_EQ(intField(last, "completed"), 5u);
  EXPECT_EQ(intField(last, "total"), 5u);
}

TEST(JsonlEventSink, CancelledRunStillEmitsPairedEvents) {
  std::ostringstream buffer;
  const AsymmetricNaming proto(4);
  Engine engine(proto, Configuration{{1, 1, 1, 1}, std::nullopt});
  RandomScheduler sched(4, 9);
  JsonlEventSink sink(buffer);
  CancelToken cancel{true};  // pre-cancelled: aborts at the first poll
  const RunOutcome out = runUntilSilent(engine, sched, RunLimits{1000, 4},
                                        &cancel, &sink, 42);
  sink.flush();
  EXPECT_TRUE(out.cancelled);

  bool sawStart = false, sawCancelled = false, sawEnd = false;
  for (const auto& line : lines(buffer.str())) {
    if (isEvent(line, "run_start")) {
      sawStart = true;
      EXPECT_EQ(intField(line, "run"), 42u);
    }
    if (isEvent(line, "cancelled")) {
      sawCancelled = true;
      EXPECT_EQ(intField(line, "run"), 42u);
    }
    if (isEvent(line, "run_end")) {
      sawEnd = true;
      EXPECT_NE(line.find("\"cancelled\":true"), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(sawStart);
  EXPECT_TRUE(sawCancelled);
  EXPECT_TRUE(sawEnd);
}

/// Always schedules (0, 1). On asymmetric {1,1,1} the pair resolves once and
/// then interacts null forever while agents 0 and 2 stay homonyms — the run
/// can only end via a budget, which makes watchdog behaviour deterministic.
class FixedPairScheduler final : public Scheduler {
 public:
  Interaction next() override { return Interaction{0, 1}; }
  std::string name() const override { return "fixed-pair"; }
};

TEST(JsonlEventSink, WatchdogAbortCarriesRunIdAndBudget) {
  std::ostringstream buffer;
  const AsymmetricNaming proto(3);
  Engine engine(proto, Configuration{{1, 1, 1}, std::nullopt});
  FixedPairScheduler sched;
  JsonlEventSink sink(buffer);
  RunLimits limits;
  limits.maxInteractions = 10'000'000'000ull;
  limits.checkInterval = 64;
  limits.maxWallMillis = 5;
  const RunOutcome out =
      runUntilSilent(engine, sched, limits, nullptr, &sink, 7);
  sink.flush();
  ASSERT_TRUE(out.timedOut);

  bool sawAbort = false, sawEnd = false;
  for (const auto& line : lines(buffer.str())) {
    if (isEvent(line, "watchdog_abort")) {
      sawAbort = true;
      EXPECT_EQ(intField(line, "run"), 7u);
      EXPECT_EQ(intField(line, "budget_millis"), 5u);
    }
    if (isEvent(line, "run_end")) {
      sawEnd = true;
      EXPECT_EQ(intField(line, "run"), 7u);
      EXPECT_NE(line.find("\"timed_out\":true"), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(sawAbort);
  EXPECT_TRUE(sawEnd);
}

TEST(JsonlEventSink, CampaignEmitsFaultsAndOnePairPerRun) {
  std::ostringstream buffer;
  const auto proto = makeProtocol("selfstab-weak", 4);
  JsonlEventSink sink(buffer);
  CampaignSpec spec;
  spec.regime = FaultRegime::kPoissonTransient;
  spec.params.rate = 0.01;
  spec.faultWindow = 2000;
  spec.numMobile = 4;
  spec.runs = 4;
  spec.seed = 5;
  spec.threads = 2;
  spec.observer = &sink;
  spec.runIdBase = 10;
  const CampaignResult result = runCampaign(*proto, spec);
  sink.flush();

  std::map<std::uint64_t, int> starts, ends;
  std::uint64_t faults = 0;
  for (const auto& line : lines(buffer.str())) {
    EXPECT_TRUE(jsonIsValid(line)) << line;
    if (isEvent(line, "run_start")) ++starts[intField(line, "run")];
    if (isEvent(line, "run_end")) ++ends[intField(line, "run")];
    if (isEvent(line, "fault_injected")) {
      ++faults;
      const std::uint64_t id = intField(line, "run");
      EXPECT_GE(id, 10u);
      EXPECT_LT(id, 14u);
      EXPECT_NE(line.find("\"target\":\"mobile\""), std::string::npos) << line;
    }
  }
  // Exactly one pair per campaign run — the internal recovery phase must not
  // produce nested run events.
  EXPECT_EQ(starts.size(), 4u);
  EXPECT_EQ(ends.size(), 4u);
  for (const auto& [id, n] : starts) EXPECT_EQ(n, 1) << "run " << id;
  for (const auto& [id, n] : ends) EXPECT_EQ(n, 1) << "run " << id;

  std::uint64_t expectedFaults = 0;
  for (const auto& o : result.outcomes) expectedFaults += o.faultsInjected;
  EXPECT_EQ(faults, expectedFaults);
}

TEST(JsonlEventSink, UnwritablePathThrows) {
  EXPECT_THROW(JsonlEventSink("/nonexistent-dir/sub/events.jsonl"),
               std::runtime_error);
}

/// Writes `content` byte-for-byte to a fresh temp file and returns its path.
std::string tempJsonl(const std::string& tag, const std::string& content) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("ppn_events_" + tag + "_" + std::to_string(::getpid()) +
                     ".jsonl");
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << content;
  out.close();
  return path.string();
}

// Line-ending regressions pinning the readJsonlTolerant contract documented
// in obs/events.h: CRLF streams parse byte-identically to their LF twins,
// and a final line with no terminating newline is ALWAYS torn — even when
// its content happens to be valid JSON.

TEST(ReadJsonlTolerant, CrlfStreamParsesIdenticallyToLfTwin) {
  const std::string lf = tempJsonl("lf", "{\"a\":1}\n{\"b\":2}\n");
  const std::string crlf = tempJsonl("crlf", "{\"a\":1}\r\n{\"b\":2}\r\n");
  const JsonlReadResult fromLf = readJsonlTolerant(lf);
  const JsonlReadResult fromCrlf = readJsonlTolerant(crlf);
  EXPECT_FALSE(fromLf.torn);
  EXPECT_FALSE(fromCrlf.torn);
  ASSERT_EQ(fromLf.lines.size(), 2u);
  EXPECT_EQ(fromLf.lines, fromCrlf.lines);  // '\r' stripped, bytes identical
  EXPECT_EQ(fromCrlf.lines[0], "{\"a\":1}");
  std::filesystem::remove(lf);
  std::filesystem::remove(crlf);
}

TEST(ReadJsonlTolerant, FinalLineWithoutNewlineIsTornEvenWhenValidJson) {
  // A flushed-per-line writer always terminates lines, so a missing
  // terminator is the crash signature; keeping the line would double-count
  // a unit whose checkpoint write raced the SIGKILL.
  const std::string path = tempJsonl("torn", "{\"a\":1}\n{\"b\":2}");
  const JsonlReadResult result = readJsonlTolerant(path);
  EXPECT_TRUE(result.torn);
  ASSERT_EQ(result.lines.size(), 1u);
  EXPECT_EQ(result.lines[0], "{\"a\":1}");
  std::filesystem::remove(path);
}

TEST(ReadJsonlTolerant, TornCrlfTailIsDroppedTheSameWay) {
  // CRLF variant of the torn tail: "{\"b\":2}\r" with no '\n' is still torn.
  const std::string path = tempJsonl("torncrlf", "{\"a\":1}\r\n{\"b\":2}\r");
  const JsonlReadResult result = readJsonlTolerant(path);
  EXPECT_TRUE(result.torn);
  ASSERT_EQ(result.lines.size(), 1u);
  EXPECT_EQ(result.lines[0], "{\"a\":1}");
  std::filesystem::remove(path);
}

TEST(ReadJsonlTolerant, InteriorCorruptionStillThrows) {
  const std::string path =
      tempJsonl("interior", "{\"a\":1}\nnot json at all\n{\"b\":2}\n");
  EXPECT_THROW(readJsonlTolerant(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ppn
