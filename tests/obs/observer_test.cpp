#include "obs/observer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "core/engine.h"
#include "faults/certify.h"
#include "naming/asymmetric_naming.h"
#include "obs/metrics.h"
#include "obs/probes.h"
#include "obs/progress.h"
#include "sim/runner.h"

namespace ppn {
namespace {

/// Thread-safe event recorder for assertions.
class CountingObserver final : public RunObserver {
 public:
  void onRunStart(const RunStartEvent& e) override {
    std::lock_guard<std::mutex> lock(mu_);
    startIds_.push_back(e.runId);
  }
  void onRunEnd(const RunEndEvent& e) override {
    std::lock_guard<std::mutex> lock(mu_);
    endIds_.push_back(e.runId);
    if (e.silent) ++converged_;
    if (e.named) ++named_;
    if (e.timedOut) ++timedOut_;
  }
  void onSilenceCheck(const SilenceCheckEvent&) override { ++silenceChecks_; }
  void onFaultInjected(const FaultInjectedEvent& e) override {
    std::lock_guard<std::mutex> lock(mu_);
    faults_.push_back(e);
  }
  void onBatchProgress(const BatchProgressEvent& e) override {
    std::lock_guard<std::mutex> lock(mu_);
    // Events from concurrent workers may arrive out of order; keep the
    // furthest-along one.
    if (e.completed >= lastProgress_.completed) lastProgress_ = e;
  }

  std::vector<std::uint64_t> startIds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return startIds_;
  }
  std::vector<std::uint64_t> endIds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return endIds_;
  }
  std::vector<FaultInjectedEvent> faults() const {
    std::lock_guard<std::mutex> lock(mu_);
    return faults_;
  }
  BatchProgressEvent lastProgress() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lastProgress_;
  }
  std::uint32_t converged() const { return converged_; }
  std::uint32_t named() const { return named_; }
  std::uint32_t timedOut() const { return timedOut_; }
  std::uint64_t silenceChecks() const { return silenceChecks_; }

 private:
  mutable std::mutex mu_;
  std::vector<std::uint64_t> startIds_;
  std::vector<std::uint64_t> endIds_;
  std::vector<FaultInjectedEvent> faults_;
  BatchProgressEvent lastProgress_;
  std::atomic<std::uint32_t> converged_{0}, named_{0}, timedOut_{0};
  std::atomic<std::uint64_t> silenceChecks_{0};
};

TEST(Observer, BatchEmitsOnePairPerRunWithUniqueIds) {
  const AsymmetricNaming proto(5);
  CountingObserver obs;
  BatchSpec spec;
  spec.numMobile = 5;
  spec.runs = 10;
  spec.seed = 21;
  spec.threads = 4;
  spec.observer = &obs;
  spec.runIdBase = 1000;
  const BatchResult result = runBatch(proto, spec);

  const auto starts = obs.startIds();
  const auto ends = obs.endIds();
  EXPECT_EQ(starts.size(), 10u);
  EXPECT_EQ(ends.size(), 10u);
  const std::set<std::uint64_t> unique(starts.begin(), starts.end());
  EXPECT_EQ(unique.size(), 10u);
  EXPECT_EQ(*unique.begin(), 1000u);
  EXPECT_EQ(*unique.rbegin(), 1009u);
  EXPECT_EQ(std::set<std::uint64_t>(ends.begin(), ends.end()), unique);

  EXPECT_EQ(obs.converged(), result.converged);
  EXPECT_EQ(obs.named(), result.named);
  EXPECT_EQ(obs.timedOut(), result.timedOut);
  EXPECT_GT(obs.silenceChecks(), 0u);

  const auto progress = obs.lastProgress();
  EXPECT_EQ(progress.completed, 10u);
  EXPECT_EQ(progress.total, 10u);
}

TEST(Observer, EngineCorruptHooksReportTargetAndRunId) {
  const AsymmetricNaming proto(4);
  Engine engine(proto, Configuration{{0, 1, 2, 3}, std::nullopt});
  CountingObserver obs;
  engine.attachObserver(&obs, 77);
  engine.corruptMobile(2, 0);
  const auto faults = obs.faults();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].runId, 77u);
  EXPECT_EQ(faults[0].target, FaultTarget::kMobile);
  EXPECT_EQ(faults[0].agent, 2u);

  // Detaching stops the reports.
  engine.attachObserver(nullptr);
  engine.corruptMobile(1, 0);
  EXPECT_EQ(obs.faults().size(), 1u);
}

TEST(Observer, MultiObserverFansOutToAllTargets) {
  CountingObserver a, b;
  MultiObserver multi;
  EXPECT_TRUE(multi.empty());
  multi.add(&a);
  multi.add(&b);
  multi.add(nullptr);  // ignored
  EXPECT_FALSE(multi.empty());

  multi.onRunStart(RunStartEvent{5, 4, 4});
  multi.onRunEnd(RunEndEvent{5, true, true, false, false, 10, 12, 0.5});
  ASSERT_EQ(a.startIds().size(), 1u);
  ASSERT_EQ(b.startIds().size(), 1u);
  EXPECT_EQ(a.startIds()[0], 5u);
  EXPECT_EQ(b.endIds()[0], 5u);
  EXPECT_EQ(a.named(), 1u);
  EXPECT_EQ(b.named(), 1u);
}

TEST(Observer, MetricsProbeMatchesBatchSummary) {
  const AsymmetricNaming proto(5);
  for (const std::uint32_t threads : {1u, 2u, 4u}) {
    MetricsRegistry registry;
    MetricsRunObserver probe(registry);
    BatchSpec spec;
    spec.numMobile = 5;
    spec.runs = 12;
    spec.seed = 33;
    spec.threads = threads;
    spec.observer = &probe;
    const BatchResult result = runBatch(proto, spec);

    const auto snap = registry.snapshot();
    EXPECT_EQ(*snap.counterValue("runs_started"), 12u) << threads;
    EXPECT_EQ(*snap.counterValue("runs_ended"), 12u) << threads;
    EXPECT_EQ(*snap.counterValue("runs_converged"), result.converged)
        << threads;
    EXPECT_EQ(*snap.counterValue("runs_named"), result.named) << threads;
    EXPECT_EQ(*snap.counterValue("runs_timed_out"), result.timedOut)
        << threads;
    EXPECT_GT(*snap.counterValue("silence_checks"), 0u) << threads;

    const auto* hist = snap.histogramNamed("convergence_interactions");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, result.converged) << threads;

    EXPECT_EQ(*snap.gaugeValue("batch_total"), 12) << threads;
    if (threads == 1) {
      // With workers, progress events can be applied out of order (the
      // gauge is last-write-wins), so the exact final value is only
      // guaranteed single-threaded.
      EXPECT_EQ(*snap.gaugeValue("batch_completed"), 12);
    }
  }
}

TEST(Observer, CertifySweepKeepsRunIdsUniqueAcrossCells) {
  CountingObserver obs;
  CertifySpec spec;
  spec.protocols = {"asymmetric", "selfstab-weak"};
  spec.populations = {4};
  spec.regimes = {FaultRegime::kPoissonTransient, FaultRegime::kChurn};
  spec.runs = 3;
  spec.faultWindow = 1000;
  spec.threads = 2;
  spec.observer = &obs;
  certifyRecovery(spec);

  const std::uint64_t planned = plannedRuns(spec);
  EXPECT_EQ(planned, 2u * 2u * 3u);  // 2 protocols x 2 regimes x 3 runs
  const auto starts = obs.startIds();
  const auto ends = obs.endIds();
  EXPECT_EQ(starts.size(), planned);
  EXPECT_EQ(ends.size(), planned);
  EXPECT_EQ(std::set<std::uint64_t>(starts.begin(), starts.end()).size(),
            planned);
}

TEST(Observer, ProgressReporterCountsRunEnds) {
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  {
    ProgressReporter reporter(4, /*intervalMillis=*/0, out);
    reporter.onRunEnd(RunEndEvent{0, true, true, false, false, 1, 1, 0.1});
    reporter.onRunEnd(RunEndEvent{1, false, false, true, false, 1, 1, 0.1});
    EXPECT_EQ(reporter.completed(), 2u);
    EXPECT_EQ(reporter.degraded(), 1u);
    reporter.finish();
    reporter.finish();  // idempotent
  }
  std::fseek(out, 0, SEEK_END);
  EXPECT_GT(std::ftell(out), 0);  // something was printed
  std::fclose(out);
}

TEST(Observer, UnobservedBatchIsBitIdenticalToObserved) {
  // The observer must not perturb results: seeds are pre-split, so an
  // observed batch reports exactly the same statistics as an unobserved one.
  const AsymmetricNaming proto(6);
  BatchSpec spec;
  spec.numMobile = 6;
  spec.runs = 8;
  spec.seed = 55;
  const BatchResult plain = runBatch(proto, spec);

  CountingObserver obs;
  spec.observer = &obs;
  spec.threads = 4;
  const BatchResult observed = runBatch(proto, spec);

  EXPECT_EQ(plain.converged, observed.converged);
  EXPECT_EQ(plain.named, observed.named);
  EXPECT_EQ(plain.convergenceInteractions.mean,
            observed.convergenceInteractions.mean);
  EXPECT_EQ(plain.convergenceInteractions.p90,
            observed.convergenceInteractions.p90);
}

}  // namespace
}  // namespace ppn
