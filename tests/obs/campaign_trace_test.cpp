#include "obs/campaign_trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "obs/trace.h"
#include "util/json.h"

namespace ppn {
namespace {

namespace fs = std::filesystem;

fs::path freshDir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() /
                       ("ppn_trace_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir / "shards");
  return dir;
}

void writeFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  ASSERT_TRUE(out) << path;
  out << content;
}

double numField(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.find(key);
  return v != nullptr && v->isNumber() ? v->asDouble() : -1.0;
}

std::string strField(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.find(key);
  return v != nullptr && v->isString() ? v->asString() : std::string();
}

/// A campaign over 2 shards: shard 1 stalls on unit 1, is SIGKILLed and
/// respawned (pid 2222 -> 3333), and finishes clean. Exercises every event
/// kind the assembler maps.
std::string orchestratorStream() {
  return R"({"event":"campaign_start","units":4,"shards":2,"workers":2,"resumed":false,"elapsed_ms":0}
{"event":"shard_spawn","shard":0,"pid":1111,"spawn":1,"elapsed_ms":1}
{"event":"shard_spawn","shard":1,"pid":2222,"spawn":1,"elapsed_ms":1}
{"event":"unit_start","unit":0,"shard":0,"attempt":1,"elapsed_ms":2}
{"event":"resource_sample","shard":0,"pid":1111,"rss_bytes":1048576,"vsize_bytes":2097152,"utime_ms":3,"stime_ms":1,"cpu_permille":120,"read_bytes":0,"write_bytes":0,"elapsed_ms":3}
{"event":"unit_end","unit":0,"shard":0,"attempt":1,"status":"ok","elapsed_ms":10}
{"event":"unit_start","unit":1,"shard":1,"attempt":1,"elapsed_ms":2}
{"event":"unit_retry","unit":1,"shard":1,"attempt":1,"backoff_ms":5,"reason":"stalled","elapsed_ms":12}
{"event":"shard_exit","shard":1,"pid":2222,"code":-1,"signal":9,"elapsed_ms":12}
{"event":"shard_spawn","shard":1,"pid":3333,"spawn":2,"elapsed_ms":20}
{"event":"unit_start","unit":1,"shard":1,"attempt":2,"elapsed_ms":21}
{"event":"unit_end","unit":1,"shard":1,"attempt":2,"status":"ok","elapsed_ms":30}
{"event":"unit_end","unit":2,"shard":0,"attempt":1,"status":"ok","elapsed_ms":31}
{"event":"unit_end","unit":3,"shard":1,"attempt":1,"status":"ok","elapsed_ms":32}
{"event":"unit_failed","unit":9,"shard":0,"attempts":3,"reason":"retries exhausted","elapsed_ms":33}
{"event":"shard_exit","shard":0,"pid":1111,"code":0,"signal":0,"elapsed_ms":34}
{"event":"shard_exit","shard":1,"pid":3333,"code":0,"signal":0,"elapsed_ms":35}
{"event":"campaign_end","completed":4,"failed":0,"total":4,"interrupted":false,"elapsed_ms":36}
)";
}

/// Overlapping runs (lane allocation), a fault, and an explore phase.
std::string shard0Stream() {
  return R"({"event":"run_start","run":1,"num_mobile":4,"num_participants":5,"elapsed_ms":1}
{"event":"run_start","run":2,"num_mobile":4,"num_participants":5,"elapsed_ms":2}
{"event":"fault_injected","run":2,"at":17,"target":"mobile","agent":3,"elapsed_ms":3}
{"event":"run_end","run":2,"silent":true,"named":true,"elapsed_ms":4}
{"event":"batch_progress","completed":1,"total":2,"degraded":0,"elapsed_ms":4}
{"event":"run_end","run":1,"silent":true,"named":true,"elapsed_ms":5}
{"event":"phase_start","explore":1,"phase":"bfs","elapsed_ms":6}
{"event":"explore_progress","explore":1,"nodes":10,"frontier":4,"elapsed_ms":7}
{"event":"phase_end","explore":1,"phase":"bfs","wall_millis":1,"elapsed_ms":8}
)";
}

/// Torn final line (SIGKILL mid-write): tolerated, dropped, not an error.
std::string shard1Stream() {
  return "{\"event\":\"run_start\",\"run\":9,\"num_mobile\":4,"
         "\"num_participants\":5,\"elapsed_ms\":1}\n"
         "{\"event\":\"run_end\",\"run\":9,\"silent\":true,\"elapsed_ms\":2}\n"
         "{\"event\":\"run_start\",\"run\":10,\"num_mob";
}

fs::path fullCampaignDir(const std::string& tag) {
  const fs::path dir = freshDir(tag);
  writeFile(dir / "events.jsonl", orchestratorStream());
  writeFile(dir / "shards" / "shard_000.events.jsonl", shard0Stream());
  writeFile(dir / "shards" / "shard_001.events.jsonl", shard1Stream());
  return dir;
}

std::string traceJson(const ChromeTraceWriter& writer) {
  std::ostringstream out;
  writer.write(out);
  return out.str();
}

/// Perfetto's hard requirement: within every (pid, tid) track, B and E nest
/// and every B has a matching E.
void expectBalanced(const JsonValue& doc) {
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());
  std::map<std::pair<double, double>, std::vector<std::string>> stacks;
  for (const JsonValue& e : events->items()) {
    ASSERT_TRUE(e.isObject());
    const std::string ph = strField(e, "ph");
    const std::string name = strField(e, "name");
    ASSERT_FALSE(ph.empty());
    ASSERT_FALSE(name.empty());
    const auto key = std::make_pair(numField(e, "pid"), numField(e, "tid"));
    if (ph == "B") {
      stacks[key].push_back(name);
    } else if (ph == "E") {
      auto& stack = stacks[key];
      ASSERT_FALSE(stack.empty())
          << "E \"" << name << "\" without open B on pid " << key.first
          << " tid " << key.second;
      EXPECT_EQ(stack.back(), name);
      stack.pop_back();
    } else if (ph == "M") {
      EXPECT_TRUE(name == "thread_name" || name == "process_name") << name;
    }
  }
  for (const auto& [key, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed slice \"" << stack.back()
                               << "\" on pid " << key.first;
  }
}

bool hasEvent(const JsonValue& doc, const std::string& ph,
              const std::string& name, double pid = -1.0) {
  for (const JsonValue& e : doc.find("traceEvents")->items()) {
    if (strField(e, "ph") == ph && strField(e, "name") == name &&
        (pid < 0.0 || numField(e, "pid") == pid)) {
      return true;
    }
  }
  return false;
}

TEST(DiscoverCampaignTraceInputs, FindsFinalStreamTmpFallbackAndShards) {
  const fs::path dir = freshDir("discover");
  EXPECT_TRUE(discoverCampaignTraceInputs(dir.string()).empty());

  writeFile(dir / "events.jsonl.tmp", orchestratorStream());
  writeFile(dir / "shards" / "shard_001.events.jsonl", shard1Stream());
  writeFile(dir / "shards" / "shard_000.events.jsonl", shard0Stream());
  // Not event streams: checkpoints, artifacts, malformed names.
  writeFile(dir / "shards" / "shard_000.partial.jsonl", "{}\n");
  writeFile(dir / "shards" / "shard_x.events.jsonl", "{}\n");

  CampaignTraceInputs live = discoverCampaignTraceInputs(dir.string());
  EXPECT_TRUE(live.orchestratorLive);
  EXPECT_EQ(live.orchestratorEvents, (dir / "events.jsonl.tmp").string());
  ASSERT_EQ(live.shardStreams.size(), 2u);
  EXPECT_EQ(live.shardStreams[0].shard, 0u);
  EXPECT_EQ(live.shardStreams[1].shard, 1u);

  // The renamed final stream wins over a stale .tmp.
  writeFile(dir / "events.jsonl", orchestratorStream());
  CampaignTraceInputs done = discoverCampaignTraceInputs(dir.string());
  EXPECT_FALSE(done.orchestratorLive);
  EXPECT_EQ(done.orchestratorEvents, (dir / "events.jsonl").string());
  fs::remove_all(dir);
}

TEST(AssembleCampaignTrace, MergedTraceIsBalancedAndFullyAttributed) {
  const fs::path dir = fullCampaignDir("assemble");
  const CampaignTraceInputs inputs = discoverCampaignTraceInputs(dir.string());
  ChromeTraceWriter writer;
  const CampaignTraceStats stats = assembleCampaignTrace(inputs, writer);

  EXPECT_EQ(stats.orchestratorLines, 18u);
  EXPECT_EQ(stats.shardLines, 11u);  // torn final line dropped upstream
  EXPECT_EQ(stats.skippedLines, 0u);
  // campaign + 3 shard-runs + units {0, 1 (twice), 2, 3} on pid 0, runs
  // {1, 2, 9} + phase "bfs" on the shard pids.
  EXPECT_EQ(stats.slices, 13u);
  // shard_stalled + shard_killed + unit_failed + fault_injected.
  EXPECT_EQ(stats.instants, 4u);
  // rss + cpu, batch_completed, explore_nodes + explore_frontier.
  EXPECT_EQ(stats.counters, 5u);
  // Only the stall-killed attempt of unit 1 was open at shard_exit.
  EXPECT_EQ(stats.forcedCloses, 1u);
  EXPECT_EQ(stats.shardPids, (std::vector<std::int64_t>{1111, 2222, 3333}));

  EXPECT_EQ(writer.droppedEvents(), 0u);
  const auto doc = jsonParse(traceJson(writer));
  ASSERT_TRUE(doc.has_value());
  expectBalanced(*doc);
  EXPECT_TRUE(hasEvent(*doc, "B", "campaign", 0));
  EXPECT_TRUE(hasEvent(*doc, "B", "unit 1", 0));
  EXPECT_TRUE(hasEvent(*doc, "i", "shard_stalled", 0));
  EXPECT_TRUE(hasEvent(*doc, "i", "shard_killed", 0));
  EXPECT_TRUE(hasEvent(*doc, "C", "rss_bytes", 1111));
  EXPECT_TRUE(hasEvent(*doc, "C", "cpu_permille", 1111));
  EXPECT_TRUE(hasEvent(*doc, "B", "run 2", 1111));
  EXPECT_TRUE(hasEvent(*doc, "B", "bfs", 1111));
  EXPECT_TRUE(hasEvent(*doc, "i", "fault_injected", 1111));
  // Shard 1's surviving stream belongs to the respawn: pid 3333, not 2222.
  EXPECT_TRUE(hasEvent(*doc, "B", "run 9", 3333));
  EXPECT_TRUE(hasEvent(*doc, "M", "process_name", 0));
  EXPECT_TRUE(hasEvent(*doc, "M", "process_name", 1111));
  fs::remove_all(dir);
}

TEST(AssembleCampaignTrace, InterruptedCampaignIsForceClosedBalanced) {
  const fs::path dir = freshDir("interrupted");
  writeFile(dir / "events.jsonl.tmp",
            R"({"event":"campaign_start","units":4,"shards":1,"workers":1,"resumed":false,"elapsed_ms":0}
{"event":"shard_spawn","shard":0,"pid":777,"spawn":1,"elapsed_ms":1}
{"event":"unit_start","unit":0,"shard":0,"attempt":1,"elapsed_ms":2}
)");
  ChromeTraceWriter writer;
  const CampaignTraceStats stats = assembleCampaignTrace(
      discoverCampaignTraceInputs(dir.string()), writer);
  // unit 0, shard-run, and the campaign slice all force-close at EOF.
  EXPECT_EQ(stats.forcedCloses, 3u);
  const auto doc = jsonParse(traceJson(writer));
  ASSERT_TRUE(doc.has_value());
  expectBalanced(*doc);
  fs::remove_all(dir);
}

TEST(AssembleCampaignTrace, OrphanShardStreamGetsSyntheticPid) {
  const fs::path dir = freshDir("orphan");  // no orchestrator stream at all
  writeFile(dir / "shards" / "shard_002.events.jsonl", shard0Stream());
  ChromeTraceWriter writer;
  const CampaignTraceStats stats = assembleCampaignTrace(
      discoverCampaignTraceInputs(dir.string()), writer);
  EXPECT_EQ(stats.shardPids, (std::vector<std::int64_t>{1'000'002}));
  const auto doc = jsonParse(traceJson(writer));
  ASSERT_TRUE(doc.has_value());
  expectBalanced(*doc);
  fs::remove_all(dir);
}

TEST(AssembleCampaignTrace, DropMarkerCountsDropsAcrossAllMergedStreams) {
  const fs::path dir = fullCampaignDir("dropmarker");
  const CampaignTraceInputs inputs = discoverCampaignTraceInputs(dir.string());

  // Reference: the same assembly into an unbounded writer retains everything.
  ChromeTraceWriter unbounded;
  assembleCampaignTrace(inputs, unbounded);
  const std::size_t attempted = unbounded.size();
  ASSERT_EQ(unbounded.droppedEvents(), 0u);

  constexpr std::size_t kCap = 8;
  ASSERT_GT(attempted, kCap);
  ChromeTraceWriter bounded(kCap);
  assembleCampaignTrace(inputs, bounded);
  EXPECT_EQ(bounded.size(), kCap);
  EXPECT_EQ(bounded.droppedEvents(), attempted - kCap);

  const auto doc = jsonParse(traceJson(bounded));
  ASSERT_TRUE(doc.has_value());
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), kCap + 1);  // retained + the marker
  const JsonValue& marker = events->items().back();
  EXPECT_EQ(strField(marker, "name"), "events_dropped");
  const JsonValue* args = marker.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(numField(*args, "count"),
            static_cast<double>(attempted - kCap));
  fs::remove_all(dir);
}

TEST(AssembleCampaignTrace, UnreadableStreamThrows) {
  CampaignTraceInputs inputs;
  inputs.orchestratorEvents = "/nonexistent-dir/events.jsonl";
  ChromeTraceWriter writer;
  EXPECT_THROW(assembleCampaignTrace(inputs, writer), std::runtime_error);
}

}  // namespace
}  // namespace ppn
