#include "analysis/explore.h"

#include <gtest/gtest.h>

#include "naming/asymmetric_naming.h"
#include "naming/color_example.h"
#include "naming/counting_protocol.h"
#include "naming/symmetric_global_naming.h"

namespace ppn {
namespace {

TEST(PairLabel, TriangularEnumerationIsABijection) {
  for (std::uint32_t m = 2; m <= 10; ++m) {
    std::vector<bool> seen(numPairs(m), false);
    for (std::uint32_t i = 0; i < m; ++i) {
      for (std::uint32_t j = i + 1; j < m; ++j) {
        const PairLabel l = pairLabel(i, j, m);
        ASSERT_LT(l, numPairs(m));
        ASSERT_FALSE(seen[l]) << "label collision at m=" << m;
        seen[l] = true;
      }
    }
  }
}

TEST(ExploreConcrete, ColorExampleFromOneBlack) {
  const ColorExample proto;
  const ConfigGraph g =
      exploreConcrete(proto, {Configuration{{1, 0, 0}, std::nullopt}});
  EXPECT_FALSE(g.truncated);
  EXPECT_EQ(g.numParticipants, 3u);
  // Reachable: the three one-black placements plus all-black.
  EXPECT_EQ(g.size(), 4u);
  // Every configuration has 3 pairs' worth of edges (some may be dedup'd
  // identical-orientation outcomes but never zero).
  for (std::uint32_t v = 0; v < g.size(); ++v) EXPECT_GE(g.edgeCount(v), 3u);
}

TEST(ExploreConcrete, RecordsNullSelfLoops) {
  const AsymmetricNaming proto(3);
  const ConfigGraph g =
      exploreConcrete(proto, {Configuration{{0, 1, 2}, std::nullopt}});
  ASSERT_EQ(g.size(), 1u);  // already terminal
  // All three pairs appear as null self-loops.
  std::vector<bool> labels(numPairs(3), false);
  for (const Edge& e : g.edges(0)) {
    EXPECT_EQ(e.to, 0u);
    EXPECT_FALSE(e.changed);
    labels[e.label] = true;
  }
  for (const bool b : labels) EXPECT_TRUE(b);
}

TEST(ExploreConcrete, AsymmetricOrientationsBothPresent) {
  const AsymmetricNaming proto(3);
  const ConfigGraph g =
      exploreConcrete(proto, {Configuration{{0, 0}, std::nullopt}});
  // (0,0) -> (0,1) or (1,0) depending on orientation: 3 nodes total.
  EXPECT_EQ(g.size(), 3u);
  // The start node has two distinct outgoing changed edges with one label.
  std::size_t changed = 0;
  for (const Edge& e : g.edges(0)) changed += e.changed ? 1 : 0;
  EXPECT_EQ(changed, 2u);
}

TEST(ExploreConcrete, LeaderParticipates) {
  const CountingProtocol proto(2);
  // Agents pre-named 1 with the guess still 0: the first leader meeting
  // bumps n without renaming — a leader-only change.
  const Configuration start{{1, 1}, *proto.initialLeaderState()};
  const ConfigGraph g = exploreConcrete(proto, {start});
  EXPECT_FALSE(g.truncated);
  EXPECT_EQ(g.numParticipants, 3u);  // 2 mobile + leader
  EXPECT_GT(g.size(), 1u);
  // Some edge must change the leader state only (k-pointer bumps).
  bool leaderOnlyChange = false;
  for (std::uint32_t v = 0; v < g.size(); ++v) {
    for (const Edge& e : g.edges(v)) {
      if (e.changed && !e.changedMobile) leaderOnlyChange = true;
    }
  }
  EXPECT_TRUE(leaderOnlyChange);
}

TEST(ExploreConcrete, TruncationFlag) {
  const SymmetricGlobalNaming proto(4);
  Configuration start{{0, 0, 0, 0}, std::nullopt};
  const ConfigGraph g = exploreConcrete(proto, {start}, /*maxNodes=*/3);
  EXPECT_TRUE(g.truncated);
}

TEST(ExploreCanonical, QuotientIsSmaller) {
  const SymmetricGlobalNaming proto(3);
  const auto initial = Configuration{{0, 0, 0}, std::nullopt};
  const ConfigGraph concrete = exploreConcrete(proto, {initial});
  const ConfigGraph canonical = exploreCanonical(proto, {initial});
  EXPECT_FALSE(canonical.truncated);
  EXPECT_LT(canonical.size(), concrete.size());
  // Every canonical node is sorted.
  for (std::uint32_t v = 0; v < canonical.size(); ++v) {
    const Configuration c = canonical.config(v);
    EXPECT_TRUE(std::is_sorted(c.mobile.begin(), c.mobile.end()));
  }
}

TEST(ExploreCanonical, OmitsNullEdgesKeepsChanges) {
  const AsymmetricNaming proto(3);
  const ConfigGraph g =
      exploreCanonical(proto, {Configuration{{0, 1, 2}, std::nullopt}});
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g.edgeCount(0), 0u);  // terminal: no non-null edges
}

TEST(ExploreCanonical, SwapTransitionsKeepChangedMobileFlag) {
  // ColorExample's exchange rule maps a configuration to itself at the
  // multiset level but changes agents' states — the canonical graph must
  // keep it as a changedMobile self-loop.
  const ColorExample proto;
  const ConfigGraph g =
      exploreCanonical(proto, {Configuration{{1, 0, 0}, std::nullopt}});
  bool selfLoopWithMobileChange = false;
  for (std::uint32_t v = 0; v < g.size(); ++v) {
    for (const Edge& e : g.edges(v)) {
      if (e.to == v && e.changedMobile) selfLoopWithMobileChange = true;
    }
  }
  EXPECT_TRUE(selfLoopWithMobileChange);
}

TEST(Explore, RejectsEmptyInitials) {
  const AsymmetricNaming proto(3);
  EXPECT_THROW(exploreConcrete(proto, {}), std::invalid_argument);
  EXPECT_THROW(exploreCanonical(proto, {}), std::invalid_argument);
}

TEST(Explore, RejectsMixedPopulationSizes) {
  const AsymmetricNaming proto(3);
  const std::vector<Configuration> bad{{{0, 1}, std::nullopt},
                                       {{0, 1, 2}, std::nullopt}};
  EXPECT_THROW(exploreConcrete(proto, bad), std::invalid_argument);
}

}  // namespace
}  // namespace ppn
