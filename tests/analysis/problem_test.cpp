#include "analysis/problem.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "naming/counting_protocol.h"
#include "naming/symmetric_global_naming.h"
#include "naming/symmetrizer.h"
#include "naming/asymmetric_naming.h"
#include "naming/bst_state.h"

namespace ppn {
namespace {

TEST(Problem, NamingHoldsMatchesIsNamed) {
  const SymmetricGlobalNaming proto(3);  // blank = 3 invalid
  const Problem p = namingProblem(proto);
  EXPECT_TRUE(p.requireMobileQuiescence);
  EXPECT_TRUE(p.holds(Configuration{{0, 1, 2}, std::nullopt}));
  EXPECT_FALSE(p.holds(Configuration{{0, 1, 3}, std::nullopt}));  // blank
  EXPECT_FALSE(p.holds(Configuration{{0, 1, 1}, std::nullopt}));  // homonyms
}

TEST(Problem, NamingUsesNameProjection) {
  const AsymmetricNaming inner(3);
  const SymmetrizedProtocol proto(inner);
  const Problem p = namingProblem(proto);
  // Distinct inner names with arbitrary coins: named.
  EXPECT_TRUE(p.holds(Configuration{
      {proto.encode(0, true), proto.encode(1, false), proto.encode(2, true)},
      std::nullopt}));
  // Same inner name, different coins: homonyms by name.
  EXPECT_FALSE(p.holds(Configuration{
      {proto.encode(1, false), proto.encode(1, true)}, std::nullopt}));
}

TEST(Problem, CountingReadsLeaderAnswer) {
  const CountingProtocol proto(4);
  const Problem p = countingProblem(proto, 3);
  EXPECT_FALSE(p.requireMobileQuiescence);
  const LeaderStateId right = packBst(BstState{.n = 3, .k = 5, .namePtr = 0});
  const LeaderStateId wrong = packBst(BstState{.n = 2, .k = 5, .namePtr = 0});
  EXPECT_TRUE(p.holds(Configuration{{1, 2, 3}, right}));
  EXPECT_FALSE(p.holds(Configuration{{1, 2, 3}, wrong}));
  EXPECT_FALSE(p.holds(Configuration{{1, 2, 3}, std::nullopt}));  // no leader
}

TEST(Problem, PredicateProblemWrapsFunction) {
  const Problem p = predicateProblem("even-sum", [](const Configuration& c) {
    StateId sum = 0;
    for (const StateId s : c.mobile) sum += s;
    return sum % 2 == 0;
  });
  EXPECT_EQ(p.name, "even-sum");
  EXPECT_FALSE(p.requireMobileQuiescence);
  EXPECT_TRUE(p.holds(Configuration{{1, 1}, std::nullopt}));
  EXPECT_FALSE(p.holds(Configuration{{1, 2}, std::nullopt}));
}

TEST(Problem, NamingIsPermutationInvariant) {
  // Required by the canonical-quotient global checker.
  const SymmetricGlobalNaming proto(3);
  const Problem p = namingProblem(proto);
  const Configuration a{{2, 0, 1}, std::nullopt};
  EXPECT_EQ(p.holds(a), p.holds(a.canonicalized()));
  const Configuration b{{1, 1, 0}, std::nullopt};
  EXPECT_EQ(p.holds(b), p.holds(b.canonicalized()));
}

}  // namespace
}  // namespace ppn
