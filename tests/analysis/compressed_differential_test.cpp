// Differential suite for the compressed ConfigGraph (DESIGN decision 19):
// the compressed representation must be INDISTINGUISHABLE from the explicit
// one — node ids, edge order, SCC structure, bottom sets and checker
// verdicts — across every registry protocol, at threads 1 and 4, and at
// spill thresholds forcing zero, one-ish and many sorted runs. Plus the
// budget-degrade acceptance test: a byte budget that truncates the explicit
// representation completes under compression + spill, bit-identical to the
// unspilled compressed run.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/explore.h"
#include "analysis/global_checker.h"
#include "analysis/initial_sets.h"
#include "analysis/problem.h"
#include "analysis/scc.h"
#include "analysis/weak_checker.h"
#include "naming/registry.h"
#include "obs/memory.h"

namespace ppn {
namespace {

struct RegistryCase {
  const char* key;
  StateId p;
  std::uint32_t n;
};

std::vector<RegistryCase> smallCases() {
  return {{"asymmetric", 3, 3},     {"symmetric-global", 2, 3},
          {"leader-uniform", 3, 3}, {"counting", 2, 3},
          {"selfstab-weak", 2, 3},  {"global-leader", 3, 3}};
}

/// Spill thresholds: 0 = never spill, 2000 B = one/few run flushes on these
/// graph sizes, 1 B = a flush per intern (many runs, repeated compaction).
const std::uint64_t kSpillThresholds[] = {0, 2000, 1};

std::string spillDirFor(const char* tag) {
  const auto dir =
      std::filesystem::temp_directory_path() /
      (std::string("ppn-compress-diff-") + tag);
  std::filesystem::create_directories(dir);
  return dir.string();
}

void expectGraphsIdentical(const ConfigGraph& a, const ConfigGraph& b,
                           const std::string& where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  EXPECT_EQ(a.numParticipants, b.numParticipants) << where;
  EXPECT_EQ(a.truncated, b.truncated) << where;
  EXPECT_EQ(a.truncatedByBudget, b.truncatedByBudget) << where;
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.config(i), b.config(i)) << where << " node " << i;
    const std::vector<Edge> ae = a.edges(i);
    const std::vector<Edge> be = b.edges(i);
    ASSERT_EQ(ae.size(), be.size()) << where << " node " << i;
    for (std::size_t k = 0; k < ae.size(); ++k) {
      EXPECT_EQ(ae[k].to, be[k].to) << where << " node " << i << " edge " << k;
      EXPECT_EQ(ae[k].label, be[k].label) << where << " " << i << "/" << k;
      EXPECT_EQ(ae[k].initiator, be[k].initiator) << where << " " << i << "/" << k;
      EXPECT_EQ(ae[k].responder, be[k].responder) << where << " " << i << "/" << k;
      EXPECT_EQ(ae[k].changed, be[k].changed) << where << " " << i << "/" << k;
      EXPECT_EQ(ae[k].changedMobile, be[k].changedMobile)
          << where << " " << i << "/" << k;
      EXPECT_EQ(ae[k].changedName, be[k].changedName)
          << where << " " << i << "/" << k;
    }
  }
}

void expectSccsIdentical(const ConfigGraph& a, const ConfigGraph& b,
                         const std::string& where) {
  const SccDecomposition sa = decomposeScc(a);
  const SccDecomposition sb = decomposeScc(b);
  EXPECT_EQ(sa.numSccs, sb.numSccs) << where;
  EXPECT_EQ(sa.sccOf, sb.sccOf) << where;
  EXPECT_EQ(sa.bottom, sb.bottom) << where;  // bottom (sink) SCC sets
  EXPECT_EQ(sa.members, sb.members) << where;
}

ExploreOptions explicitOptions() {
  ExploreOptions options;
  options.storage = GraphStorage::kExplicit;
  return options;
}

ExploreOptions compressedOptions(std::uint32_t threads, std::uint64_t spill,
                                 const std::string& dir) {
  ExploreOptions options;
  options.storage = GraphStorage::kCompressed;
  options.threads = threads;
  options.spillBytes = spill;
  options.spillDir = dir;
  return options;
}

// ---------------------------------------------------------------------------
// Graph + SCC equality across the registry, threads x spill thresholds.

TEST(CompressedDifferential, ConcreteGraphsMatchExplicitAcrossRegistry) {
  const std::string dir = spillDirFor("concrete");
  for (const RegistryCase& rc : smallCases()) {
    const auto proto = makeProtocol(rc.key, rc.p);
    const auto initials = allConcreteConfigurations(*proto, rc.n);
    const ConfigGraph explicitGraph =
        exploreConcrete(*proto, initials, explicitOptions());
    ASSERT_FALSE(explicitGraph.compressed());
    for (const std::uint32_t threads : {1u, 4u}) {
      for (const std::uint64_t spill : kSpillThresholds) {
        const std::string where = std::string(rc.key) + " t" +
                                  std::to_string(threads) + " spill" +
                                  std::to_string(spill);
        const ConfigGraph g = exploreConcrete(
            *proto, initials, compressedOptions(threads, spill, dir));
        ASSERT_TRUE(g.compressed()) << where;
        expectGraphsIdentical(explicitGraph, g, where);
        expectSccsIdentical(explicitGraph, g, where);
      }
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(CompressedDifferential, CanonicalGraphsMatchExplicitAcrossRegistry) {
  const std::string dir = spillDirFor("canonical");
  for (const RegistryCase& rc : smallCases()) {
    const auto proto = makeProtocol(rc.key, rc.p);
    const auto initials = allCanonicalConfigurations(*proto, rc.n);
    const ConfigGraph explicitGraph =
        exploreCanonical(*proto, initials, explicitOptions());
    for (const std::uint32_t threads : {1u, 4u}) {
      for (const std::uint64_t spill : kSpillThresholds) {
        const std::string where = std::string(rc.key) + " t" +
                                  std::to_string(threads) + " spill" +
                                  std::to_string(spill);
        const ConfigGraph g = exploreCanonical(
            *proto, initials, compressedOptions(threads, spill, dir));
        expectGraphsIdentical(explicitGraph, g, where);
        expectSccsIdentical(explicitGraph, g, where);
      }
    }
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Checker verdicts are storage-invariant.

TEST(CompressedDifferential, CheckerVerdictsMatchExplicit) {
  const std::string dir = spillDirFor("verdicts");
  for (const RegistryCase& rc : smallCases()) {
    const auto proto = makeProtocol(rc.key, rc.p);
    const Problem problem = namingProblem(*proto);
    const auto concrete = allConcreteConfigurations(*proto, rc.n);
    const auto canonical = allCanonicalConfigurations(*proto, rc.n);

    const WeakVerdict weakExplicit =
        checkWeakFairness(*proto, problem, concrete, explicitOptions());
    const GlobalVerdict globalExplicit =
        checkGlobalFairness(*proto, problem, canonical, explicitOptions());

    for (const std::uint32_t threads : {1u, 4u}) {
      for (const std::uint64_t spill : kSpillThresholds) {
        const std::string where = std::string(rc.key) + " t" +
                                  std::to_string(threads) + " spill" +
                                  std::to_string(spill);
        const auto options = compressedOptions(threads, spill, dir);
        const WeakVerdict w =
            checkWeakFairness(*proto, problem, concrete, options);
        EXPECT_EQ(w.solves, weakExplicit.solves) << where;
        EXPECT_EQ(w.explored, weakExplicit.explored) << where;
        EXPECT_EQ(w.numConfigs, weakExplicit.numConfigs) << where;
        EXPECT_EQ(w.violatingSccs, weakExplicit.violatingSccs) << where;
        EXPECT_EQ(w.reason, weakExplicit.reason) << where;
        const GlobalVerdict g =
            checkGlobalFairness(*proto, problem, canonical, options);
        EXPECT_EQ(g.solves, globalExplicit.solves) << where;
        EXPECT_EQ(g.explored, globalExplicit.explored) << where;
        EXPECT_EQ(g.numConfigs, globalExplicit.numConfigs) << where;
        EXPECT_EQ(g.numBottomSccs, globalExplicit.numBottomSccs) << where;
        EXPECT_EQ(g.reason, globalExplicit.reason) << where;
      }
    }
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Budget degradation: where the explicit graph blows maxBytes, the
// compressed + spilled exploration completes — bit-identical to unspilled.

TEST(CompressedDifferential, SpillCompletesWhereExplicitBlowsTheBudget) {
  const std::string dir = spillDirFor("budget");
  const auto proto = makeProtocol("symmetric-global", 2);
  const auto initials = allConcreteConfigurations(*proto, 8);

  // Measure both representations' high-water marks without any budget.
  MemoryStatsCollector explicitStats;
  ExploreOptions eo = explicitOptions();
  eo.observer = &explicitStats;
  eo.exploreId = 1;
  const ConfigGraph explicitGraph = exploreConcrete(*proto, initials, eo);
  ASSERT_FALSE(explicitGraph.truncated);
  const std::uint64_t explicitHw =
      explicitStats.lastSample(1)->highWaterBytes;

  MemoryStatsCollector spillStats;
  ExploreOptions co = compressedOptions(1, 2000, dir);
  co.observer = &spillStats;
  co.exploreId = 2;
  const ConfigGraph spilled = exploreConcrete(*proto, initials, co);
  ASSERT_FALSE(spilled.truncated);
  const auto spillSample = spillStats.lastSample(2);
  const std::uint64_t compressedHw = spillSample->highWaterBytes;
  EXPECT_GT(spillSample->spillBytes, 0u);  // the disk tier really engaged

  // The whole point of compression + spill: the peak footprint shrinks.
  ASSERT_LT(compressedHw, explicitHw);
  const std::uint64_t budget = (compressedHw + explicitHw) / 2;

  // Explicit storage cannot finish inside the budget...
  ExploreOptions eb = explicitOptions();
  eb.maxBytes = budget;
  const ConfigGraph truncated = exploreConcrete(*proto, initials, eb);
  EXPECT_TRUE(truncated.truncated);
  EXPECT_TRUE(truncated.truncatedByBudget);

  // ...while the compressed + spilled exploration completes under the SAME
  // budget, and the result is node-for-node the unspilled compressed graph.
  const ConfigGraph unspilled =
      exploreConcrete(*proto, initials, compressedOptions(1, 0, dir));
  ASSERT_FALSE(unspilled.truncated);
  ExploreOptions cb = compressedOptions(1, 2000, dir);
  cb.maxBytes = budget;
  const ConfigGraph survivor = exploreConcrete(*proto, initials, cb);
  EXPECT_FALSE(survivor.truncated);
  EXPECT_FALSE(survivor.truncatedByBudget);
  expectGraphsIdentical(unspilled, survivor, "budget-degrade");
  expectGraphsIdentical(explicitGraph, survivor, "budget-vs-explicit");
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Spill telemetry: thresholds drive runs, and the ledger reports them.

TEST(CompressedDifferential, SpillTelemetryReportsRunsAndBytes) {
  const std::string dir = spillDirFor("telemetry");
  const auto proto = makeProtocol("asymmetric", 3);
  const auto initials = allConcreteConfigurations(*proto, 3);

  MemoryStatsCollector noSpill;
  ExploreOptions a = compressedOptions(1, 0, dir);
  a.observer = &noSpill;
  a.exploreId = 10;
  (void)exploreConcrete(*proto, initials, a);
  EXPECT_EQ(noSpill.lastSample(10)->spillBytes, 0u);
  EXPECT_EQ(noSpill.lastSample(10)->spillRuns, 0u);

  MemoryStatsCollector manyRuns;
  ExploreOptions b = compressedOptions(1, 1, dir);
  b.observer = &manyRuns;
  b.exploreId = 11;
  const ConfigGraph g = exploreConcrete(*proto, initials, b);
  const auto sample = manyRuns.lastSample(11);
  EXPECT_GT(sample->spillBytes, 0u);
  EXPECT_GE(sample->spillRuns, 1u);
  // Every interned node's dedup entry lives on disk at threshold 1.
  EXPECT_EQ(sample->spillBytes,
            sample->spillRuns * 24 + std::uint64_t{g.size()} * 12);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ppn
