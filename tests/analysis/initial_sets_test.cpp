#include "analysis/initial_sets.h"

#include <gtest/gtest.h>

#include <set>

#include "naming/asymmetric_naming.h"
#include "naming/counting_protocol.h"
#include "naming/leader_uniform_naming.h"
#include "naming/selfstab_weak_naming.h"

namespace ppn {
namespace {

TEST(InitialSets, DeclaredUniform) {
  const LeaderUniformNaming proto(4);
  const auto initials = declaredUniformInitials(proto, 3);
  ASSERT_EQ(initials.size(), 1u);
  EXPECT_EQ(initials[0].mobile, (std::vector<StateId>{3, 3, 3}));
  EXPECT_EQ(initials[0].leader, LeaderStateId{0});
}

TEST(InitialSets, DeclaredUniformThrowsWhenUndeclared) {
  const AsymmetricNaming proto(3);
  EXPECT_THROW(declaredUniformInitials(proto, 3), std::logic_error);
}

TEST(InitialSets, AllUniformEnumeratesEveryState) {
  const AsymmetricNaming proto(4);
  const auto initials = allUniformInitials(proto, 2);
  ASSERT_EQ(initials.size(), 4u);
  std::set<StateId> seen;
  for (const auto& c : initials) {
    EXPECT_EQ(c.mobile[0], c.mobile[1]);
    seen.insert(c.mobile[0]);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(InitialSets, AllUniformCrossesNonInitializedLeader) {
  const SelfStabWeakNaming proto(2);  // leader not initialized
  const auto initials = allUniformInitials(proto, 2);
  // 3 mobile states x |leader states|.
  EXPECT_EQ(initials.size(), 3u * proto.allLeaderStates().size());
}

TEST(InitialSets, AllUniformUsesInitializedLeaderOnly) {
  const CountingProtocol proto(3);  // leader initialized to (0,0)
  const auto initials = allUniformInitials(proto, 2);
  EXPECT_EQ(initials.size(), 3u);
  for (const auto& c : initials) {
    EXPECT_EQ(c.leader, proto.initialLeaderState());
  }
}

TEST(InitialSets, AllConcreteHasQToTheN) {
  const AsymmetricNaming proto(3);
  const auto initials = allConcreteConfigurations(proto, 3);
  EXPECT_EQ(initials.size(), 27u);
  std::set<std::vector<StateId>> unique;
  for (const auto& c : initials) unique.insert(c.mobile);
  EXPECT_EQ(unique.size(), 27u);  // all distinct
}

TEST(InitialSets, AllCanonicalHasMultisetCount) {
  const AsymmetricNaming proto(3);
  // C(3+3-1, 3) = 10 multisets of size 3 over 3 states.
  const auto initials = allCanonicalConfigurations(proto, 3);
  EXPECT_EQ(initials.size(), 10u);
  for (const auto& c : initials) {
    EXPECT_TRUE(std::is_sorted(c.mobile.begin(), c.mobile.end()));
  }
}

TEST(InitialSets, CanonicalIsSubsetOfConcreteUpToSorting) {
  const AsymmetricNaming proto(4);
  const auto canonical = allCanonicalConfigurations(proto, 2);
  const auto concrete = allConcreteConfigurations(proto, 2);
  std::set<std::vector<StateId>> concreteSorted;
  for (auto c : concrete) {
    std::sort(c.mobile.begin(), c.mobile.end());
    concreteSorted.insert(c.mobile);
  }
  EXPECT_EQ(concreteSorted.size(), canonical.size());
  for (const auto& c : canonical) {
    EXPECT_TRUE(concreteSorted.count(c.mobile)) << "missing multiset";
  }
}

TEST(InitialSets, SingleAgentEdgeCase) {
  const AsymmetricNaming proto(5);
  EXPECT_EQ(allConcreteConfigurations(proto, 1).size(), 5u);
  EXPECT_EQ(allCanonicalConfigurations(proto, 1).size(), 5u);
}

}  // namespace
}  // namespace ppn
