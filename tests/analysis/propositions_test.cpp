// Mechanical verification of every cell of the paper's Table 1 at small P —
// the repository's reproduction of the paper's synthesis of results.
//
// Feasible cells: the implemented protocol passes the matching fairness
// checker with exactly the claimed state count. Infeasible cells / lower
// bounds: the checker produces a violation witness for the protocol with one
// state fewer (or for the forbidden assumption combination), and exhaustive
// search (protocol_search_test) covers "no protocol at all" claims at tiny P.
#include <gtest/gtest.h>

#include "analysis/global_checker.h"
#include "analysis/initial_sets.h"
#include "analysis/weak_checker.h"
#include "core/engine.h"
#include "naming/asymmetric_naming.h"
#include "naming/counting_protocol.h"
#include "naming/global_leader_naming.h"
#include "naming/leader_uniform_naming.h"
#include "naming/selfstab_weak_naming.h"
#include "naming/symmetric_global_naming.h"

namespace ppn {
namespace {

class Table1 : public ::testing::TestWithParam<StateId> {};

// Row "no leader", column "asymmetric rules, weak/global fairness":
// Prop 12 — P states, self-stabilizing.
TEST_P(Table1, CellAsymmetricNoLeaderPStates) {
  const StateId p = GetParam();
  const AsymmetricNaming proto(p);
  ASSERT_EQ(proto.numMobileStates(), p);

  const GlobalVerdict global = checkGlobalFairness(
      proto, namingProblem(proto), allCanonicalConfigurations(proto, p));
  ASSERT_TRUE(global.explored);
  EXPECT_TRUE(global.solves) << global.reason;

  const WeakVerdict weak = checkWeakFairness(
      proto, namingProblem(proto), allConcreteConfigurations(proto, p));
  ASSERT_TRUE(weak.explored);
  EXPECT_TRUE(weak.solves) << weak.reason;
}

// Row "no leader", column "symmetric rules, weak fairness":
// Prop 1 — impossible. Witnessed here on the P+1-state Prop 13 protocol
// (exhaustive quantification over ALL protocols is in protocol_search_test).
TEST_P(Table1, CellSymmetricWeakNoLeaderImpossible) {
  const StateId p = GetParam();
  if (p < 2) GTEST_SKIP();
  const SymmetricGlobalNaming proto(p);
  const WeakVerdict weak = checkWeakFairness(
      proto, namingProblem(proto), allUniformInitials(proto, p));
  ASSERT_TRUE(weak.explored);
  EXPECT_FALSE(weak.solves)
      << "Prop 1: a weakly fair adversary must defeat any leaderless "
         "symmetric protocol";
  EXPECT_GT(weak.violatingSccs, 0u);
}

// Row "no leader", column "symmetric rules, global fairness":
// Prop 13 — P+1 states suffice (self-stabilizing), for N > 2.
TEST_P(Table1, CellSymmetricGlobalNoLeaderPPlus1States) {
  const StateId p = GetParam();
  if (p < 3) GTEST_SKIP() << "Prop 13 requires N > 2";
  const SymmetricGlobalNaming proto(p);
  ASSERT_EQ(proto.numMobileStates(), p + 1);
  for (std::uint32_t n = 3; n <= p; ++n) {
    const GlobalVerdict v = checkGlobalFairness(
        proto, namingProblem(proto), allCanonicalConfigurations(proto, n));
    ASSERT_TRUE(v.explored);
    EXPECT_TRUE(v.solves) << "N=" << n << ": " << v.reason;
  }
}

// Lower bound for the same cell (Prop 2): P states are NOT enough — the
// natural P-state truncation (use the asymmetric protocol's symmetric
// closure? no symmetric P-state protocol exists at all; here we witness that
// the counting protocol's mobile side, the canonical P-state symmetric
// gadget, fails without its leader). Full quantification: protocol_search.
TEST_P(Table1, CellSymmetricGlobalNoLeaderPStatesFail) {
  const StateId p = GetParam();
  // A leaderless symmetric P-state protocol: homonyms drop to 0 (the only
  // symmetry-breaking-free reaction available); nothing can ever rename
  // agents upward, so naming fails.
  class SinkOnly final : public Protocol {
   public:
    explicit SinkOnly(StateId states) : q_(states) {}
    std::string name() const override { return "sink-only"; }
    StateId numMobileStates() const override { return q_; }
    bool isSymmetric() const override { return true; }
    MobilePair mobileDelta(StateId a, StateId b) const override {
      if (a == b) return MobilePair{0, 0};
      return MobilePair{a, b};
    }
    bool isValidName(StateId s) const override { return s != 0; }

   private:
    StateId q_;
  };
  const SinkOnly proto(p);
  const GlobalVerdict v = checkGlobalFairness(
      proto, namingProblem(proto), allCanonicalConfigurations(proto, p));
  ASSERT_TRUE(v.explored);
  EXPECT_FALSE(v.solves);
}

// Row "initialized leader", column "symmetric, weak fairness, initialized
// agents": Prop 14 — P states suffice.
TEST_P(Table1, CellInitializedLeaderUniformAgentsPStates) {
  const StateId p = GetParam();
  const LeaderUniformNaming proto(p);
  ASSERT_EQ(proto.numMobileStates(), p);
  for (std::uint32_t n = 1; n <= p; ++n) {
    const WeakVerdict v = checkWeakFairness(proto, namingProblem(proto),
                                            declaredUniformInitials(proto, n));
    ASSERT_TRUE(v.explored);
    EXPECT_TRUE(v.solves) << "N=" << n << ": " << v.reason;
  }
}

// Rows "non-initialized leader" and "initialized leader / non-initialized
// agents", column "symmetric, weak fairness": Prop 16 — P+1 states suffice,
// fully self-stabilizing (leader arbitrary too).
TEST_P(Table1, CellSelfStabilizingWeakLeaderPPlus1States) {
  const StateId p = GetParam();
  if (p > 4) GTEST_SKIP() << "concrete space too large for exhaustive check";
  const SelfStabWeakNaming proto(p);
  ASSERT_EQ(proto.numMobileStates(), p + 1);
  for (std::uint32_t n = 1; n <= p; ++n) {
    const WeakVerdict v =
        checkWeakFairness(proto, namingProblem(proto),
                          allConcreteConfigurations(proto, n), 8'000'000);
    ASSERT_TRUE(v.explored);
    EXPECT_TRUE(v.solves) << "N=" << n << ": " << v.reason;
  }
}

// The matching lower bound (Theorem 11): with P states, symmetric rules and
// an initialized leader, weak fairness defeats naming of non-initialized
// agents. Witnessed on Protocol 3 (the best-known P-state candidate).
TEST_P(Table1, CellTheorem11PStatesFailUnderWeakFairness) {
  const StateId p = GetParam();
  const GlobalLeaderNaming proto(p);
  ASSERT_EQ(proto.numMobileStates(), p);
  const WeakVerdict v = checkWeakFairness(
      proto, namingProblem(proto), allConcreteConfigurations(proto, p));
  ASSERT_TRUE(v.explored);
  EXPECT_FALSE(v.solves)
      << "Theorem 11: P-state symmetric naming with initialized leader must "
         "admit a weakly fair counterexample at N = P";
}

// Row "initialized leader", column "symmetric, global fairness":
// Prop 17 — P states suffice for arbitrary mobile agents.
TEST_P(Table1, CellInitializedLeaderGlobalPStates) {
  const StateId p = GetParam();
  const GlobalLeaderNaming proto(p);
  for (std::uint32_t n = 1; n <= p; ++n) {
    const GlobalVerdict v = checkGlobalFairness(
        proto, namingProblem(proto), allCanonicalConfigurations(proto, n));
    ASSERT_TRUE(v.explored);
    EXPECT_TRUE(v.solves) << "N=" << n << ": " << v.reason;
  }
}

// Theorem 15 (substrate): Protocol 1 counts every N <= P under weak fairness
// and names every N < P.
TEST_P(Table1, Theorem15CountingAndByProductNaming) {
  const StateId p = GetParam();
  const CountingProtocol proto(p);
  for (std::uint32_t n = 1; n <= p; ++n) {
    const WeakVerdict counting = checkWeakFairness(
        proto, countingProblem(proto, n), allConcreteConfigurations(proto, n));
    ASSERT_TRUE(counting.explored);
    EXPECT_TRUE(counting.solves) << "counting N=" << n << ": " << counting.reason;

    const WeakVerdict naming = checkWeakFairness(
        proto, namingProblem(proto), allConcreteConfigurations(proto, n));
    ASSERT_TRUE(naming.explored);
    if (n < p) {
      EXPECT_TRUE(naming.solves) << "naming N=" << n << ": " << naming.reason;
    } else {
      EXPECT_FALSE(naming.solves)
          << "P states cannot name N = P agents (Prop 4 territory)";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallP, Table1,
                         ::testing::Values(StateId{2}, StateId{3},
                                           StateId{4}),
                         [](const auto& paramInfo) {
                           return "P" + std::to_string(paramInfo.param);
                         });

// Prop 4 (impossibility of P-state symmetric naming even with an arbitrarily
// initialized leader): if the leader of Prop 14's protocol is arbitrary
// instead of initialized, the protocol fails.
TEST(Table1Extra, Prop4ArbitraryLeaderBreaksLeaderUniformNaming) {
  const StateId p = 3;
  // Simplest faithful rendering: reuse the protocol but quantify over every
  // leader counter value, not just 0.
  const LeaderUniformNaming proto(p);
  std::vector<Configuration> initials;
  for (const LeaderStateId l : proto.allLeaderStates()) {
    Configuration c = uniformConfiguration(proto, p);
    c.leader = l;
    initials.push_back(std::move(c));
  }
  const GlobalVerdict v =
      checkGlobalFairness(proto, namingProblem(proto), initials);
  ASSERT_TRUE(v.explored);
  EXPECT_FALSE(v.solves)
      << "an arbitrarily initialized leader must break the P-state protocol";
}

// The one exception noted under Table 1: with symmetric rules, weak fairness
// and an initialized leader, UNIFORM agent initialization admits P states
// (Prop 14) while ARBITRARY agent initialization needs P+1 (Theorem 11).
// Both facts are separately proven above; this test documents the contrast
// on a single instance.
TEST(Table1Extra, InitializationGapAtPEquals3) {
  const StateId p = 3;
  const LeaderUniformNaming uniformProto(p);
  const WeakVerdict uniformOk =
      checkWeakFairness(uniformProto, namingProblem(uniformProto),
                        declaredUniformInitials(uniformProto, p));
  ASSERT_TRUE(uniformOk.explored);
  EXPECT_TRUE(uniformOk.solves);

  const GlobalLeaderNaming arbitraryCandidate(p);
  const WeakVerdict arbitraryFails = checkWeakFairness(
      arbitraryCandidate, namingProblem(arbitraryCandidate),
      allConcreteConfigurations(arbitraryCandidate, p));
  ASSERT_TRUE(arbitraryFails.explored);
  EXPECT_FALSE(arbitraryFails.solves);
}

}  // namespace
}  // namespace ppn
