#include "analysis/scc.h"

#include <gtest/gtest.h>

#include <set>

namespace ppn {
namespace {

/// Builds a ConfigGraph shell with the given directed edges (all marked
/// changed, arbitrary labels); configs are dummies.
ConfigGraph makeGraph(std::uint32_t n,
                      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  ConfigGraph g;
  g.configs.resize(n);
  g.adj.resize(n);
  for (const auto& [u, v] : edges) {
    g.adj[u].push_back(Edge{v, 0, 0, 0, /*changed=*/true, /*changedMobile=*/true});
  }
  return g;
}

TEST(Scc, SingleNodeNoEdges) {
  const ConfigGraph g = makeGraph(1, {});
  const SccDecomposition d = decomposeScc(g);
  EXPECT_EQ(d.numSccs, 1u);
  EXPECT_TRUE(d.bottom[0]);
}

TEST(Scc, ChainHasSingletonSccs) {
  const ConfigGraph g = makeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  const SccDecomposition d = decomposeScc(g);
  EXPECT_EQ(d.numSccs, 4u);
  // Only the last node's SCC is bottom.
  std::uint32_t bottoms = 0;
  for (std::uint32_t s = 0; s < d.numSccs; ++s) bottoms += d.bottom[s] ? 1u : 0u;
  EXPECT_EQ(bottoms, 1u);
  EXPECT_TRUE(d.bottom[d.sccOf[3]]);
}

TEST(Scc, CycleIsOneScc) {
  const ConfigGraph g = makeGraph(3, {{0, 1}, {1, 2}, {2, 0}});
  const SccDecomposition d = decomposeScc(g);
  EXPECT_EQ(d.numSccs, 1u);
  EXPECT_TRUE(d.bottom[0]);
  EXPECT_EQ(d.members[0].size(), 3u);
}

TEST(Scc, TwoCyclesWithBridge) {
  // 0<->1  ->  2<->3 : first SCC not bottom, second bottom.
  const ConfigGraph g =
      makeGraph(4, {{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}});
  const SccDecomposition d = decomposeScc(g);
  EXPECT_EQ(d.numSccs, 2u);
  EXPECT_NE(d.sccOf[0], d.sccOf[2]);
  EXPECT_EQ(d.sccOf[0], d.sccOf[1]);
  EXPECT_EQ(d.sccOf[2], d.sccOf[3]);
  EXPECT_FALSE(d.bottom[d.sccOf[0]]);
  EXPECT_TRUE(d.bottom[d.sccOf[2]]);
}

TEST(Scc, SelfLoopDoesNotBreakBottomness) {
  ConfigGraph g = makeGraph(2, {{0, 1}});
  // Null self-loop on the sink: must stay bottom.
  g.adj[1].push_back(Edge{1, 0, 0, 0, /*changed=*/false, false});
  const SccDecomposition d = decomposeScc(g);
  EXPECT_TRUE(d.bottom[d.sccOf[1]]);
  EXPECT_FALSE(d.bottom[d.sccOf[0]]);
}

TEST(Scc, ReverseTopologicalNumbering) {
  // Tarjan emits sink components first: the sink's SCC id is smaller.
  const ConfigGraph g = makeGraph(3, {{0, 1}, {1, 2}});
  const SccDecomposition d = decomposeScc(g);
  EXPECT_LT(d.sccOf[2], d.sccOf[0]);
}

TEST(Scc, DisconnectedComponents) {
  const ConfigGraph g = makeGraph(4, {{0, 1}, {2, 3}});
  const SccDecomposition d = decomposeScc(g);
  EXPECT_EQ(d.numSccs, 4u);
  std::uint32_t bottoms = 0;
  for (std::uint32_t s = 0; s < d.numSccs; ++s) bottoms += d.bottom[s] ? 1u : 0u;
  EXPECT_EQ(bottoms, 2u);
}

TEST(Scc, MembersPartitionTheGraph) {
  const ConfigGraph g =
      makeGraph(6, {{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 4}, {4, 2}, {4, 5}});
  const SccDecomposition d = decomposeScc(g);
  std::set<std::uint32_t> all;
  std::size_t total = 0;
  for (const auto& m : d.members) {
    total += m.size();
    all.insert(m.begin(), m.end());
  }
  EXPECT_EQ(total, 6u);
  EXPECT_EQ(all.size(), 6u);
}

TEST(Scc, LargeCycleStressIterative) {
  // 100k-node ring: would overflow the stack with a recursive Tarjan.
  const std::uint32_t n = 100000;
  ConfigGraph g;
  g.configs.resize(n);
  g.adj.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    g.adj[i].push_back(Edge{(i + 1) % n, 0, 0, 0, true, true});
  }
  const SccDecomposition d = decomposeScc(g);
  EXPECT_EQ(d.numSccs, 1u);
  EXPECT_EQ(d.members[0].size(), n);
}

}  // namespace
}  // namespace ppn
