// Proposition 6 structure on the implemented protocols.
#include "analysis/sink_analysis.h"

#include <gtest/gtest.h>

#include "analysis/initial_sets.h"
#include "analysis/weak_checker.h"
#include "core/engine.h"
#include "naming/asymmetric_naming.h"
#include "naming/counting_protocol.h"
#include "naming/global_leader_naming.h"
#include "naming/selfstab_weak_naming.h"
#include "naming/symmetric_global_naming.h"
#include "sched/random_scheduler.h"
#include "sim/runner.h"

namespace ppn {
namespace {

TEST(SinkAnalysis, Protocols123HaveSinkZero) {
  // The homonym sink 0 of the BST protocols is exactly the paper's m.
  const CountingProtocol p1(4);
  const SelfStabWeakNaming p2(4);
  const GlobalLeaderNaming p3(4);
  for (const Protocol* proto :
       std::initializer_list<const Protocol*>{&p1, &p2, &p3}) {
    const SinkAnalysis a = analyzeSinks(*proto);
    ASSERT_TRUE(a.sink.has_value()) << proto->name();
    EXPECT_EQ(*a.sink, 0u) << proto->name();
    EXPECT_EQ(a.selfFixedStates, std::vector<StateId>{0}) << proto->name();
  }
}

TEST(SinkAnalysis, EveryDiagonalChainOfProtocol2ReachesTheSinkInOneStep) {
  const SelfStabWeakNaming proto(5);
  const SinkAnalysis a = analyzeSinks(proto);
  for (StateId s = 0; s < proto.numMobileStates(); ++s) {
    EXPECT_EQ(a.chainTarget[s], 0u);
  }
}

TEST(SinkAnalysis, AsymmetricNamingHasNoSink) {
  // (s,s) -> (s, s+1): the diagonal never settles — the asymmetric protocol
  // evades the symmetric sink structure, which is how it beats the P+1 lower
  // bound with P states.
  const AsymmetricNaming proto(4);
  const SinkAnalysis a = analyzeSinks(proto);
  EXPECT_TRUE(a.selfFixedStates.empty());
  EXPECT_FALSE(a.sink.has_value());
}

TEST(SinkAnalysis, SymmetricGlobalNamingChainsCycleWithoutFixedPoint) {
  // Prop 13's protocol: (s,s) -> (P,P) -> (1,1) -> (P,P) -> ... — a 2-cycle,
  // no fixed diagonal pair, hence no sink. (Prop 6 presupposes a correct
  // weak-fairness naming protocol, which this is not — it needs global
  // fairness; the absence of a sink is consistent, not contradictory.)
  const SymmetricGlobalNaming proto(4);
  const SinkAnalysis a = analyzeSinks(proto);
  EXPECT_TRUE(a.selfFixedStates.empty());
  EXPECT_FALSE(a.sink.has_value());
}

TEST(SinkAnalysis, Lemma5SinkVanishesBelowCapacity) {
  // Lemma 5 / Prop 6 condition (3): for N < P, the sink does not appear at
  // convergence. Verified by simulation on Protocol 2.
  const StateId p = 4;
  const SelfStabWeakNaming proto(p);
  Rng rng(7);
  for (std::uint32_t n = 1; n < p; ++n) {
    for (int trial = 0; trial < 5; ++trial) {
      Engine engine(proto, arbitraryConfiguration(proto, n, rng));
      RandomScheduler sched(n + 1, rng.next());
      const RunOutcome out =
          runUntilSilent(engine, sched, RunLimits{5'000'000, 32});
      ASSERT_TRUE(out.silent);
      EXPECT_EQ(out.finalConfig.multiplicity(0), 0u)
          << "sink state must be absent at convergence for N < P";
    }
  }
}

TEST(SinkAnalysis, HandlesProtocolsWithMultipleFixedStates) {
  // A degenerate all-null protocol: every state is self-fixed, so the
  // paper's *unique* sink does not exist.
  class AllNull final : public Protocol {
   public:
    std::string name() const override { return "all-null"; }
    StateId numMobileStates() const override { return 3; }
    bool isSymmetric() const override { return true; }
    MobilePair mobileDelta(StateId a, StateId b) const override {
      return MobilePair{a, b};
    }
  };
  const AllNull proto;
  const SinkAnalysis a = analyzeSinks(proto);
  EXPECT_EQ(a.selfFixedStates.size(), 3u);
  EXPECT_FALSE(a.sink.has_value());
  for (StateId s = 0; s < 3; ++s) EXPECT_EQ(a.chainTarget[s], s);
}

}  // namespace
}  // namespace ppn
