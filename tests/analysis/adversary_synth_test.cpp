#include "analysis/adversary_synth.h"

#include <gtest/gtest.h>

#include "analysis/initial_sets.h"
#include "analysis/weak_checker.h"
#include "core/engine.h"
#include "naming/asymmetric_naming.h"
#include "naming/color_example.h"
#include "naming/global_leader_naming.h"
#include "naming/symmetric_global_naming.h"

namespace ppn {
namespace {

TEST(AdversarySynth, ColorExampleScheduleReplays) {
  const ColorExample proto;
  const Problem problem = predicateProblem("all-black", allBlack);
  const std::vector<Configuration> initials{{{1, 0, 0}, std::nullopt}};
  const auto schedule = synthesizeWeakAdversary(proto, problem, initials);
  ASSERT_TRUE(schedule.has_value());
  EXPECT_FALSE(schedule->cycle.empty());
  const ReplayReport report = replayAdversary(proto, problem, *schedule);
  EXPECT_TRUE(report.cycleClosed);
  EXPECT_TRUE(report.allPairsScheduled);
  EXPECT_TRUE(report.violationWitnessed);
  EXPECT_TRUE(report.valid());
}

TEST(AdversarySynth, ColorExampleLoopRunsForeverWithoutConverging) {
  // Replay the synthesized loop many times by hand: the system must cycle
  // and never reach all-black.
  const ColorExample proto;
  const Problem problem = predicateProblem("all-black", allBlack);
  const std::vector<Configuration> initials{{{1, 0, 0}, std::nullopt}};
  const auto schedule = synthesizeWeakAdversary(proto, problem, initials);
  ASSERT_TRUE(schedule.has_value());

  Engine engine(proto, schedule->start);
  for (const Interaction it : schedule->prefix) engine.step(it);
  for (int lap = 0; lap < 1000; ++lap) {
    for (const Interaction it : schedule->cycle) {
      engine.step(it);
    }
    ASSERT_FALSE(allBlack(engine.config())) << "lap " << lap;
  }
}

TEST(AdversarySynth, Theorem11ScheduleAgainstProtocol3) {
  // The constructive content of Theorem 11: an explicit weakly fair schedule
  // defeating the P-state Protocol 3 at N = P.
  const StateId p = 3;
  const GlobalLeaderNaming proto(p);
  const Problem problem = namingProblem(proto);
  const auto initials = allConcreteConfigurations(proto, p);
  const auto schedule = synthesizeWeakAdversary(proto, problem, initials);
  ASSERT_TRUE(schedule.has_value());
  const ReplayReport report = replayAdversary(proto, problem, *schedule);
  EXPECT_TRUE(report.valid());

  // Loop it: naming is never stably solved.
  Engine engine(proto, schedule->start);
  for (const Interaction it : schedule->prefix) engine.step(it);
  std::uint64_t nameChanges = 0;
  for (int lap = 0; lap < 200; ++lap) {
    for (const Interaction it : schedule->cycle) {
      const Configuration before = engine.config();
      engine.step(it);
      if (before.mobile != engine.config().mobile) ++nameChanges;
    }
  }
  // Either names keep churning or the loop dwells on unnamed configurations;
  // churn is what Protocol 3's violation looks like.
  EXPECT_GT(nameChanges, 0u);
}

TEST(AdversarySynth, Prop1ScheduleAgainstSymmetricGlobalNaming) {
  const SymmetricGlobalNaming proto(3);
  const Problem problem = namingProblem(proto);
  const auto initials = allUniformInitials(proto, 3);
  const auto schedule = synthesizeWeakAdversary(proto, problem, initials);
  ASSERT_TRUE(schedule.has_value());
  EXPECT_TRUE(replayAdversary(proto, problem, *schedule).valid());
}

TEST(AdversarySynth, NoScheduleForCorrectProtocols) {
  // Prop 12's protocol survives weak fairness: no adversary exists.
  const AsymmetricNaming proto(3);
  const auto schedule =
      synthesizeWeakAdversary(proto, namingProblem(proto),
                              allConcreteConfigurations(proto, 3));
  EXPECT_FALSE(schedule.has_value());
}

TEST(AdversarySynth, AgreesWithWeakChecker) {
  // Synthesis succeeds exactly when the checker reports a violation.
  struct Case {
    std::unique_ptr<Protocol> proto;
    std::uint32_t n;
  };
  std::vector<Case> cases;
  cases.push_back({std::make_unique<AsymmetricNaming>(3), 3});
  cases.push_back({std::make_unique<SymmetricGlobalNaming>(2), 2});
  cases.push_back({std::make_unique<GlobalLeaderNaming>(2), 2});
  for (const auto& c : cases) {
    const Problem problem = namingProblem(*c.proto);
    const auto initials = allConcreteConfigurations(*c.proto, c.n);
    const WeakVerdict verdict = checkWeakFairness(*c.proto, problem, initials);
    const auto schedule = synthesizeWeakAdversary(*c.proto, problem, initials);
    ASSERT_TRUE(verdict.explored);
    EXPECT_EQ(schedule.has_value(), !verdict.solves) << c.proto->name();
    if (schedule.has_value()) {
      EXPECT_TRUE(replayAdversary(*c.proto, problem, *schedule).valid())
          << c.proto->name();
    }
  }
}

TEST(AdversarySynth, RespectsTopology) {
  // On a star topology the asymmetric protocol is defeated (leaf homonyms
  // can never meet); the synthesized schedule must only use star edges.
  const std::uint32_t n = 4;
  const AsymmetricNaming proto(n);
  const InteractionGraph star = InteractionGraph::star(n, 0);
  const Problem problem = namingProblem(proto);
  const auto initials = allConcreteConfigurations(proto, n);
  const auto schedule = synthesizeWeakAdversary(proto, problem, initials,
                                                4'000'000, &star);
  ASSERT_TRUE(schedule.has_value());
  for (const Interaction it : schedule->cycle) {
    EXPECT_TRUE(star.hasEdge(it.initiator, it.responder));
  }
  EXPECT_TRUE(replayAdversary(proto, problem, *schedule, &star).valid());
}

}  // namespace
}  // namespace ppn
