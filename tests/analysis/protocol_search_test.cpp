#include "analysis/protocol_search.h"

#include <gtest/gtest.h>

#include "core/protocol.h"

namespace ppn {
namespace {

TEST(ProtocolSpace, SymmetricCounts) {
  EXPECT_EQ(symmetricProtocolCount(2), 16u);      // 2^2 * 4^1
  EXPECT_EQ(symmetricProtocolCount(3), 19683u);   // 3^3 * 9^3
}

TEST(ProtocolSpace, AllCounts) {
  EXPECT_EQ(allProtocolCount(2), 256u);  // 4^4
}

TEST(ProtocolSpace, DecodedSymmetricProtocolsAreSymmetric) {
  for (std::uint64_t idx = 0; idx < symmetricProtocolCount(2); ++idx) {
    const TabularProtocol proto = decodeSymmetricProtocol(2, idx);
    EXPECT_FALSE(verifySymmetric(proto).has_value()) << "idx=" << idx;
    EXPECT_FALSE(verifyClosed(proto).has_value()) << "idx=" << idx;
  }
  // Spot-check the larger space.
  for (std::uint64_t idx = 0; idx < symmetricProtocolCount(3); idx += 97) {
    const TabularProtocol proto = decodeSymmetricProtocol(3, idx);
    EXPECT_FALSE(verifySymmetric(proto).has_value()) << "idx=" << idx;
  }
}

TEST(ProtocolSpace, DecodingIsInjective) {
  // Distinct indices give distinct transition tables (q = 2, full check).
  const std::uint64_t total = symmetricProtocolCount(2);
  for (std::uint64_t a = 0; a < total; ++a) {
    const TabularProtocol pa = decodeSymmetricProtocol(2, a);
    for (std::uint64_t b = a + 1; b < total; ++b) {
      const TabularProtocol pb = decodeSymmetricProtocol(2, b);
      bool identical = true;
      for (StateId x = 0; x < 2 && identical; ++x) {
        for (StateId y = 0; y < 2 && identical; ++y) {
          identical = pa.mobileDelta(x, y) == pb.mobileDelta(x, y);
        }
      }
      EXPECT_FALSE(identical) << a << " vs " << b;
    }
  }
}

TEST(ProtocolSpace, DecodedFullSpaceIsTotal) {
  for (std::uint64_t idx = 0; idx < allProtocolCount(2); ++idx) {
    const TabularProtocol proto = decodeAnyProtocol(2, idx);
    EXPECT_FALSE(verifyClosed(proto).has_value()) << "idx=" << idx;
  }
}

// ---- Proposition 2: no symmetric P-state protocol names N = P agents, under
// either fairness, whatever uniform initialization the designer picks. ----

TEST(LowerBoundSearch, Prop2NoSymmetricSolverAtP2Global) {
  const SearchOutcome out =
      searchUniformNaming(2, 2, Fairness::kGlobal, /*symmetricSpace=*/true);
  EXPECT_EQ(out.examined, 16u);
  EXPECT_EQ(out.solvers, 0u);
}

TEST(LowerBoundSearch, Prop2NoSymmetricSolverAtP2Weak) {
  const SearchOutcome out =
      searchUniformNaming(2, 2, Fairness::kWeak, /*symmetricSpace=*/true);
  EXPECT_EQ(out.solvers, 0u);
}

TEST(LowerBoundSearch, Prop2NoSymmetricSolverAtP3Global) {
  const SearchOutcome out =
      searchUniformNaming(3, 3, Fairness::kGlobal, /*symmetricSpace=*/true);
  EXPECT_EQ(out.examined, 19683u);
  EXPECT_EQ(out.solvers, 0u);
}

TEST(LowerBoundSearch, Prop2NoSymmetricSolverAtP3Weak) {
  const SearchOutcome out =
      searchUniformNaming(3, 3, Fairness::kWeak, /*symmetricSpace=*/true);
  EXPECT_EQ(out.solvers, 0u);
}

// ---- Proposition 1: under weak fairness, no leaderless symmetric protocol
// names even a population SMALLER than its state budget. ----

TEST(LowerBoundSearch, Prop1NoSymmetric3StateSolverForN2Weak) {
  const SearchOutcome out =
      searchUniformNaming(3, 2, Fairness::kWeak, /*symmetricSpace=*/true);
  EXPECT_EQ(out.solvers, 0u);
}

// ---- Positive controls: the machinery does find solvers where they exist.

TEST(LowerBoundSearch, AsymmetricSolversExistAtP2Global) {
  // Prop 12's rule (s,s) -> (s, s+1 mod 2) lives in the full space.
  const SearchOutcome out =
      searchUniformNaming(2, 2, Fairness::kGlobal, /*symmetricSpace=*/false);
  EXPECT_EQ(out.examined, 256u);
  EXPECT_GT(out.solvers, 0u);
}

TEST(LowerBoundSearch, AsymmetricSolversExistAtP2Weak) {
  const SearchOutcome out =
      searchUniformNaming(2, 2, Fairness::kWeak, /*symmetricSpace=*/false);
  EXPECT_GT(out.solvers, 0u);
}

TEST(LowerBoundSearch, SelfStabilizingAsymmetricSolversExistAtP2) {
  // Prop 12 is self-stabilizing: solvers must survive the arbitrary-init
  // quantification too.
  const SearchOutcome out = searchSelfStabilizingNaming(
      2, 2, Fairness::kWeak, /*symmetricSpace=*/false);
  EXPECT_GT(out.solvers, 0u);
}

TEST(LowerBoundSearch, TwoAgentSymmetricNamingImpossibleEvenWithExtraStates) {
  // With N = 2 and no leader, the only interactions are between the two
  // agents, and symmetric rules map homonyms to homonyms — so from a uniform
  // start the agents are homonyms forever, whatever the state budget. (This
  // is why Prop 13 carries the N > 2 proviso.) The search must confirm zero
  // solvers even with an extra state.
  const SearchOutcome out =
      searchUniformNaming(3, 2, Fairness::kGlobal, /*symmetricSpace=*/true);
  EXPECT_EQ(out.solvers, 0u);
}

TEST(LowerBoundSearch, SolverIndicesAreReported) {
  const SearchOutcome out =
      searchUniformNaming(2, 2, Fairness::kGlobal, /*symmetricSpace=*/false);
  ASSERT_FALSE(out.solverIndices.empty());
  EXPECT_LE(out.solverIndices.size(), 8u);
  EXPECT_LT(out.solverIndices.front(), out.examined);
}

}  // namespace
}  // namespace ppn
