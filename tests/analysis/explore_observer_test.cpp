// Observer threading through the checkers: event ordering (monotone progress,
// LIFO phase nesting), truncation reporting, and the differential guarantee
// that observing an exploration does not change the graph it builds.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/explore.h"
#include "analysis/global_checker.h"
#include "analysis/initial_sets.h"
#include "analysis/problem.h"
#include "analysis/protocol_search.h"
#include "analysis/weak_checker.h"
#include "core/engine.h"
#include "naming/asymmetric_naming.h"
#include "naming/color_example.h"
#include "obs/explore_observer.h"
#include "obs/trace.h"
#include "sched/adversary.h"
#include "sim/runner.h"

namespace ppn {
namespace {

/// Captures every hook invocation in arrival order for later inspection.
class RecordingExploreObserver final : public ExploreObserver {
 public:
  void onExploreProgress(const ExploreProgressEvent& e) override {
    progress.push_back(e);
  }
  void onPhaseStart(const ExplorePhaseStartEvent& e) override {
    phases.emplace_back(true, std::string(e.phase), e.exploreId);
  }
  void onPhaseEnd(const ExplorePhaseEndEvent& e) override {
    phases.emplace_back(false, std::string(e.phase), e.exploreId);
  }
  void onTruncated(const ExploreTruncatedEvent& e) override {
    truncations.push_back(e);
  }
  void onSearchProgress(const SearchProgressEvent& e) override {
    searches.push_back(e);
  }

  struct PhaseMark {
    PhaseMark(bool s, std::string n, std::uint64_t id)
        : start(s), name(std::move(n)), exploreId(id) {}
    bool start;
    std::string name;
    std::uint64_t exploreId;
  };

  std::vector<ExploreProgressEvent> progress;
  std::vector<PhaseMark> phases;
  std::vector<ExploreTruncatedEvent> truncations;
  std::vector<SearchProgressEvent> searches;
};

bool sameGraph(const ConfigGraph& a, const ConfigGraph& b) {
  if (a.size() != b.size() || a.truncated != b.truncated ||
      a.numParticipants != b.numParticipants) {
    return false;
  }
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    if (!(a.config(i) == b.config(i))) return false;
    const std::vector<Edge> ae = a.edges(i);
    const std::vector<Edge> be = b.edges(i);
    if (ae.size() != be.size()) return false;
    for (std::size_t j = 0; j < ae.size(); ++j) {
      const Edge& x = ae[j];
      const Edge& y = be[j];
      if (x.to != y.to || x.label != y.label || x.initiator != y.initiator ||
          x.responder != y.responder || x.changed != y.changed ||
          x.changedMobile != y.changedMobile ||
          x.changedName != y.changedName) {
        return false;
      }
    }
  }
  return true;
}

TEST(ExploreObserverTest, ProgressIsMonotoneAndEndsWithDone) {
  const AsymmetricNaming proto(3);
  RecordingExploreObserver obs;
  const ConfigGraph graph = exploreConcrete(
      proto, allConcreteConfigurations(proto, 3), 4'000'000, nullptr, &obs, 42);

  ASSERT_FALSE(obs.progress.empty());
  std::uint64_t lastNodes = 0;
  std::uint64_t lastEdges = 0;
  for (const auto& e : obs.progress) {
    EXPECT_EQ(e.exploreId, 42u);
    EXPECT_GE(e.nodes, lastNodes) << "node counts must be monotone";
    EXPECT_GE(e.edges, lastEdges);
    lastNodes = e.nodes;
    lastEdges = e.edges;
  }
  for (std::size_t i = 0; i + 1 < obs.progress.size(); ++i) {
    EXPECT_FALSE(obs.progress[i].done);
  }
  const auto& final = obs.progress.back();
  EXPECT_TRUE(final.done);
  EXPECT_EQ(final.nodes, graph.size());
  EXPECT_EQ(final.frontier, 0u);
  EXPECT_TRUE(obs.truncations.empty());
}

TEST(ExploreObserverTest, CheckerPhasesNestLifoPerExploration) {
  const AsymmetricNaming proto(3);
  RecordingExploreObserver obs;
  const WeakVerdict v =
      checkWeakFairness(proto, namingProblem(proto),
                        allConcreteConfigurations(proto, 3), 4'000'000,
                        nullptr, &obs, 7);
  EXPECT_TRUE(v.explored);

  ASSERT_FALSE(obs.phases.empty());
  // Balanced LIFO: ends match the innermost open start, everything closes.
  std::vector<std::string> stack;
  std::vector<std::string> order;  // phases by start time
  for (const auto& m : obs.phases) {
    EXPECT_EQ(m.exploreId, 7u);
    if (m.start) {
      stack.push_back(m.name);
      order.push_back(m.name);
    } else {
      ASSERT_FALSE(stack.empty()) << "phase_end without open phase: " << m.name;
      EXPECT_EQ(stack.back(), m.name) << "phases must close LIFO";
      stack.pop_back();
    }
  }
  EXPECT_TRUE(stack.empty()) << "unclosed phase: " << stack.back();
  // The weak checker runs explore -> scc -> verdict inside an outer "check".
  const std::vector<std::string> expected{"check", "explore", "scc", "verdict"};
  EXPECT_EQ(order, expected);
}

TEST(ExploreObserverTest, GlobalCheckerEmitsSamePhaseStructure) {
  const AsymmetricNaming proto(3);
  RecordingExploreObserver obs;
  const GlobalVerdict v =
      checkGlobalFairness(proto, namingProblem(proto),
                          allCanonicalConfigurations(proto, 3), 4'000'000,
                          &obs, 11);
  EXPECT_TRUE(v.explored);
  std::vector<std::string> order;
  for (const auto& m : obs.phases) {
    if (m.start) order.push_back(m.name);
  }
  const std::vector<std::string> expected{"check", "explore", "scc", "verdict"};
  EXPECT_EQ(order, expected);
}

TEST(ExploreObserverTest, TruncationCarriesTheFrontier) {
  const AsymmetricNaming proto(4);
  RecordingExploreObserver obs;
  const ConfigGraph graph = exploreConcrete(
      proto, allConcreteConfigurations(proto, 4), 50, nullptr, &obs, 3);
  ASSERT_TRUE(graph.truncated);

  ASSERT_EQ(obs.truncations.size(), 1u);
  const auto& t = obs.truncations.front();
  EXPECT_EQ(t.exploreId, 3u);
  EXPECT_EQ(t.maxNodes, 50u);
  EXPECT_EQ(t.nodes, graph.size());
  EXPECT_FALSE(t.frontier.empty());
  for (const std::uint32_t id : t.frontier) {
    EXPECT_LT(id, graph.size()) << "frontier ids index the returned graph";
  }
  // Truncation still produces a final done=true progress event.
  ASSERT_FALSE(obs.progress.empty());
  EXPECT_TRUE(obs.progress.back().done);
}

TEST(ExploreObserverTest, TruncatedCheckRefusesVerdict) {
  const AsymmetricNaming proto(4);
  const WeakVerdict v =
      checkWeakFairness(proto, namingProblem(proto),
                        allConcreteConfigurations(proto, 4), 50);
  EXPECT_FALSE(v.explored);
  EXPECT_FALSE(v.solves);
}

// The acceptance-critical differential: a null observer and a recording
// observer must produce bit-identical configuration graphs.
TEST(ExploreObserverTest, ObservedExplorationIsBitIdenticalToUnobserved) {
  const AsymmetricNaming proto(3);
  const auto initials = allConcreteConfigurations(proto, 3);

  const ConfigGraph plain = exploreConcrete(proto, initials);
  RecordingExploreObserver obs;
  const ConfigGraph observed =
      exploreConcrete(proto, initials, 4'000'000, nullptr, &obs, 1);
  EXPECT_TRUE(sameGraph(plain, observed));

  const ConfigGraph plainCanon = exploreCanonical(proto, initials);
  const ConfigGraph observedCanon =
      exploreCanonical(proto, initials, 4'000'000, &obs, 2);
  EXPECT_TRUE(sameGraph(plainCanon, observedCanon));
}

TEST(ExploreObserverTest, SearchReportsProgressAndFinishes) {
  RecordingExploreObserver obs;
  const SearchOutcome out = searchUniformNaming(
      2, 2, Fairness::kGlobal, /*symmetricSpace=*/true, &obs, 5);
  EXPECT_EQ(out.examined, 16u);
  EXPECT_EQ(out.unknown, 0u);

  ASSERT_FALSE(obs.searches.empty());
  std::uint64_t lastExamined = 0;
  for (const auto& e : obs.searches) {
    EXPECT_EQ(e.searchId, 5u);
    EXPECT_GE(e.examined, lastExamined);
    EXPECT_EQ(e.total, 16u);
    lastExamined = e.examined;
  }
  const auto& fin = obs.searches.back();
  EXPECT_TRUE(fin.done);
  EXPECT_EQ(fin.examined, 16u);
  EXPECT_EQ(fin.solvers, out.solvers);

  // Inner explorations are namespaced under the search id.
  ASSERT_FALSE(obs.progress.empty());
  for (const auto& e : obs.progress) {
    EXPECT_EQ(e.exploreId >> 32, 5u);
  }
}

TEST(ExploreObserverTest, MultiObserverFansOutAndEmptyIsDetectable) {
  MultiExploreObserver multi;
  EXPECT_TRUE(multi.empty());
  RecordingExploreObserver a;
  RecordingExploreObserver b;
  multi.add(&a);
  multi.add(&b);
  EXPECT_FALSE(multi.empty());
  multi.onExploreProgress(ExploreProgressEvent{1, 10, 2, 30, 0, 0, 1.0, 1.0,
                                               false});
  multi.onTruncated(ExploreTruncatedEvent{1, 10, 10, {4}});
  EXPECT_EQ(a.progress.size(), 1u);
  EXPECT_EQ(b.progress.size(), 1u);
  EXPECT_EQ(a.truncations.size(), 1u);
  EXPECT_EQ(b.truncations.size(), 1u);
}

// Watchdog abort must trigger the flight recorder's automatic dump: drive a
// protocol that can never go silent (the black/white token spinner) into a
// 1 ms watchdog and check the configured path was written.
TEST(ExploreObserverTest, WatchdogAbortDumpsTheFlightRecorder) {
  const std::string path = testing::TempDir() + "/watchdog_dump.jsonl";
  std::remove(path.c_str());

  const ColorExample colors;
  Engine engine(colors, Configuration{{1, 0, 0}, std::nullopt});
  CallbackScheduler spinner("token-spinner", [](std::uint64_t t) {
    switch (t % 3) {
      case 0: return Interaction{0, 1};
      case 1: return Interaction{1, 2};
      default: return Interaction{2, 0};
    }
  });

  FlightRecorder recorder(64, 16, path);
  RunLimits limits;
  limits.maxInteractions = 1'000'000'000;
  limits.checkInterval = 64;
  limits.maxWallMillis = 1;
  const RunOutcome out =
      runUntilSilent(engine, spinner, limits, nullptr, nullptr, 77, &recorder);
  ASSERT_TRUE(out.timedOut);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "watchdog abort must dump to the configured path";
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("\"event\":\"flight_recorder_dump\""),
            std::string::npos);
  EXPECT_NE(header.find("watchdog_abort run 77"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ppn
