#include "analysis/hitting_time.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/protocol_search.h"

#include "core/engine.h"
#include "naming/asymmetric_naming.h"
#include "naming/color_example.h"
#include "naming/leader_uniform_naming.h"
#include "naming/selfstab_weak_naming.h"
#include "sched/random_scheduler.h"
#include "sim/runner.h"
#include "stats/summary.h"

namespace ppn {
namespace {

TEST(HittingTime, ColorExampleIsExactlyGeometric) {
  // From [B,W,W]: exchanges are self-loops at the multiset level; the (W,W)
  // meeting (2 of 6 ordered pairs) absorbs. Expected time = 3 exactly.
  const ColorExample proto;
  const HittingTime h = expectedConvergenceTime(
      proto, Configuration{{1, 0, 0}, std::nullopt});
  ASSERT_TRUE(h.computed);
  EXPECT_FALSE(h.diverges);
  EXPECT_NEAR(h.expectedInteractions, 3.0, 1e-9);
}

TEST(HittingTime, ColorExampleAllWhiteDiverges) {
  // From [W,W,W] the first meeting yields [B,B,W], where the lone white can
  // never pair with another white: silence is unreachable — the run jumps
  // forever.
  const ColorExample proto;
  const HittingTime h = expectedConvergenceTime(
      proto, Configuration{{0, 0, 0}, std::nullopt});
  ASSERT_TRUE(h.computed);
  EXPECT_TRUE(h.diverges);
}

TEST(HittingTime, ImmediateResolutionCostsOneInteraction) {
  // Asymmetric naming, N = 2 homonyms: any first interaction separates them.
  const AsymmetricNaming proto(3);
  const HittingTime h = expectedConvergenceTime(
      proto, Configuration{{1, 1}, std::nullopt});
  ASSERT_TRUE(h.computed);
  EXPECT_NEAR(h.expectedInteractions, 1.0, 1e-9);
}

TEST(HittingTime, AlreadySilentIsZero) {
  const AsymmetricNaming proto(3);
  const HittingTime h = expectedConvergenceTime(
      proto, Configuration{{0, 1, 2}, std::nullopt});
  ASSERT_TRUE(h.computed);
  EXPECT_DOUBLE_EQ(h.expectedInteractions, 0.0);
}

TEST(HittingTime, LeaderUniformNamingMatchesCouponCollector) {
  // Prop 14's protocol at N = P: progress happens exactly when the leader
  // meets an unnamed agent (probability 2u / (M(M-1)) with u unnamed,
  // M = N+1), and only P-1 renamings occur — the last agent keeps the
  // marker as its name. Weighted coupon collector:
  //   E = sum_{u=2..N} M(M-1) / (2u).
  const std::uint32_t n = 4;
  const LeaderUniformNaming proto(n);
  const HittingTime h =
      expectedConvergenceTime(proto, uniformConfiguration(proto, n));
  ASSERT_TRUE(h.computed);
  const double m = n + 1;
  double expected = 0.0;
  for (std::uint32_t u = 2; u <= n; ++u) {
    expected += m * (m - 1) / (2.0 * u);
  }
  EXPECT_NEAR(h.expectedInteractions, expected, 1e-9);
}

TEST(HittingTime, MatchesSimulatedMeanWithinTolerance) {
  // Cross-validation of the simulator against the exact value.
  const SelfStabWeakNaming proto(3);
  const Configuration start{{0, 0, 0}, LeaderStateId{0}};
  const HittingTime h = expectedConvergenceTime(proto, start);
  ASSERT_TRUE(h.computed);
  ASSERT_FALSE(h.diverges);
  ASSERT_GT(h.expectedInteractions, 0.0);

  Rng rng(99);
  std::vector<double> samples;
  for (int run = 0; run < 4000; ++run) {
    Engine engine(proto, start);
    RandomScheduler sched(4, rng.next());
    const RunOutcome out = runUntilSilent(engine, sched, RunLimits{500000, 1});
    ASSERT_TRUE(out.silent);
    samples.push_back(static_cast<double>(out.convergenceInteractions));
  }
  const Summary s = summarize(std::move(samples));
  // 4000 samples: the mean is within ~4 standard errors of the exact value.
  const double standardError = s.stddev / 63.2;  // sqrt(4000)
  EXPECT_NEAR(s.mean, h.expectedInteractions, 4.5 * standardError)
      << "exact=" << h.expectedInteractions << " simulated=" << s.mean;
}

TEST(HittingTime, FuzzAgainstSimulationOnRandomProtocols) {
  // Differential test over random symmetric 3-state protocols: wherever the
  // solver produces a finite expectation, a 1500-run simulation mean must
  // agree within ~5 standard errors. Exercises chain construction with
  // homonym weights, self-loop mass and divergence detection on arbitrary
  // rule tables, not just the paper's protocols.
  Rng rng(909);
  const Configuration start{{0, 0, 1}, std::nullopt};
  int finiteChecked = 0;
  int divergentSeen = 0;
  for (int sample = 0; sample < 80 && finiteChecked < 12; ++sample) {
    const std::uint64_t idx = rng.below(symmetricProtocolCount(3));
    const TabularProtocol proto = decodeSymmetricProtocol(3, idx);
    const HittingTime h = expectedConvergenceTime(proto, start);
    ASSERT_TRUE(h.computed) << "tiny instances must always be solvable";
    if (h.diverges) {
      ++divergentSeen;
      continue;
    }
    if (h.expectedInteractions > 500.0) continue;  // keep simulation cheap
    ++finiteChecked;

    std::vector<double> samples;
    for (int run = 0; run < 1500; ++run) {
      Engine engine(proto, start);
      RandomScheduler sched(3, rng.next());
      const RunOutcome out =
          runUntilSilent(engine, sched, RunLimits{2'000'000, 1});
      ASSERT_TRUE(out.silent) << "protocol " << idx;
      samples.push_back(static_cast<double>(out.convergenceInteractions));
    }
    const Summary s = summarize(std::move(samples));
    const double se = s.stddev / std::sqrt(1500.0);
    EXPECT_NEAR(s.mean, h.expectedInteractions, 5.0 * se + 0.05)
        << "protocol " << idx;
  }
  EXPECT_GE(finiteChecked, 5);
  // The sample space contains plenty of non-converging protocols too.
  EXPECT_GT(divergentSeen, 0);
}

TEST(HittingTime, ExactValueIsSchedulerSeedFree) {
  // Determinism: the exact computation has no randomness at all.
  const AsymmetricNaming proto(4);
  const Configuration start{{2, 2, 2, 2}, std::nullopt};
  const HittingTime a = expectedConvergenceTime(proto, start);
  const HittingTime b = expectedConvergenceTime(proto, start);
  ASSERT_TRUE(a.computed);
  EXPECT_DOUBLE_EQ(a.expectedInteractions, b.expectedInteractions);
  EXPECT_GT(a.expectedInteractions, 1.0);
}

TEST(HittingTime, CapRespected) {
  const SelfStabWeakNaming proto(4);
  const HittingTime h = expectedConvergenceTime(
      proto, Configuration{{0, 0, 0, 0}, LeaderStateId{0}}, /*maxStates=*/3);
  EXPECT_FALSE(h.computed);
}

TEST(HittingTime, SingleAgentPopulations) {
  const AsymmetricNaming proto(3);
  const HittingTime h =
      expectedConvergenceTime(proto, Configuration{{2}, std::nullopt});
  ASSERT_TRUE(h.computed);
  EXPECT_DOUBLE_EQ(h.expectedInteractions, 0.0);
}

}  // namespace
}  // namespace ppn
