// Cross-validation of the exact checkers against brute-force simulation on
// randomly sampled protocols: whenever a checker certifies convergence, long
// simulated runs must agree; whenever the weak checker reports a violation,
// the synthesized adversary must replay. This guards the checker semantics
// (SCC criteria, coverage, quiescence) against implementation drift.
#include <gtest/gtest.h>

#include "analysis/adversary_synth.h"
#include "analysis/global_checker.h"
#include "analysis/initial_sets.h"
#include "analysis/protocol_search.h"
#include "analysis/weak_checker.h"
#include "naming/registry.h"
#include "core/engine.h"
#include "sched/deterministic_schedulers.h"
#include "sched/random_scheduler.h"
#include "sim/runner.h"
#include "util/rng.h"

namespace ppn {
namespace {

TEST(CheckerConsistency, GlobalSolversConvergeInSimulation) {
  // Sample random symmetric 3-state protocols; for each uniform start where
  // the global checker certifies naming, random-scheduler runs must reach a
  // named name-quiescent configuration.
  Rng rng(2025);
  const std::uint32_t n = 3;
  int certified = 0;
  for (int sample = 0; sample < 400; ++sample) {
    const std::uint64_t idx = rng.below(symmetricProtocolCount(3));
    const TabularProtocol proto = decodeSymmetricProtocol(3, idx);
    const Problem problem = namingProblem(proto);
    for (StateId s = 0; s < 3; ++s) {
      Configuration start;
      start.mobile.assign(n, s);
      const GlobalVerdict v = checkGlobalFairness(proto, problem, {start});
      if (!v.explored || !v.solves) continue;
      ++certified;
      for (int run = 0; run < 3; ++run) {
        Engine engine(proto, start);
        RandomScheduler sched(n, rng.next());
        bool done = false;
        for (int step = 0; step < 200000 && !done; ++step) {
          engine.step(sched.next());
          done = engine.namingSolved();
        }
        EXPECT_TRUE(done) << "protocol " << idx << " uniform start " << s;
      }
    }
  }
  // With N = Q = 3 symmetric naming from uniform starts is impossible
  // (Prop 2), so nothing should ever be certified — which is itself the
  // cross-check here.
  EXPECT_EQ(certified, 0);
}

/// Index (in the symmetric encoding) of the all-null identity protocol with
/// q = 3 states: diagonal digits d_s = s, off-diagonal digits a*3+b.
std::uint64_t identityProtocolIndex3() {
  const std::uint64_t diag = 0 + 1 * 3 + 2 * 9;
  const std::uint64_t off = 1 + 2 * 9 + 5 * 81;  // pairs (0,1),(0,2),(1,2)
  return diag + 27 * off;
}

TEST(CheckerConsistency, IdentityProtocolIndexDecodesToAllNull) {
  const TabularProtocol proto = decodeSymmetricProtocol(3, identityProtocolIndex3());
  for (StateId a = 0; a < 3; ++a) {
    for (StateId b = 0; b < 3; ++b) {
      EXPECT_EQ(proto.mobileDelta(a, b), (MobilePair{a, b}));
    }
  }
}

TEST(CheckerConsistency, GlobalSolversConvergeInSimulationMixedStarts) {
  // Same cross-check but from a fixed non-uniform start. Random samples
  // rarely solve, so the all-null identity protocol (which trivially keeps
  // the distinct start frozen) is included as a guaranteed positive control.
  Rng rng(77);
  const Configuration start{{0, 1, 2}, std::nullopt};
  int certified = 0;
  std::vector<std::uint64_t> indices{identityProtocolIndex3()};
  for (int sample = 0; sample < 300; ++sample) {
    indices.push_back(rng.below(symmetricProtocolCount(3)));
  }
  for (const std::uint64_t idx : indices) {
    const TabularProtocol proto = decodeSymmetricProtocol(3, idx);
    const Problem problem = namingProblem(proto);
    const GlobalVerdict v = checkGlobalFairness(proto, problem, {start});
    if (!v.explored || !v.solves) continue;
    ++certified;
    for (int run = 0; run < 2; ++run) {
      Engine engine(proto, start);
      RandomScheduler sched(3, rng.next());
      bool done = false;
      for (int step = 0; step < 200000 && !done; ++step) {
        engine.step(sched.next());
        done = engine.namingSolved();
      }
      EXPECT_TRUE(done) << "protocol " << idx;
    }
  }
  EXPECT_GT(certified, 0) << "the sample should contain some solvers";
}

TEST(CheckerConsistency, WeakViolationsAlwaysReplay) {
  // Every weak-checker violation must come with a replayable adversary.
  Rng rng(11);
  const Configuration start{{0, 0, 1}, std::nullopt};
  int violations = 0;
  for (int sample = 0; sample < 200; ++sample) {
    const std::uint64_t idx = rng.below(symmetricProtocolCount(3));
    const TabularProtocol proto = decodeSymmetricProtocol(3, idx);
    const Problem problem = namingProblem(proto);
    const WeakVerdict v = checkWeakFairness(proto, problem, {start});
    ASSERT_TRUE(v.explored);
    const auto schedule = synthesizeWeakAdversary(proto, problem, {start});
    EXPECT_EQ(schedule.has_value(), !v.solves) << "protocol " << idx;
    if (schedule.has_value()) {
      ++violations;
      EXPECT_TRUE(replayAdversary(proto, problem, *schedule).valid())
          << "protocol " << idx;
    }
  }
  EXPECT_GT(violations, 0);
}

TEST(CheckerConsistency, WeakSolversSurviveDeterministicSchedulers) {
  // If the weak checker certifies a protocol, round-robin and tournament
  // simulations (both weakly fair) must converge to stable naming.
  Rng rng(31);
  const Configuration start{{0, 1, 2}, std::nullopt};
  int certified = 0;
  std::vector<std::uint64_t> indices{identityProtocolIndex3()};
  for (int sample = 0; sample < 200; ++sample) {
    indices.push_back(rng.below(symmetricProtocolCount(3)));
  }
  for (std::size_t k = 0; k < indices.size() && certified < 25; ++k) {
    const std::uint64_t idx = indices[k];
    const TabularProtocol proto = decodeSymmetricProtocol(3, idx);
    const Problem problem = namingProblem(proto);
    const WeakVerdict v = checkWeakFairness(proto, problem, {start});
    if (!v.explored || !v.solves) continue;
    ++certified;
    for (const SchedulerKind kind :
         {SchedulerKind::kRoundRobin, SchedulerKind::kTournament}) {
      Engine engine(proto, start);
      auto sched = makeScheduler(kind, 3, 0);
      bool done = false;
      for (int step = 0; step < 100000 && !done; ++step) {
        engine.step(sched->next());
        done = engine.namingSolved();
      }
      // A weakly fair execution must converge; once namingSolved the
      // names can never change again (quiescence is part of the check).
      EXPECT_TRUE(done) << "protocol " << idx << " "
                        << schedulerKindName(kind);
    }
  }
  EXPECT_GT(certified, 0);
}

TEST(CheckerConsistency, CanonicalQuotientAgreesWithConcreteGlobalChecker) {
  // Soundness of the multiset quotient: on the complete topology, the
  // canonical global checker and the concrete global checker must return
  // identical verdicts for permutation-invariant problems. Fuzzed over
  // random protocols and starts.
  Rng rng(555);
  for (int sample = 0; sample < 150; ++sample) {
    const std::uint64_t idx = rng.below(symmetricProtocolCount(3));
    const TabularProtocol proto = decodeSymmetricProtocol(3, idx);
    const Problem problem = namingProblem(proto);
    Configuration start;
    for (int i = 0; i < 3; ++i) {
      start.mobile.push_back(static_cast<StateId>(rng.below(3)));
    }
    const GlobalVerdict canonical =
        checkGlobalFairness(proto, problem, {start});
    const GlobalVerdict concrete =
        checkGlobalFairnessConcrete(proto, problem, {start});
    ASSERT_TRUE(canonical.explored);
    ASSERT_TRUE(concrete.explored);
    EXPECT_EQ(canonical.solves, concrete.solves)
        << "protocol " << idx << " start " << start.toString();
  }
}

TEST(CheckerConsistency, QuotientAgreementOnTheRealProtocols) {
  // Same agreement on the paper's protocols (leader states included).
  const std::vector<std::string> keys{"asymmetric", "symmetric-global",
                                      "global-leader"};
  for (const auto& key : keys) {
    const auto proto = makeProtocol(key, 3);
    const Problem problem = namingProblem(*proto);
    Rng rng(99);
    for (int sample = 0; sample < 10; ++sample) {
      const Configuration start = arbitraryConfiguration(*proto, 3, rng);
      const GlobalVerdict canonical =
          checkGlobalFairness(*proto, problem, {start});
      const GlobalVerdict concrete =
          checkGlobalFairnessConcrete(*proto, problem, {start});
      ASSERT_TRUE(canonical.explored && concrete.explored) << key;
      EXPECT_EQ(canonical.solves, concrete.solves) << key;
      EXPECT_LE(canonical.numConfigs, concrete.numConfigs) << key;
    }
  }
}

TEST(CheckerConsistency, WeakSolvesImpliesGlobalBottomSccsNamed) {
  // Structural relation on a fixed start: if every weakly fair execution
  // converges, then in particular every bottom SCC reachable is silent and
  // named (a globally fair execution limited to a bottom SCC is weakly
  // fair-compatible there). Checked empirically over samples.
  Rng rng(131);
  const Configuration start{{0, 1, 1}, std::nullopt};
  for (int sample = 0; sample < 300; ++sample) {
    const std::uint64_t idx = rng.below(symmetricProtocolCount(3));
    const TabularProtocol proto = decodeSymmetricProtocol(3, idx);
    const Problem problem = namingProblem(proto);
    const WeakVerdict weak = checkWeakFairness(proto, problem, {start});
    if (!weak.explored || !weak.solves) continue;
    const GlobalVerdict global = checkGlobalFairness(proto, problem, {start});
    ASSERT_TRUE(global.explored);
    EXPECT_TRUE(global.solves)
        << "weak-solves must imply global-solves on protocol " << idx;
  }
}

}  // namespace
}  // namespace ppn
