// Unit coverage for the compressed ConfigGraph stores (DESIGN decision 19):
//  * PackedCodec element-width boundaries — state counts and population
//    sizes of 255/256/65535/65536 cross the 1/2/4-byte encodings, and
//    zero-occupancy histogram entries round-trip;
//  * ConfigStore delta coding — decode() and the sequential Cursor agree
//    with the appended images across sample-stride boundaries;
//  * EdgeStreamStore varint streams — flags, targets and oriented pairs
//    round-trip, unexpanded nodes have no edges;
//  * FpTable — fingerprint collisions are resolved by caller verification,
//    never by trusting the 64-bit fingerprint, and drain/drainRange preserve
//    membership;
//  * SpillRunSet — sorted-run probes find every id for a fingerprint (also
//    when equal fingerprints straddle probe-block boundaries), compaction
//    merges runs, and a corrupted run fails its CRC check loudly;
//  * SpillPolicy — the flush schedule is a pure function of the interned
//    count, so two identical histories yield identical byte models.
#include "analysis/compressed_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "analysis/spill_store.h"

namespace ppn::detail {
namespace {

// ---------------------------------------------------------------------------
// PackedCodec boundaries.

TEST(PackedCodecBoundary, ConcreteWidthCrossesByteBoundaries) {
  // Concrete form: width is chosen from the largest state value, numStates-1.
  const struct {
    StateId numStates;
    std::uint32_t expectWidth;
  } cases[] = {{255, 1}, {256, 1}, {257, 2}, {65535, 2}, {65536, 2}, {65537, 4}};
  for (const auto& tc : cases) {
    const PackedCodec codec(PackedCodec::Form::kConcrete, tc.numStates,
                            /*hasLeader=*/false, /*numMobile=*/3);
    EXPECT_EQ(codec.packedBytes(), 3 * tc.expectWidth)
        << "numStates=" << tc.numStates;
    Configuration c;
    c.mobile = {0, tc.numStates - 1, tc.numStates / 2};
    const PackedConfig p = codec.pack(c);
    EXPECT_EQ(codec.unpackBytes(p.data()), c) << "numStates=" << tc.numStates;
  }
}

TEST(PackedCodecBoundary, CanonicalCountWidthCrossesByteBoundaries) {
  // Canonical form: width is chosen from the population size (max count).
  const struct {
    std::uint32_t numMobile;
    std::uint32_t expectWidth;
  } cases[] = {{255, 1}, {256, 2}, {65535, 2}, {65536, 4}};
  for (const auto& tc : cases) {
    const PackedCodec codec(PackedCodec::Form::kCanonical, /*numStates=*/3,
                            /*hasLeader=*/false, tc.numMobile);
    EXPECT_EQ(codec.packedBytes(), 3 * tc.expectWidth)
        << "numMobile=" << tc.numMobile;
    // Everyone in state 1: counts (0, numMobile, 0) — the boundary count
    // value itself plus two zero-occupancy entries.
    Configuration c;
    c.mobile.assign(tc.numMobile, 1);
    const PackedConfig p = codec.pack(c);
    EXPECT_EQ(codec.unpackBytes(p.data()), c) << "numMobile=" << tc.numMobile;
  }
}

TEST(PackedCodecBoundary, ZeroOccupancyHistogramRoundTrips) {
  const PackedCodec codec(PackedCodec::Form::kCanonical, /*numStates=*/5,
                          /*hasLeader=*/true, /*numMobile=*/3);
  // States 1 and 3 occupied, 0/2/4 empty; leader present and absent.
  for (const bool leader : {false, true}) {
    Configuration c;
    c.mobile = {1, 1, 3};
    if (leader) c.leader = 7;
    const PackedConfig p = codec.pack(c);
    EXPECT_EQ(codec.unpackBytes(p.data()), c);
  }
  // The all-zero histogram (empty population) is a valid image too.
  Configuration empty;
  const PackedConfig p = codec.pack(empty);
  EXPECT_EQ(codec.unpackBytes(p.data()), empty);
}

// ---------------------------------------------------------------------------
// ConfigStore.

std::vector<std::vector<std::uint8_t>> randomImages(std::uint32_t n,
                                                    std::uint32_t width,
                                                    std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::vector<std::uint8_t>> images(n);
  std::vector<std::uint8_t> prev(width, 0);
  for (auto& img : images) {
    img = prev;
    // Mutate a couple of bytes so consecutive records share prefix/suffix —
    // the case the delta coder is built for — with occasional full rewrites.
    const std::uint32_t mutations = 1 + static_cast<std::uint32_t>(rng() % 3);
    for (std::uint32_t m = 0; m < mutations; ++m) {
      img[rng() % width] = static_cast<std::uint8_t>(rng());
    }
    if (rng() % 16 == 0) {
      for (auto& b : img) b = static_cast<std::uint8_t>(rng());
    }
    prev = img;
  }
  return images;
}

TEST(ConfigStore, DecodeMatchesAppendAcrossSampleBoundaries) {
  constexpr std::uint32_t kWidth = 11;
  // 3 full sample strides plus a partial one.
  const auto images = randomImages(3 * ConfigStore::kSampleStride + 7, kWidth, 42);
  ConfigStore store;
  store.init(kWidth);
  for (const auto& img : images) store.append(img.data());
  ASSERT_EQ(store.count(), images.size());

  std::vector<std::uint8_t> buf(kWidth);
  for (std::uint32_t id = 0; id < store.count(); ++id) {
    store.decode(id, buf.data());
    EXPECT_EQ(std::memcmp(buf.data(), images[id].data(), kWidth), 0)
        << "node " << id;
  }
}

TEST(ConfigStore, CursorSequentialAndRandomAccessAgree) {
  constexpr std::uint32_t kWidth = 8;
  const auto images = randomImages(100, kWidth, 7);
  ConfigStore store;
  store.init(kWidth);
  for (const auto& img : images) store.append(img.data());

  ConfigStore::Cursor cursor(store);
  // Sequential sweep (the BFS expansion pattern).
  for (std::uint32_t id = 0; id < store.count(); ++id) {
    EXPECT_EQ(std::memcmp(cursor.at(id), images[id].data(), kWidth), 0);
  }
  // Random jumps, including re-reads of the current position.
  std::mt19937 rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto id = static_cast<std::uint32_t>(rng() % store.count());
    EXPECT_EQ(std::memcmp(cursor.at(id), images[id].data(), kWidth), 0);
  }
}

TEST(ConfigStore, CursorSurvivesInterleavedAppends) {
  constexpr std::uint32_t kWidth = 4;
  const auto images = randomImages(80, kWidth, 11);
  ConfigStore store;
  store.init(kWidth);
  ConfigStore::Cursor cursor(store);
  // BFS interleaving: expand node id while later nodes are being appended.
  store.append(images[0].data());
  for (std::uint32_t id = 0; id + 1 < images.size(); ++id) {
    EXPECT_EQ(std::memcmp(cursor.at(id), images[id].data(), kWidth), 0);
    store.append(images[id + 1].data());
  }
}

TEST(ConfigStore, SizeSimPredictsRealBlobGrowth) {
  constexpr std::uint32_t kWidth = 9;
  const auto images = randomImages(70, kWidth, 23);
  ConfigStore store;
  store.init(kWidth);
  for (std::uint32_t i = 0; i < 40; ++i) store.append(images[i].data());

  ConfigStore::SizeSim sim = store.sizeSim();
  for (std::uint32_t i = 40; i < images.size(); ++i) sim.append(images[i].data());
  for (std::uint32_t i = 40; i < images.size(); ++i) store.append(images[i].data());
  EXPECT_EQ(sim.blobBytes(), store.blobBytes());
  EXPECT_EQ(ConfigStore::modeledBytesAt(store.count(), store.blobBytes()),
            store.modeledBytes());
}

// ---------------------------------------------------------------------------
// EdgeStreamStore.

TEST(EdgeStreamStore, ConcreteRoundTripWithSkipScan) {
  EdgeStreamStore store;
  store.init(/*concrete=*/true);
  std::mt19937 rng(5);
  std::vector<std::vector<RawEdge>> perNode(2 * EdgeStreamStore::kSampleStride + 3);
  std::vector<std::uint8_t> body;
  for (std::uint32_t id = 0; id < perNode.size(); ++id) {
    auto& edges = perNode[id];
    const auto count = static_cast<std::uint32_t>(rng() % 5);  // empties too
    for (std::uint32_t k = 0; k < count; ++k) {
      RawEdge e;
      e.to = static_cast<std::uint32_t>(rng() % (perNode.size() + 40));
      e.flags = static_cast<std::uint8_t>(rng() % 8);
      e.initiator = static_cast<std::uint16_t>(rng() % 7);
      e.responder = static_cast<std::uint16_t>(rng() % 7);
      edges.push_back(e);
    }
    EdgeStreamStore::encodeBody(body, id, count, /*concrete=*/true,
                                [&](std::uint32_t k) { return edges[k]; });
    store.appendStream(id, body);
  }

  for (std::uint32_t id = 0; id < perNode.size(); ++id) {
    EXPECT_EQ(store.edgeCount(id), perNode[id].size()) << "node " << id;
    std::size_t k = 0;
    store.forEachEdgeRaw(id, [&](const RawEdge& e) {
      ASSERT_LT(k, perNode[id].size());
      EXPECT_EQ(e.to, perNode[id][k].to) << "node " << id << " edge " << k;
      EXPECT_EQ(e.flags, perNode[id][k].flags);
      EXPECT_EQ(e.initiator, perNode[id][k].initiator);
      EXPECT_EQ(e.responder, perNode[id][k].responder);
      ++k;
    });
    EXPECT_EQ(k, perNode[id].size());
  }
  // Nodes beyond the expanded prefix (the truncated frontier) have no edges.
  EXPECT_EQ(store.edgeCount(static_cast<std::uint32_t>(perNode.size())), 0u);
  store.forEachEdgeRaw(static_cast<std::uint32_t>(perNode.size()),
                       [](const RawEdge&) { FAIL(); });
}

TEST(EdgeStreamStore, CanonicalFormOmitsOrientedPairs) {
  EdgeStreamStore store;
  store.init(/*concrete=*/false);
  std::vector<std::uint8_t> body;
  const RawEdge edge{/*to=*/3, /*flags=*/1, /*initiator=*/0, /*responder=*/0};
  EdgeStreamStore::encodeBody(body, 0, 1, /*concrete=*/false,
                              [&](std::uint32_t) { return edge; });
  store.appendStream(0, body);
  store.forEachEdgeRaw(0, [&](const RawEdge& e) {
    EXPECT_EQ(e.to, 3u);
    EXPECT_EQ(e.flags, 1);
  });
  EXPECT_EQ(EdgeStreamStore::streamBlobBytes(body.size()),
            1 + body.size());  // 1-byte length header for tiny bodies
}

// ---------------------------------------------------------------------------
// FpTable.

TEST(FpTable, CollidingFingerprintsAreResolvedByVerification) {
  FpTable table;
  constexpr std::uint64_t kFp = 0xdeadbeefcafef00dull;
  table.insert(kFp, 1);
  table.insert(kFp, 2);  // same fingerprint, different node
  // The caller's verify() decides which colliding id is the match.
  const auto first = table.find(kFp, [](std::uint32_t id) { return id == 1; });
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 1u);
  const auto second = table.find(kFp, [](std::uint32_t id) { return id == 2; });
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 2u);
  // A fingerprint hit whose bytes don't verify is NOT a match.
  EXPECT_FALSE(table.find(kFp, [](std::uint32_t) { return false; }).has_value());
  EXPECT_FALSE(table.find(kFp + 1, [](std::uint32_t) { return true; }).has_value());
}

TEST(FpTable, SurvivesRehashAndDrainsEveryEntry) {
  FpTable table;
  constexpr std::uint32_t kN = 1000;
  for (std::uint32_t i = 0; i < kN; ++i) {
    table.insert(i * 0x9e3779b97f4a7c15ull, i);
  }
  EXPECT_EQ(table.size(), kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    const auto hit = table.find(i * 0x9e3779b97f4a7c15ull,
                                [](std::uint32_t) { return true; });
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, i);
  }
  std::vector<std::pair<std::uint64_t, std::uint32_t>> drained;
  table.drain(drained);
  EXPECT_EQ(drained.size(), kN);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(FpTable::modeledBytesFor(0), 0u);
}

TEST(FpTable, DrainRangeKeepsSurvivors) {
  FpTable table;
  for (std::uint32_t i = 0; i < 100; ++i) table.insert(i * 7919, i);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> drained;
  table.drainRange(0, 60, drained);
  EXPECT_EQ(drained.size(), 60u);
  EXPECT_EQ(table.size(), 40u);
  for (std::uint32_t i = 60; i < 100; ++i) {
    EXPECT_TRUE(
        table.find(i * 7919, [&](std::uint32_t id) { return id == i; })
            .has_value());
  }
  EXPECT_FALSE(
      table.find(0, [](std::uint32_t) { return true; }).has_value());
}

// ---------------------------------------------------------------------------
// SpillRunSet + SpillPolicy.

std::filesystem::path freshSpillDir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("ppn-spill-test-") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(SpillRunSet, ProbesFindEveryIdIncludingEqualFpAcrossBlocks) {
  const auto dir = freshSpillDir("probe");
  SpillRunSet runs(dir.string());
  // One fingerprint repeated across several probe blocks, plus neighbours.
  std::vector<SpillEntry> entries;
  constexpr std::uint64_t kHot = 500;
  const std::uint32_t hotCount = 3 * SpillRunSet::kProbeStride + 5;
  for (std::uint32_t i = 0; i < hotCount; ++i) {
    entries.push_back(SpillEntry{kHot, i});
  }
  entries.push_back(SpillEntry{kHot - 1, 9001});
  entries.push_back(SpillEntry{kHot + 1, 9002});
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return a.fp != b.fp ? a.fp < b.fp : a.id < b.id;
  });
  runs.writeRun(entries);

  std::vector<std::uint32_t> out;
  runs.candidates(kHot, out);
  ASSERT_EQ(out.size(), hotCount);
  for (std::uint32_t i = 0; i < hotCount; ++i) EXPECT_EQ(out[i], i);
  runs.candidates(kHot - 1, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 9001u);
  runs.candidates(kHot + 2, out);  // absent fingerprint
  EXPECT_TRUE(out.empty());
  runs.candidates(0, out);  // below the run's minimum
  EXPECT_TRUE(out.empty());
  std::filesystem::remove_all(dir);
}

TEST(SpillRunSet, CompactMergesRunsAndKeepsAllCandidates) {
  const auto dir = freshSpillDir("compact");
  SpillRunSet runs(dir.string());
  // Three runs with interleaved fingerprints, duplicates across runs.
  for (std::uint32_t r = 0; r < 3; ++r) {
    std::vector<SpillEntry> entries;
    for (std::uint32_t i = 0; i < 200; ++i) {
      entries.push_back(SpillEntry{std::uint64_t{i} * 3 + r, r * 1000 + i});
    }
    entries.push_back(SpillEntry{77, r * 1000 + 777});  // shared fp
    std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
      return a.fp != b.fp ? a.fp < b.fp : a.id < b.id;
    });
    runs.writeRun(entries);
  }
  EXPECT_EQ(runs.runCount(), 3u);
  const std::uint64_t bytesBefore = runs.diskBytes();
  runs.compact();
  EXPECT_EQ(runs.runCount(), 1u);
  EXPECT_EQ(runs.diskBytes(), bytesBefore - 2 * 24);  // two headers saved

  std::vector<std::uint32_t> out;
  runs.candidates(77, out);
  // fp 77 appears in every run as i-derived entries too: r=0 i=... 77%3==2 ->
  // run r matches 77 iff (77 - r) % 3 == 0, i.e. r == 2 (i=25), plus the
  // three shared 777 entries.
  std::vector<std::uint32_t> expected{777, 1777, 2025 /*r=2,i=25*/, 2777};
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, expected);
  std::filesystem::remove_all(dir);
}

TEST(SpillRunSet, CompactRejectsCorruptedRun) {
  const auto dir = freshSpillDir("crc");
  SpillRunSet runs(dir.string());
  for (std::uint32_t r = 0; r < 2; ++r) {
    std::vector<SpillEntry> entries;
    for (std::uint32_t i = 0; i < 50; ++i) {
      entries.push_back(SpillEntry{i, i});
    }
    runs.writeRun(entries);
  }
  // Flip one payload byte in one run file behind the reader's back.
  bool corrupted = false;
  for (const auto& f : std::filesystem::directory_iterator(dir)) {
    std::fstream file(f.path(),
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(24 + 5);
    char b;
    file.get(b);
    file.seekp(24 + 5);
    file.put(static_cast<char>(b ^ 0x40));
    corrupted = true;
    break;
  }
  ASSERT_TRUE(corrupted);
  EXPECT_THROW(runs.compact(), std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(SpillPolicy, FlushScheduleIsAPureFunctionOfInternedCount) {
  SpillPolicy a(4096), b(4096);
  std::vector<std::uint32_t> flushPointsA, flushPointsB;
  for (std::uint32_t n = 1; n <= 5000; ++n) {
    if (a.maybeFlush(n).has_value()) flushPointsA.push_back(n);
    if (b.maybeFlush(n).has_value()) flushPointsB.push_back(n);
    ASSERT_EQ(a.dedupModelBytes(n), b.dedupModelBytes(n)) << "n=" << n;
  }
  EXPECT_EQ(flushPointsA, flushPointsB);
  EXPECT_FALSE(flushPointsA.empty());
  // The RAM-tier model never exceeds the threshold right after a flush
  // decision point.
  EXPECT_EQ(a.flushedEntries(), flushPointsA.back());
}

TEST(SpillPolicy, ZeroThresholdNeverFlushes) {
  SpillPolicy policy(0);
  EXPECT_FALSE(policy.enabled());
  for (std::uint32_t n = 1; n <= 10000; n += 97) {
    EXPECT_FALSE(policy.maybeFlush(n).has_value());
  }
  EXPECT_EQ(policy.spillDiskBytes(), 0u);
  EXPECT_EQ(policy.dedupModelBytes(10000), FpTable::modeledBytesFor(10000));
}

TEST(SpillPolicy, TinyThresholdProducesManyRunsThenCompacts) {
  SpillPolicy policy(1);  // any non-empty table exceeds 1 byte
  bool sawCompact = false;
  std::uint64_t flushes = 0;
  for (std::uint32_t n = 1; n <= 100; ++n) {
    const auto action = policy.maybeFlush(n);
    if (action.has_value()) {
      ++flushes;
      sawCompact |= action->compact;
      EXPECT_LE(policy.runCount(), SpillPolicy::kMaxRuns + 1);
    }
  }
  EXPECT_EQ(flushes, 100u);  // every intern flushes at threshold 1
  EXPECT_TRUE(sawCompact);
  EXPECT_EQ(policy.spillDiskBytes(), policy.runCount() * 24 + 100 * 12);
}

}  // namespace
}  // namespace ppn::detail
