// Differential tests for the parallel exploration engine: threads = K must
// produce BIT-IDENTICAL output to the serial reference path (threads = 1) —
// same node ids, same edge order, same truncation behavior, same checker
// verdicts — across every registry protocol at small P. This is the
// determinism contract of DESIGN.md decision 14.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "analysis/explore.h"
#include "analysis/global_checker.h"
#include "analysis/initial_sets.h"
#include "analysis/packed_config.h"
#include "analysis/problem.h"
#include "analysis/protocol_search.h"
#include "analysis/weak_checker.h"
#include "core/interaction_graph.h"
#include "naming/registry.h"
#include "obs/explore_observer.h"

namespace ppn {
namespace {

// ---------------------------------------------------------------------------
// Bit-identity helpers.

void expectEdgesEqual(const Edge& a, const Edge& b, const char* where,
                      std::size_t node, std::size_t k) {
  EXPECT_EQ(a.to, b.to) << where << " node " << node << " edge " << k;
  EXPECT_EQ(a.label, b.label) << where << " node " << node << " edge " << k;
  EXPECT_EQ(a.initiator, b.initiator)
      << where << " node " << node << " edge " << k;
  EXPECT_EQ(a.responder, b.responder)
      << where << " node " << node << " edge " << k;
  EXPECT_EQ(a.changed, b.changed) << where << " node " << node << " edge " << k;
  EXPECT_EQ(a.changedMobile, b.changedMobile)
      << where << " node " << node << " edge " << k;
  EXPECT_EQ(a.changedName, b.changedName)
      << where << " node " << node << " edge " << k;
}

void expectGraphsIdentical(const ConfigGraph& serial, const ConfigGraph& par,
                           const char* where) {
  ASSERT_EQ(serial.size(), par.size()) << where;
  EXPECT_EQ(serial.numParticipants, par.numParticipants) << where;
  EXPECT_EQ(serial.truncated, par.truncated) << where;
  EXPECT_EQ(serial.truncatedByBudget, par.truncatedByBudget) << where;
  for (std::uint32_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial.config(i), par.config(i)) << where << " node " << i;
    const std::vector<Edge> se = serial.edges(i);
    const std::vector<Edge> pe = par.edges(i);
    ASSERT_EQ(se.size(), pe.size()) << where << " node " << i;
    for (std::size_t k = 0; k < se.size(); ++k) {
      expectEdgesEqual(se[k], pe[k], where, i, k);
    }
  }
}

ExploreOptions withThreads(std::uint32_t threads,
                           std::size_t maxNodes = 4'000'000) {
  ExploreOptions options;
  options.threads = threads;
  options.maxNodes = maxNodes;
  return options;
}

// Small P per registry key such that the canonical graph over ALL
// configurations closes quickly.
struct RegistryCase {
  const char* key;
  StateId p;
  std::uint32_t n;  ///< mobile population
};

std::vector<RegistryCase> smallCases() {
  return {{"asymmetric", 3, 3},    {"symmetric-global", 2, 3},
          {"leader-uniform", 3, 3}, {"counting", 2, 3},
          {"selfstab-weak", 2, 3},  {"global-leader", 3, 3}};
}

// ---------------------------------------------------------------------------
// Canonical + concrete bit-identity across the whole registry.

TEST(ParallelExplore, CanonicalBitIdenticalAcrossRegistry) {
  for (const RegistryCase& rc : smallCases()) {
    const auto proto = makeProtocol(rc.key, rc.p);
    const auto initials = allCanonicalConfigurations(*proto, rc.n);
    const ConfigGraph serial =
        exploreCanonical(*proto, initials, withThreads(1));
    for (const std::uint32_t threads : {2u, 4u}) {
      const ConfigGraph par =
          exploreCanonical(*proto, initials, withThreads(threads));
      expectGraphsIdentical(serial, par, rc.key);
    }
  }
}

TEST(ParallelExplore, ConcreteBitIdenticalAcrossRegistry) {
  for (const RegistryCase& rc : smallCases()) {
    const auto proto = makeProtocol(rc.key, rc.p);
    const auto initials = allConcreteConfigurations(*proto, rc.n);
    const ConfigGraph serial = exploreConcrete(*proto, initials, withThreads(1));
    for (const std::uint32_t threads : {2u, 4u}) {
      const ConfigGraph par =
          exploreConcrete(*proto, initials, withThreads(threads));
      expectGraphsIdentical(serial, par, rc.key);
    }
  }
}

TEST(ParallelExplore, ThreadsZeroMeansHardwareConcurrency) {
  const auto proto = makeProtocol("asymmetric", 3);
  const auto initials = allCanonicalConfigurations(*proto, 3);
  const ConfigGraph serial = exploreCanonical(*proto, initials, withThreads(1));
  const ConfigGraph par = exploreCanonical(*proto, initials, withThreads(0));
  expectGraphsIdentical(serial, par, "threads=0");
}

TEST(ParallelExplore, TopologyRestrictedConcreteBitIdentical) {
  const auto proto = makeProtocol("asymmetric", 3);
  const auto initials = allUniformInitials(*proto, 4);
  for (const InteractionGraph topo :
       {InteractionGraph::ring(4), InteractionGraph::line(4),
        InteractionGraph::star(4, 0)}) {
    ExploreOptions serialOpt = withThreads(1);
    serialOpt.topology = &topo;
    const ConfigGraph serial = exploreConcrete(*proto, initials, serialOpt);
    ExploreOptions parOpt = withThreads(4);
    parOpt.topology = &topo;
    const ConfigGraph par = exploreConcrete(*proto, initials, parOpt);
    expectGraphsIdentical(serial, par, "topology");
  }
}

// ---------------------------------------------------------------------------
// Truncation under parallelism: for EVERY cap value, the parallel engine must
// reproduce the serial cut exactly — node count, truncated flag, and the
// contents/order of everything interned before the cut. Sweeping all caps
// exercises entry-of-level cuts, mid-level cuts and the no-cut case.

TEST(ParallelExplore, TruncationSweepMatchesSerialAtEveryCap) {
  const auto proto = makeProtocol("counting", 3);
  const auto initials = allCanonicalConfigurations(*proto, 4);
  const ConfigGraph full = exploreCanonical(*proto, initials, withThreads(1));
  ASSERT_GT(full.size(), initials.size()) << "graph must grow to test cuts";
  for (std::size_t cap = initials.size(); cap <= full.size() + 1; ++cap) {
    const ConfigGraph serial =
        exploreCanonical(*proto, initials, withThreads(1, cap));
    for (const std::uint32_t threads : {2u, 4u}) {
      const ConfigGraph par =
          exploreCanonical(*proto, initials, withThreads(threads, cap));
      expectGraphsIdentical(serial, par, "truncation");
    }
  }
}

TEST(ParallelExplore, TruncationSweepConcrete) {
  const auto proto = makeProtocol("asymmetric", 3);
  const auto initials = allUniformInitials(*proto, 3);
  const ConfigGraph full = exploreConcrete(*proto, initials, withThreads(1));
  for (std::size_t cap = initials.size(); cap <= full.size() + 1; ++cap) {
    const ConfigGraph serial =
        exploreConcrete(*proto, initials, withThreads(1, cap));
    const ConfigGraph par =
        exploreConcrete(*proto, initials, withThreads(4, cap));
    expectGraphsIdentical(serial, par, "truncation-concrete");
  }
}

// The truncation EVENT must also match: same frontier ids in the same order.
class TruncationCapture final : public ExploreObserver {
 public:
  void onTruncated(const ExploreTruncatedEvent& e) override {
    events.push_back(e);
  }
  std::vector<ExploreTruncatedEvent> events;
};

TEST(ParallelExplore, TruncationEventFrontierMatchesSerial) {
  const auto proto = makeProtocol("counting", 3);
  const auto initials = allCanonicalConfigurations(*proto, 4);
  const ConfigGraph full = exploreCanonical(*proto, initials, withThreads(1));
  // Pick a mid-growth cap so the cut lands inside a level.
  const std::size_t cap = initials.size() + (full.size() - initials.size()) / 2;
  TruncationCapture serialCap;
  ExploreOptions serialOpt = withThreads(1, cap);
  serialOpt.observer = &serialCap;
  exploreCanonical(*proto, initials, serialOpt);
  TruncationCapture parCap;
  ExploreOptions parOpt = withThreads(4, cap);
  parOpt.observer = &parCap;
  exploreCanonical(*proto, initials, parOpt);
  ASSERT_EQ(serialCap.events.size(), parCap.events.size());
  for (std::size_t i = 0; i < serialCap.events.size(); ++i) {
    EXPECT_EQ(serialCap.events[i].nodes, parCap.events[i].nodes);
    EXPECT_EQ(serialCap.events[i].maxNodes, parCap.events[i].maxNodes);
    EXPECT_EQ(serialCap.events[i].frontier, parCap.events[i].frontier);
  }
}

// ---------------------------------------------------------------------------
// Checker verdicts: identical at threads = 1 vs 4 across the registry.

TEST(ParallelExplore, WeakVerdictIdenticalAcrossRegistry) {
  for (const RegistryCase& rc : smallCases()) {
    const auto proto = makeProtocol(rc.key, rc.p);
    const Problem problem = namingProblem(*proto);
    const auto initials = allCanonicalConfigurations(*proto, rc.n);
    const WeakVerdict serial =
        checkWeakFairness(*proto, problem, initials, withThreads(1));
    const WeakVerdict par =
        checkWeakFairness(*proto, problem, initials, withThreads(4));
    EXPECT_EQ(serial.explored, par.explored) << rc.key;
    EXPECT_EQ(serial.solves, par.solves) << rc.key;
    EXPECT_EQ(serial.numConfigs, par.numConfigs) << rc.key;
    EXPECT_EQ(serial.numSccs, par.numSccs) << rc.key;
    EXPECT_EQ(serial.violatingSccs, par.violatingSccs) << rc.key;
    EXPECT_EQ(serial.witness, par.witness) << rc.key;
    EXPECT_EQ(serial.witnessSccSize, par.witnessSccSize) << rc.key;
    EXPECT_EQ(serial.reason, par.reason) << rc.key;
  }
}

TEST(ParallelExplore, GlobalVerdictIdenticalAcrossRegistry) {
  for (const RegistryCase& rc : smallCases()) {
    const auto proto = makeProtocol(rc.key, rc.p);
    const Problem problem = namingProblem(*proto);
    const auto initials = allCanonicalConfigurations(*proto, rc.n);
    const GlobalVerdict serial =
        checkGlobalFairness(*proto, problem, initials, withThreads(1));
    const GlobalVerdict par =
        checkGlobalFairness(*proto, problem, initials, withThreads(4));
    EXPECT_EQ(serial.explored, par.explored) << rc.key;
    EXPECT_EQ(serial.solves, par.solves) << rc.key;
    EXPECT_EQ(serial.numConfigs, par.numConfigs) << rc.key;
    EXPECT_EQ(serial.numBottomSccs, par.numBottomSccs) << rc.key;
    EXPECT_EQ(serial.witness, par.witness) << rc.key;
    EXPECT_EQ(serial.reason, par.reason) << rc.key;
  }
}

// ---------------------------------------------------------------------------
// Parallel protocol search: deterministic outcome, equal to serial.

void expectOutcomesEqual(const SearchOutcome& a, const SearchOutcome& b,
                         const char* where) {
  EXPECT_EQ(a.examined, b.examined) << where;
  EXPECT_EQ(a.solvers, b.solvers) << where;
  EXPECT_EQ(a.unknown, b.unknown) << where;
  EXPECT_EQ(a.solverIndices, b.solverIndices) << where;
}

TEST(ParallelSearch, UniformNamingSymmetricSpaceMatchesSerial) {
  SearchOptions serial;
  serial.threads = 1;
  SearchOptions par;
  par.threads = 4;
  const SearchOutcome s =
      searchUniformNaming(2, 2, Fairness::kGlobal, /*symmetricSpace=*/true,
                          serial);
  const SearchOutcome p =
      searchUniformNaming(2, 2, Fairness::kGlobal, /*symmetricSpace=*/true,
                          par);
  expectOutcomesEqual(s, p, "symmetric-global");
}

TEST(ParallelSearch, UniformNamingFullSpaceMatchesSerial) {
  SearchOptions serial;
  serial.threads = 1;
  SearchOptions par;
  par.threads = 4;
  const SearchOutcome s = searchUniformNaming(
      2, 2, Fairness::kWeak, /*symmetricSpace=*/false, serial);
  const SearchOutcome p =
      searchUniformNaming(2, 2, Fairness::kWeak, /*symmetricSpace=*/false, par);
  expectOutcomesEqual(s, p, "full-weak");
  // Positive control: the full asymmetric space at q=2 does contain solvers,
  // so solverIndices is non-empty and its determinism is meaningful.
  EXPECT_GT(s.solvers, 0u);
  EXPECT_FALSE(s.solverIndices.empty());
}

TEST(ParallelSearch, SelfStabilizingNamingMatchesSerial) {
  SearchOptions serial;
  serial.threads = 1;
  SearchOptions par;
  par.threads = 3;  // deliberately not a divisor of the space size
  const SearchOutcome s = searchSelfStabilizingNaming(
      2, 2, Fairness::kGlobal, /*symmetricSpace=*/true, serial);
  const SearchOutcome p = searchSelfStabilizingNaming(
      2, 2, Fairness::kGlobal, /*symmetricSpace=*/true, par);
  expectOutcomesEqual(s, p, "selfstab");
}

TEST(ParallelSearch, MoreThreadsThanCandidatesIsSafe) {
  SearchOptions par;
  par.threads = 64;  // symmetric q=2 space has only 16 candidates
  const SearchOutcome p =
      searchUniformNaming(2, 2, Fairness::kGlobal, /*symmetricSpace=*/true,
                          par);
  const SearchOutcome s = searchUniformNaming(2, 2, Fairness::kGlobal,
                                              /*symmetricSpace=*/true);
  expectOutcomesEqual(s, p, "overprovisioned");
}

// Progress events through the serialized observer stay per-search monotone.
class SearchProgressCapture final : public ExploreObserver {
 public:
  void onSearchProgress(const SearchProgressEvent& e) override {
    events.push_back(e);
  }
  std::vector<SearchProgressEvent> events;
};

TEST(ParallelSearch, ProgressEventsMonotoneAndTerminated) {
  SearchProgressCapture capture;
  SearchOptions options;
  options.threads = 4;
  options.observer = &capture;
  options.searchId = 7;
  const SearchOutcome outcome = searchUniformNaming(
      2, 2, Fairness::kWeak, /*symmetricSpace=*/false, options);
  ASSERT_FALSE(capture.events.empty());
  std::uint64_t last = 0;
  for (const SearchProgressEvent& e : capture.events) {
    EXPECT_EQ(e.searchId, 7u);
    EXPECT_GE(e.examined, last);
    last = e.examined;
  }
  EXPECT_TRUE(capture.events.back().done);
  EXPECT_EQ(capture.events.back().examined, outcome.examined);
  EXPECT_EQ(capture.events.back().solvers, outcome.solvers);
}

// ---------------------------------------------------------------------------
// PackedConfig / PackedCodec unit coverage.

TEST(PackedCodec, ConcreteRoundtrip) {
  const auto proto = makeProtocol("leader-uniform", 5);
  const PackedCodec codec(PackedCodec::Form::kConcrete, *proto, 4);
  const Configuration c{{0, 4, 2, 1}, std::uint64_t{3}};
  const PackedConfig packed = codec.pack(c);
  EXPECT_EQ(codec.unpack(packed), c);
}

TEST(PackedCodec, CanonicalRoundtripAndInjectivity) {
  const auto proto = makeProtocol("asymmetric", 4);
  const PackedCodec codec(PackedCodec::Form::kCanonical, *proto, 5);
  const auto initials = allCanonicalConfigurations(*proto, 5);
  std::vector<PackedConfig> keys;
  for (const Configuration& c : initials) {
    PackedConfig packed = codec.pack(c);
    EXPECT_EQ(codec.unpack(packed), c);
    for (const PackedConfig& other : keys) {
      EXPECT_FALSE(other == packed) << "distinct configs must pack distinctly";
    }
    keys.push_back(std::move(packed));
  }
}

TEST(PackedCodec, EqualConfigsPackEqualWithEqualHashes) {
  const auto proto = makeProtocol("counting", 3);
  const PackedCodec codec(PackedCodec::Form::kConcrete, *proto, 3);
  const Configuration c{{1, 0, 2}, std::uint64_t{5}};
  const PackedConfig a = codec.pack(c);
  const PackedConfig b = codec.pack(c);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(PackedCodec, WideStateSpaceUsesMultiByteElements) {
  // 300 mobile states forces 2-byte elements in concrete form.
  class Wide final : public Protocol {
   public:
    std::string name() const override { return "wide"; }
    StateId numMobileStates() const override { return 300; }
    bool isSymmetric() const override { return true; }
    MobilePair mobileDelta(StateId a, StateId b) const override {
      return {a, b};
    }
  };
  const Wide proto;
  const PackedCodec codec(PackedCodec::Form::kConcrete, proto, 3);
  const Configuration c{{299, 0, 257}, std::nullopt};
  EXPECT_EQ(codec.unpack(codec.pack(c)), c);
}

// ---------------------------------------------------------------------------
// Memory estimates: configGraphBytes must charge CAPACITY, not size, for
// per-node heap allocations, and the final done-event estimate (the memory
// ledger's total, which additionally counts the dedup table, frontier and
// codec spill) must cover it, match the final memory_sample exactly, and be
// engine-invariant.

TEST(ConfigGraphBytes, ChargesCapacityNotSize) {
  ConfigGraph g;
  g.numParticipants = 3;
  Configuration c{{0, 1, 2}, std::nullopt};
  c.mobile.reserve(10);  // capacity deliberately exceeds size
  g.configs.push_back(std::move(c));
  g.adj.emplace_back();
  g.adj[0].reserve(7);
  g.adj[0].push_back(Edge{});

  const std::uint64_t expected =
      (sizeof(Configuration) +
       g.configs[0].mobile.capacity() * sizeof(StateId)) +
      (sizeof(std::vector<Edge>) + g.adj[0].capacity() * sizeof(Edge));
  EXPECT_EQ(configGraphBytes(g), expected);
  // The capacity surcharge must actually be visible: a size-based estimate
  // would be strictly smaller.
  const std::uint64_t sizeBased =
      (sizeof(Configuration) + g.configs[0].mobile.size() * sizeof(StateId)) +
      (sizeof(std::vector<Edge>) + g.adj[0].size() * sizeof(Edge));
  EXPECT_GT(configGraphBytes(g), sizeBased);
}

class ProgressCapture final : public ExploreObserver {
 public:
  void onExploreProgress(const ExploreProgressEvent& e) override {
    events.push_back(e);
  }
  void onMemorySample(const MemorySampleEvent& e) override {
    samples.push_back(e);
  }
  std::vector<ExploreProgressEvent> events;
  std::vector<MemorySampleEvent> samples;
};

TEST(ConfigGraphBytes, FinalProgressEventMatchesLedgerTotal) {
  const auto proto = makeProtocol("counting", 3);
  const auto initials = allCanonicalConfigurations(*proto, 4);
  std::uint64_t serialEstimate = 0;
  for (const std::uint32_t threads : {1u, 4u}) {
    ProgressCapture capture;
    ExploreOptions options = withThreads(threads);
    options.observer = &capture;
    const ConfigGraph g = exploreCanonical(*proto, initials, options);
    ASSERT_FALSE(capture.events.empty()) << "threads=" << threads;
    ASSERT_FALSE(capture.samples.empty()) << "threads=" << threads;
    const ExploreProgressEvent& done = capture.events.back();
    const MemorySampleEvent& mem = capture.samples.back();
    EXPECT_TRUE(done.done);
    EXPECT_TRUE(mem.done);
    EXPECT_EQ(done.nodes, g.size());
    // The estimate is the ledger total: it must agree with the final
    // memory_sample bit-for-bit, decompose into its components, cover the
    // retained graph (it additionally counts the dedup table), and not
    // depend on the engine.
    EXPECT_EQ(done.bytesEstimate, mem.totalBytes) << "threads=" << threads;
    EXPECT_EQ(mem.totalBytes, mem.configsBytes + mem.adjacencyBytes +
                                  mem.dedupBytes + mem.frontierBytes +
                                  mem.codecBytes)
        << "threads=" << threads;
    EXPECT_GE(done.bytesEstimate, configGraphBytes(g)) << "threads=" << threads;
    EXPECT_GT(mem.dedupBytes, 0u) << "threads=" << threads;
    EXPECT_GE(mem.highWaterBytes, mem.totalBytes) << "threads=" << threads;
    if (threads == 1) {
      serialEstimate = done.bytesEstimate;
    } else {
      EXPECT_EQ(done.bytesEstimate, serialEstimate) << "threads=" << threads;
    }
  }
}

TEST(ConfigGraphBytes, TruncatedGraphStillMatchesLedger) {
  const auto proto = makeProtocol("counting", 3);
  const auto initials = allCanonicalConfigurations(*proto, 4);
  const ConfigGraph full = exploreCanonical(*proto, initials, withThreads(1));
  const std::size_t cap = initials.size() + (full.size() - initials.size()) / 2;
  std::uint64_t serialEstimate = 0;
  for (const std::uint32_t threads : {1u, 4u}) {
    ProgressCapture capture;
    ExploreOptions options = withThreads(threads, cap);
    options.observer = &capture;
    const ConfigGraph g = exploreCanonical(*proto, initials, options);
    ASSERT_TRUE(g.truncated);
    ASSERT_FALSE(capture.events.empty());
    ASSERT_FALSE(capture.samples.empty());
    EXPECT_EQ(capture.events.back().bytesEstimate,
              capture.samples.back().totalBytes)
        << "threads=" << threads;
    EXPECT_GE(capture.events.back().bytesEstimate, configGraphBytes(g))
        << "threads=" << threads;
    if (threads == 1) {
      serialEstimate = capture.events.back().bytesEstimate;
    } else {
      EXPECT_EQ(capture.events.back().bytesEstimate, serialEstimate)
          << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace ppn
