// Memory telemetry + byte-budget governor (DESIGN decision 18):
//  * MemoryLedger unit coverage — the malloc-chunk model, growth model,
//    component arithmetic, checkpointed high-water marks, and shard merge;
//  * MemoryBudget differential coverage — a budget high enough never to fire
//    leaves graph AND event stream bit-identical to a no-budget run, a
//    budget that DOES fire truncates bit-identically at every thread count,
//    and the checkers surface budget truncation as an UNKNOWN verdict whose
//    reason names the byte budget.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/explore.h"
#include "analysis/initial_sets.h"
#include "analysis/problem.h"
#include "analysis/weak_checker.h"
#include "naming/registry.h"
#include "obs/explore_observer.h"
#include "obs/memory.h"

namespace ppn {
namespace {

// ---------------------------------------------------------------------------
// MemoryLedger unit coverage.

TEST(MemoryLedger, PaddedAllocBytesModelsMallocChunks) {
  EXPECT_EQ(paddedAllocBytes(0), 0u);   // no request, no chunk
  EXPECT_EQ(paddedAllocBytes(1), 32u);  // minimum chunk
  EXPECT_EQ(paddedAllocBytes(24), 32u);
  EXPECT_EQ(paddedAllocBytes(25), 48u);  // 25 + 8 header -> 48 after rounding
  EXPECT_EQ(paddedAllocBytes(56), 64u);
  EXPECT_EQ(paddedAllocBytes(64), 80u);
  EXPECT_EQ(paddedAllocBytes(1024), 1040u);
}

TEST(MemoryLedger, GrownCapacityIsSmallestPowerOfTwoCover) {
  EXPECT_EQ(grownCapacity(1), 1u);
  EXPECT_EQ(grownCapacity(2), 2u);
  EXPECT_EQ(grownCapacity(3), 4u);
  EXPECT_EQ(grownCapacity(4), 4u);
  EXPECT_EQ(grownCapacity(5), 8u);
  EXPECT_EQ(grownCapacity(1024), 1024u);
  EXPECT_EQ(grownCapacity(1025), 2048u);
}

TEST(MemoryLedger, ComponentArithmeticAndTotal) {
  MemoryLedger ledger;
  EXPECT_EQ(ledger.total(), 0u);
  ledger.add(MemoryComponent::kConfigs, 100);
  ledger.add(MemoryComponent::kAdjacency, 50);
  ledger.add(MemoryComponent::kAdjacency, 25);
  ledger.set(MemoryComponent::kFrontier, 40);
  ledger.sub(MemoryComponent::kAdjacency, 15);
  EXPECT_EQ(ledger.component(MemoryComponent::kConfigs), 100u);
  EXPECT_EQ(ledger.component(MemoryComponent::kAdjacency), 60u);
  EXPECT_EQ(ledger.component(MemoryComponent::kFrontier), 40u);
  EXPECT_EQ(ledger.component(MemoryComponent::kDedup), 0u);
  EXPECT_EQ(ledger.total(), 200u);
}

TEST(MemoryLedger, CheckpointFoldsHighWaterMarks) {
  MemoryLedger ledger;
  ledger.set(MemoryComponent::kConfigs, 100);
  ledger.set(MemoryComponent::kFrontier, 80);
  ledger.checkpoint();
  EXPECT_EQ(ledger.highWater(), 180u);
  EXPECT_EQ(ledger.componentHighWater(MemoryComponent::kFrontier), 80u);
  // Shrinking the frontier must not lower any high-water mark.
  ledger.set(MemoryComponent::kFrontier, 10);
  ledger.checkpoint();
  EXPECT_EQ(ledger.highWater(), 180u);
  EXPECT_EQ(ledger.componentHighWater(MemoryComponent::kFrontier), 80u);
  EXPECT_EQ(ledger.total(), 110u);
  // A new peak raises them again.
  ledger.set(MemoryComponent::kConfigs, 300);
  ledger.checkpoint();
  EXPECT_EQ(ledger.highWater(), 310u);
  EXPECT_EQ(ledger.componentHighWater(MemoryComponent::kConfigs), 300u);
}

TEST(MemoryLedger, NoteHighWaterFoldsWithoutMutatingCurrents) {
  MemoryLedger ledger;
  ledger.set(MemoryComponent::kConfigs, 10);
  ledger.noteTotalHighWater(500);
  ledger.noteComponentHighWater(MemoryComponent::kFrontier, 77);
  EXPECT_EQ(ledger.highWater(), 500u);
  EXPECT_EQ(ledger.componentHighWater(MemoryComponent::kFrontier), 77u);
  EXPECT_EQ(ledger.component(MemoryComponent::kFrontier), 0u);
  EXPECT_EQ(ledger.total(), 10u);
  // A lower note never regresses the mark.
  ledger.noteTotalHighWater(100);
  EXPECT_EQ(ledger.highWater(), 500u);
}

TEST(MemoryLedger, MergeSumsCurrentValuesComponentwise) {
  MemoryLedger a;
  a.add(MemoryComponent::kDedup, 100);
  a.add(MemoryComponent::kCodec, 30);
  MemoryLedger b;
  b.add(MemoryComponent::kDedup, 50);
  b.add(MemoryComponent::kConfigs, 7);
  a.merge(b);
  EXPECT_EQ(a.component(MemoryComponent::kDedup), 150u);
  EXPECT_EQ(a.component(MemoryComponent::kCodec), 30u);
  EXPECT_EQ(a.component(MemoryComponent::kConfigs), 7u);
  EXPECT_EQ(a.total(), 187u);
}

TEST(MemoryLedger, ComponentNamesAreStable) {
  EXPECT_STREQ(memoryComponentName(MemoryComponent::kConfigs), "configs");
  EXPECT_STREQ(memoryComponentName(MemoryComponent::kAdjacency), "adjacency");
  EXPECT_STREQ(memoryComponentName(MemoryComponent::kDedup), "dedup");
  EXPECT_STREQ(memoryComponentName(MemoryComponent::kFrontier), "frontier");
  EXPECT_STREQ(memoryComponentName(MemoryComponent::kCodec), "codec");
}

// ---------------------------------------------------------------------------
// Budget differential coverage.

/// Captures every deterministic field of the explore event stream (wall-time
/// and RSS fields excluded by construction — they are documented as
/// non-deterministic).
class StreamCapture final : public ExploreObserver {
 public:
  void onExploreProgress(const ExploreProgressEvent& e) override {
    progress.push_back(e);
  }
  void onMemorySample(const MemorySampleEvent& e) override {
    samples.push_back(e);
  }
  void onTruncated(const ExploreTruncatedEvent& e) override {
    truncations.push_back(e);
  }
  std::vector<ExploreProgressEvent> progress;
  std::vector<MemorySampleEvent> samples;
  std::vector<ExploreTruncatedEvent> truncations;
};

void expectStreamsIdentical(const StreamCapture& a, const StreamCapture& b,
                            const char* where) {
  ASSERT_EQ(a.progress.size(), b.progress.size()) << where;
  for (std::size_t i = 0; i < a.progress.size(); ++i) {
    EXPECT_EQ(a.progress[i].nodes, b.progress[i].nodes) << where << " #" << i;
    EXPECT_EQ(a.progress[i].frontier, b.progress[i].frontier)
        << where << " #" << i;
    EXPECT_EQ(a.progress[i].edges, b.progress[i].edges) << where << " #" << i;
    EXPECT_EQ(a.progress[i].dedupHits, b.progress[i].dedupHits)
        << where << " #" << i;
    EXPECT_EQ(a.progress[i].bytesEstimate, b.progress[i].bytesEstimate)
        << where << " #" << i;
    EXPECT_EQ(a.progress[i].done, b.progress[i].done) << where << " #" << i;
  }
  ASSERT_EQ(a.samples.size(), b.samples.size()) << where;
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].configsBytes, b.samples[i].configsBytes)
        << where << " #" << i;
    EXPECT_EQ(a.samples[i].adjacencyBytes, b.samples[i].adjacencyBytes)
        << where << " #" << i;
    EXPECT_EQ(a.samples[i].dedupBytes, b.samples[i].dedupBytes)
        << where << " #" << i;
    EXPECT_EQ(a.samples[i].frontierBytes, b.samples[i].frontierBytes)
        << where << " #" << i;
    EXPECT_EQ(a.samples[i].codecBytes, b.samples[i].codecBytes)
        << where << " #" << i;
    EXPECT_EQ(a.samples[i].totalBytes, b.samples[i].totalBytes)
        << where << " #" << i;
    EXPECT_EQ(a.samples[i].highWaterBytes, b.samples[i].highWaterBytes)
        << where << " #" << i;
    EXPECT_EQ(a.samples[i].done, b.samples[i].done) << where << " #" << i;
  }
  ASSERT_EQ(a.truncations.size(), b.truncations.size()) << where;
  for (std::size_t i = 0; i < a.truncations.size(); ++i) {
    EXPECT_EQ(a.truncations[i].nodes, b.truncations[i].nodes) << where;
    EXPECT_EQ(a.truncations[i].maxNodes, b.truncations[i].maxNodes) << where;
    EXPECT_EQ(a.truncations[i].maxBytes, b.truncations[i].maxBytes) << where;
    EXPECT_EQ(a.truncations[i].bytesAtCut, b.truncations[i].bytesAtCut)
        << where;
    EXPECT_EQ(a.truncations[i].byBudget, b.truncations[i].byBudget) << where;
    EXPECT_EQ(a.truncations[i].frontier, b.truncations[i].frontier) << where;
  }
}

void expectGraphsEqual(const ConfigGraph& a, const ConfigGraph& b,
                       const char* where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  EXPECT_EQ(a.truncated, b.truncated) << where;
  EXPECT_EQ(a.truncatedByBudget, b.truncatedByBudget) << where;
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.config(i), b.config(i)) << where << " node " << i;
    const std::vector<Edge> ae = a.edges(i);
    const std::vector<Edge> be = b.edges(i);
    ASSERT_EQ(ae.size(), be.size()) << where << " node " << i;
    for (std::size_t k = 0; k < ae.size(); ++k) {
      EXPECT_EQ(ae[k].to, be[k].to) << where << " node " << i << " edge " << k;
      EXPECT_EQ(ae[k].changed, be[k].changed)
          << where << " node " << i << " edge " << k;
    }
  }
}

ExploreOptions budgetOptions(std::uint32_t threads, std::uint64_t maxBytes,
                             ExploreObserver* observer) {
  ExploreOptions options;
  options.threads = threads;
  options.maxBytes = maxBytes;
  options.observer = observer;
  options.exploreId = 1;
  return options;
}

TEST(MemoryBudget, HighBudgetIsBitIdenticalToNoBudget) {
  const auto proto = makeProtocol("counting", 3);
  const auto initials = allCanonicalConfigurations(*proto, 4);
  StreamCapture unbudgeted;
  const ConfigGraph reference = exploreCanonical(
      *proto, initials, budgetOptions(1, 0, &unbudgeted));
  ASSERT_FALSE(reference.truncated);
  for (const std::uint32_t threads : {1u, 4u}) {
    StreamCapture capture;
    const ConfigGraph g = exploreCanonical(
        *proto, initials, budgetOptions(threads, std::uint64_t{1} << 40,
                                        &capture));
    expectGraphsEqual(reference, g, "high-budget");
    expectStreamsIdentical(unbudgeted, capture, "high-budget");
  }
}

TEST(MemoryBudget, BudgetTruncationBitIdenticalAcrossThreads) {
  const auto proto = makeProtocol("counting", 3);
  const auto initials = allCanonicalConfigurations(*proto, 4);
  StreamCapture probe;
  const ConfigGraph full = exploreCanonical(
      *proto, initials, budgetOptions(1, 0, &probe));
  ASSERT_FALSE(probe.samples.empty());
  const std::uint64_t fullBytes = probe.samples.back().totalBytes;
  // Sweep budgets from "fires immediately" to "never fires": every cut
  // position the serial loop can produce must be reproduced bit-identically
  // by the parallel engine.
  for (const std::uint64_t budget :
       {fullBytes / 8, fullBytes / 4, fullBytes / 2, (fullBytes * 3) / 4}) {
    StreamCapture serialCapture;
    const ConfigGraph serial = exploreCanonical(
        *proto, initials, budgetOptions(1, budget, &serialCapture));
    ASSERT_TRUE(serial.truncated) << "budget " << budget;
    EXPECT_TRUE(serial.truncatedByBudget) << "budget " << budget;
    ASSERT_EQ(serialCapture.truncations.size(), 1u);
    EXPECT_TRUE(serialCapture.truncations[0].byBudget);
    EXPECT_GT(serialCapture.truncations[0].bytesAtCut, budget);
    for (const std::uint32_t threads : {2u, 4u}) {
      StreamCapture parCapture;
      const ConfigGraph par = exploreCanonical(
          *proto, initials, budgetOptions(threads, budget, &parCapture));
      expectGraphsEqual(serial, par, "budget-truncated");
      expectStreamsIdentical(serialCapture, parCapture, "budget-truncated");
    }
  }
}

TEST(MemoryBudget, ConcreteBudgetTruncationMatchesAcrossThreads) {
  const auto proto = makeProtocol("asymmetric", 3);
  const auto initials = allUniformInitials(*proto, 3);
  StreamCapture probe;
  const ConfigGraph full = exploreConcrete(
      *proto, initials, budgetOptions(1, 0, &probe));
  ASSERT_FALSE(probe.samples.empty());
  const std::uint64_t budget = probe.samples.back().totalBytes / 2;
  StreamCapture serialCapture;
  const ConfigGraph serial = exploreConcrete(
      *proto, initials, budgetOptions(1, budget, &serialCapture));
  ASSERT_TRUE(serial.truncatedByBudget);
  StreamCapture parCapture;
  const ConfigGraph par = exploreConcrete(
      *proto, initials, budgetOptions(4, budget, &parCapture));
  expectGraphsEqual(serial, par, "concrete-budget");
  expectStreamsIdentical(serialCapture, parCapture, "concrete-budget");
}

TEST(MemoryBudget, NodeCapStillWinsWhenOnlyItFires) {
  const auto proto = makeProtocol("counting", 3);
  const auto initials = allCanonicalConfigurations(*proto, 4);
  const ConfigGraph full = exploreCanonical(*proto, initials, ExploreOptions{});
  ExploreOptions options;
  options.maxNodes = initials.size() + 2;
  options.maxBytes = std::uint64_t{1} << 40;  // never fires
  const ConfigGraph g = exploreCanonical(*proto, initials, options);
  ASSERT_TRUE(g.truncated);
  EXPECT_FALSE(g.truncatedByBudget);
  ASSERT_LT(g.size(), full.size());
}

TEST(MemoryBudget, WeakCheckerReportsByteBudgetInUnknownReason) {
  const auto proto = makeProtocol("counting", 3);
  const auto initials = allCanonicalConfigurations(*proto, 4);
  ExploreOptions options;
  options.maxBytes = 4096;  // tiny: fires almost immediately
  const WeakVerdict v =
      checkWeakFairness(*proto, namingProblem(*proto), initials, options);
  EXPECT_FALSE(v.explored);
  EXPECT_NE(v.reason.find("memory budget"), std::string::npos) << v.reason;
  EXPECT_NE(v.reason.find("4096"), std::string::npos) << v.reason;
}

TEST(MemoryBudget, HighWaterIsMonotoneAcrossSamples) {
  const auto proto = makeProtocol("counting", 3);
  const auto initials = allCanonicalConfigurations(*proto, 4);
  for (const std::uint32_t threads : {1u, 4u}) {
    StreamCapture capture;
    exploreCanonical(*proto, initials, budgetOptions(threads, 0, &capture));
    ASSERT_FALSE(capture.samples.empty());
    std::uint64_t prev = 0;
    for (const MemorySampleEvent& s : capture.samples) {
      EXPECT_GE(s.highWaterBytes, prev) << "threads=" << threads;
      EXPECT_GE(s.highWaterBytes, s.totalBytes) << "threads=" << threads;
      EXPECT_EQ(s.totalBytes, s.configsBytes + s.adjacencyBytes +
                                  s.dedupBytes + s.frontierBytes +
                                  s.codecBytes)
          << "threads=" << threads;
      prev = s.highWaterBytes;
    }
  }
}

}  // namespace
}  // namespace ppn
