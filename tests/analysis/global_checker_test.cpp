#include "analysis/global_checker.h"

#include <gtest/gtest.h>

#include "analysis/initial_sets.h"
#include "naming/asymmetric_naming.h"
#include "naming/counting_protocol.h"
#include "naming/global_leader_naming.h"
#include "naming/leader_uniform_naming.h"
#include "naming/symmetric_global_naming.h"

namespace ppn {
namespace {

TEST(GlobalChecker, AsymmetricNamingSelfStabilizes) {
  for (const StateId p : {2u, 3u, 4u}) {
    const AsymmetricNaming proto(p);
    const GlobalVerdict v = checkGlobalFairness(
        proto, namingProblem(proto), allCanonicalConfigurations(proto, p));
    ASSERT_TRUE(v.explored);
    EXPECT_TRUE(v.solves) << "P=" << p << ": " << v.reason;
  }
}

TEST(GlobalChecker, AsymmetricNamingBelowCapacity) {
  const AsymmetricNaming proto(4);
  for (std::uint32_t n = 1; n <= 4; ++n) {
    const GlobalVerdict v = checkGlobalFairness(
        proto, namingProblem(proto), allCanonicalConfigurations(proto, n));
    ASSERT_TRUE(v.explored);
    EXPECT_TRUE(v.solves) << "N=" << n;
  }
}

TEST(GlobalChecker, SymmetricGlobalNamingSolvesForNAbove2) {
  for (const StateId p : {3u, 4u}) {
    const SymmetricGlobalNaming proto(p);
    const GlobalVerdict v = checkGlobalFairness(
        proto, namingProblem(proto), allCanonicalConfigurations(proto, p));
    ASSERT_TRUE(v.explored);
    EXPECT_TRUE(v.solves) << "P=" << p << ": " << v.reason;
  }
}

TEST(GlobalChecker, SymmetricGlobalNamingFailsAtNEquals2) {
  // The paper's N > 2 proviso is tight: with two agents the blank pair and
  // the (1,1) pair chase each other forever.
  const SymmetricGlobalNaming proto(4);
  const GlobalVerdict v = checkGlobalFairness(
      proto, namingProblem(proto), allCanonicalConfigurations(proto, 2));
  ASSERT_TRUE(v.explored);
  EXPECT_FALSE(v.solves);
  ASSERT_TRUE(v.witness.has_value());
}

TEST(GlobalChecker, LeaderUniformNamingFromDeclaredInit) {
  for (const StateId p : {2u, 3u, 5u}) {
    const LeaderUniformNaming proto(p);
    for (std::uint32_t n = 1; n <= p; ++n) {
      const GlobalVerdict v = checkGlobalFairness(
          proto, namingProblem(proto), declaredUniformInitials(proto, n));
      ASSERT_TRUE(v.explored);
      EXPECT_TRUE(v.solves) << "P=" << p << " N=" << n << ": " << v.reason;
    }
  }
}

TEST(GlobalChecker, LeaderUniformNamingIsNotSelfStabilizing) {
  // From arbitrary (non-uniform) starts the protocol must fail — e.g. all
  // agents already renamed to the same name with the counter exhausted.
  const LeaderUniformNaming proto(3);
  const GlobalVerdict v = checkGlobalFairness(
      proto, namingProblem(proto), allCanonicalConfigurations(proto, 3));
  ASSERT_TRUE(v.explored);
  EXPECT_FALSE(v.solves);
}

TEST(GlobalChecker, CountingProtocolCountsForAllN) {
  const StateId p = 3;
  const CountingProtocol proto(p);
  for (std::uint32_t n = 1; n <= p; ++n) {
    const GlobalVerdict v = checkGlobalFairness(
        proto, countingProblem(proto, n), allCanonicalConfigurations(proto, n));
    ASSERT_TRUE(v.explored);
    EXPECT_TRUE(v.solves) << "N=" << n << ": " << v.reason;
  }
}

TEST(GlobalChecker, CountingProtocolCannotNameFullPopulation) {
  // Prop 4 territory: P states cannot name N = P agents even under global
  // fairness (with this leader protocol).
  const StateId p = 3;
  const CountingProtocol proto(p);
  const GlobalVerdict v = checkGlobalFairness(
      proto, namingProblem(proto), allCanonicalConfigurations(proto, p));
  ASSERT_TRUE(v.explored);
  EXPECT_FALSE(v.solves);
}

TEST(GlobalChecker, GlobalLeaderNamingSolvesFullPopulation) {
  for (const StateId p : {2u, 3u, 4u}) {
    const GlobalLeaderNaming proto(p);
    const GlobalVerdict v = checkGlobalFairness(
        proto, namingProblem(proto), allCanonicalConfigurations(proto, p));
    ASSERT_TRUE(v.explored);
    EXPECT_TRUE(v.solves) << "P=" << p << ": " << v.reason;
  }
}

TEST(GlobalChecker, TruncatedGraphYieldsNoVerdict) {
  const SymmetricGlobalNaming proto(4);
  const GlobalVerdict v =
      checkGlobalFairness(proto, namingProblem(proto),
                          allCanonicalConfigurations(proto, 4), /*maxNodes=*/2);
  EXPECT_FALSE(v.explored);
  EXPECT_FALSE(v.solves);
}

TEST(GlobalChecker, ReportsBottomSccCount) {
  const AsymmetricNaming proto(3);
  const GlobalVerdict v = checkGlobalFairness(
      proto, namingProblem(proto), allCanonicalConfigurations(proto, 3));
  ASSERT_TRUE(v.explored);
  // Exactly one terminal multiset {0,1,2} for N = P = 3.
  EXPECT_EQ(v.numBottomSccs, 1u);
}

}  // namespace
}  // namespace ppn
