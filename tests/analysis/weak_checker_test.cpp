#include "analysis/weak_checker.h"

#include <gtest/gtest.h>

#include "analysis/initial_sets.h"
#include "naming/asymmetric_naming.h"
#include "naming/color_example.h"
#include "naming/counting_protocol.h"
#include "naming/global_leader_naming.h"
#include "naming/leader_uniform_naming.h"
#include "naming/selfstab_weak_naming.h"
#include "naming/symmetric_global_naming.h"

namespace ppn {
namespace {

TEST(WeakChecker, AsymmetricNamingSolvesUnderWeakFairness) {
  // Prop 12: correct even against weakly fair adversaries, self-stabilizing.
  for (const StateId p : {2u, 3u}) {
    const AsymmetricNaming proto(p);
    const WeakVerdict v = checkWeakFairness(
        proto, namingProblem(proto), allConcreteConfigurations(proto, p));
    ASSERT_TRUE(v.explored);
    EXPECT_TRUE(v.solves) << "P=" << p << ": " << v.reason;
  }
}

TEST(WeakChecker, ColorExampleViolated) {
  const ColorExample proto;
  const Problem problem = predicateProblem("all-black", allBlack);
  const WeakVerdict v = checkWeakFairness(
      proto, problem, {Configuration{{1, 0, 0}, std::nullopt}});
  ASSERT_TRUE(v.explored);
  EXPECT_FALSE(v.solves);
  EXPECT_GT(v.violatingSccs, 0u);
  ASSERT_TRUE(v.witness.has_value());
  EXPECT_FALSE(allBlack(*v.witness));
  // The witness SCC is the 3-configuration token-spinning cycle.
  EXPECT_EQ(v.witnessSccSize, 3u);
}

TEST(WeakChecker, SymmetricGlobalNamingFailsUnderWeakFairness) {
  // Prop 1: without a leader, no symmetric protocol survives a weakly fair
  // adversary — including the Prop 13 protocol that is correct under global
  // fairness.
  const SymmetricGlobalNaming proto(3);
  const WeakVerdict v = checkWeakFairness(
      proto, namingProblem(proto), allConcreteConfigurations(proto, 3));
  ASSERT_TRUE(v.explored);
  EXPECT_FALSE(v.solves);
  EXPECT_GT(v.violatingSccs, 0u);
}

TEST(WeakChecker, SelfStabWeakNamingSolves) {
  // Prop 16: P+1 states with a (non-initialized) leader DO suffice under
  // weak fairness, from every initial configuration.
  for (const StateId p : {2u, 3u}) {
    const SelfStabWeakNaming proto(p);
    const WeakVerdict v =
        checkWeakFairness(proto, namingProblem(proto),
                          allConcreteConfigurations(proto, p), 8'000'000);
    ASSERT_TRUE(v.explored);
    EXPECT_TRUE(v.solves) << "P=" << p << ": " << v.reason;
  }
}

TEST(WeakChecker, GlobalLeaderNamingFailsAtFullPopulation) {
  // Theorem 11 instance: a P-state symmetric protocol with an initialized
  // leader cannot name N = P agents under weak fairness; the checker finds a
  // concrete violating schedule for Protocol 3.
  const StateId p = 3;
  const GlobalLeaderNaming proto(p);
  const WeakVerdict v = checkWeakFairness(
      proto, namingProblem(proto), allConcreteConfigurations(proto, p));
  ASSERT_TRUE(v.explored);
  EXPECT_FALSE(v.solves);
  EXPECT_GT(v.violatingSccs, 0u);
}

TEST(WeakChecker, GlobalLeaderNamingStillFineBelowCapacity) {
  // For N < P Protocol 3 degenerates to Protocol 1, which is weak-fair
  // correct (Theorem 15 names N < P agents).
  const GlobalLeaderNaming proto(3);
  const WeakVerdict v = checkWeakFairness(
      proto, namingProblem(proto), allConcreteConfigurations(proto, 2));
  ASSERT_TRUE(v.explored);
  EXPECT_TRUE(v.solves) << v.reason;
}

TEST(WeakChecker, CountingProtocolCountsUnderWeakFairness) {
  const StateId p = 3;
  const CountingProtocol proto(p);
  for (std::uint32_t n = 1; n <= p; ++n) {
    const WeakVerdict v = checkWeakFairness(
        proto, countingProblem(proto, n), allConcreteConfigurations(proto, n));
    ASSERT_TRUE(v.explored);
    EXPECT_TRUE(v.solves) << "N=" << n << ": " << v.reason;
  }
}

TEST(WeakChecker, LeaderUniformNamingSolvesFromDeclaredInit) {
  const LeaderUniformNaming proto(3);
  for (std::uint32_t n = 1; n <= 3; ++n) {
    const WeakVerdict v = checkWeakFairness(proto, namingProblem(proto),
                                            declaredUniformInitials(proto, n));
    ASSERT_TRUE(v.explored);
    EXPECT_TRUE(v.solves) << "N=" << n << ": " << v.reason;
  }
}

TEST(WeakChecker, TruncationYieldsNoVerdict) {
  const SymmetricGlobalNaming proto(3);
  const WeakVerdict v =
      checkWeakFairness(proto, namingProblem(proto),
                        allConcreteConfigurations(proto, 3), /*maxNodes=*/4);
  EXPECT_FALSE(v.explored);
}

TEST(WeakChecker, StarTopologyDefeatsLeaderlessNaming) {
  // On a star, weak fairness only promises that the star's EDGES recur;
  // two leaf homonyms can never meet, so the asymmetric protocol fails.
  const std::uint32_t n = 4;
  const AsymmetricNaming proto(n);
  const InteractionGraph star = InteractionGraph::star(n, 0);
  const WeakVerdict v =
      checkWeakFairness(proto, namingProblem(proto),
                        allConcreteConfigurations(proto, n), 4'000'000, &star);
  ASSERT_TRUE(v.explored);
  EXPECT_FALSE(v.solves);
  EXPECT_GT(v.violatingSccs, 0u);
}

TEST(WeakChecker, CompleteTopologyMatchesDefault) {
  // Passing the explicit complete graph must agree with the implicit
  // complete-interaction model.
  const AsymmetricNaming proto(3);
  const auto initials = allConcreteConfigurations(proto, 3);
  const InteractionGraph complete = InteractionGraph::complete(3);
  const WeakVerdict withGraph = checkWeakFairness(
      proto, namingProblem(proto), initials, 4'000'000, &complete);
  const WeakVerdict withoutGraph =
      checkWeakFairness(proto, namingProblem(proto), initials);
  ASSERT_TRUE(withGraph.explored && withoutGraph.explored);
  EXPECT_EQ(withGraph.solves, withoutGraph.solves);
  EXPECT_EQ(withGraph.numConfigs, withoutGraph.numConfigs);
}

TEST(WeakChecker, TopologyParticipantMismatchThrows) {
  const AsymmetricNaming proto(3);
  const InteractionGraph wrong = InteractionGraph::complete(5);
  EXPECT_THROW(checkWeakFairness(proto, namingProblem(proto),
                                 allConcreteConfigurations(proto, 3),
                                 4'000'000, &wrong),
               std::invalid_argument);
}

TEST(WeakChecker, TerminalOnlyGraphSolves) {
  // Already-named population: the single config's null self-loops cover all
  // pairs and nothing violates.
  const AsymmetricNaming proto(3);
  const WeakVerdict v = checkWeakFairness(
      proto, namingProblem(proto), {Configuration{{0, 1, 2}, std::nullopt}});
  ASSERT_TRUE(v.explored);
  EXPECT_TRUE(v.solves);
  EXPECT_EQ(v.numConfigs, 1u);
}

}  // namespace
}  // namespace ppn
