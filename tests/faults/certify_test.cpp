#include "faults/certify.h"

#include <gtest/gtest.h>

#include <string>

namespace ppn {
namespace {

CertifySpec fastSpec() {
  CertifySpec spec;
  spec.populations = {4};
  spec.regimes = {FaultRegime::kPoissonTransient};
  spec.schedulers = {SchedulerKind::kRandom};
  spec.runs = 4;
  spec.faultWindow = 2000;
  spec.limits = RunLimits{10'000'000, 64, 0};
  spec.threads = 2;
  return spec;
}

TEST(CertifyRecovery, SelfStabilizingCellCertifiesAtFullRecovery) {
  CertifySpec spec = fastSpec();
  spec.protocols = {"asymmetric"};
  const RobustnessTable table = certifyRecovery(spec);
  ASSERT_EQ(table.cells.size(), 1u);
  const RobustnessCell& cell = table.cells.front();
  EXPECT_TRUE(cell.selfStabilizing);
  EXPECT_EQ(cell.verdict, CellVerdict::kCertified);
  EXPECT_EQ(cell.result.recoveredNamed, spec.runs);
  EXPECT_TRUE(table.certified());
  EXPECT_EQ(table.countVerdict(CellVerdict::kCertified), 1u);
}

TEST(CertifyRecovery, GlobalFairnessProtocolsSkipWeaklyFairSchedulers) {
  // Prop 13 needs global fairness; a deterministic round-robin scheduler is
  // only weakly fair, so the cell is an assumption gap, not a measurement.
  CertifySpec spec = fastSpec();
  spec.protocols = {"symmetric-global"};
  spec.schedulers = {SchedulerKind::kRoundRobin};
  const RobustnessTable table = certifyRecovery(spec);
  ASSERT_EQ(table.cells.size(), 1u);
  EXPECT_EQ(table.cells.front().verdict, CellVerdict::kSkipped);
  EXPECT_NE(table.cells.front().note.find("global fairness"),
            std::string::npos);
  // Skipped cells never block certification.
  EXPECT_TRUE(table.certified());
}

TEST(CertifyRecovery, CountingRunsAtPopulationPlusOne) {
  // Protocol 1 only claims naming for N < P: the sweep must instantiate it
  // at P = N+1 and record outcomes as evidence (it is not self-stabilizing).
  CertifySpec spec = fastSpec();
  spec.protocols = {"counting"};
  spec.regimes = {FaultRegime::kStuckAgent};
  const RobustnessTable table = certifyRecovery(spec);
  ASSERT_EQ(table.cells.size(), 1u);
  const RobustnessCell& cell = table.cells.front();
  EXPECT_EQ(cell.population, 4u);
  EXPECT_EQ(cell.p, 5u);
  EXPECT_FALSE(cell.selfStabilizing);
  EXPECT_TRUE(cell.verdict == CellVerdict::kEvidence ||
              cell.verdict == CellVerdict::kDegraded);
  EXPECT_NE(cell.note.find("P=N+1"), std::string::npos);
}

TEST(CertifyRecovery, GlobalLeaderPopulationCapDeduplicatesCells) {
  // Requesting N = 4 and N = 6 both cap to the feasible N = 4 instance; the
  // table must contain that instance once, not twice.
  CertifySpec spec = fastSpec();
  spec.protocols = {"global-leader"};
  spec.populations = {6, 4};
  const RobustnessTable table = certifyRecovery(spec);
  ASSERT_EQ(table.cells.size(), 1u);
  EXPECT_EQ(table.cells.front().population, 4u);
  EXPECT_NE(table.cells.front().note.find("capped"), std::string::npos);
}

TEST(RobustnessTable, JsonAndRenderCarryEveryCell) {
  CertifySpec spec = fastSpec();
  spec.protocols = {"asymmetric", "symmetric-global"};
  spec.schedulers = {SchedulerKind::kRoundRobin};  // one run, one skip
  const RobustnessTable table = certifyRecovery(spec);
  ASSERT_EQ(table.cells.size(), 2u);

  const std::string json = table.toJson();
  EXPECT_NE(json.find("\"kind\":\"ppn-robustness-table\""), std::string::npos);
  EXPECT_NE(json.find("\"protocol\":\"asymmetric\""), std::string::npos);
  EXPECT_NE(json.find("\"protocol\":\"symmetric-global\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"skipped\""), std::string::npos);
  EXPECT_NE(json.find("\"certified\":"), std::string::npos);
  // Executed cells carry their campaign statistics; skipped ones do not.
  EXPECT_NE(json.find("\"recoveredNamed\""), std::string::npos);

  const std::string rendered = table.render().render();
  EXPECT_NE(rendered.find("asymmetric"), std::string::npos);
  EXPECT_NE(rendered.find("symmetric-global"), std::string::npos);
}

}  // namespace
}  // namespace ppn
