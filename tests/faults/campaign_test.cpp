#include "faults/campaign.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "naming/asymmetric_naming.h"
#include "naming/registry.h"
#include "sched/random_scheduler.h"

namespace ppn {
namespace {

CampaignSpec baseSpec(std::uint32_t numMobile) {
  CampaignSpec spec;
  spec.numMobile = numMobile;
  spec.faultWindow = 2000;
  spec.runs = 8;
  spec.seed = 404;
  spec.limits = RunLimits{5'000'000, 64, 0};
  return spec;
}

TEST(RunCampaignOnce, ExactWindowAndFreeRecoveryOnSilentStart) {
  // No fault process, silent start: the fault phase still executes exactly
  // the window's interactions, and recovery is immediate and free.
  const AsymmetricNaming proto(5);
  Engine engine(proto, Configuration{{0, 1, 2, 3, 4}, std::nullopt});
  RandomScheduler sched(5, 77);
  const CampaignRunOutcome out =
      runCampaignOnce(engine, sched, nullptr, 100, RunLimits{10'000, 8, 0});
  EXPECT_GE(engine.totalInteractions(), 100u);
  EXPECT_EQ(out.faultsInjected, 0u);
  EXPECT_TRUE(out.recovered);
  EXPECT_TRUE(out.recoveredNamed);
  EXPECT_EQ(out.recoveryInteractions, 0u);
}

TEST(RunCampaign, SelfStabilizingProtocolSurvivesTransientCampaign) {
  const AsymmetricNaming proto(5);
  CampaignSpec spec = baseSpec(5);
  spec.regime = FaultRegime::kPoissonTransient;
  spec.params.rate = 0.01;
  spec.params.corruptAgents = 2;
  const CampaignResult result = runCampaign(proto, spec);
  EXPECT_EQ(result.runs, spec.runs);
  EXPECT_EQ(result.recovered, spec.runs);
  EXPECT_EQ(result.recoveredNamed, spec.runs);
  EXPECT_FALSE(result.degraded);
  EXPECT_GT(result.faultsInjected.mean, 0.0)
      << "a 0.01-rate campaign over 2000 interactions must inject faults";
  EXPECT_EQ(result.outcomes.size(), spec.runs);
}

TEST(RunCampaign, StuckAgentCrashIsRecoveredFrom) {
  const AsymmetricNaming proto(5);
  CampaignSpec spec = baseSpec(5);
  spec.regime = FaultRegime::kStuckAgent;
  const CampaignResult result = runCampaign(proto, spec);
  EXPECT_EQ(result.recoveredNamed, spec.runs);
  for (const CampaignRunOutcome& out : result.outcomes) {
    EXPECT_EQ(out.faultsInjected, 1u) << "the crash itself is the one fault";
  }
}

TEST(RunCampaign, BitwiseIdenticalAcrossThreadCounts) {
  // Acceptance criterion: per-run inputs are pre-split sequentially, so the
  // full per-run outcome vector is bit-identical for threads = 1 and 8.
  const AsymmetricNaming proto(6);
  for (const FaultRegime regime :
       {FaultRegime::kPoissonTransient, FaultRegime::kTargetedAdversary,
        FaultRegime::kStuckAgent}) {
    CampaignSpec spec = baseSpec(6);
    spec.regime = regime;
    spec.params.corruptAgents = 3;
    spec.runs = 12;
    spec.threads = 1;
    const CampaignResult serial = runCampaign(proto, spec);
    spec.threads = 8;
    const CampaignResult parallel = runCampaign(proto, spec);
    ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
    for (std::size_t r = 0; r < serial.outcomes.size(); ++r) {
      EXPECT_EQ(serial.outcomes[r], parallel.outcomes[r])
          << faultRegimeName(regime) << " run " << r
          << " differs between thread counts";
    }
    EXPECT_EQ(serial.recoveredNamed, parallel.recoveredNamed);
    EXPECT_EQ(serial.timedOut, parallel.timedOut);
  }
}

TEST(RunCampaign, WatchdogDegradesHungCampaign) {
  // A multi-second fault window with a ~40 ms wall budget: only the watchdog
  // can end the fault phase, and the campaign must report partial (degraded)
  // results rather than hang.
  const auto proto = makeProtocol("asymmetric", 5);
  CampaignSpec spec = baseSpec(5);
  spec.regime = FaultRegime::kChurn;
  spec.params.rate = 0.01;
  spec.faultWindow = 2'000'000'000ULL;
  spec.runs = 3;
  spec.threads = 3;
  spec.limits = RunLimits{1'000'000'000'000ULL, 64, 40};
  const CampaignResult result = runCampaign(*proto, spec);
  EXPECT_EQ(result.timedOut, spec.runs);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.recoveredNamed, 0u);
}

}  // namespace
}  // namespace ppn
