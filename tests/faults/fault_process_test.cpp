#include "faults/fault_process.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/engine.h"
#include "faults/stuck_agent_scheduler.h"
#include "naming/asymmetric_naming.h"
#include "naming/registry.h"
#include "sched/random_scheduler.h"

namespace ppn {
namespace {

TEST(PoissonTransientFaults, ScheduleIsDeterministicAndStable) {
  PoissonTransientFaults a(0.01, FaultPlan{1, false}, 42);
  PoissonTransientFaults b(0.01, FaultPlan{1, false}, 42);
  const AsymmetricNaming proto(4);
  Engine engine(proto, Configuration{{0, 1, 2, 3}, std::nullopt});
  std::uint64_t now = 0;
  for (int i = 0; i < 20; ++i) {
    const auto atA = a.nextFaultAt(now);
    const auto atB = b.nextFaultAt(now);
    ASSERT_TRUE(atA.has_value());
    EXPECT_EQ(*atA, *atB) << "same seed must give the same schedule";
    EXPECT_GT(*atA, now) << "a pending fault lies strictly in the future";
    // Pure lookahead: asking again without apply() does not advance.
    EXPECT_EQ(*a.nextFaultAt(now), *atA);
    a.apply(engine);
    b.apply(engine);
    now = *atA;
  }
}

TEST(PoissonTransientFaults, RateOneFiresEveryInteraction) {
  PoissonTransientFaults p(1.0, FaultPlan{1, false}, 7);
  const AsymmetricNaming proto(4);
  Engine engine(proto, Configuration{{0, 1, 2, 3}, std::nullopt});
  for (std::uint64_t now = 0; now < 10; ++now) {
    ASSERT_EQ(*p.nextFaultAt(now), now + 1);
    p.apply(engine);
  }
}

TEST(PoissonTransientFaults, RejectsInvalidRate) {
  EXPECT_THROW(PoissonTransientFaults(0.0, FaultPlan{}, 1),
               std::invalid_argument);
  EXPECT_THROW(PoissonTransientFaults(1.5, FaultPlan{}, 1),
               std::invalid_argument);
  EXPECT_THROW(ChurnFaults(-0.1, 1), std::invalid_argument);
}

TEST(PeriodicTransientFaults, FiresAtExactMultiplesOfPeriod) {
  PeriodicTransientFaults p(100, FaultPlan{1, false}, 3);
  const AsymmetricNaming proto(4);
  Engine engine(proto, Configuration{{0, 1, 2, 3}, std::nullopt});
  EXPECT_EQ(*p.nextFaultAt(0), 100u);
  EXPECT_EQ(*p.nextFaultAt(100), 100u);  // fires exactly at the boundary
  p.apply(engine);
  EXPECT_EQ(*p.nextFaultAt(100), 200u);
  // Lookahead past missed multiples lands on the next one, never behind now.
  EXPECT_EQ(*p.nextFaultAt(350), 400u);
  EXPECT_THROW(PeriodicTransientFaults(0, FaultPlan{}, 1),
               std::invalid_argument);
}

TEST(ChurnFaults, ResetsExactlyOneAgentToUniformInitWhenDeclared) {
  // leader-uniform (Prop 14) declares a uniform mobile init: a churned agent
  // must re-enter in that state, like a freshly arriving initialized agent.
  const auto proto = makeProtocol("leader-uniform", 4);
  ASSERT_TRUE(proto->uniformMobileInit().has_value());
  const StateId init = *proto->uniformMobileInit();
  // Start every agent in some non-init state so the reset is observable.
  const StateId other = init == 0 ? StateId{1} : StateId{0};
  Configuration start{{other, other, other, other},
                      proto->initialLeaderState()};
  Engine engine(*proto, start);
  ChurnFaults churn(0.5, 99);
  churn.apply(engine);
  std::uint32_t changed = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (engine.config().mobile[i] != other) {
      ++changed;
      EXPECT_EQ(engine.config().mobile[i], init);
    }
  }
  EXPECT_EQ(changed, 1u);
}

TEST(ChurnFaults, ArrivingAgentGetsRandomLegalStateWithoutDeclaredInit) {
  const AsymmetricNaming proto(5);
  ASSERT_FALSE(proto.uniformMobileInit().has_value());
  Engine engine(proto, Configuration{{0, 1, 2, 3, 4}, std::nullopt});
  ChurnFaults churn(0.5, 5);
  for (int i = 0; i < 10; ++i) {
    churn.apply(engine);
    for (const StateId s : engine.config().mobile) {
      EXPECT_LT(s, proto.numMobileStates());
    }
  }
}

TEST(TargetedAdversaryFaults, PilesVictimsIntoTheHomonymSink) {
  // Protocol 2 (selfstab-weak) has the homonym sink state 0 (Prop 6): the
  // adversary must precompute it and drive every victim there.
  const auto proto = makeProtocol("selfstab-weak", 5);
  TargetedAdversaryFaults adv(*proto, 10, 3, 17);
  ASSERT_TRUE(adv.sinkTarget().has_value());
  const StateId sink = *adv.sinkTarget();
  Configuration start{{1, 2, 3, 4, 5}, std::nullopt};
  // SelfStabWeakNaming has no leader agent in this build only if hasLeader()
  // is false; follow the protocol's declaration either way.
  if (proto->hasLeader()) {
    start.leader = proto->initialLeaderState().has_value()
                       ? proto->initialLeaderState()
                       : std::optional<LeaderStateId>(
                             proto->allLeaderStates().front());
  }
  Engine engine(*proto, start);
  adv.apply(engine);
  std::uint32_t inSink = 0;
  for (const StateId s : engine.config().mobile) inSink += (s == sink) ? 1 : 0;
  EXPECT_EQ(inSink, 3u);
}

TEST(TargetedAdversaryFaults, DuplicatesLiveNamesWhenNoSinkExists) {
  // The asymmetric protocol has no diagonal fixed point: the worst corruption
  // is copying a survivor's state, so every post-fault state was already
  // present and at least one name is now duplicated.
  const AsymmetricNaming proto(5);
  TargetedAdversaryFaults adv(proto, 10, 2, 23);
  EXPECT_FALSE(adv.sinkTarget().has_value());
  Engine engine(proto, Configuration{{0, 1, 2, 3, 4}, std::nullopt});
  adv.apply(engine);
  std::vector<std::uint32_t> histogram(proto.numMobileStates(), 0);
  for (const StateId s : engine.config().mobile) {
    ++histogram[s];
  }
  EXPECT_GT(*std::max_element(histogram.begin(), histogram.end()), 1u)
      << "victims must duplicate a live name";
}

TEST(StuckAgentScheduler, SuppressesStuckAgentDuringWindowOnly) {
  RandomScheduler inner(5, 1234);
  StuckAgentScheduler sched(inner, 5, 2, 0, 200);
  for (int i = 0; i < 200; ++i) {
    const Interaction it = sched.next();
    EXPECT_NE(it.initiator, 2u);
    EXPECT_NE(it.responder, 2u);
  }
  EXPECT_GT(sched.dropped(), 0u);
  // After the window closes the agent reappears in the interaction pattern.
  bool seen = false;
  for (int i = 0; i < 500 && !seen; ++i) {
    const Interaction it = sched.next();
    seen = it.initiator == 2u || it.responder == 2u;
  }
  EXPECT_TRUE(seen);
}

TEST(StuckAgentScheduler, RejectsDegenerateConstructions) {
  RandomScheduler inner(2, 1);
  EXPECT_THROW(StuckAgentScheduler(inner, 2, 0, 0, 10), std::invalid_argument);
  RandomScheduler inner3(3, 1);
  EXPECT_THROW(StuckAgentScheduler(inner3, 3, 3, 0, 10),
               std::invalid_argument);
}

TEST(FaultRegime, NameParseRoundTrip) {
  const FaultRegime all[] = {
      FaultRegime::kPoissonTransient, FaultRegime::kPeriodicTransient,
      FaultRegime::kChurn, FaultRegime::kTargetedAdversary,
      FaultRegime::kStuckAgent};
  for (const FaultRegime r : all) {
    EXPECT_EQ(parseFaultRegime(faultRegimeName(r)), r);
  }
  EXPECT_THROW(parseFaultRegime("meteor-strike"), std::invalid_argument);
}

TEST(MakeFaultProcess, BuildsEveryProcessRegimeAndNullForStuckAgent) {
  const AsymmetricNaming proto(4);
  const FaultRegimeParams params;
  EXPECT_EQ(makeFaultProcess(FaultRegime::kStuckAgent, proto, params, 1),
            nullptr);
  const struct {
    FaultRegime regime;
    const char* name;
  } cases[] = {{FaultRegime::kPoissonTransient, "poisson-transient"},
               {FaultRegime::kPeriodicTransient, "periodic-transient"},
               {FaultRegime::kChurn, "churn"},
               {FaultRegime::kTargetedAdversary, "targeted-adversary"}};
  for (const auto& c : cases) {
    const auto process = makeFaultProcess(c.regime, proto, params, 1);
    ASSERT_NE(process, nullptr);
    EXPECT_EQ(process->name(), c.name);
  }
}

}  // namespace
}  // namespace ppn
