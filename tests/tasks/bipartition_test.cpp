// Uniform bipartition ([55]-adjacent): a positive leader-based construction,
// and exhaustive re-derivation of the tiny-state impossibilities with the
// generic problem search.
#include "tasks/bipartition.h"

#include <gtest/gtest.h>

#include "analysis/initial_sets.h"
#include "analysis/protocol_search.h"
#include "analysis/weak_checker.h"
#include "core/engine.h"
#include "sched/deterministic_schedulers.h"
#include "sim/runner.h"

namespace ppn {
namespace {

TEST(Bipartition, PredicateSemantics) {
  using B = LeaderBipartition;
  EXPECT_TRUE(isBalancedBipartition(
      Configuration{{B::kSideA, B::kSideB}, std::nullopt}));
  EXPECT_TRUE(isBalancedBipartition(
      Configuration{{B::kSideA, B::kSideB, B::kSideA}, std::nullopt}));
  EXPECT_FALSE(isBalancedBipartition(
      Configuration{{B::kSideA, B::kSideA}, std::nullopt}));
  EXPECT_FALSE(isBalancedBipartition(
      Configuration{{B::kSideA, B::kUnassigned}, std::nullopt}));
}

TEST(Bipartition, ProtocolIsWellFormed) {
  const LeaderBipartition proto;
  EXPECT_FALSE(verifySymmetric(proto).has_value());
  EXPECT_FALSE(verifyClosed(proto).has_value());
}

TEST(Bipartition, LeaderAlternatesSides) {
  const LeaderBipartition proto;
  const LeaderResult first = proto.leaderDelta(0, LeaderBipartition::kUnassigned);
  EXPECT_EQ(first.mobile, LeaderBipartition::kSideA);
  EXPECT_EQ(first.leader, 1u);
  const LeaderResult second =
      proto.leaderDelta(first.leader, LeaderBipartition::kUnassigned);
  EXPECT_EQ(second.mobile, LeaderBipartition::kSideB);
  EXPECT_EQ(second.leader, 0u);
  // Assigned agents are never touched.
  EXPECT_EQ(proto.leaderDelta(0, LeaderBipartition::kSideB),
            (LeaderResult{0, LeaderBipartition::kSideB}));
}

TEST(Bipartition, ConvergesUnderWeakFairnessForAllN) {
  const LeaderBipartition proto;
  for (std::uint32_t n = 1; n <= 9; ++n) {
    Engine engine(proto, uniformConfiguration(proto, n));
    RoundRobinScheduler sched(n + 1);
    const RunOutcome out = runUntilSilent(engine, sched, RunLimits{100000, 8});
    ASSERT_TRUE(out.silent) << "N=" << n;
    EXPECT_TRUE(isBalancedBipartition(out.finalConfig)) << "N=" << n;
  }
}

TEST(Bipartition, ExactCheckFromDeclaredInit) {
  const LeaderBipartition proto;
  Problem problem = predicateProblem("balanced-bipartition",
                                     isBalancedBipartition);
  problem.requireMobileQuiescence = true;  // groups must stabilize
  for (std::uint32_t n = 1; n <= 5; ++n) {
    const WeakVerdict v = checkWeakFairness(proto, problem,
                                            declaredUniformInitials(proto, n));
    ASSERT_TRUE(v.explored);
    EXPECT_TRUE(v.solves) << "N=" << n << ": " << v.reason;
  }
}

TEST(Bipartition, NotSelfStabilizing) {
  // From an arbitrary start all agents may already sit on one side; no rule
  // ever reassigns them — mirrors why [55]'s impossibility talks about
  // self-stabilization.
  const LeaderBipartition proto;
  const Problem problem = predicateProblem("balanced-bipartition",
                                           isBalancedBipartition);
  const WeakVerdict v = checkWeakFairness(
      proto, problem, allConcreteConfigurations(proto, 4));
  ASSERT_TRUE(v.explored);
  EXPECT_FALSE(v.solves);
}

// ---- Exhaustive tiny-state impossibility, in the spirit of [55]: no
// leaderless 2-state protocol (not even an asymmetric one) achieves
// self-stabilizing quiescent bipartition of 4 agents under weak fairness.
TEST(Bipartition, NoLeaderless2StateSelfStabilizingSolverExists) {
  Problem problem = predicateProblem(
      "balanced-bipartition", [](const Configuration& c) {
        std::int64_t diff = 0;
        for (const StateId s : c.mobile) diff += (s == 0) ? 1 : -1;
        return diff == 0;  // N = 4, states {0, 1}: exactly balanced
      });
  problem.requireMobileQuiescence = true;
  const auto problemFor = [&problem](const Protocol&) { return problem; };

  const SearchOutcome symmetric = searchProblem(
      2, 4, Fairness::kWeak, /*symmetricSpace=*/true, /*selfStab=*/true,
      problemFor);
  EXPECT_EQ(symmetric.examined, 16u);
  EXPECT_EQ(symmetric.solvers, 0u);

  const SearchOutcome all = searchProblem(
      2, 4, Fairness::kWeak, /*symmetricSpace=*/false, /*selfStab=*/true,
      problemFor);
  EXPECT_EQ(all.examined, 256u);
  EXPECT_EQ(all.solvers, 0u);
}

// A sharper exhaustive fact the search uncovers: even with a CHOSEN uniform
// initialization (not self-stabilizing), no 2-state protocol — symmetric or
// not — quiescently balances 4 agents. Reason: a quiescent balanced
// configuration requires every present pair rule to be null, but escaping
// the uniform start requires the diagonal rule of the start state to be
// non-null, and the two demands collide (any run then overshoots past
// balance before it can freeze).
TEST(Bipartition, EvenChosenUniformStartsCannotBeBalancedWith2States) {
  Problem problem = predicateProblem(
      "balanced", [](const Configuration& c) {
        std::int64_t diff = 0;
        for (const StateId s : c.mobile) diff += (s == 0) ? 1 : -1;
        return diff == 0;
      });
  problem.requireMobileQuiescence = true;
  const SearchOutcome out = searchProblem(
      2, 4, Fairness::kGlobal, /*symmetricSpace=*/false, /*selfStab=*/false,
      [&problem](const Protocol&) { return problem; });
  EXPECT_EQ(out.solvers, 0u);
}

// Positive control for the generic-search plumbing: a trivially solvable
// problem ("everyone ends in state 1") must report solvers — e.g. the
// all-null protocol starting uniformly in state 1.
TEST(Bipartition, GenericSearchPositiveControl) {
  const Problem problem = predicateProblem(
      "all-one", [](const Configuration& c) {
        for (const StateId s : c.mobile) {
          if (s != 1) return false;
        }
        return true;
      });
  const SearchOutcome out = searchProblem(
      2, 4, Fairness::kGlobal, /*symmetricSpace=*/true, /*selfStab=*/false,
      [&problem](const Protocol&) { return problem; });
  EXPECT_GT(out.solvers, 0u);
}

}  // namespace
}  // namespace ppn
