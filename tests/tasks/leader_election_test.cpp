// Leader election as a by-product of naming (paper introduction: naming is
// "frequently performed as a by-product or as an important design module" of
// leader election [19]).
#include "tasks/leader_election.h"

#include <gtest/gtest.h>

#include "analysis/global_checker.h"
#include "analysis/initial_sets.h"
#include "analysis/weak_checker.h"
#include "core/engine.h"
#include "naming/asymmetric_naming.h"
#include "sched/random_scheduler.h"
#include "sim/runner.h"

namespace ppn {
namespace {

TEST(LeaderElection, PredicateCountsLeaderName) {
  EXPECT_TRUE(uniqueLeaderElected(Configuration{{0, 1, 2}, std::nullopt}));
  EXPECT_FALSE(uniqueLeaderElected(Configuration{{0, 0, 2}, std::nullopt}));
  EXPECT_FALSE(uniqueLeaderElected(Configuration{{1, 2, 3}, std::nullopt}));
  EXPECT_TRUE(uniqueLeaderElected(Configuration{{1, 2, 3}, std::nullopt}, 2));
}

TEST(LeaderElection, SelfStabilizingViaNamingWhenNKnownExactly) {
  // With N = P (exact size knowledge), the Prop 12 naming protocol yields
  // self-stabilizing leader election with N states — matching the necessity
  // bound of [19] that the paper cites. Verified exactly: from EVERY
  // configuration, under both fairness notions, the name-0 holder becomes
  // unique and stays.
  for (const StateId p : {2u, 3u, 4u}) {
    const AsymmetricNaming proto(p);
    const Problem election = [] {
      Problem pr = predicateProblem("unique-leader", [](const Configuration& c) {
        return uniqueLeaderElected(c, 0);
      });
      pr.requireMobileQuiescence = true;  // leadership must also be stable
      return pr;
    }();

    const GlobalVerdict global = checkGlobalFairness(
        proto, election, allCanonicalConfigurations(proto, p));
    ASSERT_TRUE(global.explored);
    EXPECT_TRUE(global.solves) << "P=" << p << ": " << global.reason;

    const WeakVerdict weak = checkWeakFairness(
        proto, election, allConcreteConfigurations(proto, p));
    ASSERT_TRUE(weak.explored);
    EXPECT_TRUE(weak.solves) << "P=" << p << ": " << weak.reason;
  }
}

TEST(LeaderElection, FailsWithoutExactSizeKnowledge) {
  // With N < P the converged names are an arbitrary N-subset of {0..P-1}:
  // name 0 may simply be absent, so "I hold name 0" does not elect anyone.
  const AsymmetricNaming proto(4);
  const Problem election = predicateProblem(
      "unique-leader",
      [](const Configuration& c) { return uniqueLeaderElected(c, 0); });
  const GlobalVerdict v = checkGlobalFairness(
      proto, election, allCanonicalConfigurations(proto, 3));  // N=3 < P=4
  ASSERT_TRUE(v.explored);
  EXPECT_FALSE(v.solves)
      << "leader election must fail when the size is only upper-bounded";
}

TEST(LeaderElection, SimulationElectsExactlyOneLeader) {
  const StateId p = 8;
  const AsymmetricNaming proto(p);
  Rng rng(64);
  for (int trial = 0; trial < 10; ++trial) {
    Engine engine(proto, arbitraryConfiguration(proto, p, rng));
    RandomScheduler sched(p, rng.next());
    const RunOutcome out = runUntilSilent(engine, sched, RunLimits{500000, 32});
    ASSERT_TRUE(out.silent);
    EXPECT_TRUE(uniqueLeaderElected(out.finalConfig, 0));
    // Every name is held exactly once, so any name works as the crown.
    for (StateId crown = 0; crown < p; ++crown) {
      EXPECT_TRUE(uniqueLeaderElected(out.finalConfig, crown));
    }
  }
}

}  // namespace
}  // namespace ppn
