#include "tasks/majority.h"

#include <gtest/gtest.h>

#include "analysis/global_checker.h"
#include "analysis/weak_checker.h"
#include "core/engine.h"
#include "core/protocol.h"
#include "sched/random_scheduler.h"

namespace ppn {
namespace {

using M = MajorityProtocol;

TEST(Majority, RuleTable) {
  const M proto;
  // Strong opposites annihilate.
  EXPECT_EQ(proto.mobileDelta(M::kStrongA, M::kStrongB),
            (MobilePair{M::kWeakA, M::kWeakB}));
  EXPECT_EQ(proto.mobileDelta(M::kStrongB, M::kStrongA),
            (MobilePair{M::kWeakB, M::kWeakA}));
  // Strong converts opposite weak.
  EXPECT_EQ(proto.mobileDelta(M::kStrongA, M::kWeakB),
            (MobilePair{M::kStrongA, M::kWeakA}));
  EXPECT_EQ(proto.mobileDelta(M::kStrongB, M::kWeakA),
            (MobilePair{M::kStrongB, M::kWeakB}));
  // Same-opinion and weak-weak interactions are null.
  EXPECT_EQ(proto.mobileDelta(M::kStrongA, M::kWeakA),
            (MobilePair{M::kStrongA, M::kWeakA}));
  EXPECT_EQ(proto.mobileDelta(M::kWeakA, M::kWeakB),
            (MobilePair{M::kWeakA, M::kWeakB}));
}

TEST(Majority, IsSymmetricAndClosed) {
  const M proto;
  EXPECT_FALSE(verifySymmetric(proto).has_value());
  EXPECT_FALSE(verifyClosed(proto).has_value());
}

TEST(Majority, BalanceIsPreservedByEveryRule) {
  // The protocol's core invariant: #strongA - #strongB never changes.
  const M proto;
  for (StateId a = 0; a < 4; ++a) {
    for (StateId b = 0; b < 4; ++b) {
      Configuration before{{a, b}, std::nullopt};
      Configuration after = before;
      applyInteraction(proto, after, Interaction{0, 1});
      EXPECT_EQ(opinionBalance(before), opinionBalance(after))
          << "rule (" << a << "," << b << ")";
    }
  }
}

TEST(Majority, ConvergesToInitialMajorityUnderRandomScheduler) {
  const M proto;
  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint32_t n = 9;
    const std::uint32_t strongA = 5 + static_cast<std::uint32_t>(rng.below(4));
    Configuration start;
    for (std::uint32_t i = 0; i < n; ++i) {
      start.mobile.push_back(i < strongA ? M::kStrongA : M::kStrongB);
    }
    Engine engine(proto, start);
    RandomScheduler sched(n, rng.next());
    bool done = false;
    for (int step = 0; step < 1'000'000 && !done; ++step) {
      engine.step(sched.next());
      done = allOpinionA(engine.config());
    }
    EXPECT_TRUE(done) << "majority A with " << strongA << "/" << n;
  }
}

TEST(Majority, MinorityNeverWins) {
  // Safety: opinion B can never take over when A started strictly ahead —
  // checked exactly: no reachable configuration is all-B.
  const M proto;
  Configuration start{{M::kStrongA, M::kStrongA, M::kStrongB}, std::nullopt};
  const Problem neverAllB = predicateProblem(
      "not-all-B", [](const Configuration& c) { return !allOpinionB(c); });
  // "not-all-B holds in every bottom SCC" is implied by the stronger check
  // below: explore and assert the predicate on every reachable config.
  const GlobalVerdict v = checkGlobalFairness(proto, neverAllB, {start});
  ASSERT_TRUE(v.explored);
  EXPECT_TRUE(v.solves);
}

TEST(Majority, DecidesUnderGlobalFairnessFromStrongStarts) {
  const M proto;
  Configuration start{
      {M::kStrongA, M::kStrongA, M::kStrongA, M::kStrongB, M::kStrongB},
      std::nullopt};
  const Problem decided = predicateProblem("all-A", allOpinionA);
  const GlobalVerdict v = checkGlobalFairness(proto, decided, {start});
  ASSERT_TRUE(v.explored);
  EXPECT_TRUE(v.solves) << v.reason;
}

TEST(Majority, DecidesUnderWeakFairnessToo) {
  const M proto;
  Configuration start{{M::kStrongA, M::kStrongA, M::kStrongB}, std::nullopt};
  const Problem decided = predicateProblem("all-A", allOpinionA);
  const WeakVerdict v = checkWeakFairness(proto, decided, {start});
  ASSERT_TRUE(v.explored);
  EXPECT_TRUE(v.solves) << v.reason;
}

TEST(Majority, TieLeavesMixedWeakConfigs) {
  // Known 4-state limitation: a tie cannot be resolved.
  const M proto;
  Configuration start{{M::kStrongA, M::kStrongB}, std::nullopt};
  Engine engine(proto, start);
  engine.step(Interaction{0, 1});  // annihilate
  EXPECT_EQ(engine.config().mobile,
            (std::vector<StateId>{M::kWeakA, M::kWeakB}));
  EXPECT_TRUE(engine.silent());  // stuck mixed forever
}

}  // namespace
}  // namespace ppn
