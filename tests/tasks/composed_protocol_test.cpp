#include "tasks/composed_protocol.h"

#include <gtest/gtest.h>

#include "analysis/global_checker.h"
#include "analysis/initial_sets.h"
#include "core/engine.h"
#include "naming/asymmetric_naming.h"
#include "naming/counting_protocol.h"
#include "naming/leader_uniform_naming.h"
#include "sched/random_scheduler.h"
#include "sim/runner.h"
#include "tasks/majority.h"

namespace ppn {
namespace {

TEST(ComposedProtocol, StateSpaceIsProduct) {
  const AsymmetricNaming a(3);
  const MajorityProtocol b;
  const ComposedProtocol c(a, b);
  EXPECT_EQ(c.numMobileStates(), 12u);
  EXPECT_FALSE(c.hasLeader());
  EXPECT_FALSE(c.isSymmetric());  // asymmetric component dominates
}

TEST(ComposedProtocol, ComponentRoundTrip) {
  const AsymmetricNaming a(3);
  const MajorityProtocol b;
  const ComposedProtocol c(a, b);
  for (StateId sa = 0; sa < 3; ++sa) {
    for (StateId sb = 0; sb < 4; ++sb) {
      const StateId s = c.compose(sa, sb);
      EXPECT_EQ(c.componentA(s), sa);
      EXPECT_EQ(c.componentB(s), sb);
    }
  }
}

TEST(ComposedProtocol, DeltaActsComponentwise) {
  const AsymmetricNaming a(4);
  const MajorityProtocol b;
  const ComposedProtocol c(a, b);
  // A-homonyms advance; majority components react independently.
  const StateId x = c.compose(2, MajorityProtocol::kStrongA);
  const StateId y = c.compose(2, MajorityProtocol::kStrongB);
  const MobilePair r = c.mobileDelta(x, y);
  EXPECT_EQ(c.componentA(r.initiator), 2u);
  EXPECT_EQ(c.componentA(r.responder), 3u);  // naming rule fired
  EXPECT_EQ(c.componentB(r.initiator), MajorityProtocol::kWeakA);
  EXPECT_EQ(c.componentB(r.responder), MajorityProtocol::kWeakB);
}

TEST(ComposedProtocol, RejectsTwoLeaders) {
  const CountingProtocol a(3);
  const LeaderUniformNaming b(3);
  EXPECT_THROW(ComposedProtocol(a, b), std::invalid_argument);
}

TEST(ComposedProtocol, LeaderComponentPassesThrough) {
  const LeaderUniformNaming a(3);
  const MajorityProtocol b;
  const ComposedProtocol c(a, b);
  EXPECT_TRUE(c.hasLeader());
  EXPECT_EQ(c.initialLeaderState(), a.initialLeaderState());
  // Leader interaction renames the A component, leaves the B component.
  const StateId s = c.compose(2, MajorityProtocol::kWeakB);  // unnamed, weak-B
  const LeaderResult r = c.leaderDelta(0, s);
  EXPECT_EQ(c.componentA(r.mobile), 0u);  // named 0
  EXPECT_EQ(c.componentB(r.mobile), MajorityProtocol::kWeakB);
}

TEST(ComposedProtocol, UniformInitComposesWhenBothDeclareIt) {
  const LeaderUniformNaming a(3);
  const AsymmetricNaming b(3);
  const ComposedProtocol ab(a, b);
  EXPECT_FALSE(ab.uniformMobileInit().has_value());  // b has none
}

TEST(ComposedProtocol, NamingAndMajorityConvergeTogether) {
  // The paper's motivation made concrete: run naming and a payload task in
  // parallel; both must converge, at the price of a product state space.
  const AsymmetricNaming naming(6);
  const MajorityProtocol majority;
  const ComposedProtocol combo(naming, majority);

  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    // Start: arbitrary names, 4 strong-A vs 2 strong-B.
    Configuration start;
    for (int i = 0; i < 6; ++i) {
      const auto nameState = static_cast<StateId>(rng.below(6));
      const StateId opinion =
          i < 4 ? MajorityProtocol::kStrongA : MajorityProtocol::kStrongB;
      start.mobile.push_back(combo.compose(nameState, opinion));
    }
    Engine engine(combo, start);
    RandomScheduler sched(6, rng.next());
    // Run until the naming component is silent AND majority stabilized.
    bool done = false;
    for (int step = 0; step < 2'000'000 && !done; ++step) {
      engine.step(sched.next());
      if (engine.totalInteractions() % 64 != 0) continue;
      Configuration namesOnly, opinionsOnly;
      for (const StateId s : engine.config().mobile) {
        namesOnly.mobile.push_back(combo.componentA(s));
        opinionsOnly.mobile.push_back(combo.componentB(s));
      }
      done = isNamingSolved(naming, namesOnly) && allOpinionA(opinionsOnly);
    }
    EXPECT_TRUE(done) << "trial " << trial;
  }
}

TEST(ComposedProtocol, CheckerVerifiesComposedNaming) {
  // Component-projected naming on the composed protocol, via the checker:
  // the composed system still solves naming on the A component.
  const AsymmetricNaming naming(2);
  const MajorityProtocol majority;
  const ComposedProtocol combo(naming, majority);
  const Problem componentNaming = predicateProblem(
      "component-naming", [&combo, &naming](const Configuration& c) {
        Configuration namesOnly;
        for (const StateId s : c.mobile) {
          namesOnly.mobile.push_back(combo.componentA(s));
        }
        return isNamed(naming, namesOnly);
      });
  const GlobalVerdict v = checkGlobalFairness(
      combo, componentNaming, allCanonicalConfigurations(combo, 2));
  ASSERT_TRUE(v.explored);
  EXPECT_TRUE(v.solves) << v.reason;
}

}  // namespace
}  // namespace ppn
