#include "sim/batch_engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.h"
#include "faults/campaign.h"
#include "faults/certify.h"
#include "naming/registry.h"
#include "obs/observer.h"
#include "sim/runner.h"
#include "util/seed.h"

namespace ppn {
namespace {

// The batch engine's contract is differential: submit(spec)->wait() must be
// bit-identical to runBatch(proto, spec) — aggregate statistics, per-run
// outcomes, per-runId observer event sequences, and JSONL stream bytes — for
// every worker-pool size and lane-block size. Same for the campaign/certify
// drivers routed through the shared pool.

/// Per-runId event sequences, wall-clock fields excluded (they are the one
/// sanctioned divergence between the scalar and vectorized paths).
class SequenceObserver final : public RunObserver {
 public:
  void onRunStart(const RunStartEvent& e) override {
    append(e.runId, "start " + std::to_string(e.numMobile) + "/" +
                        std::to_string(e.numParticipants));
  }
  void onRunEnd(const RunEndEvent& e) override {
    std::ostringstream os;
    os << "end " << e.silent << e.named << e.timedOut << e.cancelled << " "
       << e.convergenceInteractions << "/" << e.totalInteractions;
    append(e.runId, os.str());
  }
  void onSilenceCheck(const SilenceCheckEvent& e) override {
    append(e.runId, "silence@" + std::to_string(e.interactions) +
                        (e.silent ? "+" : "-"));
  }
  void onWatchdogAbort(const WatchdogAbortEvent& e) override {
    append(e.runId, "watchdog@" + std::to_string(e.interactions));
  }
  void onCancelled(const CancelledEvent& e) override {
    append(e.runId, "cancelled@" + std::to_string(e.interactions));
  }
  void onBatchProgress(const BatchProgressEvent& e) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++progressEvents_;
    lastProgressTotal_ = e.total;
    lastLanesLive_ = e.lanesLive;
    lastLanesRetired_ = e.lanesRetired;
    // Lane-telemetry invariants that must hold on *every* event, regardless
    // of pool geometry: occupancy is exactly the not-yet-completed runs, and
    // retired (silent) lanes are a subset of the completed ones.
    if (e.lanesLive != e.total - e.completed) laneInvariantsHold_ = false;
    if (e.lanesRetired > e.completed) laneInvariantsHold_ = false;
  }

  std::map<std::uint64_t, std::vector<std::string>> sequences() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sequences_;
  }
  std::uint32_t progressEvents() const {
    std::lock_guard<std::mutex> lock(mu_);
    return progressEvents_;
  }
  std::uint32_t lastProgressTotal() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lastProgressTotal_;
  }
  std::uint32_t lastLanesLive() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lastLanesLive_;
  }
  std::uint32_t lastLanesRetired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lastLanesRetired_;
  }
  bool laneInvariantsHold() const {
    std::lock_guard<std::mutex> lock(mu_);
    return laneInvariantsHold_;
  }

 private:
  void append(std::uint64_t runId, std::string line) {
    std::lock_guard<std::mutex> lock(mu_);
    sequences_[runId].push_back(std::move(line));
  }
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::vector<std::string>> sequences_;
  std::uint32_t progressEvents_ = 0;
  std::uint32_t lastProgressTotal_ = 0;
  std::uint32_t lastLanesLive_ = ~0u;
  std::uint32_t lastLanesRetired_ = 0;
  bool laneInvariantsHold_ = true;
};

void expectSameSummary(const Summary& a, const Summary& b,
                       const std::string& label) {
  EXPECT_EQ(a.count, b.count) << label;
  EXPECT_EQ(a.mean, b.mean) << label;
  EXPECT_EQ(a.stddev, b.stddev) << label;
  EXPECT_EQ(a.min, b.min) << label;
  EXPECT_EQ(a.max, b.max) << label;
  EXPECT_EQ(a.median, b.median) << label;
  EXPECT_EQ(a.p10, b.p10) << label;
  EXPECT_EQ(a.p90, b.p90) << label;
}

void expectSameBatchResult(const BatchResult& a, const BatchResult& b,
                           const std::string& label) {
  EXPECT_EQ(a.converged, b.converged) << label;
  EXPECT_EQ(a.named, b.named) << label;
  EXPECT_EQ(a.timedOut, b.timedOut) << label;
  EXPECT_EQ(a.runs, b.runs) << label;
  EXPECT_EQ(a.degraded, b.degraded) << label;
  expectSameSummary(a.convergenceInteractions, b.convergenceInteractions,
                    label + " convergence");
  expectSameSummary(a.parallelTime, b.parallelTime, label + " parallelTime");
}

void expectSameOutcome(const RunOutcome& a, const RunOutcome& b,
                       const std::string& label) {
  EXPECT_EQ(a.silent, b.silent) << label;
  EXPECT_EQ(a.namingSolved, b.namingSolved) << label;
  EXPECT_EQ(a.timedOut, b.timedOut) << label;
  EXPECT_EQ(a.cancelled, b.cancelled) << label;
  EXPECT_EQ(a.convergenceInteractions, b.convergenceInteractions) << label;
  EXPECT_EQ(a.totalInteractions, b.totalInteractions) << label;
  EXPECT_EQ(a.nonNullInteractions, b.nonNullInteractions) << label;
  EXPECT_EQ(a.numMobile, b.numMobile) << label;
  EXPECT_TRUE(a.finalConfig == b.finalConfig) << label;
}

/// Scalar reference for per-run outcomes: runBatch's own worker body, run
/// sequentially (runBatch only returns the aggregate, so the differential
/// tests re-derive the outcome vector through the same seed helper).
std::vector<RunOutcome> referenceOutcomes(const Protocol& proto,
                                          const BatchSpec& spec) {
  const CompiledProtocol compiled(proto);
  std::vector<Rng> runRngs = splitRunRngs(spec.seed, spec.runs);
  std::vector<RunOutcome> outcomes(spec.runs);
  for (std::uint32_t r = 0; r < spec.runs; ++r) {
    Rng runRng = runRngs[r];
    Configuration start =
        spec.init == InitKind::kUniform
            ? uniformConfiguration(proto, spec.numMobile)
            : arbitraryConfiguration(proto, spec.numMobile, runRng);
    Engine engine(proto, std::move(start));
    engine.attachCompiled(&compiled);
    auto sched =
        makeScheduler(spec.sched, engine.numParticipants(), runRng.next());
    outcomes[r] = runUntilSilent(engine, *sched, spec.limits, nullptr, nullptr,
                                 spec.runIdBase + r);
  }
  return outcomes;
}

BatchSpec smallSpec(std::uint32_t numMobile, InitKind init) {
  BatchSpec spec;
  spec.numMobile = numMobile;
  spec.init = init;
  spec.runs = 12;
  spec.seed = 77;
  spec.limits = RunLimits{20'000, 64};
  spec.runIdBase = 100;
  return spec;
}

TEST(BatchEngine, SubmitMatchesRunBatchAcrossPoolGeometries) {
  struct Case {
    const char* key;
    StateId p;
    std::uint32_t n;
    InitKind init;
  };
  const Case cases[] = {
      {"asymmetric", 8, 8, InitKind::kArbitrary},
      {"leader-uniform", 8, 8, InitKind::kUniform},
      {"counting", 9, 8, InitKind::kArbitrary},
  };
  for (const Case& c : cases) {
    const auto proto = makeProtocol(c.key, c.p);
    const BatchSpec spec = smallSpec(c.n, c.init);
    const BatchResult want = runBatch(*proto, spec);
    const std::vector<RunOutcome> ref = referenceOutcomes(*proto, spec);

    for (const std::uint32_t threads : {1u, 2u, 4u}) {
      for (const std::uint32_t lanesPerTask : {1u, 3u, 256u}) {
        BatchEngine engine(BatchEngineOptions{threads, lanesPerTask});
        auto job = engine.submit(*proto, spec);
        const BatchResult got = job->wait();
        const std::string label = std::string(c.key) + " threads=" +
                                  std::to_string(threads) + " block=" +
                                  std::to_string(lanesPerTask);
        expectSameBatchResult(got, want, label);
        ASSERT_EQ(job->outcomes().size(), ref.size()) << label;
        for (std::uint32_t r = 0; r < spec.runs; ++r) {
          expectSameOutcome(job->outcomes()[r], ref[r],
                            label + " run " + std::to_string(r));
        }
      }
    }
  }
}

TEST(BatchEngine, ObserverEventStreamsMatchRunBatch) {
  const auto proto = makeProtocol("asymmetric", 8);
  BatchSpec spec = smallSpec(8, InitKind::kArbitrary);

  SequenceObserver scalarObs;
  spec.observer = &scalarObs;
  runBatch(*proto, spec);

  for (const std::uint32_t threads : {1u, 4u}) {
    SequenceObserver engineObs;
    spec.observer = &engineObs;
    BatchEngine engine(BatchEngineOptions{threads, 3});
    engine.submit(*proto, spec)->wait();
    EXPECT_EQ(engineObs.sequences(), scalarObs.sequences())
        << "threads=" << threads;
    // Progress events carry no runId and arrive in completion order; only
    // their count and total are deterministic across backends.
    EXPECT_EQ(engineObs.progressEvents(), spec.runs);
    EXPECT_EQ(engineObs.lastProgressTotal(), spec.runs);
  }
}

TEST(BatchEngine, LaneTelemetryTracksOccupancyAndRetirement) {
  const auto proto = makeProtocol("asymmetric", 8);
  BatchSpec spec = smallSpec(8, InitKind::kArbitrary);

  for (const std::uint32_t threads : {1u, 4u}) {
    for (const std::uint32_t lanesPerTask : {1u, 3u, 256u}) {
      SequenceObserver obs;
      spec.observer = &obs;
      BatchEngine engine(BatchEngineOptions{threads, lanesPerTask});
      auto job = engine.submit(*proto, spec);
      job->wait();
      const std::string label = "threads=" + std::to_string(threads) +
                                " block=" + std::to_string(lanesPerTask);
      EXPECT_TRUE(obs.laneInvariantsHold()) << label;
      // The final progress event must report zero live lanes and a retired
      // count equal to the runs that actually reached silence.
      EXPECT_EQ(obs.lastLanesLive(), 0u) << label;
      std::uint32_t silent = 0;
      for (const RunOutcome& o : job->outcomes()) {
        if (o.silent) ++silent;
      }
      EXPECT_EQ(obs.lastLanesRetired(), silent) << label;
      EXPECT_GT(silent, 0u) << label;
    }
  }
}

TEST(BatchEngine, JsonlStreamIsOrderedCompleteAndDeterministic) {
  const auto proto = makeProtocol("symmetric-global", 8);
  const BatchSpec spec = smallSpec(8, InitKind::kArbitrary);

  std::vector<std::string> reference;
  {
    BatchEngine engine(BatchEngineOptions{1, 256});
    auto job = engine.submit(*proto, spec, [&](const std::string& line) {
      reference.push_back(line);
    });
    job->wait();
  }
  ASSERT_EQ(reference.size(), spec.runs);
  for (std::uint32_t r = 0; r < spec.runs; ++r) {
    // Lines are emitted in run order and match the public renderer.
    EXPECT_NE(reference[r].find("\"runId\":" +
                                std::to_string(spec.runIdBase + r)),
              std::string::npos)
        << r;
  }

  // Many small blocks racing on many workers must still produce the same
  // byte stream in the same order.
  std::vector<std::string> racy;
  BatchEngine engine(BatchEngineOptions{4, 1});
  auto job = engine.submit(*proto, spec, [&](const std::string& line) {
    racy.push_back(line);
  });
  job->wait();
  const std::vector<RunOutcome>& outcomes = job->outcomes();
  EXPECT_EQ(racy, reference);
  ASSERT_EQ(outcomes.size(), spec.runs);
  for (std::uint32_t r = 0; r < spec.runs; ++r) {
    EXPECT_EQ(racy[r], runOutcomeJsonl(outcomes[r], spec.runIdBase + r)) << r;
  }
}

TEST(BatchEngine, SubmitLanesMatchesScalarFixedStartRuns) {
  // The exact_vs_simulated shape: every run starts from the SAME
  // configuration; only the scheduler stream varies (drawRunSeeds).
  const auto proto = makeProtocol("asymmetric", 8);
  const CompiledProtocol compiled(*proto);
  const std::uint32_t runs = 16;
  Rng initRng(5);
  const Configuration start = arbitraryConfiguration(*proto, 8, initRng);
  const std::vector<std::uint64_t> seeds = drawRunSeeds(31, runs);
  const RunLimits limits{20'000, 64};

  std::vector<LanePlan> plans(runs);
  for (std::uint32_t r = 0; r < runs; ++r) {
    plans[r].start = start;
    plans[r].schedSeed = seeds[r];
    plans[r].runId = r;
  }
  LaneJobSpec laneSpec;
  laneSpec.limits = limits;

  BatchEngine engine(BatchEngineOptions{2, 4});
  auto job = engine.submitLanes(*proto, std::move(plans), laneSpec);
  job->wait();
  ASSERT_EQ(job->outcomes().size(), runs);

  for (std::uint32_t r = 0; r < runs; ++r) {
    Engine scalar(*proto, start);
    scalar.attachCompiled(&compiled);
    auto sched = makeScheduler(SchedulerKind::kRandom,
                               scalar.numParticipants(), seeds[r]);
    const RunOutcome want = runUntilSilent(scalar, *sched, limits);
    expectSameOutcome(job->outcomes()[r], want, "run " + std::to_string(r));
  }
}

TEST(BatchEngine, InterpretedPathMatchesCompiledPath) {
  const auto proto = makeProtocol("leader-uniform", 6);
  BatchSpec spec = smallSpec(6, InitKind::kUniform);
  BatchEngine engine(BatchEngineOptions{2, 4});

  auto compiledJob = engine.submit(*proto, spec);
  spec.compiled = false;  // force the per-lane scalar interpreted path
  auto interpretedJob = engine.submit(*proto, spec);
  compiledJob->wait();
  interpretedJob->wait();
  ASSERT_EQ(compiledJob->outcomes().size(), interpretedJob->outcomes().size());
  for (std::uint32_t r = 0; r < spec.runs; ++r) {
    expectSameOutcome(compiledJob->outcomes()[r], interpretedJob->outcomes()[r],
                      "run " + std::to_string(r));
  }
}

TEST(BatchEngine, ParallelForMatchesParallelRunIndexed) {
  const std::uint32_t count = 23;
  auto compute = [](std::uint32_t i) {
    Rng rng(1000 + i);
    return rng.next();
  };

  std::vector<std::uint64_t> want(count);
  parallelRunIndexed(count, 2, [&](std::uint32_t i, CancelToken&) {
    want[i] = compute(i);
  });

  BatchEngine engine(BatchEngineOptions{3, 256});
  std::vector<std::uint64_t> got(count);
  engine.parallelFor(count, [&](std::uint32_t i, CancelToken&) {
    got[i] = compute(i);
  });
  EXPECT_EQ(got, want);
}

TEST(BatchEngine, ParallelForRethrowsAndSkipsAfterThrow) {
  BatchEngine engine(BatchEngineOptions{2, 256});
  std::mutex mu;
  std::vector<std::uint32_t> ran;
  try {
    engine.parallelFor(64, [&](std::uint32_t i, CancelToken&) {
      if (i == 5) throw std::runtime_error("boom at 5");
      std::lock_guard<std::mutex> lock(mu);
      ran.push_back(i);
    });
    FAIL() << "expected the worker exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 5");
  }
  EXPECT_LT(ran.size(), 64u);  // cancellation skipped the tail

  // The pool survives a throwing job: later work completes normally.
  std::vector<std::uint32_t> after(4);
  engine.parallelFor(4, [&](std::uint32_t i, CancelToken&) { after[i] = i; });
  EXPECT_EQ(after, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(BatchEngine, WaitRethrowsWorkerErrorsAndEngineSurvives) {
  const auto proto = makeProtocol("asymmetric", 6);
  BatchEngine engine(BatchEngineOptions{2, 1});

  std::vector<LanePlan> plans(3);
  for (std::uint32_t r = 0; r < 3; ++r) {
    plans[r].start.mobile = {0, 1, 2};
    plans[r].schedSeed = r;
    plans[r].runId = r;
  }
  plans[1].start.mobile = {0, 99, 2};  // state outside P=6: worker-side throw
  auto bad = engine.submitLanes(*proto, std::move(plans), LaneJobSpec{});
  EXPECT_THROW(bad->wait(), std::logic_error);
  EXPECT_THROW(bad->wait(), std::logic_error);  // wait() is repeatable

  BatchSpec spec = smallSpec(6, InitKind::kArbitrary);
  spec.runs = 4;
  auto good = engine.submit(*proto, spec);
  EXPECT_EQ(good->wait().runs, 4u);
}

TEST(BatchEngine, SubmitRejectsNonEnumerableArbitraryInit) {
  // selfstab-weak at P=255 cannot enumerate its leader space; submit derives
  // starts sequentially, so the failure surfaces from submit() itself rather
  // than a worker thread.
  const auto proto = makeProtocol("selfstab-weak", 255);
  BatchEngine engine(BatchEngineOptions{1, 256});
  BatchSpec spec = smallSpec(8, InitKind::kArbitrary);
  EXPECT_THROW(engine.submit(*proto, spec), std::logic_error);
}

TEST(BatchEngine, MismatchedLanePopulationsRejectedAtSubmit) {
  const auto proto = makeProtocol("asymmetric", 6);
  BatchEngine engine(BatchEngineOptions{1, 256});
  std::vector<LanePlan> plans(2);
  plans[0].start.mobile = {0, 1, 2};
  plans[1].start.mobile = {0, 1};
  EXPECT_THROW(engine.submitLanes(*proto, std::move(plans), LaneJobSpec{}),
               std::invalid_argument);
}

TEST(BatchEngine, CampaignBackendIsBitIdentical) {
  const auto proto = makeProtocol("asymmetric", 6);
  CampaignSpec spec;
  spec.regime = FaultRegime::kPoissonTransient;
  spec.faultWindow = 2'000;
  spec.numMobile = 6;
  spec.runs = 8;
  spec.seed = 9;
  spec.limits = RunLimits{5'000'000, 128};
  spec.threads = 2;

  const CampaignResult scalar = runCampaign(*proto, spec);

  BatchEngine engine(BatchEngineOptions{3, 256});
  spec.engine = &engine;
  const CampaignResult pooled = runCampaign(*proto, spec);

  EXPECT_EQ(pooled.outcomes, scalar.outcomes);
  EXPECT_EQ(pooled.recovered, scalar.recovered);
  EXPECT_EQ(pooled.recoveredNamed, scalar.recoveredNamed);
  EXPECT_EQ(pooled.timedOut, scalar.timedOut);
  EXPECT_EQ(pooled.degraded, scalar.degraded);
  expectSameSummary(pooled.recoveryInteractions, scalar.recoveryInteractions,
                    "recovery");
  expectSameSummary(pooled.faultsInjected, scalar.faultsInjected, "faults");
}

TEST(BatchEngine, CertifySweepSerializesByteIdenticallyWithEngine) {
  // The campaign-merge CI job byte-compares robustness tables; routing the
  // sweep through the shared pool must not change a single byte.
  CertifySpec spec;
  spec.protocols = {"asymmetric"};
  spec.populations = {4};
  spec.regimes = {FaultRegime::kPoissonTransient, FaultRegime::kStuckAgent};
  spec.faultWindow = 2'000;
  spec.runs = 6;
  spec.limits = RunLimits{5'000'000, 128, 0};
  spec.threads = 2;

  const std::string scalar = certifyRecovery(spec).toJson();

  BatchEngine engine(BatchEngineOptions{3, 256});
  spec.engine = &engine;
  const std::string pooled = certifyRecovery(spec).toJson();

  EXPECT_EQ(pooled, scalar);
}

}  // namespace
}  // namespace ppn
