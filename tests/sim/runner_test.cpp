#include "sim/runner.h"

#include <gtest/gtest.h>

#include "naming/asymmetric_naming.h"
#include "naming/leader_uniform_naming.h"
#include "naming/selfstab_weak_naming.h"
#include "naming/symmetric_global_naming.h"
#include "sched/random_scheduler.h"

namespace ppn {
namespace {

/// Never silences: every pair flips both participants' low bit. Symmetric,
/// total, leaderless — the cleanest deterministic "hung run" for watchdog
/// and cancellation tests.
class SpinProtocol final : public Protocol {
 public:
  std::string name() const override { return "spin"; }
  StateId numMobileStates() const override { return 2; }
  bool isSymmetric() const override { return true; }
  MobilePair mobileDelta(StateId initiator, StateId responder) const override {
    return MobilePair{initiator ^ 1u, responder ^ 1u};
  }
};

/// Throws from inside the run loop, on a worker thread when batched.
class ThrowingProtocol final : public Protocol {
 public:
  std::string name() const override { return "throwing"; }
  StateId numMobileStates() const override { return 2; }
  bool isSymmetric() const override { return true; }
  MobilePair mobileDelta(StateId, StateId) const override {
    throw std::runtime_error("deliberate failure for exception-safety test");
  }
};

TEST(RunUntilSilent, AlreadySilentReturnsImmediately) {
  const AsymmetricNaming proto(3);
  Engine engine(proto, Configuration{{0, 1, 2}, std::nullopt});
  RandomScheduler sched(3, 1);
  const RunOutcome out = runUntilSilent(engine, sched, RunLimits{1000, 8});
  EXPECT_TRUE(out.silent);
  EXPECT_TRUE(out.namingSolved);
  EXPECT_EQ(out.totalInteractions, 0u);
  EXPECT_EQ(out.convergenceInteractions, 0u);
}

TEST(RunUntilSilent, ConvergenceTimeIsExactDespiteCoarsePolling) {
  // Run the same seeded system with two very different polling intervals;
  // the reported convergence time must be identical.
  const AsymmetricNaming proto(6);
  const Configuration start{{2, 2, 2, 2, 2, 2}, std::nullopt};

  Engine e1(proto, start);
  RandomScheduler s1(6, 77);
  const RunOutcome fine = runUntilSilent(e1, s1, RunLimits{100000, 1});

  Engine e2(proto, start);
  RandomScheduler s2(6, 77);
  const RunOutcome coarse = runUntilSilent(e2, s2, RunLimits{100000, 1000});

  ASSERT_TRUE(fine.silent);
  ASSERT_TRUE(coarse.silent);
  EXPECT_EQ(fine.convergenceInteractions, coarse.convergenceInteractions);
}

TEST(RunUntilSilent, BudgetExhaustionReported) {
  // The Prop 13 protocol at N = 2 never converges (the paper's N > 2
  // proviso); the runner must stop at the budget.
  const SymmetricGlobalNaming proto(3);
  Engine engine(proto, Configuration{{1, 1}, std::nullopt});
  RandomScheduler sched(2, 5);
  const RunOutcome out = runUntilSilent(engine, sched, RunLimits{5000, 16});
  EXPECT_FALSE(out.silent);
  EXPECT_FALSE(out.namingSolved);
  EXPECT_EQ(out.totalInteractions, 5000u);
}

TEST(RunUntilSilent, ParallelTimeNormalizesByN) {
  RunOutcome out;
  out.numMobile = 10;
  out.convergenceInteractions = 250;
  EXPECT_DOUBLE_EQ(out.parallelTime(), 25.0);
}

TEST(SchedulerKind, ParseRoundTrip) {
  for (const auto kind : {SchedulerKind::kRandom, SchedulerKind::kSkewed,
                          SchedulerKind::kRoundRobin, SchedulerKind::kTournament}) {
    EXPECT_EQ(parseSchedulerKind(schedulerKindName(kind)), kind);
  }
  EXPECT_THROW(parseSchedulerKind("bogus"), std::invalid_argument);
}

TEST(MakeScheduler, ProducesWorkingSchedulers) {
  for (const auto kind : {SchedulerKind::kRandom, SchedulerKind::kSkewed,
                          SchedulerKind::kRoundRobin, SchedulerKind::kTournament}) {
    auto sched = makeScheduler(kind, 5, 42);
    ASSERT_NE(sched, nullptr);
    for (int i = 0; i < 100; ++i) {
      const Interaction it = sched->next();
      EXPECT_LT(it.initiator, 5u);
      EXPECT_LT(it.responder, 5u);
      EXPECT_NE(it.initiator, it.responder);
    }
  }
}

TEST(RunBatch, AllRunsConvergeForRobustProtocol) {
  const AsymmetricNaming proto(6);
  BatchSpec spec;
  spec.numMobile = 6;
  spec.init = InitKind::kArbitrary;
  spec.sched = SchedulerKind::kRandom;
  spec.runs = 16;
  spec.seed = 9;
  spec.limits = RunLimits{200000, 32};
  const BatchResult result = runBatch(proto, spec);
  EXPECT_EQ(result.runs, 16u);
  EXPECT_EQ(result.converged, 16u);
  EXPECT_EQ(result.named, 16u);
  EXPECT_EQ(result.convergenceInteractions.count, 16u);
  EXPECT_GT(result.convergenceInteractions.mean, 0.0);
}

TEST(RunBatch, UniformInitUsesDeclaredStart) {
  const LeaderUniformNaming proto(4);
  BatchSpec spec;
  spec.numMobile = 4;
  spec.init = InitKind::kUniform;
  spec.sched = SchedulerKind::kRoundRobin;
  spec.runs = 4;
  spec.seed = 3;
  spec.limits = RunLimits{100000, 8};
  const BatchResult result = runBatch(proto, spec);
  EXPECT_EQ(result.named, 4u);
}

TEST(RunBatch, ThreadCountDoesNotChangeResults) {
  // Per-run inputs are derived before execution, so the batch is
  // bit-deterministic across worker counts.
  const SelfStabWeakNaming proto(5);
  BatchSpec spec;
  spec.numMobile = 5;
  spec.runs = 12;
  spec.seed = 77;
  spec.limits = RunLimits{2'000'000, 64};

  spec.threads = 1;
  const BatchResult sequential = runBatch(proto, spec);
  spec.threads = 4;
  const BatchResult parallel4 = runBatch(proto, spec);
  spec.threads = 0;  // hardware concurrency
  const BatchResult parallelAuto = runBatch(proto, spec);

  for (const BatchResult* r : {&parallel4, &parallelAuto}) {
    EXPECT_EQ(r->converged, sequential.converged);
    EXPECT_EQ(r->named, sequential.named);
    EXPECT_DOUBLE_EQ(r->convergenceInteractions.mean,
                     sequential.convergenceInteractions.mean);
    EXPECT_DOUBLE_EQ(r->convergenceInteractions.max,
                     sequential.convergenceInteractions.max);
  }
}

TEST(RunBatch, MoreThreadsThanRunsIsFine) {
  const AsymmetricNaming proto(4);
  BatchSpec spec;
  spec.numMobile = 4;
  spec.runs = 2;
  spec.threads = 16;
  spec.seed = 5;
  spec.limits = RunLimits{100000, 16};
  const BatchResult r = runBatch(proto, spec);
  EXPECT_EQ(r.converged, 2u);
}

TEST(RunUntilSilent, WatchdogAbortsHungRun) {
  // A deliberately hung run: silence unreachable, an effectively unlimited
  // interaction budget, and a tiny wall-clock limit. Must return promptly
  // with timedOut instead of blocking.
  const SpinProtocol proto;
  Engine engine(proto, Configuration{{0, 0, 0, 0}, std::nullopt});
  RandomScheduler sched(4, 7);
  const RunOutcome out = runUntilSilent(
      engine, sched, RunLimits{1'000'000'000'000'000ULL, 64, 30});
  EXPECT_FALSE(out.silent);
  EXPECT_TRUE(out.timedOut);
  EXPECT_FALSE(out.cancelled);
  EXPECT_GT(out.totalInteractions, 0u);
}

TEST(RunUntilSilent, WatchdogOffByDefault) {
  // maxWallMillis = 0 must not abort anything: default-constructed limits
  // behave exactly as before the watchdog existed.
  const AsymmetricNaming proto(4);
  Rng rng(3);
  Engine engine(proto, arbitraryConfiguration(proto, 4, rng));
  RandomScheduler sched(4, 9);
  const RunOutcome out = runUntilSilent(engine, sched, RunLimits{200000, 16});
  EXPECT_TRUE(out.silent);
  EXPECT_FALSE(out.timedOut);
}

TEST(RunUntilSilent, CancelTokenAbortsCooperatively) {
  const SpinProtocol proto;
  Engine engine(proto, Configuration{{0, 0, 0}, std::nullopt});
  RandomScheduler sched(3, 5);
  CancelToken cancel{true};  // already cancelled: must abort at first poll
  const RunOutcome out =
      runUntilSilent(engine, sched, RunLimits{1'000'000'000ULL, 64}, &cancel);
  EXPECT_FALSE(out.silent);
  EXPECT_TRUE(out.cancelled);
  EXPECT_EQ(out.totalInteractions, 0u);
}

TEST(RunBatch, HungRunsYieldDegradedPartialResult) {
  const SpinProtocol proto;
  BatchSpec spec;
  spec.numMobile = 4;
  spec.runs = 3;
  spec.threads = 3;
  spec.seed = 11;
  spec.limits = RunLimits{1'000'000'000'000'000ULL, 64, 30};
  const BatchResult result = runBatch(proto, spec);
  EXPECT_EQ(result.runs, 3u);
  EXPECT_EQ(result.converged, 0u);
  EXPECT_EQ(result.timedOut, 3u);
  EXPECT_TRUE(result.degraded);
}

TEST(RunBatch, WorkerExceptionRethrownWithMessageIntact) {
  // A throwing run must not std::terminate the process (the seed behavior:
  // exceptions escaped worker threads); it cancels the batch and the
  // original exception surfaces on the calling thread.
  const ThrowingProtocol proto;
  BatchSpec spec;
  spec.numMobile = 4;
  spec.runs = 8;
  spec.threads = 4;
  spec.seed = 2;
  spec.limits = RunLimits{1000, 8};
  try {
    runBatch(proto, spec);
    FAIL() << "runBatch must rethrow the worker exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "deliberate failure for exception-safety test");
  }
}

TEST(RunBatch, SingleThreadAlsoPropagatesExceptions) {
  const ThrowingProtocol proto;
  BatchSpec spec;
  spec.numMobile = 3;
  spec.runs = 2;
  spec.threads = 1;
  spec.limits = RunLimits{100, 4};
  EXPECT_THROW(runBatch(proto, spec), std::runtime_error);
}

TEST(ParallelRunIndexed, SequentialRethrowsLowestThrowingIndex) {
  // Single worker: indices run in order, so the first throwing index (1) is
  // the one rethrown and later indices are cancelled, 3 never runs.
  std::vector<int> ran(6, 0);
  try {
    parallelRunIndexed(6, 1, [&](std::uint32_t i, CancelToken&) {
      ran[static_cast<std::size_t>(i)] = 1;
      if (i == 1) throw std::runtime_error("error at 1");
      if (i == 3) throw std::runtime_error("error at 3");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "error at 1");
  }
  EXPECT_EQ(ran, (std::vector<int>{1, 1, 0, 0, 0, 0}));
}

TEST(ParallelRunIndexed, ConcurrentExceptionIsCapturedNotTerminated) {
  // Multi-worker: whichever throwing index ran first wins, but the process
  // must never std::terminate and the surfaced message must be one of the
  // injected ones.
  for (int trial = 0; trial < 8; ++trial) {
    try {
      parallelRunIndexed(6, 4, [](std::uint32_t i, CancelToken&) {
        if (i == 1) throw std::runtime_error("error at 1");
        if (i == 3) throw std::runtime_error("error at 3");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_TRUE(what == "error at 1" || what == "error at 3") << what;
    }
  }
}

TEST(ParallelRunIndexed, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  parallelRunIndexed(64, 0, [&](std::uint32_t i, CancelToken&) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunBatch, DistinctSeedsGiveDistinctCosts) {
  const SelfStabWeakNaming proto(5);
  BatchSpec spec;
  spec.numMobile = 5;
  spec.runs = 8;
  spec.seed = 1;
  spec.limits = RunLimits{2'000'000, 64};
  const BatchResult result = runBatch(proto, spec);
  EXPECT_EQ(result.converged, 8u);
  // Convergence cost varies across runs (not a constant).
  EXPECT_GT(result.convergenceInteractions.max,
            result.convergenceInteractions.min);
}

}  // namespace
}  // namespace ppn
