#include "sim/runner.h"

#include <gtest/gtest.h>

#include "naming/asymmetric_naming.h"
#include "naming/leader_uniform_naming.h"
#include "naming/selfstab_weak_naming.h"
#include "naming/symmetric_global_naming.h"
#include "sched/random_scheduler.h"

namespace ppn {
namespace {

TEST(RunUntilSilent, AlreadySilentReturnsImmediately) {
  const AsymmetricNaming proto(3);
  Engine engine(proto, Configuration{{0, 1, 2}, std::nullopt});
  RandomScheduler sched(3, 1);
  const RunOutcome out = runUntilSilent(engine, sched, RunLimits{1000, 8});
  EXPECT_TRUE(out.silent);
  EXPECT_TRUE(out.namingSolved);
  EXPECT_EQ(out.totalInteractions, 0u);
  EXPECT_EQ(out.convergenceInteractions, 0u);
}

TEST(RunUntilSilent, ConvergenceTimeIsExactDespiteCoarsePolling) {
  // Run the same seeded system with two very different polling intervals;
  // the reported convergence time must be identical.
  const AsymmetricNaming proto(6);
  const Configuration start{{2, 2, 2, 2, 2, 2}, std::nullopt};

  Engine e1(proto, start);
  RandomScheduler s1(6, 77);
  const RunOutcome fine = runUntilSilent(e1, s1, RunLimits{100000, 1});

  Engine e2(proto, start);
  RandomScheduler s2(6, 77);
  const RunOutcome coarse = runUntilSilent(e2, s2, RunLimits{100000, 1000});

  ASSERT_TRUE(fine.silent);
  ASSERT_TRUE(coarse.silent);
  EXPECT_EQ(fine.convergenceInteractions, coarse.convergenceInteractions);
}

TEST(RunUntilSilent, BudgetExhaustionReported) {
  // The Prop 13 protocol at N = 2 never converges (the paper's N > 2
  // proviso); the runner must stop at the budget.
  const SymmetricGlobalNaming proto(3);
  Engine engine(proto, Configuration{{1, 1}, std::nullopt});
  RandomScheduler sched(2, 5);
  const RunOutcome out = runUntilSilent(engine, sched, RunLimits{5000, 16});
  EXPECT_FALSE(out.silent);
  EXPECT_FALSE(out.namingSolved);
  EXPECT_EQ(out.totalInteractions, 5000u);
}

TEST(RunUntilSilent, ParallelTimeNormalizesByN) {
  RunOutcome out;
  out.numMobile = 10;
  out.convergenceInteractions = 250;
  EXPECT_DOUBLE_EQ(out.parallelTime(), 25.0);
}

TEST(SchedulerKind, ParseRoundTrip) {
  for (const auto kind : {SchedulerKind::kRandom, SchedulerKind::kSkewed,
                          SchedulerKind::kRoundRobin, SchedulerKind::kTournament}) {
    EXPECT_EQ(parseSchedulerKind(schedulerKindName(kind)), kind);
  }
  EXPECT_THROW(parseSchedulerKind("bogus"), std::invalid_argument);
}

TEST(MakeScheduler, ProducesWorkingSchedulers) {
  for (const auto kind : {SchedulerKind::kRandom, SchedulerKind::kSkewed,
                          SchedulerKind::kRoundRobin, SchedulerKind::kTournament}) {
    auto sched = makeScheduler(kind, 5, 42);
    ASSERT_NE(sched, nullptr);
    for (int i = 0; i < 100; ++i) {
      const Interaction it = sched->next();
      EXPECT_LT(it.initiator, 5u);
      EXPECT_LT(it.responder, 5u);
      EXPECT_NE(it.initiator, it.responder);
    }
  }
}

TEST(RunBatch, AllRunsConvergeForRobustProtocol) {
  const AsymmetricNaming proto(6);
  BatchSpec spec;
  spec.numMobile = 6;
  spec.init = InitKind::kArbitrary;
  spec.sched = SchedulerKind::kRandom;
  spec.runs = 16;
  spec.seed = 9;
  spec.limits = RunLimits{200000, 32};
  const BatchResult result = runBatch(proto, spec);
  EXPECT_EQ(result.runs, 16u);
  EXPECT_EQ(result.converged, 16u);
  EXPECT_EQ(result.named, 16u);
  EXPECT_EQ(result.convergenceInteractions.count, 16u);
  EXPECT_GT(result.convergenceInteractions.mean, 0.0);
}

TEST(RunBatch, UniformInitUsesDeclaredStart) {
  const LeaderUniformNaming proto(4);
  BatchSpec spec;
  spec.numMobile = 4;
  spec.init = InitKind::kUniform;
  spec.sched = SchedulerKind::kRoundRobin;
  spec.runs = 4;
  spec.seed = 3;
  spec.limits = RunLimits{100000, 8};
  const BatchResult result = runBatch(proto, spec);
  EXPECT_EQ(result.named, 4u);
}

TEST(RunBatch, ThreadCountDoesNotChangeResults) {
  // Per-run inputs are derived before execution, so the batch is
  // bit-deterministic across worker counts.
  const SelfStabWeakNaming proto(5);
  BatchSpec spec;
  spec.numMobile = 5;
  spec.runs = 12;
  spec.seed = 77;
  spec.limits = RunLimits{2'000'000, 64};

  spec.threads = 1;
  const BatchResult sequential = runBatch(proto, spec);
  spec.threads = 4;
  const BatchResult parallel4 = runBatch(proto, spec);
  spec.threads = 0;  // hardware concurrency
  const BatchResult parallelAuto = runBatch(proto, spec);

  for (const BatchResult* r : {&parallel4, &parallelAuto}) {
    EXPECT_EQ(r->converged, sequential.converged);
    EXPECT_EQ(r->named, sequential.named);
    EXPECT_DOUBLE_EQ(r->convergenceInteractions.mean,
                     sequential.convergenceInteractions.mean);
    EXPECT_DOUBLE_EQ(r->convergenceInteractions.max,
                     sequential.convergenceInteractions.max);
  }
}

TEST(RunBatch, MoreThreadsThanRunsIsFine) {
  const AsymmetricNaming proto(4);
  BatchSpec spec;
  spec.numMobile = 4;
  spec.runs = 2;
  spec.threads = 16;
  spec.seed = 5;
  spec.limits = RunLimits{100000, 16};
  const BatchResult r = runBatch(proto, spec);
  EXPECT_EQ(r.converged, 2u);
}

TEST(RunBatch, DistinctSeedsGiveDistinctCosts) {
  const SelfStabWeakNaming proto(5);
  BatchSpec spec;
  spec.numMobile = 5;
  spec.runs = 8;
  spec.seed = 1;
  spec.limits = RunLimits{2'000'000, 64};
  const BatchResult result = runBatch(proto, spec);
  EXPECT_EQ(result.converged, 8u);
  // Convergence cost varies across runs (not a constant).
  EXPECT_GT(result.convergenceInteractions.max,
            result.convergenceInteractions.min);
}

}  // namespace
}  // namespace ppn
