#include "sim/soa_kernel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "core/compiled.h"
#include "core/engine.h"
#include "naming/registry.h"
#include "obs/observer.h"
#include "sim/runner.h"
#include "util/seed.h"

namespace ppn {
namespace {

// The SoA kernel's whole value rests on one claim: K lanes advanced in
// lockstep produce EXACTLY what K independent runUntilSilent calls produce —
// same outcomes, same final configurations, same per-runId observer event
// sequences — at every lane count. These tests enforce that claim
// differentially across the full protocol registry.

/// Records each run's event sequence as formatted lines keyed by runId.
/// Wall-clock fields are excluded (the determinism contract excepts them).
class SequenceObserver final : public RunObserver {
 public:
  void onRunStart(const RunStartEvent& e) override {
    append(e.runId, "start mobile=" + std::to_string(e.numMobile) +
                        " participants=" + std::to_string(e.numParticipants));
  }
  void onRunEnd(const RunEndEvent& e) override {
    std::ostringstream os;
    os << "end silent=" << e.silent << " named=" << e.named
       << " timedOut=" << e.timedOut << " cancelled=" << e.cancelled
       << " conv=" << e.convergenceInteractions
       << " total=" << e.totalInteractions;
    append(e.runId, os.str());
  }
  void onSilenceCheck(const SilenceCheckEvent& e) override {
    append(e.runId, "silence@" + std::to_string(e.interactions) +
                        (e.silent ? " silent" : " live"));
  }
  void onWatchdogAbort(const WatchdogAbortEvent& e) override {
    append(e.runId, "watchdog@" + std::to_string(e.interactions));
  }
  void onCancelled(const CancelledEvent& e) override {
    append(e.runId, "cancelled@" + std::to_string(e.interactions));
  }

  std::map<std::uint64_t, std::vector<std::string>> sequences() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sequences_;
  }

 private:
  void append(std::uint64_t runId, std::string line) {
    std::lock_guard<std::mutex> lock(mu_);
    sequences_[runId].push_back(std::move(line));
  }
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::vector<std::string>> sequences_;
};

struct RegistryCase {
  const char* key;
  StateId p;
  std::uint32_t n;
  bool uniformInit;
};

/// Small instances of all six registry protocols — every transition-table
/// shape the compiled envelope supports (leaderless, initialized leader,
/// arbitrary leader, counting's N < P slack, global-leader's BST walk).
const RegistryCase kCases[] = {
    {"asymmetric", 8, 8, false},       {"symmetric-global", 8, 8, false},
    {"leader-uniform", 8, 8, true},    {"counting", 9, 8, false},
    {"selfstab-weak", 6, 6, false},    {"global-leader", 4, 4, false},
};

/// Derives `lanes` starts + scheduler seeds the runBatch way (util/seed.h).
std::vector<LaneInput> makeLanes(const Protocol& proto, const RegistryCase& c,
                                 std::uint32_t lanes, std::uint64_t seed,
                                 std::uint64_t runIdBase) {
  std::vector<Rng> rngs = splitRunRngs(seed, lanes);
  std::vector<LaneInput> inputs(lanes);
  const std::uint32_t participants = c.n + (proto.hasLeader() ? 1u : 0u);
  for (std::uint32_t r = 0; r < lanes; ++r) {
    inputs[r].start = c.uniformInit
                          ? uniformConfiguration(proto, c.n)
                          : arbitraryConfiguration(proto, c.n, rngs[r]);
    inputs[r].sched = makeScheduler(SchedulerKind::kRandom, participants,
                                    rngs[r].next());
    inputs[r].runId = runIdBase + r;
  }
  return inputs;
}

void expectSameOutcome(const RunOutcome& kernel, const RunOutcome& scalar,
                       const std::string& label) {
  EXPECT_EQ(kernel.silent, scalar.silent) << label;
  EXPECT_EQ(kernel.namingSolved, scalar.namingSolved) << label;
  EXPECT_EQ(kernel.timedOut, scalar.timedOut) << label;
  EXPECT_EQ(kernel.cancelled, scalar.cancelled) << label;
  EXPECT_EQ(kernel.convergenceInteractions, scalar.convergenceInteractions)
      << label;
  EXPECT_EQ(kernel.totalInteractions, scalar.totalInteractions) << label;
  EXPECT_EQ(kernel.nonNullInteractions, scalar.nonNullInteractions) << label;
  EXPECT_EQ(kernel.numMobile, scalar.numMobile) << label;
  EXPECT_TRUE(kernel.finalConfig == scalar.finalConfig) << label;
}

class SoaKernelRegistry : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SoaKernelRegistry, BitIdenticalToIndependentRunsAcrossRegistry) {
  const std::uint32_t lanes = GetParam();
  const RunLimits limits{20'000, 64};
  for (const RegistryCase& c : kCases) {
    const auto proto = makeProtocol(c.key, c.p);
    const CompiledProtocol compiled(*proto);

    SequenceObserver kernelObs;
    std::vector<LaneInput> inputs = makeLanes(*proto, c, lanes, 11, 500);
    std::vector<RunOutcome> kernelOut = runLanesUntilSilent(
        *proto, compiled, inputs, limits, nullptr, &kernelObs);
    ASSERT_EQ(kernelOut.size(), lanes) << c.key;

    // Scalar reference: the same derivation, one Engine per run.
    SequenceObserver scalarObs;
    std::vector<LaneInput> ref = makeLanes(*proto, c, lanes, 11, 500);
    for (std::uint32_t r = 0; r < lanes; ++r) {
      Engine engine(*proto, std::move(ref[r].start));
      engine.attachCompiled(&compiled);
      const RunOutcome scalar =
          runUntilSilent(engine, *ref[r].sched, limits, nullptr, &scalarObs,
                         ref[r].runId);
      expectSameOutcome(kernelOut[r], scalar,
                        std::string(c.key) + " lane " + std::to_string(r) +
                            " of " + std::to_string(lanes));
    }
    EXPECT_EQ(kernelObs.sequences(), scalarObs.sequences())
        << c.key << " lanes=" << lanes;
  }
}

INSTANTIATE_TEST_SUITE_P(LaneCounts, SoaKernelRegistry,
                         ::testing::Values(1u, 7u, 64u, 1024u),
                         [](const auto& paramInfo) {
                           return "K" + std::to_string(paramInfo.param);
                         });

TEST(SoaKernel, LanePartitioningNeverChangesOutcomes) {
  // Splitting the same 24 runs into blocks of 1 / 5 / 24 lanes must produce
  // identical outcome vectors (the batch engine relies on this to pick its
  // task granularity freely).
  const auto proto = makeProtocol("asymmetric", 8);
  const CompiledProtocol compiled(*proto);
  const RunLimits limits{20'000, 64};
  const std::uint32_t runs = 24;

  auto runPartitioned = [&](std::uint32_t blockSize) {
    std::vector<RunOutcome> all;
    for (std::uint32_t lo = 0; lo < runs; lo += blockSize) {
      const std::uint32_t hi = std::min(runs, lo + blockSize);
      // Derivation is per-run (prefix-stable), so a block re-derives its
      // slice exactly as the monolithic call derives the whole vector.
      std::vector<Rng> rngs = splitRunRngs(3, runs);
      std::vector<LaneInput> inputs(hi - lo);
      for (std::uint32_t r = lo; r < hi; ++r) {
        inputs[r - lo].start = arbitraryConfiguration(*proto, 8, rngs[r]);
        inputs[r - lo].sched =
            makeScheduler(SchedulerKind::kRandom, 8, rngs[r].next());
        inputs[r - lo].runId = r;
      }
      std::vector<RunOutcome> block =
          runLanesUntilSilent(*proto, compiled, inputs, limits);
      for (auto& out : block) all.push_back(std::move(out));
    }
    return all;
  };

  const std::vector<RunOutcome> whole = runPartitioned(24);
  for (const std::uint32_t blockSize : {1u, 5u}) {
    const std::vector<RunOutcome> split = runPartitioned(blockSize);
    ASSERT_EQ(split.size(), whole.size());
    for (std::uint32_t r = 0; r < runs; ++r) {
      expectSameOutcome(split[r], whole[r],
                        "block=" + std::to_string(blockSize) + " run " +
                            std::to_string(r));
    }
  }
}

TEST(SoaKernel, ConvergedLanesRetireWhileOthersRun) {
  // One lane starts silent (all agents distinct), the other needs work: the
  // silent lane must report zero interactions while the live lane converges.
  const auto proto = makeProtocol("asymmetric", 6);
  const CompiledProtocol compiled(*proto);
  std::vector<LaneInput> inputs(2);
  inputs[0].start.mobile = {0, 1, 2, 3, 4, 5};  // already named
  inputs[0].sched = makeScheduler(SchedulerKind::kRandom, 6, 1);
  inputs[0].runId = 0;
  inputs[1].start.mobile = {0, 0, 0, 0, 0, 0};  // all homonyms
  inputs[1].sched = makeScheduler(SchedulerKind::kRandom, 6, 2);
  inputs[1].runId = 1;

  const std::vector<RunOutcome> out =
      runLanesUntilSilent(*proto, compiled, inputs, RunLimits{200'000, 64});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].silent);
  EXPECT_EQ(out[0].totalInteractions, 0u);
  EXPECT_EQ(out[0].convergenceInteractions, 0u);
  EXPECT_TRUE(out[1].silent);
  EXPECT_TRUE(out[1].namingSolved);
  EXPECT_GT(out[1].totalInteractions, 0u);
}

TEST(SoaKernel, ZeroBudgetMatchesScalarSemantics) {
  const auto proto = makeProtocol("asymmetric", 4);
  const CompiledProtocol compiled(*proto);
  std::vector<LaneInput> inputs(1);
  inputs[0].start.mobile = {0, 0, 0, 0};
  inputs[0].sched = makeScheduler(SchedulerKind::kRandom, 4, 9);
  const std::vector<RunOutcome> out =
      runLanesUntilSilent(*proto, compiled, inputs, RunLimits{0, 64});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].silent);
  EXPECT_EQ(out[0].totalInteractions, 0u);
}

TEST(SoaKernel, EmptyLaneVectorYieldsEmptyResult) {
  const auto proto = makeProtocol("asymmetric", 4);
  const CompiledProtocol compiled(*proto);
  std::vector<LaneInput> inputs;
  EXPECT_TRUE(
      runLanesUntilSilent(*proto, compiled, inputs, RunLimits{100, 10}).empty());
}

TEST(SoaKernel, RejectsMixedPopulationsAndMissingSchedulers) {
  const auto proto = makeProtocol("asymmetric", 6);
  const CompiledProtocol compiled(*proto);
  {
    std::vector<LaneInput> inputs(2);
    inputs[0].start.mobile = {0, 1, 2};
    inputs[0].sched = makeScheduler(SchedulerKind::kRandom, 3, 1);
    inputs[1].start.mobile = {0, 1};  // different N
    inputs[1].sched = makeScheduler(SchedulerKind::kRandom, 2, 1);
    EXPECT_THROW(
        runLanesUntilSilent(*proto, compiled, inputs, RunLimits{100, 10}),
        std::invalid_argument);
  }
  {
    std::vector<LaneInput> inputs(1);
    inputs[0].start.mobile = {0, 1, 2};  // no scheduler
    EXPECT_THROW(
        runLanesUntilSilent(*proto, compiled, inputs, RunLimits{100, 10}),
        std::invalid_argument);
  }
  {
    std::vector<LaneInput> inputs(1);
    inputs[0].start.mobile = {0, 99};  // state outside P=6
    inputs[0].sched = makeScheduler(SchedulerKind::kRandom, 2, 1);
    EXPECT_THROW(
        runLanesUntilSilent(*proto, compiled, inputs, RunLimits{100, 10}),
        std::logic_error);
  }
}

TEST(SoaKernel, RejectsForeignCompiledTable) {
  const auto proto = makeProtocol("asymmetric", 6);
  const auto other = makeProtocol("asymmetric", 6);
  const CompiledProtocol compiled(*other);
  std::vector<LaneInput> inputs(1);
  inputs[0].start.mobile = {0, 1, 2, 3, 4, 5};
  inputs[0].sched = makeScheduler(SchedulerKind::kRandom, 6, 1);
  EXPECT_THROW(
      runLanesUntilSilent(*proto, compiled, inputs, RunLimits{100, 10}),
      std::logic_error);
}

TEST(SoaKernel, CancellationFinishesEveryLaneWithPairedEvents) {
  // A pre-cancelled token: every lane must still emit a paired run_start/
  // run_end (cancelled), exactly like runUntilSilent under cancellation.
  const auto proto = makeProtocol("asymmetric", 8);
  const CompiledProtocol compiled(*proto);
  CancelToken cancel{true};
  SequenceObserver obs;
  std::vector<LaneInput> inputs;
  {
    RegistryCase c{"asymmetric", 8, 8, false};
    inputs = makeLanes(*proto, c, 5, 21, 0);
  }
  const std::vector<RunOutcome> out = runLanesUntilSilent(
      *proto, compiled, inputs, RunLimits{20'000, 64}, &cancel, &obs);
  const auto sequences = obs.sequences();
  ASSERT_EQ(sequences.size(), 5u);
  for (std::uint32_t r = 0; r < 5; ++r) {
    if (out[r].silent) continue;  // born-silent lanes finish before the poll
    EXPECT_TRUE(out[r].cancelled) << r;
    const auto& seq = sequences.at(r);
    ASSERT_GE(seq.size(), 2u);
    EXPECT_EQ(seq.front().rfind("start", 0), 0u);
    EXPECT_EQ(seq.back().rfind("end", 0), 0u);
  }

  // And the scalar reference behaves identically under the same token.
  RegistryCase c{"asymmetric", 8, 8, false};
  std::vector<LaneInput> ref = makeLanes(*proto, c, 5, 21, 0);
  for (std::uint32_t r = 0; r < 5; ++r) {
    Engine engine(*proto, std::move(ref[r].start));
    engine.attachCompiled(&compiled);
    const RunOutcome scalar = runUntilSilent(engine, *ref[r].sched,
                                             RunLimits{20'000, 64}, &cancel);
    expectSameOutcome(out[r], scalar, "cancelled lane " + std::to_string(r));
  }
}

}  // namespace
}  // namespace ppn
