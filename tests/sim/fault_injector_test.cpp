#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "naming/asymmetric_naming.h"
#include "naming/registry.h"
#include "naming/selfstab_weak_naming.h"
#include "naming/symmetric_global_naming.h"
#include "sched/deterministic_schedulers.h"
#include "sched/random_scheduler.h"

namespace ppn {
namespace {

TEST(InjectFault, CorruptsRequestedNumberOfAgents) {
  const AsymmetricNaming proto(8);
  Rng rng(3);
  // Count how many states differ after corrupting 3 agents, over trials.
  for (int trial = 0; trial < 20; ++trial) {
    Engine engine(proto, Configuration{{0, 1, 2, 3, 4, 5, 6, 7}, std::nullopt});
    const Configuration before = engine.config();
    injectFault(engine, FaultPlan{.corruptAgents = 3, .corruptLeader = false},
                rng);
    std::uint32_t differing = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      differing += (engine.config().mobile[i] != before.mobile[i]) ? 1u : 0u;
    }
    // At most 3 change (a corruption may coincide with the old state).
    EXPECT_LE(differing, 3u);
  }
}

TEST(InjectFault, ClampsToPopulation) {
  const AsymmetricNaming proto(3);
  Engine engine(proto, Configuration{{0, 1, 2}, std::nullopt});
  Rng rng(4);
  injectFault(engine, FaultPlan{.corruptAgents = 100, .corruptLeader = false},
              rng);  // must not throw or touch out-of-range agents
  EXPECT_EQ(engine.config().numMobile(), 3u);
}

TEST(InjectFault, LeaderCorruptionDrawsFromEnumeratedStates) {
  const SelfStabWeakNaming proto(3);
  Rng rng(5);
  Engine engine(proto,
                Configuration{{1, 2, 3}, proto.allLeaderStates().front()});
  injectFault(engine, FaultPlan{.corruptAgents = 0, .corruptLeader = true},
              rng);
  const auto all = proto.allLeaderStates();
  EXPECT_NE(std::find(all.begin(), all.end(), *engine.config().leader),
            all.end());
}

TEST(InjectFault, ZeroAgentsWithoutLeaderIsAnExactNoOp) {
  // Contract: corruptAgents = 0 leaves every mobile state untouched; with
  // corruptLeader = false the whole configuration is bit-identical.
  const AsymmetricNaming proto(5);
  Engine engine(proto, Configuration{{4, 0, 2, 1, 3}, std::nullopt});
  const Configuration before = engine.config();
  Rng rng(21);
  injectFault(engine, FaultPlan{.corruptAgents = 0, .corruptLeader = false},
              rng);
  EXPECT_EQ(engine.config().mobile, before.mobile);
  EXPECT_EQ(engine.config().leader, before.leader);
}

TEST(InjectFault, LeaderCorruptionSilentlyIgnoredForLeaderlessProtocol) {
  // Contract: corruptLeader on a protocol without a leader must neither throw
  // nor touch the configuration.
  const AsymmetricNaming proto(4);
  ASSERT_FALSE(proto.hasLeader());
  Engine engine(proto, Configuration{{0, 1, 2, 3}, std::nullopt});
  const Configuration before = engine.config();
  Rng rng(22);
  injectFault(engine, FaultPlan{.corruptAgents = 0, .corruptLeader = true},
              rng);
  EXPECT_EQ(engine.config().mobile, before.mobile);
  EXPECT_FALSE(engine.config().leader.has_value());
}

TEST(MeasureRecovery, CoversEveryRegistryProtocol) {
  // Sweep all six registry protocols through converge → fault → reconverge.
  // The paper's self-stabilizing rows (Props 12, 13, 16) must recover with
  // correct naming; the initialized rows (Prop 14, Protocol 1, Prop 17) only
  // have their outcomes recorded — wrong-stable results are expected there.
  Rng rng(2024);
  for (const std::string& key : protocolKeys()) {
    SCOPED_TRACE(key);
    const std::uint32_t n = 4;
    // counting only claims naming for N < P; everything else runs at P = N.
    const StateId p = key == "counting" ? StateId{5} : StateId{4};
    const auto proto = makeProtocol(key, p);
    Engine engine(*proto,
                  proto->uniformMobileInit().has_value()
                      ? uniformConfiguration(*proto, n)
                      : arbitraryConfiguration(*proto, n, rng));
    RandomScheduler sched(engine.numParticipants(), rng.next());
    const RecoveryOutcome out = measureRecovery(
        engine, sched, FaultPlan{.corruptAgents = 2, .corruptLeader = true},
        RunLimits{50'000'000, 64}, rng);
    ASSERT_TRUE(out.initiallyConverged);
    if (isSelfStabilizing(key)) {
      EXPECT_TRUE(out.recovered);
      EXPECT_TRUE(out.recoveredNamed);
    } else {
      // Initialized protocols may stabilize to a wrong configuration after a
      // transient fault; record the observed outcome for the test log.
      RecordProperty(key + "_recovered", out.recovered ? 1 : 0);
      RecordProperty(key + "_recoveredNamed", out.recoveredNamed ? 1 : 0);
    }
  }
}

TEST(MeasureRecovery, SelfStabilizingProtocolRecovers) {
  const AsymmetricNaming proto(6);
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    Engine engine(proto, arbitraryConfiguration(proto, 6, rng));
    RandomScheduler sched(6, rng.next());
    const RecoveryOutcome out = measureRecovery(
        engine, sched, FaultPlan{.corruptAgents = 2, .corruptLeader = false},
        RunLimits{500000, 32}, rng);
    ASSERT_TRUE(out.initiallyConverged);
    EXPECT_TRUE(out.recovered);
    EXPECT_TRUE(out.recoveredNamed);
  }
}

TEST(MeasureRecovery, SelfStabWeakNamingSurvivesLeaderCorruption) {
  const SelfStabWeakNaming proto(4);
  Rng rng(13);
  Engine engine(proto, arbitraryConfiguration(proto, 4, rng));
  RoundRobinScheduler sched(5);
  const RecoveryOutcome out = measureRecovery(
      engine, sched, FaultPlan{.corruptAgents = 2, .corruptLeader = true},
      RunLimits{5'000'000, 64}, rng);
  ASSERT_TRUE(out.initiallyConverged);
  EXPECT_TRUE(out.recovered);
  EXPECT_TRUE(out.recoveredNamed);
}

TEST(MeasureRecovery, RecoveryCostIsZeroWhenFaultIsHarmless) {
  // Corrupting zero agents: the system is still silent; recovery is free.
  const AsymmetricNaming proto(4);
  Rng rng(17);
  Engine engine(proto, Configuration{{0, 1, 2, 3}, std::nullopt});
  RandomScheduler sched(4, 23);
  const RecoveryOutcome out = measureRecovery(
      engine, sched, FaultPlan{.corruptAgents = 0, .corruptLeader = false},
      RunLimits{10000, 8}, rng);
  ASSERT_TRUE(out.initiallyConverged);
  EXPECT_TRUE(out.recovered);
  EXPECT_EQ(out.recoveryInteractions, 0u);
}

TEST(MeasureRecovery, ReportsNonConvergenceBeforeFault) {
  // Prop 13 protocol at N = 2 never converges; measureRecovery must report
  // that instead of injecting into a live system.
  const SymmetricGlobalNaming proto(3);
  Engine engine(proto, Configuration{{1, 1}, std::nullopt});
  RandomScheduler sched(2, 31);
  Rng rng(19);
  const RecoveryOutcome out = measureRecovery(
      engine, sched, FaultPlan{.corruptAgents = 1, .corruptLeader = false},
      RunLimits{2000, 16}, rng);
  EXPECT_FALSE(out.initiallyConverged);
  EXPECT_FALSE(out.recovered);
}

}  // namespace
}  // namespace ppn
