#include "sim/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "naming/asymmetric_naming.h"
#include "util/json.h"
#include "naming/selfstab_weak_naming.h"
#include "naming/symmetrizer.h"
#include "sched/deterministic_schedulers.h"
#include "sched/random_scheduler.h"
#include "sched/reducing_scheduler.h"

namespace ppn {
namespace {

TEST(Trace, RecordsStartAndSteps) {
  const AsymmetricNaming proto(3);
  Engine engine(proto, Configuration{{1, 1, 0}, std::nullopt});
  RoundRobinScheduler sched(3);
  const Trace trace = recordRun(engine, sched, 1000, 1);
  EXPECT_EQ(trace.start.mobile, (std::vector<StateId>{1, 1, 0}));
  ASSERT_GT(trace.size(), 0u);
  EXPECT_TRUE(engine.silent());
  EXPECT_EQ(trace.steps.back().after, engine.config());
}

TEST(Trace, ChangesMatchesEngineCounter) {
  const AsymmetricNaming proto(4);
  Engine engine(proto, Configuration{{2, 2, 2, 2}, std::nullopt});
  RandomScheduler sched(4, 5);
  const Trace trace = recordRun(engine, sched, 100000, 4);
  EXPECT_EQ(trace.changes(), engine.nonNullInteractions());
  EXPECT_EQ(trace.lastChangeIndex() + 1, engine.lastChangeAt());
}

TEST(Trace, AlreadySilentYieldsEmptyTrace) {
  const AsymmetricNaming proto(3);
  Engine engine(proto, Configuration{{0, 1, 2}, std::nullopt});
  RoundRobinScheduler sched(3);
  const Trace trace = recordRun(engine, sched, 1000, 1);
  EXPECT_EQ(trace.size(), 0u);
}

TEST(Trace, RenamesPerAgentCountsNameChanges) {
  const AsymmetricNaming proto(3);
  Engine engine(proto, Configuration{{1, 1}, std::nullopt});
  // Single step: (1,1) -> (1,2): agent 1 renamed once.
  RoundRobinScheduler sched(2);
  const Trace trace = recordRun(engine, sched, 100, 1);
  const auto renames = trace.renamesPerAgent(proto);
  ASSERT_EQ(renames.size(), 2u);
  EXPECT_EQ(renames[0] + renames[1], trace.changes());
}

TEST(Trace, RenamesIgnoreAuxiliaryBits) {
  // Symmetrized protocol: coin flips are not renames.
  const AsymmetricNaming inner(3);
  const SymmetrizedProtocol proto(inner);
  Engine engine(proto,
                Configuration{{proto.encode(0, false), proto.encode(1, false),
                               proto.encode(2, false)},
                              std::nullopt});
  // Tie-break steps flip coins only; run a few and count renames.
  RandomScheduler sched(3, 9);
  Trace trace;
  trace.start = engine.config();
  for (int i = 0; i < 50; ++i) {
    const Interaction it = sched.next();
    const bool changed = engine.step(it);
    trace.steps.push_back(TraceStep{it, changed, engine.config()});
  }
  const auto renames = trace.renamesPerAgent(proto);
  for (const auto r : renames) EXPECT_EQ(r, 0u);  // names already distinct
  EXPECT_GT(trace.changes(), 0u);  // but coins did flip
}

TEST(Trace, RenderShowsConfigurationsAndTruncates) {
  const AsymmetricNaming proto(3);
  Engine engine(proto, Configuration{{1, 1, 1}, std::nullopt});
  RandomScheduler sched(3, 3);
  const Trace trace = recordRun(engine, sched, 1000, 1);
  const std::string full = trace.render();
  EXPECT_NE(full.find("t=0"), std::string::npos);
  EXPECT_NE(full.find("->"), std::string::npos);
  if (trace.size() > 1) {
    const std::string truncated = trace.render(nullptr, 1);
    EXPECT_NE(truncated.find("more steps"), std::string::npos);
  }
}

TEST(Trace, RenderMaxStepsEdgeCases) {
  const AsymmetricNaming proto(3);
  Engine engine(proto, Configuration{{1, 1, 1}, std::nullopt});
  RandomScheduler sched(3, 3);
  const Trace trace = recordRun(engine, sched, 1000, 1);
  ASSERT_GT(trace.size(), 1u);

  // maxSteps == 0 renders everything, no truncation note.
  const std::string all = trace.render(nullptr, 0);
  EXPECT_EQ(all.find("more steps"), std::string::npos);
  EXPECT_NE(all.find("t=" + std::to_string(trace.size())), std::string::npos);

  // maxSteps == size is exactly "all" as well.
  EXPECT_EQ(trace.render(nullptr, trace.size()), all);

  // maxSteps > size must not read past the end or claim truncation.
  EXPECT_EQ(trace.render(nullptr, trace.size() + 10), all);

  // maxSteps < size truncates and reports the exact remainder.
  const std::string one = trace.render(nullptr, 1);
  EXPECT_NE(one.find("... (" + std::to_string(trace.size() - 1) + " more steps)"),
            std::string::npos);
}

TEST(Trace, ToJsonlEveryLineIsValidJson) {
  const AsymmetricNaming proto(3);
  Engine engine(proto, Configuration{{1, 1, 1}, std::nullopt});
  RandomScheduler sched(3, 7);
  const Trace trace = recordRun(engine, sched, 1000, 1);
  ASSERT_GT(trace.size(), 0u);

  const std::string jsonl = trace.toJsonl(&proto);
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(jsonIsValid(line)) << "line " << count << ": " << line;
    ++count;
  }
  EXPECT_EQ(count, trace.size() + 1);  // trace_start + one line per step
  EXPECT_NE(jsonl.find("\"event\":\"trace_start\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"trace_step\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"names\":["), std::string::npos);

  // Without the protocol there is no names projection.
  const std::string bare = trace.toJsonl();
  EXPECT_EQ(bare.find("\"names\""), std::string::npos);
  EXPECT_NE(bare.find("\"config\":["), std::string::npos);
}

TEST(Trace, ToJsonlEmptyTraceIsJustTheStartLine) {
  const AsymmetricNaming proto(3);
  Engine engine(proto, Configuration{{0, 1, 2}, std::nullopt});
  RoundRobinScheduler sched(3);
  const Trace trace = recordRun(engine, sched, 1000, 1);
  ASSERT_EQ(trace.size(), 0u);
  const std::string jsonl = trace.toJsonl(&proto);
  EXPECT_EQ(jsonl.find('\n'), jsonl.size() - 1);  // exactly one line
  EXPECT_TRUE(jsonIsValid(jsonl.substr(0, jsonl.size() - 1)));
}

TEST(ReducingScheduler, EnforcesTheReducedExecutionInvariant) {
  // Section 3.1: in a reduced execution, other transitions only happen when
  // there are no non-sink homonym pairs. Verify step by step.
  const SelfStabWeakNaming proto(4);
  Rng rng(13);
  Engine engine(proto, arbitraryConfiguration(proto, 4, rng));
  ReducingScheduler sched(
      engine, std::make_unique<RoundRobinScheduler>(5), /*sink=*/0);
  for (int i = 0; i < 5000; ++i) {
    const auto mustReduce = sched.findReduciblePair();
    const Interaction it = sched.next();
    if (mustReduce.has_value()) {
      // The scheduled pair is a non-sink homonym pair.
      EXPECT_EQ(engine.config().mobile[it.initiator],
                engine.config().mobile[it.responder]);
      EXPECT_NE(engine.config().mobile[it.initiator], 0u);
    }
    engine.step(it);
    if (engine.silent()) break;
  }
}

TEST(ReducingScheduler, ReducedExecutionsStillConverge) {
  // Corollary 7: forcing reductions does not prevent convergence.
  const SelfStabWeakNaming proto(5);
  Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    Engine engine(proto, arbitraryConfiguration(proto, 5, rng));
    ReducingScheduler sched(
        engine, std::make_unique<RoundRobinScheduler>(6), /*sink=*/0);
    const Trace trace = recordRun(engine, sched, 5'000'000, 32);
    (void)trace;
    ASSERT_TRUE(engine.silent()) << "trial " << trial;
    EXPECT_TRUE(engine.namingSolved());
  }
}

TEST(ReducingScheduler, NoHomonymsMeansInnerSchedule) {
  const AsymmetricNaming proto(3);
  Engine engine(proto, Configuration{{0, 1, 2}, std::nullopt});
  ReducingScheduler sched(
      engine, std::make_unique<RoundRobinScheduler>(3), /*sink=*/0);
  RoundRobinScheduler reference(3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sched.next(), reference.next());
  }
}

}  // namespace
}  // namespace ppn
