#include "campaign/artifact.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

namespace ppn {
namespace {

std::string freshDir(const std::string& tag) {
  const auto base = std::filesystem::temp_directory_path() /
                    ("ppn_artifact_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);
  return base.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << content;
}

TEST(Crc32, StandardCheckValue) {
  // The canonical CRC-32 (reflected, 0xEDB88320) check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
}

TEST(Artifact, WriteReadRoundTrip) {
  const std::string dir = freshDir("roundtrip");
  const std::string path = dir + "/a.jsonl";
  const std::vector<std::string> lines = {"{\"unit\":0}", "{\"unit\":1}"};
  writeJsonlArtifact(path, lines);
  const ArtifactReadResult r = readJsonlArtifact(path);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.lines, lines);
  // No .tmp residue: the write is publish-by-rename.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(Artifact, EmptyLineListIsAValidArtifact) {
  const std::string dir = freshDir("empty");
  const std::string path = dir + "/a.jsonl";
  writeJsonlArtifact(path, {});
  const ArtifactReadResult r = readJsonlArtifact(path);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.lines.empty());
}

TEST(Artifact, MissingFileIsAnError) {
  const ArtifactReadResult r = readJsonlArtifact(freshDir("missing") + "/nope");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("cannot open"), std::string::npos);
}

TEST(Artifact, FlippedBodyByteFailsTheChecksum) {
  const std::string dir = freshDir("tamper");
  const std::string path = dir + "/a.jsonl";
  writeJsonlArtifact(path, {"{\"unit\":0,\"status\":\"ok\"}"});
  std::string content = slurp(path);
  const std::size_t at = content.find("ok");
  ASSERT_NE(at, std::string::npos);
  content[at] = 'K';  // same length, different bytes
  spit(path, content);
  const ArtifactReadResult r = readJsonlArtifact(path);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("checksum"), std::string::npos);
  EXPECT_TRUE(r.lines.empty());
}

TEST(Artifact, DroppedLineFailsTheLineCount) {
  const std::string dir = freshDir("dropline");
  const std::string path = dir + "/a.jsonl";
  writeJsonlArtifact(path, {"{\"unit\":0}", "{\"unit\":1}"});
  std::string content = slurp(path);
  // Remove the first line entirely (footer still present and well-formed).
  content.erase(0, content.find('\n') + 1);
  spit(path, content);
  const ArtifactReadResult r = readJsonlArtifact(path);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("footer says"), std::string::npos);
}

TEST(Artifact, TruncationIsDetected) {
  const std::string dir = freshDir("trunc");
  const std::string path = dir + "/a.jsonl";
  writeJsonlArtifact(path, {"{\"unit\":0}"});
  const std::string content = slurp(path);
  // Cut mid-footer: no terminating newline.
  spit(path, content.substr(0, content.size() - 5));
  EXPECT_FALSE(readJsonlArtifact(path).ok());
  // Cut the footer line off entirely: a body line is no artifact_footer.
  spit(path, content.substr(0, content.find('\n') + 1));
  const ArtifactReadResult r = readJsonlArtifact(path);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("artifact_footer"), std::string::npos);
}

TEST(Artifact, AtomicWriteReplacesExistingFile) {
  const std::string dir = freshDir("replace");
  const std::string path = dir + "/f.txt";
  writeFileAtomic(path, "first");
  writeFileAtomic(path, "second");
  EXPECT_EQ(slurp(path), "second");
}

}  // namespace
}  // namespace ppn
