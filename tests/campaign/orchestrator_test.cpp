#include "campaign/orchestrator.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "campaign/artifact.h"
#include "campaign/merge.h"
#include "faults/certify.h"
#include "obs/campaign_health.h"
#include "obs/campaign_trace.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "util/json.h"

namespace ppn {
namespace {

std::string freshDir(const std::string& tag) {
  const auto base = std::filesystem::temp_directory_path() /
                    ("ppn_orch_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(base);
  return base.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

CampaignManifest tinyManifest() {
  CampaignManifest m;
  m.certify.protocols = {"asymmetric"};
  m.certify.populations = {4};
  m.certify.regimes = {FaultRegime::kPoissonTransient, FaultRegime::kChurn};
  m.certify.schedulers = {SchedulerKind::kRandom};
  m.certify.runs = 2;
  m.certify.faultWindow = 500;
  m.certify.threads = 1;
  m.shards = 2;
  return m;
}

OrchestratorOptions testOptions() {
  OrchestratorOptions options;
  options.workers = 2;
  options.backoffMillis = 5;
  options.pollMillis = 5;
  options.installSignalHandlers = false;  // in-process test runs
  return options;
}

TEST(Orchestrator, RunsToCompletionAndMergeMatchesInProcessSweep) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("ok");
  const OrchestratorOutcome outcome =
      orchestrateCampaign(m, dir, testOptions());
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.completedUnits, outcome.totalUnits);
  EXPECT_EQ(outcome.failedUnits, 0u);
  EXPECT_EQ(outcome.shardRestarts, 0u);

  const MergeSummary summary = mergeCampaign(dir);
  EXPECT_TRUE(summary.clean());
  EXPECT_TRUE(summary.robustnessCertified);

  // The rebuilt table is byte-identical to the in-process sweep.
  CertifySpec spec = m.certify;
  spec.observer = nullptr;
  EXPECT_EQ(slurp(mergedRobustnessTablePath(dir)),
            certifyRecovery(spec).toJson() + "\n");
}

TEST(Orchestrator, CrashingUnitIsRetriedThenBlacklisted) {
  CampaignManifest m = tinyManifest();
  m.debugCrashUnit = 1;
  const std::string dir = freshDir("crash");
  OrchestratorOptions options = testOptions();
  options.maxAttempts = 2;
  const OrchestratorOutcome outcome = orchestrateCampaign(m, dir, options);
  EXPECT_FALSE(outcome.ok());
  EXPECT_FALSE(outcome.interrupted);
  EXPECT_EQ(outcome.failedUnits, 1u);
  EXPECT_EQ(outcome.completedUnits, outcome.totalUnits - 1);
  EXPECT_EQ(outcome.shardRestarts, 2u);  // two crashes, then the failed line

  // The campaign degrades instead of dying: the merge covers every unit and
  // marks the table uncertified.
  const MergeSummary summary = mergeCampaign(dir);
  EXPECT_EQ(summary.failedUnits, std::vector<std::uint64_t>{1});
  EXPECT_FALSE(summary.robustnessCertified);
  const auto table = jsonParse(slurp(mergedRobustnessTablePath(dir)));
  ASSERT_TRUE(table.has_value());
  EXPECT_FALSE(table->find("certified")->asBool());
  EXPECT_EQ(table->find("cells")->items().size(), outcome.totalUnits);
}

TEST(Orchestrator, HungShardIsShotAndChargedToTheRunningUnit) {
  CampaignManifest m = tinyManifest();
  m.debugHangUnit = 0;
  const std::string dir = freshDir("hang");
  OrchestratorOptions options = testOptions();
  options.maxAttempts = 1;  // first stall blacklists immediately
  options.stallTimeoutMillis = 250;
  const OrchestratorOutcome outcome = orchestrateCampaign(m, dir, options);
  EXPECT_EQ(outcome.failedUnits, 1u);
  EXPECT_EQ(outcome.completedUnits, outcome.totalUnits - 1);
  EXPECT_EQ(mergeCampaign(dir).failedUnits, std::vector<std::uint64_t>{0});
}

TEST(Orchestrator, ResumeOfACompletedCampaignIsIdempotent) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("resume_done");
  ASSERT_TRUE(orchestrateCampaign(m, dir, testOptions()).ok());
  const std::string before = slurp(shardFinalPath(dir, 0));

  OrchestratorOptions options = testOptions();
  options.resume = true;
  const OrchestratorOutcome again = orchestrateCampaign(m, dir, options);
  EXPECT_TRUE(again.ok());
  EXPECT_EQ(again.completedUnits, again.totalUnits);
  EXPECT_EQ(again.shardRestarts, 0u);
  EXPECT_EQ(slurp(shardFinalPath(dir, 0)), before);
}

TEST(Orchestrator, RefusesToReuseADirectoryWithoutResume) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("reuse");
  ASSERT_TRUE(orchestrateCampaign(m, dir, testOptions()).ok());
  EXPECT_THROW(orchestrateCampaign(m, dir, testOptions()), std::runtime_error);
}

TEST(Orchestrator, ResumeRefusesAMismatchedManifest) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("mismatch");
  ASSERT_TRUE(orchestrateCampaign(m, dir, testOptions()).ok());
  CampaignManifest other = m;
  other.certify.seed ^= 1;
  OrchestratorOptions options = testOptions();
  options.resume = true;
  EXPECT_THROW(orchestrateCampaign(other, dir, options), std::runtime_error);
}

TEST(Orchestrator, EmitsAWellFormedEventStream) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("events");
  std::filesystem::create_directories(dir);
  const std::string eventsPath = dir + "/events.jsonl";
  OrchestratorOptions options = testOptions();
  OrchestratorOutcome outcome;
  {
    JsonlEventSink sink(eventsPath);
    options.sink = &sink;
    outcome = orchestrateCampaign(m, dir, options);
    ASSERT_TRUE(sink.close());
  }
  ASSERT_TRUE(outcome.ok());
  const JsonlReadResult events = readJsonlTolerant(eventsPath);
  ASSERT_FALSE(events.lines.empty());
  EXPECT_EQ(jsonParse(events.lines.front())->find("event")->asString(),
            "campaign_start");
  EXPECT_EQ(jsonParse(events.lines.back())->find("event")->asString(),
            "campaign_end");
  std::uint64_t unitEnds = 0;
  for (const std::string& line : events.lines) {
    const auto v = jsonParse(line);
    ASSERT_TRUE(v.has_value()) << line;
    if (v->find("event")->asString() == "unit_end") ++unitEnds;
  }
  EXPECT_EQ(unitEnds, outcome.totalUnits);
}

TEST(Orchestrator, SamplesShardResourcesIntoStreamAndMetrics) {
  CampaignManifest m = tinyManifest();
  // Enough work (~60ms per shard) that the baseline sample right after the
  // spawn pass catches a LIVE child even when this test runs under load —
  // a shard that already exited is a zombie and is (correctly) not sampled.
  m.certify.runs = 1'000;
  const std::string dir = freshDir("resources");
  std::filesystem::create_directories(dir);
  const std::string eventsPath = dir + "/events.jsonl";
  MetricsRegistry metrics;
  OrchestratorOptions options = testOptions();
  options.resourceSampleMillis = 1;  // every poll samples
  options.metrics = &metrics;
  {
    JsonlEventSink sink(eventsPath);
    options.sink = &sink;
    ASSERT_TRUE(orchestrateCampaign(m, dir, options).ok());
    ASSERT_TRUE(sink.close());
  }

  std::uint64_t samples = 0;
  for (const std::string& line : readJsonlTolerant(eventsPath).lines) {
    const auto v = jsonParse(line);
    ASSERT_TRUE(v.has_value()) << line;
    if (v->find("event")->asString() != "resource_sample") continue;
    ++samples;
    EXPECT_LT(*v->find("shard")->asU64(), m.shards) << line;
    EXPECT_GT(*v->find("pid")->asU64(), 0u) << line;
    EXPECT_GT(*v->find("rss_bytes")->asU64(), 0u) << line;
    EXPECT_NE(v->find("cpu_permille"), nullptr) << line;
    EXPECT_NE(v->find("write_bytes"), nullptr) << line;
  }
  ASSERT_GT(samples, 0u);  // the baseline sample fires on first sight

  const MetricsSnapshot snap = metrics.snapshot();
  const std::uint64_t* taken = snap.counterValue("resource_samples");
  ASSERT_NE(taken, nullptr);
  EXPECT_EQ(*taken, samples);
  const std::int64_t* rss = snap.gaugeValue("campaign_shard0_rss_bytes");
  ASSERT_NE(rss, nullptr);
  EXPECT_GT(*rss, 0);
  EXPECT_NE(snap.gaugeValue("campaign_shard0_cpu_permille"), nullptr);
}

TEST(Orchestrator, ShardEventStreamsFeedTraceAndHealth) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("streams");
  std::filesystem::create_directories(dir);
  OrchestratorOptions options = testOptions();
  {
    JsonlEventSink sink(dir + "/events.jsonl");
    options.sink = &sink;
    ASSERT_TRUE(orchestrateCampaign(m, dir, options).ok());
    ASSERT_TRUE(sink.close());
  }
  // Every shard wrote its own event stream alongside the checkpoint.
  for (std::uint32_t shard = 0; shard < m.shards; ++shard) {
    EXPECT_TRUE(std::filesystem::exists(shardEventsPath(dir, shard)))
        << shard;
  }
  const CampaignTraceInputs inputs = discoverCampaignTraceInputs(dir);
  EXPECT_FALSE(inputs.orchestratorLive);
  ASSERT_EQ(inputs.shardStreams.size(), m.shards);

  ChromeTraceWriter writer;
  const CampaignTraceStats stats = assembleCampaignTrace(inputs, writer);
  EXPECT_GT(stats.orchestratorLines, 0u);
  EXPECT_GT(stats.shardLines, 0u);
  EXPECT_GT(stats.slices, 0u);
  EXPECT_EQ(stats.shardPids.size(), m.shards);  // two real worker pids

  const CampaignHealth health = loadCampaignHealth(dir);
  EXPECT_TRUE(health.finished);
  EXPECT_FALSE(health.interrupted);
  EXPECT_EQ(health.unitsCompleted + health.unitsFailed, health.totalUnits);

  // The merge publishes the health report, deterministically: merging the
  // same directory twice reproduces the artifact byte-for-byte.
  ASSERT_TRUE(mergeCampaign(dir).healthWritten);
  const std::string first = slurp(campaignHealthPath(dir));
  EXPECT_FALSE(first.empty());
  ASSERT_TRUE(mergeCampaign(dir).healthWritten);
  EXPECT_EQ(slurp(campaignHealthPath(dir)), first);
}

TEST(Orchestrator, ResumeImmediatelyThenHealthHasNoDivisionArtifacts) {
  // A completed campaign resumed on the spot rewrites the stream with a
  // near-zero elapsed window and zero executed units — the health math must
  // yield quiet zeroes, not inf/NaN (safeRate/safeEta guards).
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("resume_health");
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(orchestrateCampaign(m, dir, testOptions()).ok());

  OrchestratorOptions options = testOptions();
  options.resume = true;
  {
    JsonlEventSink sink(dir + "/events.jsonl");
    options.sink = &sink;
    ASSERT_TRUE(orchestrateCampaign(m, dir, options).ok());
    ASSERT_TRUE(sink.close());
  }
  const CampaignHealth health = loadCampaignHealth(dir);
  EXPECT_TRUE(health.finished);
  EXPECT_EQ(health.unitsCompleted, 0u);  // nothing re-executed
  EXPECT_EQ(health.unitsPerSec, 0.0);
  for (const ShardHealth& s : health.shards) {
    EXPECT_GE(s.unitsPerSec, 0.0);
  }
  const std::string json = campaignHealthJson(health);
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

TEST(Orchestrator, HealthFlagsTheHangShardAsStraggler) {
  // Six units striped over two shards; unit 0 hangs, so shard 0's latency
  // mean carries the whole stall-retry-blacklist saga (>= 3 stall timeouts)
  // while shard 1 cruises. The cutoff parameters are chosen so the verdict
  // is timing-robust: shard 0's mean is at least 400ms by construction,
  // healthy units finish well inside one stall window.
  CampaignManifest m = tinyManifest();
  m.certify.populations = {4, 5, 6};  // 6 units, shard 0 = {0, 2, 4}
  // Healthy units must span several 5ms polls so the orchestrator observes
  // their unit_start and they contribute (small) latency samples — the
  // campaign median the straggler cutoff is measured against. A unit runs
  // ~0.06ms per certify run here, so 400 runs ≈ 25ms per unit.
  m.certify.runs = 400;
  m.debugHangUnit = 0;
  const std::string dir = freshDir("hang_health");
  std::filesystem::create_directories(dir);
  OrchestratorOptions options = testOptions();
  options.maxAttempts = 3;
  options.stallTimeoutMillis = 400;
  {
    JsonlEventSink sink(dir + "/events.jsonl");
    options.sink = &sink;
    orchestrateCampaign(m, dir, options);
    ASSERT_TRUE(sink.close());
  }
  CampaignHealthOptions healthOptions;
  healthOptions.stragglerFactor = 1.5;
  healthOptions.stragglerSlackMillis = 50.0;
  healthOptions.retryStormThreshold = 2;
  const CampaignHealth health = loadCampaignHealth(dir, healthOptions);
  // Attempts 1 and 2 stall and retry, attempt 3 stalls and blacklists:
  // two retries (both stalls), three SIGKILLs.
  EXPECT_GE(health.stalls, 2u);
  EXPECT_GE(health.kills, 3u);
  ASSERT_EQ(health.shards.size(), 2u);
  EXPECT_TRUE(health.shards[0].straggler);
  EXPECT_TRUE(health.shards[0].retryStorm);
  EXPECT_GT(health.shards[0].meanUnitLatencyMillis,
            health.medianUnitLatencyMillis);
  ASSERT_FALSE(health.stragglers.empty());
  EXPECT_EQ(health.stragglers.front(), 0u);
}

TEST(Merge, RefusesATamperedShardArtifact) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("tampered");
  ASSERT_TRUE(orchestrateCampaign(m, dir, testOptions()).ok());
  const std::string path = shardFinalPath(dir, 0);
  std::string content = slurp(path);
  const std::size_t at = content.find("\"ok\"");
  ASSERT_NE(at, std::string::npos);
  content[at + 1] = 'O';
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << content;
  }
  EXPECT_THROW(mergeCampaign(dir), std::runtime_error);
}

TEST(Merge, RefusesAnIncompleteCampaign) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("incomplete");
  ASSERT_TRUE(orchestrateCampaign(m, dir, testOptions()).ok());
  std::filesystem::remove(shardFinalPath(dir, 1));
  EXPECT_THROW(mergeCampaign(dir), std::runtime_error);
}

}  // namespace
}  // namespace ppn
