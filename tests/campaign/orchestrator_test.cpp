#include "campaign/orchestrator.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "campaign/artifact.h"
#include "campaign/merge.h"
#include "faults/certify.h"
#include "obs/events.h"
#include "util/json.h"

namespace ppn {
namespace {

std::string freshDir(const std::string& tag) {
  const auto base = std::filesystem::temp_directory_path() /
                    ("ppn_orch_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(base);
  return base.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

CampaignManifest tinyManifest() {
  CampaignManifest m;
  m.certify.protocols = {"asymmetric"};
  m.certify.populations = {4};
  m.certify.regimes = {FaultRegime::kPoissonTransient, FaultRegime::kChurn};
  m.certify.schedulers = {SchedulerKind::kRandom};
  m.certify.runs = 2;
  m.certify.faultWindow = 500;
  m.certify.threads = 1;
  m.shards = 2;
  return m;
}

OrchestratorOptions testOptions() {
  OrchestratorOptions options;
  options.workers = 2;
  options.backoffMillis = 5;
  options.pollMillis = 5;
  options.installSignalHandlers = false;  // in-process test runs
  return options;
}

TEST(Orchestrator, RunsToCompletionAndMergeMatchesInProcessSweep) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("ok");
  const OrchestratorOutcome outcome =
      orchestrateCampaign(m, dir, testOptions());
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.completedUnits, outcome.totalUnits);
  EXPECT_EQ(outcome.failedUnits, 0u);
  EXPECT_EQ(outcome.shardRestarts, 0u);

  const MergeSummary summary = mergeCampaign(dir);
  EXPECT_TRUE(summary.clean());
  EXPECT_TRUE(summary.robustnessCertified);

  // The rebuilt table is byte-identical to the in-process sweep.
  CertifySpec spec = m.certify;
  spec.observer = nullptr;
  EXPECT_EQ(slurp(mergedRobustnessTablePath(dir)),
            certifyRecovery(spec).toJson() + "\n");
}

TEST(Orchestrator, CrashingUnitIsRetriedThenBlacklisted) {
  CampaignManifest m = tinyManifest();
  m.debugCrashUnit = 1;
  const std::string dir = freshDir("crash");
  OrchestratorOptions options = testOptions();
  options.maxAttempts = 2;
  const OrchestratorOutcome outcome = orchestrateCampaign(m, dir, options);
  EXPECT_FALSE(outcome.ok());
  EXPECT_FALSE(outcome.interrupted);
  EXPECT_EQ(outcome.failedUnits, 1u);
  EXPECT_EQ(outcome.completedUnits, outcome.totalUnits - 1);
  EXPECT_EQ(outcome.shardRestarts, 2u);  // two crashes, then the failed line

  // The campaign degrades instead of dying: the merge covers every unit and
  // marks the table uncertified.
  const MergeSummary summary = mergeCampaign(dir);
  EXPECT_EQ(summary.failedUnits, std::vector<std::uint64_t>{1});
  EXPECT_FALSE(summary.robustnessCertified);
  const auto table = jsonParse(slurp(mergedRobustnessTablePath(dir)));
  ASSERT_TRUE(table.has_value());
  EXPECT_FALSE(table->find("certified")->asBool());
  EXPECT_EQ(table->find("cells")->items().size(), outcome.totalUnits);
}

TEST(Orchestrator, HungShardIsShotAndChargedToTheRunningUnit) {
  CampaignManifest m = tinyManifest();
  m.debugHangUnit = 0;
  const std::string dir = freshDir("hang");
  OrchestratorOptions options = testOptions();
  options.maxAttempts = 1;  // first stall blacklists immediately
  options.stallTimeoutMillis = 250;
  const OrchestratorOutcome outcome = orchestrateCampaign(m, dir, options);
  EXPECT_EQ(outcome.failedUnits, 1u);
  EXPECT_EQ(outcome.completedUnits, outcome.totalUnits - 1);
  EXPECT_EQ(mergeCampaign(dir).failedUnits, std::vector<std::uint64_t>{0});
}

TEST(Orchestrator, ResumeOfACompletedCampaignIsIdempotent) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("resume_done");
  ASSERT_TRUE(orchestrateCampaign(m, dir, testOptions()).ok());
  const std::string before = slurp(shardFinalPath(dir, 0));

  OrchestratorOptions options = testOptions();
  options.resume = true;
  const OrchestratorOutcome again = orchestrateCampaign(m, dir, options);
  EXPECT_TRUE(again.ok());
  EXPECT_EQ(again.completedUnits, again.totalUnits);
  EXPECT_EQ(again.shardRestarts, 0u);
  EXPECT_EQ(slurp(shardFinalPath(dir, 0)), before);
}

TEST(Orchestrator, RefusesToReuseADirectoryWithoutResume) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("reuse");
  ASSERT_TRUE(orchestrateCampaign(m, dir, testOptions()).ok());
  EXPECT_THROW(orchestrateCampaign(m, dir, testOptions()), std::runtime_error);
}

TEST(Orchestrator, ResumeRefusesAMismatchedManifest) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("mismatch");
  ASSERT_TRUE(orchestrateCampaign(m, dir, testOptions()).ok());
  CampaignManifest other = m;
  other.certify.seed ^= 1;
  OrchestratorOptions options = testOptions();
  options.resume = true;
  EXPECT_THROW(orchestrateCampaign(other, dir, options), std::runtime_error);
}

TEST(Orchestrator, EmitsAWellFormedEventStream) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("events");
  std::filesystem::create_directories(dir);
  const std::string eventsPath = dir + "/events.jsonl";
  OrchestratorOptions options = testOptions();
  OrchestratorOutcome outcome;
  {
    JsonlEventSink sink(eventsPath);
    options.sink = &sink;
    outcome = orchestrateCampaign(m, dir, options);
    ASSERT_TRUE(sink.close());
  }
  ASSERT_TRUE(outcome.ok());
  const JsonlReadResult events = readJsonlTolerant(eventsPath);
  ASSERT_FALSE(events.lines.empty());
  EXPECT_EQ(jsonParse(events.lines.front())->find("event")->asString(),
            "campaign_start");
  EXPECT_EQ(jsonParse(events.lines.back())->find("event")->asString(),
            "campaign_end");
  std::uint64_t unitEnds = 0;
  for (const std::string& line : events.lines) {
    const auto v = jsonParse(line);
    ASSERT_TRUE(v.has_value()) << line;
    if (v->find("event")->asString() == "unit_end") ++unitEnds;
  }
  EXPECT_EQ(unitEnds, outcome.totalUnits);
}

TEST(Merge, RefusesATamperedShardArtifact) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("tampered");
  ASSERT_TRUE(orchestrateCampaign(m, dir, testOptions()).ok());
  const std::string path = shardFinalPath(dir, 0);
  std::string content = slurp(path);
  const std::size_t at = content.find("\"ok\"");
  ASSERT_NE(at, std::string::npos);
  content[at + 1] = 'O';
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << content;
  }
  EXPECT_THROW(mergeCampaign(dir), std::runtime_error);
}

TEST(Merge, RefusesAnIncompleteCampaign) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("incomplete");
  ASSERT_TRUE(orchestrateCampaign(m, dir, testOptions()).ok());
  std::filesystem::remove(shardFinalPath(dir, 1));
  EXPECT_THROW(mergeCampaign(dir), std::runtime_error);
}

}  // namespace
}  // namespace ppn
