#include "campaign/shard_runner.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "campaign/artifact.h"
#include "util/json.h"

namespace ppn {
namespace {

std::string freshDir(const std::string& tag) {
  const auto base = std::filesystem::temp_directory_path() /
                    ("ppn_shard_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);
  const std::string dir = base.string();
  ensureCampaignLayout(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Tiny but real grid: 1 protocol x 1 population x 2 regimes (+1 skipped-free
/// scheduler) = 2 robustness units, each running 2 short campaigns.
CampaignManifest tinyManifest() {
  CampaignManifest m;
  m.certify.protocols = {"asymmetric"};
  m.certify.populations = {4};
  m.certify.regimes = {FaultRegime::kPoissonTransient, FaultRegime::kChurn};
  m.certify.schedulers = {SchedulerKind::kRandom};
  m.certify.runs = 2;
  m.certify.faultWindow = 500;
  m.certify.threads = 1;
  m.shards = 1;
  return m;
}

TEST(ShardRunner, CompletesPublishesAndCleansUp) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("complete");
  ASSERT_EQ(runShard(m, dir, ShardOptions{}), 0);
  const ArtifactReadResult artifact = readJsonlArtifact(shardFinalPath(dir, 0));
  ASSERT_TRUE(artifact.ok()) << artifact.error;
  EXPECT_EQ(artifact.lines.size(), expandManifest(m).size());
  EXPECT_FALSE(std::filesystem::exists(shardPartialPath(dir, 0)));
  EXPECT_TRUE(std::filesystem::exists(shardMetricsPath(dir, 0)));
  for (std::size_t i = 0; i < artifact.lines.size(); ++i) {
    const auto v = jsonParse(artifact.lines[i]);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->find("unit")->asU64(), std::uint64_t{i});
    EXPECT_EQ(v->find("status")->asString(), "ok");
  }
}

TEST(ShardRunner, RerunIsIdempotent) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("idempotent");
  ASSERT_EQ(runShard(m, dir, ShardOptions{}), 0);
  const std::string before = slurp(shardFinalPath(dir, 0));
  ASSERT_EQ(runShard(m, dir, ShardOptions{}), 0);
  EXPECT_EQ(slurp(shardFinalPath(dir, 0)), before);
}

TEST(ShardRunner, ResumesFromTornPartialBitIdentically) {
  const CampaignManifest m = tinyManifest();
  const std::string clean = freshDir("torn_clean");
  ASSERT_EQ(runShard(m, clean, ShardOptions{}), 0);
  const ArtifactReadResult expected =
      readJsonlArtifact(shardFinalPath(clean, 0));
  ASSERT_TRUE(expected.ok());
  ASSERT_GE(expected.lines.size(), 2u);

  // Simulate a crash mid-write of the second unit: the checkpoint holds unit
  // 0's full line plus a torn fragment with no terminating newline.
  const std::string dir = freshDir("torn");
  {
    std::ofstream partial(shardPartialPath(dir, 0), std::ios::binary);
    partial << expected.lines[0] << '\n' << "{\"unit\":1,\"ki";
  }
  ASSERT_EQ(runShard(m, dir, ShardOptions{}), 0);
  EXPECT_EQ(slurp(shardFinalPath(dir, 0)), slurp(shardFinalPath(clean, 0)));
}

TEST(ShardRunner, DiscardsInteriorCorruptCheckpointAndRecomputes) {
  const CampaignManifest m = tinyManifest();
  const std::string clean = freshDir("corrupt_clean");
  ASSERT_EQ(runShard(m, clean, ShardOptions{}), 0);

  const std::string dir = freshDir("corrupt");
  {
    std::ofstream partial(shardPartialPath(dir, 0), std::ios::binary);
    partial << "@@not json@@\n{\"unit\":1,\"status\":\"ok\"}\n";
  }
  ASSERT_EQ(runShard(m, dir, ShardOptions{}), 0);
  // Unit results are deterministic, so recomputation converges to the same
  // bytes an untouched shard produces — the poisoned line never survives.
  EXPECT_EQ(slurp(shardFinalPath(dir, 0)), slurp(shardFinalPath(clean, 0)));
}

TEST(ShardRunner, CheckpointLinesWithoutUnitIdsAreDiscarded) {
  const CampaignManifest m = tinyManifest();
  const std::string clean = freshDir("noid_clean");
  ASSERT_EQ(runShard(m, clean, ShardOptions{}), 0);

  const std::string dir = freshDir("noid");
  {
    std::ofstream partial(shardPartialPath(dir, 0), std::ios::binary);
    partial << "{\"event\":\"not_a_unit\"}\n";
  }
  ASSERT_EQ(runShard(m, dir, ShardOptions{}), 0);
  EXPECT_EQ(slurp(shardFinalPath(dir, 0)), slurp(shardFinalPath(clean, 0)));
}

TEST(ShardRunner, BlacklistedUnitDegradesToAFailedLine) {
  const CampaignManifest m = tinyManifest();
  const std::string dir = freshDir("blacklist");
  ShardOptions options;
  options.failedUnits = {1};
  ASSERT_EQ(runShard(m, dir, options), 0);
  const ArtifactReadResult artifact = readJsonlArtifact(shardFinalPath(dir, 0));
  ASSERT_TRUE(artifact.ok());
  const auto v = jsonParse(artifact.lines[1]);
  EXPECT_EQ(v->find("status")->asString(), "failed");
  EXPECT_EQ(v->find("reason")->asString(), "retries exhausted");
  EXPECT_EQ(jsonParse(artifact.lines[0])->find("status")->asString(), "ok");
}

TEST(ShardRunner, ExecuteWorkUnitIsDeterministic) {
  const CampaignManifest m = tinyManifest();
  const auto units = expandManifest(m);
  ASSERT_FALSE(units.empty());
  EXPECT_EQ(executeWorkUnit(m, units[0]), executeWorkUnit(m, units[0]));
}

}  // namespace
}  // namespace ppn
