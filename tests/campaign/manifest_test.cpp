#include "campaign/manifest.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "analysis/table1.h"

namespace ppn {
namespace {

CampaignManifest sampleManifest() {
  CampaignManifest m;
  m.name = "sample";
  m.certify.protocols = {"asymmetric", "symmetric-global"};
  m.certify.populations = {4};
  m.certify.regimes = {FaultRegime::kPoissonTransient, FaultRegime::kChurn};
  m.certify.schedulers = {SchedulerKind::kRandom};
  m.certify.runs = 3;
  m.certify.seed = 99;
  m.certify.faultWindow = 1'000;
  m.shards = 3;
  m.table1P = 3;
  return m;
}

TEST(Manifest, JsonRoundTripIsBitExact) {
  const CampaignManifest m = sampleManifest();
  const std::string json = manifestToJson(m);
  const CampaignManifest back = parseCampaignManifest(json);
  // Canonical form: serializing the parse reproduces the exact bytes (this is
  // what the orchestrator's resume-identity check relies on).
  EXPECT_EQ(manifestToJson(back), json);
}

TEST(Manifest, DebugHooksSurviveTheRoundTrip) {
  CampaignManifest m = sampleManifest();
  m.debugCrashUnit = 2;
  m.debugHangUnit = 5;
  const CampaignManifest back = parseCampaignManifest(manifestToJson(m));
  EXPECT_EQ(back.debugCrashUnit, std::optional<std::uint64_t>{2});
  EXPECT_EQ(back.debugHangUnit, std::optional<std::uint64_t>{5});
}

TEST(Manifest, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(parseCampaignManifest("{\"kind\":\"ppn-campaign-manifest\","
                                     "\"sards\":2}"),
               std::runtime_error);
  EXPECT_THROW(parseCampaignManifest("{\"name\":\"x\"}"), std::runtime_error);
  EXPECT_THROW(parseCampaignManifest("{\"kind\":\"other\"}"),
               std::runtime_error);
  EXPECT_THROW(parseCampaignManifest("{\"kind\":\"ppn-campaign-manifest\","
                                     "\"shards\":0}"),
               std::runtime_error);
  EXPECT_THROW(parseCampaignManifest("{\"kind\":\"ppn-campaign-manifest\","
                                     "\"runs\":0}"),
               std::runtime_error);
  EXPECT_THROW(parseCampaignManifest("{\"kind\":\"ppn-campaign-manifest\","
                                     "\"table1P\":7}"),
               std::runtime_error);
  EXPECT_THROW(parseCampaignManifest("not json"), std::runtime_error);
}

TEST(Manifest, ExpansionMatchesThePlanAndAppendsTable1) {
  const CampaignManifest m = sampleManifest();
  const auto units = expandManifest(m);
  const auto plans = planRobustnessCells(m.certify);
  ASSERT_EQ(units.size(), plans.size() + table1CellCount());
  std::uint64_t expectedRunIdBase = 0;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    EXPECT_EQ(units[i].id, i);
    EXPECT_EQ(units[i].kind, WorkUnit::Kind::kRobustness);
    EXPECT_EQ(units[i].plan.protocol, plans[i].protocol);
    EXPECT_EQ(units[i].plan.skipped, plans[i].skipped);
    // runIdBase advances by `runs` only for executed cells — the exact
    // bookkeeping certifyRecovery uses, so event run-ids line up.
    EXPECT_EQ(units[i].runIdBase, expectedRunIdBase);
    if (!plans[i].skipped) expectedRunIdBase += m.certify.runs;
  }
  for (std::size_t i = plans.size(); i < units.size(); ++i) {
    EXPECT_EQ(units[i].kind, WorkUnit::Kind::kTable1);
    EXPECT_EQ(units[i].table1Index,
              static_cast<std::uint32_t>(i - plans.size()));
  }
}

TEST(Manifest, ExpansionIsDeterministic) {
  const CampaignManifest m = sampleManifest();
  const auto a = expandManifest(m);
  const auto b = expandManifest(m);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].runIdBase, b[i].runIdBase);
    EXPECT_EQ(a[i].plan.protocol, b[i].plan.protocol);
  }
}

TEST(Manifest, ShardStripingCoversEveryUnit) {
  const CampaignManifest m = sampleManifest();
  for (const WorkUnit& unit : expandManifest(m)) {
    EXPECT_LT(unitShard(m, unit.id), m.shards);
    EXPECT_EQ(unitShard(m, unit.id), unit.id % m.shards);
  }
}

}  // namespace
}  // namespace ppn
