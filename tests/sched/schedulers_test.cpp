#include <gtest/gtest.h>

#include <map>
#include <set>

#include "analysis/explore.h"
#include "sched/adversary.h"
#include "sched/deterministic_schedulers.h"
#include "sched/random_scheduler.h"

namespace ppn {
namespace {

std::set<std::pair<std::uint32_t, std::uint32_t>> unorderedPairs(
    Scheduler& sched, std::uint64_t draws) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (std::uint64_t i = 0; i < draws; ++i) {
    const Interaction it = sched.next();
    EXPECT_NE(it.initiator, it.responder);
    seen.insert({std::min(it.initiator, it.responder),
                 std::max(it.initiator, it.responder)});
  }
  return seen;
}

TEST(RandomScheduler, CoversAllPairsQuickly) {
  RandomScheduler sched(6, 42);
  const auto seen = unorderedPairs(sched, 500);
  EXPECT_EQ(seen.size(), numPairs(6));
}

TEST(RandomScheduler, RoughlyUniformOverOrderedPairs) {
  RandomScheduler sched(4, 7);
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> counts;
  constexpr int kDraws = 120000;  // 12 ordered pairs -> 10000 each expected
  for (int i = 0; i < kDraws; ++i) {
    const Interaction it = sched.next();
    ++counts[{it.initiator, it.responder}];
  }
  ASSERT_EQ(counts.size(), 12u);
  for (const auto& [pair, count] : counts) {
    EXPECT_GT(count, 9300) << pair.first << "," << pair.second;
    EXPECT_LT(count, 10700) << pair.first << "," << pair.second;
  }
}

TEST(RandomScheduler, DeterministicPerSeed) {
  RandomScheduler a(5, 99), b(5, 99);
  for (int i = 0; i < 100; ++i) {
    const Interaction x = a.next(), y = b.next();
    EXPECT_EQ(x, y);
  }
}

TEST(RandomScheduler, RejectsTinyPopulations) {
  EXPECT_THROW(RandomScheduler(1, 0), std::invalid_argument);
}

TEST(SkewedRandomScheduler, CoversAllPairs) {
  SkewedRandomScheduler sched({1.0, 2.0, 3.0, 4.0, 5.0}, 3);
  const auto seen = unorderedPairs(sched, 2000);
  EXPECT_EQ(seen.size(), numPairs(5));
}

TEST(SkewedRandomScheduler, HeavierParticipantsAppearMore) {
  SkewedRandomScheduler sched({1.0, 1.0, 8.0}, 11);
  // Initiator draws follow the weights directly (the responder draw is
  // conditioned on differing, which compresses the ratio), so check the
  // initiator marginal: participant 2 expects 80% of draws.
  std::vector<int> initiations(3, 0);
  for (int i = 0; i < 30000; ++i) ++initiations[sched.next().initiator];
  EXPECT_GT(initiations[2], initiations[0] * 4);
  EXPECT_GT(initiations[2], initiations[1] * 4);
}

TEST(SkewedRandomScheduler, RejectsNonPositiveWeights) {
  EXPECT_THROW(SkewedRandomScheduler({1.0, 0.0}, 0), std::invalid_argument);
  EXPECT_THROW(SkewedRandomScheduler({1.0, -2.0}, 0), std::invalid_argument);
  EXPECT_THROW(SkewedRandomScheduler({1.0}, 0), std::invalid_argument);
}

TEST(RoundRobinScheduler, CycleCoversEveryOrderedPairExactlyOnce) {
  const std::uint32_t m = 5;
  RoundRobinScheduler sched(m);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  const std::uint32_t cycle = m * (m - 1);
  for (std::uint32_t i = 0; i < cycle; ++i) {
    const Interaction it = sched.next();
    EXPECT_TRUE(seen.insert({it.initiator, it.responder}).second)
        << "pair repeated within one cycle";
  }
  EXPECT_EQ(seen.size(), cycle);
}

TEST(RoundRobinScheduler, IsPeriodic) {
  RoundRobinScheduler a(4), b(4);
  // Advance a by exactly one full cycle; streams must re-align.
  for (std::uint32_t i = 0; i < 4 * 3; ++i) a.next();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RoundRobinScheduler, ResetRestarts) {
  RoundRobinScheduler sched(4);
  const Interaction first = sched.next();
  sched.next();
  sched.reset();
  EXPECT_EQ(sched.next(), first);
}

TEST(TournamentScheduler, EvenPopulationEveryAgentPlaysEachRound) {
  const std::uint32_t m = 6;
  TournamentScheduler sched(m);
  EXPECT_EQ(sched.matchesPerRound(), m / 2);
  // One round: every participant appears exactly once.
  std::set<std::uint32_t> played;
  for (std::uint32_t i = 0; i < m / 2; ++i) {
    const Interaction it = sched.next();
    EXPECT_TRUE(played.insert(it.initiator).second);
    EXPECT_TRUE(played.insert(it.responder).second);
  }
  EXPECT_EQ(played.size(), m);
}

TEST(TournamentScheduler, FullTournamentCoversAllPairs) {
  for (const std::uint32_t m : {2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    TournamentScheduler sched(m);
    const auto seen = unorderedPairs(sched, 4ull * m * m);
    EXPECT_EQ(seen.size(), numPairs(m)) << "m=" << m;
  }
}

TEST(TournamentScheduler, OddPopulationSitOutRotates) {
  TournamentScheduler sched(5);
  // Over 5 rounds (2 matches each), every agent sits out exactly once,
  // hence participates in exactly 4 rounds = 8 slots... just verify all
  // agents appear and no self-pairs.
  std::set<std::uint32_t> appeared;
  for (int i = 0; i < 10; ++i) {
    const Interaction it = sched.next();
    EXPECT_NE(it.initiator, it.responder);
    appeared.insert(it.initiator);
    appeared.insert(it.responder);
  }
  EXPECT_EQ(appeared.size(), 5u);
}

TEST(IsolationScheduler, HidesAgentThenReleases) {
  auto inner = std::make_unique<RoundRobinScheduler>(4);
  IsolationScheduler sched(std::move(inner), 2, 30);
  for (int i = 0; i < 30; ++i) {
    const Interaction it = sched.next();
    EXPECT_NE(it.initiator, 2u);
    EXPECT_NE(it.responder, 2u);
  }
  EXPECT_FALSE(sched.stillIsolating());
  // After release the hidden agent shows up again.
  bool saw = false;
  for (int i = 0; i < 20 && !saw; ++i) {
    const Interaction it = sched.next();
    saw = (it.initiator == 2u || it.responder == 2u);
  }
  EXPECT_TRUE(saw);
}

TEST(CallbackScheduler, PassesStepIndex) {
  std::vector<std::uint64_t> indices;
  CallbackScheduler sched("cb", [&](std::uint64_t t) {
    indices.push_back(t);
    return Interaction{0, 1};
  });
  sched.next();
  sched.next();
  sched.reset();
  sched.next();
  EXPECT_EQ(indices, (std::vector<std::uint64_t>{0, 1, 0}));
}

}  // namespace
}  // namespace ppn
