#include "sched/graph_scheduler.h"

#include <gtest/gtest.h>

#include <set>

#include "core/engine.h"
#include "naming/asymmetric_naming.h"
#include "naming/leader_uniform_naming.h"
#include "sim/runner.h"

namespace ppn {
namespace {

TEST(GraphRandomScheduler, OnlyEmitsTopologyEdges) {
  const auto ring = InteractionGraph::ring(6);
  GraphRandomScheduler sched(ring, 42);
  for (int i = 0; i < 2000; ++i) {
    const Interaction it = sched.next();
    EXPECT_TRUE(ring.hasEdge(it.initiator, it.responder));
  }
}

TEST(GraphRandomScheduler, CoversAllEdgesAndBothOrientations) {
  const auto ring = InteractionGraph::ring(5);
  GraphRandomScheduler sched(ring, 7);
  std::set<std::pair<std::uint32_t, std::uint32_t>> oriented;
  for (int i = 0; i < 2000; ++i) {
    const Interaction it = sched.next();
    oriented.insert({it.initiator, it.responder});
  }
  EXPECT_EQ(oriented.size(), 2 * ring.numEdges());
}

TEST(GraphRoundRobinScheduler, CyclesEdgesDeterministically) {
  const auto line = InteractionGraph::line(4);
  GraphRoundRobinScheduler sched(line);
  std::vector<Interaction> firstLap;
  for (std::size_t i = 0; i < line.numEdges(); ++i) {
    firstLap.push_back(sched.next());
  }
  // Second lap uses flipped orientation.
  for (std::size_t i = 0; i < line.numEdges(); ++i) {
    const Interaction it = sched.next();
    EXPECT_EQ(it.initiator, firstLap[i].responder);
    EXPECT_EQ(it.responder, firstLap[i].initiator);
  }
  sched.reset();
  EXPECT_EQ(sched.next(), firstLap[0]);
}

TEST(GraphSchedulers, CompleteGraphMatchesClassicModel) {
  // On the complete topology the asymmetric protocol converges exactly as
  // under the unconstrained random scheduler.
  const AsymmetricNaming proto(6);
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    Engine engine(proto, arbitraryConfiguration(proto, 6, rng));
    GraphRandomScheduler sched(InteractionGraph::complete(6), rng.next());
    const RunOutcome out = runUntilSilent(engine, sched, RunLimits{200000, 16});
    ASSERT_TRUE(out.silent);
    EXPECT_TRUE(out.namingSolved);
  }
}

TEST(GraphSchedulers, LeaderUniformNamingWorksOnBaseStationStar) {
  // Prop 14's protocol only needs leader-agent edges: the star centered at
  // the leader (participant N) is enough.
  const std::uint32_t n = 6;
  const LeaderUniformNaming proto(n);
  Engine engine(proto, uniformConfiguration(proto, n));
  GraphRoundRobinScheduler sched(InteractionGraph::star(n + 1, n));
  const RunOutcome out = runUntilSilent(engine, sched, RunLimits{100000, 8});
  ASSERT_TRUE(out.silent);
  EXPECT_TRUE(out.namingSolved);
}

TEST(GraphSchedulers, AsymmetricNamingCanWedgeOnAStar) {
  // Leaf agents never meet each other on a star, so two leaf homonyms can
  // never be separated: witness a wedged (silent-under-the-topology but
  // unnamed) run. Start with all agents identical — the hub interaction is
  // the only one that can ever fire.
  const std::uint32_t n = 5;
  const AsymmetricNaming proto(n);
  Configuration start;
  start.mobile.assign(n, 0);
  Engine engine(proto, start);
  GraphRoundRobinScheduler sched(InteractionGraph::star(n, 0));
  // Run a long weakly fair (per-topology) schedule.
  for (int i = 0; i < 100000; ++i) engine.step(sched.next());
  // Leaves 1..4 only ever interact with the hub; homonym leaves persist.
  std::vector<StateId> leaves(engine.config().mobile.begin() + 1,
                              engine.config().mobile.end());
  std::sort(leaves.begin(), leaves.end());
  EXPECT_TRUE(std::adjacent_find(leaves.begin(), leaves.end()) != leaves.end())
      << "expected at least two leaf homonyms to survive on the star";
  EXPECT_FALSE(engine.namingSolved());
}

TEST(GraphSchedulers, EmptyGraphRejected) {
  const InteractionGraph disconnected(3, {});
  EXPECT_THROW(GraphRandomScheduler(disconnected, 1), std::invalid_argument);
  EXPECT_THROW(GraphRoundRobinScheduler{disconnected}, std::invalid_argument);
}

}  // namespace
}  // namespace ppn
