// The Section 2 black/white example: weak fairness admits an infinite
// non-converging execution; global fairness forces all-black.
#include "naming/color_example.h"

#include <gtest/gtest.h>

#include "analysis/global_checker.h"
#include "analysis/problem.h"
#include "analysis/weak_checker.h"
#include "core/engine.h"
#include "sched/adversary.h"
#include "sched/random_scheduler.h"

namespace ppn {
namespace {

constexpr StateId W = ColorExample::kWhite;
constexpr StateId B = ColorExample::kBlack;

TEST(ColorExample, Rules) {
  const ColorExample proto;
  EXPECT_EQ(proto.mobileDelta(W, W), (MobilePair{B, B}));
  EXPECT_EQ(proto.mobileDelta(B, W), (MobilePair{W, B}));  // exchange
  EXPECT_EQ(proto.mobileDelta(W, B), (MobilePair{B, W}));
  EXPECT_EQ(proto.mobileDelta(B, B), (MobilePair{B, B}));  // null
}

TEST(ColorExample, AllBlackPredicate) {
  EXPECT_TRUE(allBlack(Configuration{{B, B, B}, std::nullopt}));
  EXPECT_FALSE(allBlack(Configuration{{B, W, B}, std::nullopt}));
}

TEST(ColorExample, AdversaryKeepsTheBlackTokenJumpingForever) {
  // The paper's hand-built weakly fair execution: with one black and two
  // whites, repeatedly schedule (black, white) exchanges in a round-robin
  // over the three pairs; all three pairs interact infinitely often yet the
  // configuration never becomes all-black.
  const ColorExample proto;
  Engine engine(proto, Configuration{{B, W, W}, std::nullopt});

  // Pairs in rotation: {0,1}, {1,2}, {2,0}. Exchanges move the token around
  // the triangle; no (white, white) meeting ever happens because each pair
  // in this order always contains the current black agent.
  CallbackScheduler adversary("token-spinner", [](std::uint64_t t) {
    switch (t % 3) {
      case 0:
        return Interaction{0, 1};
      case 1:
        return Interaction{1, 2};
      default:
        return Interaction{2, 0};
    }
  });

  for (int i = 0; i < 3000; ++i) {
    engine.step(adversary.next());
    ASSERT_FALSE(allBlack(engine.config())) << "at step " << i;
    // Invariant: exactly one black agent at all times.
    EXPECT_EQ(engine.config().multiplicity(B), 1u);
  }
}

TEST(ColorExample, RandomSchedulerReachesAllBlack) {
  const ColorExample proto;
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    Engine engine(proto, Configuration{{B, W, W}, std::nullopt});
    RandomScheduler sched(3, rng.next());
    bool reached = false;
    for (int i = 0; i < 100000 && !reached; ++i) {
      engine.step(sched.next());
      reached = allBlack(engine.config());
    }
    EXPECT_TRUE(reached) << "trial " << trial;
  }
}

TEST(ColorExample, CheckersSeparateTheTwoFairnessNotions) {
  const ColorExample proto;
  const Problem problem = predicateProblem("all-black", allBlack);
  const std::vector<Configuration> start{{{B, W, W}, std::nullopt}};

  const GlobalVerdict global = checkGlobalFairness(proto, problem, start);
  ASSERT_TRUE(global.explored);
  EXPECT_TRUE(global.solves) << global.reason;

  const WeakVerdict weak = checkWeakFairness(proto, problem, start);
  ASSERT_TRUE(weak.explored);
  EXPECT_FALSE(weak.solves) << "the jumping-token schedule must be found";
  EXPECT_GT(weak.violatingSccs, 0u);
}

TEST(ColorExample, AllBlackIsTerminal) {
  const ColorExample proto;
  EXPECT_TRUE(isSilent(proto, Configuration{{B, B, B}, std::nullopt}));
  EXPECT_FALSE(isSilent(proto, Configuration{{B, W, W}, std::nullopt}));
}

}  // namespace
}  // namespace ppn
