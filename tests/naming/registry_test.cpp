#include "naming/registry.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ppn {
namespace {

TEST(Registry, AllKeysConstruct) {
  for (const auto& key : protocolKeys()) {
    const auto proto = makeProtocol(key, 4);
    ASSERT_NE(proto, nullptr) << key;
    EXPECT_FALSE(proto->name().empty());
    EXPECT_GE(proto->numMobileStates(), 4u) << key;
    EXPECT_FALSE(protocolAssumptions(key).empty());
  }
}

TEST(Registry, UnknownKeyThrows) {
  EXPECT_THROW(makeProtocol("nope", 4), std::invalid_argument);
  EXPECT_THROW(protocolAssumptions("nope"), std::invalid_argument);
}

TEST(Registry, KeyListIsStable) {
  const auto keys = protocolKeys();
  EXPECT_EQ(keys.size(), 6u);
  // The six Table 1 protocols.
  EXPECT_NE(std::find(keys.begin(), keys.end(), "asymmetric"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "symmetric-global"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "leader-uniform"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "counting"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "selfstab-weak"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "global-leader"), keys.end());
}

TEST(Registry, LeaderPresenceMatchesAssumptions) {
  EXPECT_FALSE(makeProtocol("asymmetric", 3)->hasLeader());
  EXPECT_FALSE(makeProtocol("symmetric-global", 3)->hasLeader());
  EXPECT_TRUE(makeProtocol("leader-uniform", 3)->hasLeader());
  EXPECT_TRUE(makeProtocol("counting", 3)->hasLeader());
  EXPECT_TRUE(makeProtocol("selfstab-weak", 3)->hasLeader());
  EXPECT_TRUE(makeProtocol("global-leader", 3)->hasLeader());
}

}  // namespace
}  // namespace ppn
