// Proposition 14 unit tests (P states, initialized leader + uniform agents,
// weak fairness).
#include "naming/leader_uniform_naming.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "sched/deterministic_schedulers.h"
#include "sim/runner.h"

namespace ppn {
namespace {

TEST(LeaderUniformNaming, NamesSequentially) {
  const LeaderUniformNaming proto(4);  // unnamed marker = 3
  // Leader with counter 0 meets an unnamed agent: names it 0, counter -> 1.
  EXPECT_EQ(proto.leaderDelta(0, 3), (LeaderResult{1, 0}));
  EXPECT_EQ(proto.leaderDelta(1, 3), (LeaderResult{2, 1}));
  EXPECT_EQ(proto.leaderDelta(2, 3), (LeaderResult{3, 2}));
  // Counter saturated at P-1: the last agent keeps P-1 as its name.
  EXPECT_EQ(proto.leaderDelta(3, 3), (LeaderResult{3, 3}));
  // Already named agents are never touched.
  EXPECT_EQ(proto.leaderDelta(1, 0), (LeaderResult{1, 0}));
  EXPECT_EQ(proto.leaderDelta(3, 2), (LeaderResult{3, 2}));
}

TEST(LeaderUniformNaming, MobileMobileAlwaysNull) {
  const LeaderUniformNaming proto(4);
  for (StateId a = 0; a < 4; ++a) {
    for (StateId b = 0; b < 4; ++b) {
      EXPECT_EQ(proto.mobileDelta(a, b), (MobilePair{a, b}));
    }
  }
}

TEST(LeaderUniformNaming, DeclaredInitialization) {
  const LeaderUniformNaming proto(5);
  EXPECT_EQ(proto.uniformMobileInit(), StateId{4});
  EXPECT_EQ(proto.initialLeaderState(), LeaderStateId{0});
  EXPECT_EQ(proto.allLeaderStates().size(), 5u);
}

class LeaderUniformSweep
    : public ::testing::TestWithParam<std::tuple<StateId, std::uint32_t>> {};

TEST_P(LeaderUniformSweep, ConvergesUnderWeakFairnessForAllN) {
  const auto [p, n] = GetParam();
  const LeaderUniformNaming proto(p);
  Engine engine(proto, uniformConfiguration(proto, n));
  RoundRobinScheduler sched(n + 1);  // +1 for the leader
  const RunOutcome out = runUntilSilent(engine, sched, RunLimits{100000, 8});
  ASSERT_TRUE(out.silent);
  EXPECT_TRUE(out.namingSolved);
  // Names are exactly {0..N-1} for N < P, {0..P-1} for N = P.
  std::vector<StateId> names = out.finalConfig.mobile;
  std::sort(names.begin(), names.end());
  for (std::uint32_t i = 0; i < n; ++i) {
    if (n < p) {
      EXPECT_EQ(names[i], i);
    }
  }
  if (n == p) {
    for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(names[i], i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LeaderUniformSweep,
    ::testing::Values(std::tuple{StateId{2}, 1u}, std::tuple{StateId{2}, 2u},
                      std::tuple{StateId{4}, 1u}, std::tuple{StateId{4}, 2u},
                      std::tuple{StateId{4}, 3u}, std::tuple{StateId{4}, 4u},
                      std::tuple{StateId{8}, 5u}, std::tuple{StateId{8}, 8u},
                      std::tuple{StateId{16}, 16u}),
    [](const auto& paramInfo) {
      return "P" + std::to_string(std::get<0>(paramInfo.param)) + "_N" +
             std::to_string(std::get<1>(paramInfo.param));
    });

TEST(LeaderUniformNaming, DoesNotSurviveLeaderCorruption) {
  // Negative control: the protocol is NOT self-stabilizing. If the leader's
  // counter is corrupted to P-1 before naming, unnamed agents stay unnamed.
  const LeaderUniformNaming proto(4);
  Configuration start = uniformConfiguration(proto, 3);
  start.leader = LeaderStateId{3};  // corrupted counter
  Engine engine(proto, start);
  RoundRobinScheduler sched(4);
  const RunOutcome out = runUntilSilent(engine, sched, RunLimits{10000, 8});
  ASSERT_TRUE(out.silent);  // silent immediately...
  EXPECT_FALSE(out.namingSolved);  // ...but all three agents are homonyms "3"
}

}  // namespace
}  // namespace ppn
