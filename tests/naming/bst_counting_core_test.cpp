// Unit tests for the shared BST body — the subtle boundary behaviour
// (pointer saturation, guess overrun, name capping) that the three protocols
// all rely on.
#include "naming/bst_counting_core.h"

#include <gtest/gtest.h>

namespace ppn {
namespace {

CountingCoreParams paramsFor(std::uint32_t p, bool protocol2) {
  return CountingCoreParams{
      .nLimit = protocol2 ? p + 1 : p,
      .kMax = kBoundForExponent(protocol2 ? p : p - 1),
      .nameCap = protocol2 ? p : p - 1,
  };
}

TEST(BstCore, InactiveWhenGuessAtLimit) {
  BstState bst{.n = 3, .k = 5, .namePtr = 0};
  StateId name = 0;
  EXPECT_FALSE(countingBody(bst, name, paramsFor(3, false)));
  EXPECT_EQ(bst.n, 3u);
  EXPECT_EQ(name, 0u);
}

TEST(BstCore, InactiveOnNamesWithinGuess) {
  BstState bst{.n = 2, .k = 2, .namePtr = 0};
  StateId name = 2;  // name <= n and != 0
  EXPECT_FALSE(countingBody(bst, name, paramsFor(4, false)));
  EXPECT_EQ(name, 2u);
}

TEST(BstCore, ZeroAgentAdvancesPointer) {
  BstState bst{.n = 2, .k = 2, .namePtr = 0};
  StateId name = 0;
  EXPECT_TRUE(countingBody(bst, name, paramsFor(4, false)));
  EXPECT_EQ(bst.k, 3u);
  EXPECT_EQ(bst.n, 2u);          // l_2 = 3 not yet exceeded
  EXPECT_EQ(name, rulerValue(3));  // U*(3) = 1
}

TEST(BstCore, PointerOverrunBumpsGuess) {
  BstState bst{.n = 2, .k = 3, .namePtr = 0};  // k = l_2
  StateId name = 0;
  EXPECT_TRUE(countingBody(bst, name, paramsFor(4, false)));
  EXPECT_EQ(bst.k, 4u);
  EXPECT_EQ(bst.n, 3u);
  EXPECT_EQ(name, rulerValue(4));  // = 3
}

TEST(BstCore, LargeNameJumpsPointerToNextBlock) {
  BstState bst{.n = 1, .k = 0, .namePtr = 0};
  StateId name = 3;  // > n
  EXPECT_TRUE(countingBody(bst, name, paramsFor(4, false)));
  EXPECT_EQ(bst.k, 2u);  // l_1 + 1
  EXPECT_EQ(bst.n, 2u);
  EXPECT_EQ(name, rulerValue(2));  // = 2
}

TEST(BstCore, KSaturatesAtDeclaredMax) {
  // Protocol 2 with arbitrary leader init: k at its max must not overflow
  // its declared range; behaviour (k > l_n comparisons) is unaffected.
  const std::uint32_t p = 3;
  const auto params = paramsFor(p, true);  // kMax = 2^3 = 8
  BstState bst{.n = 2, .k = 8, .namePtr = 0};
  StateId name = 0;
  EXPECT_TRUE(countingBody(bst, name, params));
  EXPECT_EQ(bst.k, 8u);  // clamped, not 9
  EXPECT_EQ(bst.n, 3u);  // still counted as overrun
}

TEST(BstCore, NameCapAtTheBoundaryIndex) {
  // The single boundary index k = 2^(P-1) would yield ruler value P, one
  // past the Protocol 1 name domain; it must cap at P-1.
  const std::uint32_t p = 3;
  BstState bst{.n = 2, .k = 3, .namePtr = 0};  // next k = 4 = 2^2
  StateId name = 0;
  EXPECT_TRUE(countingBody(bst, name, paramsFor(p, false)));
  EXPECT_EQ(bst.k, 4u);
  EXPECT_EQ(rulerValue(4), 3u);      // raw ruler value out of domain
  EXPECT_EQ(name, p - 1);            // capped
}

TEST(BstCore, HugeGuessDoesNotOverflowShift) {
  // Defensive: n >= 63 must not shift out of range (reachable only through
  // hostile encodings, but the function must stay total).
  BstState bst{.n = 200, .k = 1, .namePtr = 0};
  StateId name = 0;
  EXPECT_FALSE(countingBody(bst, name,
                            CountingCoreParams{.nLimit = 100,
                                               .kMax = kBstKMask,
                                               .nameCap = 10}));
  bst.n = 64;
  EXPECT_TRUE(countingBody(bst, name,
                           CountingCoreParams{.nLimit = 100,
                                              .kMax = kBstKMask,
                                              .nameCap = 10}));
  EXPECT_EQ(bst.n, 64u);  // l_64 saturates to max: no overrun possible
}

TEST(BstCore, KBoundForExponentClampsTo48Bits) {
  EXPECT_EQ(kBoundForExponent(3), 8u);
  EXPECT_EQ(kBoundForExponent(47), std::uint64_t{1} << 47);
  EXPECT_EQ(kBoundForExponent(48), kBstKMask);
  EXPECT_EQ(kBoundForExponent(200), kBstKMask);
}

TEST(BstCore, PackUnpackRoundTrip) {
  for (const std::uint32_t n : {0u, 1u, 17u, 255u}) {
    for (const std::uint64_t k : {std::uint64_t{0}, std::uint64_t{12345},
                                  kBstKMask}) {
      for (const std::uint32_t ptr : {0u, 9u, 255u}) {
        const BstState s{.n = n, .k = k, .namePtr = ptr};
        const BstState r = unpackBst(packBst(s));
        EXPECT_EQ(r.n, n);
        EXPECT_EQ(r.k, k);
        EXPECT_EQ(r.namePtr, ptr);
      }
    }
  }
}

}  // namespace
}  // namespace ppn
