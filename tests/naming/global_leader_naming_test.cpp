// Protocol 3 / Proposition 17 tests: P-state symmetric naming with an
// initialized leader under global fairness.
#include "naming/global_leader_naming.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "naming/bst_state.h"
#include "sched/random_scheduler.h"
#include "sim/runner.h"
#include "util/rng.h"

namespace ppn {
namespace {

TEST(GlobalLeaderNaming, UsesExactlyPStates) {
  const GlobalLeaderNaming proto(5);
  EXPECT_EQ(proto.numMobileStates(), 5u);
  EXPECT_TRUE(proto.isSymmetric());
  EXPECT_TRUE(proto.initialLeaderState().has_value());
}

TEST(GlobalLeaderNaming, RenamingWalkIncrementsOnMatch) {
  // n = P: meeting an agent whose name equals name_ptr bumps the pointer and
  // leaves the agent alone.
  const StateId p = 4;
  const GlobalLeaderNaming proto(p);
  const LeaderStateId bst = packBst(BstState{.n = p, .k = 7, .namePtr = 2});
  const LeaderResult r = proto.leaderDelta(bst, 2);
  EXPECT_EQ(unpackBst(r.leader).namePtr, 3u);
  EXPECT_EQ(r.mobile, 2u);
}

TEST(GlobalLeaderNaming, RenamingWalkRenamesAndResetsOnMismatch) {
  const StateId p = 4;
  const GlobalLeaderNaming proto(p);
  const LeaderStateId bst = packBst(BstState{.n = p, .k = 7, .namePtr = 2});
  const LeaderResult r = proto.leaderDelta(bst, 0);
  EXPECT_EQ(unpackBst(r.leader).namePtr, 0u);
  EXPECT_EQ(r.mobile, 2u);  // renamed to the old pointer value
}

TEST(GlobalLeaderNaming, WalkCompleteIsSilent) {
  const StateId p = 3;
  const GlobalLeaderNaming proto(p);
  const LeaderStateId done = packBst(BstState{.n = p, .k = 4, .namePtr = p});
  for (StateId s = 0; s < p; ++s) {
    EXPECT_EQ(proto.leaderDelta(done, s), (LeaderResult{done, s}));
  }
  EXPECT_TRUE(isSilent(proto, Configuration{{0, 1, 2}, done}));
}

TEST(GlobalLeaderNaming, BelowFullPopulationBehavesLikeProtocol1) {
  // For N < P the walk never activates (n stays < P); final names are {1..N}.
  const StateId p = 5;
  const GlobalLeaderNaming proto(p);
  Rng rng(808);
  for (std::uint32_t n = 1; n < p; ++n) {
    Engine engine(proto, arbitraryConfiguration(proto, n, rng));
    RandomScheduler sched(n + 1, rng.next());
    const RunOutcome out =
        runUntilSilent(engine, sched, RunLimits{2'000'000, 64});
    ASSERT_TRUE(out.silent) << "N=" << n;
    EXPECT_TRUE(out.namingSolved);
    std::vector<StateId> names = out.finalConfig.mobile;
    std::sort(names.begin(), names.end());
    for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(names[i], i + 1);
    EXPECT_EQ(unpackBst(*out.finalConfig.leader).n, n);
  }
}

class GlobalLeaderFullSweep : public ::testing::TestWithParam<StateId> {};

TEST_P(GlobalLeaderFullSweep, FullPopulationNamesZeroToPMinus1) {
  // N = P under the (globally fair w.p. 1) random scheduler: final names are
  // exactly {0..P-1} via the name_ptr walk.
  const StateId p = GetParam();
  const GlobalLeaderNaming proto(p);
  Rng rng(p);
  for (int trial = 0; trial < 6; ++trial) {
    Engine engine(proto, arbitraryConfiguration(proto, p, rng));
    RandomScheduler sched(p + 1, rng.next());
    const RunOutcome out =
        runUntilSilent(engine, sched, RunLimits{20'000'000, 64});
    ASSERT_TRUE(out.silent) << "P=" << p << " trial " << trial;
    EXPECT_TRUE(out.namingSolved);
    std::vector<StateId> names = out.finalConfig.mobile;
    std::sort(names.begin(), names.end());
    for (StateId i = 0; i < p; ++i) EXPECT_EQ(names[i], i);
    EXPECT_EQ(unpackBst(*out.finalConfig.leader).namePtr, p);
  }
}

// P is capped at 4: the name_ptr walk's expected completion time grows
// roughly factorially (measured: ~5e5 interactions at P=4, ~1e9 at P=5) —
// global fairness only promises eventual convergence, and the paper makes no
// time claim. The convergence_sweep bench documents the blow-up.
INSTANTIATE_TEST_SUITE_P(Sweep, GlobalLeaderFullSweep,
                         ::testing::Values(StateId{2}, StateId{3}, StateId{4}),
                         [](const auto& paramInfo) {
                           return "P" + std::to_string(paramInfo.param);
                         });

TEST(GlobalLeaderNaming, CountingAnswerTracksN) {
  const StateId p = 4;
  const GlobalLeaderNaming proto(p);
  Rng rng(99);
  Engine engine(proto, arbitraryConfiguration(proto, 3, rng));
  RandomScheduler sched(4, 5);
  const RunOutcome out = runUntilSilent(engine, sched, RunLimits{2'000'000, 64});
  ASSERT_TRUE(out.silent);
  EXPECT_EQ(*proto.countingAnswer(*out.finalConfig.leader), 3u);
}

TEST(GlobalLeaderNaming, RejectsPBelow2) {
  EXPECT_THROW(GlobalLeaderNaming(1), std::invalid_argument);
}

}  // namespace
}  // namespace ppn
