#include "naming/ustar.h"

#include <gtest/gtest.h>

namespace ppn {
namespace {

TEST(UStar, BaseCase) {
  EXPECT_EQ(buildUStar(1), (std::vector<std::uint32_t>{1}));
  EXPECT_TRUE(buildUStar(0).empty());
}

TEST(UStar, RecursiveStructure) {
  // U_2 = 1,2,1; U_3 = 1,2,1,3,1,2,1 (paper's recursion).
  EXPECT_EQ(buildUStar(2), (std::vector<std::uint32_t>{1, 2, 1}));
  EXPECT_EQ(buildUStar(3),
            (std::vector<std::uint32_t>{1, 2, 1, 3, 1, 2, 1}));
}

TEST(UStar, LengthIsTwoToTheNMinusOne) {
  for (std::uint32_t n = 1; n <= 12; ++n) {
    EXPECT_EQ(buildUStar(n).size(), (1u << n) - 1) << "n=" << n;
    EXPECT_EQ(ustarLength(n), (1ull << n) - 1) << "n=" << n;
  }
}

TEST(UStar, SelfSimilarHalves) {
  // U_n = U_{n-1}, n, U_{n-1}: both halves equal U_{n-1}, middle = n.
  for (std::uint32_t n = 2; n <= 10; ++n) {
    const auto un = buildUStar(n);
    const auto prev = buildUStar(n - 1);
    const std::size_t half = prev.size();
    EXPECT_EQ(un[half], n);
    for (std::size_t i = 0; i < half; ++i) {
      EXPECT_EQ(un[i], prev[i]);
      EXPECT_EQ(un[half + 1 + i], prev[i]);
    }
  }
}

TEST(UStar, RulerFormulaMatchesRecursion) {
  for (std::uint32_t n = 1; n <= 14; ++n) {
    const auto un = buildUStar(n);
    for (std::size_t k = 1; k <= un.size(); ++k) {
      ASSERT_EQ(rulerValue(k), un[k - 1]) << "n=" << n << " k=" << k;
    }
  }
}

TEST(UStar, RulerValueAtPowersOfTwo) {
  for (std::uint32_t e = 0; e < 40; ++e) {
    EXPECT_EQ(rulerValue(std::uint64_t{1} << e), e + 1);
  }
}

TEST(UStar, RulerRejectsZero) {
  EXPECT_THROW(rulerValue(0), std::invalid_argument);
}

TEST(UStar, BuildRejectsHugeN) {
  EXPECT_THROW(buildUStar(31), std::invalid_argument);
}

TEST(UStar, ValueCountsAreBinomial) {
  // In U_n, value v occurs exactly 2^(n-v) times — the key density property
  // behind the naming pointer: smaller names are retried more often.
  for (std::uint32_t n = 1; n <= 12; ++n) {
    const auto un = buildUStar(n);
    std::vector<std::uint64_t> counts(n + 1, 0);
    for (const auto v : un) {
      ASSERT_GE(v, 1u);
      ASSERT_LE(v, n);
      ++counts[v];
    }
    for (std::uint32_t v = 1; v <= n; ++v) {
      EXPECT_EQ(counts[v], std::uint64_t{1} << (n - v)) << "n=" << n << " v=" << v;
    }
  }
}

TEST(UStar, EveryPrefixContainsAllSmallerValues) {
  // Before U* first emits value v it has emitted every value < v — the
  // invariant that lets BST name agents 1..N in waves.
  const auto u = buildUStar(10);
  std::vector<bool> seen(11, false);
  for (const auto v : u) {
    for (std::uint32_t w = 1; w < v; ++w) {
      EXPECT_TRUE(seen[w]) << "value " << v << " before first " << w;
    }
    seen[v] = true;
  }
}

}  // namespace
}  // namespace ppn
