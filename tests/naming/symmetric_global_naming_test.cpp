// Proposition 13 unit and behaviour tests (P+1 states, no leader, global
// fairness, N > 2).
#include "naming/symmetric_global_naming.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "sched/random_scheduler.h"
#include "sim/runner.h"
#include "util/rng.h"

namespace ppn {
namespace {

TEST(SymmetricGlobalNaming, RuleTable) {
  const SymmetricGlobalNaming proto(4);  // states 0..4, blank = 4
  const StateId blank = proto.blankState();
  ASSERT_EQ(blank, 4u);
  // Rule 1: (s, P) -> (s, s+1 mod P).
  EXPECT_EQ(proto.mobileDelta(2, blank), (MobilePair{2, 3}));
  EXPECT_EQ(proto.mobileDelta(3, blank), (MobilePair{3, 0}));  // wraps
  // Rule 1 mirrored.
  EXPECT_EQ(proto.mobileDelta(blank, 2), (MobilePair{3, 2}));
  // Rule 2: homonyms blank out.
  EXPECT_EQ(proto.mobileDelta(1, 1), (MobilePair{blank, blank}));
  EXPECT_EQ(proto.mobileDelta(0, 0), (MobilePair{blank, blank}));
  // Rule 3: blank homonyms re-seed.
  EXPECT_EQ(proto.mobileDelta(blank, blank), (MobilePair{1, 1}));
  // Distinct non-blank: null.
  EXPECT_EQ(proto.mobileDelta(1, 3), (MobilePair{1, 3}));
}

TEST(SymmetricGlobalNaming, UsesExactlyPPlusOneStates) {
  const SymmetricGlobalNaming proto(6);
  EXPECT_EQ(proto.numMobileStates(), 7u);
  EXPECT_TRUE(proto.isSymmetric());
  EXPECT_FALSE(proto.hasLeader());
}

TEST(SymmetricGlobalNaming, BlankIsNotAValidName) {
  const SymmetricGlobalNaming proto(3);
  EXPECT_FALSE(proto.isValidName(3));
  for (StateId s = 0; s < 3; ++s) EXPECT_TRUE(proto.isValidName(s));
}

TEST(SymmetricGlobalNaming, TerminalConfigsAreExactlyDistinctNonBlank) {
  const SymmetricGlobalNaming proto(3);
  EXPECT_TRUE(isSilent(proto, Configuration{{0, 1, 2}, std::nullopt}));
  // A blank agent always has an applicable non-null rule.
  EXPECT_FALSE(isSilent(proto, Configuration{{0, 1, 3}, std::nullopt}));
  EXPECT_FALSE(isSilent(proto, Configuration{{3, 3, 3}, std::nullopt}));
  // Homonyms are never silent.
  EXPECT_FALSE(isSilent(proto, Configuration{{0, 0, 2}, std::nullopt}));
}

TEST(SymmetricGlobalNaming, ConvergesUnderRandomSchedulerFromArbitraryStart) {
  const SymmetricGlobalNaming proto(5);
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const auto n = static_cast<std::uint32_t>(3 + rng.below(3));  // 3..5 <= P
    Engine engine(proto, arbitraryConfiguration(proto, n, rng));
    RandomScheduler sched(n, rng.next());
    const RunOutcome out =
        runUntilSilent(engine, sched, RunLimits{2'000'000, 32});
    ASSERT_TRUE(out.silent) << "trial " << trial << " N=" << n;
    EXPECT_TRUE(out.namingSolved);
    for (const StateId s : out.finalConfig.mobile) {
      EXPECT_NE(s, proto.blankState());
    }
  }
}

TEST(SymmetricGlobalNaming, AllBlankStartRecoversForNGreaterThan2) {
  // The proof's special case: from the all-blank configuration the protocol
  // must escape via rules 3 and 1 (needs a third agent, hence N > 2).
  const SymmetricGlobalNaming proto(4);
  Configuration allBlank{{4, 4, 4, 4}, std::nullopt};
  Engine engine(proto, allBlank);
  RandomScheduler sched(4, 99);
  const RunOutcome out = runUntilSilent(engine, sched, RunLimits{2'000'000, 32});
  ASSERT_TRUE(out.silent);
  EXPECT_TRUE(out.namingSolved);
}

TEST(SymmetricGlobalNaming, RejectsPBelow2) {
  EXPECT_THROW(SymmetricGlobalNaming(1), std::invalid_argument);
  EXPECT_THROW(SymmetricGlobalNaming(0), std::invalid_argument);
}

}  // namespace
}  // namespace ppn
