// Protocol 1 / Theorem 15 tests: space-optimal counting under weak fairness,
// naming as a by-product for N < P.
#include "naming/counting_protocol.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "naming/bst_state.h"
#include "naming/ustar.h"
#include "sched/deterministic_schedulers.h"
#include "sched/random_scheduler.h"
#include "sim/runner.h"
#include "util/rng.h"

namespace ppn {
namespace {

TEST(CountingProtocol, HomonymsDropToSink) {
  const CountingProtocol proto(4);
  EXPECT_EQ(proto.mobileDelta(2, 2), (MobilePair{0, 0}));
  EXPECT_EQ(proto.mobileDelta(0, 0), (MobilePair{0, 0}));  // sink is absorbing
  EXPECT_EQ(proto.mobileDelta(1, 3), (MobilePair{1, 3}));  // distinct: null
}

TEST(CountingProtocol, BstFollowsUStarOnZeroAgents) {
  // From a fresh BST, successive 0-agents get named along U* = U_{P-1},
  // while n grows as the pointer passes each l_n boundary.
  const StateId p = 4;
  const CountingProtocol proto(p);
  LeaderStateId bst = *proto.initialLeaderState();
  const auto ustar = buildUStar(p - 1);  // 1,2,1,3,1,2,1
  for (std::size_t k = 1; k <= ustar.size(); ++k) {
    const LeaderResult r = proto.leaderDelta(bst, 0);
    EXPECT_EQ(r.mobile, ustar[k - 1]) << "k=" << k;
    bst = r.leader;
    EXPECT_EQ(unpackBst(bst).k, k);
  }
  EXPECT_EQ(unpackBst(bst).n, 3u);  // pointer consumed l_3 = 7 elements
}

TEST(CountingProtocol, NameAboveGuessJumpsPointer) {
  // BST at n=1 meeting an agent named 3 (> n) must conclude the population
  // is larger: k <- l_1 + 1 = 2, n -> 2, agent renamed U*(2) = 2.
  const CountingProtocol proto(4);
  const LeaderStateId bst = packBst(BstState{.n = 1, .k = 1, .namePtr = 0});
  const LeaderResult r = proto.leaderDelta(bst, 3);
  EXPECT_EQ(unpackBst(r.leader).k, 2u);
  EXPECT_EQ(unpackBst(r.leader).n, 2u);
  EXPECT_EQ(r.mobile, 2u);
}

TEST(CountingProtocol, NamedWithinGuessIsNull) {
  const CountingProtocol proto(4);
  const LeaderStateId bst = packBst(BstState{.n = 2, .k = 3, .namePtr = 0});
  for (const StateId s : {1u, 2u}) {  // names <= n and != 0
    EXPECT_EQ(proto.leaderDelta(bst, s), (LeaderResult{bst, s}));
  }
}

TEST(CountingProtocol, GuessAtPIsInert) {
  const CountingProtocol proto(3);
  const LeaderStateId bst = packBst(BstState{.n = 3, .k = 4, .namePtr = 0});
  for (StateId s = 0; s < 3; ++s) {
    EXPECT_EQ(proto.leaderDelta(bst, s), (LeaderResult{bst, s}));
  }
}

class CountingSweep
    : public ::testing::TestWithParam<std::tuple<StateId, std::uint32_t>> {};

TEST_P(CountingSweep, CountsExactlyUnderWeakFairness) {
  const auto [p, n] = GetParam();
  const CountingProtocol proto(p);
  Rng rng(static_cast<std::uint64_t>(p) * 1000 + n);
  for (int trial = 0; trial < 5; ++trial) {
    Engine engine(proto, arbitraryConfiguration(proto, n, rng));
    RoundRobinScheduler sched(n + 1);
    const RunOutcome out =
        runUntilSilent(engine, sched, RunLimits{5'000'000, 64});
    ASSERT_TRUE(out.silent) << "P=" << p << " N=" << n;
    const auto answer = proto.countingAnswer(*out.finalConfig.leader);
    ASSERT_TRUE(answer.has_value());
    EXPECT_EQ(*answer, n) << "Theorem 15: n must converge to N";
  }
}

TEST_P(CountingSweep, NamesDistinctlyWhenNLessThanP) {
  const auto [p, n] = GetParam();
  if (n >= p) GTEST_SKIP() << "naming only claimed for N < P";
  const CountingProtocol proto(p);
  Rng rng(static_cast<std::uint64_t>(p) * 77 + n);
  for (int trial = 0; trial < 5; ++trial) {
    Engine engine(proto, arbitraryConfiguration(proto, n, rng));
    RandomScheduler sched(n + 1, rng.next());
    const RunOutcome out =
        runUntilSilent(engine, sched, RunLimits{5'000'000, 64});
    ASSERT_TRUE(out.silent);
    EXPECT_TRUE(out.namingSolved);
    // Theorem 15 is sharper: names are exactly {1..N}.
    std::vector<StateId> names = out.finalConfig.mobile;
    std::sort(names.begin(), names.end());
    for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(names[i], i + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CountingSweep,
    ::testing::Values(std::tuple{StateId{2}, 1u}, std::tuple{StateId{2}, 2u},
                      std::tuple{StateId{3}, 2u}, std::tuple{StateId{3}, 3u},
                      std::tuple{StateId{4}, 2u}, std::tuple{StateId{4}, 3u},
                      std::tuple{StateId{4}, 4u}, std::tuple{StateId{6}, 5u},
                      std::tuple{StateId{8}, 6u}, std::tuple{StateId{10}, 10u}),
    [](const auto& paramInfo) {
      return "P" + std::to_string(std::get<0>(paramInfo.param)) + "_N" +
             std::to_string(std::get<1>(paramInfo.param));
    });

TEST(CountingProtocol, AtFullPopulationNamingMayFailButCountingHolds) {
  // N = P: Theorem 15 only promises counting. With P states the sink 0 may
  // legitimately survive; witness one such run to document the limitation.
  const StateId p = 3;
  const CountingProtocol proto(p);
  Rng rng(123);
  std::uint32_t namedRuns = 0, silentRuns = 0;
  for (int trial = 0; trial < 30; ++trial) {
    Engine engine(proto, arbitraryConfiguration(proto, p, rng));
    RandomScheduler sched(p + 1, rng.next());
    const RunOutcome out = runUntilSilent(engine, sched, RunLimits{1'000'000, 64});
    if (out.silent) {
      ++silentRuns;
      EXPECT_EQ(*proto.countingAnswer(*out.finalConfig.leader), p);
      if (out.namingSolved) ++namedRuns;
    }
  }
  EXPECT_GT(silentRuns, 0u);
  // With P states, naming at N = P cannot be guaranteed (Prop 4 territory):
  // some runs must end with the sink state still present.
  EXPECT_LT(namedRuns, silentRuns);
}

TEST(CountingProtocol, RejectsPBelow2) {
  EXPECT_THROW(CountingProtocol(1), std::invalid_argument);
}

}  // namespace
}  // namespace ppn
