// The footnote-5 transformer ([17]): asymmetric -> symmetric at the cost of
// doubling the state space and requiring global fairness.
#include "naming/symmetrizer.h"

#include <gtest/gtest.h>

#include "analysis/global_checker.h"
#include "analysis/initial_sets.h"
#include "analysis/weak_checker.h"
#include "core/engine.h"
#include "naming/asymmetric_naming.h"
#include "sched/random_scheduler.h"
#include "sim/runner.h"

namespace ppn {
namespace {

/// All configurations except the fully identical ones (identical inner state
/// AND coin everywhere), which symmetric rules provably cannot escape.
std::vector<Configuration> diverseConfigurations(const Protocol& proto,
                                                 std::uint32_t n) {
  std::vector<Configuration> out;
  for (auto& c : allCanonicalConfigurations(proto, n)) {
    const bool allSame =
        std::all_of(c.mobile.begin(), c.mobile.end(),
                    [&](StateId s) { return s == c.mobile.front(); });
    if (!allSame) out.push_back(std::move(c));
  }
  return out;
}

TEST(Symmetrizer, IsSymmetricAndDoublesStates) {
  const AsymmetricNaming inner(3);
  const SymmetrizedProtocol proto(inner);
  EXPECT_EQ(proto.numMobileStates(), 6u);
  EXPECT_FALSE(verifySymmetric(proto).has_value());
  EXPECT_FALSE(verifyClosed(proto).has_value());
}

TEST(Symmetrizer, NameProjectionDropsTheCoin) {
  const AsymmetricNaming inner(3);
  const SymmetrizedProtocol proto(inner);
  for (StateId s = 0; s < 3; ++s) {
    EXPECT_EQ(proto.nameOf(proto.encode(s, false)), s);
    EXPECT_EQ(proto.nameOf(proto.encode(s, true)), s);
  }
}

TEST(Symmetrizer, DifferingCoinsRunTheInnerRule) {
  const AsymmetricNaming inner(4);
  const SymmetrizedProtocol proto(inner);
  // Inner homonyms, coins (0, 1): the 0-coin agent initiates
  // (s, s) -> (s, s+1); both coins flip.
  const MobilePair r =
      proto.mobileDelta(proto.encode(2, false), proto.encode(2, true));
  EXPECT_EQ(r.initiator, proto.encode(2, true));
  EXPECT_EQ(r.responder, proto.encode(3, false));
  // Mirrored orientation gives the mirrored outcome (symmetry).
  const MobilePair m =
      proto.mobileDelta(proto.encode(2, true), proto.encode(2, false));
  EXPECT_EQ(m.initiator, proto.encode(3, false));
  EXPECT_EQ(m.responder, proto.encode(2, true));
}

TEST(Symmetrizer, EqualCoinsTieBreakOnStateOrder) {
  const AsymmetricNaming inner(4);
  const SymmetrizedProtocol proto(inner);
  const MobilePair r =
      proto.mobileDelta(proto.encode(1, false), proto.encode(3, false));
  EXPECT_EQ(r.initiator, proto.encode(1, true));  // lower state flips
  EXPECT_EQ(r.responder, proto.encode(3, false));
}

TEST(Symmetrizer, FullyIdenticalPairIsStuck) {
  const AsymmetricNaming inner(4);
  const SymmetrizedProtocol proto(inner);
  const StateId s = proto.encode(2, true);
  EXPECT_EQ(proto.mobileDelta(s, s), (MobilePair{s, s}));
}

TEST(Symmetrizer, SolvesNamingUnderGlobalFairnessFromDiverseStarts) {
  // The transformer's guarantee: symmetric rules + global fairness, from any
  // configuration in which not all agents are fully identical.
  for (const StateId p : {2u, 3u}) {
    const AsymmetricNaming inner(p);
    const SymmetrizedProtocol proto(inner);
    const GlobalVerdict v = checkGlobalFairness(
        proto, namingProblem(proto), diverseConfigurations(proto, p));
    ASSERT_TRUE(v.explored);
    EXPECT_TRUE(v.solves) << "P=" << p << ": " << v.reason;
  }
}

TEST(Symmetrizer, CannotEscapeFullyUniformStarts) {
  // The inadequacy half of footnote 5: from an all-identical configuration
  // nothing can ever happen (Prop 1/2 style), so the transformer is NOT a
  // substitute for the paper's bespoke symmetric protocols.
  const AsymmetricNaming inner(3);
  const SymmetrizedProtocol proto(inner);
  Configuration uniform;
  uniform.mobile.assign(3, proto.encode(1, false));
  const GlobalVerdict v =
      checkGlobalFairness(proto, namingProblem(proto), {uniform});
  ASSERT_TRUE(v.explored);
  EXPECT_FALSE(v.solves);
  EXPECT_EQ(v.numConfigs, 1u);  // literally nothing is reachable
}

TEST(Symmetrizer, StateCostExceedsTheOptimalPPlus1) {
  // 2P > P+1 for every P > 1 — the quantitative point of footnote 5.
  for (const StateId p : {2u, 3u, 5u, 8u}) {
    const AsymmetricNaming inner(p);
    const SymmetrizedProtocol proto(inner);
    EXPECT_GT(proto.numMobileStates(), p + 1);
  }
}

TEST(Symmetrizer, ConvergesInSimulation) {
  const AsymmetricNaming inner(6);
  const SymmetrizedProtocol proto(inner);
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    Configuration start = arbitraryConfiguration(proto, 6, rng);
    // Nudge fully-uniform samples into the supported regime.
    if (std::all_of(start.mobile.begin(), start.mobile.end(),
                    [&](StateId s) { return s == start.mobile.front(); })) {
      start.mobile[0] ^= 1u;  // flip one coin
    }
    Engine engine(proto, start);
    RandomScheduler sched(6, rng.next());
    // Converged = named && name-quiescent (coins may keep flipping, so the
    // run is judged with isNamingSolved rather than full silence).
    bool done = false;
    for (int step = 0; step < 1'000'000 && !done; ++step) {
      engine.step(sched.next());
      if (engine.totalInteractions() % 32 == 0) {
        done = engine.namingSolved();
      }
    }
    EXPECT_TRUE(done) << "trial " << trial;
  }
}

TEST(Symmetrizer, RejectsLeaderedProtocols) {
  class WithLeader final : public Protocol {
   public:
    std::string name() const override { return "x"; }
    StateId numMobileStates() const override { return 2; }
    bool hasLeader() const override { return true; }
    bool isSymmetric() const override { return true; }
    MobilePair mobileDelta(StateId a, StateId b) const override {
      return MobilePair{a, b};
    }
    LeaderResult leaderDelta(LeaderStateId l, StateId m) const override {
      return LeaderResult{l, m};
    }
  };
  const WithLeader inner;
  EXPECT_THROW(SymmetrizedProtocol{inner}, std::invalid_argument);
}

}  // namespace
}  // namespace ppn
