// Ablation: Protocol 2 WITHOUT its reset rule (lines 11-12) is still a
// correct naming protocol from a well-initialized BST, but loses
// self-stabilization — the reset is precisely what pays for the arbitrary
// leader initialization of Proposition 16.
#include <gtest/gtest.h>

#include "analysis/initial_sets.h"
#include "analysis/weak_checker.h"
#include "core/engine.h"
#include "naming/bst_state.h"
#include "naming/selfstab_weak_naming.h"
#include "sched/deterministic_schedulers.h"
#include "sim/runner.h"

namespace ppn {
namespace {

TEST(ResetAblation, NoResetVariantStillWorksFromCleanBst) {
  const StateId p = 3;
  const SelfStabWeakNaming noReset(p, /*withReset=*/false);
  // Initial set: arbitrary mobile agents, BST clean (n = k = 0).
  std::vector<Configuration> initials;
  for (auto& c : allConcreteConfigurations(noReset, p)) {
    if (unpackBst(*c.leader).n == 0 && unpackBst(*c.leader).k == 0) {
      initials.push_back(std::move(c));
    }
  }
  ASSERT_FALSE(initials.empty());
  const WeakVerdict v =
      checkWeakFairness(noReset, namingProblem(noReset), initials, 8'000'000);
  ASSERT_TRUE(v.explored);
  EXPECT_TRUE(v.solves) << v.reason;
}

TEST(ResetAblation, NoResetVariantFailsSelfStabilization) {
  const StateId p = 3;
  const SelfStabWeakNaming noReset(p, /*withReset=*/false);
  const WeakVerdict v =
      checkWeakFairness(noReset, namingProblem(noReset),
                        allConcreteConfigurations(noReset, p), 8'000'000);
  ASSERT_TRUE(v.explored);
  EXPECT_FALSE(v.solves)
      << "without the reset, a corrupted BST (n > P) must wedge the protocol";
}

TEST(ResetAblation, WedgedRunDemonstration) {
  // Concrete wedge: BST starts past the end (n = P+1) with homonym agents;
  // without the reset rule nothing ever repairs them.
  const StateId p = 3;
  const SelfStabWeakNaming noReset(p, /*withReset=*/false);
  Configuration start{{2, 2, 2},
                      packBst(BstState{.n = p + 1, .k = 3, .namePtr = 0})};
  Engine engine(noReset, start);
  RoundRobinScheduler sched(4);
  const RunOutcome out = runUntilSilent(engine, sched, RunLimits{200000, 16});
  ASSERT_TRUE(out.silent);  // wedged: homonyms collapsed into the sink
  EXPECT_FALSE(out.namingSolved);
  EXPECT_GE(out.finalConfig.multiplicity(0), 2u)
      << "at least one homonym pair must have dropped to 0 and stayed";
}

TEST(ResetAblation, WithResetRepairsTheSameStart) {
  const StateId p = 3;
  const SelfStabWeakNaming withReset(p, /*withReset=*/true);
  Configuration start{{2, 2, 2},
                      packBst(BstState{.n = p + 1, .k = 3, .namePtr = 0})};
  Engine engine(withReset, start);
  RoundRobinScheduler sched(4);
  const RunOutcome out = runUntilSilent(engine, sched, RunLimits{200000, 16});
  ASSERT_TRUE(out.silent);
  EXPECT_TRUE(out.namingSolved);
}

TEST(ResetAblation, NamesReflectTheVariant) {
  const SelfStabWeakNaming a(3, true), b(3, false);
  EXPECT_EQ(a.name().find("no-reset"), std::string::npos);
  EXPECT_NE(b.name().find("no-reset"), std::string::npos);
}

}  // namespace
}  // namespace ppn
