// Protocol 2 / Proposition 16 tests: self-stabilizing symmetric naming under
// weak fairness, P+1 states, non-initialized leader.
#include "naming/selfstab_weak_naming.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "naming/bst_state.h"
#include "sched/deterministic_schedulers.h"
#include "sched/random_scheduler.h"
#include "sim/runner.h"
#include "util/rng.h"

namespace ppn {
namespace {

TEST(SelfStabWeakNaming, HasPPlusOneStatesAndNoDeclaredInit) {
  const SelfStabWeakNaming proto(4);
  EXPECT_EQ(proto.numMobileStates(), 5u);
  EXPECT_TRUE(proto.hasLeader());
  EXPECT_FALSE(proto.initialLeaderState().has_value());  // non-initialized
  EXPECT_FALSE(proto.uniformMobileInit().has_value());
  EXPECT_FALSE(proto.allLeaderStates().empty());
}

TEST(SelfStabWeakNaming, ResetRuleFires) {
  // n > P and a 0-agent: BST must reset n = k = 0 (lines 11-12).
  const StateId p = 3;
  const SelfStabWeakNaming proto(p);
  const LeaderStateId overrun = packBst(BstState{.n = p + 1, .k = 5, .namePtr = 0});
  const LeaderResult r = proto.leaderDelta(overrun, 0);
  EXPECT_EQ(unpackBst(r.leader).n, 0u);
  EXPECT_EQ(unpackBst(r.leader).k, 0u);
  EXPECT_EQ(r.mobile, 0u);  // the agent itself is not renamed by the reset
}

TEST(SelfStabWeakNaming, ResetDoesNotFireOnNamedAgents) {
  const StateId p = 3;
  const SelfStabWeakNaming proto(p);
  const LeaderStateId overrun = packBst(BstState{.n = p + 1, .k = 5, .namePtr = 0});
  for (StateId s = 1; s <= p; ++s) {
    EXPECT_EQ(proto.leaderDelta(overrun, s), (LeaderResult{overrun, s}));
  }
}

TEST(SelfStabWeakNaming, BodyActiveUpToNEqualsP) {
  // Protocol 2's guard is n <= P (not n < P as in Protocol 1): at n = P a
  // 0-agent still advances the pointer.
  const StateId p = 3;
  const SelfStabWeakNaming proto(p);
  const LeaderStateId atP = packBst(BstState{.n = p, .k = 3, .namePtr = 0});
  const LeaderResult r = proto.leaderDelta(atP, 0);
  EXPECT_EQ(unpackBst(r.leader).k, 4u);
  EXPECT_NE(r.mobile, 0u);
}

class SelfStabSweep
    : public ::testing::TestWithParam<std::tuple<StateId, std::uint32_t>> {};

TEST_P(SelfStabSweep, NamesFromFullyArbitraryStates) {
  const auto [p, n] = GetParam();
  const SelfStabWeakNaming proto(p);
  Rng rng(static_cast<std::uint64_t>(p) * 31 + n);
  for (int trial = 0; trial < 6; ++trial) {
    // Arbitrary mobile AND leader states: true self-stabilization.
    Engine engine(proto, arbitraryConfiguration(proto, n, rng));
    RoundRobinScheduler sched(n + 1);
    const RunOutcome out =
        runUntilSilent(engine, sched, RunLimits{5'000'000, 64});
    ASSERT_TRUE(out.silent) << "P=" << p << " N=" << n << " trial " << trial;
    EXPECT_TRUE(out.namingSolved);
    // Names are distinct values in {1..P}. (Only a well-initialized BST
    // guarantees the sharper {1..N}; an arbitrary BST start may legitimately
    // settle on any distinct non-sink names.)
    std::vector<StateId> names = out.finalConfig.mobile;
    std::sort(names.begin(), names.end());
    EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end());
    for (const StateId s : names) {
      EXPECT_GE(s, 1u);
      EXPECT_LE(s, p);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelfStabSweep,
    ::testing::Values(std::tuple{StateId{1}, 1u}, std::tuple{StateId{2}, 1u},
                      std::tuple{StateId{2}, 2u}, std::tuple{StateId{3}, 2u},
                      std::tuple{StateId{3}, 3u}, std::tuple{StateId{4}, 4u},
                      std::tuple{StateId{5}, 3u}, std::tuple{StateId{6}, 6u},
                      std::tuple{StateId{8}, 8u}, std::tuple{StateId{10}, 10u}),
    [](const auto& paramInfo) {
      return "P" + std::to_string(std::get<0>(paramInfo.param)) + "_N" +
             std::to_string(std::get<1>(paramInfo.param));
    });

TEST(SelfStabWeakNaming, ConvergesUnderRandomAndTournamentSchedulers) {
  const StateId p = 5;
  const SelfStabWeakNaming proto(p);
  Rng rng(404);
  for (const SchedulerKind kind :
       {SchedulerKind::kRandom, SchedulerKind::kTournament,
        SchedulerKind::kSkewed}) {
    for (int trial = 0; trial < 4; ++trial) {
      Engine engine(proto, arbitraryConfiguration(proto, p, rng));
      auto sched = makeScheduler(kind, p + 1, rng.next());
      const RunOutcome out =
          runUntilSilent(engine, *sched, RunLimits{5'000'000, 64});
      ASSERT_TRUE(out.silent) << schedulerKindName(kind);
      EXPECT_TRUE(out.namingSolved) << schedulerKindName(kind);
    }
  }
}

TEST(SelfStabWeakNaming, WorstCaseLeaderStartStillConverges) {
  // Adversarial leader start: n already past P with a garbage pointer, all
  // agents homonyms in the top name.
  const StateId p = 4;
  const SelfStabWeakNaming proto(p);
  Configuration start{{4, 4, 4, 4},
                      packBst(BstState{.n = p + 1, .k = (1u << p), .namePtr = 0})};
  Engine engine(proto, start);
  RoundRobinScheduler sched(5);
  const RunOutcome out = runUntilSilent(engine, sched, RunLimits{5'000'000, 64});
  ASSERT_TRUE(out.silent);
  EXPECT_TRUE(out.namingSolved);
}

}  // namespace
}  // namespace ppn
