// Proposition 12 unit and property tests.
#include "naming/asymmetric_naming.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "sched/deterministic_schedulers.h"
#include "sched/random_scheduler.h"
#include "sim/runner.h"
#include "util/rng.h"

namespace ppn {
namespace {

TEST(AsymmetricNaming, SingleRuleShape) {
  const AsymmetricNaming proto(5);
  // Homonyms: responder advances cyclically.
  EXPECT_EQ(proto.mobileDelta(3, 3), (MobilePair{3, 4}));
  EXPECT_EQ(proto.mobileDelta(4, 4), (MobilePair{4, 0}));
  // Distinct states: null.
  EXPECT_EQ(proto.mobileDelta(1, 2), (MobilePair{1, 2}));
  EXPECT_EQ(proto.mobileDelta(2, 1), (MobilePair{2, 1}));
}

TEST(AsymmetricNaming, DeclaredAsymmetricAndLeaderless) {
  const AsymmetricNaming proto(4);
  EXPECT_FALSE(proto.isSymmetric());
  EXPECT_FALSE(proto.hasLeader());
  EXPECT_FALSE(proto.uniformMobileInit().has_value());  // self-stabilizing
  EXPECT_EQ(proto.numMobileStates(), 4u);
}

TEST(HolePotential, CountsHolesAndDistances) {
  // P = 4, config {0, 0, 2}: holes {1, 3}; distances: agent(0)->1 is 1 (x2),
  // agent(2)->3 is 1. Total (2, 3).
  const Configuration c{{0, 0, 2}, std::nullopt};
  const auto [holes, dist] = holePotential(c, 4);
  EXPECT_EQ(holes, 2u);
  EXPECT_EQ(dist, 3u);
}

TEST(HolePotential, ZeroWhenNoHoles) {
  const Configuration c{{0, 1, 2}, std::nullopt};
  const auto [holes, dist] = holePotential(c, 3);
  EXPECT_EQ(holes, 0u);
  EXPECT_EQ(dist, 0u);
}

TEST(HolePotential, WrapsAroundModuloP) {
  // P = 4, config {3, 3}: holes {0, 1, 2}; distance of each 3-agent is 1
  // (3 + 1 mod 4 = 0 is a hole).
  const Configuration c{{3, 3}, std::nullopt};
  const auto [holes, dist] = holePotential(c, 4);
  EXPECT_EQ(holes, 3u);
  EXPECT_EQ(dist, 2u);
}

// The paper's proof: f = (holes, distance) strictly decreases
// lexicographically on every non-null transition. Property-checked over
// random configurations and random applicable transitions.
TEST(HolePotential, StrictlyDecreasesOnEveryNonNullTransition) {
  Rng rng(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    const StateId p = static_cast<StateId>(2 + rng.below(6));          // P in 2..7
    const auto n = static_cast<std::uint32_t>(2 + rng.below(p - 1));   // N in 2..P
    const AsymmetricNaming proto(p);
    Configuration c = arbitraryConfiguration(proto, n, rng);

    // Find an applicable non-null transition (homonym pair), if any.
    bool found = false;
    for (std::uint32_t i = 0; i < n && !found; ++i) {
      for (std::uint32_t j = i + 1; j < n && !found; ++j) {
        if (c.mobile[i] != c.mobile[j]) continue;
        const auto before = holePotential(c, p);
        Configuration next = c;
        applyInteraction(proto, next, Interaction{i, j});
        const auto after = holePotential(next, p);
        EXPECT_LT(after, before)
            << "potential must strictly decrease (P=" << p << ")";
        found = true;
      }
    }
  }
}

TEST(AsymmetricNaming, PotentialBoundImpliesTermination) {
  // f <= (P, P(P-1)) (paper): verify the bound over random configurations.
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    const StateId p = static_cast<StateId>(2 + rng.below(8));
    const AsymmetricNaming proto(p);
    const auto n = static_cast<std::uint32_t>(1 + rng.below(p));
    const Configuration c = arbitraryConfiguration(proto, n, rng);
    const auto [holes, dist] = holePotential(c, p);
    EXPECT_LE(holes, p);
    EXPECT_LE(dist, static_cast<std::uint64_t>(p) * (p - 1));
  }
}

TEST(AsymmetricNaming, ConvergesUnderRandomScheduler) {
  const AsymmetricNaming proto(8);
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    Engine engine(proto, arbitraryConfiguration(proto, 8, rng));
    RandomScheduler sched(8, rng.next());
    const RunOutcome out = runUntilSilent(engine, sched, RunLimits{100000, 16});
    ASSERT_TRUE(out.silent);
    EXPECT_TRUE(out.namingSolved);
    EXPECT_TRUE(out.finalConfig.allDistinct());
  }
}

TEST(AsymmetricNaming, ConvergesUnderWeaklyFairSchedulers) {
  // Prop 12 claims correctness under weak fairness too.
  const AsymmetricNaming proto(6);
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Configuration start = arbitraryConfiguration(proto, 6, rng);
    for (const SchedulerKind kind :
         {SchedulerKind::kRoundRobin, SchedulerKind::kTournament}) {
      Engine engine(proto, start);
      auto sched = makeScheduler(kind, 6, 0);
      const RunOutcome out = runUntilSilent(engine, *sched, RunLimits{100000, 16});
      ASSERT_TRUE(out.silent) << schedulerKindName(kind);
      EXPECT_TRUE(out.namingSolved) << schedulerKindName(kind);
    }
  }
}

TEST(AsymmetricNaming, WorksForAllPopulationSizesUpToP) {
  const StateId p = 7;
  const AsymmetricNaming proto(p);
  Rng rng(5);
  for (std::uint32_t n = 1; n <= p; ++n) {
    Engine engine(proto, arbitraryConfiguration(proto, n, rng));
    RandomScheduler sched(std::max(2u, n), rng.next());
    if (n == 1) {
      // A single agent is trivially named; no interactions possible.
      EXPECT_TRUE(engine.namingSolved());
      continue;
    }
    const RunOutcome out = runUntilSilent(engine, sched, RunLimits{100000, 16});
    ASSERT_TRUE(out.silent) << "N=" << n;
    EXPECT_TRUE(out.namingSolved) << "N=" << n;
  }
}

TEST(AsymmetricNaming, RejectsZeroP) {
  EXPECT_THROW(AsymmetricNaming(0), std::invalid_argument);
}

}  // namespace
}  // namespace ppn
