#include "stats/summary.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ppn {
namespace {

TEST(Summarize, EmptyIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, SingleSample) {
  const Summary s = summarize({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(Summarize, KnownValues) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);  // sample variance = 2.5
}

TEST(Summarize, MedianOfEvenCountInterpolates) {
  const Summary s = summarize({1, 2, 3, 10});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Summarize, OrderIndependent) {
  const Summary a = summarize({5, 1, 4, 2, 3});
  const Summary b = summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.median, b.median);
  EXPECT_DOUBLE_EQ(a.p90, b.p90);
}

TEST(Quantile, EndpointsAndMidpoints) {
  const std::vector<double> sorted{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(sorted, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(sorted, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(sorted, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Accumulator, MatchesBatchSummary) {
  const std::vector<double> xs{3.5, -1.0, 7.25, 0.0, 2.0, 2.0, 9.5};
  Accumulator acc;
  for (const double x : xs) acc.add(x);
  const Summary s = summarize(xs);
  EXPECT_EQ(acc.count(), s.count);
  EXPECT_NEAR(acc.mean(), s.mean, 1e-12);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), s.min);
  EXPECT_DOUBLE_EQ(acc.max(), s.max);
}

TEST(Accumulator, VarianceNeedsTwoSamples) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  acc.add(7.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 2.0);
}

TEST(Summary, ToStringContainsFields) {
  const Summary s = summarize({1, 2, 3});
  const std::string str = s.toString();
  EXPECT_NE(str.find("mean=2"), std::string::npos);
  EXPECT_NE(str.find("n=3"), std::string::npos);
}

}  // namespace
}  // namespace ppn
