#include "stats/regression.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ppn {
namespace {

TEST(LinearFit, ExactLine) {
  const LinearFit f = linearFit({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineStillCloseAndR2Sane) {
  const LinearFit f =
      linearFit({0, 1, 2, 3, 4, 5}, {0.1, 0.9, 2.2, 2.8, 4.1, 5.0});
  EXPECT_NEAR(f.slope, 1.0, 0.1);
  EXPECT_GT(f.r2, 0.98);
  EXPECT_LE(f.r2, 1.0);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_EQ(linearFit({}, {}).slope, 0.0);
  EXPECT_EQ(linearFit({1}, {2}).slope, 0.0);
  // All x equal: no slope recoverable.
  EXPECT_EQ(linearFit({2, 2, 2}, {1, 2, 3}).slope, 0.0);
}

TEST(LinearFit, ConstantYHasZeroSlopePerfectFit) {
  const LinearFit f = linearFit({1, 2, 3}, {5, 5, 5});
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(PowerLawFit, RecoversExponent) {
  // y = 3 * x^2.5
  std::vector<double> x, y;
  for (double v = 1; v <= 10; v += 1) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 2.5));
  }
  const LinearFit f = powerLawFit(x, y);
  EXPECT_NEAR(f.slope, 2.5, 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 3.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(PowerLawFit, SkipsNonPositivePoints) {
  const LinearFit f = powerLawFit({0, 1, 2, 4}, {5, 2, 4, 8});  // x=0 skipped
  EXPECT_NEAR(f.slope, 1.0, 1e-9);  // y = 2x on the remaining points
}

TEST(ExponentialFit, RecoversBase) {
  // y = 5 * 2^x  =>  slope = ln 2.
  std::vector<double> x, y;
  for (double v = 0; v <= 12; v += 1) {
    x.push_back(v);
    y.push_back(5.0 * std::pow(2.0, v));
  }
  const LinearFit f = exponentialFit(x, y);
  EXPECT_NEAR(f.slope, std::log(2.0), 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 5.0, 1e-9);
}

TEST(ExponentialFit, DistinguishesGrowthRegimes) {
  // The tradeoff bench's discriminator: exponential data fits semi-log far
  // better than quadratic data does.
  std::vector<double> x, quad, expo;
  for (double v = 1; v <= 12; v += 1) {
    x.push_back(v);
    quad.push_back(7.0 * v * v);
    expo.push_back(0.5 * std::pow(2.0, v));
  }
  EXPECT_GT(exponentialFit(x, expo).r2, 0.999);
  EXPECT_GT(powerLawFit(x, quad).r2, 0.999);
  // Cross-fits are visibly worse.
  EXPECT_LT(powerLawFit(x, expo).r2, exponentialFit(x, expo).r2);
  EXPECT_LT(exponentialFit(x, quad).r2, powerLawFit(x, quad).r2);
}

}  // namespace
}  // namespace ppn
