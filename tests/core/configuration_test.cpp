#include "core/configuration.h"

#include <gtest/gtest.h>

namespace ppn {
namespace {

TEST(Configuration, CanonicalizedSortsMobile) {
  Configuration c{{3, 1, 2}, std::nullopt};
  const Configuration canon = c.canonicalized();
  EXPECT_EQ(canon.mobile, (std::vector<StateId>{1, 2, 3}));
  EXPECT_EQ(c.mobile, (std::vector<StateId>{3, 1, 2}));  // original untouched
}

TEST(Configuration, CanonicalizedKeepsLeader) {
  Configuration c{{2, 0}, LeaderStateId{99}};
  EXPECT_EQ(c.canonicalized().leader, LeaderStateId{99});
}

TEST(Configuration, EquivalentConfigsShareCanonicalForm) {
  // The paper's Section 3.1 example: [2,3,2,m,l] equivalent to [2,2,3,m,l].
  Configuration a{{2, 3, 2, 0}, LeaderStateId{5}};
  Configuration b{{2, 2, 3, 0}, LeaderStateId{5}};
  EXPECT_EQ(a.canonicalized(), b.canonicalized());
}

TEST(Configuration, Multiplicity) {
  Configuration c{{1, 1, 2, 1}, std::nullopt};
  EXPECT_EQ(c.multiplicity(1), 3u);
  EXPECT_EQ(c.multiplicity(2), 1u);
  EXPECT_EQ(c.multiplicity(0), 0u);
}

TEST(Configuration, AllDistinct) {
  EXPECT_TRUE((Configuration{{0, 1, 2}, std::nullopt}).allDistinct());
  EXPECT_FALSE((Configuration{{0, 1, 0}, std::nullopt}).allDistinct());
  EXPECT_TRUE((Configuration{{}, std::nullopt}).allDistinct());
  EXPECT_TRUE((Configuration{{5}, std::nullopt}).allDistinct());
}

TEST(Configuration, Histogram) {
  Configuration c{{0, 2, 2, 1}, std::nullopt};
  const auto h = c.histogram(3);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0], 1u);
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[2], 2u);
}

TEST(Configuration, HashDistinguishesLeaderPresence) {
  Configuration noLeader{{1, 2}, std::nullopt};
  Configuration withLeader{{1, 2}, LeaderStateId{0}};
  EXPECT_NE(noLeader, withLeader);
  // Not a strict requirement for a hash, but these must not be trivially
  // equal for the interner to be efficient.
  EXPECT_NE(noLeader.hashValue(), withLeader.hashValue());
}

TEST(Configuration, HashEqualForEqualConfigs) {
  Configuration a{{1, 2, 3}, LeaderStateId{7}};
  Configuration b{{1, 2, 3}, LeaderStateId{7}};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hashValue(), b.hashValue());
}

TEST(Configuration, ToStringFormats) {
  Configuration c{{1, 0}, LeaderStateId{3}};
  EXPECT_EQ(c.toString(), "[1, 0 | L3]");
  EXPECT_EQ(c.toString("BST(n=1)"), "[1, 0 | BST(n=1)]");
  Configuration noLeader{{4}, std::nullopt};
  EXPECT_EQ(noLeader.toString(), "[4]");
}

TEST(Configuration, NumMobile) {
  EXPECT_EQ((Configuration{{1, 2, 3}, std::nullopt}).numMobile(), 3u);
  EXPECT_EQ((Configuration{{}, std::nullopt}).numMobile(), 0u);
}

}  // namespace
}  // namespace ppn
