#include "core/engine.h"

#include <gtest/gtest.h>

#include "naming/asymmetric_naming.h"
#include "naming/counting_protocol.h"
#include "naming/leader_uniform_naming.h"
#include "naming/symmetric_global_naming.h"

namespace ppn {
namespace {

TEST(ApplyInteraction, MobileMobileAsymmetric) {
  const AsymmetricNaming proto(4);
  Configuration c{{2, 2, 0}, std::nullopt};
  // Homonyms: responder advances.
  EXPECT_TRUE(applyInteraction(proto, c, Interaction{0, 1}));
  EXPECT_EQ(c.mobile, (std::vector<StateId>{2, 3, 0}));
  // Distinct states: null.
  EXPECT_FALSE(applyInteraction(proto, c, Interaction{0, 2}));
  EXPECT_EQ(c.mobile, (std::vector<StateId>{2, 3, 0}));
}

TEST(ApplyInteraction, OrientationMattersForAsymmetric) {
  const AsymmetricNaming proto(4);
  Configuration a{{1, 1}, std::nullopt};
  applyInteraction(proto, a, Interaction{0, 1});
  EXPECT_EQ(a.mobile, (std::vector<StateId>{1, 2}));

  Configuration b{{1, 1}, std::nullopt};
  applyInteraction(proto, b, Interaction{1, 0});
  EXPECT_EQ(b.mobile, (std::vector<StateId>{2, 1}));
}

TEST(ApplyInteraction, WrapsModuloP) {
  const AsymmetricNaming proto(3);
  Configuration c{{2, 2}, std::nullopt};
  applyInteraction(proto, c, Interaction{0, 1});
  EXPECT_EQ(c.mobile, (std::vector<StateId>{2, 0}));
}

TEST(ApplyInteraction, LeaderInteractionEitherOrientation) {
  const LeaderUniformNaming proto(3);  // unnamed marker = 2, counter starts 0
  Configuration c{{2, 2}, LeaderStateId{0}};
  // Leader is participant index 2 here (N = 2).
  EXPECT_TRUE(applyInteraction(proto, c, Interaction{2, 0}));
  EXPECT_EQ(c.mobile[0], 0u);
  EXPECT_EQ(*c.leader, 1u);
  EXPECT_TRUE(applyInteraction(proto, c, Interaction{1, 2}));  // mobile first
  EXPECT_EQ(c.mobile[1], 1u);
  EXPECT_EQ(*c.leader, 2u);
}

TEST(ApplyInteraction, RejectsSelfInteraction) {
  const AsymmetricNaming proto(3);
  Configuration c{{0, 1}, std::nullopt};
  EXPECT_THROW(applyInteraction(proto, c, Interaction{1, 1}), std::logic_error);
}

TEST(ApplyInteraction, RejectsLeaderIndexWithoutLeader) {
  const AsymmetricNaming proto(3);
  Configuration c{{0, 1}, std::nullopt};
  EXPECT_THROW(applyInteraction(proto, c, Interaction{0, 2}), std::logic_error);
}

TEST(IsSilent, DistinctNamesSilentForAsymmetric) {
  const AsymmetricNaming proto(3);
  EXPECT_TRUE(isSilent(proto, Configuration{{0, 1, 2}, std::nullopt}));
  EXPECT_FALSE(isSilent(proto, Configuration{{0, 0, 2}, std::nullopt}));
}

TEST(IsSilent, LeaderTransitionsBreakSilence) {
  const LeaderUniformNaming proto(3);
  // An unnamed agent (state 2) with counter 0: leader will rename it.
  EXPECT_FALSE(isSilent(proto, Configuration{{2, 0}, LeaderStateId{1}}));
  // Fully named: silent.
  EXPECT_TRUE(isSilent(proto, Configuration{{0, 1}, LeaderStateId{2}}));
}

TEST(IsMobileSilent, ToleratesLeaderOnlyChanges) {
  // Craft a protocol whose leader ticks forever without touching agents.
  class Ticker : public Protocol {
   public:
    std::string name() const override { return "ticker"; }
    StateId numMobileStates() const override { return 2; }
    bool hasLeader() const override { return true; }
    bool isSymmetric() const override { return true; }
    MobilePair mobileDelta(StateId a, StateId b) const override {
      return MobilePair{a, b};
    }
    LeaderResult leaderDelta(LeaderStateId l, StateId m) const override {
      return LeaderResult{(l + 1) % 5, m};
    }
    std::optional<LeaderStateId> initialLeaderState() const override {
      return LeaderStateId{0};
    }
  };
  const Ticker proto;
  const Configuration c{{0, 1}, LeaderStateId{0}};
  EXPECT_FALSE(isSilent(proto, c));
  EXPECT_TRUE(isMobileSilent(proto, c));
}

TEST(IsNamed, ChecksDistinctnessAndValidity) {
  const CountingProtocol proto(4);  // 0 is not a valid name
  const LeaderStateId bst{0};       // packBst(n=0, k=0)
  EXPECT_TRUE(isNamed(proto, Configuration{{1, 2, 3}, bst}));
  EXPECT_FALSE(isNamed(proto, Configuration{{1, 1, 3}, bst}));
  EXPECT_FALSE(isNamed(proto, Configuration{{0, 2, 3}, bst}));
}

TEST(UniformConfiguration, BuildsDeclaredInit) {
  const LeaderUniformNaming proto(4);
  const Configuration c = uniformConfiguration(proto, 3);
  EXPECT_EQ(c.mobile, (std::vector<StateId>{3, 3, 3}));
  EXPECT_EQ(c.leader, LeaderStateId{0});
}

TEST(UniformConfiguration, ThrowsWithoutDeclaredInit) {
  const AsymmetricNaming proto(3);
  EXPECT_THROW(uniformConfiguration(proto, 3), std::logic_error);
}

TEST(ArbitraryConfiguration, RespectsStateSpace) {
  const SymmetricGlobalNaming proto(4);  // 5 states
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const Configuration c = arbitraryConfiguration(proto, 6, rng);
    EXPECT_EQ(c.numMobile(), 6u);
    for (const StateId s : c.mobile) EXPECT_LT(s, 5u);
    EXPECT_FALSE(c.leader.has_value());
  }
}

TEST(ArbitraryConfiguration, InitializedLeaderStaysInitialized) {
  const CountingProtocol proto(3);
  Rng rng(6);
  const Configuration c = arbitraryConfiguration(proto, 3, rng);
  EXPECT_EQ(c.leader, proto.initialLeaderState());
}

TEST(Engine, CountsInteractionsAndChanges) {
  const AsymmetricNaming proto(3);
  Engine engine(proto, Configuration{{1, 1, 0}, std::nullopt});
  EXPECT_TRUE(engine.step(Interaction{0, 1}));   // (1,1) -> (1,2)
  EXPECT_FALSE(engine.step(Interaction{0, 2}));  // distinct: null
  EXPECT_EQ(engine.totalInteractions(), 2u);
  EXPECT_EQ(engine.nonNullInteractions(), 1u);
  EXPECT_EQ(engine.lastChangeAt(), 1u);
  EXPECT_TRUE(engine.silent());
  EXPECT_TRUE(engine.namingSolved());
}

TEST(Engine, RejectsLeaderMismatch) {
  const CountingProtocol proto(3);
  EXPECT_THROW(Engine(proto, Configuration{{0, 1}, std::nullopt}),
               std::logic_error);
  const AsymmetricNaming noLeader(3);
  EXPECT_THROW(Engine(noLeader, Configuration{{0, 1}, LeaderStateId{0}}),
               std::logic_error);
}

TEST(Engine, CorruptionMarksChange) {
  const AsymmetricNaming proto(3);
  Engine engine(proto, Configuration{{0, 1, 2}, std::nullopt});
  EXPECT_TRUE(engine.silent());
  engine.corruptMobile(1, 0);
  EXPECT_FALSE(engine.silent());
  EXPECT_EQ(engine.config().mobile[1], 0u);
}

TEST(Engine, ResetToClearsCounters) {
  const AsymmetricNaming proto(3);
  Engine engine(proto, Configuration{{1, 1}, std::nullopt});
  engine.step(Interaction{0, 1});
  engine.resetTo(Configuration{{0, 0}, std::nullopt});
  EXPECT_EQ(engine.totalInteractions(), 0u);
  EXPECT_EQ(engine.lastChangeAt(), 0u);
  EXPECT_EQ(engine.config().mobile, (std::vector<StateId>{0, 0}));
}

}  // namespace
}  // namespace ppn
