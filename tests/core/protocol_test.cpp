// Cross-protocol structural checks: every protocol's declared symmetry and
// state-space closure hold exhaustively (paper, Section 2 definitions).
#include "core/protocol.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "naming/color_example.h"
#include "naming/registry.h"

namespace ppn {
namespace {

class AllProtocolsTest
    : public ::testing::TestWithParam<std::tuple<std::string, StateId>> {};

TEST_P(AllProtocolsTest, SymmetryDeclarationHolds) {
  const auto& [key, p] = GetParam();
  const auto proto = makeProtocol(key, p);
  const auto violation = verifySymmetric(*proto);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST_P(AllProtocolsTest, TransitionsStayInStateSpace) {
  const auto& [key, p] = GetParam();
  const auto proto = makeProtocol(key, p);
  const auto violation = verifyClosed(*proto);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST_P(AllProtocolsTest, DeclaredStateCountMatchesTable1) {
  const auto& [key, p] = GetParam();
  const auto proto = makeProtocol(key, p);
  // Table 1: P+1 states for the two symmetric self-stabilizing protocols
  // without initialized-leader+global or uniform-init help; P otherwise.
  const bool plusOne = (key == "symmetric-global" || key == "selfstab-weak");
  EXPECT_EQ(proto->numMobileStates(), plusOne ? p + 1 : p);
}

TEST_P(AllProtocolsTest, LeaderConsistency) {
  const auto& [key, p] = GetParam();
  const auto proto = makeProtocol(key, p);
  if (!proto->hasLeader()) {
    EXPECT_FALSE(proto->initialLeaderState().has_value());
    EXPECT_TRUE(proto->allLeaderStates().empty());
  } else if (const auto init = proto->initialLeaderState(); init.has_value()) {
    const auto all = proto->allLeaderStates();
    if (!all.empty()) {
      EXPECT_NE(std::find(all.begin(), all.end(), *init), all.end())
          << "initial leader state missing from allLeaderStates()";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllProtocolsTest,
    ::testing::Combine(::testing::Values("asymmetric", "symmetric-global",
                                         "leader-uniform", "counting",
                                         "selfstab-weak", "global-leader"),
                       ::testing::Values(StateId{2}, StateId{3}, StateId{4},
                                         StateId{5}, StateId{8})),
    [](const auto& paramInfo) {
      std::string key = std::get<0>(paramInfo.param);
      for (auto& ch : key)
        if (ch == '-') ch = '_';
      return key + "_P" + std::to_string(std::get<1>(paramInfo.param));
    });

TEST(ColorExampleProtocol, IsSymmetricAndClosed) {
  ColorExample proto;
  EXPECT_FALSE(verifySymmetric(proto).has_value());
  EXPECT_FALSE(verifyClosed(proto).has_value());
}

TEST(VerifySymmetric, DetectsAsymmetry) {
  // The asymmetric protocol must NOT pass a symmetric declaration; build a
  // lying wrapper to check the verifier has teeth.
  class Liar : public Protocol {
   public:
    std::string name() const override { return "liar"; }
    StateId numMobileStates() const override { return 3; }
    bool isSymmetric() const override { return true; }  // lie
    MobilePair mobileDelta(StateId a, StateId b) const override {
      if (a == b) return MobilePair{a, static_cast<StateId>((b + 1) % 3)};
      return MobilePair{a, b};
    }
  };
  const Liar liar;
  EXPECT_TRUE(verifySymmetric(liar).has_value());
}

}  // namespace
}  // namespace ppn
