#include "core/interaction_graph.h"

#include <gtest/gtest.h>

namespace ppn {
namespace {

TEST(InteractionGraph, CompleteHasAllPairs) {
  const auto g = InteractionGraph::complete(5);
  EXPECT_EQ(g.numEdges(), 10u);
  EXPECT_TRUE(g.isComplete());
  EXPECT_TRUE(g.isConnected());
  for (std::uint32_t i = 0; i < 5; ++i) {
    for (std::uint32_t j = 0; j < 5; ++j) {
      EXPECT_EQ(g.hasEdge(i, j), i != j);
    }
  }
}

TEST(InteractionGraph, Ring) {
  const auto g = InteractionGraph::ring(5);
  EXPECT_EQ(g.numEdges(), 5u);
  EXPECT_TRUE(g.isConnected());
  EXPECT_FALSE(g.isComplete());
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(4, 0));
  EXPECT_FALSE(g.hasEdge(0, 2));
  EXPECT_THROW(InteractionGraph::ring(2), std::invalid_argument);
}

TEST(InteractionGraph, Line) {
  const auto g = InteractionGraph::line(4);
  EXPECT_EQ(g.numEdges(), 3u);
  EXPECT_TRUE(g.isConnected());
  EXPECT_TRUE(g.hasEdge(1, 2));
  EXPECT_FALSE(g.hasEdge(0, 3));
}

TEST(InteractionGraph, Star) {
  const auto g = InteractionGraph::star(6, 5);
  EXPECT_EQ(g.numEdges(), 5u);
  EXPECT_TRUE(g.isConnected());
  for (std::uint32_t leaf = 0; leaf < 5; ++leaf) {
    EXPECT_TRUE(g.hasEdge(5, leaf));
    for (std::uint32_t other = leaf + 1; other < 5; ++other) {
      EXPECT_FALSE(g.hasEdge(leaf, other));
    }
  }
  EXPECT_THROW(InteractionGraph::star(3, 3), std::invalid_argument);
}

TEST(InteractionGraph, EdgeNormalization) {
  // Duplicates and reversed pairs collapse.
  const InteractionGraph g(3, {{1, 0}, {0, 1}, {2, 1}});
  EXPECT_EQ(g.numEdges(), 2u);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 2));
}

TEST(InteractionGraph, RejectsBadEdges) {
  EXPECT_THROW(InteractionGraph(3, {{0, 0}}), std::invalid_argument);
  EXPECT_THROW(InteractionGraph(3, {{0, 3}}), std::invalid_argument);
  EXPECT_THROW(InteractionGraph(1, {}), std::invalid_argument);
}

TEST(InteractionGraph, Disconnection) {
  const InteractionGraph g(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.isConnected());
}

TEST(InteractionGraph, RandomConnectedIsConnected) {
  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = InteractionGraph::randomConnected(8, 0.4, rng);
    EXPECT_TRUE(g.isConnected());
    EXPECT_EQ(g.numParticipants(), 8u);
  }
}

TEST(InteractionGraph, RandomConnectedGivesUpOnHopelessP) {
  Rng rng(56);
  EXPECT_THROW(InteractionGraph::randomConnected(12, 0.0, rng),
               std::runtime_error);
}

TEST(InteractionGraph, DescribeMentionsSizes) {
  const auto g = InteractionGraph::ring(4);
  const std::string d = g.describe();
  EXPECT_NE(d.find("4 participants"), std::string::npos);
  EXPECT_NE(d.find("4 edges"), std::string::npos);
}

}  // namespace
}  // namespace ppn
