// Equivalence and differential tests for the compiled fast path
// (core/compiled.h): the compiled tables must reproduce the virtual Protocol
// exactly, and compiled executions must be bit-identical to interpreted ones
// — same RunOutcome, same counters, same observer event stream.
#include "core/compiled.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "naming/asymmetric_naming.h"
#include "naming/bst_state.h"
#include "naming/registry.h"
#include "naming/symmetrizer.h"
#include "sched/random_scheduler.h"
#include "sim/runner.h"
#include "util/rng.h"

namespace ppn {
namespace {

/// Every registry protocol at a checker-sized bound (leader spaces stay
/// enumerable) and at a larger bound (counting/selfstab/global-leader then
/// return empty allLeaderStates, exercising the virtual leader fallback).
std::vector<std::pair<std::string, StateId>> registryMatrix() {
  std::vector<std::pair<std::string, StateId>> matrix;
  for (const std::string& key : protocolKeys()) {
    matrix.emplace_back(key, 4);
    matrix.emplace_back(key, 16);
  }
  return matrix;
}

class CompiledEquivalence
    : public ::testing::TestWithParam<std::pair<std::string, StateId>> {};

TEST_P(CompiledEquivalence, ReproducesTheVirtualProtocolExactly) {
  const auto& [key, p] = GetParam();
  const auto proto = makeProtocol(key, p);
  ASSERT_TRUE(CompiledProtocol::compilable(*proto));
  const CompiledProtocol cp(*proto);
  const StateId q = proto->numMobileStates();
  ASSERT_EQ(cp.numStates(), q);

  for (StateId a = 0; a < q; ++a) {
    EXPECT_EQ(cp.nameOf(a), proto->nameOf(a));
    EXPECT_EQ(cp.isValidName(a), proto->isValidName(a));
    EXPECT_EQ(cp.diagActive(a), proto->mobileDelta(a, a) != (MobilePair{a, a}));
    for (StateId b = 0; b < q; ++b) {
      const MobilePair expect = proto->mobileDelta(a, b);
      EXPECT_EQ(cp.mobileDelta(a, b), expect)
          << key << " delta(" << a << "," << b << ")";
      EXPECT_EQ(cp.mobileNull(a, b),
                expect.initiator == a && expect.responder == b);
    }
  }

  // Active rows = pair liveness in either orientation, diagonal excluded.
  for (StateId s = 0; s < q; ++s) {
    const std::uint64_t* row = cp.activeRow(s);
    for (StateId t = 0; t < q; ++t) {
      const bool bit = (row[t >> 6] >> (t & 63)) & 1u;
      const bool expect =
          t != s && (!cp.mobileNull(s, t) || !cp.mobileNull(t, s));
      EXPECT_EQ(bit, expect) << key << " activeRow(" << s << ")[" << t << "]";
    }
  }

  if (!proto->hasLeader()) return;
  const auto leaders = proto->allLeaderStates();
  if (!cp.leaderCompiled()) {
    // Large bounds drop leader enumeration; the mobile table must stand.
    EXPECT_TRUE(leaders.empty() ||
                leaders.size() * q > CompiledProtocol::kMaxLeaderEntries);
    return;
  }
  for (const LeaderStateId l : leaders) {
    const std::uint32_t li = cp.leaderIndexOf(l);
    ASSERT_NE(li, CompiledProtocol::kNoLeaderIndex);
    EXPECT_EQ(cp.leaderIdAt(li), l);
    for (StateId s = 0; s < q; ++s) {
      const LeaderResult expect = proto->leaderDelta(l, s);
      const auto& entry = cp.leaderDelta(li, s);
      EXPECT_EQ(cp.leaderIdAt(entry.nextLeader), expect.leader);
      EXPECT_EQ(entry.mobile, expect.mobile);
      EXPECT_EQ(cp.leaderNull(li, s),
                expect.leader == l && expect.mobile == s);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, CompiledEquivalence,
                         ::testing::ValuesIn(registryMatrix()),
                         [](const auto& paramInfo) {
                           std::string name = paramInfo.param.first + "_P" +
                                              std::to_string(paramInfo.param.second);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(CompiledProtocol, NonIdentityNameProjection) {
  const AsymmetricNaming inner(5);
  const SymmetrizedProtocol proto(inner);
  const CompiledProtocol cp(proto);
  for (StateId s = 0; s < proto.numMobileStates(); ++s) {
    EXPECT_EQ(cp.nameOf(s), proto.nameOf(s));
    EXPECT_EQ(cp.isValidName(s), proto.isValidName(s));
  }
}

TEST(CompiledProtocol, RejectsNonClosedDelta) {
  class Broken : public Protocol {
   public:
    std::string name() const override { return "broken"; }
    StateId numMobileStates() const override { return 3; }
    bool isSymmetric() const override { return false; }
    MobilePair mobileDelta(StateId a, StateId b) const override {
      if (a == 2 && b == 2) return MobilePair{7, 7};  // leaves the space
      return MobilePair{a, b};
    }
  };
  const Broken proto;
  EXPECT_THROW(CompiledProtocol cp(proto), std::invalid_argument);
}

// --- differential: compiled vs interpreted executions ----------------------

/// Serializes every observer hook invocation so two streams can be compared
/// for exact equality (same events, same order, same payloads).
class RecordingObserver final : public RunObserver {
 public:
  std::vector<std::string> events;

  void onRunStart(const RunStartEvent& e) override {
    add("start", e.runId, e.numMobile, e.numParticipants);
  }
  void onRunEnd(const RunEndEvent& e) override {
    // wallMillis is a timing, not a semantic field: excluded on purpose.
    add("end", e.runId, e.silent, e.named, e.timedOut, e.cancelled,
        e.convergenceInteractions, e.totalInteractions);
  }
  void onSilenceCheck(const SilenceCheckEvent& e) override {
    add("check", e.runId, e.interactions, e.silent);
  }
  void onWatchdogAbort(const WatchdogAbortEvent& e) override {
    add("watchdog", e.runId, e.interactions);
  }
  void onCancelled(const CancelledEvent& e) override {
    add("cancelled", e.runId, e.interactions);
  }
  void onFaultInjected(const FaultInjectedEvent& e) override {
    add("fault", e.runId, e.interactions, static_cast<int>(e.target), e.agent);
  }

 private:
  template <typename... Args>
  void add(const char* kind, Args... args) {
    std::ostringstream line;
    line << kind;
    ((line << ' ' << args), ...);
    events.push_back(line.str());
  }
};

struct DifferentialResult {
  RunOutcome outcome;
  std::vector<std::string> events;
};

DifferentialResult runOnce(const Protocol& proto, std::uint32_t n,
                           std::uint64_t seed, bool compiled,
                           const RunLimits& limits) {
  Rng rng(seed);
  Engine engine(proto, arbitraryConfiguration(proto, n, rng));
  std::unique_ptr<CompiledProtocol> cp;
  if (compiled) {
    cp = std::make_unique<CompiledProtocol>(proto);
    engine.attachCompiled(cp.get());
  }
  RandomScheduler sched(engine.numParticipants(), rng.next());
  RecordingObserver obs;
  DifferentialResult r;
  r.outcome = runUntilSilent(engine, sched, limits, nullptr, &obs, seed);
  r.events = std::move(obs.events);
  return r;
}

void expectIdentical(const DifferentialResult& a, const DifferentialResult& b,
                     const std::string& label) {
  EXPECT_EQ(a.outcome.silent, b.outcome.silent) << label;
  EXPECT_EQ(a.outcome.namingSolved, b.outcome.namingSolved) << label;
  EXPECT_EQ(a.outcome.timedOut, b.outcome.timedOut) << label;
  EXPECT_EQ(a.outcome.cancelled, b.outcome.cancelled) << label;
  EXPECT_EQ(a.outcome.convergenceInteractions,
            b.outcome.convergenceInteractions)
      << label;
  EXPECT_EQ(a.outcome.totalInteractions, b.outcome.totalInteractions) << label;
  EXPECT_EQ(a.outcome.nonNullInteractions, b.outcome.nonNullInteractions)
      << label;
  EXPECT_EQ(a.outcome.numMobile, b.outcome.numMobile) << label;
  EXPECT_EQ(a.outcome.finalConfig, b.outcome.finalConfig) << label;
  EXPECT_EQ(a.events, b.events) << label;
}

TEST(CompiledDifferential, RunUntilSilentIsBitIdentical) {
  for (const std::string& key : protocolKeys()) {
    for (const std::uint64_t seed : {1ull, 77ull, 4242ull}) {
      // P = 8: every protocol valid, leader spaces enumerable; N < P so the
      // namable regime is reachable and runs converge quickly.
      const auto proto = makeProtocol(key, 8);
      const RunLimits limits{200'000, 16};
      const auto interpreted = runOnce(*proto, 6, seed, false, limits);
      const auto compiled = runOnce(*proto, 6, seed, true, limits);
      expectIdentical(interpreted, compiled,
                      key + " seed=" + std::to_string(seed));
      EXPECT_TRUE(interpreted.outcome.silent ||
                  interpreted.outcome.totalInteractions == 200'000)
          << key;
    }
  }
}

TEST(CompiledDifferential, VirtualLeaderFallbackIsBitIdentical) {
  // P = 20 makes counting/selfstab/global-leader refuse leader enumeration
  // (allLeaderStates empty, initialized leaders still construct), so the
  // compiled engine runs the mobile table with virtual leader dispatch.
  for (const char* key : {"counting", "global-leader"}) {
    const auto proto = makeProtocol(key, 20);
    const CompiledProtocol cp(*proto);
    EXPECT_FALSE(cp.leaderCompiled());
    const RunLimits limits{100'000, 32};
    const auto interpreted = runOnce(*proto, 10, 9, false, limits);
    const auto compiled = runOnce(*proto, 10, 9, true, limits);
    expectIdentical(interpreted, compiled, key);
  }
}

TEST(CompiledDifferential, RunBatchMatchesInterpretedAcrossThreads) {
  for (const std::string& key : {std::string("asymmetric"),
                                 std::string("selfstab-weak")}) {
    const auto proto = makeProtocol(key, 6);
    BatchSpec spec;
    spec.numMobile = 5;
    spec.init = InitKind::kArbitrary;
    spec.runs = 12;
    spec.seed = 31;
    spec.limits = RunLimits{500'000, 64};
    spec.compiled = false;
    spec.threads = 1;
    const BatchResult reference = runBatch(*proto, spec);
    for (const std::uint32_t threads : {1u, 4u}) {
      spec.compiled = true;
      spec.threads = threads;
      const BatchResult fast = runBatch(*proto, spec);
      EXPECT_EQ(fast.converged, reference.converged) << key;
      EXPECT_EQ(fast.named, reference.named) << key;
      EXPECT_EQ(fast.timedOut, reference.timedOut) << key;
      EXPECT_DOUBLE_EQ(fast.convergenceInteractions.mean,
                       reference.convergenceInteractions.mean)
          << key;
      EXPECT_DOUBLE_EQ(fast.convergenceInteractions.max,
                       reference.convergenceInteractions.max)
          << key;
    }
  }
}

// --- the incremental silence tracker against the oracle ---------------------

TEST(CompiledTracker, SilenceAgreesWithOracleUnderStepsAndFaults) {
  for (const std::string& key : protocolKeys()) {
    const auto proto = makeProtocol(key, 5);
    const CompiledProtocol cp(*proto);
    Rng rng(123);
    Engine engine(*proto, arbitraryConfiguration(*proto, 6, rng));
    engine.attachCompiled(&cp);
    RandomScheduler sched(engine.numParticipants(), rng.next());
    for (int step = 0; step < 3000; ++step) {
      engine.step(sched.next());
      if (step % 7 == 0) {
        ASSERT_EQ(engine.silent(), isSilent(*proto, engine.config()))
            << key << " after " << step + 1 << " steps";
      }
      if (step % 211 == 0) {
        engine.corruptMobile(
            static_cast<AgentId>(rng.below(engine.numMobile())),
            static_cast<StateId>(rng.below(proto->numMobileStates())));
        ASSERT_EQ(engine.silent(), isSilent(*proto, engine.config())) << key;
      }
    }
  }
}

TEST(CompiledTracker, SurvivesResetAndDetach) {
  const auto proto = makeProtocol("asymmetric", 4);
  const CompiledProtocol cp(*proto);
  Engine engine(*proto, Configuration{{0, 0, 1}, std::nullopt});
  engine.attachCompiled(&cp);
  EXPECT_FALSE(engine.silent());
  engine.resetTo(Configuration{{0, 1, 2}, std::nullopt});
  EXPECT_TRUE(engine.silent());
  engine.attachCompiled(nullptr);  // detach: interpreted verdicts
  EXPECT_TRUE(engine.silent());
}

TEST(CompiledTracker, CorruptedLeaderOutsideCompiledSetStaysExact) {
  const auto proto = makeProtocol("selfstab-weak", 4);
  const CompiledProtocol cp(*proto);
  ASSERT_TRUE(cp.leaderCompiled());
  Rng rng(5);
  Engine engine(*proto, arbitraryConfiguration(*proto, 4, rng));
  engine.attachCompiled(&cp);
  // n = 200 is far outside the enumerated BST space.
  engine.corruptLeader(packBst(BstState{.n = 200, .k = 3, .namePtr = 0}));
  RandomScheduler sched(engine.numParticipants(), rng.next());
  for (int i = 0; i < 500; ++i) {
    engine.step(sched.next());
    ASSERT_EQ(engine.silent(), isSilent(*proto, engine.config())) << i;
  }
}

// --- burst kernel vs per-step execution -------------------------------------

TEST(RunBurst, MatchesStepByStepCounters) {
  for (const std::string& key : protocolKeys()) {
    const auto proto = makeProtocol(key, 6);
    const CompiledProtocol cp(*proto);
    Rng rng(17);
    const Configuration start = arbitraryConfiguration(*proto, 8, rng);
    const std::uint64_t schedSeed = rng.next();

    Engine stepped(*proto, start);
    stepped.attachCompiled(&cp);
    RandomScheduler schedA(stepped.numParticipants(), schedSeed);
    for (int i = 0; i < 2500; ++i) stepped.step(schedA.next());

    Engine burst(*proto, start);
    burst.attachCompiled(&cp);
    RandomScheduler schedB(burst.numParticipants(), schedSeed);
    burst.runBurst(schedB, 1100);  // deliberately not a multiple of the block
    burst.runBurst(schedB, 1400);

    EXPECT_EQ(burst.config(), stepped.config()) << key;
    EXPECT_EQ(burst.totalInteractions(), stepped.totalInteractions()) << key;
    EXPECT_EQ(burst.nonNullInteractions(), stepped.nonNullInteractions()) << key;
    EXPECT_EQ(burst.lastChangeAt(), stepped.lastChangeAt()) << key;
  }
}

// --- validated-once indexing -------------------------------------------------

TEST(Validation, EngineRejectsOutOfSpaceStates) {
  const AsymmetricNaming proto(3);
  EXPECT_THROW(Engine(proto, Configuration{{0, 7}, std::nullopt}),
               std::logic_error);
  Engine engine(proto, Configuration{{0, 1}, std::nullopt});
  EXPECT_THROW(engine.resetTo(Configuration{{5, 0}, std::nullopt}),
               std::logic_error);
}

TEST(Validation, CorruptMobileRejectsBadInputs) {
  const AsymmetricNaming proto(3);
  Engine engine(proto, Configuration{{0, 1}, std::nullopt});
  EXPECT_THROW(engine.corruptMobile(5, 0), std::logic_error);
  EXPECT_THROW(engine.corruptMobile(0, 9), std::logic_error);
}

TEST(Validation, ApplyInteractionRejectsOutOfRangeParticipants) {
  const AsymmetricNaming proto(3);
  Configuration c{{0, 1}, std::nullopt};
  EXPECT_THROW(applyInteraction(proto, c, Interaction{0, 9}),
               std::logic_error);
  Engine engine(proto, c);
  const CompiledProtocol cp(proto);
  engine.attachCompiled(&cp);
  EXPECT_THROW(engine.step(Interaction{9, 0}), std::logic_error);
  EXPECT_THROW(engine.step(Interaction{1, 1}), std::logic_error);
}

}  // namespace
}  // namespace ppn
