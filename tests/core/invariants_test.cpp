// Cross-cutting property tests: invariants that must hold along ANY
// execution of the implemented protocols, checked over randomized runs, and
// consistency between the engine's predicates and the explorer's view.
#include <gtest/gtest.h>

#include "analysis/explore.h"
#include "core/engine.h"
#include "naming/bst_state.h"
#include "naming/counting_protocol.h"
#include "naming/global_leader_naming.h"
#include "naming/registry.h"
#include "naming/selfstab_weak_naming.h"
#include "sched/random_scheduler.h"
#include "util/rng.h"

namespace ppn {
namespace {

TEST(Invariants, StatesAlwaysStayInRange) {
  Rng rng(1);
  for (const auto& key : protocolKeys()) {
    const auto proto = makeProtocol(key, 5);
    const std::uint32_t n = 5;
    Configuration start = (key == "leader-uniform")
                              ? uniformConfiguration(*proto, n)
                              : arbitraryConfiguration(*proto, n, rng);
    Engine engine(*proto, std::move(start));
    RandomScheduler sched(engine.numParticipants(), rng.next());
    for (int i = 0; i < 20000; ++i) {
      engine.step(sched.next());
      for (const StateId s : engine.config().mobile) {
        ASSERT_LT(s, proto->numMobileStates()) << key;
      }
    }
  }
}

TEST(Invariants, Protocol1GuessNeverDecreases) {
  // Protocol 1 has no reset: BST's n is monotone along every execution.
  const CountingProtocol proto(6);
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Engine engine(proto, arbitraryConfiguration(proto, 5, rng));
    RandomScheduler sched(6, rng.next());
    std::uint32_t lastN = unpackBst(*engine.config().leader).n;
    for (int i = 0; i < 20000; ++i) {
      engine.step(sched.next());
      const std::uint32_t nowN = unpackBst(*engine.config().leader).n;
      ASSERT_GE(nowN, lastN);
      lastN = nowN;
    }
  }
}

TEST(Invariants, Protocol2GuessDecreasesOnlyByReset) {
  const SelfStabWeakNaming proto(4);
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Engine engine(proto, arbitraryConfiguration(proto, 4, rng));
    RandomScheduler sched(5, rng.next());
    BstState last = unpackBst(*engine.config().leader);
    for (int i = 0; i < 20000; ++i) {
      engine.step(sched.next());
      const BstState now = unpackBst(*engine.config().leader);
      if (now.n < last.n) {
        // The only decreasing transition is the reset to (0, 0), and it can
        // only fire from an overrun guess.
        ASSERT_EQ(now.n, 0u);
        ASSERT_EQ(now.k, 0u);
        ASSERT_GT(last.n, proto.p());
      }
      last = now;
    }
  }
}

TEST(Invariants, Protocol3PointerResetsOrAdvancesByOne) {
  const GlobalLeaderNaming proto(4);
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Engine engine(proto, arbitraryConfiguration(proto, 4, rng));
    RandomScheduler sched(5, rng.next());
    std::uint32_t lastPtr = unpackBst(*engine.config().leader).namePtr;
    for (int i = 0; i < 50000; ++i) {
      engine.step(sched.next());
      const std::uint32_t nowPtr = unpackBst(*engine.config().leader).namePtr;
      ASSERT_TRUE(nowPtr == lastPtr || nowPtr == lastPtr + 1 || nowPtr == 0)
          << "name_ptr moved from " << lastPtr << " to " << nowPtr;
      lastPtr = nowPtr;
    }
  }
}

TEST(Invariants, SilencePredicateAgreesWithExplorer) {
  // isSilent(c) iff the concrete explorer finds only null self-loops at c.
  Rng rng(11);
  for (const auto& key : protocolKeys()) {
    const auto proto = makeProtocol(key, 3);
    for (int sample = 0; sample < 40; ++sample) {
      Configuration c = (key == "leader-uniform" && rng.chance(0.5))
                            ? uniformConfiguration(*proto, 3)
                            : arbitraryConfiguration(*proto, 3, rng);
      const ConfigGraph g = exploreConcrete(*proto, {c}, 100000);
      bool anyChange = false;
      for (const Edge& e : g.edges(0)) anyChange |= e.changed;
      EXPECT_EQ(isSilent(*proto, c), !anyChange)
          << key << " at " << c.toString();
    }
  }
}

TEST(Invariants, SilentConfigurationsStaySilentForever) {
  // Determinism: once silent, any further scheduling is a no-op.
  Rng rng(13);
  for (const auto& key : protocolKeys()) {
    const auto proto = makeProtocol(key, 4);
    Configuration c = (key == "leader-uniform")
                          ? uniformConfiguration(*proto, 4)
                          : arbitraryConfiguration(*proto, 4, rng);
    Engine engine(*proto, std::move(c));
    RandomScheduler sched(engine.numParticipants(), rng.next());
    // Drive to silence (bounded; all these converge for N <= P under the
    // random scheduler except possibly slow ones — use a generous budget).
    for (int i = 0; i < 3'000'000 && !engine.silent(); ++i) {
      engine.step(sched.next());
    }
    if (!engine.silent()) continue;  // budget edge; nothing to assert
    const Configuration frozen = engine.config();
    for (int i = 0; i < 5000; ++i) {
      EXPECT_FALSE(engine.step(sched.next()));
    }
    EXPECT_EQ(engine.config(), frozen);
  }
}

TEST(Invariants, NonNullCountMatchesConfigChanges) {
  const auto proto = makeProtocol("selfstab-weak", 4);
  Rng rng(17);
  Engine engine(*proto, arbitraryConfiguration(*proto, 4, rng));
  RandomScheduler sched(5, 21);
  std::uint64_t observedChanges = 0;
  Configuration prev = engine.config();
  for (int i = 0; i < 10000; ++i) {
    engine.step(sched.next());
    if (!(engine.config() == prev)) ++observedChanges;
    prev = engine.config();
  }
  EXPECT_EQ(observedChanges, engine.nonNullInteractions());
}

}  // namespace
}  // namespace ppn
