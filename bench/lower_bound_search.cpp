// Extended evaluation E13: brute-force confirmation of the lower bounds.
//
// Enumerates ENTIRE protocol spaces at tiny state counts and model-checks
// each member, reproducing:
//  * Prop 2 — zero symmetric P-state solvers for N = P (weak AND global),
//  * Prop 1 — zero symmetric solvers under weak fairness even with an extra
//    state (Q = 3, N = 2; with N = 2 symmetry can never break),
//  * Prop 12 (positive control) — the asymmetric space at Q = 2 contains
//    solvers, and some survive the self-stabilization quantification.
//
//   ./lower_bound_search [--csv]
#include <cstdio>

#include "analysis/protocol_search.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  ppn::Cli cli("lower_bound_search", "exhaustive protocol-space searches");
  const auto* csv = cli.addFlag("csv", "emit CSV");
  if (!cli.parse(argc, argv)) return 1;

  struct Job {
    std::string what;
    ppn::StateId q;
    std::uint32_t n;
    ppn::Fairness fairness;
    bool symmetric;
    bool selfStab;
    bool expectSolvers;
  };
  const std::vector<Job> jobs{
      {"Prop 2: symmetric, Q=2, N=2, global", 2, 2, ppn::Fairness::kGlobal,
       true, false, false},
      {"Prop 2: symmetric, Q=2, N=2, weak", 2, 2, ppn::Fairness::kWeak, true,
       false, false},
      {"Prop 2: symmetric, Q=3, N=3, global", 3, 3, ppn::Fairness::kGlobal,
       true, false, false},
      {"Prop 2: symmetric, Q=3, N=3, weak", 3, 3, ppn::Fairness::kWeak, true,
       false, false},
      {"Prop 1 (N=2 case): symmetric, Q=3, N=2, weak", 3, 2,
       ppn::Fairness::kWeak, true, false, false},
      {"N=2 symmetry wall: symmetric, Q=3, N=2, global", 3, 2,
       ppn::Fairness::kGlobal, true, false, false},
      {"Prop 12 control: ALL protocols, Q=2, N=2, global", 2, 2,
       ppn::Fairness::kGlobal, false, false, true},
      {"Prop 12 control: ALL protocols, Q=2, N=2, weak", 2, 2,
       ppn::Fairness::kWeak, false, false, true},
      {"Prop 12 control: self-stabilizing, Q=2, N=2, weak", 2, 2,
       ppn::Fairness::kWeak, false, true, true},
  };

  ppn::Table table({"claim", "space", "examined", "solvers", "expected",
                    "result"});
  bool ok = true;
  for (const auto& job : jobs) {
    const ppn::SearchOutcome out =
        job.selfStab
            ? ppn::searchSelfStabilizingNaming(job.q, job.n, job.fairness,
                                               job.symmetric)
            : ppn::searchUniformNaming(job.q, job.n, job.fairness,
                                       job.symmetric);
    const bool pass = job.expectSolvers ? out.solvers > 0 : out.solvers == 0;
    ok = ok && pass;
    table.row()
        .cell(job.what)
        .cell(job.symmetric ? "symmetric" : "all deterministic")
        .cell(out.examined)
        .cell(out.solvers)
        .cell(job.expectSolvers ? ">0" : "0")
        .cell(pass ? "PASS" : "FAIL");
  }

  std::printf("E13: exhaustive lower-bound verification\n\n");
  std::fputs((*csv ? table.renderCsv() : table.render()).c_str(), stdout);
  std::printf("\noverall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}
