// Extended evaluation E13: brute-force confirmation of the lower bounds.
//
// Enumerates ENTIRE protocol spaces at tiny state counts and model-checks
// each member, reproducing:
//  * Prop 2 — zero symmetric P-state solvers for N = P (weak AND global),
//  * Prop 1 — zero symmetric solvers under weak fairness even with an extra
//    state (Q = 3, N = 2; with N = 2 symmetry can never break),
//  * Prop 12 (positive control) — the asymmetric space at Q = 2 contains
//    solvers, and some survive the self-stabilization quantification.
//
//   ./lower_bound_search [--csv] [--json out.json] [--tiny] [--threads K]
//                        [--explore-stats-out stats.jsonl]
//                        [--trace-out trace.json] [--metrics-out metrics.json]
//                        [--memory-budget BYTES] [--memory-stats-out mem.json]
//                        [--storage compressed|explicit]
//                        [--spill-bytes BYTES] [--spill-dir DIR]
//                        [--progress]
//
// Telemetry (E22): --explore-stats-out streams JSONL explore/search progress
// and phase events, --trace-out writes a Chrome trace_event timeline
// (chrome://tracing), --metrics-out dumps the final metrics snapshot,
// --progress prints candidates/sec + ETA to stderr. --tiny restricts the job
// list to the Q = 2 spaces (16-256 candidates) so CI smoke runs stay cheap.
// Absent flags leave the searches unobserved (output unchanged). --threads K
// dispatches candidates to K workers (0 = hardware concurrency); counts,
// verdicts and solver indices are deterministic for any K.
//
// Memory (E27): --memory-budget caps every per-candidate exploration at that
// many ledger bytes (0 = off); a budget-truncated candidate counts `unknown`
// like a node-cap truncation, deterministically for any thread count.
// --memory-stats-out collects the memory_sample stream into a per-exploration
// peak/final summary (ppn-memory-stats JSON).
//
// Storage (E28): --storage picks the graph representation (compressed is the
// default, exactly as in ExploreOptions); --spill-bytes sets the dedup-table
// spill threshold so the in-RAM fingerprint tier drains to sorted run files
// in --spill-dir (default: system temp) — results are bit-identical to the
// unspilled run, so every verdict below must be unchanged by these flags.
//
// A candidate whose exploration is truncated decides nothing: it is counted
// `unknown`, warned about on stderr, and the job's verdict degrades to
// "unknown" — a lower-bound claim is only conclusive at unknown == 0.
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "analysis/protocol_search.h"
#include "obs/events.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/probes.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/table.h"

int main(int argc, char** argv) {
  ppn::Cli cli("lower_bound_search", "exhaustive protocol-space searches");
  const auto* csv = cli.addFlag("csv", "emit CSV");
  const auto* jsonOut =
      cli.addString("json", "write results as JSON to this file", "");
  const auto* tiny =
      cli.addFlag("tiny", "only the Q=2 jobs (cheap CI smoke subset)");
  const auto* statsOut = cli.addString(
      "explore-stats-out", "stream JSONL explore/search events to this file",
      "");
  const auto* traceOut = cli.addString(
      "trace-out", "write a Chrome trace_event timeline to this file", "");
  const auto* metricsOut = cli.addString(
      "metrics-out", "write the final metrics snapshot (JSON) to this file", "");
  const auto* progress =
      cli.addFlag("progress", "print periodic search progress to stderr");
  const auto* threads = cli.addUint(
      "threads", "candidate-dispatch worker threads (0 = all cores)", 1);
  const auto* memoryBudget = cli.addUint(
      "memory-budget",
      "byte budget per exploration (0 = off); over-budget checks are unknown",
      0);
  const auto* memStatsOut = cli.addString(
      "memory-stats-out", "write per-exploration memory peaks (JSON) here", "");
  const auto* storage = cli.addString(
      "storage", "graph storage: compressed (default) or explicit",
      "compressed");
  const auto* spillBytes = cli.addUint(
      "spill-bytes",
      "dedup-table spill threshold in bytes (0 = never spill; compressed only)",
      0);
  const auto* spillDir = cli.addString(
      "spill-dir", "directory for spill run files (default: system temp)", "");
  if (!cli.parse(argc, argv)) return 1;
  if (*storage != "compressed" && *storage != "explicit") {
    std::fprintf(stderr,
                 "lower_bound_search: --storage must be 'compressed' or "
                 "'explicit', got '%s'\n",
                 storage->c_str());
    return 1;
  }

  struct Job {
    std::string what;
    ppn::StateId q;
    std::uint32_t n;
    ppn::Fairness fairness;
    bool symmetric;
    bool selfStab;
    bool expectSolvers;
  };
  std::vector<Job> jobs{
      {"Prop 2: symmetric, Q=2, N=2, global", 2, 2, ppn::Fairness::kGlobal,
       true, false, false},
      {"Prop 2: symmetric, Q=2, N=2, weak", 2, 2, ppn::Fairness::kWeak, true,
       false, false},
      {"Prop 2: symmetric, Q=3, N=3, global", 3, 3, ppn::Fairness::kGlobal,
       true, false, false},
      {"Prop 2: symmetric, Q=3, N=3, weak", 3, 3, ppn::Fairness::kWeak, true,
       false, false},
      {"Prop 1 (N=2 case): symmetric, Q=3, N=2, weak", 3, 2,
       ppn::Fairness::kWeak, true, false, false},
      {"N=2 symmetry wall: symmetric, Q=3, N=2, global", 3, 2,
       ppn::Fairness::kGlobal, true, false, false},
      {"Prop 12 control: ALL protocols, Q=2, N=2, global", 2, 2,
       ppn::Fairness::kGlobal, false, false, true},
      {"Prop 12 control: ALL protocols, Q=2, N=2, weak", 2, 2,
       ppn::Fairness::kWeak, false, false, true},
      {"Prop 12 control: self-stabilizing, Q=2, N=2, weak", 2, 2,
       ppn::Fairness::kWeak, false, true, true},
  };
  if (*tiny) {
    std::erase_if(jobs, [](const Job& j) { return j.q != 2; });
  }

  // Telemetry assembly (one registry, one JSONL stream, shared by every job;
  // searchIds ascend with the job index so events stay attributable).
  ppn::MetricsRegistry registry;
  std::unique_ptr<ppn::JsonlEventSink> sink;
  std::unique_ptr<ppn::MetricsExploreObserver> metricsProbe;
  std::unique_ptr<ppn::ExploreProgressReporter> reporter;
  std::unique_ptr<ppn::ChromeTraceWriter> traceWriter;
  std::unique_ptr<ppn::ChromeTraceObserver> traceProbe;
  std::unique_ptr<ppn::MemoryStatsCollector> memStats;
  ppn::MultiExploreObserver observers;
  try {
    if (!statsOut->empty()) {
      sink = std::make_unique<ppn::JsonlEventSink>(*statsOut);
      observers.add(sink.get());
    }
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "lower_bound_search: %s\n", e.what());
    return 1;
  }
  if (!metricsOut->empty()) {
    metricsProbe = std::make_unique<ppn::MetricsExploreObserver>(registry);
    observers.add(metricsProbe.get());
  }
  if (!traceOut->empty()) {
    traceWriter = std::make_unique<ppn::ChromeTraceWriter>();
    traceProbe = std::make_unique<ppn::ChromeTraceObserver>(*traceWriter);
    observers.add(traceProbe.get());
  }
  if (*progress) {
    reporter = std::make_unique<ppn::ExploreProgressReporter>();
    observers.add(reporter.get());
  }
  if (!memStatsOut->empty()) {
    memStats = std::make_unique<ppn::MemoryStatsCollector>();
    observers.add(memStats.get());
  }
  ppn::ExploreObserver* observer = observers.empty() ? nullptr : &observers;

  struct Row {
    const Job* job;
    ppn::SearchOutcome out;
    std::string verdict;  // "pass" | "fail" | "unknown"
  };
  std::vector<Row> rows;
  ppn::Table table({"claim", "space", "examined", "solvers", "unknown",
                    "expected", "result"});
  bool ok = true;
  std::uint64_t searchId = 0;
  for (const auto& job : jobs) {
    ++searchId;
    ppn::SearchOptions searchOptions;
    searchOptions.threads = static_cast<std::uint32_t>(*threads);
    searchOptions.maxBytes = *memoryBudget;
    searchOptions.storage = *storage == "explicit"
                                ? ppn::GraphStorage::kExplicit
                                : ppn::GraphStorage::kCompressed;
    searchOptions.spillBytes = *spillBytes;
    searchOptions.spillDir = *spillDir;
    searchOptions.observer = observer;
    searchOptions.searchId = searchId;
    const ppn::SearchOutcome out =
        job.selfStab
            ? ppn::searchSelfStabilizingNaming(job.q, job.n, job.fairness,
                                               job.symmetric, searchOptions)
            : ppn::searchUniformNaming(job.q, job.n, job.fairness,
                                       job.symmetric, searchOptions);
    std::string verdict;
    if (out.unknown > 0) {
      // A truncated candidate can hide a solver (or a non-solver): neither
      // "zero solvers" nor "solvers exist" is certified.
      verdict = job.expectSolvers && out.solvers > 0 ? "pass" : "unknown";
      std::fprintf(stderr,
                   "lower_bound_search: WARNING: %llu of %llu candidates "
                   "exceeded the exploration budget in '%s'; verdict %s\n",
                   static_cast<unsigned long long>(out.unknown),
                   static_cast<unsigned long long>(out.examined),
                   job.what.c_str(), verdict.c_str());
    } else {
      const bool pass = job.expectSolvers ? out.solvers > 0 : out.solvers == 0;
      verdict = pass ? "pass" : "fail";
    }
    ok = ok && verdict == "pass";
    table.row()
        .cell(job.what)
        .cell(job.symmetric ? "symmetric" : "all deterministic")
        .cell(out.examined)
        .cell(out.solvers)
        .cell(out.unknown)
        .cell(job.expectSolvers ? ">0" : "0")
        .cell(verdict == "pass" ? "PASS"
                                : (verdict == "fail" ? "FAIL" : "UNKNOWN"));
    rows.push_back(Row{&job, out, verdict});
  }

  std::printf("E13: exhaustive lower-bound verification%s\n\n",
              *tiny ? " (tiny subset)" : "");
  std::fputs((*csv ? table.renderCsv() : table.render()).c_str(), stdout);
  std::printf("\noverall: %s\n", ok ? "PASS" : "FAIL");

  if (!jsonOut->empty()) {
    ppn::JsonWriter w;
    w.beginObject();
    w.key("experiment").value("E13");
    w.key("tiny").value(static_cast<bool>(*tiny));
    w.key("jobs").beginArray();
    for (const Row& r : rows) {
      w.beginObject();
      w.key("claim").value(r.job->what);
      w.key("space").value(r.job->symmetric ? "symmetric"
                                            : "all deterministic");
      w.key("examined").value(r.out.examined);
      w.key("solvers").value(r.out.solvers);
      w.key("unknown").value(r.out.unknown);
      w.key("expected_solvers").value(r.job->expectSolvers ? ">0" : "0");
      w.key("verdict").value(r.verdict);
      w.endObject();
    }
    w.endArray();
    w.key("overall").value(ok ? "pass" : "fail");
    w.endObject();
    std::ofstream out(*jsonOut, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "lower_bound_search: cannot write '%s'\n",
                   jsonOut->c_str());
      return 1;
    }
    out << w.str() << '\n';
  }

  if (sink) sink->flush();
  if (traceWriter && !traceWriter->writeToFile(*traceOut)) {
    std::fprintf(stderr, "lower_bound_search: cannot write '%s'\n",
                 traceOut->c_str());
    return 1;
  }
  if (!metricsOut->empty()) {
    std::ofstream out(*metricsOut, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "lower_bound_search: cannot write '%s'\n",
                   metricsOut->c_str());
      return 1;
    }
    out << registry.toJson() << '\n';
  }
  if (memStats && !memStats->writeJson(*memStatsOut)) {
    std::fprintf(stderr, "lower_bound_search: cannot write '%s'\n",
                 memStatsOut->c_str());
    return 1;
  }
  return ok ? 0 : 2;
}
