// E19: the ROBUSTNESS TABLE — continuous adversarial fault campaigns over
// the full protocol registry, certifying the paper's self-stabilization
// claims mechanically.
//
// For every registry protocol × fault regime × scheduler, a campaign keeps
// perturbing the execution for a fault window (Poisson/periodic transient
// corruption, agent churn under the fixed bound P, a sink-seeking targeted
// adversary informed by Prop 6's sink analysis, or a crashed/stuck agent),
// then demands re-convergence. Self-stabilizing rows (Props 12, 13, 16) must
// certify at 100% named recovery; initialized rows (Prop 14, Protocol 1,
// Prop 17) are expected to reach wrong-stable configurations, recorded as
// evidence — the fault-campaign analogue of Table 1's initialization column.
//
//   ./robustness_table [--pops 4,6] [--runs 24] [--regimes poisson-transient,churn,...]
//                      [--schedulers random,round-robin] [--json] [--csv]
//                      [--events-out run.jsonl] [--metrics-out metrics.json]
//                      [--progress]
//
// Telemetry (E20): --events-out streams one JSONL event per run/fault/
// watchdog/progress tick; --metrics-out dumps the final metrics-registry
// snapshot; --progress prints periodic runs/sec + ETA lines to stderr.
// Without these flags the sweep runs fully unobserved and output is
// byte-for-byte what it was before the telemetry layer.
//
// The sweep is a thin client of sim/batch_engine.h: one BatchEngine pool is
// shared by every cell's campaign (--threads sizes it), keeping all cores
// saturated from a single queue with no per-cell thread churn. Results are
// byte-identical to per-cell workers (cell seeds are coordinate-derived).
//
// Exit code 0 iff every self-stabilizing cell certified.
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "faults/certify.h"
#include "naming/registry.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/probes.h"
#include "obs/progress.h"
#include "sim/batch_engine.h"
#include "util/cli.h"
#include "util/strings.h"

namespace {

std::vector<std::string> parseList(const std::string& csv) {
  std::vector<std::string> out;
  for (const auto& item : ppn::split(csv, ',')) {
    const auto trimmed = ppn::trim(item);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ppn::Cli cli("robustness_table",
               "fault-campaign certification of the protocol registry");
  const auto* pops = cli.addString("pops", "population sizes (csv)", "4,6");
  const auto* protocolsFlag =
      cli.addString("protocols", "registry keys (csv; empty = all)", "");
  const auto* regimesFlag = cli.addString(
      "regimes", "fault regimes (csv)",
      "poisson-transient,churn,targeted-adversary,stuck-agent");
  const auto* schedulersFlag =
      cli.addString("schedulers", "schedulers (csv)", "random");
  const auto* runs = cli.addUint("runs", "campaigns per cell", 24);
  const auto* seed = cli.addUint("seed", "rng seed", 2026);
  const auto* window =
      cli.addUint("fault-window", "interactions under fault", 20'000);
  const auto* rate =
      cli.addDouble("rate", "poisson/churn per-interaction fault rate", 0.005);
  const auto* period =
      cli.addUint("period", "periodic/targeted fault period", 500);
  const auto* corruptFraction =
      cli.addDouble("corrupt-fraction", "agents corrupted per event / N", 0.5);
  const auto* maxWall = cli.addUint(
      "max-wall-millis", "per-run watchdog (0 = off, keeps results bitwise "
                         "deterministic)", 0);
  const auto* threads = cli.addUint("threads", "workers (0 = hardware)", 0);
  const auto* json = cli.addFlag("json", "emit the JSON document only");
  const auto* csv = cli.addFlag("csv", "emit CSV instead of the ASCII table");
  const auto* eventsOut = cli.addString(
      "events-out", "stream JSONL telemetry events to this file", "");
  const auto* metricsOut = cli.addString(
      "metrics-out", "write the final metrics snapshot (JSON) to this file", "");
  const auto* progress =
      cli.addFlag("progress", "print periodic batch progress to stderr");
  if (!cli.parse(argc, argv)) return 1;

  ppn::CertifySpec spec;
  spec.protocols = parseList(*protocolsFlag);
  spec.populations.clear();
  for (const auto& s : parseList(*pops)) {
    const auto v = ppn::parseU64(s);
    if (!v.has_value() || *v < 2) {
      std::fprintf(stderr, "bad population '%s'\n", s.c_str());
      return 1;
    }
    spec.populations.push_back(static_cast<std::uint32_t>(*v));
  }
  try {
    spec.regimes.clear();
    for (const auto& s : parseList(*regimesFlag)) {
      spec.regimes.push_back(ppn::parseFaultRegime(s));
    }
    spec.schedulers.clear();
    for (const auto& s : parseList(*schedulersFlag)) {
      spec.schedulers.push_back(ppn::parseSchedulerKind(s));
    }
    for (const auto& key : spec.protocols) {
      ppn::isSelfStabilizing(key);  // validates the key before the sweep
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "robustness_table: %s\n", e.what());
    return 1;
  }
  if (*runs == 0) {
    std::fprintf(stderr,
                 "robustness_table: --runs must be >= 1 (0 runs would certify "
                 "vacuously)\n");
    return 1;
  }
  spec.runs = static_cast<std::uint32_t>(*runs);
  spec.seed = *seed;
  spec.faultWindow = *window;
  spec.faultRate = *rate;
  spec.faultPeriod = *period;
  spec.corruptFraction = *corruptFraction;
  spec.limits.maxWallMillis = *maxWall;
  spec.threads = static_cast<std::uint32_t>(*threads);

  // Telemetry stack (all optional; absent flags leave the sweep unobserved).
  ppn::MetricsRegistry registry;
  std::unique_ptr<ppn::JsonlEventSink> sink;
  std::unique_ptr<ppn::MetricsRunObserver> metricsProbe;
  std::unique_ptr<ppn::ProgressReporter> reporter;
  ppn::MultiObserver observers;
  try {
    if (!eventsOut->empty()) {
      sink = std::make_unique<ppn::JsonlEventSink>(*eventsOut);
      observers.add(sink.get());
    }
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "robustness_table: %s\n", e.what());
    return 1;
  }
  if (!metricsOut->empty()) {
    metricsProbe = std::make_unique<ppn::MetricsRunObserver>(registry);
    observers.add(metricsProbe.get());
  }
  if (*progress) {
    reporter = std::make_unique<ppn::ProgressReporter>(ppn::plannedRuns(spec));
    observers.add(reporter.get());
  }
  if (!observers.empty()) spec.observer = &observers;

  // Thin client of the batch engine: every cell's campaign runs drain through
  // this one pool's queue instead of each cell spawning (and joining) its own
  // `--threads` workers. Cell seeds are pre-drawn from cell coordinates, so
  // the table is byte-identical to the per-cell-workers sweep.
  ppn::BatchEngine engine(
      ppn::BatchEngineOptions{static_cast<std::uint32_t>(*threads), 256});
  spec.engine = &engine;

  const ppn::RobustnessTable table = ppn::certifyRecovery(spec);

  if (reporter) reporter->finish();
  if (sink) sink->flush();
  if (!metricsOut->empty()) {
    std::ofstream out(*metricsOut, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "robustness_table: cannot write '%s'\n",
                   metricsOut->c_str());
      return 1;
    }
    out << registry.toJson() << '\n';
  }

  if (*json) {
    std::fputs(table.toJson().c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::printf(
        "E19: robustness table — %u campaigns/cell, fault window %llu "
        "interactions, corrupting %.0f%% of agents per event\n\n",
        spec.runs, static_cast<unsigned long long>(spec.faultWindow),
        100.0 * spec.corruptFraction);
    const ppn::Table rendered = table.render();
    std::fputs((*csv ? rendered.renderCsv() : rendered.render()).c_str(),
               stdout);
    std::printf(
        "\nverdicts: %u certified, %u failed, %u evidence, %u degraded, "
        "%u skipped\n",
        table.countVerdict(ppn::CellVerdict::kCertified),
        table.countVerdict(ppn::CellVerdict::kFailed),
        table.countVerdict(ppn::CellVerdict::kEvidence),
        table.countVerdict(ppn::CellVerdict::kDegraded),
        table.countVerdict(ppn::CellVerdict::kSkipped));
    std::printf("\nJSON: rerun with --json for the machine-readable table\n");
    if (!table.certified()) {
      std::printf("FAIL: a self-stabilizing cell did not certify\n");
    } else if (table.countVerdict(ppn::CellVerdict::kDegraded) > 0) {
      std::printf(
          "PASS: no cell failed, but degraded cells carry partial statistics "
          "(raise --max-wall-millis)\n");
    } else {
      std::printf("PASS: every self-stabilizing cell certified\n");
    }
  }
  return table.certified() ? 0 : 2;
}
