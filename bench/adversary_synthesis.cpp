// Extended evaluation E17: the impossibility proofs, made executable.
//
// For each impossibility the paper proves, the harness synthesizes an
// explicit weakly fair adversary schedule from the checker's violating SCC,
// replays it, and verifies the three defining properties (closed cycle,
// full pair coverage, violation witnessed):
//   * Section 2 example  — the black/white token spinner;
//   * Proposition 1      — leaderless symmetric naming (Prop 13's protocol
//                          as the victim);
//   * Theorem 11         — P-state symmetric naming with initialized leader
//                          (Protocol 3 as the victim, N = P);
//   * topology variant   — the asymmetric protocol on a star graph.
//
//   ./adversary_synthesis [--verbose]
#include <cstdio>

#include "analysis/adversary_synth.h"
#include "analysis/initial_sets.h"
#include "core/engine.h"
#include "naming/asymmetric_naming.h"
#include "naming/color_example.h"
#include "naming/global_leader_naming.h"
#include "naming/symmetric_global_naming.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace ppn;

std::string renderSchedule(const AdversarySchedule& s, std::size_t maxShown) {
  auto renderSeq = [&](const std::vector<Interaction>& seq) {
    std::string out;
    const std::size_t limit = std::min(maxShown, seq.size());
    for (std::size_t i = 0; i < limit; ++i) {
      if (i != 0) out += " ";
      out += "(" + std::to_string(seq[i].initiator) + "," +
             std::to_string(seq[i].responder) + ")";
    }
    if (limit < seq.size()) {
      out += " ... +" + std::to_string(seq.size() - limit);
    }
    return out;
  };
  return "  start:  " + s.start.toString() + "\n  prefix: " +
         renderSeq(s.prefix) + "\n  cycle:  " + renderSeq(s.cycle) + "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("adversary_synthesis", "executable impossibility proofs");
  const auto* verbose = cli.addFlag("verbose", "print full schedules");
  if (!cli.parse(argc, argv)) return 1;
  const std::size_t shown = *verbose ? 10000 : 12;

  Table table({"impossibility", "victim protocol", "prefix", "cycle",
               "replay check"});
  bool ok = true;

  auto runCase = [&](const std::string& what, const Protocol& proto,
                     const Problem& problem,
                     const std::vector<Configuration>& initials,
                     const InteractionGraph* topology) {
    const auto schedule =
        synthesizeWeakAdversary(proto, problem, initials, 4'000'000, topology);
    if (!schedule.has_value()) {
      table.row().cell(what).cell(proto.name()).cell("-").cell("-").cell(
          "NO SCHEDULE (unexpected)");
      ok = false;
      return;
    }
    const ReplayReport report =
        replayAdversary(proto, problem, *schedule, topology);
    table.row()
        .cell(what)
        .cell(proto.name())
        .cell(schedule->prefix.size())
        .cell(schedule->cycle.size())
        .cell(report.valid() ? "PASS" : "FAIL");
    ok = ok && report.valid();
    std::printf("%s:\n%s\n", what.c_str(),
                renderSchedule(*schedule, shown).c_str());
  };

  {
    const ColorExample proto;
    runCase("Section 2 black/white example", proto,
            predicateProblem("all-black", allBlack),
            {Configuration{{1, 0, 0}, std::nullopt}}, nullptr);
  }
  {
    const SymmetricGlobalNaming proto(3);
    runCase("Prop 1 (no leader, symmetric, weak)", proto,
            namingProblem(proto), allUniformInitials(proto, 3), nullptr);
  }
  {
    const GlobalLeaderNaming proto(3);
    runCase("Theorem 11 (init leader, P states, weak, N=P)", proto,
            namingProblem(proto), allConcreteConfigurations(proto, 3),
            nullptr);
  }
  {
    const AsymmetricNaming proto(4);
    static const InteractionGraph star = InteractionGraph::star(4, 0);
    runCase("star topology (leaf homonyms never meet)", proto,
            namingProblem(proto), allConcreteConfigurations(proto, 4), &star);
  }

  std::printf("E17: synthesized weakly fair adversaries\n\n");
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nall schedules replay correctly: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}
