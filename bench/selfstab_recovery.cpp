// Extended evaluation E9: self-stabilization under transient memory faults.
//
// The self-stabilizing protocols (Props 12, 13, 16) must re-converge after
// arbitrary state corruption; the initialized protocols (Prop 14; Protocol 3
// relies on an initialized leader) need not — and the harness shows both
// sides: recovery rate and cost for the former, and a demonstrated stuck
// state for the latter. This quantifies the paper's practical argument that
// "the less volatile memory is used..., the less it is vulnerable to
// corruptions".
//
//   ./selfstab_recovery [--n 6] [--runs 24] [--csv]
#include <cstdio>

#include "core/engine.h"
#include "naming/leader_uniform_naming.h"
#include "naming/registry.h"
#include "sched/random_scheduler.h"
#include "sim/fault_injector.h"
#include "sim/runner.h"
#include "stats/summary.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  ppn::Cli cli("selfstab_recovery", "recovery after transient faults");
  const auto* nFlag = cli.addUint("n", "population size (P = N)", 6);
  const auto* runs = cli.addUint("runs", "fault trials per protocol", 24);
  const auto* seed = cli.addUint("seed", "rng seed", 4242);
  const auto* csv = cli.addFlag("csv", "emit CSV");
  if (!cli.parse(argc, argv)) return 1;
  const auto n = static_cast<std::uint32_t>(*nFlag);
  const auto p = static_cast<ppn::StateId>(n);

  struct Row {
    std::string key;
    bool selfStabilizing;
    std::uint32_t population;  // global-leader runs at N = P = 4: its N = P
                               // convergence blows up past that (see
                               // convergence_sweep)
    std::uint32_t corrupt;
    bool corruptLeader;
  };
  const std::vector<Row> plan{
      {"asymmetric", true, n, n / 2, false},
      {"asymmetric", true, n, n, false},
      {"symmetric-global", true, n, n / 2, false},
      {"symmetric-global", true, n, n, false},
      {"selfstab-weak", true, n, n / 2, true},
      {"selfstab-weak", true, n, n, true},
      {"global-leader", false, 4, 2, false},  // agents only corrupted
      {"leader-uniform", false, n, n / 2, false},
  };

  ppn::Table table({"protocol", "self-stab (paper)", "corrupted", "+leader",
                    "recovered", "mean recovery", "p90 recovery"});
  for (const auto& row : plan) {
    const auto rowP = static_cast<ppn::StateId>(row.population);
    const auto proto = ppn::makeProtocol(row.key, rowP);
    ppn::Rng rng(*seed + std::hash<std::string>{}(row.key) + row.corrupt);
    std::uint32_t recovered = 0;
    std::uint32_t attempts = 0;
    std::vector<double> costs;
    for (std::uint64_t r = 0; r < *runs; ++r) {
      ppn::Rng runRng = rng.split();
      ppn::Configuration start =
          (row.key == "leader-uniform")
              ? ppn::uniformConfiguration(*proto, row.population)
              : ppn::arbitraryConfiguration(*proto, row.population, runRng);
      ppn::Engine engine(*proto, std::move(start));
      ppn::RandomScheduler sched(engine.numParticipants(), runRng.next());
      const ppn::FaultPlan fp{.corruptAgents = row.corrupt,
                              .corruptLeader = row.corruptLeader};
      const ppn::RecoveryOutcome out = ppn::measureRecovery(
          engine, sched, fp, ppn::RunLimits{100'000'000, 128}, runRng);
      if (!out.initiallyConverged) continue;
      ++attempts;
      if (out.recoveredNamed) {
        ++recovered;
        costs.push_back(static_cast<double>(out.recoveryInteractions));
      }
    }
    const ppn::Summary s = ppn::summarize(costs);
    table.row()
        .cell(row.key)
        .cell(row.selfStabilizing ? "yes" : "no")
        .cell(std::to_string(row.corrupt) + "/" + std::to_string(row.population))
        .cell(row.corruptLeader ? "yes" : "no")
        .cell(std::to_string(recovered) + "/" + std::to_string(attempts))
        .cell(s.mean, 0)
        .cell(s.p90, 0);
  }

  std::printf("E9: recovery from transient corruption (N = P = %u, random "
              "scheduler)\n\n", n);
  std::fputs((*csv ? table.renderCsv() : table.render()).c_str(), stdout);

  // Negative demonstration: Prop 14's protocol wedges if the LEADER counter
  // is corrupted (it is not self-stabilizing, matching Table 1's init
  // requirements).
  {
    const ppn::LeaderUniformNaming proto(p);
    ppn::Configuration start = ppn::uniformConfiguration(proto, n);
    start.leader = ppn::LeaderStateId{p - 1};  // counter exhausted
    ppn::Engine engine(proto, std::move(start));
    ppn::RandomScheduler sched(engine.numParticipants(), 1);
    const ppn::RunOutcome out =
        ppn::runUntilSilent(engine, sched, ppn::RunLimits{1'000'000, 64});
    std::printf(
        "\nnegative control — leader-uniform with corrupted leader counter: "
        "silent=%s named=%s (expected: silent, NOT named — the protocol "
        "requires its declared initialization)\n",
        out.silent ? "yes" : "no", out.namingSolved ? "yes" : "no");
    return (out.silent && !out.namingSolved) ? 0 : 2;
  }
}
