// Theorem 15 harness: Protocol 1's counting answer and by-product naming
// across population sizes, measured by simulation under a weakly fair
// deterministic scheduler and under the random scheduler.
//
// Reported per (P, N): whether the converged guess n equals N, whether
// naming was achieved (expected iff N < P), and the convergence cost. The
// exponential growth of the cost in N (the price of space optimality — the
// U* pointer walks sequences of length 2^N) is the visible "shape".
//
//   ./counting_bench [--pmax 10] [--runs 16] [--csv]
#include <cstdio>

#include "core/engine.h"
#include "naming/counting_protocol.h"
#include "sim/runner.h"
#include "stats/summary.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  ppn::Cli cli("counting_bench", "Theorem 15: counting + by-product naming");
  const auto* pmax = cli.addUint("pmax", "largest bound P", 10);
  const auto* runs = cli.addUint("runs", "runs per configuration", 16);
  const auto* seed = cli.addUint("seed", "rng seed", 2018);
  const auto* csv = cli.addFlag("csv", "emit CSV");
  if (!cli.parse(argc, argv)) return 1;

  ppn::Table table({"P", "N", "scheduler", "count ok", "named", "expected named",
                    "mean interactions", "p90 interactions"});
  bool allOk = true;

  for (std::uint64_t p = 2; p <= *pmax; p += (p < 6 ? 1 : 2)) {
    const ppn::CountingProtocol proto(static_cast<ppn::StateId>(p));
    for (std::uint64_t n = 1; n <= p; n += (p <= 4 ? 1 : (p / 3))) {
      for (const ppn::SchedulerKind kind :
           {ppn::SchedulerKind::kRoundRobin, ppn::SchedulerKind::kRandom}) {
        ppn::Rng rng(*seed + p * 131 + n * 17);
        std::vector<double> costs;
        std::uint32_t countOk = 0;
        std::uint32_t named = 0;
        for (std::uint64_t r = 0; r < *runs; ++r) {
          ppn::Rng runRng = rng.split();
          ppn::Engine engine(
              proto, ppn::arbitraryConfiguration(
                         proto, static_cast<std::uint32_t>(n), runRng));
          auto sched = ppn::makeScheduler(
              kind, static_cast<std::uint32_t>(n) + 1, runRng.next());
          const ppn::RunOutcome out = ppn::runUntilSilent(
              engine, *sched, ppn::RunLimits{50'000'000, 64});
          if (!out.silent) continue;
          costs.push_back(static_cast<double>(out.convergenceInteractions));
          countOk +=
              (*proto.countingAnswer(*out.finalConfig.leader) == n) ? 1u : 0u;
          named += out.namingSolved ? 1 : 0;
        }
        const ppn::Summary s = ppn::summarize(costs);
        const bool expectNamed = n < p;
        const bool rowOk =
            countOk == *runs && (expectNamed ? named == *runs : true);
        allOk = allOk && rowOk;
        table.row()
            .cell(p)
            .cell(n)
            .cell(ppn::schedulerKindName(kind))
            .cell(std::to_string(countOk) + "/" + std::to_string(*runs))
            .cell(std::to_string(named) + "/" + std::to_string(*runs))
            .cell(expectNamed ? "yes (N<P)" : "not claimed (N=P)")
            .cell(s.mean, 0)
            .cell(s.p90, 0);
      }
    }
  }

  std::printf("Theorem 15: space-optimal counting (Protocol 1 of [11])\n\n");
  std::fputs((*csv ? table.renderCsv() : table.render()).c_str(), stdout);
  std::printf("\ncounting stabilized to N in every run: %s\n",
              allOk ? "PASS" : "FAIL");
  return allOk ? 0 : 2;
}
