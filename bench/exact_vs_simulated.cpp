// Extended evaluation E18: exact expected convergence times (Markov-chain
// solve) vs simulated means — removing all sampling noise from the
// time-space story at small instances, and validating the simulator
// quantitatively (the two columns must agree to within sampling error).
//
//   ./exact_vs_simulated [--runs 512] [--csv] [--threads K]
//                        [--events-out events.jsonl] [--trace-out trace.json]
//
// Telemetry (E22): --events-out streams one run_start/run_end JSONL pair per
// simulation run; --trace-out renders the same runs as a Chrome trace_event
// timeline (chrome://tracing). Absent flags leave the runs unobserved.
// Simulation runs go through one BatchEngine (sim/batch_engine.h): each row
// is a lane job advanced in lockstep by the SoA kernel, spread over
// --threads K workers (0 = hardware concurrency). Per-run seeds are pre-drawn
// sequentially and samples are collected by run index, so every statistic is
// bit-identical for any K — and to the old one-Engine-per-run loop.
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "analysis/hitting_time.h"
#include "core/engine.h"
#include "naming/color_example.h"
#include "naming/registry.h"
#include "obs/events.h"
#include "obs/observer.h"
#include "obs/trace.h"
#include "sim/batch_engine.h"
#include "sim/runner.h"
#include "stats/summary.h"
#include "util/cli.h"
#include "util/seed.h"
#include "util/table.h"

namespace {

using namespace ppn;

Summary simulate(BatchEngine& engine, const Protocol& proto,
                 const Configuration& start, std::uint32_t runs,
                 std::uint64_t seed, RunObserver* observer,
                 std::uint64_t runIdBase) {
  // Thin client of the batch engine: every row's runs share one fixed start
  // configuration, so they are submitted as explicit lane plans (seeds drawn
  // sequentially up front, util/seed.h) and the SoA kernel advances them in
  // lockstep. Samples are collected by run index from the job's outcomes, so
  // the summary is bit-identical to the old one-Engine-per-run loop for any
  // worker count. The JSONL/trace observers are internally synchronized; only
  // the event interleaving across runs varies with pool size.
  const std::vector<std::uint64_t> seeds = drawRunSeeds(seed, runs);
  std::vector<LanePlan> plans(runs);
  for (std::uint32_t r = 0; r < runs; ++r) {
    plans[r].start = start;
    plans[r].schedSeed = seeds[r];
    plans[r].runId = runIdBase + r;
  }
  LaneJobSpec spec;
  spec.sched = SchedulerKind::kRandom;
  spec.limits = RunLimits{50'000'000, 1};
  spec.observer = observer;
  auto job = engine.submitLanes(proto, std::move(plans), spec);
  job->wait();
  std::vector<double> samples;
  samples.reserve(runs);
  for (const RunOutcome& out : job->outcomes()) {
    if (out.silent) {
      samples.push_back(static_cast<double>(out.convergenceInteractions));
    }
  }
  return summarize(std::move(samples));
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("exact_vs_simulated", "Markov-exact convergence vs simulation");
  const auto* runs = cli.addUint("runs", "simulation runs per row", 512);
  const auto* csv = cli.addFlag("csv", "emit CSV");
  const auto* eventsOut = cli.addString(
      "events-out", "stream JSONL run events to this file", "");
  const auto* traceOut = cli.addString(
      "trace-out", "write a Chrome trace_event timeline to this file", "");
  const auto* threads =
      cli.addUint("threads", "simulation worker threads (0 = all cores)", 1);
  if (!cli.parse(argc, argv)) return 1;

  // One engine (one pool, one queue) serves every row's job in turn.
  BatchEngine engine(
      BatchEngineOptions{static_cast<std::uint32_t>(*threads), 256});

  std::unique_ptr<JsonlEventSink> sink;
  std::unique_ptr<ChromeTraceWriter> traceWriter;
  std::unique_ptr<ChromeTraceObserver> traceProbe;
  MultiObserver observers;
  try {
    if (!eventsOut->empty()) {
      sink = std::make_unique<JsonlEventSink>(*eventsOut);
      observers.add(sink.get());
    }
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "exact_vs_simulated: %s\n", e.what());
    return 1;
  }
  if (!traceOut->empty()) {
    traceWriter = std::make_unique<ChromeTraceWriter>();
    traceProbe = std::make_unique<ChromeTraceObserver>(*traceWriter);
    observers.add(traceProbe.get());
  }
  RunObserver* observer = observers.empty() ? nullptr : &observers;

  struct Row {
    std::string label;
    std::unique_ptr<Protocol> proto;
    Configuration start;
  };
  std::vector<Row> rows;
  {
    auto proto = std::make_unique<ColorExample>();
    rows.push_back({"color example [B,W,W]", std::move(proto),
                    Configuration{{1, 0, 0}, std::nullopt}});
  }
  for (const StateId p : {3u, 4u, 5u}) {
    auto proto = makeProtocol("asymmetric", p);
    Configuration start;
    start.mobile.assign(p, 0);
    rows.push_back({"asymmetric all-homonym N=P=" + std::to_string(p),
                    std::move(proto), std::move(start)});
  }
  for (const StateId p : {3u, 4u}) {
    auto proto = makeProtocol("leader-uniform", p);
    Configuration start = uniformConfiguration(*proto, p);
    rows.push_back({"leader-uniform N=P=" + std::to_string(p),
                    std::move(proto), std::move(start)});
  }
  for (const StateId p : {2u, 3u}) {
    auto proto = makeProtocol("selfstab-weak", p);
    Configuration start;
    start.mobile.assign(p, 0);
    start.leader = LeaderStateId{0};
    rows.push_back({"selfstab-weak all-sink N=P=" + std::to_string(p),
                    std::move(proto), std::move(start)});
  }
  for (const StateId p : {2u, 3u}) {
    auto proto = makeProtocol("global-leader", p);
    Configuration start;
    start.mobile.assign(p, 1 % p);
    start.leader = *proto->initialLeaderState();
    rows.push_back({"global-leader homonyms N=P=" + std::to_string(p),
                    std::move(proto), std::move(start)});
  }

  Table table({"instance", "chain states", "exact E[interactions]",
               "simulated mean", "simulated sd", "agreement"});
  bool ok = true;
  std::uint64_t runIdBase = 0;
  for (const auto& row : rows) {
    const HittingTime h = expectedConvergenceTime(*row.proto, row.start, 4000);
    if (!h.computed || h.diverges) {
      table.row().cell(row.label).cell(h.numStates).cell(
          h.diverges ? "infinite" : "n/a").cell("-").cell("-").cell(h.reason);
      continue;
    }
    const Summary s =
        simulate(engine, *row.proto, row.start,
                 static_cast<std::uint32_t>(*runs), 7, observer, runIdBase);
    runIdBase += *runs;
    const double stderrMean =
        s.count > 1 ? s.stddev / std::sqrt(static_cast<double>(s.count)) : 0.0;
    const bool agrees =
        std::fabs(s.mean - h.expectedInteractions) <= 5.0 * stderrMean + 1e-9;
    ok = ok && agrees;
    table.row()
        .cell(row.label)
        .cell(h.numStates)
        .cell(h.expectedInteractions, 3)
        .cell(s.mean, 3)
        .cell(s.stddev, 2)
        .cell(agrees ? "within 5 SE" : "MISMATCH");
  }

  std::printf("E18: exact Markov-chain expectations vs simulation\n\n");
  std::fputs((*csv ? table.renderCsv() : table.render()).c_str(), stdout);
  std::printf("\nsimulator agrees with exact values: %s\n", ok ? "PASS" : "FAIL");

  if (sink) sink->flush();
  if (traceWriter && !traceWriter->writeToFile(*traceOut)) {
    std::fprintf(stderr, "exact_vs_simulated: cannot write '%s'\n",
                 traceOut->c_str());
    return 1;
  }
  return ok ? 0 : 2;
}
