// E12: engineering microbenchmarks (google-benchmark).
//
// Measures the simulation substrate itself: raw interaction throughput per
// protocol, scheduler overhead, silence-detection cost, and model-checker
// throughput — the numbers that bound how large an experiment the harness
// can run.
#include <benchmark/benchmark.h>

#include "analysis/global_checker.h"
#include "analysis/initial_sets.h"
#include "analysis/weak_checker.h"
#include "core/engine.h"
#include "naming/registry.h"
#include "sched/deterministic_schedulers.h"
#include "sched/random_scheduler.h"
#include "sim/runner.h"

namespace {

using namespace ppn;

void BM_SchedulerNext(benchmark::State& state, SchedulerKind kind) {
  auto sched = makeScheduler(kind, 64, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched->next());
  }
}
BENCHMARK_CAPTURE(BM_SchedulerNext, random, SchedulerKind::kRandom);
BENCHMARK_CAPTURE(BM_SchedulerNext, skewed, SchedulerKind::kSkewed);
BENCHMARK_CAPTURE(BM_SchedulerNext, round_robin, SchedulerKind::kRoundRobin);
BENCHMARK_CAPTURE(BM_SchedulerNext, tournament, SchedulerKind::kTournament);

void BM_StepThroughput(benchmark::State& state, const char* key) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto proto = makeProtocol(key, static_cast<StateId>(n));
  Rng rng(7);
  Engine engine(*proto, key == std::string("leader-uniform")
                            ? uniformConfiguration(*proto, n)
                            : arbitraryConfiguration(*proto, n, rng));
  RandomScheduler sched(engine.numParticipants(), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step(sched.next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_StepThroughput, asymmetric, "asymmetric")->Arg(16)->Arg(256);
BENCHMARK_CAPTURE(BM_StepThroughput, selfstab_weak, "selfstab-weak")->Arg(12);
BENCHMARK_CAPTURE(BM_StepThroughput, global_leader, "global-leader")->Arg(12);
BENCHMARK_CAPTURE(BM_StepThroughput, leader_uniform, "leader-uniform")->Arg(256);

void BM_SilenceCheck(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto proto = makeProtocol("asymmetric", static_cast<StateId>(n));
  Configuration c;
  for (std::uint32_t i = 0; i < n; ++i) c.mobile.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(isSilent(*proto, c));
  }
}
BENCHMARK(BM_SilenceCheck)->Arg(8)->Arg(64)->Arg(512);

void BM_FullConvergence(benchmark::State& state, const char* key) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto proto = makeProtocol(key, static_cast<StateId>(n));
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    Configuration start = key == std::string("leader-uniform")
                              ? uniformConfiguration(*proto, n)
                              : arbitraryConfiguration(*proto, n, rng);
    Engine engine(*proto, std::move(start));
    RandomScheduler sched(engine.numParticipants(), rng.next());
    state.ResumeTiming();
    const RunOutcome out =
        runUntilSilent(engine, sched, RunLimits{100'000'000, 256});
    benchmark::DoNotOptimize(out.convergenceInteractions);
  }
}
BENCHMARK_CAPTURE(BM_FullConvergence, asymmetric, "asymmetric")
    ->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_FullConvergence, leader_uniform, "leader-uniform")
    ->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_FullConvergence, selfstab_weak, "selfstab-weak")
    ->Arg(8)->Unit(benchmark::kMillisecond);

void BM_WeakChecker(benchmark::State& state) {
  const auto p = static_cast<StateId>(state.range(0));
  const auto proto = makeProtocol("global-leader", p);
  const auto initials = allConcreteConfigurations(*proto, p);
  for (auto _ : state) {
    const WeakVerdict v =
        checkWeakFairness(*proto, namingProblem(*proto), initials);
    benchmark::DoNotOptimize(v.solves);
  }
  state.counters["configs"] = static_cast<double>(
      checkWeakFairness(*proto, namingProblem(*proto), initials).numConfigs);
}
BENCHMARK(BM_WeakChecker)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_GlobalChecker(benchmark::State& state) {
  const auto p = static_cast<StateId>(state.range(0));
  const auto proto = makeProtocol("symmetric-global", p);
  const auto initials = allCanonicalConfigurations(*proto, p);
  for (auto _ : state) {
    const GlobalVerdict v =
        checkGlobalFairness(*proto, namingProblem(*proto), initials);
    benchmark::DoNotOptimize(v.solves);
  }
}
BENCHMARK(BM_GlobalChecker)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

}  // namespace
