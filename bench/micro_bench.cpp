// E12: engineering microbenchmarks (google-benchmark).
//
// Measures the simulation substrate itself: raw interaction throughput per
// protocol, scheduler overhead, silence-detection cost, and model-checker
// throughput — the numbers that bound how large an experiment the harness
// can run. The telemetry additions (E20) measure the observability layer:
// metrics-registry counter/histogram hot paths and observed-vs-unobserved
// runUntilSilent, so the "< 2% on the hot loop" budget stays checkable.
//
// A custom main() (instead of benchmark_main) accepts repo-specific flags
// in --flag=value form before delegating the rest to google-benchmark:
//   ./micro_bench [--events-out=run.jsonl] [--metrics-out=metrics.json]
//                 [--step-throughput-out=report.json]
//                 [--explore-throughput-out=report.json]
//                 [--batch-throughput-out=report.json]
//                 [--memory-profile-out=report.json]
//                 [google-benchmark flags...]
// With the telemetry flags set it runs a small observed sample batch after
// the benchmarks, streaming its JSONL events and dumping the metrics
// snapshot. --step-throughput-out runs the E21 interpreted-vs-compiled
// experiment INSTEAD of the benchmarks and writes the JSON report consumed
// by .github/scripts/check_bench.py (see EXPERIMENTS.md E21);
// --explore-throughput-out does the same for the E23 parallel-exploration
// and parallel-search experiment (EXPERIMENTS.md E23),
// --batch-throughput-out for the E26 many-replica SoA kernel / batch-engine
// experiment (EXPERIMENTS.md E26), and --memory-profile-out for the E27
// exploration memory profile (per-component bytes/node across the registry,
// plus a fresh-heap ledger-vs-RSS drift probe; EXPERIMENTS.md E27).
#include <benchmark/benchmark.h>
#include <unistd.h>
#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/explore.h"
#include "analysis/global_checker.h"
#include "analysis/initial_sets.h"
#include "analysis/protocol_search.h"
#include "analysis/weak_checker.h"
#include "core/compiled.h"
#include "core/engine.h"
#include "naming/registry.h"
#include "obs/events.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/probes.h"
#include "obs/resource_sampler.h"
#include "sched/deterministic_schedulers.h"
#include "sched/random_scheduler.h"
#include "sim/batch_engine.h"
#include "sim/runner.h"
#include "util/json.h"
#include "util/seed.h"

namespace {

using namespace ppn;

void BM_SchedulerNext(benchmark::State& state, SchedulerKind kind) {
  auto sched = makeScheduler(kind, 64, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched->next());
  }
}
BENCHMARK_CAPTURE(BM_SchedulerNext, random, SchedulerKind::kRandom);
BENCHMARK_CAPTURE(BM_SchedulerNext, skewed, SchedulerKind::kSkewed);
BENCHMARK_CAPTURE(BM_SchedulerNext, round_robin, SchedulerKind::kRoundRobin);
BENCHMARK_CAPTURE(BM_SchedulerNext, tournament, SchedulerKind::kTournament);

void BM_StepThroughput(benchmark::State& state, const char* key) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto proto = makeProtocol(key, static_cast<StateId>(n));
  Rng rng(7);
  Engine engine(*proto, key == std::string("leader-uniform")
                            ? uniformConfiguration(*proto, n)
                            : arbitraryConfiguration(*proto, n, rng));
  RandomScheduler sched(engine.numParticipants(), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step(sched.next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_StepThroughput, asymmetric, "asymmetric")->Arg(16)->Arg(256);
BENCHMARK_CAPTURE(BM_StepThroughput, selfstab_weak, "selfstab-weak")->Arg(12);
BENCHMARK_CAPTURE(BM_StepThroughput, global_leader, "global-leader")->Arg(12);
BENCHMARK_CAPTURE(BM_StepThroughput, leader_uniform, "leader-uniform")->Arg(256);

// --- E21: compiled fast path (core/compiled.h) ------------------------------

// Per-interaction cost with the flat tables attached. Compare against the
// same-key BM_StepThroughput rows: the delta is the virtual-dispatch +
// bounds-checking overhead the compilation removes from a single step().
void BM_CompiledStepThroughput(benchmark::State& state, const char* key) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto proto = makeProtocol(key, static_cast<StateId>(n));
  const CompiledProtocol compiled(*proto);
  Rng rng(7);
  Engine engine(*proto, key == std::string("leader-uniform")
                            ? uniformConfiguration(*proto, n)
                            : arbitraryConfiguration(*proto, n, rng));
  engine.attachCompiled(&compiled);
  RandomScheduler sched(engine.numParticipants(), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step(sched.next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_CompiledStepThroughput, asymmetric, "asymmetric")
    ->Arg(16)->Arg(256);
BENCHMARK_CAPTURE(BM_CompiledStepThroughput, leader_uniform, "leader-uniform")
    ->Arg(256);

// The real hot kernel: Engine::runBurst pulls scheduler pairs in blocks and
// batches the counter updates, so it is faster than compiled step()-by-step —
// this is what runUntilSilent actually executes.
void BM_BurstThroughput(benchmark::State& state, const char* key, bool fast) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto proto = makeProtocol(key, static_cast<StateId>(n));
  const CompiledProtocol compiled(*proto);
  Rng rng(7);
  Engine engine(*proto, arbitraryConfiguration(*proto, n, rng));
  if (fast) engine.attachCompiled(&compiled);
  RandomScheduler sched(engine.numParticipants(), 11);
  constexpr std::uint64_t kBurst = 4096;
  for (auto _ : state) {
    engine.runBurst(sched, kBurst);
    benchmark::DoNotOptimize(engine.nonNullInteractions());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBurst));
}
BENCHMARK_CAPTURE(BM_BurstThroughput, asymmetric_interp, "asymmetric", false)
    ->Arg(256)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_BurstThroughput, asymmetric_compiled, "asymmetric", true)
    ->Arg(256)->Unit(benchmark::kMicrosecond);

// Incremental silence verdict (counter test + leader row scan) vs the
// histogram-rebuilding isSilent() oracle at the same N — the poll cost that
// used to be paid every checkInterval interactions.
void BM_IncrementalSilence(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto proto = makeProtocol("asymmetric", static_cast<StateId>(n));
  const CompiledProtocol compiled(*proto);
  Rng rng(7);
  Engine engine(*proto, arbitraryConfiguration(*proto, n, rng));
  engine.attachCompiled(&compiled);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.silent());
  }
}
BENCHMARK(BM_IncrementalSilence)->Arg(8)->Arg(64)->Arg(512);

void BM_SilenceCheck(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto proto = makeProtocol("asymmetric", static_cast<StateId>(n));
  Configuration c;
  for (std::uint32_t i = 0; i < n; ++i) c.mobile.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(isSilent(*proto, c));
  }
}
BENCHMARK(BM_SilenceCheck)->Arg(8)->Arg(64)->Arg(512);

void BM_FullConvergence(benchmark::State& state, const char* key) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto proto = makeProtocol(key, static_cast<StateId>(n));
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    Configuration start = key == std::string("leader-uniform")
                              ? uniformConfiguration(*proto, n)
                              : arbitraryConfiguration(*proto, n, rng);
    Engine engine(*proto, std::move(start));
    RandomScheduler sched(engine.numParticipants(), rng.next());
    state.ResumeTiming();
    const RunOutcome out =
        runUntilSilent(engine, sched, RunLimits{100'000'000, 256});
    benchmark::DoNotOptimize(out.convergenceInteractions);
  }
}
BENCHMARK_CAPTURE(BM_FullConvergence, asymmetric, "asymmetric")
    ->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_FullConvergence, leader_uniform, "leader-uniform")
    ->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_FullConvergence, selfstab_weak, "selfstab-weak")
    ->Arg(8)->Unit(benchmark::kMillisecond);

void BM_WeakChecker(benchmark::State& state) {
  const auto p = static_cast<StateId>(state.range(0));
  const auto proto = makeProtocol("global-leader", p);
  const auto initials = allConcreteConfigurations(*proto, p);
  for (auto _ : state) {
    const WeakVerdict v =
        checkWeakFairness(*proto, namingProblem(*proto), initials);
    benchmark::DoNotOptimize(v.solves);
  }
  state.counters["configs"] = static_cast<double>(
      checkWeakFairness(*proto, namingProblem(*proto), initials).numConfigs);
}
BENCHMARK(BM_WeakChecker)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_GlobalChecker(benchmark::State& state) {
  const auto p = static_cast<StateId>(state.range(0));
  const auto proto = makeProtocol("symmetric-global", p);
  const auto initials = allCanonicalConfigurations(*proto, p);
  for (auto _ : state) {
    const GlobalVerdict v =
        checkGlobalFairness(*proto, namingProblem(*proto), initials);
    benchmark::DoNotOptimize(v.solves);
  }
}
BENCHMARK(BM_GlobalChecker)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

// --- E20: observability-layer hot paths -----------------------------------

void BM_MetricsCounterAdd(benchmark::State& state) {
  MetricsRegistry registry;
  const CounterHandle c = registry.counter("bench_counter");
  for (auto _ : state) {
    registry.add(c);
  }
  benchmark::DoNotOptimize(registry.snapshot().counterValue("bench_counter"));
}
BENCHMARK(BM_MetricsCounterAdd);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  MetricsRegistry registry;
  const HistogramHandle h = registry.histogram(
      "bench_histogram", {1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8});
  double v = 1.0;
  for (auto _ : state) {
    registry.observe(h, v);
    v = (v < 1e8) ? v * 3.0 : 1.0;  // walk the buckets
  }
  benchmark::DoNotOptimize(registry.snapshot());
}
BENCHMARK(BM_MetricsHistogramObserve);

// Observed vs unobserved full runs: the delta is the total telemetry cost of
// a run (hooks + metric updates), the quantity the "< 2% hot loop" budget in
// ISSUE/EXPERIMENTS speaks about. The unobserved variant must match the
// pre-telemetry BM_FullConvergence numbers.
void BM_RunTelemetry(benchmark::State& state, bool observed) {
  const std::uint32_t n = 8;
  const auto proto = makeProtocol("asymmetric", static_cast<StateId>(n));
  MetricsRegistry registry;
  MetricsRunObserver probe(registry);
  Rng rng(3);
  std::uint64_t runId = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine(*proto, arbitraryConfiguration(*proto, n, rng));
    RandomScheduler sched(engine.numParticipants(), rng.next());
    state.ResumeTiming();
    const RunOutcome out =
        observed ? runUntilSilent(engine, sched, RunLimits{100'000'000, 256},
                                  nullptr, &probe, runId++)
                 : runUntilSilent(engine, sched, RunLimits{100'000'000, 256});
    benchmark::DoNotOptimize(out.convergenceInteractions);
  }
}
BENCHMARK_CAPTURE(BM_RunTelemetry, unobserved, false)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_RunTelemetry, observed, true)
    ->Unit(benchmark::kMicrosecond);

// Observed vs unobserved exhaustive exploration: the delta is the
// ExploreObserver overhead on the checker hot loop (E22). The null-observer
// variant costs one pointer test per expansion/edge and must stay within
// noise of the pre-observer exploration throughput; the observed variant
// pays the periodic event construction (one per kExploreProgressStride
// expansions) plus the MetricsExploreObserver updates.
void BM_ExploreTelemetry(benchmark::State& state, bool observed) {
  const auto p = static_cast<StateId>(state.range(0));
  const auto proto = makeProtocol("selfstab-weak", p);
  const auto initials = allConcreteConfigurations(*proto, p);
  MetricsRegistry registry;
  MetricsExploreObserver probe(registry);
  std::uint64_t exploreId = 0;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const ConfigGraph graph =
        observed ? exploreConcrete(*proto, initials, 4'000'000, nullptr,
                                   &probe, ++exploreId)
                 : exploreConcrete(*proto, initials);
    nodes = graph.size();
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK_CAPTURE(BM_ExploreTelemetry, unobserved, false)
    ->Arg(3)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExploreTelemetry, observed, true)
    ->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace

namespace {

/// One interpreted-vs-compiled throughput measurement (E21). Both paths run
/// the identical interaction sequence (same scheduler seed, same start
/// configuration — the differential tests prove bit-identical executions), so
/// the ratio is a pure substrate speedup, not a workload difference.
struct ThroughputRow {
  std::string protocol;
  StateId p = 0;
  std::uint64_t interactions = 0;
  double interpretedStepsPerSec = 0.0;
  double compiledStepsPerSec = 0.0;
  double speedup = 0.0;
};

double measureStepsPerSec(const Protocol& proto, std::uint32_t numMobile,
                          const CompiledProtocol* compiled,
                          const RunLimits& limits, int repetitions,
                          std::uint64_t* interactionsOut) {
  using Clock = std::chrono::steady_clock;
  double best = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    Rng rng(9);  // same seed every rep and for both paths
    Configuration start;
    try {
      start = arbitraryConfiguration(proto, numMobile, rng);
    } catch (const std::logic_error&) {
      // Non-initialized leader with an un-enumerable state space at this P
      // (selfstab-weak): arbitrary init admits ANY leader state, so pick the
      // zero encoding — the throughput measured is the same.
      for (std::uint32_t i = 0; i < numMobile; ++i) {
        start.mobile.push_back(
            static_cast<StateId>(rng.below(proto.numMobileStates())));
      }
      start.leader = LeaderStateId{0};
    }
    Engine engine(proto, std::move(start));
    if (compiled != nullptr) engine.attachCompiled(compiled);
    RandomScheduler sched(engine.numParticipants(), rng.next());
    const Clock::time_point t0 = Clock::now();
    const RunOutcome out = runUntilSilent(engine, sched, limits);
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (interactionsOut != nullptr) *interactionsOut = out.totalInteractions;
    if (secs > 0.0) {
      best = std::max(best, static_cast<double>(out.totalInteractions) / secs);
    }
  }
  return best;
}

/// Runs the E21 step-throughput experiment (N = 256 across the registry,
/// interpreted vs compiled runUntilSilent, best of 3) and writes the
/// machine-readable report consumed by .github/scripts/check_bench.py.
int dumpStepThroughput(const std::string& path) {
  struct Case {
    const char* key;
    StateId p;
  };
  // P chosen so every protocol has 256 mobile states at N = 256 (the
  // symmetric/selfstab constructions use P+1 states for a bound of P).
  const Case cases[] = {{"asymmetric", 256},   {"symmetric-global", 255},
                        {"leader-uniform", 256}, {"counting", 256},
                        {"selfstab-weak", 255},  {"global-leader", 256}};
  // 4M interactions keeps the compiled timed region tens of milliseconds
  // (~100M steps/s), long enough that best-of-5 is stable across CI runners.
  const std::uint32_t numMobile = 256;
  const RunLimits limits{4'000'000, 64};
  const int repetitions = 5;

  std::vector<ThroughputRow> rows;
  for (const Case& c : cases) {
    const auto proto = makeProtocol(c.key, c.p);
    const CompiledProtocol compiled(*proto);
    ThroughputRow row;
    row.protocol = c.key;
    row.p = c.p;
    // Warm-up pass per path, then best-of-N timed passes.
    measureStepsPerSec(*proto, numMobile, nullptr, RunLimits{100'000, 64}, 1,
                       nullptr);
    row.interpretedStepsPerSec = measureStepsPerSec(
        *proto, numMobile, nullptr, limits, repetitions, nullptr);
    measureStepsPerSec(*proto, numMobile, &compiled, RunLimits{100'000, 64}, 1,
                       nullptr);
    row.compiledStepsPerSec = measureStepsPerSec(
        *proto, numMobile, &compiled, limits, repetitions, &row.interactions);
    row.speedup = row.interpretedStepsPerSec > 0.0
                      ? row.compiledStepsPerSec / row.interpretedStepsPerSec
                      : 0.0;
    rows.push_back(row);
    std::fprintf(stderr,
                 "step-throughput %-16s P=%-3u interp=%.3gM/s compiled=%.3gM/s "
                 "speedup=%.2fx\n",
                 row.protocol.c_str(), row.p,
                 row.interpretedStepsPerSec / 1e6,
                 row.compiledStepsPerSec / 1e6, row.speedup);
  }

  JsonWriter w;
  w.beginObject();
  w.key("kind").value("ppn-step-throughput");
  w.key("numMobile").value(numMobile);
  w.key("budgetInteractions").value(limits.maxInteractions);
  w.key("checkInterval").value(limits.checkInterval);
  w.key("repetitions").value(repetitions);
  w.key("rows").beginArray();
  for (const ThroughputRow& row : rows) {
    w.beginObject();
    w.key("protocol").value(row.protocol);
    w.key("p").value(row.p);
    // Single-replica rows: one lane of `numMobile` agents, so the per-lane
    // and aggregate rates coincide. Recorded explicitly so this report and
    // the ppn-batch-throughput report share one rate schema (check_bench.py
    // cross-checks lanes * perLane == aggregate on both).
    w.key("lanes").value(static_cast<std::uint64_t>(1));
    w.key("numMobile").value(numMobile);
    w.key("interactions").value(row.interactions);
    w.key("interpretedStepsPerSec").value(row.interpretedStepsPerSec);
    w.key("compiledStepsPerSec").value(row.compiledStepsPerSec);
    w.key("perLaneStepsPerSec").value(row.compiledStepsPerSec);
    w.key("aggregateStepsPerSec").value(row.compiledStepsPerSec);
    w.key("speedup").value(row.speedup);
    w.endObject();
  }
  w.endArray();
  w.endObject();

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "micro_bench: cannot write '%s'\n", path.c_str());
    return 1;
  }
  out << w.str() << '\n';
  return 0;
}

// --- E23: parallel exploration / search throughput --------------------------

/// One parallel-exploration measurement: canonical exploration of a closed
/// graph at several thread counts. The graph is explored from ALL canonical
/// configurations (the self-stabilization workload), so its size is known and
/// identical across thread counts — the report records per-row node counts so
/// check_bench.py can re-verify the determinism contract.
struct ExploreThroughputRow {
  std::uint32_t threads = 0;
  std::uint64_t nodes = 0;
  bool truncated = false;
  double nodesPerSec = 0.0;
  double speedup = 0.0;
};

double measureExploreNodesPerSec(const Protocol& proto,
                                 const std::vector<Configuration>& initials,
                                 std::uint32_t threads, int repetitions,
                                 std::uint64_t* nodesOut, bool* truncatedOut) {
  using Clock = std::chrono::steady_clock;
  double best = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    ExploreOptions options;
    options.threads = threads;
    const Clock::time_point t0 = Clock::now();
    const ConfigGraph g = exploreCanonical(proto, initials, options);
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (nodesOut != nullptr) *nodesOut = g.size();
    if (truncatedOut != nullptr) *truncatedOut = g.truncated;
    if (secs > 0.0) {
      best = std::max(best, static_cast<double>(g.size()) / secs);
    }
  }
  return best;
}

double measureSearchCandidatesPerSec(std::uint32_t threads, int repetitions,
                                     std::uint64_t* candidatesOut) {
  using Clock = std::chrono::steady_clock;
  double best = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    SearchOptions options;
    options.threads = threads;
    const Clock::time_point t0 = Clock::now();
    const SearchOutcome out = searchUniformNaming(
        3, 3, Fairness::kWeak, /*symmetricSpace=*/true, options);
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (candidatesOut != nullptr) *candidatesOut = out.examined;
    if (secs > 0.0) {
      best = std::max(best, static_cast<double>(out.examined) / secs);
    }
  }
  return best;
}

/// Runs the E23 explore-throughput experiment (canonical exploration at
/// threads = 1/2/4/8 plus the q=3 symmetric lower-bound search) and writes
/// the JSON report consumed by .github/scripts/check_bench.py. The recorded
/// hardwareThreads lets the checker apply the speedup floor only on machines
/// that actually have the cores (a 1-core container honestly reports ~1.0x).
int dumpExploreThroughput(const std::string& path) {
  struct Case {
    const char* key;
    StateId p;
    std::uint32_t numMobile;
  };
  // Populations chosen so the canonical graph over ALL configurations closes
  // at ~10^4..10^5 nodes: large enough to amortize the per-level barriers,
  // small enough for a CI smoke lane. (asymmetric P=10/N=10: C(19,9) = 92378
  // multisets; symmetric-global P=8 has 9 states, N=10: C(18,8) = 43758.)
  const Case cases[] = {{"asymmetric", 10, 10}, {"symmetric-global", 8, 10}};
  const std::uint32_t threadCounts[] = {1, 2, 4, 8};
  const int repetitions = 3;

  JsonWriter w;
  w.beginObject();
  w.key("kind").value("ppn-explore-throughput");
  w.key("hardwareThreads")
      .value(std::max(1u, std::thread::hardware_concurrency()));
  w.key("repetitions").value(repetitions);
  w.key("explore").beginArray();
  for (const Case& c : cases) {
    const auto proto = makeProtocol(c.key, c.p);
    const auto initials = allCanonicalConfigurations(*proto, c.numMobile);
    w.beginObject();
    w.key("protocol").value(c.key);
    w.key("p").value(c.p);
    w.key("numMobile").value(c.numMobile);
    w.key("rows").beginArray();
    double serialRate = 0.0;
    for (const std::uint32_t threads : threadCounts) {
      ExploreThroughputRow row;
      row.threads = threads;
      // One warm-up pass, then best-of-N timed passes.
      measureExploreNodesPerSec(*proto, initials, threads, 1, nullptr,
                                nullptr);
      row.nodesPerSec =
          measureExploreNodesPerSec(*proto, initials, threads, repetitions,
                                    &row.nodes, &row.truncated);
      if (threads == 1) serialRate = row.nodesPerSec;
      row.speedup = serialRate > 0.0 ? row.nodesPerSec / serialRate : 0.0;
      w.beginObject();
      w.key("threads").value(row.threads);
      w.key("nodes").value(row.nodes);
      w.key("truncated").value(row.truncated);
      w.key("nodesPerSec").value(row.nodesPerSec);
      w.key("speedup").value(row.speedup);
      w.endObject();
      std::fprintf(stderr,
                   "explore-throughput %-16s P=%-3u N=%-3u threads=%u "
                   "nodes=%llu rate=%.3gM/s speedup=%.2fx\n",
                   c.key, c.p, c.numMobile, threads,
                   static_cast<unsigned long long>(row.nodes),
                   row.nodesPerSec / 1e6, row.speedup);
    }
    w.endArray();
    w.endObject();
  }
  w.endArray();

  // Candidate-level parallel search: the q=3 symmetric lower-bound workload
  // (19683 candidates, Proposition 2 at N = 3).
  w.key("search").beginArray();
  {
    w.beginObject();
    w.key("space").value("symmetric");
    w.key("q").value(3);
    w.key("numMobile").value(3);
    w.key("fairness").value("weak");
    w.key("rows").beginArray();
    double serialRate = 0.0;
    for (const std::uint32_t threads : threadCounts) {
      std::uint64_t candidates = 0;
      const double rate =
          measureSearchCandidatesPerSec(threads, repetitions > 1 ? 2 : 1,
                                        &candidates);
      if (threads == 1) serialRate = rate;
      const double speedup = serialRate > 0.0 ? rate / serialRate : 0.0;
      w.beginObject();
      w.key("threads").value(threads);
      w.key("candidates").value(candidates);
      w.key("candidatesPerSec").value(rate);
      w.key("speedup").value(speedup);
      w.endObject();
      std::fprintf(stderr,
                   "search-throughput symmetric q=3 threads=%u "
                   "candidates=%llu rate=%.3gk/s speedup=%.2fx\n",
                   threads, static_cast<unsigned long long>(candidates),
                   rate / 1e3, speedup);
    }
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.endObject();

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "micro_bench: cannot write '%s'\n", path.c_str());
    return 1;
  }
  out << w.str() << '\n';
  return 0;
}

// --- E26: many-replica batch throughput (SoA kernel + batch engine) --------

/// Per-lane inputs for one batch-throughput case, derived exactly as a
/// BatchSpec submit would (util/seed.h pre-split), with the E21 fallback for
/// protocols whose arbitrary leader space is not enumerable at this P.
std::vector<LanePlan> batchLanePlans(const Protocol& proto,
                                     std::uint32_t numMobile,
                                     std::uint32_t lanes, std::uint64_t seed) {
  std::vector<Rng> laneRngs = splitRunRngs(seed, lanes);
  std::vector<LanePlan> plans(lanes);
  for (std::uint32_t r = 0; r < lanes; ++r) {
    Rng& rng = laneRngs[r];
    try {
      plans[r].start = arbitraryConfiguration(proto, numMobile, rng);
    } catch (const std::logic_error&) {
      plans[r].start.mobile.clear();
      for (std::uint32_t i = 0; i < numMobile; ++i) {
        plans[r].start.mobile.push_back(
            static_cast<StateId>(rng.below(proto.numMobileStates())));
      }
      plans[r].start.leader = LeaderStateId{0};
    }
    plans[r].schedSeed = rng.next();
    plans[r].runId = r;
  }
  return plans;
}

bool sameOutcome(const RunOutcome& a, const RunOutcome& b) {
  return a.silent == b.silent && a.namingSolved == b.namingSolved &&
         a.timedOut == b.timedOut && a.cancelled == b.cancelled &&
         a.convergenceInteractions == b.convergenceInteractions &&
         a.totalInteractions == b.totalInteractions &&
         a.nonNullInteractions == b.nonNullInteractions &&
         a.numMobile == b.numMobile && a.finalConfig == b.finalConfig;
}

struct BatchThroughputRow {
  std::string protocol;
  StateId p = 0;
  std::uint64_t interactions = 0;  ///< aggregate across all lanes
  double singleRunStepsPerSec = 0.0;
  double perLaneStepsPerSec = 0.0;
  double aggregateStepsPerSec = 0.0;
  double speedup = 0.0;       ///< aggregate / single-run
  bool identicalToScalar = false;
};

/// Runs the E26 batch-throughput experiment: K lanes of N agents through one
/// BatchEngine (SoA kernel, all cores) vs the PR 3 single-run compiled
/// baseline, and writes the report consumed by check_bench.py. Every case
/// first re-runs its lane plans through the scalar one-Engine-per-run path
/// and records whether all K outcomes were bit-identical (the determinism
/// contract, enforced in-report so a regression is visible in the artifact).
int dumpBatchThroughput(const std::string& path) {
  using Clock = std::chrono::steady_clock;
  struct Case {
    const char* key;
    StateId p;
  };
  // Same registry coverage and P choices as the E21 step-throughput report.
  const Case cases[] = {{"asymmetric", 256},   {"symmetric-global", 255},
                        {"leader-uniform", 256}, {"counting", 256},
                        {"selfstab-weak", 255},  {"global-leader", 256}};
  const std::uint32_t numMobile = 256;
  const std::uint32_t lanes = 1024;
  // Per-lane budget: big enough that lane setup amortizes, small enough that
  // 1024 lanes x 6 protocols x (vectorized + scalar + reps) stays a smoke
  // workload. checkInterval == budget: one silence poll per burst, as the
  // batch engine's clients configure their hot paths.
  const RunLimits laneLimits{8192, 8192};
  const int repetitions = 3;
  const std::uint64_t seed = 13;
  BatchEngine engine;  // all cores

  JsonWriter w;
  w.beginObject();
  w.key("kind").value("ppn-batch-throughput");
  w.key("hardwareThreads")
      .value(std::max(1u, std::thread::hardware_concurrency()));
  w.key("engineThreads").value(engine.threads());
  w.key("lanes").value(lanes);
  w.key("numMobile").value(numMobile);
  w.key("budgetPerLane").value(laneLimits.maxInteractions);
  w.key("repetitions").value(repetitions);
  w.key("rows").beginArray();
  bool allIdentical = true;
  for (const Case& c : cases) {
    const auto proto = makeProtocol(c.key, c.p);
    const CompiledProtocol compiled(*proto);
    BatchThroughputRow row;
    row.protocol = c.key;
    row.p = c.p;

    // Single-run baseline: lane 0's plan, compiled Engine, same budget scaled
    // to a timeable region (the PR 3 number this report's speedup is against).
    {
      const RunLimits limits{4'000'000, 4096};
      for (int rep = 0; rep < repetitions; ++rep) {
        std::vector<LanePlan> one = batchLanePlans(*proto, numMobile, 1, seed);
        Engine eng(*proto, std::move(one[0].start));
        eng.attachCompiled(&compiled);
        RandomScheduler sched(eng.numParticipants(), one[0].schedSeed);
        const Clock::time_point t0 = Clock::now();
        const RunOutcome out = runUntilSilent(eng, sched, limits);
        const double secs =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (secs > 0.0) {
          row.singleRunStepsPerSec =
              std::max(row.singleRunStepsPerSec,
                       static_cast<double>(out.totalInteractions) / secs);
        }
      }
    }

    // Vectorized: all K lanes through the engine's queue, best-of-N reps.
    LaneJobSpec jspec;
    jspec.limits = laneLimits;
    std::vector<RunOutcome> vectorized;
    for (int rep = 0; rep < repetitions; ++rep) {
      std::vector<LanePlan> plans =
          batchLanePlans(*proto, numMobile, lanes, seed);
      const Clock::time_point t0 = Clock::now();
      auto job = engine.submitLanes(*proto, std::move(plans), jspec);
      job->wait();
      const double secs =
          std::chrono::duration<double>(Clock::now() - t0).count();
      std::uint64_t total = 0;
      for (const RunOutcome& out : job->outcomes()) {
        total += out.totalInteractions;
      }
      row.interactions = total;
      if (secs > 0.0) {
        row.aggregateStepsPerSec = std::max(
            row.aggregateStepsPerSec, static_cast<double>(total) / secs);
      }
      if (rep + 1 == repetitions) vectorized = job->outcomes();
    }
    row.perLaneStepsPerSec = row.aggregateStepsPerSec / lanes;
    row.speedup = row.singleRunStepsPerSec > 0.0
                      ? row.aggregateStepsPerSec / row.singleRunStepsPerSec
                      : 0.0;

    // Differential pass: the same plans, one scalar Engine per lane.
    {
      std::vector<LanePlan> plans =
          batchLanePlans(*proto, numMobile, lanes, seed);
      row.identicalToScalar = true;
      for (std::uint32_t r = 0; r < lanes; ++r) {
        Engine eng(*proto, std::move(plans[r].start));
        eng.attachCompiled(&compiled);
        RandomScheduler sched(eng.numParticipants(), plans[r].schedSeed);
        const RunOutcome out = runUntilSilent(eng, sched, laneLimits);
        if (!sameOutcome(out, vectorized[r])) {
          row.identicalToScalar = false;
          break;
        }
      }
    }
    allIdentical = allIdentical && row.identicalToScalar;

    w.beginObject();
    w.key("protocol").value(row.protocol);
    w.key("p").value(row.p);
    w.key("lanes").value(lanes);
    w.key("numMobile").value(numMobile);
    w.key("interactions").value(row.interactions);
    w.key("singleRunStepsPerSec").value(row.singleRunStepsPerSec);
    w.key("perLaneStepsPerSec").value(row.perLaneStepsPerSec);
    w.key("aggregateStepsPerSec").value(row.aggregateStepsPerSec);
    w.key("speedup").value(row.speedup);
    w.key("identicalToScalar").value(row.identicalToScalar);
    w.endObject();
    std::fprintf(stderr,
                 "batch-throughput %-16s P=%-3u lanes=%u single=%.3gM/s "
                 "aggregate=%.3gM/s speedup=%.2fx identical=%s\n",
                 row.protocol.c_str(), row.p, lanes,
                 row.singleRunStepsPerSec / 1e6,
                 row.aggregateStepsPerSec / 1e6, row.speedup,
                 row.identicalToScalar ? "yes" : "NO");
  }
  w.endArray();
  w.endObject();

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "micro_bench: cannot write '%s'\n", path.c_str());
    return 1;
  }
  out << w.str() << '\n';
  // A non-identical row is a correctness bug, not a slow machine: fail loudly.
  return allIdentical ? 0 : 1;
}

// --- E27: exploration memory profile ----------------------------------------

/// Runs the E27/E28 memory-profile experiment: per registry protocol, one
/// exploration in each graph storage (compressed first, then explicit) with a
/// MemoryStatsCollector attached, reporting per-component ledger bytes and
/// bytes/node from each exploration's final (done=true) memory_sample, plus
/// the compression ratio (explicit total / compressed total) on compressed
/// rows. The first run of the first (largest) case — the compressed anchor —
/// lands on a FRESH heap; its ledger total is compared against the RSS growth
/// observed while the graph and dedup table were still live (the final
/// sample's rss_bytes minus the RSS just before exploring), pinning the
/// DESIGN-18/19 malloc-chunk model against the real allocator. Later runs
/// reuse freed arena pages, so only the anchor carries the drift block.
/// Writes the ppn-explore-memory report consumed by
/// .github/scripts/check_bench.py.
int dumpExploreMemory(const std::string& path) {
#if defined(__GLIBC__)
  // Pin the mmap threshold. glibc's threshold is dynamic: once a large mmap'd
  // block is freed it raises the threshold to that size, so later doubling
  // generations of the stores' buffers are served from the arena and their
  // freed predecessors linger in RSS. With a fixed threshold every large
  // buffer is mmap'd and returned to the OS on free, so the anchor's RSS
  // delta prices LIVE bytes — the state the ledger models — rather than the
  // allocation history.
  mallopt(M_MMAP_THRESHOLD, 128 * 1024);
#endif
  struct Case {
    const char* key;
    StateId p;
    std::uint32_t numMobile;
    bool canonical;     ///< canonical quotient vs concrete exploration
    bool declaredInit;  ///< declared uniform initials (initialized-agent rows)
  };
  // Anchor sized at ~92k nodes (C(19,9) multisets) so the RSS delta dwarfs
  // allocator slack; the rest are the registry's checker-scale workloads.
  const Case cases[] = {
      {"asymmetric", 10, 10, true, false},
      {"symmetric-global", 8, 10, true, false},
      {"selfstab-weak", 3, 3, false, false},
      {"leader-uniform", 4, 4, false, true},
      {"global-leader", 4, 4, false, false},
      {"counting", 4, 4, false, false},
  };

  MemoryStatsCollector collector;
  std::uint64_t exploreId = 0;
  std::uint64_t rssBaseline = 0;
  std::uint64_t rssAtDone = 0;
  std::uint64_t anchorLedgerTotal = 0;
  bool failed = false;

  JsonWriter w;
  w.beginObject();
  w.key("kind").value("ppn-explore-memory");
  w.key("hardwareThreads")
      .value(std::max(1u, std::thread::hardware_concurrency()));
  w.key("rows").beginArray();
  for (const Case& c : cases) {
    const bool anchor = exploreId == 0;
    const auto proto = makeProtocol(c.key, c.p);
    const auto initials =
        c.canonical ? allCanonicalConfigurations(*proto, c.numMobile)
        : c.declaredInit
            ? declaredUniformInitials(*proto, c.numMobile)
            : allConcreteConfigurations(*proto, c.numMobile);

    struct Run {
      std::uint64_t nodes = 0;
      MemorySampleEvent sample;
    };
    auto runOnce = [&](GraphStorage storage,
                       bool probeRss) -> std::optional<Run> {
      ExploreOptions options;
      options.observer = &collector;
      options.exploreId = ++exploreId;
      options.storage = storage;
      if (probeRss) {
        const auto before =
            sampleProcessResources(static_cast<std::int64_t>(::getpid()));
        if (before) rssBaseline = static_cast<std::uint64_t>(before->rssBytes);
      }
      const ConfigGraph g = c.canonical
                                ? exploreCanonical(*proto, initials, options)
                                : exploreConcrete(*proto, initials, options);
      const auto sample = collector.lastSample(options.exploreId);
      if (!sample || !sample->done || g.truncated) return std::nullopt;
      Run run;
      run.nodes = g.size();
      run.sample = *sample;
      return run;
    };

    // Compressed first: the anchor's compressed run sees the fresh heap, so
    // the RSS probe prices the representation the checkers actually run on.
    const auto compressed = runOnce(GraphStorage::kCompressed, anchor);
    const auto explicitRun = runOnce(GraphStorage::kExplicit, false);
    if (!compressed || !explicitRun || compressed->nodes != explicitRun->nodes) {
      std::fprintf(stderr,
                   "micro_bench: E27 exploration of '%s' did not finish "
                   "cleanly; report aborted\n",
                   c.key);
      failed = true;
      break;
    }
    if (anchor) {
      // The final sample's RSS was taken inside the exploration, while the
      // dedup table and frontier storage were still allocated — exactly the
      // state the ledger total models.
      rssAtDone = compressed->sample.rssBytes;
      anchorLedgerTotal = compressed->sample.totalBytes;
    }

    auto emitRow = [&](const char* storage, const Run& run,
                       double compressionRatio) {
      const double bytesPerNode =
          run.nodes > 0 ? static_cast<double>(run.sample.totalBytes) /
                              static_cast<double>(run.nodes)
                        : 0.0;
      w.beginObject();
      w.key("protocol").value(c.key);
      w.key("storage").value(storage);
      w.key("p").value(c.p);
      w.key("numMobile").value(c.numMobile);
      w.key("mode").value(c.canonical ? "canonical" : "concrete");
      w.key("nodes").value(run.nodes);
      w.key("configsBytes").value(run.sample.configsBytes);
      w.key("adjacencyBytes").value(run.sample.adjacencyBytes);
      w.key("dedupBytes").value(run.sample.dedupBytes);
      w.key("frontierBytes").value(run.sample.frontierBytes);
      w.key("codecBytes").value(run.sample.codecBytes);
      w.key("totalBytes").value(run.sample.totalBytes);
      w.key("highWaterBytes").value(run.sample.highWaterBytes);
      w.key("bytesPerNode").value(bytesPerNode);
      if (compressionRatio > 0.0) {
        w.key("spillBytes").value(run.sample.spillBytes);
        w.key("compressionRatio").value(compressionRatio);
      }
      w.endObject();
      std::fprintf(stderr,
                   "explore-memory %-16s %-10s P=%-3u N=%-3u nodes=%llu "
                   "total=%.3gMB bytes/node=%.1f",
                   c.key, storage, c.p, c.numMobile,
                   static_cast<unsigned long long>(run.nodes),
                   static_cast<double>(run.sample.totalBytes) / 1e6,
                   bytesPerNode);
      if (compressionRatio > 0.0) {
        std::fprintf(stderr, " ratio=%.2f", compressionRatio);
      }
      std::fprintf(stderr, "\n");
    };
    const double ratio =
        compressed->sample.totalBytes > 0
            ? static_cast<double>(explicitRun->sample.totalBytes) /
                  static_cast<double>(compressed->sample.totalBytes)
            : 0.0;
    emitRow("explicit", *explicitRun, 0.0);
    emitRow("compressed", *compressed, ratio);
  }
  w.endArray();
  if (failed) return 1;
  // Drift probe: 0 RSS values mean the platform sampler was unavailable —
  // check_bench.py treats a missing/zero delta as "skip", not "fail".
  const std::uint64_t rssDelta =
      rssAtDone > rssBaseline ? rssAtDone - rssBaseline : 0;
  w.key("rssProbe").beginObject();
  w.key("protocol").value(cases[0].key);
  w.key("storage").value("compressed");
  w.key("rssBaselineBytes").value(rssBaseline);
  w.key("rssAtDoneBytes").value(rssAtDone);
  w.key("rssDeltaBytes").value(rssDelta);
  w.key("ledgerTotalBytes").value(anchorLedgerTotal);
  w.key("ledgerVsRssRatio")
      .value(rssDelta > 0 ? static_cast<double>(anchorLedgerTotal) /
                                static_cast<double>(rssDelta)
                          : 0.0);
  w.endObject();
  w.endObject();

  if (rssDelta > 0) {
    std::fprintf(stderr,
                 "explore-memory drift: ledger=%.3gMB rssDelta=%.3gMB "
                 "ratio=%.3f\n",
                 static_cast<double>(anchorLedgerTotal) / 1e6,
                 static_cast<double>(rssDelta) / 1e6,
                 static_cast<double>(anchorLedgerTotal) /
                     static_cast<double>(rssDelta));
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "micro_bench: cannot write '%s'\n", path.c_str());
    return 1;
  }
  out << w.str() << '\n';
  return 0;
}

/// Post-benchmark telemetry sample: a small observed batch whose JSONL
/// events and metrics snapshot land in the files named by the stripped
/// --events-out=/--metrics-out= flags.
int dumpTelemetrySample(const std::string& eventsOut,
                        const std::string& metricsOut) {
  MetricsRegistry registry;
  MetricsRunObserver probe(registry);
  MultiObserver observers;
  observers.add(&probe);
  std::unique_ptr<JsonlEventSink> sink;
  try {
    if (!eventsOut.empty()) {
      sink = std::make_unique<JsonlEventSink>(eventsOut);
      observers.add(sink.get());
    }
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "micro_bench: %s\n", e.what());
    return 1;
  }

  const auto proto = makeProtocol("asymmetric", 8);
  BatchSpec spec;
  spec.numMobile = 8;
  spec.init = InitKind::kArbitrary;
  spec.sched = SchedulerKind::kRandom;
  spec.runs = 8;
  spec.seed = 17;
  spec.limits = RunLimits{100'000'000, 256};
  spec.observer = &observers;
  const BatchResult r = runBatch(*proto, spec);
  benchmark::DoNotOptimize(r.named);

  if (sink) sink->flush();
  if (!metricsOut.empty()) {
    std::ofstream out(metricsOut, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "micro_bench: cannot write '%s'\n",
                   metricsOut.c_str());
      return 1;
    }
    out << registry.toJson() << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string eventsOut;
  std::string metricsOut;
  std::string stepThroughputOut;
  std::string exploreThroughputOut;
  std::string batchThroughputOut;
  std::string memoryProfileOut;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--events-out=", 13) == 0) {
      eventsOut = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metricsOut = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--step-throughput-out=", 22) == 0) {
      stepThroughputOut = argv[i] + 22;
    } else if (std::strncmp(argv[i], "--explore-throughput-out=", 25) == 0) {
      exploreThroughputOut = argv[i] + 25;
    } else if (std::strncmp(argv[i], "--batch-throughput-out=", 23) == 0) {
      batchThroughputOut = argv[i] + 23;
    } else if (std::strncmp(argv[i], "--memory-profile-out=", 21) == 0) {
      memoryProfileOut = argv[i] + 21;
    } else {
      rest.push_back(argv[i]);
    }
  }
  // The step-throughput (E21), explore-throughput (E23), batch-throughput
  // (E26) and memory-profile (E27) experiments stand alone: they measure
  // whole runs themselves, so they skip the google-benchmark harness
  // entirely. E27 in particular NEEDS a fresh heap for its RSS drift probe.
  if (!stepThroughputOut.empty()) return dumpStepThroughput(stepThroughputOut);
  if (!exploreThroughputOut.empty()) {
    return dumpExploreThroughput(exploreThroughputOut);
  }
  if (!batchThroughputOut.empty()) {
    return dumpBatchThroughput(batchThroughputOut);
  }
  if (!memoryProfileOut.empty()) return dumpExploreMemory(memoryProfileOut);
  int restArgc = static_cast<int>(rest.size());
  benchmark::Initialize(&restArgc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(restArgc, rest.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!eventsOut.empty() || !metricsOut.empty()) {
    return dumpTelemetrySample(eventsOut, metricsOut);
  }
  return 0;
}
