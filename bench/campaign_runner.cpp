// E24: crash-safe campaign orchestration — runs the robustness-table sweep
// (and optionally the Table 1 feasibility cells) as a sharded, checkpointed,
// retry-with-backoff campaign of worker processes.
//
//   ./campaign_runner run    --out DIR [grid flags] [orchestrator flags]
//   ./campaign_runner resume --out DIR [orchestrator flags]
//   ./campaign_runner merge  --out DIR
//   ./campaign_runner status --out DIR [--health]
//   ./campaign_runner trace  --out DIR [--trace-out FILE]
//
// `run` expands the manifest (grid flags mirror robustness_table; add
// --table1-p to include the Table 1 cells) into deterministic work units with
// pre-drawn seeds, persists it to DIR/manifest.json, and drives --workers
// forked shard processes over it. Shards checkpoint after every unit, so a
// crashed/killed/hung shard (see --stall-timeout-ms) is respawned with capped
// exponential backoff and resumes from its last completed unit; a unit that
// keeps killing its shard is blacklisted after --max-attempts and surfaces as
// a FAILED cell instead of sinking the campaign. SIGINT/SIGTERM checkpoint
// and exit; `resume` picks up exactly where the campaign stopped, and the
// merged output is byte-identical to an uninterrupted run.
//
// `merge` verifies every shard artifact's checksum footer (refusing torn or
// tampered inputs), then rebuilds DIR/merged.jsonl, DIR/robustness_table.json
// (byte-identical to robustness_table --json when no unit failed),
// DIR/table1.json, DIR/summary.json, and — when the orchestrator stream
// survives — the checksummed DIR/campaign_health.json (E25).
//
// Orchestrator telemetry (campaign_start/shard_spawn/shard_exit/unit_start/
// unit_end/unit_retry/unit_failed/resource_sample/campaign_end) streams to
// DIR/events.jsonl (one file per session; a resume starts a fresh stream),
// flushed per line so `status` and `trace` can watch a live campaign through
// the in-flight .tmp. Each shard additionally streams its run/explore events
// to DIR/shards/shard_NNN.events.jsonl; `trace` merges everything into one
// Chrome-trace/Perfetto timeline (E25, obs/campaign_trace.h). `status`
// derives per-shard units/sec and ETA from the stream; `status --health`
// prints the full health report (stragglers, retry storms, peak RSS) and
// publishes DIR/campaign_health.json.
//
// Exit codes: 0 clean; 2 units failed / table not certified; 130 interrupted;
// 1 usage or integrity errors.
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/artifact.h"
#include "campaign/manifest.h"
#include "campaign/merge.h"
#include "campaign/orchestrator.h"
#include "faults/certify.h"
#include "naming/registry.h"
#include "obs/campaign_health.h"
#include "obs/campaign_trace.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/cli.h"
#include "util/strings.h"

namespace {

std::vector<std::string> parseList(const std::string& csv) {
  std::vector<std::string> out;
  for (const auto& item : ppn::split(csv, ',')) {
    const auto trimmed = ppn::trim(item);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

struct OrchestratorFlags {
  const std::uint64_t* workers;
  const std::uint64_t* maxAttempts;
  const std::uint64_t* backoffMs;
  const std::uint64_t* backoffCapMs;
  const std::uint64_t* stallTimeoutMs;
  const std::uint64_t* pollMs;
  const std::uint64_t* resourceSampleMs;
  const std::string* metricsOut;
  const bool* mergeAfter;
};

OrchestratorFlags addOrchestratorFlags(ppn::Cli& cli) {
  OrchestratorFlags f;
  f.workers = cli.addUint("workers", "concurrent shard processes", 2);
  f.maxAttempts =
      cli.addUint("max-attempts", "attempts per unit before blacklisting", 3);
  f.backoffMs = cli.addUint("backoff-ms", "initial respawn backoff", 100);
  f.backoffCapMs = cli.addUint("backoff-cap-ms", "backoff ceiling", 5'000);
  f.stallTimeoutMs = cli.addUint(
      "stall-timeout-ms",
      "SIGKILL a shard whose checkpoint stops growing for this long (0 = off)",
      0);
  f.pollMs = cli.addUint("poll-ms", "orchestrator poll interval", 25);
  f.resourceSampleMs = cli.addUint(
      "resource-sample-ms",
      "sample live shards' /proc resources this often (0 = off)", 1'000);
  f.metricsOut = cli.addString(
      "metrics-out", "write the orchestrator metrics snapshot here", "");
  f.mergeAfter = cli.addFlag("merge", "merge artifacts after completion");
  return f;
}

int runMerge(const std::string& outDir) {
  try {
    const ppn::MergeSummary summary = ppn::mergeCampaign(outDir);
    std::printf("merged %llu units: %llu ok, %llu degraded, %llu skipped, "
                "%zu failed\n",
                static_cast<unsigned long long>(summary.totalUnits),
                static_cast<unsigned long long>(summary.okUnits),
                static_cast<unsigned long long>(summary.degradedUnits),
                static_cast<unsigned long long>(summary.skippedUnits),
                summary.failedUnits.size());
    std::printf("robustness table: %s\n",
                summary.robustnessCertified ? "certified" : "NOT certified");
    if (summary.hasTable1) {
      std::printf("table 1: %s\n", summary.table1Overall ? "pass" : "FAIL");
    }
    std::printf("outputs: %s\n          %s\n          %s\n",
                ppn::mergedUnitsPath(outDir).c_str(),
                ppn::mergedRobustnessTablePath(outDir).c_str(),
                ppn::campaignSummaryPath(outDir).c_str());
    if (summary.healthWritten) {
      std::printf("          %s\n", ppn::campaignHealthPath(outDir).c_str());
    }
    const bool clean = summary.clean() && summary.robustnessCertified &&
                       (!summary.hasTable1 || summary.table1Overall);
    return clean ? 0 : 2;
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 1;
  }
}

int runOrchestrate(int argc, const char* const* argv, bool resume) {
  ppn::Cli cli(resume ? "campaign_runner resume" : "campaign_runner run",
               resume ? "resume an interrupted campaign"
                      : "expand a manifest and orchestrate shard workers");
  const auto* outDir = cli.addString("out", "campaign directory", "");
  const auto* manifestFile = cli.addString(
      "manifest", "load the manifest from this JSON file (run only)", "");
  // Grid flags (mirroring robustness_table; ignored on resume).
  const auto* pops = cli.addString("pops", "population sizes (csv)", "4,6");
  const auto* protocolsFlag =
      cli.addString("protocols", "registry keys (csv; empty = all)", "");
  const auto* regimesFlag = cli.addString(
      "regimes", "fault regimes (csv)",
      "poisson-transient,churn,targeted-adversary,stuck-agent");
  const auto* schedulersFlag =
      cli.addString("schedulers", "schedulers (csv)", "random");
  const auto* runs = cli.addUint("runs", "campaigns per cell", 24);
  const auto* seed = cli.addUint("seed", "rng seed", 2026);
  const auto* window =
      cli.addUint("fault-window", "interactions under fault", 20'000);
  const auto* rate =
      cli.addDouble("rate", "poisson/churn per-interaction fault rate", 0.005);
  const auto* period =
      cli.addUint("period", "periodic/targeted fault period", 500);
  const auto* corruptFraction =
      cli.addDouble("corrupt-fraction", "agents corrupted per event / N", 0.5);
  const auto* maxWall = cli.addUint(
      "max-wall-millis",
      "per-run watchdog (0 = off, keeps results bitwise deterministic)", 0);
  const auto* threads =
      cli.addUint("threads", "worker threads inside each shard", 1);
  const auto* shards = cli.addUint("shards", "work-unit stripes", 4);
  const auto* table1P = cli.addUint(
      "table1-p", "also check the Table 1 cells at this bound (0 = skip)", 0);
  const auto* name = cli.addString("name", "campaign name", "campaign");
  const auto* eventsOut = cli.addString(
      "events-out", "orchestrator JSONL telemetry (default DIR/events.jsonl; "
                    "\"-\" disables)", "");
  const OrchestratorFlags orch = addOrchestratorFlags(cli);
  if (!cli.parse(argc, argv)) return 1;
  if (outDir->empty()) {
    std::fprintf(stderr, "campaign_runner: --out is required\n");
    return 1;
  }

  ppn::CampaignManifest manifest;
  try {
    if (resume) {
      manifest =
          ppn::loadCampaignManifest(ppn::campaignManifestPath(*outDir));
    } else if (!manifestFile->empty()) {
      manifest = ppn::loadCampaignManifest(*manifestFile);
    } else {
      manifest.name = *name;
      ppn::CertifySpec& spec = manifest.certify;
      spec.protocols = parseList(*protocolsFlag);
      spec.populations.clear();
      for (const auto& s : parseList(*pops)) {
        const auto v = ppn::parseU64(s);
        if (!v.has_value() || *v < 2) {
          std::fprintf(stderr, "campaign_runner: bad population '%s'\n",
                       s.c_str());
          return 1;
        }
        spec.populations.push_back(static_cast<std::uint32_t>(*v));
      }
      spec.regimes.clear();
      for (const auto& s : parseList(*regimesFlag)) {
        spec.regimes.push_back(ppn::parseFaultRegime(s));
      }
      spec.schedulers.clear();
      for (const auto& s : parseList(*schedulersFlag)) {
        spec.schedulers.push_back(ppn::parseSchedulerKind(s));
      }
      for (const auto& key : spec.protocols) {
        ppn::isSelfStabilizing(key);  // validates keys before any fork
      }
      if (*runs == 0) {
        std::fprintf(stderr, "campaign_runner: --runs must be >= 1\n");
        return 1;
      }
      spec.runs = static_cast<std::uint32_t>(*runs);
      spec.seed = *seed;
      spec.faultWindow = *window;
      spec.faultRate = *rate;
      spec.faultPeriod = *period;
      spec.corruptFraction = *corruptFraction;
      spec.limits.maxWallMillis = *maxWall;
      spec.threads = static_cast<std::uint32_t>(*threads);
      manifest.shards = static_cast<std::uint32_t>(*shards);
      if (*table1P != 0 && (*table1P < 2 || *table1P > 4)) {
        std::fprintf(stderr, "campaign_runner: --table1-p must be 0 or 2..4\n");
        return 1;
      }
      manifest.table1P = static_cast<ppn::StateId>(*table1P);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 1;
  }

  ppn::OrchestratorOptions options;
  options.workers = static_cast<std::uint32_t>(*orch.workers);
  options.maxAttempts = static_cast<std::uint32_t>(*orch.maxAttempts);
  options.backoffMillis = *orch.backoffMs;
  options.backoffCapMillis = *orch.backoffCapMs;
  options.stallTimeoutMillis = *orch.stallTimeoutMs;
  options.pollMillis = *orch.pollMs;
  options.resourceSampleMillis = *orch.resourceSampleMs;
  options.resume = resume;

  ppn::MetricsRegistry metrics;
  if (!orch.metricsOut->empty()) options.metrics = &metrics;

  std::unique_ptr<ppn::JsonlEventSink> sink;
  try {
    ppn::ensureCampaignLayout(*outDir);
    const std::string eventsPath =
        eventsOut->empty() ? ppn::campaignEventsPath(*outDir) : *eventsOut;
    if (eventsPath != "-") {
      sink = std::make_unique<ppn::JsonlEventSink>(eventsPath);
      // Per-line flushing keeps the in-flight .tmp stream complete enough
      // for `status`/`trace` to watch the campaign live; the stream is
      // low-rate (one line per unit transition / sample), so this is cheap.
      sink->setFlushEveryLine(true);
      options.sink = sink.get();
    }
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 1;
  }

  ppn::OrchestratorOutcome outcome;
  try {
    outcome = ppn::orchestrateCampaign(manifest, *outDir, options);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 1;
  }
  if (sink) sink->close();
  if (!orch.metricsOut->empty()) {
    try {
      ppn::writeFileAtomic(*orch.metricsOut, metrics.toJson() + "\n");
    } catch (const std::runtime_error& e) {
      std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    }
  }

  std::printf("campaign %s: %llu/%llu units completed, %llu failed, "
              "%u shard restarts\n",
              outcome.interrupted ? "INTERRUPTED" : "finished",
              static_cast<unsigned long long>(outcome.completedUnits),
              static_cast<unsigned long long>(outcome.totalUnits),
              static_cast<unsigned long long>(outcome.failedUnits),
              outcome.shardRestarts);
  if (outcome.interrupted) {
    std::printf("resume with: campaign_runner resume --out %s\n",
                outDir->c_str());
    return 130;
  }
  if (*orch.mergeAfter) return runMerge(*outDir);
  return outcome.failedUnits == 0 ? 0 : 2;
}

int runStatus(int argc, const char* const* argv) {
  ppn::Cli cli("campaign_runner status", "report campaign progress");
  const auto* outDir = cli.addString("out", "campaign directory", "");
  const auto* healthFlag = cli.addFlag(
      "health", "print the full health report and publish "
                "campaign_health.json");
  if (!cli.parse(argc, argv)) return 1;
  if (outDir->empty()) {
    std::fprintf(stderr, "campaign_runner: --out is required\n");
    return 1;
  }
  try {
    const ppn::CampaignManifest manifest =
        ppn::loadCampaignManifest(ppn::campaignManifestPath(*outDir));
    const auto units = ppn::expandManifest(manifest);
    std::printf("campaign '%s': %zu units over %u shards\n",
                manifest.name.c_str(), units.size(), manifest.shards);

    // Rates come from the orchestrator stream (E25) when it exists; the
    // stream of the LAST session, so a resume shows the resumed session's
    // throughput. Absent or unreadable stream: counts only, no rates.
    ppn::CampaignHealth health;
    bool haveHealth = false;
    try {
      health = ppn::loadCampaignHealth(*outDir);
      haveHealth = true;
    } catch (const std::runtime_error&) {
    }
    const auto shardHealth =
        [&health, haveHealth](std::uint32_t shard) -> const ppn::ShardHealth* {
      if (!haveHealth) return nullptr;
      for (const ppn::ShardHealth& s : health.shards) {
        if (s.shard == shard) return &s;
      }
      return nullptr;
    };

    std::uint64_t done = 0;
    for (std::uint32_t shard = 0; shard < manifest.shards; ++shard) {
      std::uint64_t assigned = 0;
      for (const auto& unit : units) {
        if (ppn::unitShard(manifest, unit.id) == shard) ++assigned;
      }
      const ppn::ShardHealth* sh = shardHealth(shard);
      // ProgressReporter's guarded math (safeRate/safeEta): a shard polled
      // before its first unit lands, or a status taken the instant a resume
      // starts, reports 0.0 units/s and no ETA instead of inf/NaN.
      const double rate = sh != nullptr ? sh->unitsPerSec : 0.0;
      const auto finalArtifact =
          ppn::readJsonlArtifact(ppn::shardFinalPath(*outDir, shard));
      if (finalArtifact.ok()) {
        std::printf("  shard %03u: done (%zu units", shard,
                    finalArtifact.lines.size());
        if (sh != nullptr && rate > 0.0) {
          std::printf(", %.1f units/s", rate);
        }
        std::printf(")\n");
        done += finalArtifact.lines.size();
        continue;
      }
      const std::string partial = ppn::shardPartialPath(*outDir, shard);
      std::uint64_t checkpointed = 0;
      if (std::filesystem::exists(partial)) {
        try {
          checkpointed = ppn::readJsonlTolerant(partial).lines.size();
        } catch (const std::runtime_error&) {
          std::printf("  shard %03u: CORRUPT checkpoint (will recompute)\n",
                      shard);
          continue;
        }
      }
      done += checkpointed;
      const std::uint64_t remaining =
          assigned > checkpointed ? assigned - checkpointed : 0;
      const double eta = ppn::safeEta(remaining, rate);
      std::printf("  shard %03u: in progress (%llu/%llu units checkpointed",
                  shard, static_cast<unsigned long long>(checkpointed),
                  static_cast<unsigned long long>(assigned));
      if (rate > 0.0) {
        std::printf(", %.1f units/s, eta %.0fs", rate, eta);
      }
      std::printf(")\n");
    }
    std::printf("total: %llu/%zu units durable\n",
                static_cast<unsigned long long>(done), units.size());
    std::printf("merged: %s\n",
                ppn::readJsonlArtifact(ppn::mergedUnitsPath(*outDir)).ok()
                    ? "yes"
                    : "no");

    if (*healthFlag) {
      if (!haveHealth) {
        std::fprintf(stderr,
                     "campaign_runner: no orchestrator event stream in '%s' "
                     "— cannot compute health\n",
                     outDir->c_str());
        return 1;
      }
      const std::string doc = ppn::campaignHealthJson(health);
      std::printf("%s\n", doc.c_str());
      ppn::writeJsonlArtifact(ppn::campaignHealthPath(*outDir), {doc});
      std::fprintf(stderr, "health report: %s\n",
                   ppn::campaignHealthPath(*outDir).c_str());
      for (const std::uint32_t shard : health.stragglers) {
        std::fprintf(stderr, "WARNING: shard %u is a straggler\n", shard);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 1;
  }
}

int runTrace(int argc, const char* const* argv) {
  ppn::Cli cli("campaign_runner trace",
               "assemble the campaign's event streams into one "
               "Chrome-trace/Perfetto timeline");
  const auto* outDir = cli.addString("out", "campaign directory", "");
  const auto* traceOut = cli.addString(
      "trace-out", "output file (default DIR/campaign_trace.json)", "");
  const auto* maxEvents = cli.addUint(
      "max-events", "trace event cap (excess dropped and counted)",
      1u << 20);
  if (!cli.parse(argc, argv)) return 1;
  if (outDir->empty()) {
    std::fprintf(stderr, "campaign_runner: --out is required\n");
    return 1;
  }
  try {
    const ppn::CampaignTraceInputs inputs =
        ppn::discoverCampaignTraceInputs(*outDir);
    if (inputs.empty()) {
      std::fprintf(stderr,
                   "campaign_runner: no event streams in '%s' (run the "
                   "campaign with telemetry enabled)\n",
                   outDir->c_str());
      return 1;
    }
    ppn::ChromeTraceWriter writer(static_cast<std::size_t>(*maxEvents));
    const ppn::CampaignTraceStats stats =
        ppn::assembleCampaignTrace(inputs, writer);
    const std::string path =
        traceOut->empty() ? ppn::campaignTracePath(*outDir) : *traceOut;
    if (!writer.writeToFile(path)) {
      std::fprintf(stderr, "campaign_runner: cannot write '%s'\n",
                   path.c_str());
      return 1;
    }
    std::printf("trace: %s%s\n", path.c_str(),
                inputs.orchestratorLive ? " (live campaign)" : "");
    std::printf("  %llu orchestrator + %llu shard events -> %llu slices, "
                "%llu instants, %llu counter samples\n",
                static_cast<unsigned long long>(stats.orchestratorLines),
                static_cast<unsigned long long>(stats.shardLines),
                static_cast<unsigned long long>(stats.slices),
                static_cast<unsigned long long>(stats.instants),
                static_cast<unsigned long long>(stats.counters));
    std::printf("  shard pids:");
    for (const std::int64_t pid : stats.shardPids) {
      std::printf(" %lld", static_cast<long long>(pid));
    }
    std::printf("\n");
    if (stats.skippedLines > 0 || stats.forcedCloses > 0 ||
        writer.droppedEvents() > 0) {
      std::printf("  skipped %llu lines, force-closed %llu slices, "
                  "dropped %llu events at the cap\n",
                  static_cast<unsigned long long>(stats.skippedLines),
                  static_cast<unsigned long long>(stats.forcedCloses),
                  static_cast<unsigned long long>(writer.droppedEvents()));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string sub = argc >= 2 ? argv[1] : "";
  if (sub == "run" || sub == "resume") {
    return runOrchestrate(argc - 1, argv + 1, sub == "resume");
  }
  if (sub == "merge") {
    ppn::Cli cli("campaign_runner merge",
                 "verify shard artifacts and rebuild the merged documents");
    const auto* outDir = cli.addString("out", "campaign directory", "");
    if (!cli.parse(argc - 1, argv + 1)) return 1;
    if (outDir->empty()) {
      std::fprintf(stderr, "campaign_runner: --out is required\n");
      return 1;
    }
    return runMerge(*outDir);
  }
  if (sub == "status") return runStatus(argc - 1, argv + 1);
  if (sub == "trace") return runTrace(argc - 1, argv + 1);
  std::fprintf(stderr,
               "usage: campaign_runner <run|resume|merge|status|trace> "
               "[options]\n"
               "       campaign_runner <subcommand> --help\n");
  return 1;
}
