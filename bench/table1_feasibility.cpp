// Regenerates the paper's Table 1 ("Synthesis of the relevant propositions
// and theorems establishing the feasibility of naming and the necessary
// (optimal) state space, under different model parameters").
//
// For every cell the harness reports the paper's claim and then CHECKS it
// mechanically at small P:
//  * feasible cells — the implemented protocol passes the exact fairness
//    checker with the claimed state count (and converges by simulation);
//  * impossibility / lower-bound cells — the checker produces a violation
//    witness for the best candidate with one state fewer, and exhaustive
//    search over ALL protocols confirms "no protocol exists" claims at P=2,3
//    (see lower_bound_search for the full sweep).
//
// Verdicts are tri-state: a checker whose exploration is TRUNCATED
// (ConfigGraph::truncated — the 8M-node budget ran out) proves nothing, so
// the cell is reported UNKNOWN (with a stderr warning and "unknown" in the
// JSON row) instead of silently counting as a failure.
//
//   ./table1_feasibility [--p 3] [--csv] [--json out.json] [--threads K]
//                        [--explore-stats-out stats.jsonl]
//                        [--trace-out trace.json] [--metrics-out metrics.json]
//                        [--memory-budget BYTES] [--memory-stats-out mem.json]
//                        [--progress]
//
// --threads K parallelizes the checker explorations (level-synchronous BFS)
// and the exhaustive searches (candidate dispatch); 0 = hardware concurrency.
// Every verdict is bit-identical for any K. --memory-budget caps every
// exploration at that many ledger bytes (0 = off) — an over-budget check is
// UNKNOWN exactly like a node-cap truncation; --memory-stats-out writes the
// per-exploration memory peaks (ppn-memory-stats JSON).
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>

#include "analysis/table1.h"
#include "obs/events.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/probes.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/table.h"

using namespace ppn;

int main(int argc, char** argv) {
  Cli cli("table1_feasibility", "regenerates the paper's Table 1");
  const auto* pFlag = cli.addUint("p", "bound P for the checks (2..4)", 3);
  const auto* csv = cli.addFlag("csv", "emit CSV instead of an ASCII table");
  const auto* jsonOut =
      cli.addString("json", "write results as JSON to this file", "");
  const auto* statsOut = cli.addString(
      "explore-stats-out", "stream JSONL explore/search events to this file",
      "");
  const auto* traceOut = cli.addString(
      "trace-out", "write a Chrome trace_event timeline to this file", "");
  const auto* metricsOut = cli.addString(
      "metrics-out", "write the final metrics snapshot (JSON) to this file", "");
  const auto* progress =
      cli.addFlag("progress", "print periodic checker progress to stderr");
  const auto* threads = cli.addUint(
      "threads", "worker threads for explorations/searches (0 = all cores)",
      1);
  const auto* memoryBudget = cli.addUint(
      "memory-budget",
      "byte budget per exploration (0 = off); over-budget cells are unknown",
      0);
  const auto* memStatsOut = cli.addString(
      "memory-stats-out", "write per-exploration memory peaks (JSON) here", "");
  if (!cli.parse(argc, argv)) return 1;
  const auto p = static_cast<StateId>(*pFlag);
  if (p < 2 || p > 4) {
    std::fprintf(stderr, "need 2 <= p <= 4 for exhaustive checking\n");
    return 1;
  }

  MetricsRegistry registry;
  std::unique_ptr<JsonlEventSink> sink;
  std::unique_ptr<MetricsExploreObserver> metricsProbe;
  std::unique_ptr<ExploreProgressReporter> reporter;
  std::unique_ptr<ChromeTraceWriter> traceWriter;
  std::unique_ptr<ChromeTraceObserver> traceProbe;
  std::unique_ptr<MemoryStatsCollector> memStats;
  MultiExploreObserver observers;
  try {
    if (!statsOut->empty()) {
      sink = std::make_unique<JsonlEventSink>(*statsOut);
      observers.add(sink.get());
    }
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "table1_feasibility: %s\n", e.what());
    return 1;
  }
  if (!metricsOut->empty()) {
    metricsProbe = std::make_unique<MetricsExploreObserver>(registry);
    observers.add(metricsProbe.get());
  }
  if (!traceOut->empty()) {
    traceWriter = std::make_unique<ChromeTraceWriter>();
    traceProbe = std::make_unique<ChromeTraceObserver>(*traceWriter);
    observers.add(traceProbe.get());
  }
  if (*progress) {
    reporter = std::make_unique<ExploreProgressReporter>(8'000'000);
    observers.add(reporter.get());
  }
  if (!memStatsOut->empty()) {
    memStats = std::make_unique<MemoryStatsCollector>();
    observers.add(memStats.get());
  }
  // The cells live in analysis/table1.h so campaign shards (src/campaign/)
  // can execute them one unit at a time; running them here in index order
  // with per-cell id ranges produces the same document either way.
  std::vector<Table1CellResult> results;
  results.reserve(table1CellCount());
  for (std::uint32_t i = 0; i < table1CellCount(); ++i) {
    Table1Options options;
    options.threads = static_cast<std::uint32_t>(*threads);
    options.maxBytes = *memoryBudget;
    options.observer = observers.empty() ? nullptr : &observers;
    options.exploreIdBase = i * kTable1IdStride;
    options.searchIdBase = 256 + i * kTable1IdStride;
    results.push_back(runTable1Cell(i, p, options));
  }

  Table table({"Table 1 cell", "paper claim", "checked by", "states", "result"});
  bool allPass = true;
  for (const auto& r : results) {
    if (r.verdict == Table1Check::kUnknown) {
      std::fprintf(stderr,
                   "table1_feasibility: WARNING: exploration budget exhausted "
                   "in cell '%s'; verdict unknown (raise the node cap)\n",
                   r.cell.c_str());
    }
    table.row().cell(r.cell).cell(r.claim).cell(r.mechanism).cell(r.states)
        .cell(r.verdict == Table1Check::kPass
                  ? "PASS"
                  : (r.verdict == Table1Check::kFail ? "FAIL" : "UNKNOWN"));
    allPass = allPass && r.verdict == Table1Check::kPass;
  }
  std::printf("Table 1 reproduction at P = %u (exact model checking)\n\n", p);
  std::fputs((*csv ? table.renderCsv() : table.render()).c_str(), stdout);
  std::printf("\noverall: %s\n", allPass ? "PASS" : "FAIL");

  if (!jsonOut->empty()) {
    std::ofstream out(*jsonOut, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "table1_feasibility: cannot write '%s'\n",
                   jsonOut->c_str());
      return 1;
    }
    out << table1Json(p, results) << '\n';
  }

  if (sink) sink->flush();
  if (traceWriter && !traceWriter->writeToFile(*traceOut)) {
    std::fprintf(stderr, "table1_feasibility: cannot write '%s'\n",
                 traceOut->c_str());
    return 1;
  }
  if (!metricsOut->empty()) {
    std::ofstream out(*metricsOut, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "table1_feasibility: cannot write '%s'\n",
                   metricsOut->c_str());
      return 1;
    }
    out << registry.toJson() << '\n';
  }
  if (memStats && !memStats->writeJson(*memStatsOut)) {
    std::fprintf(stderr, "table1_feasibility: cannot write '%s'\n",
                 memStatsOut->c_str());
    return 1;
  }
  return allPass ? 0 : 2;
}
