// Regenerates the paper's Table 1 ("Synthesis of the relevant propositions
// and theorems establishing the feasibility of naming and the necessary
// (optimal) state space, under different model parameters").
//
// For every cell the harness reports the paper's claim and then CHECKS it
// mechanically at small P:
//  * feasible cells — the implemented protocol passes the exact fairness
//    checker with the claimed state count (and converges by simulation);
//  * impossibility / lower-bound cells — the checker produces a violation
//    witness for the best candidate with one state fewer, and exhaustive
//    search over ALL protocols confirms "no protocol exists" claims at P=2,3
//    (see lower_bound_search for the full sweep).
//
// Verdicts are tri-state: a checker whose exploration is TRUNCATED
// (ConfigGraph::truncated — the 8M-node budget ran out) proves nothing, so
// the cell is reported UNKNOWN (with a stderr warning and "unknown" in the
// JSON row) instead of silently counting as a failure.
//
//   ./table1_feasibility [--p 3] [--csv] [--json out.json] [--threads K]
//                        [--explore-stats-out stats.jsonl]
//                        [--trace-out trace.json] [--metrics-out metrics.json]
//                        [--progress]
//
// --threads K parallelizes the checker explorations (level-synchronous BFS)
// and the exhaustive searches (candidate dispatch); 0 = hardware concurrency.
// Every verdict is bit-identical for any K.
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>

#include "analysis/global_checker.h"
#include "analysis/initial_sets.h"
#include "analysis/protocol_search.h"
#include "analysis/weak_checker.h"
#include "naming/asymmetric_naming.h"
#include "naming/counting_protocol.h"
#include "naming/global_leader_naming.h"
#include "naming/leader_uniform_naming.h"
#include "naming/selfstab_weak_naming.h"
#include "naming/symmetric_global_naming.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/probes.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using namespace ppn;

/// Tri-state check outcome: a truncated exploration decides NOTHING — the
/// missing part of the configuration graph may hold either a violation or
/// the last piece of the proof.
enum class Check { kPass, kFail, kUnknown };

/// Conjunction over sub-checks: any failure is conclusive (one real
/// counterexample sinks the claim), otherwise any unknown taints the cell.
Check operator&(Check a, Check b) {
  if (a == Check::kFail || b == Check::kFail) return Check::kFail;
  if (a == Check::kUnknown || b == Check::kUnknown) return Check::kUnknown;
  return Check::kPass;
}

/// Negation for impossibility cells: the candidate FAILING to solve is the
/// expected (passing) outcome. Unknown stays unknown.
Check expectFail(Check solves) {
  if (solves == Check::kUnknown) return Check::kUnknown;
  return solves == Check::kFail ? Check::kPass : Check::kFail;
}

const char* verdictName(Check c) {
  switch (c) {
    case Check::kPass:
      return "pass";
    case Check::kFail:
      return "fail";
    case Check::kUnknown:
      return "unknown";
  }
  return "?";
}

struct CellResult {
  std::string cell;
  std::string claim;
  std::string mechanism;
  std::string states;
  Check verdict = Check::kUnknown;
};

struct Checks {
  ExploreObserver* observer = nullptr;
  std::uint32_t threads = 1;
  std::uint64_t nextExplore = 0;   // direct checker invocations
  std::uint64_t nextSearch = 256;  // exhaustive searches (disjoint id range:
                                   // inner explorations get searchId << 32)

  ExploreOptions exploreOptions() {
    ExploreOptions options;
    options.maxNodes = 8'000'000;
    options.threads = threads;
    options.observer = observer;
    options.exploreId = ++nextExplore;
    return options;
  }

  Check weakSolves(const Protocol& proto,
                   const std::vector<Configuration>& initials,
                   const Problem& problem) {
    const WeakVerdict v =
        checkWeakFairness(proto, problem, initials, exploreOptions());
    if (!v.explored) return Check::kUnknown;
    return v.solves ? Check::kPass : Check::kFail;
  }

  Check weakSolves(const Protocol& proto,
                   const std::vector<Configuration>& initials) {
    return weakSolves(proto, initials, namingProblem(proto));
  }

  Check globalSolves(const Protocol& proto,
                     const std::vector<Configuration>& initials) {
    const GlobalVerdict v = checkGlobalFairness(proto, namingProblem(proto),
                                                initials, exploreOptions());
    if (!v.explored) return Check::kUnknown;
    return v.solves ? Check::kPass : Check::kFail;
  }

  /// "No solver exists" via exhaustive search: conclusive only when every
  /// candidate was fully checked (outcome.unknown == 0).
  Check searchEmpty(StateId q, std::uint32_t n, Fairness fairness) {
    SearchOptions options;
    options.threads = threads;
    options.observer = observer;
    options.searchId = ++nextSearch;
    const SearchOutcome out =
        searchUniformNaming(q, n, fairness, /*symmetricSpace=*/true, options);
    if (out.solvers > 0) return Check::kFail;
    return out.unknown > 0 ? Check::kUnknown : Check::kPass;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli("table1_feasibility", "regenerates the paper's Table 1");
  const auto* pFlag = cli.addUint("p", "bound P for the checks (2..4)", 3);
  const auto* csv = cli.addFlag("csv", "emit CSV instead of an ASCII table");
  const auto* jsonOut =
      cli.addString("json", "write results as JSON to this file", "");
  const auto* statsOut = cli.addString(
      "explore-stats-out", "stream JSONL explore/search events to this file",
      "");
  const auto* traceOut = cli.addString(
      "trace-out", "write a Chrome trace_event timeline to this file", "");
  const auto* metricsOut = cli.addString(
      "metrics-out", "write the final metrics snapshot (JSON) to this file", "");
  const auto* progress =
      cli.addFlag("progress", "print periodic checker progress to stderr");
  const auto* threads = cli.addUint(
      "threads", "worker threads for explorations/searches (0 = all cores)",
      1);
  if (!cli.parse(argc, argv)) return 1;
  const auto p = static_cast<StateId>(*pFlag);
  if (p < 2 || p > 4) {
    std::fprintf(stderr, "need 2 <= p <= 4 for exhaustive checking\n");
    return 1;
  }

  MetricsRegistry registry;
  std::unique_ptr<JsonlEventSink> sink;
  std::unique_ptr<MetricsExploreObserver> metricsProbe;
  std::unique_ptr<ExploreProgressReporter> reporter;
  std::unique_ptr<ChromeTraceWriter> traceWriter;
  std::unique_ptr<ChromeTraceObserver> traceProbe;
  MultiExploreObserver observers;
  try {
    if (!statsOut->empty()) {
      sink = std::make_unique<JsonlEventSink>(*statsOut);
      observers.add(sink.get());
    }
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "table1_feasibility: %s\n", e.what());
    return 1;
  }
  if (!metricsOut->empty()) {
    metricsProbe = std::make_unique<MetricsExploreObserver>(registry);
    observers.add(metricsProbe.get());
  }
  if (!traceOut->empty()) {
    traceWriter = std::make_unique<ChromeTraceWriter>();
    traceProbe = std::make_unique<ChromeTraceObserver>(*traceWriter);
    observers.add(traceProbe.get());
  }
  if (*progress) {
    reporter = std::make_unique<ExploreProgressReporter>(8'000'000);
    observers.add(reporter.get());
  }
  Checks checks;
  checks.observer = observers.empty() ? nullptr : &observers;
  checks.threads = static_cast<std::uint32_t>(*threads);

  std::vector<CellResult> results;

  // ---- Column: asymmetric rules (weak/global fairness), all leader rows.
  // Prop 12: P states, no leader, self-stabilizing.
  {
    const AsymmetricNaming proto(p);
    const Check okWeak =
        checks.weakSolves(proto, allConcreteConfigurations(proto, p));
    const Check okGlobal =
        checks.globalSolves(proto, allCanonicalConfigurations(proto, p));
    results.push_back({"any leader row / asymmetric / weak+global",
                       "Prop 12: possible with P states (self-stabilizing)",
                       "weak+global checkers, arbitrary init, N=P",
                       "P", okWeak & okGlobal});
  }

  // ---- Cell: no leader / symmetric / weak — impossible (Prop 1).
  {
    const SymmetricGlobalNaming candidate(p);
    const Check solves = checks.weakSolves(
        candidate, allUniformInitials(candidate, p), namingProblem(candidate));
    const Check empty = checks.searchEmpty(2, 2, Fairness::kWeak);
    results.push_back(
        {"no leader / symmetric / weak",
         "Prop 1: impossible",
         "adversary found vs P+1-state candidate; exhaustive search @ Q=2",
         "-", expectFail(solves) & empty});
  }

  // ---- Cell: no leader / symmetric / global — P+1 states (Prop 13 + Prop 2).
  {
    const SymmetricGlobalNaming proto(p);
    Check ok = proto.numMobileStates() == p + 1 ? Check::kPass : Check::kFail;
    for (std::uint32_t n = 3; n <= p && ok == Check::kPass; ++n) {
      ok = ok & checks.globalSolves(proto, allCanonicalConfigurations(proto, n));
    }
    const Check lower = checks.searchEmpty(2, 2, Fairness::kGlobal);
    results.push_back({"no leader / symmetric / global",
                       "Prop 13: P+1 states; Prop 2: P states impossible",
                       "global checker (N=3..P); exhaustive P-state search @ Q=2",
                       "P+1", ok & lower});
  }

  // ---- Cells: non-initialized leader / symmetric (weak and global) — P+1
  // states (Prop 16; lower bound Prop 4).
  {
    const SelfStabWeakNaming proto(p);
    Check ok = proto.numMobileStates() == p + 1 ? Check::kPass : Check::kFail;
    for (std::uint32_t n = 1; n <= p && ok == Check::kPass; ++n) {
      ok = ok & checks.weakSolves(proto, allConcreteConfigurations(proto, n));
    }
    results.push_back({"non-init leader / symmetric / weak+global",
                       "Prop 16: P+1 states (self-stabilizing, leader too)",
                       "weak checker, arbitrary mobile+leader init, N=1..P",
                       "P+1", ok});
  }

  // ---- Cell: initialized leader / symmetric / weak / initialized agents —
  // P states (Prop 14).
  {
    const LeaderUniformNaming proto(p);
    Check ok = proto.numMobileStates() == p ? Check::kPass : Check::kFail;
    for (std::uint32_t n = 1; n <= p && ok == Check::kPass; ++n) {
      ok = ok & checks.weakSolves(proto, declaredUniformInitials(proto, n));
    }
    results.push_back({"init leader / symmetric / weak / init agents",
                       "Prop 14: P states",
                       "weak checker from declared uniform init, N=1..P",
                       "P", ok});
  }

  // ---- Cell: initialized leader / symmetric / weak / NON-init agents —
  // P+1 states (Prop 16); P states impossible (Theorem 11).
  {
    const GlobalLeaderNaming candidate(p);  // the natural P-state candidate
    const Check solves = checks.weakSolves(
        candidate, allConcreteConfigurations(candidate, p));
    results.push_back({"init leader / symmetric / weak / non-init agents",
                       "Thm 11: P states impossible (P+1 needed, via Prop 16)",
                       "weak checker defeats the P-state Protocol 3 at N=P",
                       "P+1", expectFail(solves)});
  }

  // ---- Cell: initialized leader / symmetric / global — P states (Prop 17).
  {
    const GlobalLeaderNaming proto(p);
    Check ok = proto.numMobileStates() == p ? Check::kPass : Check::kFail;
    for (std::uint32_t n = 1; n <= p && ok == Check::kPass; ++n) {
      ok = ok & checks.globalSolves(proto, allCanonicalConfigurations(proto, n));
    }
    results.push_back({"init leader / symmetric / global",
                       "Prop 17: P states",
                       "global checker, arbitrary mobile init, N=1..P",
                       "P", ok});
  }

  // ---- Substrate: Theorem 15 (Protocol 1 counting + by-product naming).
  {
    const CountingProtocol proto(p);
    Check ok = Check::kPass;
    for (std::uint32_t n = 1; n <= p && ok == Check::kPass; ++n) {
      ok = ok & checks.weakSolves(proto, allConcreteConfigurations(proto, n),
                                  countingProblem(proto, n));
      if (ok == Check::kPass && n < p) {
        ok = ok & checks.weakSolves(proto, allConcreteConfigurations(proto, n));
      }
    }
    results.push_back({"substrate: counting (Protocol 1)",
                       "Thm 15: counts N<=P, names N<P, P states",
                       "weak checker: counting N=1..P, naming N=1..P-1",
                       "P", ok});
  }

  Table table({"Table 1 cell", "paper claim", "checked by", "states", "result"});
  bool allPass = true;
  for (const auto& r : results) {
    if (r.verdict == Check::kUnknown) {
      std::fprintf(stderr,
                   "table1_feasibility: WARNING: exploration budget exhausted "
                   "in cell '%s'; verdict unknown (raise the node cap)\n",
                   r.cell.c_str());
    }
    table.row().cell(r.cell).cell(r.claim).cell(r.mechanism).cell(r.states)
        .cell(r.verdict == Check::kPass
                  ? "PASS"
                  : (r.verdict == Check::kFail ? "FAIL" : "UNKNOWN"));
    allPass = allPass && r.verdict == Check::kPass;
  }
  std::printf("Table 1 reproduction at P = %u (exact model checking)\n\n", p);
  std::fputs((*csv ? table.renderCsv() : table.render()).c_str(), stdout);
  std::printf("\noverall: %s\n", allPass ? "PASS" : "FAIL");

  if (!jsonOut->empty()) {
    JsonWriter w;
    w.beginObject();
    w.key("experiment").value("table1");
    w.key("p").value(static_cast<std::uint64_t>(p));
    w.key("cells").beginArray();
    for (const auto& r : results) {
      w.beginObject();
      w.key("cell").value(r.cell);
      w.key("claim").value(r.claim);
      w.key("checked_by").value(r.mechanism);
      w.key("states").value(r.states);
      w.key("verdict").value(verdictName(r.verdict));
      w.endObject();
    }
    w.endArray();
    w.key("overall").value(allPass ? "pass" : "fail");
    w.endObject();
    std::ofstream out(*jsonOut, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "table1_feasibility: cannot write '%s'\n",
                   jsonOut->c_str());
      return 1;
    }
    out << w.str() << '\n';
  }

  if (sink) sink->flush();
  if (traceWriter && !traceWriter->writeToFile(*traceOut)) {
    std::fprintf(stderr, "table1_feasibility: cannot write '%s'\n",
                 traceOut->c_str());
    return 1;
  }
  if (!metricsOut->empty()) {
    std::ofstream out(*metricsOut, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "table1_feasibility: cannot write '%s'\n",
                   metricsOut->c_str());
      return 1;
    }
    out << registry.toJson() << '\n';
  }
  return allPass ? 0 : 2;
}
