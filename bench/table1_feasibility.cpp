// Regenerates the paper's Table 1 ("Synthesis of the relevant propositions
// and theorems establishing the feasibility of naming and the necessary
// (optimal) state space, under different model parameters").
//
// For every cell the harness reports the paper's claim and then CHECKS it
// mechanically at small P:
//  * feasible cells — the implemented protocol passes the exact fairness
//    checker with the claimed state count (and converges by simulation);
//  * impossibility / lower-bound cells — the checker produces a violation
//    witness for the best candidate with one state fewer, and exhaustive
//    search over ALL protocols confirms "no protocol exists" claims at P=2,3
//    (see lower_bound_search for the full sweep).
//
//   ./table1_feasibility [--p 3] [--csv]
#include <cstdio>
#include <string>

#include "analysis/global_checker.h"
#include "analysis/initial_sets.h"
#include "analysis/protocol_search.h"
#include "analysis/weak_checker.h"
#include "naming/asymmetric_naming.h"
#include "naming/counting_protocol.h"
#include "naming/global_leader_naming.h"
#include "naming/leader_uniform_naming.h"
#include "naming/selfstab_weak_naming.h"
#include "naming/symmetric_global_naming.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace ppn;

struct CellResult {
  std::string cell;
  std::string claim;
  std::string mechanism;
  std::string states;
  bool pass = false;
};

std::string passFail(bool b) { return b ? "PASS" : "FAIL"; }

bool weakSolves(const Protocol& proto, std::uint32_t n,
                const std::vector<Configuration>& initials) {
  (void)n;
  const WeakVerdict v =
      checkWeakFairness(proto, namingProblem(proto), initials, 8'000'000);
  return v.explored && v.solves;
}

bool globalSolves(const Protocol& proto,
                  const std::vector<Configuration>& initials) {
  const GlobalVerdict v =
      checkGlobalFairness(proto, namingProblem(proto), initials, 8'000'000);
  return v.explored && v.solves;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("table1_feasibility", "regenerates the paper's Table 1");
  const auto* pFlag = cli.addUint("p", "bound P for the checks (2..4)", 3);
  const auto* csv = cli.addFlag("csv", "emit CSV instead of an ASCII table");
  if (!cli.parse(argc, argv)) return 1;
  const auto p = static_cast<StateId>(*pFlag);
  if (p < 2 || p > 4) {
    std::fprintf(stderr, "need 2 <= p <= 4 for exhaustive checking\n");
    return 1;
  }

  std::vector<CellResult> results;

  // ---- Column: asymmetric rules (weak/global fairness), all leader rows.
  // Prop 12: P states, no leader, self-stabilizing.
  {
    const AsymmetricNaming proto(p);
    const bool okWeak =
        weakSolves(proto, p, allConcreteConfigurations(proto, p));
    const bool okGlobal = globalSolves(proto, allCanonicalConfigurations(proto, p));
    results.push_back({"any leader row / asymmetric / weak+global",
                       "Prop 12: possible with P states (self-stabilizing)",
                       "weak+global checkers, arbitrary init, N=P",
                       "P", okWeak && okGlobal});
  }

  // ---- Cell: no leader / symmetric / weak — impossible (Prop 1).
  {
    const SymmetricGlobalNaming candidate(p);
    const WeakVerdict v =
        checkWeakFairness(candidate, namingProblem(candidate),
                          allUniformInitials(candidate, p), 8'000'000);
    const SearchOutcome search =
        searchUniformNaming(2, 2, Fairness::kWeak, /*symmetricSpace=*/true);
    results.push_back(
        {"no leader / symmetric / weak",
         "Prop 1: impossible",
         "adversary found vs P+1-state candidate; exhaustive search @ Q=2",
         "-", v.explored && !v.solves && search.solvers == 0});
  }

  // ---- Cell: no leader / symmetric / global — P+1 states (Prop 13 + Prop 2).
  {
    const SymmetricGlobalNaming proto(p);
    bool ok = proto.numMobileStates() == p + 1;
    for (std::uint32_t n = 3; n <= p && ok; ++n) {
      ok = globalSolves(proto, allCanonicalConfigurations(proto, n));
    }
    const SearchOutcome lower =
        searchUniformNaming(2, 2, Fairness::kGlobal, /*symmetricSpace=*/true);
    results.push_back({"no leader / symmetric / global",
                       "Prop 13: P+1 states; Prop 2: P states impossible",
                       "global checker (N=3..P); exhaustive P-state search @ Q=2",
                       "P+1", ok && lower.solvers == 0});
  }

  // ---- Cells: non-initialized leader / symmetric (weak and global) — P+1
  // states (Prop 16; lower bound Prop 4).
  {
    const SelfStabWeakNaming proto(p);
    bool ok = proto.numMobileStates() == p + 1;
    for (std::uint32_t n = 1; n <= p && ok; ++n) {
      ok = weakSolves(proto, n, allConcreteConfigurations(proto, n));
    }
    results.push_back({"non-init leader / symmetric / weak+global",
                       "Prop 16: P+1 states (self-stabilizing, leader too)",
                       "weak checker, arbitrary mobile+leader init, N=1..P",
                       "P+1", ok});
  }

  // ---- Cell: initialized leader / symmetric / weak / initialized agents —
  // P states (Prop 14).
  {
    const LeaderUniformNaming proto(p);
    bool ok = proto.numMobileStates() == p;
    for (std::uint32_t n = 1; n <= p && ok; ++n) {
      ok = weakSolves(proto, n, declaredUniformInitials(proto, n));
    }
    results.push_back({"init leader / symmetric / weak / init agents",
                       "Prop 14: P states",
                       "weak checker from declared uniform init, N=1..P",
                       "P", ok});
  }

  // ---- Cell: initialized leader / symmetric / weak / NON-init agents —
  // P+1 states (Prop 16); P states impossible (Theorem 11).
  {
    const GlobalLeaderNaming candidate(p);  // the natural P-state candidate
    const WeakVerdict v =
        checkWeakFairness(candidate, namingProblem(candidate),
                          allConcreteConfigurations(candidate, p), 8'000'000);
    results.push_back({"init leader / symmetric / weak / non-init agents",
                       "Thm 11: P states impossible (P+1 needed, via Prop 16)",
                       "weak checker defeats the P-state Protocol 3 at N=P",
                       "P+1", v.explored && !v.solves});
  }

  // ---- Cell: initialized leader / symmetric / global — P states (Prop 17).
  {
    const GlobalLeaderNaming proto(p);
    bool ok = proto.numMobileStates() == p;
    for (std::uint32_t n = 1; n <= p && ok; ++n) {
      ok = globalSolves(proto, allCanonicalConfigurations(proto, n));
    }
    results.push_back({"init leader / symmetric / global",
                       "Prop 17: P states",
                       "global checker, arbitrary mobile init, N=1..P",
                       "P", ok});
  }

  // ---- Substrate: Theorem 15 (Protocol 1 counting + by-product naming).
  {
    const CountingProtocol proto(p);
    bool ok = true;
    for (std::uint32_t n = 1; n <= p && ok; ++n) {
      const WeakVerdict count = checkWeakFairness(
          proto, countingProblem(proto, n), allConcreteConfigurations(proto, n),
          8'000'000);
      ok = count.explored && count.solves;
      if (ok && n < p) {
        ok = weakSolves(proto, n, allConcreteConfigurations(proto, n));
      }
    }
    results.push_back({"substrate: counting (Protocol 1)",
                       "Thm 15: counts N<=P, names N<P, P states",
                       "weak checker: counting N=1..P, naming N=1..P-1",
                       "P", ok});
  }

  Table table({"Table 1 cell", "paper claim", "checked by", "states", "result"});
  bool allPass = true;
  for (const auto& r : results) {
    table.row().cell(r.cell).cell(r.claim).cell(r.mechanism).cell(r.states)
        .cell(passFail(r.pass));
    allPass = allPass && r.pass;
  }
  std::printf("Table 1 reproduction at P = %u (exact model checking)\n\n", p);
  std::fputs((*csv ? table.renderCsv() : table.render()).c_str(), stdout);
  std::printf("\noverall: %s\n", passFail(allPass).c_str());
  return allPass ? 0 : 2;
}
