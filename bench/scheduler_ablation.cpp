// Extended evaluation E11: scheduler ablation.
//
// The weak-fairness-capable protocols must converge under EVERY scheduler in
// the suite (uniform random, skewed random, round-robin, tournament); the
// globally-fair-only protocols are run under the two random schedulers. The
// interesting shape: deterministic weakly fair schedulers are often *faster*
// than random ones (no coupon-collector tail), while skewing the random
// scheduler slows convergence roughly by the weight imbalance.
//
//   ./scheduler_ablation [--n 8] [--runs 12] [--csv]
#include <cstdio>

#include "core/engine.h"
#include "naming/registry.h"
#include "sim/runner.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  ppn::Cli cli("scheduler_ablation", "convergence per scheduler family");
  const auto* nFlag = cli.addUint("n", "population size (P = N)", 8);
  const auto* runs = cli.addUint("runs", "runs per point", 12);
  const auto* seed = cli.addUint("seed", "rng seed", 1717);
  const auto* csv = cli.addFlag("csv", "emit CSV");
  if (!cli.parse(argc, argv)) return 1;
  const auto n = static_cast<std::uint32_t>(*nFlag);

  const std::vector<ppn::SchedulerKind> all{
      ppn::SchedulerKind::kRandom, ppn::SchedulerKind::kSkewed,
      ppn::SchedulerKind::kRoundRobin, ppn::SchedulerKind::kTournament};
  const std::vector<ppn::SchedulerKind> randomOnly{
      ppn::SchedulerKind::kRandom, ppn::SchedulerKind::kSkewed};

  ppn::Table table({"protocol", "scheduler", "weak-fair safe", "converged",
                    "mean interactions", "p90"});
  bool ok = true;
  for (const auto& key : ppn::protocolKeys()) {
    if (key == "counting") continue;
    const bool weakSafe = (key == "asymmetric" || key == "leader-uniform" ||
                           key == "selfstab-weak");
    const auto& kinds = weakSafe ? all : randomOnly;
    const auto proto = ppn::makeProtocol(key, static_cast<ppn::StateId>(n));
    // Protocol 3's N = P walk is intractably slow (see convergence_sweep);
    // ablate it on the fast N = P - 1 regime instead.
    const std::uint32_t population = (key == "global-leader") ? n - 1 : n;
    for (const auto kind : kinds) {
      ppn::BatchSpec spec;
      spec.numMobile = population;
      spec.init = (key == "leader-uniform") ? ppn::InitKind::kUniform
                                            : ppn::InitKind::kArbitrary;
      spec.sched = kind;
      spec.runs = static_cast<std::uint32_t>(*runs);
      spec.seed = *seed + std::hash<std::string>{}(key) * 31 +
                  static_cast<std::uint64_t>(kind);
      spec.limits = ppn::RunLimits{200'000'000, 128};
      const ppn::BatchResult r = ppn::runBatch(*proto, spec);
      ok = ok && (r.named == r.runs);
      table.row()
          .cell(key)
          .cell(ppn::schedulerKindName(kind))
          .cell(weakSafe ? "yes" : "no (global only)")
          .cell(std::to_string(r.named) + "/" + std::to_string(r.runs))
          .cell(r.convergenceInteractions.mean, 0)
          .cell(r.convergenceInteractions.p90, 0);
    }
  }

  std::printf("E11: scheduler ablation (N = P = %u)\n\n", n);
  std::fputs((*csv ? table.renderCsv() : table.render()).c_str(), stdout);
  std::printf("\nall runs named under every admissible scheduler: %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}
