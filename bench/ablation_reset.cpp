// Extended evaluation E15: ablating Protocol 2's reset rule (its lines
// 11-12). The reset is the entire difference between "naming with a
// non-initialized BST" and "naming that wedges forever after one corrupted
// boot" — quantified here by exact checking and by fault-recovery rates.
//
//   ./ablation_reset [--csv]
#include <cstdio>

#include "analysis/initial_sets.h"
#include "analysis/weak_checker.h"
#include "core/engine.h"
#include "naming/bst_state.h"
#include "naming/selfstab_weak_naming.h"
#include "sched/random_scheduler.h"
#include "sim/fault_injector.h"
#include "sim/runner.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace ppn;

/// Fault-recovery rate over `runs` trials.
std::pair<std::uint32_t, std::uint32_t> recoveryRate(
    const SelfStabWeakNaming& proto, std::uint32_t n, std::uint32_t runs,
    std::uint64_t seed) {
  Rng rng(seed);
  std::uint32_t attempts = 0, recovered = 0;
  for (std::uint32_t r = 0; r < runs; ++r) {
    Rng runRng = rng.split();
    Engine engine(proto, arbitraryConfiguration(proto, n, runRng));
    // Make the initial state benign for the no-reset variant: clean BST.
    engine.corruptLeader(packBst(BstState{}));
    RandomScheduler sched(engine.numParticipants(), runRng.next());
    const RecoveryOutcome out = measureRecovery(
        engine, sched, FaultPlan{.corruptAgents = n, .corruptLeader = true},
        RunLimits{20'000'000, 64}, runRng);
    if (!out.initiallyConverged) continue;
    ++attempts;
    recovered += out.recoveredNamed ? 1 : 0;
  }
  return {recovered, attempts};
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("ablation_reset", "Protocol 2 with/without its reset rule");
  const auto* runs = cli.addUint("runs", "fault trials per variant", 32);
  const auto* csv = cli.addFlag("csv", "emit CSV");
  if (!cli.parse(argc, argv)) return 1;

  const StateId p = 3;
  const SelfStabWeakNaming withReset(p, true);
  const SelfStabWeakNaming noReset(p, false);

  Table table({"variant", "self-stab verdict (exact)", "clean-BST verdict",
               "fault recovery"});
  bool ok = true;

  for (const auto* proto : {&withReset, &noReset}) {
    const Problem problem = namingProblem(*proto);
    const WeakVerdict selfStab =
        checkWeakFairness(*proto, problem,
                          allConcreteConfigurations(*proto, p), 8'000'000);
    std::vector<Configuration> clean;
    for (auto& c : allConcreteConfigurations(*proto, p)) {
      const BstState bst = unpackBst(*c.leader);
      if (bst.n == 0 && bst.k == 0) clean.push_back(std::move(c));
    }
    const WeakVerdict initialized =
        checkWeakFairness(*proto, problem, clean, 8'000'000);
    const auto [recovered, attempts] =
        recoveryRate(*proto, p, static_cast<std::uint32_t>(*runs), 11);

    table.row()
        .cell(proto->withReset() ? "Protocol 2 (with reset)"
                                 : "Protocol 2 minus lines 11-12")
        .cell(selfStab.solves ? "solves" : "FAILS")
        .cell(initialized.solves ? "solves" : "FAILS")
        .cell(std::to_string(recovered) + "/" + std::to_string(attempts));

    if (proto->withReset()) {
      ok = ok && selfStab.solves && initialized.solves && recovered == attempts;
    } else {
      ok = ok && !selfStab.solves && initialized.solves && recovered < attempts;
    }
  }

  std::printf("E15: reset-rule ablation (P = N = %u)\n\n", p);
  std::fputs((*csv ? table.renderCsv() : table.render()).c_str(), stdout);
  std::printf("\nablation behaves as predicted: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}
