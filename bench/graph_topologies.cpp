// Extended evaluation E14: where the paper's complete-interaction assumption
// bites — naming across restricted interaction topologies, checked exactly.
//
// Expected shape:
//  * complete graph — everything behaves as in Table 1;
//  * star centered at the BASE STATION — Prop 14's protocol still works (it
//    only ever uses leader-agent interactions), and so does Protocol 2
//    below capacity? No: Protocol 2 needs mobile-mobile meetings to detect
//    homonyms, so it fails, as does the leaderless asymmetric protocol
//    (leaf homonyms can never meet);
//  * ring / line — the leaderless protocols fail once two homonyms are
//    non-adjacent.
//
//   ./graph_topologies [--csv] [--threads K] [--memory-budget BYTES]
//                      [--memory-stats-out mem.json]
//
// --threads K parallelizes the checker explorations (0 = hardware
// concurrency); verdicts are bit-identical for any K. --memory-budget caps
// every exploration at that many ledger bytes (0 = off) — an over-budget
// check reads "unknown" exactly like a node-cap truncation;
// --memory-stats-out writes per-exploration memory peaks (ppn-memory-stats
// JSON).
#include <cstdio>
#include <memory>

#include "analysis/global_checker.h"
#include "analysis/initial_sets.h"
#include "analysis/weak_checker.h"
#include "core/interaction_graph.h"
#include "naming/asymmetric_naming.h"
#include "naming/leader_uniform_naming.h"
#include "naming/selfstab_weak_naming.h"
#include "obs/memory.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace ppn;

struct TopologyCase {
  std::string name;
  InteractionGraph graph;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli("graph_topologies", "naming on restricted interaction graphs");
  const auto* csv = cli.addFlag("csv", "emit CSV");
  const auto* threads = cli.addUint(
      "threads", "exploration worker threads (0 = all cores)", 1);
  const auto* memoryBudget = cli.addUint(
      "memory-budget",
      "byte budget per exploration (0 = off); over-budget cells are unknown",
      0);
  const auto* memStatsOut = cli.addString(
      "memory-stats-out", "write per-exploration memory peaks (JSON) here", "");
  if (!cli.parse(argc, argv)) return 1;
  std::unique_ptr<MemoryStatsCollector> memStats;
  if (!memStatsOut->empty()) memStats = std::make_unique<MemoryStatsCollector>();
  std::uint64_t nextExploreId = 0;
  auto topoOptions = [&](const InteractionGraph& graph, std::size_t maxNodes) {
    ExploreOptions options;
    options.maxNodes = maxNodes;
    options.maxBytes = *memoryBudget;
    options.threads = static_cast<std::uint32_t>(*threads);
    options.topology = &graph;
    options.observer = memStats.get();
    options.exploreId = ++nextExploreId;
    return options;
  };

  Table table({"protocol", "topology", "fairness", "verdict", "explored",
               "expected"});
  bool ok = true;
  // A truncated exploration (explored == false) proves neither verdict: the
  // cell reads "unknown", a warning lands on stderr, and the bench fails —
  // matching expectations requires a complete configuration graph.
  auto record = [&](const std::string& proto, const std::string& topo,
                    const std::string& fairness, bool solves, bool explored,
                    std::size_t size, bool expected) {
    if (!explored) {
      std::fprintf(stderr,
                   "graph_topologies: WARNING: exploration budget exhausted "
                   "for %s on %s (%s fairness); verdict unknown\n",
                   proto.c_str(), topo.c_str(), fairness.c_str());
    }
    table.row()
        .cell(proto)
        .cell(topo)
        .cell(fairness)
        .cell(!explored ? "unknown" : (solves ? "solves" : "fails"))
        .cell(size)
        .cell(expected ? "solves" : "fails");
    ok = ok && explored && (solves == expected);
  };

  // --- Leaderless asymmetric naming (Prop 12), N = P = 4, self-stabilizing.
  {
    const std::uint32_t n = 4;
    const AsymmetricNaming proto(n);
    const Problem problem = namingProblem(proto);
    const auto initials = allConcreteConfigurations(proto, n);
    const std::vector<TopologyCase> topologies{
        {"complete", InteractionGraph::complete(n)},
        {"ring", InteractionGraph::ring(n)},
        {"line", InteractionGraph::line(n)},
        {"star@agent0", InteractionGraph::star(n, 0)},
    };
    for (const auto& t : topologies) {
      const GlobalVerdict g = checkGlobalFairnessConcrete(
          proto, problem, initials, topoOptions(t.graph, 4'000'000));
      record("asymmetric (Prop 12)", t.name, "global", g.solves, g.explored,
             g.numConfigs, t.name == "complete");
      const WeakVerdict w = checkWeakFairness(
          proto, problem, initials, topoOptions(t.graph, 4'000'000));
      record("asymmetric (Prop 12)", t.name, "weak", w.solves, w.explored,
             w.numConfigs, t.name == "complete");
    }
  }

  // --- Prop 14's protocol: initialized leader + uniform agents, N = P = 4.
  // Star centered at the leader (base station downlink) suffices.
  {
    const std::uint32_t n = 4;
    const LeaderUniformNaming proto(n);
    const Problem problem = namingProblem(proto);
    const auto initials = declaredUniformInitials(proto, n);
    const std::vector<TopologyCase> topologies{
        {"complete", InteractionGraph::complete(n + 1)},
        {"star@leader", InteractionGraph::star(n + 1, n)},
        {"ring", InteractionGraph::ring(n + 1)},
    };
    for (const auto& t : topologies) {
      const WeakVerdict w = checkWeakFairness(
          proto, problem, initials, topoOptions(t.graph, 4'000'000));
      // The protocol needs every agent to reach the leader; complete and
      // leader-star obviously provide that. The ring does NOT provide
      // leader-adjacency for all, yet mobile-mobile transitions are null, so
      // non-adjacent agents keep their init marker forever -> fails.
      record("leader-uniform (Prop 14)", t.name, "weak", w.solves, w.explored,
             w.numConfigs, t.name != "ring");
    }
  }

  // --- Protocol 2 (Prop 16): needs mobile-mobile homonym detection, so a
  // leader-star is NOT enough despite the leader doing all the naming.
  {
    const std::uint32_t n = 3;
    const SelfStabWeakNaming proto(n);
    const Problem problem = namingProblem(proto);
    const auto initials = allConcreteConfigurations(proto, n);
    const std::vector<TopologyCase> topologies{
        {"complete", InteractionGraph::complete(n + 1)},
        {"star@leader", InteractionGraph::star(n + 1, n)},
    };
    for (const auto& t : topologies) {
      const WeakVerdict w = checkWeakFairness(
          proto, problem, initials, topoOptions(t.graph, 8'000'000));
      record("selfstab-weak (Prop 16)", t.name, "weak", w.solves, w.explored,
             w.numConfigs, t.name == "complete");
    }
  }

  std::printf("E14: naming across interaction topologies (exact checking)\n\n");
  std::fputs((*csv ? table.renderCsv() : table.render()).c_str(), stdout);
  std::printf("\nall verdicts matched expectations: %s\n", ok ? "PASS" : "FAIL");
  if (memStats && !memStats->writeJson(*memStatsOut)) {
    std::fprintf(stderr, "graph_topologies: cannot write '%s'\n",
                 memStatsOut->c_str());
    return 1;
  }
  return ok ? 0 : 2;
}
