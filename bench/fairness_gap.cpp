// Extended evaluation E10: the weak/global fairness gap, quantified.
//
// Part 1 — the Section 2 black/white example: under the random (globally
// fair) scheduler the 3-agent system reaches all-black quickly; under the
// paper's adversarial weakly fair schedule it provably never does (we run a
// long prefix and report the black-token count staying at 1).
//
// Part 2 — the naming gap: Protocol 3 (P states, initialized leader) at
// N = P converges under the random scheduler, while the exact checker counts
// the weakly fair violating SCCs that an adversary can trap it in
// (Theorem 11). Protocol 2 (P+1 states) shows zero violating SCCs.
//
//   ./fairness_gap [--runs 32] [--csv]
#include <cstdio>

#include "analysis/initial_sets.h"
#include "analysis/weak_checker.h"
#include "core/engine.h"
#include "naming/color_example.h"
#include "naming/global_leader_naming.h"
#include "naming/selfstab_weak_naming.h"
#include "sched/adversary.h"
#include "sched/random_scheduler.h"
#include "sim/runner.h"
#include "stats/summary.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  ppn::Cli cli("fairness_gap", "weak vs global fairness, quantified");
  const auto* runs = cli.addUint("runs", "random-scheduler runs", 32);
  const auto* seed = cli.addUint("seed", "rng seed", 314);
  const auto* csv = cli.addFlag("csv", "emit CSV");
  if (!cli.parse(argc, argv)) return 1;

  bool ok = true;

  std::printf("E10 part 1: black/white example (paper Section 2), 3 agents\n\n");
  {
    const ppn::ColorExample colors;
    // Random scheduler: time to all-black.
    ppn::Rng rng(*seed);
    std::vector<double> times;
    for (std::uint64_t r = 0; r < *runs; ++r) {
      ppn::Engine engine(colors, ppn::Configuration{{1, 0, 0}, std::nullopt});
      ppn::RandomScheduler sched(3, rng.next());
      std::uint64_t t = 0;
      while (!ppn::allBlack(engine.config()) && t < 1'000'000) {
        engine.step(sched.next());
        ++t;
      }
      times.push_back(static_cast<double>(t));
    }
    const ppn::Summary s = ppn::summarize(times);
    std::printf("random scheduler: all-black after %s interactions\n",
                s.toString(0).c_str());

    // Adversarial weakly fair schedule: never terminates.
    ppn::Engine engine(colors, ppn::Configuration{{1, 0, 0}, std::nullopt});
    ppn::CallbackScheduler adversary("token-spinner", [](std::uint64_t t) {
      switch (t % 3) {
        case 0: return ppn::Interaction{0, 1};
        case 1: return ppn::Interaction{1, 2};
        default: return ppn::Interaction{2, 0};
      }
    });
    constexpr std::uint64_t kPrefix = 3'000'000;
    bool everAllBlack = false;
    for (std::uint64_t t = 0; t < kPrefix; ++t) {
      engine.step(adversary.next());
      everAllBlack |= ppn::allBlack(engine.config());
    }
    std::printf("adversarial weakly fair schedule: all-black within %llu "
                "interactions? %s (each pair met %llu times)\n\n",
                static_cast<unsigned long long>(kPrefix),
                everAllBlack ? "yes (BUG)" : "no — token jumps forever",
                static_cast<unsigned long long>(kPrefix / 3));
    ok = ok && !everAllBlack;
  }

  std::printf("E10 part 2: the naming gap at N = P (Theorem 11 boundary)\n\n");
  {
    ppn::Table table({"protocol", "states", "P", "random sched named",
                      "weakly fair violating SCCs", "checker verdict"});
    for (const ppn::StateId p : {2u, 3u}) {
      // Protocol 3: P states — converges under global, trapped under weak.
      {
        const ppn::GlobalLeaderNaming proto(p);
        ppn::Rng rng(*seed + p);
        std::uint32_t named = 0;
        for (std::uint64_t r = 0; r < *runs; ++r) {
          ppn::Rng runRng = rng.split();
          ppn::Engine engine(proto,
                             ppn::arbitraryConfiguration(proto, p, runRng));
          ppn::RandomScheduler sched(p + 1, runRng.next());
          const ppn::RunOutcome out = ppn::runUntilSilent(
              engine, sched, ppn::RunLimits{10'000'000, 64});
          named += out.namingSolved ? 1 : 0;
        }
        const ppn::WeakVerdict v = ppn::checkWeakFairness(
            proto, ppn::namingProblem(proto),
            ppn::allConcreteConfigurations(proto, p));
        table.row()
            .cell("global-leader (Protocol 3)")
            .cell("P")
            .cell(std::uint64_t{p})
            .cell(std::to_string(named) + "/" + std::to_string(*runs))
            .cell(v.violatingSccs)
            .cell(v.solves ? "solves" : "FAILS under weak fairness");
        ok = ok && named == *runs && !v.solves;
      }
      // Protocol 2: P+1 states — immune to weakly fair adversaries.
      {
        const ppn::SelfStabWeakNaming proto(p);
        const ppn::WeakVerdict v = ppn::checkWeakFairness(
            proto, ppn::namingProblem(proto),
            ppn::allConcreteConfigurations(proto, p));
        table.row()
            .cell("selfstab-weak (Protocol 2)")
            .cell("P+1")
            .cell(std::uint64_t{p})
            .cell("-")
            .cell(v.violatingSccs)
            .cell(v.solves ? "solves under weak fairness" : "FAILS");
        ok = ok && v.solves;
      }
    }
    std::fputs((*csv ? table.renderCsv() : table.render()).c_str(), stdout);
  }

  std::printf("\noverall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}
