// Theorem 11 demonstration: under weak fairness, P-state symmetric naming
// with an initialized leader fails on non-initialized agents.
//
// Two independent pieces of evidence against the natural P-state candidate
// (Protocol 3):
//  1. the proof's "hidden agent" schedule, replayed live: isolate one agent
//     while the rest converge as if N' = P-1; the hidden agent is a homonym
//     of a named agent, and releasing it forces renaming — repeatable
//     forever, so convergence never sticks;
//  2. the exact weak-fairness checker's violating-SCC witness.
//
// The P+1-state Protocol 2 passes both (the paper's tightness).
//
//   ./theorem11_adversary [--p 3]
#include <cstdio>

#include "analysis/initial_sets.h"
#include "analysis/weak_checker.h"
#include "core/engine.h"
#include "naming/global_leader_naming.h"
#include "naming/selfstab_weak_naming.h"
#include "sched/adversary.h"
#include "sched/deterministic_schedulers.h"
#include "sim/runner.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  ppn::Cli cli("theorem11_adversary",
               "weakly fair adversaries vs P-state leader naming");
  const auto* pFlag = cli.addUint("p", "bound P (2..4)", 3);
  if (!cli.parse(argc, argv)) return 1;
  const auto p = static_cast<ppn::StateId>(*pFlag);
  if (p < 2 || p > 4) {
    std::fprintf(stderr, "need 2 <= p <= 4\n");
    return 1;
  }

  bool ok = true;
  std::printf("== Theorem 11 at P = %u ==\n\n", p);

  // ---- Piece 1: the hidden-agent schedule against Protocol 3.
  {
    const ppn::GlobalLeaderNaming proto(p);
    // All agents start as homonyms of the would-be last name; agent 0 is
    // hidden while the others (population P-1 from the leader's viewpoint)
    // are named 1..P-1 by the Protocol 1 machinery.
    ppn::Configuration start;
    start.mobile.assign(p, 1);
    start.leader = *proto.initialLeaderState();
    ppn::Engine engine(proto, std::move(start));

    auto inner = std::make_unique<ppn::RoundRobinScheduler>(p + 1);
    constexpr std::uint64_t kIsolation = 100000;
    ppn::IsolationScheduler sched(std::move(inner), /*isolated=*/0, kIsolation);
    for (std::uint64_t t = 0; t < kIsolation; ++t) engine.step(sched.next());

    const ppn::Configuration& hiddenPhase = engine.config();
    std::printf("hidden-agent phase (agent 0 isolated, %llu interactions):\n"
                "  %s\n",
                static_cast<unsigned long long>(kIsolation),
                hiddenPhase
                    .toString(proto.describeLeaderState(*hiddenPhase.leader))
                    .c_str());
    // The visible P-1 agents are distinctly named; agent 0 duplicates one of
    // them (or holds a stale name) — the leader cannot know.
    std::vector<ppn::StateId> visible(hiddenPhase.mobile.begin() + 1,
                                      hiddenPhase.mobile.end());
    std::sort(visible.begin(), visible.end());
    const bool visibleDistinct =
        std::adjacent_find(visible.begin(), visible.end()) == visible.end();
    const bool wholeNamed = engine.namingSolved();
    std::printf("  visible sub-population distinct: %s;  whole population "
                "named: %s\n",
                visibleDistinct ? "yes" : "no", wholeNamed ? "yes" : "no");
    ok = ok && visibleDistinct && !wholeNamed;

    // Release the hidden agent: the adversary now lets everyone interact;
    // renaming must happen again (names were NOT stable).
    const std::uint64_t changesBefore = engine.nonNullInteractions();
    for (int t = 0; t < 100000; ++t) engine.step(sched.next());
    const bool renamedAfterRelease = engine.nonNullInteractions() > changesBefore;
    std::printf("  after release: further renaming happened: %s\n\n",
                renamedAfterRelease ? "yes — convergence was illusory" : "no");
    ok = ok && renamedAfterRelease;
  }

  // ---- Piece 2: exact checker verdicts for P and P+1 states.
  {
    const ppn::GlobalLeaderNaming pStates(p);
    const ppn::WeakVerdict v1 = ppn::checkWeakFairness(
        pStates, ppn::namingProblem(pStates),
        ppn::allConcreteConfigurations(pStates, p));
    std::printf("exact checker, P-state Protocol 3, N=P: %s (%zu violating "
                "SCCs)\n",
                v1.solves ? "solves (UNEXPECTED)" : "FAILS under weak fairness",
                v1.violatingSccs);
    ok = ok && v1.explored && !v1.solves;

    const ppn::SelfStabWeakNaming pPlus1(p);
    const ppn::WeakVerdict v2 = ppn::checkWeakFairness(
        pPlus1, ppn::namingProblem(pPlus1),
        ppn::allConcreteConfigurations(pPlus1, p), 8'000'000);
    std::printf("exact checker, (P+1)-state Protocol 2, N=P: %s\n",
                v2.solves ? "solves — one extra state closes the gap"
                          : "FAILS (UNEXPECTED)");
    ok = ok && v2.explored && v2.solves;
  }

  std::printf("\noverall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}
