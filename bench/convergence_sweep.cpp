// Extended evaluation E7/E8: convergence cost (interactions and parallel
// time) of every naming protocol, (a) as N grows with P = N, and (b) as the
// slack P - N grows at fixed N.
//
// Expected shapes (the paper gives no timing numbers — space optimality is
// bought with time):
//  * asymmetric (Prop 12) and leader-uniform (Prop 14): low-degree
//    polynomial in N — the cheap cells of Table 1;
//  * the U*-pointer protocols (Protocols 1-3) and the blank-state protocol
//    (Prop 13): super-polynomial growth in N, since the BST pointer must
//    traverse U_n (length 2^n - 1) and rejected names keep recycling.
//
//   ./convergence_sweep [--nmax 11] [--runs 12] [--csv]
#include <cstdio>

#include "core/engine.h"
#include "naming/registry.h"
#include "sim/runner.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

ppn::BatchResult measure(const ppn::Protocol& proto, std::uint32_t n,
                         ppn::InitKind init, std::uint32_t runs,
                         std::uint64_t seed) {
  ppn::BatchSpec spec;
  spec.numMobile = n;
  spec.init = init;
  spec.sched = ppn::SchedulerKind::kRandom;
  spec.runs = runs;
  spec.seed = seed;
  spec.limits = ppn::RunLimits{200'000'000, 256};
  return ppn::runBatch(proto, spec);
}

}  // namespace

int main(int argc, char** argv) {
  ppn::Cli cli("convergence_sweep", "convergence cost vs N and vs P-N");
  const auto* nmax = cli.addUint("nmax", "largest population (>= 3)", 11);
  const auto* runs = cli.addUint("runs", "runs per point", 12);
  const auto* seed = cli.addUint("seed", "rng seed", 99);
  const auto* csv = cli.addFlag("csv", "emit CSV");
  if (!cli.parse(argc, argv)) return 1;

  const auto runCount = static_cast<std::uint32_t>(*runs);

  std::printf("E7: convergence cost vs N (P = N, random scheduler)\n\n");
  {
    ppn::Table table({"protocol", "N", "converged", "mean interactions",
                      "median", "p90", "mean parallel time"});
    for (const auto& key : ppn::protocolKeys()) {
      if (key == "counting") continue;  // counting's naming is only for N < P
      // Protocol 3's N = P renaming walk blows up around P = 5 (~1e9
      // interactions measured); its series stops where a run still fits the
      // budget — the blow-up itself is the reported shape.
      const std::uint64_t cap = (key == "global-leader") ? 4 : *nmax;
      for (std::uint64_t n = 3; n <= std::min(cap, *nmax); ++n) {
        const auto proto = ppn::makeProtocol(key, static_cast<ppn::StateId>(n));
        const ppn::InitKind init = (key == "leader-uniform")
                                       ? ppn::InitKind::kUniform
                                       : ppn::InitKind::kArbitrary;
        const auto r = measure(*proto, static_cast<std::uint32_t>(n), init,
                               runCount, *seed + n);
        table.row()
            .cell(key)
            .cell(n)
            .cell(std::to_string(r.named) + "/" + std::to_string(r.runs))
            .cell(r.convergenceInteractions.mean, 0)
            .cell(r.convergenceInteractions.median, 0)
            .cell(r.convergenceInteractions.p90, 0)
            .cell(r.parallelTime.mean, 1);
      }
    }
    std::fputs((*csv ? table.renderCsv() : table.render()).c_str(), stdout);
  }

  std::printf("\nE8: convergence cost vs slack P - N (N = 6, random scheduler)\n\n");
  {
    ppn::Table table({"protocol", "P", "N", "converged", "mean interactions",
                      "p90"});
    const std::uint32_t n = 6;
    for (const auto& key : ppn::protocolKeys()) {
      for (std::uint64_t p = n; p <= n + 6; p += 2) {
        const auto proto = ppn::makeProtocol(key, static_cast<ppn::StateId>(p));
        if (key == "counting" && p == n) continue;        // naming needs N < P
        if (key == "global-leader" && p == n) continue;   // N=P walk blow-up
        const ppn::InitKind init = (key == "leader-uniform")
                                       ? ppn::InitKind::kUniform
                                       : ppn::InitKind::kArbitrary;
        const auto r = measure(*proto, n, init, runCount, *seed + p * 7);
        table.row()
            .cell(key)
            .cell(p)
            .cell(std::uint64_t{n})
            .cell(std::to_string(r.named) + "/" + std::to_string(r.runs))
            .cell(r.convergenceInteractions.mean, 0)
            .cell(r.convergenceInteractions.p90, 0);
      }
    }
    std::fputs((*csv ? table.renderCsv() : table.render()).c_str(), stdout);
  }
  return 0;
}
