// Extended evaluation E7/E8: convergence cost (interactions and parallel
// time) of every naming protocol, (a) as N grows with P = N, and (b) as the
// slack P - N grows at fixed N.
//
// Expected shapes (the paper gives no timing numbers — space optimality is
// bought with time):
//  * asymmetric (Prop 12) and leader-uniform (Prop 14): low-degree
//    polynomial in N — the cheap cells of Table 1;
//  * the U*-pointer protocols (Protocols 1-3) and the blank-state protocol
//    (Prop 13): super-polynomial growth in N, since the BST pointer must
//    traverse U_n (length 2^n - 1) and rejected names keep recycling.
//
//   ./convergence_sweep [--nmax 11] [--runs 12] [--csv] [--threads K]
//                       [--events-out run.jsonl] [--metrics-out metrics.json]
//                       [--trace-out trace.json] [--runs-out runs.jsonl]
//                       [--flight-recorder-out flight.jsonl]
//                       [--flight-stride 1024] [--progress]
//
// Telemetry (E20/E22): --events-out streams per-run JSONL events,
// --metrics-out dumps the final metrics snapshot, --trace-out writes a
// Chrome trace_event timeline of every run (chrome://tracing), --progress
// prints periodic runs/sec + ETA to stderr. --flight-recorder-out arms the
// convergence flight recorder: every run is sampled each --flight-stride
// interactions (name occupancy, collisions) and the retained ring is dumped
// at sweep end (and automatically on any watchdog abort). Absent flags leave
// the sweep unobserved (output unchanged).
//
// Each point is one job on a shared BatchEngine (sim/batch_engine.h):
// --threads K sizes its pool (0 = all cores; per-point statistics are
// bit-identical for any K) and --runs-out streams every completed run as a
// JSONL run_outcome line, in run order, across the whole sweep.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "core/engine.h"
#include "naming/registry.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/probes.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "sim/batch_engine.h"
#include "sim/runner.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

/// Telemetry plumbed through every measure() call; runIdBase advances by
/// `runs` per batch so event run ids stay unique across the whole sweep.
struct Telemetry {
  ppn::RunObserver* observer = nullptr;
  ppn::FlightRecorder* recorder = nullptr;
  ppn::JsonlLineSink runsSink;
  std::uint64_t nextRunIdBase = 0;
};

ppn::BatchResult measure(ppn::BatchEngine& engine, const ppn::Protocol& proto,
                         std::uint32_t n, ppn::InitKind init,
                         std::uint32_t runs, std::uint64_t seed,
                         Telemetry& telemetry) {
  // Thin client of the batch engine: the spec (and its seed derivation) is
  // exactly what runBatch takes, so each point's statistics are bit-identical
  // to the old in-process batch for any pool size.
  ppn::BatchSpec spec;
  spec.numMobile = n;
  spec.init = init;
  spec.sched = ppn::SchedulerKind::kRandom;
  spec.runs = runs;
  spec.seed = seed;
  spec.limits = ppn::RunLimits{200'000'000, 256};
  spec.observer = telemetry.observer;
  spec.recorder = telemetry.recorder;
  spec.runIdBase = telemetry.nextRunIdBase;
  telemetry.nextRunIdBase += runs;
  return engine.submit(proto, spec, telemetry.runsSink)->wait();
}

/// Points the E7 table will measure (for the progress reporter's ETA).
std::uint64_t e7Points(std::uint64_t nmax) {
  std::uint64_t points = 0;
  for (const auto& key : ppn::protocolKeys()) {
    if (key == "counting") continue;
    const std::uint64_t cap = (key == "global-leader") ? 4 : nmax;
    for (std::uint64_t n = 3; n <= std::min(cap, nmax); ++n) ++points;
  }
  return points;
}

/// Points the E8 table will measure.
std::uint64_t e8Points() {
  std::uint64_t points = 0;
  const std::uint32_t n = 6;
  for (const auto& key : ppn::protocolKeys()) {
    for (std::uint64_t p = n; p <= n + 6; p += 2) {
      if (key == "counting" && p == n) continue;
      if (key == "global-leader" && p == n) continue;
      ++points;
    }
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  ppn::Cli cli("convergence_sweep", "convergence cost vs N and vs P-N");
  const auto* nmax = cli.addUint("nmax", "largest population (>= 3)", 11);
  const auto* runs = cli.addUint("runs", "runs per point", 12);
  const auto* seed = cli.addUint("seed", "rng seed", 99);
  const auto* csv = cli.addFlag("csv", "emit CSV");
  const auto* eventsOut = cli.addString(
      "events-out", "stream JSONL telemetry events to this file", "");
  const auto* metricsOut = cli.addString(
      "metrics-out", "write the final metrics snapshot (JSON) to this file", "");
  const auto* traceOut = cli.addString(
      "trace-out", "write a Chrome trace_event timeline to this file", "");
  const auto* flightOut = cli.addString(
      "flight-recorder-out", "dump flight-recorder samples (JSONL) here", "");
  const auto* flightStride = cli.addUint(
      "flight-stride", "interactions between flight-recorder samples", 1024);
  const auto* progress =
      cli.addFlag("progress", "print periodic batch progress to stderr");
  const auto* threads = cli.addUint(
      "threads", "batch-engine worker threads (0 = all cores)", 1);
  const auto* runsOut = cli.addString(
      "runs-out", "stream per-run outcomes (JSONL, run order) to this file",
      "");
  if (!cli.parse(argc, argv)) return 1;

  const auto runCount = static_cast<std::uint32_t>(*runs);

  ppn::MetricsRegistry registry;
  std::unique_ptr<ppn::JsonlEventSink> sink;
  std::unique_ptr<ppn::MetricsRunObserver> metricsProbe;
  std::unique_ptr<ppn::ProgressReporter> reporter;
  std::unique_ptr<ppn::ChromeTraceWriter> traceWriter;
  std::unique_ptr<ppn::ChromeTraceObserver> traceProbe;
  std::unique_ptr<ppn::FlightRecorder> recorder;
  ppn::MultiObserver observers;
  try {
    if (!eventsOut->empty()) {
      sink = std::make_unique<ppn::JsonlEventSink>(*eventsOut);
      observers.add(sink.get());
    }
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "convergence_sweep: %s\n", e.what());
    return 1;
  }
  if (!metricsOut->empty()) {
    metricsProbe = std::make_unique<ppn::MetricsRunObserver>(registry);
    observers.add(metricsProbe.get());
  }
  if (!traceOut->empty()) {
    traceWriter = std::make_unique<ppn::ChromeTraceWriter>();
    traceProbe = std::make_unique<ppn::ChromeTraceObserver>(*traceWriter);
    observers.add(traceProbe.get());
  }
  if (*progress) {
    reporter = std::make_unique<ppn::ProgressReporter>(
        (e7Points(*nmax) + e8Points()) * runCount);
    observers.add(reporter.get());
  }
  if (!flightOut->empty()) {
    recorder = std::make_unique<ppn::FlightRecorder>(
        4096, std::max<std::uint64_t>(1, *flightStride), *flightOut);
  }
  Telemetry telemetry;
  if (!observers.empty()) telemetry.observer = &observers;
  telemetry.recorder = recorder.get();
  std::ofstream runsStream;
  if (!runsOut->empty()) {
    runsStream.open(*runsOut, std::ios::trunc);
    if (!runsStream) {
      std::fprintf(stderr, "convergence_sweep: cannot write '%s'\n",
                   runsOut->c_str());
      return 1;
    }
    telemetry.runsSink = [&runsStream](const std::string& line) {
      runsStream << line << '\n';
    };
  }

  // One pool and one queue for the whole sweep; each point is one batch job.
  ppn::BatchEngine engine(
      ppn::BatchEngineOptions{static_cast<std::uint32_t>(*threads), 256});

  std::printf("E7: convergence cost vs N (P = N, random scheduler)\n\n");
  {
    ppn::Table table({"protocol", "N", "converged", "mean interactions",
                      "median", "p90", "mean parallel time"});
    for (const auto& key : ppn::protocolKeys()) {
      if (key == "counting") continue;  // counting's naming is only for N < P
      // Protocol 3's N = P renaming walk blows up around P = 5 (~1e9
      // interactions measured); its series stops where a run still fits the
      // budget — the blow-up itself is the reported shape.
      const std::uint64_t cap = (key == "global-leader") ? 4 : *nmax;
      for (std::uint64_t n = 3; n <= std::min(cap, *nmax); ++n) {
        const auto proto = ppn::makeProtocol(key, static_cast<ppn::StateId>(n));
        const ppn::InitKind init = (key == "leader-uniform")
                                       ? ppn::InitKind::kUniform
                                       : ppn::InitKind::kArbitrary;
        const auto r = measure(engine, *proto, static_cast<std::uint32_t>(n),
                               init, runCount, *seed + n, telemetry);
        table.row()
            .cell(key)
            .cell(n)
            .cell(std::to_string(r.named) + "/" + std::to_string(r.runs))
            .cell(r.convergenceInteractions.mean, 0)
            .cell(r.convergenceInteractions.median, 0)
            .cell(r.convergenceInteractions.p90, 0)
            .cell(r.parallelTime.mean, 1);
      }
    }
    std::fputs((*csv ? table.renderCsv() : table.render()).c_str(), stdout);
  }

  std::printf("\nE8: convergence cost vs slack P - N (N = 6, random scheduler)\n\n");
  {
    ppn::Table table({"protocol", "P", "N", "converged", "mean interactions",
                      "p90"});
    const std::uint32_t n = 6;
    for (const auto& key : ppn::protocolKeys()) {
      for (std::uint64_t p = n; p <= n + 6; p += 2) {
        const auto proto = ppn::makeProtocol(key, static_cast<ppn::StateId>(p));
        if (key == "counting" && p == n) continue;        // naming needs N < P
        if (key == "global-leader" && p == n) continue;   // N=P walk blow-up
        const ppn::InitKind init = (key == "leader-uniform")
                                       ? ppn::InitKind::kUniform
                                       : ppn::InitKind::kArbitrary;
        const auto r = measure(engine, *proto, n, init, runCount,
                               *seed + p * 7, telemetry);
        table.row()
            .cell(key)
            .cell(p)
            .cell(std::uint64_t{n})
            .cell(std::to_string(r.named) + "/" + std::to_string(r.runs))
            .cell(r.convergenceInteractions.mean, 0)
            .cell(r.convergenceInteractions.p90, 0);
      }
    }
    std::fputs((*csv ? table.renderCsv() : table.render()).c_str(), stdout);
  }

  if (reporter) reporter->finish();
  if (sink) sink->flush();
  if (traceWriter && !traceWriter->writeToFile(*traceOut)) {
    std::fprintf(stderr, "convergence_sweep: cannot write '%s'\n",
                 traceOut->c_str());
    return 1;
  }
  // Watchdog aborts dump mid-sweep on their own; this final dump retains the
  // tail of a healthy sweep so the samples are inspectable either way.
  if (recorder && !recorder->dumpToConfiguredPath("sweep_complete")) {
    std::fprintf(stderr, "convergence_sweep: cannot write '%s'\n",
                 flightOut->c_str());
    return 1;
  }
  if (!metricsOut->empty()) {
    std::ofstream out(*metricsOut, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "convergence_sweep: cannot write '%s'\n",
                   metricsOut->c_str());
      return 1;
    }
    out << registry.toJson() << '\n';
  }
  return 0;
}
