// Extended evaluation E16: the price of space optimality, quantified.
//
// The paper's conclusion lists "the study of the time complexity aspects of
// naming and, overall, of the trade-offs between time and space" as the open
// continuation; this harness measures it for the implemented protocols. For
// each protocol we sweep N (with P = N), fit the mean convergence cost both
// as a power law (c * N^k) and as an exponential (c * b^N), and report which
// model explains the data (higher R^2 in the fitted space):
//
//  * asymmetric (Prop 12, P states)      — polynomial, small exponent;
//  * leader-uniform (Prop 14, P states)  — ~N log N (coupon collector);
//  * selfstab-weak (Prop 16, P+1 states) — exponential (U* has length 2^P);
//  * symmetric-global (Prop 13, P+1)     — super-polynomial;
//  * global-leader (Prop 17, P states)   — worst: its N = P renaming walk is
//    measured separately up to P = 5 and explodes super-exponentially. One
//    state below the P+1 optimum costs orders of magnitude in time.
//
//   ./time_space_tradeoff [--nmax 12] [--runs 10] [--csv]
#include <cmath>
#include <cstdio>

#include "core/engine.h"
#include "naming/registry.h"
#include "sim/runner.h"
#include "stats/regression.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace ppn;

double meanConvergence(const Protocol& proto, std::uint32_t n,
                       std::uint32_t runs, std::uint64_t seed,
                       std::uint64_t budget) {
  BatchSpec spec;
  spec.numMobile = n;
  spec.init = proto.uniformMobileInit().has_value() ? InitKind::kUniform
                                                    : InitKind::kArbitrary;
  spec.sched = SchedulerKind::kRandom;
  spec.runs = runs;
  spec.seed = seed;
  spec.limits = RunLimits{budget, 128};
  const BatchResult r = runBatch(proto, spec);
  if (r.converged < runs) return -1.0;  // budget blown
  return r.convergenceInteractions.mean;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("time_space_tradeoff", "convergence-cost growth model per protocol");
  const auto* nmax = cli.addUint("nmax", "largest N for the main sweep", 12);
  const auto* runs = cli.addUint("runs", "runs per point", 10);
  const auto* csv = cli.addFlag("csv", "emit CSV");
  if (!cli.parse(argc, argv)) return 1;

  Table table({"protocol", "states", "N range", "power-law k", "R2(power)",
               "exp base b", "R2(exp)", "better model"});

  struct Row {
    std::string key;
    std::string states;
    std::uint64_t nmin;
    std::uint64_t cap;
    std::uint64_t budget;
  };
  const std::vector<Row> plan{
      {"asymmetric", "P", 3, *nmax, 10'000'000},
      {"leader-uniform", "P", 3, *nmax, 10'000'000},
      {"symmetric-global", "P+1", 3, *nmax, 100'000'000},
      {"selfstab-weak", "P+1", 3, *nmax, 100'000'000},
      // P = 5 already needs ~1e9 interactions per run (measured); the sweep
      // stops at 4 to keep the bench interactive — the blow-up is visible in
      // the fitted base regardless.
      {"global-leader", "P", 2, 4, 100'000'000},
  };

  for (const auto& row : plan) {
    std::vector<double> xs, ys;
    for (std::uint64_t n = row.nmin; n <= row.cap; ++n) {
      const auto proto = makeProtocol(row.key, static_cast<StateId>(n));
      const double mean =
          meanConvergence(*proto, static_cast<std::uint32_t>(n),
                          static_cast<std::uint32_t>(*runs), 37 + n, row.budget);
      if (mean < 0) break;  // beyond this N the budget is blown; stop sweep
      xs.push_back(static_cast<double>(n));
      ys.push_back(std::max(mean, 1.0));
    }
    if (xs.size() < 3) continue;
    const LinearFit power = powerLawFit(xs, ys);
    const LinearFit expo = exponentialFit(xs, ys);
    table.row()
        .cell(row.key)
        .cell(row.states)
        .cell(std::to_string(static_cast<std::uint64_t>(xs.front())) + ".." +
              std::to_string(static_cast<std::uint64_t>(xs.back())))
        .cell(power.slope, 2)
        .cell(power.r2, 3)
        .cell(std::exp(expo.slope), 2)
        .cell(expo.r2, 3)
        .cell(power.r2 >= expo.r2 ? "polynomial" : "exponential");
  }

  std::printf("E16: time paid for space optimality (random scheduler, P = N)\n\n");
  std::fputs((*csv ? table.renderCsv() : table.render()).c_str(), stdout);
  std::printf(
      "\nreading: the P-state Protocol 3 pays a super-exponential renaming\n"
      "walk at N = P, while one extra state (P+1 protocols) brings the cost\n"
      "down to ~2^N and the asymmetric protocol to a low-degree polynomial.\n");
  return 0;
}
