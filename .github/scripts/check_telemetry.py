#!/usr/bin/env python3
"""Validates the telemetry smoke artifacts produced in CI.

Two event families share the JSONL stream format; each is validated when
present, and at least one must be:

Run family (the E20 acceptance contract — robustness_table):
  * run_start/run_end events pair one-to-one per run id;
  * fault_injected / watchdog_abort / cancelled events carry a run id that
    belongs to a started run;
  * metrics endpoint counters agree with the event stream (runs_ended ==
    run_end lines, faults_injected == fault_injected lines) and with the
    robustness-table JSON's run count.

Explore family (the E22 acceptance contract — lower_bound_search etc.):
  * per exploration id, explore_progress node/edge counts are monotone
    non-decreasing WITHIN each explore phase and the phase ends with a
    done=true event. Monotonicity is per phase, not global: parallel
    candidate dispatch (E23) interleaves many explorations' events in one
    stream, and an id whose explore phase restarts legitimately resets its
    counts — each phase_start of an "explore" phase re-bases the check;
  * phase_start/phase_end nest LIFO per exploration id (phase_end always
    closes the innermost open phase) and every phase is closed by EOF;
  * per search id, search_progress examined counts are monotone,
    examined <= total, and the stream ends with done=true;
  * metrics counters agree: explorations == done explore_progress lines,
    explorations_truncated == explore_truncated lines, explore_phases ==
    phase_end lines;
  * explore_progress events carry the per-phase loop timing block
    (expand_ms/dedup_ms/append_ms/io_ms and the derived
    expand_nodes_per_sec/dedup_nodes_per_sec), all non-negative — the
    rates that tell a dedup-bound level from an expand-bound one;
  * memory_sample events (E27) carry the full per-component ledger
    (configs/adjacency/dedup/frontier/codec bytes), the components sum to
    total_bytes exactly, high_water_bytes is monotone non-decreasing per
    exploration phase and never below total_bytes, an id's samples stop
    after its done=true sample, and — the drift bound — the deterministic
    ledger total never exceeds the sampled process RSS by more than 5%
    when an RSS reading is available (rss_bytes > 0);
  * memory_sample events also carry the disk spill tier (E28):
    spill_bytes/spill_runs are present, non-negative, zero together, and
    when runs exist spill_bytes covers at least the per-run file headers
    (spill bytes live on DISK, so they stay outside total_bytes and the
    RSS drift bound).

With --trace FILE, also validates a Chrome trace_event export:
  * top-level object with a traceEvents list and displayTimeUnit;
  * every duration track balances its B/E events as a stack, with each E
    naming the innermost open B;
  * every track that carries events has thread_name metadata.

Campaign family (the E24 acceptance contract — campaign_runner):
  * exactly one campaign_start (first campaign event) and one campaign_end
    (last event of the stream);
  * unit_end at most once per unit with a known status; unit_retry attempts
    strictly increase per unit; at most one unit_failed per unit;
  * shard_exit events never outnumber shard_spawn events per shard;
  * resource_sample events (E25) carry the full gauge set (shard, pid,
    rss_bytes, vsize_bytes, utime_ms, stime_ms, cpu_permille, read_bytes,
    write_bytes) and reference a shard that was actually spawned;
  * for a fresh (not resumed), uninterrupted campaign the unit_end lines
    cover exactly campaign_end.total units and the completed/failed rollups
    match the per-unit statuses, and every unit_start reaches a unit_end.

With --health FILE, also validates a campaign_health.json artifact (E25):
  * the file is a checksummed JSONL artifact — one health document plus an
    artifact_footer whose crc32 (zlib polynomial) covers the body;
  * the document has kind "ppn-campaign-health", every rollup field, and
    finite numbers throughout (NaN/Infinity are rejected at parse time);
  * campaign rollups equal the sums of the per-shard rows, the stragglers
    list names exactly the shards flagged straggler, and peak_rss points at
    the shard with the largest per-shard peak_rss_bytes.

Every JSONL line must parse as a JSON object with an "event" discriminator
and an "elapsed_ms" timestamp.

Usage: check_telemetry.py events.jsonl [metrics.json] [table.json]
                          [--trace trace.json] [--health health.json]
(metrics.json is required when run/explore events are present; a pure
campaign stream validates standalone.)
"""
import json
import sys
import zlib
from collections import Counter, defaultdict

RUN_EVENTS = {
    "run_start", "run_end", "fault_injected", "watchdog_abort",
    "cancelled", "batch_progress",
}
EXPLORE_EVENTS = {
    "explore_progress", "phase_start", "phase_end", "explore_truncated",
    "search_progress", "memory_sample",
}
MEMORY_SAMPLE_FIELDS = (
    "explore", "configs_bytes", "adjacency_bytes", "dedup_bytes",
    "frontier_bytes", "codec_bytes", "total_bytes", "high_water_bytes",
    "spill_bytes", "spill_runs", "rss_bytes", "done",
)
PROGRESS_TIMING_FIELDS = (
    "expand_ms", "dedup_ms", "append_ms", "io_ms",
    "expand_nodes_per_sec", "dedup_nodes_per_sec",
)
# Sorted spill run files open with a fixed 24-byte header (magic, entry
# count, CRC) before the 12-byte records — mirrors spill_store.h.
SPILL_RUN_HEADER_BYTES = 24
MEMORY_COMPONENT_FIELDS = (
    "configs_bytes", "adjacency_bytes", "dedup_bytes", "frontier_bytes",
    "codec_bytes",
)
CAMPAIGN_EVENTS = {
    "campaign_start", "campaign_end", "shard_spawn", "shard_exit",
    "unit_start", "unit_end", "unit_retry", "unit_failed",
    "resource_sample",
}
RESOURCE_SAMPLE_FIELDS = (
    "shard", "pid", "rss_bytes", "vsize_bytes", "utime_ms", "stime_ms",
    "cpu_permille", "read_bytes", "write_bytes",
)
KNOWN_EVENTS = RUN_EVENTS | EXPLORE_EVENTS | CAMPAIGN_EVENTS

UNIT_STATUSES = ("ok", "degraded", "skipped", "failed")


def fail(msg):
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_events(events_path):
    events = []
    with open(events_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                fail(f"{events_path}:{lineno}: blank line")
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{events_path}:{lineno}: invalid JSON: {e}")
            if not isinstance(obj, dict):
                fail(f"{events_path}:{lineno}: not an object")
            kind = obj.get("event")
            if kind not in KNOWN_EVENTS:
                fail(f"{events_path}:{lineno}: unknown event {kind!r}")
            if "elapsed_ms" not in obj:
                fail(f"{events_path}:{lineno}: missing elapsed_ms")
            events.append((lineno, obj))
    return events


def check_run_family(events_path, events):
    starts, ends = Counter(), Counter()
    for lineno, obj in events:
        kind = obj["event"]
        if kind == "run_start":
            starts[obj["run"]] += 1
        elif kind == "run_end":
            ends[obj["run"]] += 1
        elif kind in ("fault_injected", "watchdog_abort", "cancelled"):
            if "run" not in obj:
                fail(f"{events_path}:{lineno}: {kind} without run id")

    if not starts:
        fail("run-family events present but no run_start at all")
    if starts != ends:
        only_start = set(starts) - set(ends)
        only_end = set(ends) - set(starts)
        fail(f"unpaired runs: started-not-ended={sorted(only_start)[:5]} "
             f"ended-not-started={sorted(only_end)[:5]}")
    dups = [r for r, n in starts.items() if n != 1]
    if dups:
        fail(f"runs with duplicate start/end events: {sorted(dups)[:5]}")

    for lineno, obj in events:
        if obj["event"] in ("fault_injected", "watchdog_abort",
                            "cancelled") and obj["run"] not in starts:
            fail(f"{events_path}:{lineno}: {obj['event']} references "
                 f"unknown run {obj['run']}")
    return ends


def check_explore_family(events_path, events):
    """Monotone progress per exploration, LIFO phases, monotone searches."""
    last_progress = {}                 # explore id -> (lineno, obj)
    last_memory = {}                   # explore id -> (lineno, obj)
    phase_stacks = defaultdict(list)   # explore id -> [open phase names]
    last_search = {}                   # search id -> (lineno, obj)
    done_explorations = 0
    memory_samples = 0
    for lineno, obj in events:
        kind = obj["event"]
        if kind == "explore_progress":
            if obj["done"]:
                done_explorations += 1
            prev = last_progress.get(obj["explore"])
            if prev is not None:
                pline, pobj = prev
                if pobj["done"]:
                    fail(f"{events_path}:{lineno}: explore_progress for "
                         f"exploration {obj['explore']} after its done "
                         f"event (line {pline})")
                for field in ("nodes", "edges"):
                    if obj[field] < pobj[field]:
                        fail(f"{events_path}:{lineno}: exploration "
                             f"{obj['explore']} {field} went backwards "
                             f"({pobj[field]} -> {obj[field]})")
            for field in PROGRESS_TIMING_FIELDS:
                if field not in obj:
                    fail(f"{events_path}:{lineno}: explore_progress missing "
                         f"{field}")
                if obj[field] < 0:
                    fail(f"{events_path}:{lineno}: exploration "
                         f"{obj['explore']} negative {field}={obj[field]}")
            last_progress[obj["explore"]] = (lineno, obj)
        elif kind == "memory_sample":
            for field in MEMORY_SAMPLE_FIELDS:
                if field not in obj:
                    fail(f"{events_path}:{lineno}: memory_sample missing "
                         f"{field}")
            component_sum = sum(obj[f] for f in MEMORY_COMPONENT_FIELDS)
            if component_sum != obj["total_bytes"]:
                fail(f"{events_path}:{lineno}: exploration {obj['explore']} "
                     f"memory_sample components sum to {component_sum}, not "
                     f"total_bytes={obj['total_bytes']}")
            if obj["high_water_bytes"] < obj["total_bytes"]:
                fail(f"{events_path}:{lineno}: exploration {obj['explore']} "
                     f"high_water_bytes {obj['high_water_bytes']} below "
                     f"total_bytes {obj['total_bytes']}")
            spill_bytes, spill_runs = obj["spill_bytes"], obj["spill_runs"]
            if spill_bytes < 0 or spill_runs < 0:
                fail(f"{events_path}:{lineno}: exploration {obj['explore']} "
                     f"negative spill tier (bytes={spill_bytes}, "
                     f"runs={spill_runs})")
            if (spill_bytes == 0) != (spill_runs == 0):
                fail(f"{events_path}:{lineno}: exploration {obj['explore']} "
                     f"spill_bytes={spill_bytes} inconsistent with "
                     f"spill_runs={spill_runs} (zero together or not at all)")
            if spill_bytes < spill_runs * SPILL_RUN_HEADER_BYTES:
                fail(f"{events_path}:{lineno}: exploration {obj['explore']} "
                     f"spill_bytes={spill_bytes} below the {spill_runs} run "
                     f"headers alone")
            if obj["rss_bytes"] > 0 and \
                    obj["total_bytes"] > obj["rss_bytes"] * 1.05:
                fail(f"{events_path}:{lineno}: exploration {obj['explore']} "
                     f"ledger total {obj['total_bytes']} exceeds sampled "
                     f"RSS {obj['rss_bytes']} by more than 5% — the ledger "
                     f"drifted from reality")
            prev = last_memory.get(obj["explore"])
            if prev is not None:
                pline, pobj = prev
                if pobj["done"]:
                    fail(f"{events_path}:{lineno}: memory_sample for "
                         f"exploration {obj['explore']} after its done "
                         f"sample (line {pline})")
                if obj["high_water_bytes"] < pobj["high_water_bytes"]:
                    fail(f"{events_path}:{lineno}: exploration "
                         f"{obj['explore']} high_water_bytes went backwards "
                         f"({pobj['high_water_bytes']} -> "
                         f"{obj['high_water_bytes']})")
            last_memory[obj["explore"]] = (lineno, obj)
            memory_samples += 1
        elif kind == "phase_start":
            phase_stacks[obj["explore"]].append(obj["phase"])
            if obj["phase"] == "explore":
                # A fresh explore phase re-bases the progress counters: the
                # previous exploration under this id must have completed.
                prev = last_progress.pop(obj["explore"], None)
                if prev is not None and not prev[1]["done"]:
                    fail(f"{events_path}:{lineno}: new explore phase for "
                         f"exploration {obj['explore']} but its previous "
                         f"progress (line {prev[0]}) never reached done=true")
                # Same re-basing for the memory ledger stream: a new explore
                # phase restarts the high-water mark from a fresh tracker.
                prev = last_memory.pop(obj["explore"], None)
                if prev is not None and not prev[1]["done"]:
                    fail(f"{events_path}:{lineno}: new explore phase for "
                         f"exploration {obj['explore']} but its previous "
                         f"memory_sample (line {prev[0]}) never reached "
                         f"done=true")
        elif kind == "phase_end":
            stack = phase_stacks[obj["explore"]]
            if not stack:
                fail(f"{events_path}:{lineno}: phase_end {obj['phase']!r} "
                     f"for exploration {obj['explore']} with no open phase")
            if stack[-1] != obj["phase"]:
                fail(f"{events_path}:{lineno}: phase_end {obj['phase']!r} "
                     f"does not match innermost open phase {stack[-1]!r} "
                     f"(exploration {obj['explore']})")
            stack.pop()
        elif kind == "explore_truncated":
            for field in ("explore", "nodes", "max_nodes", "frontier_size"):
                if field not in obj:
                    fail(f"{events_path}:{lineno}: explore_truncated "
                         f"missing {field}")
        elif kind == "search_progress":
            prev = last_search.get(obj["search"])
            if prev is not None:
                pline, pobj = prev
                if pobj["done"]:
                    fail(f"{events_path}:{lineno}: search_progress for "
                         f"search {obj['search']} after its done event "
                         f"(line {pline})")
                if obj["examined"] < pobj["examined"]:
                    fail(f"{events_path}:{lineno}: search {obj['search']} "
                         f"examined went backwards ({pobj['examined']} -> "
                         f"{obj['examined']})")
            if obj["examined"] > obj["total"]:
                fail(f"{events_path}:{lineno}: search {obj['search']} "
                     f"examined {obj['examined']} > total {obj['total']}")
            last_search[obj["search"]] = (lineno, obj)

    open_phases = {eid: s for eid, s in phase_stacks.items() if s}
    if open_phases:
        eid, stack = next(iter(open_phases.items()))
        fail(f"unclosed phases at EOF, e.g. exploration {eid} still "
             f"inside {stack!r}")
    for eid, (lineno, obj) in last_progress.items():
        if not obj["done"]:
            fail(f"{events_path}:{lineno}: exploration {eid}'s last "
                 f"explore_progress has done=false")
    for eid, (lineno, obj) in last_memory.items():
        if not obj["done"]:
            fail(f"{events_path}:{lineno}: exploration {eid}'s last "
                 f"memory_sample has done=false")
    for sid, (lineno, obj) in last_search.items():
        if not obj["done"]:
            fail(f"{events_path}:{lineno}: search {sid}'s last "
                 f"search_progress has done=false")
    return done_explorations, len(last_search), memory_samples


def check_campaign_family(events_path, events):
    """Orchestrator lifecycle: one campaign, consistent unit bookkeeping."""
    campaign = [(l, o) for l, o in events
                if o["event"] in CAMPAIGN_EVENTS]
    starts = [(l, o) for l, o in campaign if o["event"] == "campaign_start"]
    ends = [(l, o) for l, o in campaign if o["event"] == "campaign_end"]
    if len(starts) != 1:
        fail(f"{events_path}: {len(starts)} campaign_start events (want 1)")
    if len(ends) != 1:
        fail(f"{events_path}: {len(ends)} campaign_end events (want 1)")
    if campaign[0][1]["event"] != "campaign_start":
        fail(f"{events_path}:{campaign[0][0]}: campaign stream does not open "
             f"with campaign_start")
    if events[-1][1]["event"] != "campaign_end":
        fail(f"{events_path}: last event is {events[-1][1]['event']!r}, "
             f"not campaign_end")
    start, end = starts[0][1], ends[0][1]
    for field in ("units", "shards", "workers", "resumed"):
        if field not in start:
            fail(f"{events_path}:{starts[0][0]}: campaign_start missing "
                 f"{field}")
    for field in ("completed", "failed", "total", "interrupted"):
        if field not in end:
            fail(f"{events_path}:{ends[0][0]}: campaign_end missing {field}")

    unit_end = {}            # unit -> status
    started_units = set()
    retry_attempts = {}      # unit -> last reported attempt
    failed_units = set()
    resource_samples = 0
    spawns, exits = Counter(), Counter()
    for lineno, obj in campaign:
        kind = obj["event"]
        if kind == "shard_spawn":
            for field in ("shard", "pid", "spawn"):
                if field not in obj:
                    fail(f"{events_path}:{lineno}: shard_spawn missing "
                         f"{field}")
            spawns[obj["shard"]] += 1
        elif kind == "shard_exit":
            exits[obj["shard"]] += 1
        elif kind == "unit_start":
            started_units.add(obj["unit"])
        elif kind == "unit_end":
            if obj["unit"] in unit_end:
                fail(f"{events_path}:{lineno}: duplicate unit_end for unit "
                     f"{obj['unit']}")
            if obj.get("status") not in UNIT_STATUSES:
                fail(f"{events_path}:{lineno}: unit_end status "
                     f"{obj.get('status')!r} not in {UNIT_STATUSES}")
            unit_end[obj["unit"]] = obj["status"]
        elif kind == "unit_retry":
            for field in ("unit", "attempt", "backoff_ms", "reason"):
                if field not in obj:
                    fail(f"{events_path}:{lineno}: unit_retry missing "
                         f"{field}")
            prev = retry_attempts.get(obj["unit"], 0)
            if obj["attempt"] <= prev:
                fail(f"{events_path}:{lineno}: unit {obj['unit']} retry "
                     f"attempt {obj['attempt']} not greater than {prev}")
            retry_attempts[obj["unit"]] = obj["attempt"]
        elif kind == "unit_failed":
            if obj["unit"] in failed_units:
                fail(f"{events_path}:{lineno}: duplicate unit_failed for "
                     f"unit {obj['unit']}")
            failed_units.add(obj["unit"])
        elif kind == "resource_sample":
            for field in RESOURCE_SAMPLE_FIELDS:
                if field not in obj:
                    fail(f"{events_path}:{lineno}: resource_sample missing "
                         f"{field}")
            # Sampling runs in the orchestrator poll loop AFTER the spawn
            # pass, so every sample's shard has a spawn earlier in-stream.
            if obj["shard"] not in spawns:
                fail(f"{events_path}:{lineno}: resource_sample for shard "
                     f"{obj['shard']} before its shard_spawn")
            if obj["pid"] <= 0:
                fail(f"{events_path}:{lineno}: resource_sample with "
                     f"non-positive pid {obj['pid']}")
            resource_samples += 1

    for shard, n in exits.items():
        if n > spawns[shard]:
            fail(f"{events_path}: shard {shard} has {n} exits but only "
                 f"{spawns[shard]} spawns")

    if not end["interrupted"] and not start["resumed"]:
        # A fresh uninterrupted campaign accounts for every unit in-stream.
        # (A resumed session only re-observes units it executed itself.)
        if len(unit_end) != end["total"]:
            fail(f"{events_path}: {len(unit_end)} unit_end events but "
                 f"campaign_end.total={end['total']}")
        completed = sum(1 for s in unit_end.values() if s != "failed")
        failed = sum(1 for s in unit_end.values() if s == "failed")
        if completed != end["completed"] or failed != end["failed"]:
            fail(f"{events_path}: campaign_end says "
                 f"completed={end['completed']} failed={end['failed']}, "
                 f"unit_end statuses say {completed}/{failed}")
        missing = started_units - set(unit_end)
        if missing:
            fail(f"{events_path}: units started but never ended: "
                 f"{sorted(missing)[:5]}")
    return len(unit_end), len(failed_units), sum(spawns.values()), \
        resource_samples


def check_trace(trace_path):
    """Structural validation of a Chrome trace_event export."""
    with open(trace_path, encoding="utf-8") as f:
        try:
            trace = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{trace_path}: invalid JSON: {e}")
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        fail(f"{trace_path}: not an object with a traceEvents list")
    if not isinstance(trace["traceEvents"], list):
        fail(f"{trace_path}: traceEvents is not a list")
    if trace.get("displayTimeUnit") not in ("ms", "ns"):
        fail(f"{trace_path}: displayTimeUnit "
             f"{trace.get('displayTimeUnit')!r} not ms/ns")

    # Merged campaign traces (E25) interleave several processes, so tracks
    # are keyed (pid, tid), not tid alone, and metadata comes in two kinds:
    # thread_name labels a (pid, tid) track, process_name labels a pid.
    stacks = defaultdict(list)   # (pid, tid) -> [open B names]
    named_tracks, named_pids, used_tracks = set(), set(), set()
    counts = Counter()
    for i, ev in enumerate(trace["traceEvents"]):
        if not isinstance(ev, dict):
            fail(f"{trace_path}: traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if ph not in ("B", "E", "i", "C", "M"):
            fail(f"{trace_path}: traceEvents[{i}]: unexpected ph {ph!r}")
        for field in ("name", "pid", "tid"):
            if field not in ev:
                fail(f"{trace_path}: traceEvents[{i}]: missing {field}")
        track = (ev["pid"], ev["tid"])
        counts[ph] += 1
        if ph == "M":
            if ev["name"] == "thread_name":
                named_tracks.add(track)
            elif ev["name"] == "process_name":
                named_pids.add(ev["pid"])
            else:
                fail(f"{trace_path}: traceEvents[{i}]: metadata name "
                     f"{ev['name']!r} (expected 'thread_name' or "
                     f"'process_name')")
            continue
        if "ts" not in ev:
            fail(f"{trace_path}: traceEvents[{i}]: missing ts")
        if ph == "i" and ev["name"] == "events_dropped":
            # The writer's synthetic drop marker (pid 1, tid 0) carries no
            # metadata record by design.
            continue
        used_tracks.add(track)
        if ph == "B":
            stacks[track].append(ev["name"])
        elif ph == "E":
            if not stacks[track]:
                fail(f"{trace_path}: traceEvents[{i}]: E {ev['name']!r} on "
                     f"track {track} with no open B")
            if stacks[track][-1] != ev["name"]:
                fail(f"{trace_path}: traceEvents[{i}]: E {ev['name']!r} "
                     f"does not close innermost B {stacks[track][-1]!r} "
                     f"on track {track}")
            stacks[track].pop()

    open_spans = {t: s for t, s in stacks.items() if s}
    if open_spans:
        track, names = next(iter(open_spans.items()))
        fail(f"{trace_path}: track {track} has unclosed spans {names!r}")
    # A used track must be labelled, either directly (thread_name) or via
    # its process (process_name) — e.g. the counter track of a shard worker
    # that was SIGKILLed before its own event stream existed.
    unnamed = {t for t in used_tracks
               if t not in named_tracks and t[0] not in named_pids}
    if unnamed:
        fail(f"{trace_path}: tracks without thread_name/process_name "
             f"metadata: {sorted(unnamed)[:5]}")
    return counts


HEALTH_ROLLUPS = ("completed", "failed", "retries", "stalls", "kills")
HEALTH_SHARD_FIELDS = (
    "shard", "spawns", "completed", "failed", "retries", "stalls", "kills",
    "active_ms", "units_per_sec", "latency_samples", "mean_unit_latency_ms",
    "peak_rss_bytes", "peak_cpu_permille", "straggler", "retry_storm",
)


def reject_constant(token):
    fail(f"health document contains non-finite number {token!r}")


def check_health(health_path):
    """Validates a campaign_health.json checksummed artifact (E25)."""
    with open(health_path, "rb") as f:
        raw = f.read()
    if not raw.endswith(b"\n"):
        fail(f"{health_path}: missing trailing newline (torn write?)")
    lines = raw.decode("utf-8").splitlines()
    if len(lines) < 2:
        fail(f"{health_path}: {len(lines)} lines (want document + footer)")
    try:
        footer = json.loads(lines[-1])
    except json.JSONDecodeError as e:
        fail(f"{health_path}: invalid footer JSON: {e}")
    if footer.get("event") != "artifact_footer":
        fail(f"{health_path}: last line is not an artifact_footer")
    body = "".join(line + "\n" for line in lines[:-1])
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    if crc != footer.get("crc32"):
        fail(f"{health_path}: footer crc32 {footer.get('crc32')} does not "
             f"match body crc32 {crc}")
    if footer.get("lines") != len(lines) - 1:
        fail(f"{health_path}: footer says {footer.get('lines')} lines, "
             f"body has {len(lines) - 1}")
    if len(lines) != 2:
        fail(f"{health_path}: expected exactly one health document, got "
             f"{len(lines) - 1} body lines")
    try:
        doc = json.loads(lines[0], parse_constant=reject_constant)
    except json.JSONDecodeError as e:
        fail(f"{health_path}: invalid health JSON: {e}")
    if doc.get("kind") != "ppn-campaign-health":
        fail(f"{health_path}: unexpected kind {doc.get('kind')!r}")
    for field in ("finished", "interrupted", "units", "elapsed_ms",
                  "units_per_sec", "median_unit_latency_ms", "peak_rss",
                  "shards", "stragglers") + HEALTH_ROLLUPS:
        if field not in doc:
            fail(f"{health_path}: missing field {field!r}")

    shards = doc["shards"]
    if not isinstance(shards, list):
        fail(f"{health_path}: shards is not a list")
    for row in shards:
        for field in HEALTH_SHARD_FIELDS:
            if field not in row:
                fail(f"{health_path}: shard row {row.get('shard')!r} "
                     f"missing {field!r}")
    for rollup in HEALTH_ROLLUPS:
        total = sum(row[rollup] for row in shards)
        if doc[rollup] != total:
            fail(f"{health_path}: {rollup}={doc[rollup]} but shard rows "
                 f"sum to {total}")
    flagged = [row["shard"] for row in shards if row["straggler"]]
    if doc["stragglers"] != flagged:
        fail(f"{health_path}: stragglers={doc['stragglers']} but flagged "
             f"shard rows are {flagged}")
    peak = doc["peak_rss"]
    if shards and any(row["peak_rss_bytes"] > 0 for row in shards):
        hungriest = max(shards, key=lambda row: row["peak_rss_bytes"])
        if not isinstance(peak, dict):
            fail(f"{health_path}: peak_rss is {peak!r} despite shard rows "
                 f"with peak_rss_bytes > 0")
        if peak["bytes"] != hungriest["peak_rss_bytes"]:
            fail(f"{health_path}: peak_rss.bytes={peak['bytes']} but the "
                 f"hungriest shard row has {hungriest['peak_rss_bytes']}")
        if not any(row["shard"] == peak["shard"] and
                   row["peak_rss_bytes"] == peak["bytes"] for row in shards):
            fail(f"{health_path}: peak_rss attributes shard {peak['shard']} "
                 f"which does not have peak_rss_bytes={peak['bytes']}")
    elif peak is not None:
        fail(f"{health_path}: peak_rss should be null without resource "
             f"samples, got {peak!r}")
    return len(shards), doc["stragglers"]


def main(argv):
    positional, trace_path, health_path = [], None, None
    i = 1
    while i < len(argv):
        if argv[i] == "--trace":
            if i + 1 >= len(argv):
                fail("--trace requires a file argument")
            trace_path = argv[i + 1]
            i += 2
        elif argv[i] == "--health":
            if i + 1 >= len(argv):
                fail("--health requires a file argument")
            health_path = argv[i + 1]
            i += 2
        elif argv[i].startswith("--"):
            fail(f"unknown option {argv[i]!r}")
        else:
            positional.append(argv[i])
            i += 1
    if len(positional) < 1:
        fail(f"usage: {argv[0]} events.jsonl [metrics.json] [table.json] "
             f"[--trace trace.json] [--health health.json]")
    events_path = positional[0]
    metrics_path = positional[1] if len(positional) > 1 else None
    table_path = positional[2] if len(positional) > 2 else None

    events = load_events(events_path)
    kinds = Counter(obj["event"] for _, obj in events)
    has_runs = any(k in RUN_EVENTS for k in kinds)
    has_explore = any(k in EXPLORE_EVENTS for k in kinds)
    has_campaign = any(k in CAMPAIGN_EVENTS for k in kinds)
    if not has_runs and not has_explore and not has_campaign:
        fail("event stream is empty")

    ends = Counter()
    if has_runs:
        ends = check_run_family(events_path, events)
    explorations, searches, memory_samples = 0, 0, 0
    if has_explore:
        explorations, searches, memory_samples = \
            check_explore_family(events_path, events)
    unit_ends, unit_fails, shard_spawns, resource_samples = 0, 0, 0, 0
    if has_campaign:
        unit_ends, unit_fails, shard_spawns, resource_samples = \
            check_campaign_family(events_path, events)

    if (has_runs or has_explore) and metrics_path is None:
        fail("run/explore events present but no metrics.json argument")
    if metrics_path is not None:
        with open(metrics_path, encoding="utf-8") as f:
            metrics = json.load(f)
        if metrics.get("kind") != "ppn-metrics":
            fail(f"{metrics_path}: unexpected kind {metrics.get('kind')!r}")
        counters = metrics.get("counters", {})
        expectations = []
        if has_runs:
            expectations += [
                ("runs_started", sum(ends.values())),
                ("runs_ended", sum(ends.values())),
                ("faults_injected", kinds["fault_injected"]),
                ("watchdog_aborts", kinds["watchdog_abort"]),
            ]
        if has_explore:
            expectations += [
                ("explorations", explorations),
                ("explorations_truncated", kinds["explore_truncated"]),
                ("explore_phases", kinds["phase_end"]),
            ]
        for name, expected in expectations:
            got = counters.get(name)
            if got != expected:
                fail(f"{metrics_path}: counter {name}={got}, "
                     f"event stream says {expected}")

    if table_path:
        with open(table_path, encoding="utf-8") as f:
            table = json.load(f)
        if has_runs and "cells" in table:
            table_runs = sum(cell.get("runs", 0)
                             for cell in table.get("cells", [])
                             if cell.get("verdict") != "skipped")
            if table_runs != sum(ends.values()):
                fail(f"{table_path}: table accounts for {table_runs} runs, "
                     f"event stream has {sum(ends.values())}")
        rows = table.get("jobs", []) + [c for c in table.get("cells", [])
                                        if "verdict" in c]
        for row in rows:
            # jobs rows use the search vocabulary, cells rows the
            # certification one (faults/certify.cpp cellVerdictName).
            if str(row.get("verdict")).lower() not in (
                    "pass", "fail", "unknown", "skipped", "certified",
                    "failed", "evidence", "degraded"):
                fail(f"{table_path}: row "
                     f"{row.get('claim', row.get('cell'))!r} has unexpected "
                     f"verdict {row.get('verdict')!r}")

    trace_note = ""
    if trace_path:
        counts = check_trace(trace_path)
        trace_note = (f", trace OK ({counts['B']} spans, {counts['C']} "
                      f"counter samples, {counts['M']} tracks)")
    health_note = ""
    if health_path:
        health_shards, stragglers = check_health(health_path)
        health_note = (f", health OK ({health_shards} shards, "
                       f"stragglers={stragglers})")

    parts = []
    if has_runs:
        parts.append(f"{sum(ends.values())} runs, "
                     f"{kinds['fault_injected']} faults")
    if has_explore:
        parts.append(f"{explorations} explorations, {searches} searches, "
                     f"{memory_samples} memory samples")
    if has_campaign:
        parts.append(f"{unit_ends} units ({unit_fails} failed, "
                     f"{shard_spawns} shard spawns, "
                     f"{resource_samples} resource samples)")
    metrics_note = ", metrics consistent" if metrics_path else ""
    print(f"check_telemetry: OK — {', '.join(parts)}, "
          f"{sum(kinds.values())} events{metrics_note}{trace_note}"
          f"{health_note}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
