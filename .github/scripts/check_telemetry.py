#!/usr/bin/env python3
"""Validates the telemetry smoke artifacts produced in CI.

Two event families share the JSONL stream format; each is validated when
present, and at least one must be:

Run family (the E20 acceptance contract — robustness_table):
  * run_start/run_end events pair one-to-one per run id;
  * fault_injected / watchdog_abort / cancelled events carry a run id that
    belongs to a started run;
  * metrics endpoint counters agree with the event stream (runs_ended ==
    run_end lines, faults_injected == fault_injected lines) and with the
    robustness-table JSON's run count.

Explore family (the E22 acceptance contract — lower_bound_search etc.):
  * per exploration id, explore_progress node/edge counts are monotone
    non-decreasing WITHIN each explore phase and the phase ends with a
    done=true event. Monotonicity is per phase, not global: parallel
    candidate dispatch (E23) interleaves many explorations' events in one
    stream, and an id whose explore phase restarts legitimately resets its
    counts — each phase_start of an "explore" phase re-bases the check;
  * phase_start/phase_end nest LIFO per exploration id (phase_end always
    closes the innermost open phase) and every phase is closed by EOF;
  * per search id, search_progress examined counts are monotone,
    examined <= total, and the stream ends with done=true;
  * metrics counters agree: explorations == done explore_progress lines,
    explorations_truncated == explore_truncated lines, explore_phases ==
    phase_end lines.

With --trace FILE, also validates a Chrome trace_event export:
  * top-level object with a traceEvents list and displayTimeUnit;
  * every duration track balances its B/E events as a stack, with each E
    naming the innermost open B;
  * every track that carries events has thread_name metadata.

Every JSONL line must parse as a JSON object with an "event" discriminator
and an "elapsed_ms" timestamp.

Usage: check_telemetry.py events.jsonl metrics.json [table.json]
                          [--trace trace.json]
"""
import json
import sys
from collections import Counter, defaultdict

RUN_EVENTS = {
    "run_start", "run_end", "fault_injected", "watchdog_abort",
    "cancelled", "batch_progress",
}
EXPLORE_EVENTS = {
    "explore_progress", "phase_start", "phase_end", "explore_truncated",
    "search_progress",
}
KNOWN_EVENTS = RUN_EVENTS | EXPLORE_EVENTS


def fail(msg):
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_events(events_path):
    events = []
    with open(events_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                fail(f"{events_path}:{lineno}: blank line")
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{events_path}:{lineno}: invalid JSON: {e}")
            if not isinstance(obj, dict):
                fail(f"{events_path}:{lineno}: not an object")
            kind = obj.get("event")
            if kind not in KNOWN_EVENTS:
                fail(f"{events_path}:{lineno}: unknown event {kind!r}")
            if "elapsed_ms" not in obj:
                fail(f"{events_path}:{lineno}: missing elapsed_ms")
            events.append((lineno, obj))
    return events


def check_run_family(events_path, events):
    starts, ends = Counter(), Counter()
    for lineno, obj in events:
        kind = obj["event"]
        if kind == "run_start":
            starts[obj["run"]] += 1
        elif kind == "run_end":
            ends[obj["run"]] += 1
        elif kind in ("fault_injected", "watchdog_abort", "cancelled"):
            if "run" not in obj:
                fail(f"{events_path}:{lineno}: {kind} without run id")

    if not starts:
        fail("run-family events present but no run_start at all")
    if starts != ends:
        only_start = set(starts) - set(ends)
        only_end = set(ends) - set(starts)
        fail(f"unpaired runs: started-not-ended={sorted(only_start)[:5]} "
             f"ended-not-started={sorted(only_end)[:5]}")
    dups = [r for r, n in starts.items() if n != 1]
    if dups:
        fail(f"runs with duplicate start/end events: {sorted(dups)[:5]}")

    for lineno, obj in events:
        if obj["event"] in ("fault_injected", "watchdog_abort",
                            "cancelled") and obj["run"] not in starts:
            fail(f"{events_path}:{lineno}: {obj['event']} references "
                 f"unknown run {obj['run']}")
    return ends


def check_explore_family(events_path, events):
    """Monotone progress per exploration, LIFO phases, monotone searches."""
    last_progress = {}                 # explore id -> (lineno, obj)
    phase_stacks = defaultdict(list)   # explore id -> [open phase names]
    last_search = {}                   # search id -> (lineno, obj)
    done_explorations = 0
    for lineno, obj in events:
        kind = obj["event"]
        if kind == "explore_progress":
            if obj["done"]:
                done_explorations += 1
            prev = last_progress.get(obj["explore"])
            if prev is not None:
                pline, pobj = prev
                if pobj["done"]:
                    fail(f"{events_path}:{lineno}: explore_progress for "
                         f"exploration {obj['explore']} after its done "
                         f"event (line {pline})")
                for field in ("nodes", "edges"):
                    if obj[field] < pobj[field]:
                        fail(f"{events_path}:{lineno}: exploration "
                             f"{obj['explore']} {field} went backwards "
                             f"({pobj[field]} -> {obj[field]})")
            last_progress[obj["explore"]] = (lineno, obj)
        elif kind == "phase_start":
            phase_stacks[obj["explore"]].append(obj["phase"])
            if obj["phase"] == "explore":
                # A fresh explore phase re-bases the progress counters: the
                # previous exploration under this id must have completed.
                prev = last_progress.pop(obj["explore"], None)
                if prev is not None and not prev[1]["done"]:
                    fail(f"{events_path}:{lineno}: new explore phase for "
                         f"exploration {obj['explore']} but its previous "
                         f"progress (line {prev[0]}) never reached done=true")
        elif kind == "phase_end":
            stack = phase_stacks[obj["explore"]]
            if not stack:
                fail(f"{events_path}:{lineno}: phase_end {obj['phase']!r} "
                     f"for exploration {obj['explore']} with no open phase")
            if stack[-1] != obj["phase"]:
                fail(f"{events_path}:{lineno}: phase_end {obj['phase']!r} "
                     f"does not match innermost open phase {stack[-1]!r} "
                     f"(exploration {obj['explore']})")
            stack.pop()
        elif kind == "explore_truncated":
            for field in ("explore", "nodes", "max_nodes", "frontier_size"):
                if field not in obj:
                    fail(f"{events_path}:{lineno}: explore_truncated "
                         f"missing {field}")
        elif kind == "search_progress":
            prev = last_search.get(obj["search"])
            if prev is not None:
                pline, pobj = prev
                if pobj["done"]:
                    fail(f"{events_path}:{lineno}: search_progress for "
                         f"search {obj['search']} after its done event "
                         f"(line {pline})")
                if obj["examined"] < pobj["examined"]:
                    fail(f"{events_path}:{lineno}: search {obj['search']} "
                         f"examined went backwards ({pobj['examined']} -> "
                         f"{obj['examined']})")
            if obj["examined"] > obj["total"]:
                fail(f"{events_path}:{lineno}: search {obj['search']} "
                     f"examined {obj['examined']} > total {obj['total']}")
            last_search[obj["search"]] = (lineno, obj)

    open_phases = {eid: s for eid, s in phase_stacks.items() if s}
    if open_phases:
        eid, stack = next(iter(open_phases.items()))
        fail(f"unclosed phases at EOF, e.g. exploration {eid} still "
             f"inside {stack!r}")
    for eid, (lineno, obj) in last_progress.items():
        if not obj["done"]:
            fail(f"{events_path}:{lineno}: exploration {eid}'s last "
                 f"explore_progress has done=false")
    for sid, (lineno, obj) in last_search.items():
        if not obj["done"]:
            fail(f"{events_path}:{lineno}: search {sid}'s last "
                 f"search_progress has done=false")
    return done_explorations, len(last_search)


def check_trace(trace_path):
    """Structural validation of a Chrome trace_event export."""
    with open(trace_path, encoding="utf-8") as f:
        try:
            trace = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{trace_path}: invalid JSON: {e}")
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        fail(f"{trace_path}: not an object with a traceEvents list")
    if not isinstance(trace["traceEvents"], list):
        fail(f"{trace_path}: traceEvents is not a list")
    if trace.get("displayTimeUnit") not in ("ms", "ns"):
        fail(f"{trace_path}: displayTimeUnit "
             f"{trace.get('displayTimeUnit')!r} not ms/ns")

    stacks = defaultdict(list)   # tid -> [open B names]
    named_tids, used_tids = set(), set()
    counts = Counter()
    for i, ev in enumerate(trace["traceEvents"]):
        if not isinstance(ev, dict):
            fail(f"{trace_path}: traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if ph not in ("B", "E", "i", "C", "M"):
            fail(f"{trace_path}: traceEvents[{i}]: unexpected ph {ph!r}")
        for field in ("name", "pid", "tid"):
            if field not in ev:
                fail(f"{trace_path}: traceEvents[{i}]: missing {field}")
        tid = ev["tid"]
        counts[ph] += 1
        if ph == "M":
            if ev["name"] != "thread_name":
                fail(f"{trace_path}: traceEvents[{i}]: metadata name "
                     f"{ev['name']!r} (expected 'thread_name')")
            named_tids.add(tid)
            continue
        if "ts" not in ev:
            fail(f"{trace_path}: traceEvents[{i}]: missing ts")
        used_tids.add(tid)
        if ph == "B":
            stacks[tid].append(ev["name"])
        elif ph == "E":
            if not stacks[tid]:
                fail(f"{trace_path}: traceEvents[{i}]: E {ev['name']!r} on "
                     f"track {tid} with no open B")
            if stacks[tid][-1] != ev["name"]:
                fail(f"{trace_path}: traceEvents[{i}]: E {ev['name']!r} "
                     f"does not close innermost B {stacks[tid][-1]!r} "
                     f"on track {tid}")
            stacks[tid].pop()

    open_spans = {tid: s for tid, s in stacks.items() if s}
    if open_spans:
        tid, names = next(iter(open_spans.items()))
        fail(f"{trace_path}: track {tid} has unclosed spans {names!r}")
    # Track 0 only ever carries the synthetic events_dropped instant, which
    # the writer emits without a matching metadata record.
    unnamed = {t for t in used_tids if t != 0} - named_tids
    if unnamed:
        fail(f"{trace_path}: tracks without thread_name metadata: "
             f"{sorted(unnamed)[:5]}")
    return counts


def main(argv):
    positional, trace_path = [], None
    i = 1
    while i < len(argv):
        if argv[i] == "--trace":
            if i + 1 >= len(argv):
                fail("--trace requires a file argument")
            trace_path = argv[i + 1]
            i += 2
        elif argv[i].startswith("--"):
            fail(f"unknown option {argv[i]!r}")
        else:
            positional.append(argv[i])
            i += 1
    if len(positional) < 2:
        fail(f"usage: {argv[0]} events.jsonl metrics.json [table.json] "
             f"[--trace trace.json]")
    events_path, metrics_path = positional[0], positional[1]
    table_path = positional[2] if len(positional) > 2 else None

    events = load_events(events_path)
    kinds = Counter(obj["event"] for _, obj in events)
    has_runs = any(k in RUN_EVENTS for k in kinds)
    has_explore = any(k in EXPLORE_EVENTS for k in kinds)
    if not has_runs and not has_explore:
        fail("event stream is empty")

    ends = Counter()
    if has_runs:
        ends = check_run_family(events_path, events)
    explorations, searches = 0, 0
    if has_explore:
        explorations, searches = check_explore_family(events_path, events)

    with open(metrics_path, encoding="utf-8") as f:
        metrics = json.load(f)
    if metrics.get("kind") != "ppn-metrics":
        fail(f"{metrics_path}: unexpected kind {metrics.get('kind')!r}")
    counters = metrics.get("counters", {})
    expectations = []
    if has_runs:
        expectations += [
            ("runs_started", sum(ends.values())),
            ("runs_ended", sum(ends.values())),
            ("faults_injected", kinds["fault_injected"]),
            ("watchdog_aborts", kinds["watchdog_abort"]),
        ]
    if has_explore:
        expectations += [
            ("explorations", explorations),
            ("explorations_truncated", kinds["explore_truncated"]),
            ("explore_phases", kinds["phase_end"]),
        ]
    for name, expected in expectations:
        got = counters.get(name)
        if got != expected:
            fail(f"{metrics_path}: counter {name}={got}, "
                 f"event stream says {expected}")

    if table_path:
        with open(table_path, encoding="utf-8") as f:
            table = json.load(f)
        if has_runs and "cells" in table:
            table_runs = sum(cell.get("runs", 0)
                             for cell in table.get("cells", [])
                             if cell.get("verdict") != "skipped")
            if table_runs != sum(ends.values()):
                fail(f"{table_path}: table accounts for {table_runs} runs, "
                     f"event stream has {sum(ends.values())}")
        rows = table.get("jobs", []) + [c for c in table.get("cells", [])
                                        if "verdict" in c]
        for row in rows:
            if str(row.get("verdict")).lower() not in ("pass", "fail",
                                                       "unknown", "skipped"):
                fail(f"{table_path}: row "
                     f"{row.get('claim', row.get('cell'))!r} has unexpected "
                     f"verdict {row.get('verdict')!r}")

    trace_note = ""
    if trace_path:
        counts = check_trace(trace_path)
        trace_note = (f", trace OK ({counts['B']} spans, {counts['C']} "
                      f"counter samples, {counts['M']} tracks)")

    parts = []
    if has_runs:
        parts.append(f"{sum(ends.values())} runs, "
                     f"{kinds['fault_injected']} faults")
    if has_explore:
        parts.append(f"{explorations} explorations, {searches} searches")
    print(f"check_telemetry: OK — {', '.join(parts)}, "
          f"{sum(kinds.values())} events, metrics consistent{trace_note}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
