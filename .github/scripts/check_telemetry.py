#!/usr/bin/env python3
"""Validates the telemetry smoke artifacts produced in CI.

Checks (the E20 acceptance contract):
  * every line of the JSONL event stream parses as a JSON object with an
    "event" discriminator and an "elapsed_ms" timestamp;
  * run_start/run_end events pair one-to-one per run id;
  * fault_injected / watchdog_abort / cancelled events carry a run id that
    belongs to a started run;
  * the metrics snapshot parses, and its endpoint counters agree with the
    event stream (runs_ended == run_end lines, faults_injected ==
    fault_injected lines) and with the robustness-table JSON's run count.

Usage: check_telemetry.py events.jsonl metrics.json [table.json]
"""
import json
import sys
from collections import Counter

KNOWN_EVENTS = {
    "run_start", "run_end", "fault_injected", "watchdog_abort",
    "cancelled", "batch_progress",
}


def fail(msg):
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) < 3:
        fail(f"usage: {argv[0]} events.jsonl metrics.json [table.json]")
    events_path, metrics_path = argv[1], argv[2]
    table_path = argv[3] if len(argv) > 3 else None

    starts, ends = Counter(), Counter()
    kinds = Counter()
    with open(events_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                fail(f"{events_path}:{lineno}: blank line")
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{events_path}:{lineno}: invalid JSON: {e}")
            if not isinstance(obj, dict):
                fail(f"{events_path}:{lineno}: not an object")
            kind = obj.get("event")
            if kind not in KNOWN_EVENTS:
                fail(f"{events_path}:{lineno}: unknown event {kind!r}")
            if "elapsed_ms" not in obj:
                fail(f"{events_path}:{lineno}: missing elapsed_ms")
            kinds[kind] += 1
            if kind == "run_start":
                starts[obj["run"]] += 1
            elif kind == "run_end":
                ends[obj["run"]] += 1
            elif kind in ("fault_injected", "watchdog_abort", "cancelled"):
                if "run" not in obj:
                    fail(f"{events_path}:{lineno}: {kind} without run id")

    if not starts:
        fail("no run_start events at all")
    if starts != ends:
        only_start = set(starts) - set(ends)
        only_end = set(ends) - set(starts)
        fail(f"unpaired runs: started-not-ended={sorted(only_start)[:5]} "
             f"ended-not-started={sorted(only_end)[:5]}")
    dups = [r for r, n in starts.items() if n != 1]
    if dups:
        fail(f"runs with duplicate start/end events: {sorted(dups)[:5]}")

    with open(events_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            obj = json.loads(line)
            if obj["event"] in ("fault_injected", "watchdog_abort",
                                "cancelled") and obj["run"] not in starts:
                fail(f"{events_path}:{lineno}: {obj['event']} references "
                     f"unknown run {obj['run']}")

    with open(metrics_path, encoding="utf-8") as f:
        metrics = json.load(f)
    if metrics.get("kind") != "ppn-metrics":
        fail(f"{metrics_path}: unexpected kind {metrics.get('kind')!r}")
    counters = metrics.get("counters", {})
    for name, expected in (("runs_started", sum(starts.values())),
                           ("runs_ended", sum(ends.values())),
                           ("faults_injected", kinds["fault_injected"]),
                           ("watchdog_aborts", kinds["watchdog_abort"])):
        got = counters.get(name)
        if got != expected:
            fail(f"{metrics_path}: counter {name}={got}, "
                 f"event stream says {expected}")

    if table_path:
        with open(table_path, encoding="utf-8") as f:
            table = json.load(f)
        table_runs = sum(cell.get("runs", 0) for cell in table.get("cells", [])
                         if cell.get("verdict") != "skipped")
        if table_runs != sum(ends.values()):
            fail(f"{table_path}: table accounts for {table_runs} runs, "
                 f"event stream has {sum(ends.values())}")

    print(f"check_telemetry: OK — {sum(ends.values())} runs, "
          f"{kinds['fault_injected']} faults, "
          f"{sum(kinds.values())} events, metrics consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
