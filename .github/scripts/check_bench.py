#!/usr/bin/env python3
"""Validates the step-throughput report produced by the CI bench smoke job.

Checks (the E21 acceptance contract's CI-checkable core):
  * the report parses, carries the expected "ppn-step-throughput" kind and a
    non-empty row per measurement;
  * every row has positive interpreted and compiled throughputs and a
    consistent speedup field (compiled / interpreted);
  * the compiled fast path is never SLOWER than the interpreted reference
    (speedup >= 1.0) — the regression this guard exists to catch. The full
    >= 3x target is asserted on the committed BENCH_step_throughput.json, not
    on shared CI runners whose absolute throughput is noisy.

Usage: check_bench.py BENCH_step_throughput.json [min_speedup]
"""
import json
import sys

EXPECTED_PROTOCOLS = {
    "asymmetric", "symmetric-global", "leader-uniform",
    "counting", "selfstab-weak", "global-leader",
}


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) < 2:
        fail(f"usage: {argv[0]} BENCH_step_throughput.json [min_speedup]")
    path = argv[1]
    min_speedup = float(argv[2]) if len(argv) > 2 else 1.0

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if doc.get("kind") != "ppn-step-throughput":
        fail(f"{path}: kind is {doc.get('kind')!r}")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: empty or missing rows")

    seen = set()
    for row in rows:
        proto = row.get("protocol")
        if proto not in EXPECTED_PROTOCOLS:
            fail(f"unknown protocol {proto!r}")
        if proto in seen:
            fail(f"duplicate row for {proto!r}")
        seen.add(proto)
        interp = row.get("interpretedStepsPerSec", 0.0)
        compiled = row.get("compiledStepsPerSec", 0.0)
        speedup = row.get("speedup", 0.0)
        if not interp > 0.0 or not compiled > 0.0:
            fail(f"{proto}: non-positive throughput "
                 f"(interp={interp}, compiled={compiled})")
        if abs(speedup - compiled / interp) > 1e-6 * speedup:
            fail(f"{proto}: speedup field {speedup} inconsistent with "
                 f"{compiled}/{interp}")
        if speedup < min_speedup:
            fail(f"{proto}: compiled path speedup {speedup:.2f}x is below "
                 f"the {min_speedup:.2f}x floor — the compiled kernel "
                 f"regressed relative to the interpreted reference")

    missing = EXPECTED_PROTOCOLS - seen
    if missing:
        fail(f"missing rows for {sorted(missing)}")

    print(f"check_bench: OK: {len(rows)} protocols, speedups "
          + ", ".join(f"{r['protocol']}={r['speedup']:.2f}x" for r in rows))


if __name__ == "__main__":
    main(sys.argv)
