#!/usr/bin/env python3
"""Validates the throughput reports produced by the CI bench smoke job.

Three report kinds, dispatched on the "kind" field:

ppn-step-throughput (E21):
  * the report parses, carries the expected kind and a non-empty row per
    measurement;
  * every row has positive interpreted and compiled throughputs and a
    consistent speedup field (compiled / interpreted);
  * the compiled fast path is never SLOWER than the interpreted reference
    (speedup >= 1.0) — the regression this guard exists to catch. The full
    >= 3x target is asserted on the committed BENCH_step_throughput.json, not
    on shared CI runners whose absolute throughput is noisy.

ppn-explore-throughput (E23):
  * every explore case carries a threads=1 baseline row plus parallel rows
    with positive rates, consistent speedup fields, and — the determinism
    contract — IDENTICAL node counts and truncation flags across all thread
    counts;
  * every search case likewise has identical candidate counts across rows;
  * the min_speedup floor applies to the best parallel row of each case, and
    only when the report was generated on a machine with >= 4 hardware
    threads (a 1-core container honestly reports ~1.0x; the committed
    baseline may come from such a box, while CI runners regenerate and gate).
    On a < 4-thread box the parallel gates are SKIPPED, not failed: the floor
    is waived and cases are allowed to carry no threads > 1 rows at all. The
    determinism invariants (identical node/candidate counts across whatever
    thread counts were measured) are enforced unconditionally.

ppn-batch-throughput (E26):
  * every registry protocol has exactly one row with positive single-run,
    per-lane, and aggregate rates, internally consistent (aggregate =
    perLane * lanes; speedup = aggregate / singleRun);
  * identicalToScalar is true on EVERY row — the SoA lane kernel produced
    bit-identical RunOutcomes to per-lane scalar reruns. This is the
    determinism contract and is enforced unconditionally: a report from a
    1-core box still proves bit-identity, it just cannot prove a speedup;
  * the min_speedup aggregate floor (the >= 10x tentpole target) applies
    only when the report came from a machine with >= 8 hardware threads
    whose engine pool actually spanned them — on smaller boxes the floor is
    SKIPPED, not failed (lane batching cannot beat one dedicated core when
    there is only one core).

ppn-explore-memory (E27/E28):
  * every registry protocol has exactly one row per graph storage
    ("explicit" and "compressed") whose per-component ledger bytes
    (configs/adjacency/dedup/frontier/codec) sum exactly to totalBytes,
    with highWaterBytes >= totalBytes and a consistent bytesPerNode =
    totalBytes / nodes. Node counts must be IDENTICAL across the two
    storages — the compressed representation is behind the same explorer
    contract, not an approximation of it;
  * every compressed row carries spillBytes and a compressionRatio equal
    to the explicit row's totalBytes over its own; the anchor protocol's
    compressed row (named by rssProbe.protocol) must come in at most
    150 bytes/node with a compression ratio of at least 2.2x — the ledger
    is deterministic, so these absolute gates hold on any machine;
  * the rssProbe block is internally consistent: ledgerVsRssRatio ==
    ledgerTotalBytes / rssDeltaBytes, and the ratio stays within a loose
    [0.5, 1.5] band — the deterministic malloc-chunk model tracking the
    kernel's real RSS delta. (The tighter 5% acceptance band is asserted
    on the committed baseline, which was generated on a quiet heap; CI
    re-runs tolerate allocator noise.) When rssDeltaBytes == 0 the sampler
    was unavailable and the drift gate is SKIPPED, not failed;
  * with a second argument naming a committed baseline report, bytes/node
    must not regress by more than 10% per (protocol, storage) against it.
    An absent or unreadable baseline SKIPS the gate (first commit of the
    report).

Usage: check_bench.py BENCH_report.json [min_speedup]
       check_bench.py BENCH_explore_memory.json [baseline.json]
"""
import json
import sys

EXPECTED_PROTOCOLS = {
    "asymmetric", "symmetric-global", "leader-uniform",
    "counting", "selfstab-weak", "global-leader",
}


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_step_throughput(doc, min_speedup):
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail("empty or missing rows")

    seen = set()
    for row in rows:
        proto = row.get("protocol")
        if proto not in EXPECTED_PROTOCOLS:
            fail(f"unknown protocol {proto!r}")
        if proto in seen:
            fail(f"duplicate row for {proto!r}")
        seen.add(proto)
        interp = row.get("interpretedStepsPerSec", 0.0)
        compiled = row.get("compiledStepsPerSec", 0.0)
        speedup = row.get("speedup", 0.0)
        if not interp > 0.0 or not compiled > 0.0:
            fail(f"{proto}: non-positive throughput "
                 f"(interp={interp}, compiled={compiled})")
        if abs(speedup - compiled / interp) > 1e-6 * speedup:
            fail(f"{proto}: speedup field {speedup} inconsistent with "
                 f"{compiled}/{interp}")
        if speedup < min_speedup:
            fail(f"{proto}: compiled path speedup {speedup:.2f}x is below "
                 f"the {min_speedup:.2f}x floor — the compiled kernel "
                 f"regressed relative to the interpreted reference")

    missing = EXPECTED_PROTOCOLS - seen
    if missing:
        fail(f"missing rows for {sorted(missing)}")

    print(f"check_bench: OK: {len(rows)} protocols, speedups "
          + ", ".join(f"{r['protocol']}={r['speedup']:.2f}x" for r in rows))


def check_parallel_case(label, rows, invariant_keys, rate_key, min_speedup,
                        apply_floor):
    """Shared validation for one explore/search case's thread-count rows."""
    if not isinstance(rows, list) or not rows:
        fail(f"{label}: empty or missing rows")
    baseline = rows[0]
    if baseline.get("threads") != 1:
        fail(f"{label}: first row must be the threads=1 baseline, got "
             f"threads={baseline.get('threads')}")
    base_rate = baseline.get(rate_key, 0.0)
    if not base_rate > 0.0:
        fail(f"{label}: non-positive baseline {rate_key}={base_rate}")
    best_parallel = None
    for row in rows:
        threads = row.get("threads")
        for key in invariant_keys:
            if row.get(key) != baseline.get(key):
                fail(f"{label}: threads={threads} {key}={row.get(key)!r} "
                     f"differs from the threads=1 baseline "
                     f"{baseline.get(key)!r} — parallel output is not "
                     f"bit-identical to serial")
        rate = row.get(rate_key, 0.0)
        speedup = row.get("speedup", 0.0)
        if not rate > 0.0:
            fail(f"{label}: threads={threads} non-positive {rate_key}={rate}")
        if abs(speedup - rate / base_rate) > 1e-6 * max(speedup, 1.0):
            fail(f"{label}: threads={threads} speedup field {speedup} "
                 f"inconsistent with {rate}/{base_rate}")
        if threads != 1:
            best_parallel = max(best_parallel or 0.0, speedup)
    if best_parallel is None:
        # A report generated on a box without the cores may legitimately
        # carry no parallel rows; only a gating (>= 4 thread) report must.
        if apply_floor:
            fail(f"{label}: no parallel (threads > 1) rows")
        return None
    if apply_floor and best_parallel < min_speedup:
        fail(f"{label}: best parallel speedup {best_parallel:.2f}x is below "
             f"the {min_speedup:.2f}x floor")
    return best_parallel


def check_explore_throughput(doc, min_speedup):
    hw = doc.get("hardwareThreads", 0)
    if not isinstance(hw, int) or hw < 1:
        fail(f"missing/invalid hardwareThreads: {hw!r}")
    # A box without the cores cannot demonstrate a speedup; the determinism
    # invariants are still fully checked.
    apply_floor = hw >= 4
    explore = doc.get("explore")
    if not isinstance(explore, list) or not explore:
        fail("empty or missing explore cases")
    summaries = []
    for case in explore:
        label = f"explore:{case.get('protocol')}"
        if case.get("protocol") not in EXPECTED_PROTOCOLS:
            fail(f"{label}: unknown protocol")
        best = check_parallel_case(label, case.get("rows"),
                                   ("nodes", "truncated"), "nodesPerSec",
                                   min_speedup, apply_floor)
        if case["rows"][0].get("truncated"):
            fail(f"{label}: benchmark graph was truncated — the measurement "
                 f"must run on a closed graph")
        summaries.append(f"{label}={best:.2f}x" if best is not None
                         else f"{label}=n/a")
    search = doc.get("search")
    if not isinstance(search, list) or not search:
        fail("empty or missing search cases")
    for case in search:
        label = f"search:{case.get('space')}-q{case.get('q')}"
        best = check_parallel_case(label, case.get("rows"), ("candidates",),
                                   "candidatesPerSec", min_speedup,
                                   apply_floor)
        summaries.append(f"{label}={best:.2f}x" if best is not None
                         else f"{label}=n/a")
    floor_note = (f"floor {min_speedup:.2f}x enforced" if apply_floor else
                  f"floor skipped (hardwareThreads={hw} < 4)")
    print(f"check_bench: OK: {', '.join(summaries)}; {floor_note}")


def check_batch_throughput(doc, min_speedup):
    hw = doc.get("hardwareThreads", 0)
    engine_threads = doc.get("engineThreads", 0)
    if not isinstance(hw, int) or hw < 1:
        fail(f"missing/invalid hardwareThreads: {hw!r}")
    if not isinstance(engine_threads, int) or engine_threads < 1:
        fail(f"missing/invalid engineThreads: {engine_threads!r}")
    apply_floor = hw >= 8 and engine_threads >= 8
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail("empty or missing rows")

    seen = set()
    for row in rows:
        proto = row.get("protocol")
        if proto not in EXPECTED_PROTOCOLS:
            fail(f"unknown protocol {proto!r}")
        if proto in seen:
            fail(f"duplicate row for {proto!r}")
        seen.add(proto)
        lanes = row.get("lanes", 0)
        if not isinstance(lanes, int) or lanes < 1:
            fail(f"{proto}: missing/invalid lanes: {lanes!r}")
        if not row.get("interactions", 0) > 0:
            fail(f"{proto}: kernel executed no interactions")
        single = row.get("singleRunStepsPerSec", 0.0)
        per_lane = row.get("perLaneStepsPerSec", 0.0)
        aggregate = row.get("aggregateStepsPerSec", 0.0)
        speedup = row.get("speedup", 0.0)
        if not single > 0.0 or not per_lane > 0.0 or not aggregate > 0.0:
            fail(f"{proto}: non-positive throughput (single={single}, "
                 f"perLane={per_lane}, aggregate={aggregate})")
        if abs(aggregate - per_lane * lanes) > 1e-6 * aggregate:
            fail(f"{proto}: aggregate rate {aggregate} inconsistent with "
                 f"perLane {per_lane} * lanes {lanes}")
        if abs(speedup - aggregate / single) > 1e-6 * max(speedup, 1.0):
            fail(f"{proto}: speedup field {speedup} inconsistent with "
                 f"{aggregate}/{single}")
        # Bit-identity is unconditional: hardware cannot excuse a wrong
        # outcome, only a slow one.
        if row.get("identicalToScalar") is not True:
            fail(f"{proto}: SoA lane kernel outcomes are NOT bit-identical "
                 f"to per-lane scalar reruns (identicalToScalar="
                 f"{row.get('identicalToScalar')!r})")
        if apply_floor and speedup < min_speedup:
            fail(f"{proto}: aggregate batch speedup {speedup:.2f}x is below "
                 f"the {min_speedup:.2f}x floor on a {hw}-thread machine")

    missing = EXPECTED_PROTOCOLS - seen
    if missing:
        fail(f"missing rows for {sorted(missing)}")

    floor_note = (f"floor {min_speedup:.2f}x enforced" if apply_floor else
                  f"floor skipped (hardwareThreads={hw}, "
                  f"engineThreads={engine_threads} < 8)")
    print(f"check_bench: OK: batch kernel bit-identical on {len(rows)} "
          "protocols, speedups "
          + ", ".join(f"{r['protocol']}={r['speedup']:.2f}x" for r in rows)
          + f"; {floor_note}")


MEMORY_ROW_COMPONENTS = (
    "configsBytes", "adjacencyBytes", "dedupBytes", "frontierBytes",
    "codecBytes",
)


MEMORY_STORAGES = ("explicit", "compressed")
# E28 absolute gates on the anchor's compressed row. The ledger is a
# deterministic function of the exploration, so unlike the throughput floors
# these hold on any machine.
ANCHOR_MAX_BYTES_PER_NODE = 150.0
ANCHOR_MIN_COMPRESSION = 2.2


def check_explore_memory(doc, baseline_path):
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail("empty or missing rows")

    seen = {}
    totals = {}
    node_counts = {}
    for row in rows:
        proto = row.get("protocol")
        storage = row.get("storage")
        if proto not in EXPECTED_PROTOCOLS:
            fail(f"unknown protocol {proto!r}")
        if storage not in MEMORY_STORAGES:
            fail(f"{proto}: unknown storage {storage!r}")
        label = f"{proto}/{storage}"
        if (proto, storage) in seen:
            fail(f"duplicate row for {label}")
        nodes = row.get("nodes", 0)
        if not isinstance(nodes, int) or nodes < 1:
            fail(f"{label}: missing/invalid nodes: {nodes!r}")
        if proto in node_counts and node_counts[proto] != nodes:
            fail(f"{proto}: node count {nodes} under {storage} differs from "
                 f"{node_counts[proto]} under the other storage — the "
                 f"compressed graph is not equivalent to the explicit one")
        node_counts[proto] = nodes
        component_sum = 0
        for key in MEMORY_ROW_COMPONENTS + ("totalBytes", "highWaterBytes"):
            v = row.get(key)
            if not isinstance(v, int) or v < 0:
                fail(f"{label}: missing/invalid {key}: {v!r}")
            if key in MEMORY_ROW_COMPONENTS:
                component_sum += v
        if component_sum != row["totalBytes"]:
            fail(f"{label}: ledger components sum to {component_sum}, not "
                 f"totalBytes={row['totalBytes']}")
        if row["highWaterBytes"] < row["totalBytes"]:
            fail(f"{label}: highWaterBytes {row['highWaterBytes']} below "
                 f"totalBytes {row['totalBytes']}")
        bpn = row.get("bytesPerNode", 0.0)
        if abs(bpn - row["totalBytes"] / nodes) > 1e-6 * max(bpn, 1.0):
            fail(f"{label}: bytesPerNode {bpn} inconsistent with "
                 f"{row['totalBytes']}/{nodes}")
        seen[(proto, storage)] = bpn
        totals[(proto, storage)] = row["totalBytes"]

    missing = {(p, s) for p in EXPECTED_PROTOCOLS for s in MEMORY_STORAGES} \
        - set(seen)
    if missing:
        fail(f"missing rows for {sorted(f'{p}/{s}' for p, s in missing)}")

    ratios = {}
    for row in rows:
        if row.get("storage") != "compressed":
            continue
        proto = row["protocol"]
        spill = row.get("spillBytes")
        if not isinstance(spill, int) or spill < 0:
            fail(f"{proto}/compressed: missing/invalid spillBytes: {spill!r}")
        ratio = row.get("compressionRatio", 0.0)
        expected = totals[(proto, "explicit")] / totals[(proto, "compressed")]
        if abs(ratio - expected) > 1e-6 * max(ratio, 1.0):
            fail(f"{proto}/compressed: compressionRatio {ratio} inconsistent "
                 f"with explicit/compressed totals {expected:.4f}")
        ratios[proto] = ratio

    probe = doc.get("rssProbe")
    anchor = probe.get("protocol") if isinstance(probe, dict) else None
    if anchor in ratios:
        anchor_bpn = seen[(anchor, "compressed")]
        if anchor_bpn > ANCHOR_MAX_BYTES_PER_NODE:
            fail(f"{anchor}/compressed: anchor bytes/node {anchor_bpn:.1f} "
                 f"exceeds the {ANCHOR_MAX_BYTES_PER_NODE:.0f} ceiling")
        if ratios[anchor] < ANCHOR_MIN_COMPRESSION:
            fail(f"{anchor}/compressed: anchor compression ratio "
                 f"{ratios[anchor]:.2f}x is below the "
                 f"{ANCHOR_MIN_COMPRESSION:.1f}x floor")
    drift_note = "rss drift skipped (sampler unavailable)"
    if isinstance(probe, dict) and probe.get("rssDeltaBytes", 0) > 0:
        delta = probe["rssDeltaBytes"]
        ledger = probe.get("ledgerTotalBytes", 0)
        ratio = probe.get("ledgerVsRssRatio", 0.0)
        if abs(ratio - ledger / delta) > 1e-6 * max(ratio, 1.0):
            fail(f"rssProbe: ledgerVsRssRatio {ratio} inconsistent with "
                 f"{ledger}/{delta}")
        if not 0.5 <= ratio <= 1.5:
            fail(f"rssProbe: ledger/RSS ratio {ratio:.3f} outside [0.5, 1.5] "
                 f"— the byte ledger no longer tracks real memory use")
        drift_note = f"rss drift ratio {ratio:.3f}"

    gate_note = "baseline gate skipped (no baseline)"
    if baseline_path is not None:
        try:
            with open(baseline_path, encoding="utf-8") as f:
                base = json.load(f)
        except (OSError, json.JSONDecodeError):
            base = None
        if base is not None and base.get("kind") == "ppn-explore-memory":
            for brow in base.get("rows", []):
                key = (brow.get("protocol"),
                       brow.get("storage", "explicit"))
                base_bpn = brow.get("bytesPerNode", 0.0)
                if key not in seen or not base_bpn > 0.0:
                    continue
                if seen[key] > base_bpn * 1.10:
                    fail(f"{key[0]}/{key[1]}: bytes/node {seen[key]:.1f} "
                         f"regressed more than 10% over the committed "
                         f"baseline {base_bpn:.1f}")
            gate_note = "baseline gate enforced (10% bytes/node)"

    print(f"check_bench: OK: memory ledger consistent on {len(rows)} "
          "rows, compressed bytes/node "
          + ", ".join(f"{p}={seen[(p, 'compressed')]:.1f}"
                      f" ({ratios[p]:.2f}x)"
                      for p in sorted(EXPECTED_PROTOCOLS))
          + f"; {drift_note}; {gate_note}")


def main(argv):
    if len(argv) < 2:
        fail(f"usage: {argv[0]} BENCH_report.json [min_speedup|baseline]")
    path = argv[1]

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    kind = doc.get("kind")
    if kind == "ppn-explore-memory":
        # The optional second argument is a baseline report path here, not a
        # speedup floor — memory reports gate on bytes/node regression.
        check_explore_memory(doc, argv[2] if len(argv) > 2 else None)
        return

    min_speedup = float(argv[2]) if len(argv) > 2 else 1.0
    if kind == "ppn-step-throughput":
        check_step_throughput(doc, min_speedup)
    elif kind == "ppn-explore-throughput":
        check_explore_throughput(doc, min_speedup)
    elif kind == "ppn-batch-throughput":
        check_batch_throughput(doc, min_speedup)
    else:
        fail(f"{path}: unknown kind {kind!r}")


if __name__ == "__main__":
    main(sys.argv)
