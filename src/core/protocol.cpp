#include "core/protocol.h"

#include <cstdio>
#include <cstdlib>

namespace ppn {

LeaderResult Protocol::leaderDelta(LeaderStateId leader, StateId mobile) const {
  (void)leader;
  (void)mobile;
  std::fprintf(stderr,
               "ppn: leaderDelta called on protocol '%s' which has no leader\n",
               name().c_str());
  std::abort();
}

std::string Protocol::describeLeaderState(LeaderStateId leader) const {
  return "L" + std::to_string(leader);
}

std::optional<std::string> verifySymmetric(const Protocol& p) {
  const StateId q = p.numMobileStates();
  for (StateId a = 0; a < q; ++a) {
    for (StateId b = 0; b < q; ++b) {
      const MobilePair fwd = p.mobileDelta(a, b);
      const MobilePair bwd = p.mobileDelta(b, a);
      const bool symmetricHere =
          fwd.initiator == bwd.responder && fwd.responder == bwd.initiator;
      if (p.isSymmetric() && !symmetricHere) {
        return "protocol declared symmetric but delta(" + std::to_string(a) +
               "," + std::to_string(b) + ") = (" + std::to_string(fwd.initiator) +
               "," + std::to_string(fwd.responder) + ") while delta(" +
               std::to_string(b) + "," + std::to_string(a) + ") = (" +
               std::to_string(bwd.initiator) + "," +
               std::to_string(bwd.responder) + ")";
      }
    }
  }
  if (p.isSymmetric()) {
    // Symmetric protocols must in particular map equal states to equal states.
    for (StateId a = 0; a < q; ++a) {
      const MobilePair r = p.mobileDelta(a, a);
      if (r.initiator != r.responder) {
        return "protocol declared symmetric but delta(" + std::to_string(a) +
               "," + std::to_string(a) + ") yields distinct states";
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> verifyClosed(const Protocol& p) {
  const StateId q = p.numMobileStates();
  for (StateId a = 0; a < q; ++a) {
    for (StateId b = 0; b < q; ++b) {
      const MobilePair r = p.mobileDelta(a, b);
      if (r.initiator >= q || r.responder >= q) {
        return "delta(" + std::to_string(a) + "," + std::to_string(b) +
               ") leaves the state space";
      }
    }
  }
  if (p.hasLeader()) {
    // Spot-check leader transitions over enumerable leader states.
    for (const LeaderStateId l : p.allLeaderStates()) {
      for (StateId a = 0; a < q; ++a) {
        const LeaderResult r = p.leaderDelta(l, a);
        if (r.mobile >= q) {
          return "leaderDelta(" + p.describeLeaderState(l) + "," +
                 std::to_string(a) + ") leaves the mobile state space";
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace ppn
