#include "core/engine.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "core/compiled.h"

namespace ppn {

namespace {

/// Collects the distinct mobile states present in `config` together with
/// multiplicities, as (state, count) pairs. O(N log N)-free: uses a histogram
/// when Q is small, which it always is here.
std::vector<std::pair<StateId, std::uint32_t>> presentStates(
    const Protocol& proto, const Configuration& config) {
  std::vector<std::uint32_t> hist = config.histogram(proto.numMobileStates());
  std::vector<std::pair<StateId, std::uint32_t>> present;
  for (StateId s = 0; s < hist.size(); ++s) {
    if (hist[s] > 0) present.emplace_back(s, hist[s]);
  }
  return present;
}

/// Shared skeleton of the three quiescence notions: enumerates every ordered
/// transition applicable among the present mobile states (the diagonal only
/// when a state has multiplicity >= 2) and the leader against every present
/// state, and reports whether all of them satisfy the given predicates.
/// `mobileOk(s, t, r)` judges delta(s, t) = r; `leaderOk(s, r)` judges
/// leaderDelta(leader, s) = r.
template <typename MobileOk, typename LeaderOk>
bool quiescentUnder(const Protocol& proto, const Configuration& config,
                    MobileOk mobileOk, LeaderOk leaderOk) {
  const auto present = presentStates(proto, config);
  for (std::size_t i = 0; i < present.size(); ++i) {
    const auto [s, count] = present[i];
    if (count >= 2 && !mobileOk(s, s, proto.mobileDelta(s, s))) return false;
    for (std::size_t j = i + 1; j < present.size(); ++j) {
      const StateId t = present[j].first;
      if (!mobileOk(s, t, proto.mobileDelta(s, t))) return false;
      if (!mobileOk(t, s, proto.mobileDelta(t, s))) return false;
    }
  }
  if (config.leader.has_value()) {
    for (const auto& [s, count] : present) {
      (void)count;
      if (!leaderOk(s, proto.leaderDelta(*config.leader, s))) return false;
    }
  }
  return true;
}

/// States are validated once, at Engine construction / resetTo, so the hot
/// path can index unchecked (see the satellite contract in engine.h).
void validateStates(const Protocol& proto, const Configuration& config) {
  const StateId q = proto.numMobileStates();
  for (const StateId s : config.mobile) {
    if (s >= q) {
      throw std::logic_error("configuration state " + std::to_string(s) +
                             " outside the state space of '" + proto.name() +
                             "'");
    }
  }
}

}  // namespace

bool applyInteraction(const Protocol& proto, Configuration& config,
                      Interaction interaction) {
  const std::uint32_t n = config.numMobile();
  const std::uint32_t leaderIdx = n;
  if (interaction.initiator == interaction.responder) {
    throw std::logic_error("interaction requires two distinct participants");
  }
  if (interaction.initiator > leaderIdx || interaction.responder > leaderIdx) {
    throw std::logic_error("participant index out of range");
  }

  const bool initiatorIsLeader = interaction.initiator == leaderIdx;
  const bool responderIsLeader = interaction.responder == leaderIdx;
  if ((initiatorIsLeader || responderIsLeader) && !config.leader.has_value()) {
    throw std::logic_error("leader interaction scheduled without a leader");
  }

  if (initiatorIsLeader || responderIsLeader) {
    // The leader-mobile rule is orientation-free: the leader is
    // distinguishable, so which side "initiated" carries no information.
    const AgentId agent =
        initiatorIsLeader ? interaction.responder : interaction.initiator;
    const StateId before = config.mobile[agent];
    const LeaderStateId leaderBefore = *config.leader;
    const LeaderResult r = proto.leaderDelta(leaderBefore, before);
    config.mobile[agent] = r.mobile;
    config.leader = r.leader;
    return r.mobile != before || r.leader != leaderBefore;
  }

  const StateId a = config.mobile[interaction.initiator];
  const StateId b = config.mobile[interaction.responder];
  const MobilePair r = proto.mobileDelta(a, b);
  config.mobile[interaction.initiator] = r.initiator;
  config.mobile[interaction.responder] = r.responder;
  return r.initiator != a || r.responder != b;
}

bool isSilent(const Protocol& proto, const Configuration& config) {
  const LeaderStateId leader =
      config.leader.has_value() ? *config.leader : LeaderStateId{0};
  return quiescentUnder(
      proto, config,
      [](StateId s, StateId t, const MobilePair& r) {
        return r.initiator == s && r.responder == t;
      },
      [leader](StateId s, const LeaderResult& r) {
        return r.mobile == s && r.leader == leader;
      });
}

bool isMobileSilent(const Protocol& proto, const Configuration& config) {
  return quiescentUnder(
      proto, config,
      [](StateId s, StateId t, const MobilePair& r) {
        return r.initiator == s && r.responder == t;
      },
      [](StateId s, const LeaderResult& r) {
        return r.mobile == s;  // leader-only changes tolerated
      });
}

bool isNameQuiescent(const Protocol& proto, const Configuration& config) {
  auto nameKept = [&proto](StateId before, StateId after) {
    return proto.nameOf(before) == proto.nameOf(after);
  };
  return quiescentUnder(
      proto, config,
      [&nameKept](StateId s, StateId t, const MobilePair& r) {
        return nameKept(s, r.initiator) && nameKept(t, r.responder);
      },
      [&nameKept](StateId s, const LeaderResult& r) {
        return nameKept(s, r.mobile);
      });
}

bool isNamed(const Protocol& proto, const Configuration& config) {
  std::vector<StateId> names;
  names.reserve(config.mobile.size());
  for (const StateId s : config.mobile) {
    if (!proto.isValidName(s)) return false;
    names.push_back(proto.nameOf(s));
  }
  std::sort(names.begin(), names.end());
  return std::adjacent_find(names.begin(), names.end()) == names.end();
}

bool isNamingSolved(const Protocol& proto, const Configuration& config) {
  return isNamed(proto, config) && isNameQuiescent(proto, config);
}

Configuration uniformConfiguration(const Protocol& proto,
                                   std::uint32_t numMobile) {
  const auto init = proto.uniformMobileInit();
  if (!init.has_value()) {
    throw std::logic_error("protocol '" + proto.name() +
                           "' defines no uniform mobile initialization");
  }
  Configuration c;
  c.mobile.assign(numMobile, *init);
  if (proto.hasLeader()) {
    const auto leaderInit = proto.initialLeaderState();
    if (!leaderInit.has_value()) {
      throw std::logic_error("protocol '" + proto.name() +
                             "' has a non-initialized leader; uniform "
                             "configuration is underdetermined");
    }
    c.leader = *leaderInit;
  }
  return c;
}

Configuration arbitraryConfiguration(const Protocol& proto,
                                     std::uint32_t numMobile, Rng& rng) {
  Configuration c;
  c.mobile.resize(numMobile);
  for (auto& s : c.mobile) {
    s = static_cast<StateId>(rng.below(proto.numMobileStates()));
  }
  if (proto.hasLeader()) {
    if (const auto leaderInit = proto.initialLeaderState();
        leaderInit.has_value()) {
      c.leader = *leaderInit;
    } else {
      const auto all = proto.allLeaderStates();
      if (all.empty()) {
        throw std::logic_error("protocol '" + proto.name() +
                               "' cannot enumerate leader states for "
                               "arbitrary initialization");
      }
      c.leader = all[rng.below(all.size())];
    }
  }
  return c;
}

Engine::Engine(const Protocol& proto, Configuration start)
    : proto_(&proto), config_(std::move(start)) {
  if (proto_->hasLeader() != config_.leader.has_value()) {
    throw std::logic_error(
        "configuration leader presence does not match protocol '" +
        proto_->name() + "'");
  }
  validateStates(proto, config_);
}

void Engine::attachCompiled(const CompiledProtocol* compiled) {
  if (compiled != nullptr && &compiled->protocol() != proto_) {
    throw std::logic_error(
        "attachCompiled: table was compiled for a different protocol");
  }
  compiled_ = compiled;
  if (compiled_ != nullptr) {
    rebuildTracker();
  } else {
    hist_.clear();
    present_.clear();
    activePairs_ = 0;
  }
}

bool Engine::step(Interaction interaction) {
  const bool changed = compiled_ != nullptr
                           ? stepCompiled(interaction)
                           : applyInteraction(*proto_, config_, interaction);
  ++interactions_;
  if (changed) {
    ++nonNull_;
    lastChangeAt_ = interactions_;
  }
  return changed;
}

void Engine::runBurst(Scheduler& sched, std::uint64_t n) {
  if (compiled_ == nullptr) {
    for (std::uint64_t i = 0; i < n; ++i) step(sched.next());
    return;
  }
  // The compiled kernel: scheduler pairs are pulled in blocks (one virtual
  // fill() per block instead of one next() per interaction) and each
  // interaction is table lookups plus the O(1) tracker updates. Counter
  // updates are batched; lastChangeAt_ matches step()-by-step execution.
  constexpr std::size_t kBlock = 1024;
  if (burstBuf_.size() < kBlock) burstBuf_.resize(kBlock);
  std::uint64_t done = 0;
  std::uint64_t nonNull = 0;
  std::uint64_t lastChange = 0;  // 1-based offset of the last change
  while (done < n) {
    const std::size_t block =
        static_cast<std::size_t>(std::min<std::uint64_t>(kBlock, n - done));
    sched.fill(burstBuf_.data(), block);
    for (std::size_t i = 0; i < block; ++i) {
      if (stepCompiled(burstBuf_[i])) {
        ++nonNull;
        lastChange = done + i + 1;
      }
    }
    done += block;
  }
  if (nonNull > 0) {
    nonNull_ += nonNull;
    lastChangeAt_ = interactions_ + lastChange;
  }
  interactions_ += n;
}

bool Engine::stepCompiled(Interaction interaction) {
  const std::uint32_t leaderPos = config_.numMobile();
  if (interaction.initiator == interaction.responder) {
    throw std::logic_error("interaction requires two distinct participants");
  }
  if (interaction.initiator > leaderPos || interaction.responder > leaderPos) {
    throw std::logic_error("participant index out of range");
  }
  const bool initiatorIsLeader = interaction.initiator == leaderPos;
  const bool responderIsLeader = interaction.responder == leaderPos;
  if (initiatorIsLeader || responderIsLeader) {
    if (!config_.leader.has_value()) {
      throw std::logic_error("leader interaction scheduled without a leader");
    }
    const AgentId agent =
        initiatorIsLeader ? interaction.responder : interaction.initiator;
    const StateId before = config_.mobile[agent];
    const LeaderStateId leaderBefore = *config_.leader;
    LeaderResult r;
    if (leaderIdx_ != CompiledProtocol::kNoLeaderIndex) {
      const CompiledProtocol::LeaderEntry& e =
          compiled_->leaderDelta(leaderIdx_, before);
      r = LeaderResult{compiled_->leaderIdAt(e.nextLeader), e.mobile};
      leaderIdx_ = e.nextLeader;
    } else {
      // Outside the compiled leader set (un-enumerable space or an injected
      // state): virtual dispatch, then try to re-enter the table.
      r = proto_->leaderDelta(leaderBefore, before);
      if (compiled_->leaderCompiled()) {
        leaderIdx_ = compiled_->leaderIndexOf(r.leader);
      }
    }
    config_.mobile[agent] = r.mobile;
    config_.leader = r.leader;
    if (r.mobile != before) {
      trackerRemove(before);
      trackerAdd(r.mobile);
    }
    return r.mobile != before || r.leader != leaderBefore;
  }

  const StateId a = config_.mobile[interaction.initiator];
  const StateId b = config_.mobile[interaction.responder];
  const MobilePair r = compiled_->mobileDelta(a, b);
  if (r.initiator == a && r.responder == b) return false;
  config_.mobile[interaction.initiator] = r.initiator;
  config_.mobile[interaction.responder] = r.responder;
  trackerRemove(a);
  trackerRemove(b);
  trackerAdd(r.initiator);
  trackerAdd(r.responder);
  return true;
}

// The tracker arithmetic itself lives in core/compiled.h
// (CompiledLaneTracker), shared with the SoA many-lane kernel; the engine is
// the one-lane owner of its storage.

std::uint64_t Engine::trackerActiveWith(StateId s) const {
  return CompiledLaneTracker::activeWith(*compiled_, present_.data(), s);
}

void Engine::trackerAdd(StateId s) {
  CompiledLaneTracker(*compiled_, hist_.data(), present_.data(), activePairs_)
      .add(s);
}

void Engine::trackerRemove(StateId s) {
  CompiledLaneTracker(*compiled_, hist_.data(), present_.data(), activePairs_)
      .remove(s);
}

void Engine::rebuildTracker() {
  hist_.resize(compiled_->numStates());
  present_.resize(compiled_->wordsPerRow());
  CompiledLaneTracker(*compiled_, hist_.data(), present_.data(), activePairs_)
      .rebuild(config_.mobile.begin(), config_.mobile.end());
  refreshLeaderIndex();
}

void Engine::refreshLeaderIndex() {
  leaderIdx_ = CompiledProtocol::kNoLeaderIndex;
  if (compiled_ != nullptr && compiled_->leaderCompiled() &&
      config_.leader.has_value()) {
    leaderIdx_ = compiled_->leaderIndexOf(*config_.leader);
  }
}

bool Engine::fastSilent() const {
  return compiledLaneSilent(*compiled_, *proto_, activePairs_, hist_.data(),
                            config_.leader, leaderIdx_);
}

bool Engine::silent() const {
  return compiled_ != nullptr ? fastSilent() : isSilent(*proto_, config_);
}

void Engine::corruptMobile(AgentId agent, StateId state) {
  if (agent >= config_.numMobile()) {
    throw std::logic_error("corruptMobile: agent index out of range");
  }
  if (state >= proto_->numMobileStates()) {
    throw std::logic_error("corruptMobile: state outside the state space");
  }
  const StateId before = config_.mobile[agent];
  config_.mobile[agent] = state;
  if (compiled_ != nullptr && state != before) {
    trackerRemove(before);
    trackerAdd(state);
  }
  lastChangeAt_ = interactions_;
  if (observer_ != nullptr) {
    observer_->onFaultInjected(FaultInjectedEvent{
        observerRunId_, interactions_, FaultTarget::kMobile, agent});
  }
}

void Engine::corruptLeader(LeaderStateId state) {
  if (!config_.leader.has_value()) {
    throw std::logic_error("corruptLeader on a leaderless configuration");
  }
  config_.leader = state;
  refreshLeaderIndex();
  lastChangeAt_ = interactions_;
  if (observer_ != nullptr) {
    observer_->onFaultInjected(FaultInjectedEvent{
        observerRunId_, interactions_, FaultTarget::kLeader, 0});
  }
}

void Engine::resetTo(Configuration start) {
  if (proto_->hasLeader() != start.leader.has_value()) {
    throw std::logic_error("resetTo: leader presence mismatch");
  }
  validateStates(*proto_, start);
  config_ = std::move(start);
  interactions_ = 0;
  nonNull_ = 0;
  lastChangeAt_ = 0;
  if (compiled_ != nullptr) rebuildTracker();
}

}  // namespace ppn
