#include "core/engine.h"

#include <algorithm>
#include <stdexcept>

namespace ppn {

namespace {

/// Collects the distinct mobile states present in `config` together with
/// multiplicities, as (state, count) pairs. O(N log N)-free: uses a histogram
/// when Q is small, which it always is here.
std::vector<std::pair<StateId, std::uint32_t>> presentStates(
    const Protocol& proto, const Configuration& config) {
  std::vector<std::uint32_t> hist = config.histogram(proto.numMobileStates());
  std::vector<std::pair<StateId, std::uint32_t>> present;
  for (StateId s = 0; s < hist.size(); ++s) {
    if (hist[s] > 0) present.emplace_back(s, hist[s]);
  }
  return present;
}

}  // namespace

bool applyInteraction(const Protocol& proto, Configuration& config,
                      Interaction interaction) {
  const std::uint32_t n = config.numMobile();
  const std::uint32_t leaderIdx = n;
  if (interaction.initiator == interaction.responder) {
    throw std::logic_error("interaction requires two distinct participants");
  }

  const bool initiatorIsLeader = interaction.initiator == leaderIdx;
  const bool responderIsLeader = interaction.responder == leaderIdx;
  if ((initiatorIsLeader || responderIsLeader) && !config.leader.has_value()) {
    throw std::logic_error("leader interaction scheduled without a leader");
  }

  if (initiatorIsLeader || responderIsLeader) {
    // The leader-mobile rule is orientation-free: the leader is
    // distinguishable, so which side "initiated" carries no information.
    const AgentId agent =
        initiatorIsLeader ? interaction.responder : interaction.initiator;
    const StateId before = config.mobile.at(agent);
    const LeaderStateId leaderBefore = *config.leader;
    const LeaderResult r = proto.leaderDelta(leaderBefore, before);
    config.mobile[agent] = r.mobile;
    config.leader = r.leader;
    return r.mobile != before || r.leader != leaderBefore;
  }

  const StateId a = config.mobile.at(interaction.initiator);
  const StateId b = config.mobile.at(interaction.responder);
  const MobilePair r = proto.mobileDelta(a, b);
  config.mobile[interaction.initiator] = r.initiator;
  config.mobile[interaction.responder] = r.responder;
  return r.initiator != a || r.responder != b;
}

bool isSilent(const Protocol& proto, const Configuration& config) {
  const auto present = presentStates(proto, config);
  for (std::size_t i = 0; i < present.size(); ++i) {
    const auto [s, count] = present[i];
    if (count >= 2) {
      const MobilePair r = proto.mobileDelta(s, s);
      if (r.initiator != s || r.responder != s) return false;
    }
    for (std::size_t j = i + 1; j < present.size(); ++j) {
      const StateId t = present[j].first;
      const MobilePair fwd = proto.mobileDelta(s, t);
      if (fwd.initiator != s || fwd.responder != t) return false;
      const MobilePair bwd = proto.mobileDelta(t, s);
      if (bwd.initiator != t || bwd.responder != s) return false;
    }
  }
  if (config.leader.has_value()) {
    for (const auto& [s, count] : present) {
      (void)count;
      const LeaderResult r = proto.leaderDelta(*config.leader, s);
      if (r.mobile != s || r.leader != *config.leader) return false;
    }
  }
  return true;
}

bool isMobileSilent(const Protocol& proto, const Configuration& config) {
  const auto present = presentStates(proto, config);
  for (std::size_t i = 0; i < present.size(); ++i) {
    const auto [s, count] = present[i];
    if (count >= 2) {
      const MobilePair r = proto.mobileDelta(s, s);
      if (r.initiator != s || r.responder != s) return false;
    }
    for (std::size_t j = i + 1; j < present.size(); ++j) {
      const StateId t = present[j].first;
      const MobilePair fwd = proto.mobileDelta(s, t);
      if (fwd.initiator != s || fwd.responder != t) return false;
      const MobilePair bwd = proto.mobileDelta(t, s);
      if (bwd.initiator != t || bwd.responder != s) return false;
    }
  }
  if (config.leader.has_value()) {
    for (const auto& [s, count] : present) {
      (void)count;
      const LeaderResult r = proto.leaderDelta(*config.leader, s);
      if (r.mobile != s) return false;  // leader-only changes tolerated
    }
  }
  return true;
}

bool isNameQuiescent(const Protocol& proto, const Configuration& config) {
  const auto present = presentStates(proto, config);
  auto nameKept = [&proto](StateId before, StateId after) {
    return proto.nameOf(before) == proto.nameOf(after);
  };
  for (std::size_t i = 0; i < present.size(); ++i) {
    const auto [s, count] = present[i];
    if (count >= 2) {
      const MobilePair r = proto.mobileDelta(s, s);
      if (!nameKept(s, r.initiator) || !nameKept(s, r.responder)) return false;
    }
    for (std::size_t j = i + 1; j < present.size(); ++j) {
      const StateId t = present[j].first;
      const MobilePair fwd = proto.mobileDelta(s, t);
      if (!nameKept(s, fwd.initiator) || !nameKept(t, fwd.responder)) {
        return false;
      }
      const MobilePair bwd = proto.mobileDelta(t, s);
      if (!nameKept(t, bwd.initiator) || !nameKept(s, bwd.responder)) {
        return false;
      }
    }
  }
  if (config.leader.has_value()) {
    for (const auto& [s, count] : present) {
      (void)count;
      const LeaderResult r = proto.leaderDelta(*config.leader, s);
      if (!nameKept(s, r.mobile)) return false;
    }
  }
  return true;
}

bool isNamed(const Protocol& proto, const Configuration& config) {
  std::vector<StateId> names;
  names.reserve(config.mobile.size());
  for (const StateId s : config.mobile) {
    if (!proto.isValidName(s)) return false;
    names.push_back(proto.nameOf(s));
  }
  std::sort(names.begin(), names.end());
  return std::adjacent_find(names.begin(), names.end()) == names.end();
}

bool isNamingSolved(const Protocol& proto, const Configuration& config) {
  return isNamed(proto, config) && isNameQuiescent(proto, config);
}

Configuration uniformConfiguration(const Protocol& proto,
                                   std::uint32_t numMobile) {
  const auto init = proto.uniformMobileInit();
  if (!init.has_value()) {
    throw std::logic_error("protocol '" + proto.name() +
                           "' defines no uniform mobile initialization");
  }
  Configuration c;
  c.mobile.assign(numMobile, *init);
  if (proto.hasLeader()) {
    const auto leaderInit = proto.initialLeaderState();
    if (!leaderInit.has_value()) {
      throw std::logic_error("protocol '" + proto.name() +
                             "' has a non-initialized leader; uniform "
                             "configuration is underdetermined");
    }
    c.leader = *leaderInit;
  }
  return c;
}

Configuration arbitraryConfiguration(const Protocol& proto,
                                     std::uint32_t numMobile, Rng& rng) {
  Configuration c;
  c.mobile.resize(numMobile);
  for (auto& s : c.mobile) {
    s = static_cast<StateId>(rng.below(proto.numMobileStates()));
  }
  if (proto.hasLeader()) {
    if (const auto leaderInit = proto.initialLeaderState();
        leaderInit.has_value()) {
      c.leader = *leaderInit;
    } else {
      const auto all = proto.allLeaderStates();
      if (all.empty()) {
        throw std::logic_error("protocol '" + proto.name() +
                               "' cannot enumerate leader states for "
                               "arbitrary initialization");
      }
      c.leader = all[rng.below(all.size())];
    }
  }
  return c;
}

Engine::Engine(const Protocol& proto, Configuration start)
    : proto_(&proto), config_(std::move(start)) {
  if (proto_->hasLeader() != config_.leader.has_value()) {
    throw std::logic_error(
        "configuration leader presence does not match protocol '" +
        proto_->name() + "'");
  }
}

bool Engine::step(Interaction interaction) {
  const bool changed = applyInteraction(*proto_, config_, interaction);
  ++interactions_;
  if (changed) {
    ++nonNull_;
    lastChangeAt_ = interactions_;
  }
  return changed;
}

void Engine::corruptMobile(AgentId agent, StateId state) {
  config_.mobile.at(agent) = state;
  lastChangeAt_ = interactions_;
  if (observer_ != nullptr) {
    observer_->onFaultInjected(FaultInjectedEvent{
        observerRunId_, interactions_, FaultTarget::kMobile, agent});
  }
}

void Engine::corruptLeader(LeaderStateId state) {
  if (!config_.leader.has_value()) {
    throw std::logic_error("corruptLeader on a leaderless configuration");
  }
  config_.leader = state;
  lastChangeAt_ = interactions_;
  if (observer_ != nullptr) {
    observer_->onFaultInjected(FaultInjectedEvent{
        observerRunId_, interactions_, FaultTarget::kLeader, 0});
  }
}

void Engine::resetTo(Configuration start) {
  if (proto_->hasLeader() != start.leader.has_value()) {
    throw std::logic_error("resetTo: leader presence mismatch");
  }
  config_ = std::move(start);
  interactions_ = 0;
  nonNull_ = 0;
  lastChangeAt_ = 0;
}

}  // namespace ppn
