#include "core/compiled.h"

#include <stdexcept>
#include <string>

namespace ppn {

namespace {

std::size_t bitmapWords(std::size_t bits) { return (bits + 63) / 64; }

void setBit(std::vector<std::uint64_t>& bitmap, std::size_t bit) {
  bitmap[bit >> 6] |= std::uint64_t{1} << (bit & 63);
}

}  // namespace

bool CompiledProtocol::compilable(const Protocol& proto) {
  const StateId q = proto.numMobileStates();
  return q >= 1 && q <= kMaxStates;
}

CompiledProtocol::CompiledProtocol(const Protocol& proto)
    : proto_(&proto), q_(proto.numMobileStates()), words_(bitmapWords(q_)) {
  if (!compilable(proto)) {
    throw std::invalid_argument("CompiledProtocol: '" + proto.name() +
                                "' has " + std::to_string(q_) +
                                " states, outside [1, " +
                                std::to_string(kMaxStates) + "]");
  }

  const std::size_t qq = static_cast<std::size_t>(q_) * q_;
  mobile_.resize(qq);
  nullMM_.assign(bitmapWords(qq), 0);
  diagActive_.assign(words_, 0);
  activeRows_.assign(static_cast<std::size_t>(q_) * words_, 0);
  names_.resize(q_);
  validNames_.assign(words_, 0);

  for (StateId a = 0; a < q_; ++a) {
    for (StateId b = 0; b < q_; ++b) {
      const MobilePair r = proto.mobileDelta(a, b);
      if (r.initiator >= q_ || r.responder >= q_) {
        throw std::invalid_argument(
            "CompiledProtocol: '" + proto.name() + "' delta(" +
            std::to_string(a) + ", " + std::to_string(b) +
            ") leaves the state space");
      }
      const std::size_t cell = static_cast<std::size_t>(a) * q_ + b;
      mobile_[cell] = r;
      if (r.initiator == a && r.responder == b) setBit(nullMM_, cell);
    }
  }

  for (StateId s = 0; s < q_; ++s) {
    if (!mobileNull(s, s)) setBit(diagActive_, s);
    for (StateId t = 0; t < q_; ++t) {
      if (t != s && (!mobileNull(s, t) || !mobileNull(t, s))) {
        setBit(activeRows_, static_cast<std::size_t>(s) * words_ * 64 + t);
      }
    }
    names_[s] = proto.nameOf(s);
    if (proto.isValidName(s)) setBit(validNames_, s);
  }

  if (!proto.hasLeader()) return;
  leaderIds_ = proto.allLeaderStates();
  const std::size_t l = leaderIds_.size();
  if (l == 0 || l * q_ > kMaxLeaderEntries) {
    leaderIds_.clear();
    return;  // leader stays on the virtual path
  }
  leaderIndex_.reserve(l);
  for (std::uint32_t i = 0; i < l; ++i) leaderIndex_.emplace(leaderIds_[i], i);
  leader_.resize(l * q_);
  nullLM_.assign(bitmapWords(l * q_), 0);
  for (std::uint32_t li = 0; li < l; ++li) {
    for (StateId s = 0; s < q_; ++s) {
      const LeaderResult r = proto.leaderDelta(leaderIds_[li], s);
      const auto it = leaderIndex_.find(r.leader);
      if (it == leaderIndex_.end() || r.mobile >= q_) {
        // Not closed over the enumerated set: discard the leader table and
        // keep leader interactions virtual (the mobile table stands).
        leaderIds_.clear();
        leaderIndex_.clear();
        leader_.clear();
        nullLM_.clear();
        return;
      }
      const std::size_t cell = static_cast<std::size_t>(li) * q_ + s;
      leader_[cell] = LeaderEntry{it->second, r.mobile};
      if (it->second == li && r.mobile == s) setBit(nullLM_, cell);
    }
  }
  leaderCompiled_ = true;
}

}  // namespace ppn
