// A configuration is the vector of states of all agents (paper, Section 2).
//
// Two forms are used:
//  * the concrete form here — one state per mobile agent (by agent index)
//    plus the optional leader state. Required wherever *agent identity*
//    matters: simulation, weak fairness (a property of agent pairs), the
//    hidden-agent adversaries of the impossibility proofs;
//  * a canonical (sorted) form — produced by `canonicalized()` — in which
//    permutation-equivalent configurations coincide (the paper's "equivalent
//    configurations", Section 3.1). Sufficient for global-fairness analysis
//    and exponentially smaller.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"

namespace ppn {

struct Configuration {
  std::vector<StateId> mobile;
  std::optional<LeaderStateId> leader;

  friend bool operator==(const Configuration&, const Configuration&) = default;

  std::uint32_t numMobile() const {
    return static_cast<std::uint32_t>(mobile.size());
  }

  /// Canonical representative of the permutation-equivalence class: mobile
  /// states sorted ascending, leader untouched.
  Configuration canonicalized() const;

  /// Multiplicity of state `s` among mobile agents.
  std::uint32_t multiplicity(StateId s) const;

  /// True when all mobile agents hold pairwise distinct states.
  bool allDistinct() const;

  /// Histogram of mobile states; index = state, value = multiplicity.
  std::vector<std::uint32_t> histogram(StateId numStates) const;

  /// "[2, 0, 1 | L(n=1,k=3)]"-style rendering. `leaderDesc` is the protocol's
  /// describeLeaderState output, or empty when there is no leader.
  std::string toString(const std::string& leaderDesc = "") const;

  /// FNV-1a style hash suitable for unordered containers.
  std::size_t hashValue() const;
};

struct ConfigurationHash {
  std::size_t operator()(const Configuration& c) const { return c.hashValue(); }
};

}  // namespace ppn
