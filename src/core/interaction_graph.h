// Interaction topologies.
//
// The paper works in the classical complete-interaction model ("communicate
// in pairs", any pair may meet). Restricted interaction graphs are a
// standard extension of population protocols, and several of the library's
// experiments use them to show WHERE the completeness assumption bites:
// e.g. the leaderless protocols need homonyms to meet directly, so they
// fail on stars and rings, while Prop 14's protocol only needs
// leader-to-agent edges and is happy on a star centered at the base station.
//
// Participants use the engine's indexing: mobile agents 0..N-1, leader N.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/rng.h"

namespace ppn {

class InteractionGraph {
 public:
  /// Builds from an explicit edge list (unordered pairs, deduplicated;
  /// self-loops rejected).
  InteractionGraph(std::uint32_t numParticipants,
                   std::vector<std::pair<std::uint32_t, std::uint32_t>> edges);

  /// Every pair may interact — the paper's model.
  static InteractionGraph complete(std::uint32_t numParticipants);

  /// Cycle 0-1-..-(m-1)-0.
  static InteractionGraph ring(std::uint32_t numParticipants);

  /// Path 0-1-..-(m-1).
  static InteractionGraph line(std::uint32_t numParticipants);

  /// All edges incident to `center` only (base-station topology when center
  /// is the leader index).
  static InteractionGraph star(std::uint32_t numParticipants,
                               std::uint32_t center);

  /// Erdős–Rényi G(m, p), resampled until connected (throws after 1000
  /// failed attempts; p too small).
  static InteractionGraph randomConnected(std::uint32_t numParticipants,
                                          double edgeProbability, Rng& rng);

  std::uint32_t numParticipants() const { return numParticipants_; }
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges() const {
    return edges_;
  }
  std::size_t numEdges() const { return edges_.size(); }

  bool hasEdge(std::uint32_t a, std::uint32_t b) const;
  bool isConnected() const;
  bool isComplete() const {
    return edges_.size() ==
           static_cast<std::size_t>(numParticipants_) * (numParticipants_ - 1) / 2;
  }

  std::string describe() const;

 private:
  std::uint32_t numParticipants_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;  // a < b, sorted
  std::vector<std::vector<std::uint32_t>> adjacency_;
};

}  // namespace ppn
