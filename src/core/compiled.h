// Compiled transition tables: the virtual-free fast path of the simulator.
//
// A Protocol is a finite deterministic transition system, so its entire
// mobile-mobile delta can be flattened once into a dense Q x Q table (and,
// when the leader state space is enumerable and closed, an L x Q leader
// table). After this one-time compilation the hot simulation loop touches no
// virtual dispatch at all: a transition is one table load, and the engine's
// silence question reduces to an O(1) counter test backed by the precomputed
// null-transition bitmaps (see Engine's incremental tracker in engine.h).
//
// Correctness contract: every accessor reproduces the virtual Protocol
// byte-for-byte (mobileDelta / leaderDelta / nameOf / isValidName); the
// interpreted path remains the reference oracle and the differential tests
// in tests/core/compiled_test.cpp enforce bit-identical RunOutcomes.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/protocol.h"
#include "core/types.h"

namespace ppn {

class CompiledProtocol {
 public:
  /// Largest |Q| worth compiling: the Q x Q table stays a few MB and L2/L3
  /// resident. Registry protocols top out in the hundreds of states.
  static constexpr StateId kMaxStates = 2048;

  /// Largest L x Q leader table (entries) worth materializing; above this the
  /// leader falls back to virtual dispatch (mobile-mobile interactions — the
  /// 1 - 2/(N+1) majority — stay compiled either way).
  static constexpr std::size_t kMaxLeaderEntries = std::size_t{1} << 22;

  /// Returned by leaderIndexOf for leader states outside the compiled set.
  static constexpr std::uint32_t kNoLeaderIndex = 0xffffffffu;

  /// Cheap pre-check: Q in [1, kMaxStates]. Compilation itself additionally
  /// requires the delta to be closed over 0..Q-1 (throws otherwise).
  static bool compilable(const Protocol& proto);

  /// Compiles `proto`, which must outlive this object. Performs the Q^2
  /// virtual calls once; throws std::invalid_argument when !compilable or the
  /// mobile delta leaves 0..Q-1 (the same condition verifyClosed reports).
  explicit CompiledProtocol(const Protocol& proto);

  const Protocol& protocol() const { return *proto_; }
  StateId numStates() const { return q_; }

  // --- hot-path accessors (table loads only) ------------------------------

  MobilePair mobileDelta(StateId a, StateId b) const {
    return mobile_[static_cast<std::size_t>(a) * q_ + b];
  }

  /// delta(a, b) == (a, b): the interaction would change nothing.
  bool mobileNull(StateId a, StateId b) const {
    const std::size_t bit = static_cast<std::size_t>(a) * q_ + b;
    return (nullMM_[bit >> 6] >> (bit & 63)) & 1u;
  }

  /// delta(s, s) != (s, s): two agents sharing state s can still change.
  bool diagActive(StateId s) const {
    return (diagActive_[s >> 6] >> (s & 63)) & 1u;
  }

  /// Bit row for the incremental silence tracker: bit t of row s is set iff
  /// t != s and delta(s,t) or delta(t,s) is non-null — i.e. the unordered
  /// state pair {s, t} keeps the configuration live. Bit s itself is always
  /// clear (the diagonal is diagActive). Rows are wordsPerRow() words long.
  const std::uint64_t* activeRow(StateId s) const {
    return activeRows_.data() + static_cast<std::size_t>(s) * words_;
  }
  std::size_t wordsPerRow() const { return words_; }

  StateId nameOf(StateId s) const { return names_[s]; }
  bool isValidName(StateId s) const {
    return (validNames_[s >> 6] >> (s & 63)) & 1u;
  }

  // --- leader fast path ----------------------------------------------------

  /// True when the leader delta was materialized: the protocol has a leader,
  /// allLeaderStates() is enumerable, the table fits kMaxLeaderEntries and
  /// the enumerated set is closed under leaderDelta. When false, leader
  /// interactions use virtual dispatch (still exact).
  bool leaderCompiled() const { return leaderCompiled_; }

  /// Dense index of a leader state, or kNoLeaderIndex when it is outside the
  /// compiled set (e.g. after fault injection of an un-enumerated state).
  std::uint32_t leaderIndexOf(LeaderStateId leader) const {
    const auto it = leaderIndex_.find(leader);
    return it == leaderIndex_.end() ? kNoLeaderIndex : it->second;
  }

  LeaderStateId leaderIdAt(std::uint32_t index) const {
    return leaderIds_[index];
  }

  /// Table entry: successor leader by dense index (no hash on the hot path)
  /// plus the agent's successor state.
  struct LeaderEntry {
    std::uint32_t nextLeader;
    StateId mobile;
  };

  const LeaderEntry& leaderDelta(std::uint32_t leaderIndex, StateId mobile) const {
    return leader_[static_cast<std::size_t>(leaderIndex) * q_ + mobile];
  }

  /// leaderDelta(l, s) == (l, s): the leader interaction would change nothing
  /// (not even the leader's own state).
  bool leaderNull(std::uint32_t leaderIndex, StateId mobile) const {
    const std::size_t bit = static_cast<std::size_t>(leaderIndex) * q_ + mobile;
    return (nullLM_[bit >> 6] >> (bit & 63)) & 1u;
  }

 private:
  const Protocol* proto_;
  StateId q_;
  std::size_t words_;  ///< 64-bit words per Q-bit row

  std::vector<MobilePair> mobile_;      ///< Q x Q successor pairs
  std::vector<std::uint64_t> nullMM_;   ///< Q x Q null-transition bitmap
  std::vector<std::uint64_t> diagActive_;
  std::vector<std::uint64_t> activeRows_;  ///< Q rows x words_ (pair liveness)
  std::vector<StateId> names_;
  std::vector<std::uint64_t> validNames_;

  bool leaderCompiled_ = false;
  std::vector<LeaderStateId> leaderIds_;  ///< dense index -> encoded state
  std::unordered_map<LeaderStateId, std::uint32_t> leaderIndex_;
  std::vector<LeaderEntry> leader_;    ///< L x Q successors
  std::vector<std::uint64_t> nullLM_;  ///< L x Q null bitmap
};

}  // namespace ppn
