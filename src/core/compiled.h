// Compiled transition tables: the virtual-free fast path of the simulator.
//
// A Protocol is a finite deterministic transition system, so its entire
// mobile-mobile delta can be flattened once into a dense Q x Q table (and,
// when the leader state space is enumerable and closed, an L x Q leader
// table). After this one-time compilation the hot simulation loop touches no
// virtual dispatch at all: a transition is one table load, and the engine's
// silence question reduces to an O(1) counter test backed by the precomputed
// null-transition bitmaps (see Engine's incremental tracker in engine.h).
//
// Correctness contract: every accessor reproduces the virtual Protocol
// byte-for-byte (mobileDelta / leaderDelta / nameOf / isValidName); the
// interpreted path remains the reference oracle and the differential tests
// in tests/core/compiled_test.cpp enforce bit-identical RunOutcomes.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/protocol.h"
#include "core/types.h"

namespace ppn {

class CompiledProtocol {
 public:
  /// Largest |Q| worth compiling: the Q x Q table stays a few MB and L2/L3
  /// resident. Registry protocols top out in the hundreds of states.
  static constexpr StateId kMaxStates = 2048;

  /// Largest L x Q leader table (entries) worth materializing; above this the
  /// leader falls back to virtual dispatch (mobile-mobile interactions — the
  /// 1 - 2/(N+1) majority — stay compiled either way).
  static constexpr std::size_t kMaxLeaderEntries = std::size_t{1} << 22;

  /// Returned by leaderIndexOf for leader states outside the compiled set.
  static constexpr std::uint32_t kNoLeaderIndex = 0xffffffffu;

  /// Cheap pre-check: Q in [1, kMaxStates]. Compilation itself additionally
  /// requires the delta to be closed over 0..Q-1 (throws otherwise).
  static bool compilable(const Protocol& proto);

  /// Compiles `proto`, which must outlive this object. Performs the Q^2
  /// virtual calls once; throws std::invalid_argument when !compilable or the
  /// mobile delta leaves 0..Q-1 (the same condition verifyClosed reports).
  explicit CompiledProtocol(const Protocol& proto);

  const Protocol& protocol() const { return *proto_; }
  StateId numStates() const { return q_; }

  // --- hot-path accessors (table loads only) ------------------------------

  MobilePair mobileDelta(StateId a, StateId b) const {
    return mobile_[static_cast<std::size_t>(a) * q_ + b];
  }

  /// delta(a, b) == (a, b): the interaction would change nothing.
  bool mobileNull(StateId a, StateId b) const {
    const std::size_t bit = static_cast<std::size_t>(a) * q_ + b;
    return (nullMM_[bit >> 6] >> (bit & 63)) & 1u;
  }

  /// delta(s, s) != (s, s): two agents sharing state s can still change.
  bool diagActive(StateId s) const {
    return (diagActive_[s >> 6] >> (s & 63)) & 1u;
  }

  /// Bit row for the incremental silence tracker: bit t of row s is set iff
  /// t != s and delta(s,t) or delta(t,s) is non-null — i.e. the unordered
  /// state pair {s, t} keeps the configuration live. Bit s itself is always
  /// clear (the diagonal is diagActive). Rows are wordsPerRow() words long.
  const std::uint64_t* activeRow(StateId s) const {
    return activeRows_.data() + static_cast<std::size_t>(s) * words_;
  }
  std::size_t wordsPerRow() const { return words_; }

  StateId nameOf(StateId s) const { return names_[s]; }
  bool isValidName(StateId s) const {
    return (validNames_[s >> 6] >> (s & 63)) & 1u;
  }

  // --- leader fast path ----------------------------------------------------

  /// True when the leader delta was materialized: the protocol has a leader,
  /// allLeaderStates() is enumerable, the table fits kMaxLeaderEntries and
  /// the enumerated set is closed under leaderDelta. When false, leader
  /// interactions use virtual dispatch (still exact).
  bool leaderCompiled() const { return leaderCompiled_; }

  /// Dense index of a leader state, or kNoLeaderIndex when it is outside the
  /// compiled set (e.g. after fault injection of an un-enumerated state).
  std::uint32_t leaderIndexOf(LeaderStateId leader) const {
    const auto it = leaderIndex_.find(leader);
    return it == leaderIndex_.end() ? kNoLeaderIndex : it->second;
  }

  LeaderStateId leaderIdAt(std::uint32_t index) const {
    return leaderIds_[index];
  }

  /// Table entry: successor leader by dense index (no hash on the hot path)
  /// plus the agent's successor state.
  struct LeaderEntry {
    std::uint32_t nextLeader;
    StateId mobile;
  };

  const LeaderEntry& leaderDelta(std::uint32_t leaderIndex, StateId mobile) const {
    return leader_[static_cast<std::size_t>(leaderIndex) * q_ + mobile];
  }

  /// leaderDelta(l, s) == (l, s): the leader interaction would change nothing
  /// (not even the leader's own state).
  bool leaderNull(std::uint32_t leaderIndex, StateId mobile) const {
    const std::size_t bit = static_cast<std::size_t>(leaderIndex) * q_ + mobile;
    return (nullLM_[bit >> 6] >> (bit & 63)) & 1u;
  }

 private:
  const Protocol* proto_;
  StateId q_;
  std::size_t words_;  ///< 64-bit words per Q-bit row

  std::vector<MobilePair> mobile_;      ///< Q x Q successor pairs
  std::vector<std::uint64_t> nullMM_;   ///< Q x Q null-transition bitmap
  std::vector<std::uint64_t> diagActive_;
  std::vector<std::uint64_t> activeRows_;  ///< Q rows x words_ (pair liveness)
  std::vector<StateId> names_;
  std::vector<std::uint64_t> validNames_;

  bool leaderCompiled_ = false;
  std::vector<LeaderStateId> leaderIds_;  ///< dense index -> encoded state
  std::unordered_map<LeaderStateId, std::uint32_t> leaderIndex_;
  std::vector<LeaderEntry> leader_;    ///< L x Q successors
  std::vector<std::uint64_t> nullLM_;  ///< L x Q null bitmap
};

// --- per-lane incremental silence tracker ----------------------------------
//
// The tracker state of ONE replica ("lane") of a compiled protocol: the
// mobile-state histogram, the presence bitset, and the live-unordered-pair
// counter. The Engine owns one lane; the SoA kernel (sim/soa_kernel.h) owns K
// of them side by side in packed arrays. Both drive the same arithmetic
// through this view, so the O(1)-per-interaction update rule and the silence
// rule live in exactly one place.
//
// The view borrows caller-owned storage: `hist` is numStates() counters,
// `present` is wordsPerRow() words, `activePairs` one counter. Nothing here
// allocates or branches on ownership — it compiles away into the same code
// the Engine historically inlined.
class CompiledLaneTracker {
 public:
  CompiledLaneTracker(const CompiledProtocol& compiled, std::uint32_t* hist,
                      std::uint64_t* present, std::uint64_t& activePairs)
      : compiled_(compiled),
        hist_(hist),
        present_(present),
        activePairs_(activePairs) {}

  /// Number of live pairs {s, t} with t present: the compiled row has bit t
  /// set iff the unordered state pair can still change the configuration. Bit
  /// s is clear in its own row, so the order of presence updates cannot skew
  /// this.
  static std::uint64_t activeWith(const CompiledProtocol& compiled,
                                  const std::uint64_t* present, StateId s) {
    const std::uint64_t* row = compiled.activeRow(s);
    std::uint64_t count = 0;
    const std::size_t words = compiled.wordsPerRow();
    for (std::size_t w = 0; w < words; ++w) {
      count += static_cast<std::uint64_t>(std::popcount(row[w] & present[w]));
    }
    return count;
  }
  std::uint64_t activeWith(StateId s) const {
    return activeWith(compiled_, present_, s);
  }

  void add(StateId s) {
    const std::uint32_t c = ++hist_[s];
    if (c == 1) {
      present_[s >> 6] |= std::uint64_t{1} << (s & 63);
      activePairs_ += activeWith(s);
    } else if (c == 2 && compiled_.diagActive(s)) {
      ++activePairs_;
    }
  }

  void remove(StateId s) {
    const std::uint32_t c = --hist_[s];
    if (c == 0) {
      present_[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
      activePairs_ -= activeWith(s);
    } else if (c == 1 && compiled_.diagActive(s)) {
      --activePairs_;
    }
  }

  /// Rebuilds the lane from a mobile-state sequence (histogram, presence and
  /// pair counter zeroed first). Caller-validated states only.
  template <typename It>
  void rebuild(It first, It last) {
    const StateId q = compiled_.numStates();
    for (StateId s = 0; s < q; ++s) hist_[s] = 0;
    const std::size_t words = compiled_.wordsPerRow();
    for (std::size_t w = 0; w < words; ++w) present_[w] = 0;
    activePairs_ = 0;
    for (It it = first; it != last; ++it) add(*it);
  }

 private:
  const CompiledProtocol& compiled_;
  std::uint32_t* hist_;
  std::uint64_t* present_;
  std::uint64_t& activePairs_;
};

/// Silence verdict for one lane from its tracker state: the pair counter
/// answers the mobile-mobile question in O(1); the leader — whose state
/// changes only on leader interactions, while silence is polled, not
/// streamed — is judged by scanning the present states against the compiled
/// null row, or the virtual delta when `leaderIdx` says the current leader
/// state is outside the compiled set. Identical verdict to
/// isSilent(proto, config) by the PR 3 equivalence tests.
inline bool compiledLaneSilent(const CompiledProtocol& compiled,
                               const Protocol& proto,
                               std::uint64_t activePairs,
                               const std::uint32_t* hist,
                               const std::optional<LeaderStateId>& leader,
                               std::uint32_t leaderIdx) {
  if (activePairs != 0) return false;
  if (!leader.has_value()) return true;
  const StateId q = compiled.numStates();
  if (leaderIdx != CompiledProtocol::kNoLeaderIndex) {
    for (StateId s = 0; s < q; ++s) {
      if (hist[s] != 0 && !compiled.leaderNull(leaderIdx, s)) return false;
    }
    return true;
  }
  for (StateId s = 0; s < q; ++s) {
    if (hist[s] == 0) continue;
    const LeaderResult r = proto.leaderDelta(*leader, s);
    if (r.mobile != s || r.leader != *leader) return false;
  }
  return true;
}

}  // namespace ppn
