#include "core/configuration.h"

#include <algorithm>

namespace ppn {

Configuration Configuration::canonicalized() const {
  Configuration c = *this;
  std::sort(c.mobile.begin(), c.mobile.end());
  return c;
}

std::uint32_t Configuration::multiplicity(StateId s) const {
  std::uint32_t n = 0;
  for (const StateId m : mobile) n += (m == s) ? 1u : 0u;
  return n;
}

bool Configuration::allDistinct() const {
  std::vector<StateId> sorted = mobile;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

std::vector<std::uint32_t> Configuration::histogram(StateId numStates) const {
  std::vector<std::uint32_t> h(numStates, 0);
  for (const StateId m : mobile) {
    if (m < numStates) ++h[m];
  }
  return h;
}

std::string Configuration::toString(const std::string& leaderDesc) const {
  std::string out = "[";
  for (std::size_t i = 0; i < mobile.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(mobile[i]);
  }
  if (leader.has_value()) {
    out += " | ";
    out += leaderDesc.empty() ? ("L" + std::to_string(*leader)) : leaderDesc;
  }
  out += "]";
  return out;
}

std::size_t Configuration::hashValue() const {
  // FNV-1a over the mobile states then the leader state.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  };
  for (const StateId m : mobile) mix(m);
  mix(leader.has_value() ? (*leader + 1) : 0);
  return static_cast<std::size_t>(h);
}

}  // namespace ppn
