// Execution engine: applies scheduled interactions to a configuration and
// tracks convergence metrics.
//
// Participant indexing convention (shared with the schedulers): mobile agents
// are participants 0 .. N-1; when the protocol has a leader it is participant
// N. An *execution* in the paper's sense is the sequence of configurations
// produced by repeatedly calling step().
//
// Two execution paths share this interface:
//  * the interpreted path — virtual Protocol dispatch per interaction and
//    histogram-rebuilding silence checks. The reference oracle.
//  * the compiled fast path — attachCompiled() binds a CompiledProtocol
//    (flat transition tables, core/compiled.h) and the engine maintains an
//    incremental silence tracker: the mobile-state histogram is updated in
//    O(1) per interaction and an active-pair counter (derived from the
//    compiled null-transition bitmaps) counts the live unordered state pairs,
//    so silent() collapses to a counter test plus an O(present-states) leader
//    row scan. Both paths produce bit-identical executions and counters
//    (tests/core/compiled_test.cpp enforces this differentially).
#pragma once

#include <cstdint>
#include <vector>

#include "core/configuration.h"
#include "core/protocol.h"
#include "obs/observer.h"
#include "sched/scheduler.h"
#include "util/rng.h"

namespace ppn {

class CompiledProtocol;

/// Applies one interaction to `config` in place. Returns true when the
/// transition was non-null (the configuration changed, including leader-only
/// changes). Participant indices follow the convention above; out-of-range
/// indices throw std::logic_error (states themselves are validated once, at
/// Engine construction, not per step).
bool applyInteraction(const Protocol& proto, Configuration& config,
                      Interaction interaction);

/// True when no applicable transition changes anything: every pair of present
/// mobile states (and the leader against every present state) maps to itself.
/// Silent configurations are terminal (paper: "terminal configuration").
bool isSilent(const Protocol& proto, const Configuration& config);

/// Like isSilent but tolerates transitions that only change the *leader*
/// state. This is the convergence notion for the naming problem itself: the
/// mobile agents' names must eventually never change; the leader is allowed
/// internal housekeeping.
bool isMobileSilent(const Protocol& proto, const Configuration& config);

/// Like isMobileSilent but judged on PROJECTED names (Protocol::nameOf):
/// transitions may shuffle auxiliary per-agent state as long as no agent's
/// name changes. Identical to isMobileSilent for identity projections.
bool isNameQuiescent(const Protocol& proto, const Configuration& config);

/// True when all mobile agents hold pairwise distinct names (nameOf
/// projections) and every held state is a valid final name.
bool isNamed(const Protocol& proto, const Configuration& config);

/// The naming problem is solved in `config` when names are distinct, valid
/// and can never change again: isNamed && isNameQuiescent.
bool isNamingSolved(const Protocol& proto, const Configuration& config);

/// Builds the configuration for uniformly initialized mobile agents (and the
/// initialized leader when the protocol defines one). Throws std::logic_error
/// if the protocol defines no uniform mobile initialization.
Configuration uniformConfiguration(const Protocol& proto, std::uint32_t numMobile);

/// Builds an adversarially/arbitrarily initialized configuration: every
/// mobile state uniform-random; leader = initialLeaderState() when the
/// protocol requires an initialized leader, otherwise a random enumerable
/// leader state (throws std::logic_error if none are enumerable).
Configuration arbitraryConfiguration(const Protocol& proto,
                                     std::uint32_t numMobile, Rng& rng);

class Engine {
 public:
  /// The protocol must outlive the engine. Validates every mobile state of
  /// `start` against the protocol's state space once, here — the hot path
  /// then indexes unchecked.
  Engine(const Protocol& proto, Configuration start);

  /// Binds the compiled fast path (nullptr detaches and reverts to the
  /// interpreted path). `compiled` must be a compilation of this engine's
  /// protocol and must outlive the engine; it is read-only and may be shared
  /// by many engines across threads. (Re)builds the incremental silence
  /// tracker from the current configuration.
  void attachCompiled(const CompiledProtocol* compiled);
  const CompiledProtocol* compiledProtocol() const { return compiled_; }

  std::uint32_t numMobile() const { return config_.numMobile(); }

  /// Mobile agents plus the leader when present.
  std::uint32_t numParticipants() const {
    return numMobile() + (proto_->hasLeader() ? 1u : 0u);
  }

  /// Applies one interaction; returns true when it was non-null.
  bool step(Interaction interaction);

  /// Applies the next `n` interactions from `sched` — the hot kernel. With a
  /// compiled protocol attached this is a tight virtual-free loop over the
  /// flat tables, pulling scheduler pairs in blocks via Scheduler::fill;
  /// otherwise it degrades to n step(sched.next()) calls. Configuration,
  /// counters and lastChangeAt() are identical on both paths.
  void runBurst(Scheduler& sched, std::uint64_t n);

  const Configuration& config() const { return config_; }
  const Protocol& protocol() const { return *proto_; }

  /// O(1) active-pair test + O(present-states) leader row scan on the
  /// compiled path; full isSilent() otherwise. Same verdict either way.
  bool silent() const;
  bool namingSolved() const { return isNamingSolved(*proto_, config_); }

  std::uint64_t totalInteractions() const { return interactions_; }
  std::uint64_t nonNullInteractions() const { return nonNull_; }

  /// Interaction count at the moment of the most recent configuration change
  /// (0 if it never changed). Once the engine is silent this is the exact
  /// convergence time, independent of how often silence was polled.
  std::uint64_t lastChangeAt() const { return lastChangeAt_; }

  /// Transient-fault injection: overwrite one agent's state / leader state.
  /// Validates the victim index and the injected state (throws
  /// std::logic_error) — faults are rare, so unlike step() this entry point
  /// keeps its guards. When an observer is attached, each call emits a
  /// fault_injected event — this is the single choke point every fault
  /// regime goes through, so attaching here observes them all.
  void corruptMobile(AgentId agent, StateId state);
  void corruptLeader(LeaderStateId state);

  /// Attaches a telemetry observer (nullptr detaches). `runId` labels this
  /// engine's fault events; the hot step() path is untouched — only the
  /// corrupt* fault-injection entry points carry the (single-branch) hook.
  void attachObserver(RunObserver* observer, std::uint64_t runId = 0) {
    observer_ = observer;
    observerRunId_ = runId;
  }
  RunObserver* observer() const { return observer_; }
  std::uint64_t observerRunId() const { return observerRunId_; }

  /// Replace the whole configuration (e.g. to reuse an engine across runs).
  void resetTo(Configuration start);

 private:
  /// One compiled interaction: table lookups plus the O(1) tracker updates.
  /// Does not touch the interaction counters (callers batch those).
  bool stepCompiled(Interaction interaction);

  /// Incremental silence tracker (compiled path only).
  void trackerAdd(StateId s);
  void trackerRemove(StateId s);
  std::uint64_t trackerActiveWith(StateId s) const;
  void rebuildTracker();
  void refreshLeaderIndex();
  bool fastSilent() const;

  const Protocol* proto_;
  Configuration config_;
  std::uint64_t interactions_ = 0;
  std::uint64_t nonNull_ = 0;
  std::uint64_t lastChangeAt_ = 0;
  RunObserver* observer_ = nullptr;
  std::uint64_t observerRunId_ = 0;

  const CompiledProtocol* compiled_ = nullptr;
  std::vector<std::uint32_t> hist_;      ///< mobile-state multiplicities
  std::vector<std::uint64_t> present_;   ///< presence bitset over states
  std::uint64_t activePairs_ = 0;        ///< live unordered state pairs
  std::uint32_t leaderIdx_ = 0xffffffffu;  ///< dense leader index cache
  std::vector<Interaction> burstBuf_;    ///< scratch for Scheduler::fill
};

}  // namespace ppn
