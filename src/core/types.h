// Fundamental identifier types of the population-protocol model.
//
// Terminology follows the paper (Burman, Beauquier, Sohier: "Space-Optimal
// Naming in Population Protocols"): a *population* is N mobile agents plus an
// optional distinguishable *leader* (called BST when it plays the base
// station role of Protocols 1-3). Mobile agents all share one finite state
// set Q = {0, .., |Q|-1}; the leader's state space is protocol-defined and
// may be much larger (the model allows the leader to be "as powerful as
// needed").
#pragma once

#include <cstdint>
#include <limits>

namespace ppn {

/// State of a mobile agent. Dense: valid states are 0 .. numMobileStates()-1.
using StateId = std::uint32_t;

/// Index of a mobile agent within the population: 0 .. N-1.
using AgentId = std::uint32_t;

/// Encoded state of the leader. The encoding is protocol-specific and may be
/// sparse (the analysis layer hashes ids, it never assumes density).
using LeaderStateId = std::uint64_t;

/// Result of a mobile-mobile transition rule (p, q) -> (p', q').
struct MobilePair {
  StateId initiator;
  StateId responder;

  friend bool operator==(const MobilePair&, const MobilePair&) = default;
};

/// Result of a leader-mobile transition rule.
struct LeaderResult {
  LeaderStateId leader;
  StateId mobile;

  friend bool operator==(const LeaderResult&, const LeaderResult&) = default;
};

/// An interaction between two participants of the population, identified by
/// participant index: mobile agents are 0 .. N-1 and, when the protocol has a
/// leader, the leader is participant N. The pair is ordered: `initiator` is
/// the paper's interaction initiator, which matters for asymmetric rules.
struct Interaction {
  std::uint32_t initiator;
  std::uint32_t responder;

  friend bool operator==(const Interaction&, const Interaction&) = default;
};

/// Sentinel used by a few diagnostics APIs.
inline constexpr StateId kInvalidState = std::numeric_limits<StateId>::max();

}  // namespace ppn
