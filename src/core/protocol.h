// The population-protocol abstraction (Section 2 of the paper).
//
// A protocol is a *deterministic* pairwise transition system over a finite
// mobile-state set, optionally with a distinguishable leader. Transitions are
// total: for every ordered pair of states there is exactly one outcome (the
// identity outcome is a "null transition").
//
// Symmetry (paper, Section 2): a protocol is symmetric when
// (p,q) -> (p',q') implies (q,p) -> (q',p'); in particular two agents meeting
// in the same state must leave the interaction in the same state. The
// concrete classes declare their symmetry, and `verifySymmetric` checks the
// declaration exhaustively.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/types.h"

namespace ppn {

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Human-readable protocol name for tables and logs.
  virtual std::string name() const = 0;

  /// |Q|: size of the mobile-agent state space. States are 0 .. |Q|-1.
  virtual StateId numMobileStates() const = 0;

  /// Whether the population contains the distinguishable leader agent.
  virtual bool hasLeader() const { return false; }

  /// Whether the protocol's mobile-mobile rules are symmetric. Checked by
  /// verifySymmetric() in tests.
  virtual bool isSymmetric() const = 0;

  /// Mobile-mobile transition rule delta(p, q) = (p', q'). Must be total and
  /// deterministic. `initiator`/`responder` order matters iff asymmetric.
  virtual MobilePair mobileDelta(StateId initiator, StateId responder) const = 0;

  /// Leader-mobile transition rule. Only called when hasLeader(). The default
  /// implementation aborts (protocols without leader never receive it).
  virtual LeaderResult leaderDelta(LeaderStateId leader, StateId mobile) const;

  /// The uniform initial state of mobile agents, if the protocol requires
  /// initialization. nullopt means the protocol tolerates arbitrary
  /// initialization (self-stabilizing on the mobile side).
  virtual std::optional<StateId> uniformMobileInit() const { return std::nullopt; }

  /// The initial leader state, if the protocol requires an initialized
  /// leader. nullopt means the leader may start in any state from
  /// allLeaderStates() (non-initialized leader).
  virtual std::optional<LeaderStateId> initialLeaderState() const {
    return std::nullopt;
  }

  /// Enumerates every legal leader state (used by the model checker to
  /// explore arbitrary leader initialization). Returns an empty vector when
  /// the space is impractically large to enumerate; in that case analyses
  /// requiring arbitrary leader initialization are skipped.
  virtual std::vector<LeaderStateId> allLeaderStates() const { return {}; }

  /// Debug rendering of an encoded leader state.
  virtual std::string describeLeaderState(LeaderStateId leader) const;

  /// Naming semantics: whether mobile state `s` is an acceptable *final* name
  /// (some protocols reserve states, e.g. the homonym sink 0 of Protocols 1-2
  /// or the extra state P of the (P+1)-state protocols).
  virtual bool isValidName(StateId s) const {
    (void)s;
    return true;
  }

  /// Projects a mobile state onto the agent's *name*. Defaults to identity:
  /// the state IS the name, as everywhere in the paper. Wrappers carrying
  /// auxiliary bits (e.g. the symmetrizing transformer of the paper's
  /// footnote 5, reference [17]) override this so that distinctness and
  /// quiescence are judged on names, not on scratch state.
  virtual StateId nameOf(StateId s) const { return s; }

  /// For counting protocols: the population-size answer encoded in a leader
  /// state (paper Theorem 15). nullopt for protocols that do not count.
  virtual std::optional<std::uint64_t> countingAnswer(LeaderStateId leader) const {
    (void)leader;
    return std::nullopt;
  }
};

/// Exhaustively verifies the symmetry declaration of `p` over all ordered
/// state pairs; returns a violating pair description or nullopt if consistent.
std::optional<std::string> verifySymmetric(const Protocol& p);

/// Checks totality sanity: every transition stays within 0 .. |Q|-1.
/// Returns a description of the first violation or nullopt.
std::optional<std::string> verifyClosed(const Protocol& p);

}  // namespace ppn
