#include "core/interaction_graph.h"

#include <algorithm>
#include <stdexcept>

namespace ppn {

InteractionGraph::InteractionGraph(
    std::uint32_t numParticipants,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges)
    : numParticipants_(numParticipants) {
  if (numParticipants < 2) {
    throw std::invalid_argument("InteractionGraph: need >= 2 participants");
  }
  for (auto& [a, b] : edges) {
    if (a == b) throw std::invalid_argument("InteractionGraph: self-loop");
    if (a >= numParticipants || b >= numParticipants) {
      throw std::invalid_argument("InteractionGraph: endpoint out of range");
    }
    if (a > b) std::swap(a, b);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  edges_ = std::move(edges);
  adjacency_.assign(numParticipants_, {});
  for (const auto& [a, b] : edges_) {
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
  }
}

InteractionGraph InteractionGraph::complete(std::uint32_t m) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i < m; ++i) {
    for (std::uint32_t j = i + 1; j < m; ++j) edges.emplace_back(i, j);
  }
  return InteractionGraph(m, std::move(edges));
}

InteractionGraph InteractionGraph::ring(std::uint32_t m) {
  if (m < 3) throw std::invalid_argument("ring needs >= 3 participants");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i < m; ++i) edges.emplace_back(i, (i + 1) % m);
  return InteractionGraph(m, std::move(edges));
}

InteractionGraph InteractionGraph::line(std::uint32_t m) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i + 1 < m; ++i) edges.emplace_back(i, i + 1);
  return InteractionGraph(m, std::move(edges));
}

InteractionGraph InteractionGraph::star(std::uint32_t m, std::uint32_t center) {
  if (center >= m) throw std::invalid_argument("star center out of range");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i < m; ++i) {
    if (i != center) edges.emplace_back(center, i);
  }
  return InteractionGraph(m, std::move(edges));
}

InteractionGraph InteractionGraph::randomConnected(std::uint32_t m,
                                                   double edgeProbability,
                                                   Rng& rng) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    for (std::uint32_t i = 0; i < m; ++i) {
      for (std::uint32_t j = i + 1; j < m; ++j) {
        if (rng.chance(edgeProbability)) edges.emplace_back(i, j);
      }
    }
    InteractionGraph g(m, std::move(edges));
    if (g.isConnected()) return g;
  }
  throw std::runtime_error(
      "randomConnected: could not sample a connected graph (p too small?)");
}

bool InteractionGraph::hasEdge(std::uint32_t a, std::uint32_t b) const {
  if (a > b) std::swap(a, b);
  return std::binary_search(edges_.begin(), edges_.end(), std::pair{a, b});
}

bool InteractionGraph::isConnected() const {
  std::vector<bool> seen(numParticipants_, false);
  std::vector<std::uint32_t> stack{0};
  seen[0] = true;
  std::uint32_t visited = 1;
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    for (const std::uint32_t w : adjacency_[v]) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        stack.push_back(w);
      }
    }
  }
  return visited == numParticipants_;
}

std::string InteractionGraph::describe() const {
  return "graph(" + std::to_string(numParticipants_) + " participants, " +
         std::to_string(edges_.size()) + " edges)";
}

}  // namespace ppn
