#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace ppn {

double quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted[lo];
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  s.median = quantile(samples, 0.5);
  s.p10 = quantile(samples, 0.1);
  s.p90 = quantile(samples, 0.9);
  double sum = 0.0;
  for (const double x : samples) sum += x;
  s.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double sq = 0.0;
    for (const double x : samples) sq += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(samples.size() - 1));
  }
  return s;
}

std::string Summary::toString(int precision) const {
  return "n=" + std::to_string(count) + " mean=" + formatDouble(mean, precision) +
         " sd=" + formatDouble(stddev, precision) +
         " med=" + formatDouble(median, precision) +
         " p10=" + formatDouble(p10, precision) +
         " p90=" + formatDouble(p90, precision) +
         " min=" + formatDouble(min, precision) +
         " max=" + formatDouble(max, precision);
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

}  // namespace ppn
