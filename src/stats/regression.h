// Least-squares fits used to characterize convergence-cost growth: power
// laws (fit in log-log space) and exponentials (fit in semi-log space).
#pragma once

#include <vector>

namespace ppn {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination; 1 = perfect fit
};

/// Ordinary least squares y = slope * x + intercept. Requires >= 2 points
/// (returns a zero fit otherwise).
LinearFit linearFit(const std::vector<double>& x, const std::vector<double>& y);

/// Fits y ~ c * x^k by regressing log y on log x; returns (k, log c, r2).
/// Points with non-positive coordinates are skipped.
LinearFit powerLawFit(const std::vector<double>& x, const std::vector<double>& y);

/// Fits y ~ c * b^x by regressing log y on x; `slope` is ln b. Points with
/// non-positive y are skipped.
LinearFit exponentialFit(const std::vector<double>& x,
                         const std::vector<double>& y);

}  // namespace ppn
