// Descriptive statistics for experiment results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ppn {

struct Summary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p10 = 0.0;
  double p90 = 0.0;

  std::string toString(int precision = 1) const;
};

/// Computes a Summary; an empty input yields an all-zero Summary.
Summary summarize(std::vector<double> samples);

/// Streaming mean/variance (Welford), for accumulation without storing
/// samples. Does not provide percentiles.
class Accumulator {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile by sorting (linear interpolation between order statistics).
double quantile(std::vector<double> sorted, double q);

}  // namespace ppn
