#include "stats/regression.h"

#include <cmath>

namespace ppn {

LinearFit linearFit(const std::vector<double>& x, const std::vector<double>& y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;  // vertical data: no meaningful slope
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    double ssRes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double pred = fit.slope * x[i] + fit.intercept;
      ssRes += (y[i] - pred) * (y[i] - pred);
    }
    fit.r2 = 1.0 - ssRes / syy;
  } else {
    fit.r2 = 1.0;  // constant y perfectly explained by slope 0
  }
  return fit;
}

namespace {

LinearFit logSpaceFit(const std::vector<double>& x, const std::vector<double>& y,
                      bool logX) {
  std::vector<double> fx, fy;
  const std::size_t n = std::min(x.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (y[i] <= 0.0) continue;
    if (logX && x[i] <= 0.0) continue;
    fx.push_back(logX ? std::log(x[i]) : x[i]);
    fy.push_back(std::log(y[i]));
  }
  return linearFit(fx, fy);
}

}  // namespace

LinearFit powerLawFit(const std::vector<double>& x, const std::vector<double>& y) {
  return logSpaceFit(x, y, /*logX=*/true);
}

LinearFit exponentialFit(const std::vector<double>& x,
                         const std::vector<double>& y) {
  return logSpaceFit(x, y, /*logX=*/false);
}

}  // namespace ppn
