// Self-stabilization certification: sweeps the registry's protocol set ×
// fault regimes × schedulers and emits a machine-readable ROBUSTNESS TABLE —
// the mechanical companion to the paper's Table 1.
//
// Table 1 separates protocols by initialization assumptions; this table
// separates them by *behavior under continuous faults*:
//  * rows the paper claims self-stabilizing (Props 12, 13, 16) must certify
//    at 100% recovery — anything less is a FAILED cell (a refutation of the
//    implementation, or of the claim);
//  * initialized rows (Prop 14, Protocol 1, Prop 17) are EXPECTED to exhibit
//    wrong-stable outcomes; the table records the observed rates as
//    evidence, not failure;
//  * cells pairing a global-fairness-only protocol with a merely weakly fair
//    deterministic scheduler are skipped — the paper's own impossibility
//    results (Prop 1, Thm 11) say nothing can be certified there.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/campaign.h"
#include "util/table.h"

namespace ppn {

class JsonWriter;  // util/json.h

struct CertifySpec {
  /// Protocol registry keys to sweep; empty = protocolKeys().
  std::vector<std::string> protocols;
  /// Population sizes N. P = N for naming protocols (the hardest, zero-slack
  /// instance) with two carve-outs applied per-cell: `counting` runs at
  /// P = N+1 (naming is only claimed for N < P) and `global-leader` caps N
  /// at 4 (its N = P renaming walk costs ~10^9 interactions by P = 5 — see
  /// EXPERIMENTS.md E16).
  std::vector<std::uint32_t> populations = {4, 6};
  std::vector<FaultRegime> regimes = {
      FaultRegime::kPoissonTransient, FaultRegime::kChurn,
      FaultRegime::kTargetedAdversary, FaultRegime::kStuckAgent};
  std::vector<SchedulerKind> schedulers = {SchedulerKind::kRandom};
  /// Agents corrupted per fault event: max(1, round(N * corruptFraction)).
  double corruptFraction = 0.5;
  /// Whether transient regimes also corrupt the leader (where enumerable).
  bool corruptLeader = true;
  double faultRate = 0.005;        ///< poisson/churn per-interaction rate
  std::uint64_t faultPeriod = 500; ///< periodic/targeted event period
  std::uint64_t faultWindow = 20'000;
  std::uint32_t runs = 24;
  std::uint64_t seed = 2026;
  RunLimits limits{100'000'000, 128, 0};
  std::uint32_t threads = 0;
  /// Telemetry probe shared by every cell's campaign (not owned; thread-safe
  /// when threads != 1). Run ids are unique across the whole sweep: cell k's
  /// campaign gets runIdBase = k * runs, so run_start/run_end pairs and
  /// fault/watchdog events remain attributable after cells are interleaved
  /// into one event stream. Null (default) keeps the sweep unobserved.
  RunObserver* observer = nullptr;
  /// Shared batch engine (not owned; sim/batch_engine.h). When set, every
  /// cell's campaign runs drain through the engine's single work queue
  /// (CampaignSpec::engine) instead of spawning `threads` workers per cell —
  /// the whole sweep keeps one pool saturated with no per-cell thread churn.
  /// Cell results and the serialized table are byte-identical either way.
  BatchEngine* engine = nullptr;
};

enum class CellVerdict {
  kCertified,  ///< self-stabilizing row, 100% named recovery
  kFailed,     ///< self-stabilizing row, at least one unrecovered run
  kEvidence,   ///< initialized row: outcomes recorded, nothing to certify
  kDegraded,   ///< watchdog aborted runs; statistics are partial
  kSkipped,    ///< assumption gap (global fairness vs deterministic sched)
};

std::string cellVerdictName(CellVerdict v);

struct RobustnessCell {
  std::string protocol;
  bool selfStabilizing = false;
  std::uint32_t population = 0;
  StateId p = 0;  ///< the protocol's state bound for this cell
  FaultRegime regime = FaultRegime::kPoissonTransient;
  SchedulerKind sched = SchedulerKind::kRandom;
  CampaignResult result;
  CellVerdict verdict = CellVerdict::kSkipped;
  std::string note;
};

struct RobustnessTable {
  std::vector<RobustnessCell> cells;

  /// Aligned ASCII rendering via util/table.h.
  Table render() const;

  /// Machine-readable JSON document (spec echo + one object per cell).
  std::string toJson() const;

  /// True when no cell FAILED and every executed self-stabilizing cell
  /// certified (skipped/evidence/degraded cells do not block).
  bool certified() const;

  std::uint32_t countVerdict(CellVerdict v) const;
};

/// Runs the sweep. Cells execute sequentially; each campaign parallelizes
/// its runs across spec.threads workers (deterministic per-cell results).
RobustnessTable certifyRecovery(const CertifySpec& spec);

/// Number of campaign runs the sweep will actually execute (skipped cells
/// excluded) — the expected-total input for a ProgressReporter.
std::uint64_t plannedRuns(const CertifySpec& spec);

// ---------------------------------------------------------------------------
// Layered sweep API (E24): the campaign orchestration subsystem
// (src/campaign/) executes individual cells on remote shard processes and
// re-judges them at merge time, so the planning / spec-building / judging /
// serialization stages that certifyRecovery chains internally are exported
// here. certifyRecovery(spec) is exactly plan -> cellCampaignSpec ->
// runCampaign -> judge over the planned cells, so a merged distributed sweep
// is byte-identical to the in-process one.

/// One planned sweep cell: the cell coordinates plus the carve-out /
/// assumption-gap decisions (documented on CertifySpec), enumerated up front
/// so every consumer agrees on exactly which cells execute and in what order.
struct RobustnessCellPlan {
  std::string protocol;
  bool selfStabilizing = false;
  std::uint32_t population = 0;
  StateId p = 0;  ///< the protocol's state bound for this cell
  FaultRegime regime = FaultRegime::kPoissonTransient;
  SchedulerKind sched = SchedulerKind::kRandom;
  std::string note;
  bool skipped = false;
};

/// Deterministic cell enumeration for `spec` (plan order is execution order).
std::vector<RobustnessCellPlan> planRobustnessCells(const CertifySpec& spec);

/// The CampaignSpec a sweep runs for one planned cell. The campaign seed is
/// pre-drawn from the cell coordinates (FNV-1a, platform-stable), so a cell's
/// result is independent of which shard or process executes it.
CampaignSpec cellCampaignSpec(const CertifySpec& spec,
                              const RobustnessCellPlan& plan,
                              std::uint64_t runIdBase = 0);

/// Applies the verdict policy (certify/fail/evidence/degraded) to a finished
/// cell's campaign result.
RobustnessCell judgeRobustnessCell(const RobustnessCellPlan& plan,
                                   CampaignResult result);

/// The RobustnessCell a skipped plan cell contributes (verdict kSkipped, no
/// campaign result) — shared by certifyRecovery and the campaign shard
/// runner so both serialize skipped cells identically.
RobustnessCell skippedRobustnessCell(const RobustnessCellPlan& plan);

/// Serializes one cell as the JSON object embedded in RobustnessTable::
/// toJson(). Shared with the campaign shard runner / merge pass so a table
/// rebuilt from shard artifacts is byte-identical to the in-process sweep.
void writeRobustnessCellJson(JsonWriter& w, const RobustnessCell& c);

}  // namespace ppn
