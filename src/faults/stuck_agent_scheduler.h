// Crash faults as a scheduler wrapper: a *stuck* agent silently drops out of
// the interaction pattern for a window of delivered interactions, then
// reappears.
//
// This models the fail-stop/recover behavior the transient-fault model
// cannot: during the window the population behaves as if the agent were
// absent (its state is frozen, no pair involving it is ever delivered), which
// is exactly the hidden-agent construction of the paper's Theorem 11 proof —
// the remaining agents may converge to an illusory solution that the
// returning agent invalidates. Self-stabilizing protocols must re-converge
// after the window closes; the robustness table measures that recovery.
#pragma once

#include <stdexcept>
#include <string>

#include "sched/scheduler.h"

namespace ppn {

/// Wraps any scheduler and suppresses (resamples past) every interaction
/// involving `stuckAgent` while the count of *delivered* interactions lies in
/// [windowStart, windowEnd). Deterministic given the inner scheduler: dropped
/// draws consume the inner stream exactly as if an adversary had filtered it.
class StuckAgentScheduler final : public Scheduler {
 public:
  /// `numParticipants` must be >= 3: with only two participants, freezing one
  /// leaves no legal interaction and next() could never return.
  StuckAgentScheduler(Scheduler& inner, std::uint32_t numParticipants,
                      std::uint32_t stuckAgent, std::uint64_t windowStart,
                      std::uint64_t windowEnd)
      : inner_(&inner),
        stuck_(stuckAgent),
        windowStart_(windowStart),
        windowEnd_(windowEnd) {
    if (numParticipants < 3) {
      throw std::invalid_argument(
          "StuckAgentScheduler needs >= 3 participants");
    }
    if (stuckAgent >= numParticipants) {
      throw std::invalid_argument("stuck agent out of range");
    }
  }

  Interaction next() override {
    for (;;) {
      const Interaction it = inner_->next();
      const bool stuckNow = delivered_ >= windowStart_ && delivered_ < windowEnd_;
      if (!stuckNow || (it.initiator != stuck_ && it.responder != stuck_)) {
        ++delivered_;
        return it;
      }
      ++dropped_;
    }
  }

  std::string name() const override {
    return inner_->name() + "+stuck(" + std::to_string(stuck_) + ")";
  }

  void reset() override {
    inner_->reset();
    delivered_ = 0;
    dropped_ = 0;
  }

  /// Interactions suppressed so far (diagnostics).
  std::uint64_t dropped() const { return dropped_; }

 private:
  Scheduler* inner_;
  std::uint32_t stuck_;
  std::uint64_t windowStart_;
  std::uint64_t windowEnd_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace ppn
