#include "faults/fault_process.h"

#include <cmath>
#include <stdexcept>

#include "analysis/sink_analysis.h"

namespace ppn {

namespace {

/// Geometric inter-arrival gap (>= 1) for a per-interaction event rate:
/// the number of Bernoulli(rate) trials up to and including the first hit.
std::uint64_t geometricGap(double rate, Rng& rng) {
  // Inverse-CDF sampling: ceil(ln(U) / ln(1 - rate)) with U in (0, 1).
  // rate == 1 degenerates to a fault at every interaction.
  if (rate >= 1.0) return 1;
  const double u = std::max(rng.uniform01(), 1e-300);  // avoid log(0)
  const double gap = std::ceil(std::log(u) / std::log1p(-rate));
  if (gap < 1.0) return 1;
  if (gap > 1e18) return static_cast<std::uint64_t>(1e18);
  return static_cast<std::uint64_t>(gap);
}

void requireRate(double rate, const char* who) {
  if (!(rate > 0.0) || rate > 1.0) {
    throw std::invalid_argument(std::string(who) +
                                ": rate must be in (0, 1]");
  }
}

void requirePeriod(std::uint64_t period, const char* who) {
  if (period == 0) {
    throw std::invalid_argument(std::string(who) + ": period must be >= 1");
  }
}

}  // namespace

PoissonTransientFaults::PoissonTransientFaults(double rate, FaultPlan plan,
                                               std::uint64_t seed)
    : rate_(rate), plan_(plan), rng_(seed) {
  requireRate(rate, "PoissonTransientFaults");
}

std::optional<std::uint64_t> PoissonTransientFaults::nextFaultAt(
    std::uint64_t now) {
  if (!pending_.has_value()) pending_ = now + geometricGap(rate_, rng_);
  return pending_;
}

void PoissonTransientFaults::apply(Engine& engine) {
  injectFault(engine, plan_, rng_);
  pending_.reset();
}

PeriodicTransientFaults::PeriodicTransientFaults(std::uint64_t period,
                                                 FaultPlan plan,
                                                 std::uint64_t seed)
    : period_(period), plan_(plan), rng_(seed), nextAt_(period) {
  requirePeriod(period, "PeriodicTransientFaults");
}

std::optional<std::uint64_t> PeriodicTransientFaults::nextFaultAt(
    std::uint64_t now) {
  while (nextAt_ < now) nextAt_ += period_;
  return nextAt_;
}

void PeriodicTransientFaults::apply(Engine& engine) {
  injectFault(engine, plan_, rng_);
  nextAt_ += period_;
}

ChurnFaults::ChurnFaults(double rate, std::uint64_t seed)
    : rate_(rate), rng_(seed) {
  requireRate(rate, "ChurnFaults");
}

std::optional<std::uint64_t> ChurnFaults::nextFaultAt(std::uint64_t now) {
  if (!pending_.has_value()) pending_ = now + geometricGap(rate_, rng_);
  return pending_;
}

void ChurnFaults::apply(Engine& engine) {
  const std::uint32_t n = engine.numMobile();
  if (n > 0) {
    const auto victim = static_cast<AgentId>(rng_.below(n));
    const Protocol& proto = engine.protocol();
    const StateId fresh =
        proto.uniformMobileInit().has_value()
            ? *proto.uniformMobileInit()
            : static_cast<StateId>(rng_.below(proto.numMobileStates()));
    engine.corruptMobile(victim, fresh);
  }
  pending_.reset();
}

TargetedAdversaryFaults::TargetedAdversaryFaults(const Protocol& proto,
                                                 std::uint64_t period,
                                                 std::uint32_t corruptAgents,
                                                 std::uint64_t seed)
    : period_(period),
      corruptAgents_(corruptAgents),
      rng_(seed),
      nextAt_(period),
      sink_(analyzeSinks(proto).sink) {
  requirePeriod(period, "TargetedAdversaryFaults");
}

std::optional<std::uint64_t> TargetedAdversaryFaults::nextFaultAt(
    std::uint64_t now) {
  while (nextAt_ < now) nextAt_ += period_;
  return nextAt_;
}

void TargetedAdversaryFaults::apply(Engine& engine) {
  const std::uint32_t n = engine.numMobile();
  const std::uint32_t toCorrupt = std::min(corruptAgents_, n);
  if (toCorrupt > 0 && n > 0) {
    // Distinct victims via partial Fisher-Yates, like injectFault — but the
    // written state is adversarial, not uniform.
    std::vector<AgentId> agents(n);
    for (AgentId i = 0; i < n; ++i) agents[i] = i;
    for (std::uint32_t i = 0; i < toCorrupt; ++i) {
      const auto j = static_cast<std::uint32_t>(i + rng_.below(n - i));
      std::swap(agents[i], agents[j]);
    }
    if (sink_.has_value()) {
      // Worst reachable direction (Prop 6): pile victims into the homonym
      // sink m — every diagonal chain ends there, and m must never appear at
      // convergence when N < P, so the protocol is forced to do maximal
      // repair work.
      for (std::uint32_t i = 0; i < toCorrupt; ++i) {
        engine.corruptMobile(agents[i], *sink_);
      }
    } else {
      // No diagonal fixed point (the asymmetric protocol). The worst
      // corruption is duplicating live names: each victim copies the state
      // of a surviving (non-victim) agent when one exists.
      const Configuration& config = engine.config();
      for (std::uint32_t i = 0; i < toCorrupt; ++i) {
        const AgentId donor =
            toCorrupt < n ? agents[toCorrupt + rng_.below(n - toCorrupt)]
                          : agents[rng_.below(n)];
        engine.corruptMobile(agents[i], config.mobile[donor]);
      }
    }
  }
  nextAt_ += period_;
}

FaultRegime parseFaultRegime(const std::string& s) {
  if (s == "poisson-transient") return FaultRegime::kPoissonTransient;
  if (s == "periodic-transient") return FaultRegime::kPeriodicTransient;
  if (s == "churn") return FaultRegime::kChurn;
  if (s == "targeted-adversary") return FaultRegime::kTargetedAdversary;
  if (s == "stuck-agent") return FaultRegime::kStuckAgent;
  throw std::invalid_argument("unknown fault regime '" + s + "'");
}

std::string faultRegimeName(FaultRegime regime) {
  switch (regime) {
    case FaultRegime::kPoissonTransient:
      return "poisson-transient";
    case FaultRegime::kPeriodicTransient:
      return "periodic-transient";
    case FaultRegime::kChurn:
      return "churn";
    case FaultRegime::kTargetedAdversary:
      return "targeted-adversary";
    case FaultRegime::kStuckAgent:
      return "stuck-agent";
  }
  return "?";
}

std::unique_ptr<FaultProcess> makeFaultProcess(FaultRegime regime,
                                               const Protocol& proto,
                                               const FaultRegimeParams& params,
                                               std::uint64_t seed) {
  const FaultPlan plan{.corruptAgents = params.corruptAgents,
                       .corruptLeader = params.corruptLeader};
  switch (regime) {
    case FaultRegime::kPoissonTransient:
      return std::make_unique<PoissonTransientFaults>(params.rate, plan, seed);
    case FaultRegime::kPeriodicTransient:
      return std::make_unique<PeriodicTransientFaults>(params.period, plan,
                                                       seed);
    case FaultRegime::kChurn:
      return std::make_unique<ChurnFaults>(params.rate, seed);
    case FaultRegime::kTargetedAdversary:
      return std::make_unique<TargetedAdversaryFaults>(
          proto, params.period, params.corruptAgents, seed);
    case FaultRegime::kStuckAgent:
      return nullptr;  // crash faults are a scheduler wrapper, not a process
  }
  throw std::logic_error("unreachable fault regime");
}

}  // namespace ppn
