// Ongoing fault campaigns: generalizes the one-shot transient fault of
// sim/fault_injector.* into fault *processes* that keep perturbing a live
// execution.
//
// A FaultProcess is a deterministic (seeded) point process over interaction
// indices together with a corruption action. The campaign driver
// (faults/campaign.h) steps the engine to each event index, applies the
// fault, and — once the campaign window closes — measures whether and how
// fast the protocol re-converges. The paper's self-stabilizing protocols
// (Props 12, 13, 16) must recover from every regime here; the initialized
// ones (Prop 14, Protocol 1, Prop 17) are expected to reach wrong-stable
// configurations, which the robustness table records as evidence.
//
// Regimes:
//  * PoissonTransientFaults — memoryless corruption bursts at a configurable
//    per-interaction rate (the classic transient-fault model).
//  * PeriodicTransientFaults — corruption every `period` interactions
//    (worst-case clocked interference).
//  * ChurnFaults — an agent's state is RESET mid-run, modeling the agent
//    departing and a fresh one arriving under the fixed population bound P
//    (the paper's motivating mobile-network scenario). The replacement state
//    is the protocol's declared uniform init when it has one, otherwise
//    uniform random.
//  * TargetedAdversaryFaults — uses src/analysis sink analysis (Prop 6) to
//    corrupt *toward the worst reachable configuration* instead of uniformly
//    at random: victims are driven into the protocol's homonym sink (the
//    self-fixed state every diagonal chain falls into), or — when no sink
//    exists, e.g. the asymmetric protocol — into copies of a live agent's
//    state, maximizing homonyms either way.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/engine.h"
#include "sim/fault_injector.h"
#include "util/rng.h"

namespace ppn {

class FaultProcess {
 public:
  virtual ~FaultProcess() = default;

  /// Human-readable regime name for tables.
  virtual std::string name() const = 0;

  /// Absolute interaction index of the next fault event at or after `now`;
  /// nullopt when the process will fire no further fault. The returned index
  /// is stable until apply() is called (pure lookahead).
  virtual std::optional<std::uint64_t> nextFaultAt(std::uint64_t now) = 0;

  /// Injects one fault into the live engine and advances the process to its
  /// next event. Called by the campaign driver when the engine reaches
  /// nextFaultAt().
  virtual void apply(Engine& engine) = 0;
};

/// Transient corruption with geometric (memoryless) inter-arrival times:
/// every interaction independently starts a fault burst with probability
/// `rate`. Each burst corrupts `plan.corruptAgents` uniform-random agents
/// (and optionally the leader) via injectFault.
class PoissonTransientFaults final : public FaultProcess {
 public:
  /// rate must be in (0, 1].
  PoissonTransientFaults(double rate, FaultPlan plan, std::uint64_t seed);

  std::string name() const override { return "poisson-transient"; }
  std::optional<std::uint64_t> nextFaultAt(std::uint64_t now) override;
  void apply(Engine& engine) override;

 private:
  double rate_;
  FaultPlan plan_;
  Rng rng_;
  std::optional<std::uint64_t> pending_;
};

/// Transient corruption at fixed interaction intervals: fires at period,
/// 2*period, 3*period, ...
class PeriodicTransientFaults final : public FaultProcess {
 public:
  /// period must be >= 1.
  PeriodicTransientFaults(std::uint64_t period, FaultPlan plan,
                          std::uint64_t seed);

  std::string name() const override { return "periodic-transient"; }
  std::optional<std::uint64_t> nextFaultAt(std::uint64_t now) override;
  void apply(Engine& engine) override;

 private:
  std::uint64_t period_;
  FaultPlan plan_;
  Rng rng_;
  std::uint64_t nextAt_;
};

/// Agent churn: at memoryless (rate-driven) event times, one uniform-random
/// agent is reset — departure plus arrival of a fresh agent under the fixed
/// bound P. Reset state: the protocol's uniformMobileInit() when declared,
/// else uniform random (an arriving agent in an unknown state).
class ChurnFaults final : public FaultProcess {
 public:
  /// rate must be in (0, 1].
  ChurnFaults(double rate, std::uint64_t seed);

  std::string name() const override { return "churn"; }
  std::optional<std::uint64_t> nextFaultAt(std::uint64_t now) override;
  void apply(Engine& engine) override;

 private:
  double rate_;
  Rng rng_;
  std::optional<std::uint64_t> pending_;
};

/// Sink-seeking adversary: periodically drives `corruptAgents` victims
/// toward the worst reachable configuration. The target state is computed
/// once from analysis/sink_analysis (the protocol's unique homonym sink when
/// it exists); protocols without a diagonal fixed point get homonyms instead
/// (victims copy a surviving agent's state). Corrupting the leader is
/// deliberately out of scope: the adversary models mobile-memory corruption
/// steered by protocol structure.
class TargetedAdversaryFaults final : public FaultProcess {
 public:
  /// period must be >= 1. The protocol must outlive the process.
  TargetedAdversaryFaults(const Protocol& proto, std::uint64_t period,
                          std::uint32_t corruptAgents, std::uint64_t seed);

  std::string name() const override { return "targeted-adversary"; }
  std::optional<std::uint64_t> nextFaultAt(std::uint64_t now) override;
  void apply(Engine& engine) override;

  /// The precomputed worst-case target state, when the protocol has a sink.
  std::optional<StateId> sinkTarget() const { return sink_; }

 private:
  std::uint64_t period_;
  std::uint32_t corruptAgents_;
  Rng rng_;
  std::uint64_t nextAt_;
  std::optional<StateId> sink_;
};

/// Fault regimes selectable from CLI flags / certification specs.
enum class FaultRegime {
  kPoissonTransient,
  kPeriodicTransient,
  kChurn,
  kTargetedAdversary,
  kStuckAgent,  ///< crash fault realized by faults/stuck_agent_scheduler.h
};

/// Parses "poisson-transient" | "periodic-transient" | "churn" |
/// "targeted-adversary" | "stuck-agent"; throws std::invalid_argument
/// otherwise.
FaultRegime parseFaultRegime(const std::string& s);
std::string faultRegimeName(FaultRegime regime);

/// Parameters shared by the regime factory below.
struct FaultRegimeParams {
  double rate = 0.005;          ///< poisson-transient / churn event rate
  std::uint64_t period = 500;   ///< periodic-transient / targeted period
  std::uint32_t corruptAgents = 1;
  bool corruptLeader = false;   ///< transient regimes only
};

/// Builds the FaultProcess for `regime` (kStuckAgent yields nullptr — it is
/// a scheduler wrapper, not a state-corruption process; see campaign.cpp).
std::unique_ptr<FaultProcess> makeFaultProcess(FaultRegime regime,
                                               const Protocol& proto,
                                               const FaultRegimeParams& params,
                                               std::uint64_t seed);

}  // namespace ppn
