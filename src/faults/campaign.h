// Campaign driver: subjects a protocol to an *ongoing* fault regime for a
// window of interactions, then measures whether (and how fast) it
// re-converges to a correct named configuration.
//
// This is the continuous generalization of sim/fault_injector.h's
// measureRecovery: instead of converge → one fault → reconverge, a campaign
// interleaves execution with a FaultProcess for `faultWindow` interactions
// (never polling silence — faults keep perturbing), closes the fault window,
// and only then demands recovery. Batches reuse the hardened runner
// machinery: exception-safe workers, cooperative cancellation, wall-clock
// watchdog, and sequential seed derivation for thread-count-independent
// bit-identical results.
#pragma once

#include <cstdint>
#include <vector>

#include "core/protocol.h"
#include "faults/fault_process.h"
#include "sim/runner.h"
#include "stats/summary.h"

namespace ppn {

class BatchEngine;

struct CampaignSpec {
  FaultRegime regime = FaultRegime::kPoissonTransient;
  FaultRegimeParams params;
  /// Interactions during which the fault process is live. For kStuckAgent
  /// this is the crash window: a random agent is frozen in [0, faultWindow).
  std::uint64_t faultWindow = 20'000;
  std::uint32_t numMobile = 0;
  InitKind init = InitKind::kArbitrary;
  SchedulerKind sched = SchedulerKind::kRandom;
  std::uint32_t runs = 32;
  std::uint64_t seed = 1;
  /// Recovery budget. maxInteractions bounds the post-window phase;
  /// maxWallMillis (when nonzero) covers the whole run, fault phase included.
  RunLimits limits;
  std::uint32_t threads = 1;
  /// Telemetry probe (not owned; thread-safe when threads != 1). Each
  /// campaign run emits one run_start/run_end pair plus a fault_injected
  /// event per injection; null keeps the campaign entirely unobserved.
  RunObserver* observer = nullptr;
  /// Added to run indices to form event runIds (see BatchSpec::runIdBase).
  std::uint64_t runIdBase = 0;
  /// Convergence flight recorder (not owned; thread-safe by construction):
  /// samples both the fault and recovery phases, and dumps automatically on
  /// fault-induced divergence or watchdog abort. Null records nothing.
  FlightRecorder* recorder = nullptr;
  /// Shared batch engine (not owned; see sim/batch_engine.h). When set, the
  /// campaign's runs execute as work items on the engine's queue
  /// (BatchEngine::parallelFor) instead of spawning `threads` ad-hoc workers
  /// per campaign — sweeps dispatching many cells through one engine keep all
  /// cores saturated from a single queue with no per-cell thread churn.
  /// Outcomes are bit-identical either way (inputs are pre-split; the
  /// execution backend cannot change them); `threads` is ignored when set.
  BatchEngine* engine = nullptr;
};

struct CampaignRunOutcome {
  bool recovered = false;       ///< silent after the fault window closed
  bool recoveredNamed = false;  ///< ... with distinct valid names
  bool timedOut = false;        ///< watchdog fired (fault or recovery phase)
  std::uint64_t faultsInjected = 0;
  /// Interactions from fault-window close to post-campaign convergence
  /// (exact; 0 when the final fault left the system already converged).
  std::uint64_t recoveryInteractions = 0;

  friend bool operator==(const CampaignRunOutcome&,
                         const CampaignRunOutcome&) = default;
};

struct CampaignResult {
  std::uint32_t runs = 0;
  std::uint32_t recovered = 0;
  std::uint32_t recoveredNamed = 0;
  std::uint32_t timedOut = 0;
  /// True when any run hit the watchdog: statistics are partial.
  bool degraded = false;
  /// Recovery cost over runs that recovered WITH correct naming.
  Summary recoveryInteractions;
  Summary faultsInjected;
  /// Per-run outcomes in run order (bitwise identical across thread counts).
  std::vector<CampaignRunOutcome> outcomes;
};

/// Runs one campaign (fault phase + recovery measurement) on a prepared
/// engine/scheduler pair. `process` may be null (kStuckAgent: the crash
/// lives in the scheduler wrapper, not in a state-corruption process).
///
/// `observer` (with `runId`) receives exactly one run_start/run_end pair for
/// the whole campaign run — the internal recovery phase is folded in, not
/// reported as a nested run — plus fault_injected events (via the engine
/// hook) and watchdog_abort/cancelled at the abort point in either phase.
///
/// `recorder`, when non-null, samples convergence state at its stride across
/// both phases and dumps to its configured path when the run ends without
/// recovering (fault-induced divergence or watchdog abort) — the retained
/// ring then holds the perturbation history leading up to the failure.
CampaignRunOutcome runCampaignOnce(Engine& engine, Scheduler& sched,
                                   FaultProcess* process,
                                   std::uint64_t faultWindow,
                                   const RunLimits& limits,
                                   const CancelToken* cancel = nullptr,
                                   RunObserver* observer = nullptr,
                                   std::uint64_t runId = 0,
                                   FlightRecorder* recorder = nullptr);

/// Runs `spec.runs` independent campaigns of `proto` under the spec's fault
/// regime. Exception-safe and deterministic like runBatch: per-run inputs are
/// pre-split sequentially, a throwing run cancels the batch and rethrows, and
/// watchdog-aborted runs degrade the result instead of blocking it.
CampaignResult runCampaign(const Protocol& proto, const CampaignSpec& spec);

}  // namespace ppn
