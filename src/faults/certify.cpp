#include "faults/certify.h"

#include <algorithm>
#include <cmath>

#include "naming/registry.h"
#include "util/json.h"
#include "util/seed.h"

namespace ppn {

namespace {

/// FNV-1a over the cell coordinates (util/seed.h): stable across platforms
/// and runs, so a cell's campaign seed does not depend on sweep order or
/// std::hash.
std::uint64_t cellSeed(std::uint64_t base, const std::string& protocol,
                       std::uint32_t population, FaultRegime regime,
                       SchedulerKind sched) {
  return Fnv1a(base)
      .mix(protocol)
      .mix(population)
      .mix(static_cast<std::uint64_t>(regime) + 101)
      .mix(static_cast<std::uint64_t>(sched) + 211)
      .value();
}

bool schedulerOnlyWeaklyFair(SchedulerKind kind) {
  return kind == SchedulerKind::kRoundRobin ||
         kind == SchedulerKind::kTournament;
}

std::string percent(std::uint32_t part, std::uint32_t whole) {
  if (whole == 0) return "-";
  return std::to_string(part) + "/" + std::to_string(whole);
}

}  // namespace

RobustnessCell skippedRobustnessCell(const RobustnessCellPlan& plan) {
  RobustnessCell cell;
  cell.protocol = plan.protocol;
  cell.selfStabilizing = plan.selfStabilizing;
  cell.population = plan.population;
  cell.p = plan.p;
  cell.regime = plan.regime;
  cell.sched = plan.sched;
  cell.note = plan.note;
  cell.verdict = CellVerdict::kSkipped;
  return cell;
}

std::vector<RobustnessCellPlan> planRobustnessCells(const CertifySpec& spec) {
  std::vector<RobustnessCellPlan> plans;
  const std::vector<std::string> protocols =
      spec.protocols.empty() ? protocolKeys() : spec.protocols;

  for (const std::string& key : protocols) {
    const bool selfStab = isSelfStabilizing(key);
    std::vector<std::uint32_t> usedPopulations;
    for (const std::uint32_t requestedN : spec.populations) {
      // Per-protocol instance carve-outs (documented on CertifySpec).
      std::uint32_t population = requestedN;
      std::string instanceNote;
      if (key == "global-leader" && population > 4) {
        population = 4;
        instanceNote = "N capped at 4 (N=P walk explodes, E16)";
      }
      // Capping can collapse two requested populations onto one instance;
      // emit each instance once.
      if (std::find(usedPopulations.begin(), usedPopulations.end(),
                    population) != usedPopulations.end()) {
        continue;
      }
      usedPopulations.push_back(population);
      StateId p = static_cast<StateId>(population);
      if (key == "counting") {
        p = static_cast<StateId>(population + 1);
        instanceNote = "P=N+1 (names claimed for N<P)";
      }

      for (const FaultRegime regime : spec.regimes) {
        for (const SchedulerKind sched : spec.schedulers) {
          RobustnessCellPlan plan;
          plan.protocol = key;
          plan.selfStabilizing = selfStab;
          plan.population = population;
          plan.p = p;
          plan.regime = regime;
          plan.sched = sched;
          plan.note = instanceNote;
          if (requiresGlobalFairness(key) && schedulerOnlyWeaklyFair(sched)) {
            plan.skipped = true;
            plan.note = "needs global fairness; scheduler only weakly fair";
          }
          plans.push_back(std::move(plan));
        }
      }
    }
  }
  return plans;
}

CampaignSpec cellCampaignSpec(const CertifySpec& spec,
                              const RobustnessCellPlan& plan,
                              std::uint64_t runIdBase) {
  CampaignSpec campaign;
  campaign.regime = plan.regime;
  campaign.params.rate = spec.faultRate;
  campaign.params.period = spec.faultPeriod;
  campaign.params.corruptAgents = static_cast<std::uint32_t>(
      std::max(1.0, std::round(plan.population * spec.corruptFraction)));
  campaign.params.corruptLeader = spec.corruptLeader;
  campaign.faultWindow = spec.faultWindow;
  campaign.numMobile = plan.population;
  // Prop 14 is the only row whose claim requires initialized mobile
  // agents; everything else starts arbitrary (self-stabilizing rows
  // by definition, leader rows per their Table 1 assumptions).
  campaign.init = plan.protocol == "leader-uniform" ? InitKind::kUniform
                                                    : InitKind::kArbitrary;
  campaign.sched = plan.sched;
  campaign.runs = spec.runs;
  campaign.seed = cellSeed(spec.seed, plan.protocol, plan.population,
                           plan.regime, plan.sched);
  campaign.limits = spec.limits;
  campaign.threads = spec.threads;
  campaign.observer = spec.observer;
  campaign.runIdBase = runIdBase;
  campaign.engine = spec.engine;
  return campaign;
}

RobustnessCell judgeRobustnessCell(const RobustnessCellPlan& plan,
                                   CampaignResult result) {
  RobustnessCell cell;
  cell.protocol = plan.protocol;
  cell.selfStabilizing = plan.selfStabilizing;
  cell.population = plan.population;
  cell.p = plan.p;
  cell.regime = plan.regime;
  cell.sched = plan.sched;
  cell.note = plan.note;
  cell.result = std::move(result);

  if (cell.result.timedOut > 0) {
    cell.verdict = CellVerdict::kDegraded;
  } else if (plan.selfStabilizing) {
    cell.verdict = cell.result.recoveredNamed == cell.result.runs
                       ? CellVerdict::kCertified
                       : CellVerdict::kFailed;
  } else {
    cell.verdict = CellVerdict::kEvidence;
    const std::uint32_t wrongStable =
        cell.result.recovered - cell.result.recoveredNamed;
    if (wrongStable > 0) {
      if (!cell.note.empty()) cell.note += "; ";
      cell.note += "wrong-stable " + percent(wrongStable, cell.result.runs);
    }
  }
  return cell;
}

std::string cellVerdictName(CellVerdict v) {
  switch (v) {
    case CellVerdict::kCertified:
      return "CERTIFIED";
    case CellVerdict::kFailed:
      return "FAILED";
    case CellVerdict::kEvidence:
      return "evidence";
    case CellVerdict::kDegraded:
      return "DEGRADED";
    case CellVerdict::kSkipped:
      return "skipped";
  }
  return "?";
}

RobustnessTable certifyRecovery(const CertifySpec& spec) {
  RobustnessTable table;
  // Run ids are assigned per executed cell in plan order, so an observer's
  // event stream has globally unique, reproducible ids across the sweep.
  std::uint64_t runIdBase = 0;

  for (const RobustnessCellPlan& plan : planRobustnessCells(spec)) {
    if (plan.skipped) {
      table.cells.push_back(skippedRobustnessCell(plan));
      continue;
    }
    const auto proto = makeProtocol(plan.protocol, plan.p);
    const CampaignSpec campaign = cellCampaignSpec(spec, plan, runIdBase);
    runIdBase += spec.runs;
    table.cells.push_back(judgeRobustnessCell(plan, runCampaign(*proto, campaign)));
  }
  return table;
}

std::uint64_t plannedRuns(const CertifySpec& spec) {
  std::uint64_t runs = 0;
  for (const RobustnessCellPlan& plan : planRobustnessCells(spec)) {
    if (!plan.skipped) runs += spec.runs;
  }
  return runs;
}

Table RobustnessTable::render() const {
  Table t({"protocol", "self-stab", "N", "P", "regime", "scheduler", "faults/run",
           "recovered", "named", "rec p50", "rec p90", "verdict", "note"});
  for (const RobustnessCell& c : cells) {
    auto row = t.row();
    row.cell(c.protocol)
        .cell(c.selfStabilizing ? "yes" : "no")
        .cell(static_cast<std::uint64_t>(c.population))
        .cell(static_cast<std::uint64_t>(c.p))
        .cell(faultRegimeName(c.regime))
        .cell(schedulerKindName(c.sched));
    if (c.verdict == CellVerdict::kSkipped) {
      row.cell("-").cell("-").cell("-").cell("-").cell("-");
    } else {
      row.cell(c.result.faultsInjected.mean, 1)
          .cell(percent(c.result.recovered, c.result.runs))
          .cell(percent(c.result.recoveredNamed, c.result.runs))
          .cell(c.result.recoveryInteractions.median, 0)
          .cell(c.result.recoveryInteractions.p90, 0);
    }
    row.cell(cellVerdictName(c.verdict)).cell(c.note);
  }
  return t;
}

void writeRobustnessCellJson(JsonWriter& w, const RobustnessCell& c) {
  w.beginObject();
  w.key("protocol").value(c.protocol);
  w.key("selfStabilizing").value(c.selfStabilizing);
  w.key("population").value(c.population);
  w.key("p").value(static_cast<std::uint64_t>(c.p));
  w.key("regime").value(faultRegimeName(c.regime));
  w.key("scheduler").value(schedulerKindName(c.sched));
  w.key("verdict").value(cellVerdictName(c.verdict));
  w.key("note").value(c.note);
  if (c.verdict != CellVerdict::kSkipped) {
    w.key("runs").value(c.result.runs);
    w.key("recovered").value(c.result.recovered);
    w.key("recoveredNamed").value(c.result.recoveredNamed);
    w.key("timedOut").value(c.result.timedOut);
    w.key("degraded").value(c.result.degraded);
    w.key("faultsPerRunMean").value(c.result.faultsInjected.mean);
    w.key("recovery").beginObject();
    w.key("count").value(c.result.recoveryInteractions.count);
    w.key("mean").value(c.result.recoveryInteractions.mean);
    w.key("median").value(c.result.recoveryInteractions.median);
    w.key("p90").value(c.result.recoveryInteractions.p90);
    w.key("max").value(c.result.recoveryInteractions.max);
    w.endObject();
  }
  w.endObject();
}

std::string RobustnessTable::toJson() const {
  JsonWriter w;
  w.beginObject();
  w.key("kind").value("ppn-robustness-table");
  w.key("certified").value(certified());
  w.key("cells").beginArray();
  for (const RobustnessCell& c : cells) writeRobustnessCellJson(w, c);
  w.endArray();
  w.endObject();
  return w.str();
}

bool RobustnessTable::certified() const {
  for (const RobustnessCell& c : cells) {
    if (c.verdict == CellVerdict::kFailed) return false;
  }
  return true;
}

std::uint32_t RobustnessTable::countVerdict(CellVerdict v) const {
  std::uint32_t n = 0;
  for (const RobustnessCell& c : cells) {
    if (c.verdict == v) ++n;
  }
  return n;
}

}  // namespace ppn
