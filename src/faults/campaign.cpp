#include "faults/campaign.h"

#include <chrono>
#include <memory>

#include "faults/stuck_agent_scheduler.h"
#include "sim/batch_engine.h"
#include "util/seed.h"

namespace ppn {

CampaignRunOutcome runCampaignOnce(Engine& engine, Scheduler& sched,
                                   FaultProcess* process,
                                   std::uint64_t faultWindow,
                                   const RunLimits& limits,
                                   const CancelToken* cancel,
                                   RunObserver* observer,
                                   std::uint64_t runId,
                                   FlightRecorder* recorder) {
  using Clock = std::chrono::steady_clock;
  CampaignRunOutcome out;
  const bool watch = limits.maxWallMillis > 0;
  const Clock::time_point started = (watch || observer != nullptr)
                                        ? Clock::now()
                                        : Clock::time_point{};
  const Clock::time_point deadline =
      watch ? started + std::chrono::milliseconds(limits.maxWallMillis)
            : Clock::time_point{};
  const std::uint64_t interval = std::max<std::uint64_t>(1, limits.checkInterval);

  // The engine hook turns every corruption (any regime, any process) into a
  // fault_injected event carrying this run's id.
  engine.attachObserver(observer, runId);
  if (observer != nullptr) {
    observer->onRunStart(RunStartEvent{runId, engine.numMobile(),
                                       engine.numParticipants()});
  }
  bool cancelled = false;
  // Pairs the run_end when an exception unwinds out of the fault or recovery
  // phase (engine/scheduler/process throws); the normal paths below disarm it
  // inside finishRun.
  RunEndPairGuard pairGuard(observer, recorder, engine, runId);
  // Emits the run_end paired with the onRunStart above; every return path
  // below goes through this, so ids always pair up in the event stream.
  const auto finishRun = [&]() {
    pairGuard.disarm();
    if (observer == nullptr) return;
    const double wallMillis =
        std::chrono::duration<double, std::milli>(Clock::now() - started)
            .count();
    observer->onRunEnd(RunEndEvent{runId, out.recovered, out.recoveredNamed,
                                   out.timedOut, cancelled,
                                   out.recoveryInteractions,
                                   engine.totalInteractions(), wallMillis});
  };

  // Fault phase: execute exactly faultWindow interactions, applying the
  // process at its event indices. Silence is NOT polled — an ongoing campaign
  // keeps perturbing whatever the protocol converges to.
  std::uint64_t now = engine.totalInteractions();
  const std::uint64_t windowEnd = now + faultWindow;
  std::uint64_t nextSampleAt =
      recorder != nullptr ? now + recorder->stride() : 0;
  while (now < windowEnd) {
    std::uint64_t target = windowEnd;
    bool faultDue = false;
    if (process != nullptr) {
      if (const auto at = process->nextFaultAt(now);
          at.has_value() && *at <= windowEnd) {
        target = *at;
        faultDue = true;
      }
    }
    while (now < target) {
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        cancelled = true;
        if (observer != nullptr) {
          observer->onCancelled(CancelledEvent{runId, now});
        }
        finishRun();
        return out;
      }
      if (watch && Clock::now() >= deadline) {
        out.timedOut = true;
        if (observer != nullptr) {
          observer->onWatchdogAbort(
              WatchdogAbortEvent{runId, now, limits.maxWallMillis});
        }
        if (recorder != nullptr) {
          recorder->record(sampleConvergence(engine, runId));
          recorder->dumpToConfiguredPath("watchdog_abort run " +
                                         std::to_string(runId));
        }
        finishRun();
        return out;
      }
      std::uint64_t burst = std::min(interval, target - now);
      if (recorder != nullptr && nextSampleAt > now) {
        burst = std::min(burst, nextSampleAt - now);
      }
      for (std::uint64_t i = 0; i < burst; ++i) engine.step(sched.next());
      now += burst;
      if (recorder != nullptr && now == nextSampleAt) {
        recorder->record(sampleConvergence(engine, runId));
        nextSampleAt += recorder->stride();
      }
    }
    if (faultDue && now == target) {
      process->apply(engine);
      ++out.faultsInjected;
    }
  }

  // Recovery phase: the fault window is closed; demand re-convergence within
  // the remaining interaction and wall-clock budget. runUntilSilent runs
  // unobserved here — this campaign run is ONE observed run, so its abort
  // events are re-emitted from the recovery outcome below instead of letting
  // the inner runner open a nested run_start/run_end pair.
  RunLimits recoveryLimits = limits;
  if (watch) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    recoveryLimits.maxWallMillis = left > 0 ? static_cast<std::uint64_t>(left) : 1;
  }
  const RunOutcome rec = runUntilSilent(engine, sched, recoveryLimits, cancel,
                                        nullptr, runId, recorder);
  out.recovered = rec.silent;
  out.recoveredNamed = rec.namingSolved;
  out.timedOut = rec.timedOut;
  cancelled = rec.cancelled;
  if (rec.silent) {
    const std::uint64_t lastChange = engine.lastChangeAt();
    out.recoveryInteractions = lastChange > windowEnd ? lastChange - windowEnd : 0;
  }
  if (observer != nullptr) {
    if (rec.timedOut) {
      observer->onWatchdogAbort(WatchdogAbortEvent{
          runId, engine.totalInteractions(), limits.maxWallMillis});
    }
    if (rec.cancelled) {
      observer->onCancelled(
          CancelledEvent{runId, engine.totalInteractions()});
    }
  }
  // Fault-induced divergence: the window closed and the system failed to
  // re-converge (on budget, not by cancellation). The inner runner already
  // dumped on its own watchdog; this covers the interaction-budget case.
  if (recorder != nullptr && !out.recovered && !cancelled && !rec.timedOut) {
    recorder->record(sampleConvergence(engine, runId));
    recorder->dumpToConfiguredPath("fault-induced divergence run " +
                                   std::to_string(runId));
  }
  finishRun();
  return out;
}

CampaignResult runCampaign(const Protocol& proto, const CampaignSpec& spec) {
  CampaignResult result;
  result.runs = spec.runs;
  result.outcomes.resize(spec.runs);

  // Sequential pre-split: the only source of randomness each run sees is its
  // own generator, so outcomes are bit-identical for every thread count.
  std::vector<Rng> runRngs = splitRunRngs(spec.seed, spec.runs);

  std::atomic<std::uint32_t> progressCompleted{0};
  std::atomic<std::uint32_t> progressDegraded{0};
  const auto runOne = [&](std::uint32_t r, CancelToken& cancel) {
        Rng runRng = runRngs[r];
        Configuration start =
            spec.init == InitKind::kUniform
                ? uniformConfiguration(proto, spec.numMobile)
                : arbitraryConfiguration(proto, spec.numMobile, runRng);
        Engine engine(proto, std::move(start));
        auto inner =
            makeScheduler(spec.sched, engine.numParticipants(), runRng.next());
        const std::uint64_t faultSeed = runRng.next();

        std::unique_ptr<FaultProcess> process =
            makeFaultProcess(spec.regime, proto, spec.params, faultSeed);
        std::unique_ptr<StuckAgentScheduler> stuck;
        Scheduler* sched = inner.get();
        if (spec.regime == FaultRegime::kStuckAgent) {
          const auto victim = static_cast<std::uint32_t>(
              runRng.below(std::max(1u, engine.numMobile())));
          stuck = std::make_unique<StuckAgentScheduler>(
              *inner, engine.numParticipants(), victim, 0, spec.faultWindow);
          sched = stuck.get();
        }

        CampaignRunOutcome out = runCampaignOnce(
            engine, *sched, process.get(), spec.faultWindow, spec.limits,
            &cancel, spec.observer, spec.runIdBase + r, spec.recorder);
        if (spec.regime == FaultRegime::kStuckAgent) {
          out.faultsInjected = 1;  // the crash itself
        }
        result.outcomes[r] = out;
        if (spec.observer != nullptr) {
          if (out.timedOut) {
            progressDegraded.fetch_add(1, std::memory_order_relaxed);
          }
          const std::uint32_t done =
              progressCompleted.fetch_add(1, std::memory_order_relaxed) + 1;
          spec.observer->onBatchProgress(BatchProgressEvent{
              done, spec.runs,
              progressDegraded.load(std::memory_order_relaxed)});
        }
  };
  // Same per-run work either way; the engine variant drains it through the
  // shared pool's queue (one queue across every cell of a sweep) instead of
  // spawning this campaign's own workers.
  if (spec.engine != nullptr) {
    spec.engine->parallelFor(spec.runs, runOne);
  } else {
    parallelRunIndexed(spec.runs, spec.threads, runOne);
  }

  std::vector<double> recovery;
  std::vector<double> faults;
  for (const CampaignRunOutcome& out : result.outcomes) {
    if (out.timedOut) ++result.timedOut;
    if (out.recovered) ++result.recovered;
    if (out.recoveredNamed) {
      ++result.recoveredNamed;
      recovery.push_back(static_cast<double>(out.recoveryInteractions));
    }
    faults.push_back(static_cast<double>(out.faultsInjected));
  }
  result.degraded = result.timedOut > 0;
  result.recoveryInteractions = summarize(std::move(recovery));
  result.faultsInjected = summarize(std::move(faults));
  return result;
}

}  // namespace ppn
