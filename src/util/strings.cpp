#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace ppn {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<std::uint64_t> parseU64(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return v;
}

std::optional<std::int64_t> parseI64(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t v = 0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return v;
}

std::optional<double> parseDouble(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is not universally available; use strtod on a
  // bounded copy.
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string padLeft(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string padRight(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string formatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') out.pop_back();
    if (!out.empty() && out.back() == '.') out.pop_back();
  }
  return out;
}

}  // namespace ppn
