#include "util/table.h"

#include <cassert>

#include "util/strings.h"

namespace ppn {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> row) {
  assert(row.size() == header_.size() && "row arity must match header");
  rows_.push_back(std::move(row));
}

Table::RowBuilder& Table::RowBuilder::cell(std::string_view s) {
  cells_.emplace_back(s);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::uint64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double v, int precision) {
  cells_.push_back(formatDouble(v, precision));
  return *this;
}

Table::RowBuilder::~RowBuilder() { table_.addRow(std::move(cells_)); }

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::string out;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += (c == 0) ? "| " : " | ";
      out += padRight(row[c], widths[c]);
    }
    out += " |\n";
  };
  emitRow(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += (c == 0) ? "|-" : "-|-";
    out.append(widths[c], '-');
  }
  out += "-|\n";
  for (const auto& row : rows_) emitRow(row);
  return out;
}

namespace {
std::string csvEscape(const std::string& cell) {
  const bool needsQuote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needsQuote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::renderCsv() const {
  std::string out;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += ',';
      out += csvEscape(row[c]);
    }
    out += '\n';
  };
  emitRow(header_);
  for (const auto& row : rows_) emitRow(row);
  return out;
}

}  // namespace ppn
