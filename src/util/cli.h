// Minimal declarative command-line parser for example and bench binaries.
//
// Usage:
//   ppn::Cli cli("quickstart", "Runs the asymmetric naming protocol");
//   auto n    = cli.addUint("n", "population size", 10);
//   auto seed = cli.addUint("seed", "rng seed", 42);
//   auto sym  = cli.addFlag("verbose", "print every interaction");
//   if (!cli.parse(argc, argv)) return 1;   // prints help/error itself
//   run(*n, *seed, *sym);
//
// Options are written `--name=value` or `--name value`; flags are `--name`.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ppn {

class Cli {
 public:
  Cli(std::string programName, std::string description);
  ~Cli();

  Cli(const Cli&) = delete;
  Cli& operator=(const Cli&) = delete;

  /// Register options. The returned pointer stays valid for the Cli lifetime
  /// and holds the default until parse() overwrites it.
  const std::uint64_t* addUint(std::string name, std::string help,
                               std::uint64_t defaultValue);
  const std::int64_t* addInt(std::string name, std::string help,
                             std::int64_t defaultValue);
  const double* addDouble(std::string name, std::string help,
                          double defaultValue);
  const std::string* addString(std::string name, std::string help,
                               std::string defaultValue);
  const bool* addFlag(std::string name, std::string help);

  /// Parse argv. Returns false (after printing a message) on error or when
  /// --help was requested.
  bool parse(int argc, const char* const* argv);

  /// Render the help text.
  std::string helpText() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ppn
