#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ppn {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::beforeValue() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) return;  // root value
  if (stack_.back() == Ctx::kObject) {
    if (!pendingKey_) {
      throw std::logic_error("JsonWriter: value inside object requires key()");
    }
    pendingKey_ = false;
  } else {
    if (hasElement_.back()) out_.push_back(',');
    hasElement_.back() = true;
  }
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  out_.push_back('{');
  stack_.push_back(Ctx::kObject);
  hasElement_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  if (stack_.empty() || stack_.back() != Ctx::kObject || pendingKey_) {
    throw std::logic_error("JsonWriter: mismatched endObject");
  }
  out_.push_back('}');
  stack_.pop_back();
  hasElement_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  out_.push_back('[');
  stack_.push_back(Ctx::kArray);
  hasElement_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  if (stack_.empty() || stack_.back() != Ctx::kArray) {
    throw std::logic_error("JsonWriter: mismatched endArray");
  }
  out_.push_back(']');
  stack_.pop_back();
  hasElement_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (done_ || stack_.empty() || stack_.back() != Ctx::kObject || pendingKey_) {
    throw std::logic_error("JsonWriter: key() outside object");
  }
  if (hasElement_.back()) out_.push_back(',');
  hasElement_.back() = true;
  out_ += jsonEscape(k);
  out_.push_back(':');
  pendingKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  beforeValue();
  out_ += jsonEscape(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  out_ += v ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beforeValue();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  beforeValue();
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out_.append(buf, res.ptr);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::valueFixed(double v, int decimals) {
  if (!std::isfinite(v)) return null();
  beforeValue();
  char buf[64];
  const int n = std::snprintf(buf, sizeof buf, "%.*f",
                              decimals < 0 ? 0 : (decimals > 17 ? 17 : decimals),
                              v);
  out_.append(buf, static_cast<std::size_t>(n));
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  beforeValue();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!done_ || !stack_.empty()) {
    throw std::logic_error("JsonWriter: document incomplete");
  }
  return out_;
}

namespace {

/// Recursive-descent JSON validity scanner over a cursor into the input.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view s) : s_(s) {}

  bool validate() {
    skipWs();
    if (!value(0)) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }

  void skipWs() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(int depth) {
    if (eof() || depth > kMaxDepth) return false;
    switch (peek()) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object(int depth) {
    ++pos_;  // '{'
    skipWs();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      if (eof() || peek() != '"' || !string()) return false;
      skipWs();
      if (eof() || peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value(depth + 1)) return false;
      skipWs();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array(int depth) {
    ++pos_;  // '['
    skipWs();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      if (!value(depth + 1)) return false;
      skipWs();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    ++pos_;  // opening quote
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control characters are invalid
      if (c == '\\') {
        ++pos_;
        if (eof()) return false;
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    if (!eof() && peek() == '-') ++pos_;
    if (eof()) return false;
    if (peek() == '0') {
      ++pos_;  // a leading zero must stand alone
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

/// Recursive-descent parser building the JsonValue DOM. Mirrors the
/// validator's grammar; kept separate because the validator is allocation-free
/// on the telemetry hot path while the parser materializes every node.
class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  std::optional<JsonValue> parse(std::string* error) {
    skipWs();
    JsonValue out;
    if (!value(0, out)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skipWs();
    if (pos_ != s_.size()) {
      if (error != nullptr) {
        *error = "trailing content at offset " + std::to_string(pos_);
      }
      return std::nullopt;
    }
    return out;
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }

  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skipWs() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool value(int depth, JsonValue& out) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return object(depth, out);
      case '[':
        return array(depth, out);
      case '"': {
        std::string decoded;
        if (!string(decoded)) return false;
        out = JsonValue::makeString(std::move(decoded));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        out = JsonValue::makeBool(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = JsonValue::makeBool(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        out = JsonValue::makeNull();
        return true;
      default:
        return number(out);
    }
  }

  bool object(int depth, JsonValue& out) {
    ++pos_;  // '{'
    std::vector<JsonValue::Member> members;
    skipWs();
    if (!eof() && peek() == '}') {
      ++pos_;
      out = JsonValue::makeObject(std::move(members));
      return true;
    }
    for (;;) {
      skipWs();
      if (eof() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!string(key)) return false;
      skipWs();
      if (eof() || peek() != ':') return fail("expected ':'");
      ++pos_;
      skipWs();
      JsonValue member;
      if (!value(depth + 1, member)) return false;
      members.emplace_back(std::move(key), std::move(member));
      skipWs();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        out = JsonValue::makeObject(std::move(members));
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(int depth, JsonValue& out) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skipWs();
    if (!eof() && peek() == ']') {
      ++pos_;
      out = JsonValue::makeArray(std::move(items));
      return true;
    }
    for (;;) {
      skipWs();
      JsonValue item;
      if (!value(depth + 1, item)) return false;
      items.push_back(std::move(item));
      skipWs();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        out = JsonValue::makeArray(std::move(items));
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  static void appendUtf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool hex4(std::uint32_t& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      ++pos_;
      if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
        return fail("invalid \\u escape");
      }
      const char c = peek();
      out = out * 16 +
            static_cast<std::uint32_t>(
                c <= '9' ? c - '0' : (c | 0x20) - 'a' + 10);
    }
    return true;
  }

  bool string(std::string& out) {
    ++pos_;  // opening quote
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(peek());
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (eof()) return fail("unterminated escape");
        switch (peek()) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            std::uint32_t cp = 0;
            if (!hex4(cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: require the low half and combine.
              if (pos_ + 2 < s_.size() && s_[pos_ + 1] == '\\' &&
                  s_[pos_ + 2] == 'u') {
                pos_ += 2;
                std::uint32_t low = 0;
                if (!hex4(low)) return false;
                if (low < 0xDC00 || low > 0xDFFF) {
                  return fail("unpaired surrogate");
                }
                cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
              } else {
                return fail("unpaired surrogate");
              }
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return fail("unpaired surrogate");
            }
            appendUtf8(out, cp);
            break;
          }
          default:
            return fail("invalid escape");
        }
        ++pos_;
        continue;
      }
      out.push_back(static_cast<char>(c));
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("expected digit");
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number(JsonValue& out) {
    const std::size_t begin = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof()) return fail("expected number");
    if (peek() == '0') {
      ++pos_;  // a leading zero must stand alone
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    out = JsonValue::makeNumber(std::string(s_.substr(begin, pos_ - begin)));
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool jsonIsValid(std::string_view s) { return JsonValidator(s).validate(); }

bool JsonValue::asBool() const {
  if (kind_ != Kind::kBool) throw std::logic_error("JsonValue: not a bool");
  return bool_;
}

double JsonValue::asDouble() const {
  if (kind_ != Kind::kNumber) throw std::logic_error("JsonValue: not a number");
  double v = 0.0;
  const auto res =
      std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), v);
  if (res.ec != std::errc{}) {
    throw std::logic_error("JsonValue: unparseable number '" + scalar_ + "'");
  }
  return v;
}

std::optional<std::uint64_t> JsonValue::asU64() const {
  if (kind_ != Kind::kNumber) throw std::logic_error("JsonValue: not a number");
  std::uint64_t v = 0;
  const char* end = scalar_.data() + scalar_.size();
  const auto res = std::from_chars(scalar_.data(), end, v);
  if (res.ec != std::errc{} || res.ptr != end) return std::nullopt;
  return v;
}

std::optional<std::int64_t> JsonValue::asI64() const {
  if (kind_ != Kind::kNumber) throw std::logic_error("JsonValue: not a number");
  std::int64_t v = 0;
  const char* end = scalar_.data() + scalar_.size();
  const auto res = std::from_chars(scalar_.data(), end, v);
  if (res.ec != std::errc{} || res.ptr != end) return std::nullopt;
  return v;
}

const std::string& JsonValue::asString() const {
  if (kind_ != Kind::kString) throw std::logic_error("JsonValue: not a string");
  return scalar_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) throw std::logic_error("JsonValue: not an array");
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (kind_ != Kind::kObject) {
    throw std::logic_error("JsonValue: not an object");
  }
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

JsonValue JsonValue::makeBool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::makeNumber(std::string raw) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.scalar_ = std::move(raw);
  return out;
}

JsonValue JsonValue::makeString(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.scalar_ = std::move(v);
  return out;
}

JsonValue JsonValue::makeArray(std::vector<JsonValue> items) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.items_ = std::move(items);
  return out;
}

JsonValue JsonValue::makeObject(std::vector<Member> members) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.members_ = std::move(members);
  return out;
}

std::optional<JsonValue> jsonParse(std::string_view s, std::string* error) {
  return JsonParser(s).parse(error);
}

}  // namespace ppn
