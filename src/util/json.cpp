#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ppn {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::beforeValue() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) return;  // root value
  if (stack_.back() == Ctx::kObject) {
    if (!pendingKey_) {
      throw std::logic_error("JsonWriter: value inside object requires key()");
    }
    pendingKey_ = false;
  } else {
    if (hasElement_.back()) out_.push_back(',');
    hasElement_.back() = true;
  }
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  out_.push_back('{');
  stack_.push_back(Ctx::kObject);
  hasElement_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  if (stack_.empty() || stack_.back() != Ctx::kObject || pendingKey_) {
    throw std::logic_error("JsonWriter: mismatched endObject");
  }
  out_.push_back('}');
  stack_.pop_back();
  hasElement_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  out_.push_back('[');
  stack_.push_back(Ctx::kArray);
  hasElement_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  if (stack_.empty() || stack_.back() != Ctx::kArray) {
    throw std::logic_error("JsonWriter: mismatched endArray");
  }
  out_.push_back(']');
  stack_.pop_back();
  hasElement_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (done_ || stack_.empty() || stack_.back() != Ctx::kObject || pendingKey_) {
    throw std::logic_error("JsonWriter: key() outside object");
  }
  if (hasElement_.back()) out_.push_back(',');
  hasElement_.back() = true;
  out_ += jsonEscape(k);
  out_.push_back(':');
  pendingKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  beforeValue();
  out_ += jsonEscape(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  out_ += v ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beforeValue();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  beforeValue();
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out_.append(buf, res.ptr);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  beforeValue();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!done_ || !stack_.empty()) {
    throw std::logic_error("JsonWriter: document incomplete");
  }
  return out_;
}

}  // namespace ppn
