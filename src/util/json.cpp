#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ppn {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::beforeValue() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) return;  // root value
  if (stack_.back() == Ctx::kObject) {
    if (!pendingKey_) {
      throw std::logic_error("JsonWriter: value inside object requires key()");
    }
    pendingKey_ = false;
  } else {
    if (hasElement_.back()) out_.push_back(',');
    hasElement_.back() = true;
  }
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  out_.push_back('{');
  stack_.push_back(Ctx::kObject);
  hasElement_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  if (stack_.empty() || stack_.back() != Ctx::kObject || pendingKey_) {
    throw std::logic_error("JsonWriter: mismatched endObject");
  }
  out_.push_back('}');
  stack_.pop_back();
  hasElement_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  out_.push_back('[');
  stack_.push_back(Ctx::kArray);
  hasElement_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  if (stack_.empty() || stack_.back() != Ctx::kArray) {
    throw std::logic_error("JsonWriter: mismatched endArray");
  }
  out_.push_back(']');
  stack_.pop_back();
  hasElement_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (done_ || stack_.empty() || stack_.back() != Ctx::kObject || pendingKey_) {
    throw std::logic_error("JsonWriter: key() outside object");
  }
  if (hasElement_.back()) out_.push_back(',');
  hasElement_.back() = true;
  out_ += jsonEscape(k);
  out_.push_back(':');
  pendingKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  beforeValue();
  out_ += jsonEscape(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  out_ += v ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beforeValue();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  beforeValue();
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out_.append(buf, res.ptr);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  beforeValue();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!done_ || !stack_.empty()) {
    throw std::logic_error("JsonWriter: document incomplete");
  }
  return out_;
}

namespace {

/// Recursive-descent JSON validity scanner over a cursor into the input.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view s) : s_(s) {}

  bool validate() {
    skipWs();
    if (!value(0)) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }

  void skipWs() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(int depth) {
    if (eof() || depth > kMaxDepth) return false;
    switch (peek()) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object(int depth) {
    ++pos_;  // '{'
    skipWs();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      if (eof() || peek() != '"' || !string()) return false;
      skipWs();
      if (eof() || peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value(depth + 1)) return false;
      skipWs();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array(int depth) {
    ++pos_;  // '['
    skipWs();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      if (!value(depth + 1)) return false;
      skipWs();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    ++pos_;  // opening quote
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control characters are invalid
      if (c == '\\') {
        ++pos_;
        if (eof()) return false;
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    if (!eof() && peek() == '-') ++pos_;
    if (eof()) return false;
    if (peek() == '0') {
      ++pos_;  // a leading zero must stand alone
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool jsonIsValid(std::string_view s) { return JsonValidator(s).validate(); }

}  // namespace ppn
