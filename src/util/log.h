// Leveled stderr logging. Deliberately tiny: simulations are deterministic
// and most diagnostics go through structured bench output, so logging is only
// used for progress notes and unexpected conditions.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace ppn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kInfo and can
/// be overridden by the PPN_LOG env var (debug|info|warn|error|off).
LogLevel logThreshold();
void setLogThreshold(LogLevel level);

namespace detail {
void logMessage(LogLevel level, std::string_view msg);
}

#define PPN_LOG_AT(level, ...)                                        \
  do {                                                                \
    if (static_cast<int>(level) >=                                    \
        static_cast<int>(::ppn::logThreshold())) {                    \
      char ppn_log_buf_[512];                                         \
      std::snprintf(ppn_log_buf_, sizeof(ppn_log_buf_), __VA_ARGS__); \
      ::ppn::detail::logMessage(level, ppn_log_buf_);                 \
    }                                                                 \
  } while (0)

#define PPN_DEBUG(...) PPN_LOG_AT(::ppn::LogLevel::kDebug, __VA_ARGS__)
#define PPN_INFO(...) PPN_LOG_AT(::ppn::LogLevel::kInfo, __VA_ARGS__)
#define PPN_WARN(...) PPN_LOG_AT(::ppn::LogLevel::kWarn, __VA_ARGS__)
#define PPN_ERROR(...) PPN_LOG_AT(::ppn::LogLevel::kError, __VA_ARGS__)

}  // namespace ppn
