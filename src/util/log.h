// Leveled stderr logging. Deliberately tiny: simulations are deterministic
// and most diagnostics go through structured bench output, so logging is only
// used for progress notes and unexpected conditions.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>

namespace ppn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kInfo and can
/// be overridden by the PPN_LOG env var (debug|info|warn|error|off).
LogLevel logThreshold();
void setLogThreshold(LogLevel level);

/// Parses "debug"|"info"|"warn"|"error"|"off"; anything else (including
/// nullptr-free garbage) yields `fallback`. This is exactly the PPN_LOG
/// env-var semantics, exposed for tests and CLI reuse.
LogLevel parseLogLevel(std::string_view s, LogLevel fallback = LogLevel::kInfo);

/// Redirects delivered log messages (tests, embedding). The sink receives
/// the already-formatted, threshold-filtered message without the "[ppn
/// LEVEL]" prefix or trailing newline. An empty function restores the
/// default stderr sink. Not safe to swap while other threads are logging.
using LogSink = std::function<void(LogLevel, std::string_view)>;
void setLogSink(LogSink sink);

namespace detail {
void logMessage(LogLevel level, std::string_view msg);

/// Post-processes a snprintf'd buffer: `written` is snprintf's return value.
/// On overflow (written >= cap) the tail is replaced with a "..." marker so
/// truncation is visible instead of silent; on encoding error the message is
/// replaced wholesale. Returns the view to deliver.
std::string_view finishLogBuffer(char* buf, std::size_t cap, int written);
}  // namespace detail

#define PPN_LOG_AT(level, ...)                                             \
  do {                                                                     \
    if (static_cast<int>(level) >=                                         \
        static_cast<int>(::ppn::logThreshold())) {                         \
      char ppn_log_buf_[512];                                              \
      const int ppn_log_written_ = std::snprintf(                          \
          ppn_log_buf_, sizeof(ppn_log_buf_), __VA_ARGS__);                \
      ::ppn::detail::logMessage(                                           \
          level, ::ppn::detail::finishLogBuffer(                           \
                     ppn_log_buf_, sizeof(ppn_log_buf_), ppn_log_written_)); \
    }                                                                      \
  } while (0)

#define PPN_DEBUG(...) PPN_LOG_AT(::ppn::LogLevel::kDebug, __VA_ARGS__)
#define PPN_INFO(...) PPN_LOG_AT(::ppn::LogLevel::kInfo, __VA_ARGS__)
#define PPN_WARN(...) PPN_LOG_AT(::ppn::LogLevel::kWarn, __VA_ARGS__)
#define PPN_ERROR(...) PPN_LOG_AT(::ppn::LogLevel::kError, __VA_ARGS__)

}  // namespace ppn
