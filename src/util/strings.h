// Small string helpers shared by CLI parsing and table rendering.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ppn {

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Parse a non-negative integer; nullopt on malformed input or overflow.
std::optional<std::uint64_t> parseU64(std::string_view s);

/// Parse a signed integer; nullopt on malformed input or overflow.
std::optional<std::int64_t> parseI64(std::string_view s);

/// Parse a double; nullopt on malformed input.
std::optional<double> parseDouble(std::string_view s);

/// true if `s` starts with `prefix`.
bool startsWith(std::string_view s, std::string_view prefix);

/// Join items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Left/right pad to width with spaces (no-op if already wider).
std::string padLeft(std::string_view s, std::size_t width);
std::string padRight(std::string_view s, std::size_t width);

/// Render a double with fixed precision, trimming trailing zeros.
std::string formatDouble(double v, int precision = 3);

}  // namespace ppn
