// ASCII table and CSV rendering for bench output.
//
// Benches print both a human-readable aligned table (stdout) and, optionally,
// machine-readable CSV, so results can be eyeballed and re-plotted.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ppn {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void addRow(std::vector<std::string> row);

  /// Convenience: build a row from heterogeneous cells.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& t) : table_(t) {}
    RowBuilder& cell(std::string_view s);
    RowBuilder& cell(std::uint64_t v);
    RowBuilder& cell(std::int64_t v);
    RowBuilder& cell(int v) { return cell(static_cast<std::int64_t>(v)); }
    RowBuilder& cell(double v, int precision = 3);
    ~RowBuilder();

    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  RowBuilder row() { return RowBuilder(*this); }

  std::size_t rowCount() const { return rows_.size(); }

  /// Render as an aligned ASCII table with a separator under the header.
  std::string render() const;

  /// Render as CSV (header + rows). Cells containing commas/quotes/newlines
  /// are quoted per RFC 4180.
  std::string renderCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ppn
