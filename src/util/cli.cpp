#include "util/cli.h"

#include <cstdio>
#include <variant>

#include "util/strings.h"

namespace ppn {

namespace {

struct Option {
  std::string name;
  std::string help;
  std::string defaultRepr;
  bool isFlag = false;
  std::variant<std::uint64_t*, std::int64_t*, double*, std::string*, bool*>
      target;
};

}  // namespace

struct Cli::Impl {
  std::string program;
  std::string description;
  std::vector<Option> options;
  // Owned storage for option values; deque-like stability via unique_ptr.
  std::vector<std::unique_ptr<std::uint64_t>> uints;
  std::vector<std::unique_ptr<std::int64_t>> ints;
  std::vector<std::unique_ptr<double>> doubles;
  std::vector<std::unique_ptr<std::string>> strings;
  std::vector<std::unique_ptr<bool>> flags;

  Option* find(std::string_view name) {
    for (auto& o : options)
      if (o.name == name) return &o;
    return nullptr;
  }
};

Cli::Cli(std::string programName, std::string description)
    : impl_(std::make_unique<Impl>()) {
  impl_->program = std::move(programName);
  impl_->description = std::move(description);
}

Cli::~Cli() = default;

const std::uint64_t* Cli::addUint(std::string name, std::string help,
                                  std::uint64_t defaultValue) {
  impl_->uints.push_back(std::make_unique<std::uint64_t>(defaultValue));
  auto* p = impl_->uints.back().get();
  impl_->options.push_back(
      {std::move(name), std::move(help), std::to_string(defaultValue), false, p});
  return p;
}

const std::int64_t* Cli::addInt(std::string name, std::string help,
                                std::int64_t defaultValue) {
  impl_->ints.push_back(std::make_unique<std::int64_t>(defaultValue));
  auto* p = impl_->ints.back().get();
  impl_->options.push_back(
      {std::move(name), std::move(help), std::to_string(defaultValue), false, p});
  return p;
}

const double* Cli::addDouble(std::string name, std::string help,
                             double defaultValue) {
  impl_->doubles.push_back(std::make_unique<double>(defaultValue));
  auto* p = impl_->doubles.back().get();
  impl_->options.push_back(
      {std::move(name), std::move(help), formatDouble(defaultValue), false, p});
  return p;
}

const std::string* Cli::addString(std::string name, std::string help,
                                  std::string defaultValue) {
  impl_->strings.push_back(std::make_unique<std::string>(defaultValue));
  auto* p = impl_->strings.back().get();
  impl_->options.push_back(
      {std::move(name), std::move(help), std::move(defaultValue), false, p});
  return p;
}

const bool* Cli::addFlag(std::string name, std::string help) {
  impl_->flags.push_back(std::make_unique<bool>(false));
  auto* p = impl_->flags.back().get();
  impl_->options.push_back(
      {std::move(name), std::move(help), "false", true, p});
  return p;
}

std::string Cli::helpText() const {
  std::string out = impl_->program + " — " + impl_->description + "\n\nOptions:\n";
  std::size_t width = 4;  // "help"
  for (const auto& o : impl_->options) width = std::max(width, o.name.size());
  for (const auto& o : impl_->options) {
    out += "  --" + padRight(o.name, width) + "  " + o.help;
    if (!o.isFlag) out += " (default: " + o.defaultRepr + ")";
    out += "\n";
  }
  out += "  --" + padRight("help", width) + "  show this message\n";
  return out;
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(helpText().c_str(), stdout);
      return false;
    }
    if (!startsWith(arg, "--")) {
      std::fprintf(stderr, "%s: unexpected positional argument '%.*s'\n",
                   impl_->program.c_str(), static_cast<int>(arg.size()),
                   arg.data());
      return false;
    }
    arg.remove_prefix(2);
    std::string_view name = arg;
    std::string_view value;
    bool haveValue = false;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      haveValue = true;
    }
    Option* opt = impl_->find(name);
    if (opt == nullptr) {
      std::fprintf(stderr, "%s: unknown option '--%.*s'\n",
                   impl_->program.c_str(), static_cast<int>(name.size()),
                   name.data());
      return false;
    }
    if (opt->isFlag) {
      if (haveValue) {
        std::fprintf(stderr, "%s: flag '--%s' does not take a value\n",
                     impl_->program.c_str(), opt->name.c_str());
        return false;
      }
      *std::get<bool*>(opt->target) = true;
      continue;
    }
    if (!haveValue) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: option '--%s' needs a value\n",
                     impl_->program.c_str(), opt->name.c_str());
        return false;
      }
      value = argv[++i];
    }
    bool ok = true;
    if (auto** p = std::get_if<std::uint64_t*>(&opt->target)) {
      auto v = parseU64(value);
      ok = v.has_value();
      if (ok) **p = *v;
    } else if (auto** q = std::get_if<std::int64_t*>(&opt->target)) {
      auto v = parseI64(value);
      ok = v.has_value();
      if (ok) **q = *v;
    } else if (auto** d = std::get_if<double*>(&opt->target)) {
      auto v = parseDouble(value);
      ok = v.has_value();
      if (ok) **d = *v;
    } else if (auto** s = std::get_if<std::string*>(&opt->target)) {
      **s = std::string(value);
    }
    if (!ok) {
      std::fprintf(stderr, "%s: invalid value '%.*s' for option '--%s'\n",
                   impl_->program.c_str(), static_cast<int>(value.size()),
                   value.data(), opt->name.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace ppn
