// Deterministic pseudo-random number generation for simulations and benches.
//
// All randomness in this library flows through ppn::Rng so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256** seeded via SplitMix64, which is fast, has a 2^256-1 period and
// passes BigCrush; it is not cryptographic and must not be used as such.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace ppn {

/// SplitMix64: used to expand a 64-bit seed into xoshiro's 256-bit state and
/// as a cheap standalone mixer (e.g. for hashing).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), wrapped in the C++ URBG concept so it
/// can also feed <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Derive an independent child generator (for per-run seeding in sweeps).
  Rng split() noexcept { return Rng(next() ^ 0xD1B54A32D192ED03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

/// Fisher-Yates shuffle of a random-access container.
template <typename Container>
void shuffle(Container& c, Rng& rng) {
  using std::swap;
  const std::size_t n = c.size();
  if (n < 2) return;
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i + 1));
    swap(c[i], c[j]);
  }
}

}  // namespace ppn
