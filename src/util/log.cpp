#include "util/log.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ppn {

namespace {

LogLevel initialThreshold() {
  const char* env = std::getenv("PPN_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  return parseLogLevel(env, LogLevel::kInfo);
}

std::atomic<int>& thresholdStorage() {
  static std::atomic<int> level{static_cast<int>(initialThreshold())};
  return level;
}

LogSink& sinkStorage() {
  static LogSink sink;
  return sink;
}

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel parseLogLevel(std::string_view s, LogLevel fallback) {
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  return fallback;
}

LogLevel logThreshold() {
  return static_cast<LogLevel>(thresholdStorage().load(std::memory_order_relaxed));
}

void setLogThreshold(LogLevel level) {
  thresholdStorage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void setLogSink(LogSink sink) { sinkStorage() = std::move(sink); }

namespace detail {

std::string_view finishLogBuffer(char* buf, std::size_t cap, int written) {
  if (written < 0) {
    // Encoding error: nothing reliable is in the buffer.
    constexpr std::string_view kBad = "(log formatting error)";
    const std::size_t n = std::min(kBad.size(), cap - 1);
    std::memcpy(buf, kBad.data(), n);
    buf[n] = '\0';
    return std::string_view(buf, n);
  }
  const auto want = static_cast<std::size_t>(written);
  if (want >= cap) {
    // snprintf truncated to cap-1 chars; make the cut visible.
    constexpr std::string_view kMarker = "...";
    const std::size_t len = cap - 1;
    if (len >= kMarker.size()) {
      std::memcpy(buf + len - kMarker.size(), kMarker.data(), kMarker.size());
    }
    return std::string_view(buf, len);
  }
  return std::string_view(buf, want);
}

void logMessage(LogLevel level, std::string_view msg) {
  if (const LogSink& sink = sinkStorage()) {
    sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[ppn %s] %.*s\n", levelName(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace detail

}  // namespace ppn
