#include "util/log.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ppn {

namespace {

LogLevel initialThreshold() {
  const char* env = std::getenv("PPN_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<int>& thresholdStorage() {
  static std::atomic<int> level{static_cast<int>(initialThreshold())};
  return level;
}

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel logThreshold() {
  return static_cast<LogLevel>(thresholdStorage().load(std::memory_order_relaxed));
}

void setLogThreshold(LogLevel level) {
  thresholdStorage().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {
void logMessage(LogLevel level, std::string_view msg) {
  std::fprintf(stderr, "[ppn %s] %.*s\n", levelName(level),
               static_cast<int>(msg.size()), msg.data());
}
}  // namespace detail

}  // namespace ppn
