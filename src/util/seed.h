// Seed derivation shared by every batch driver.
//
// Three derivation schemes exist in this repo, and each used to be re-spelled
// at its call sites (runBatch workers, fault campaigns, campaign unit
// expansion, the exact-vs-simulated bench). The batch engine (sim/batch_engine.h)
// would have added a fourth copy, so the schemes live here once:
//
//  * splitRunRngs — one child generator per run, split sequentially from a
//    single master. The only source of randomness a run sees is its own
//    child, so batch results are bit-identical for every thread count and
//    every execution backend (scalar workers, the SoA lane kernel, campaign
//    shards). runBatch, runCampaign, and BatchEngine::submit all derive
//    per-run inputs through this function — that sharing IS the determinism
//    contract between them.
//  * drawRunSeeds — one raw 64-bit seed per run, drawn sequentially
//    (exact_vs_simulated rows, where the start configuration is fixed and
//    only the scheduler stream varies per run).
//  * Fnv1a — stable coordinate hashing for pre-drawn cell/unit seeds
//    (certify cellSeed, campaign manifest expansion): platform-independent
//    and independent of sweep execution order, never std::hash.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace ppn {

/// FNV-1a accumulator over 64-bit lanes. `base` perturbs the offset basis so
/// independent sweeps sharing coordinates decorrelate. Strings are mixed
/// byte-wise (one lane per byte), matching the historical certify cellSeed.
class Fnv1a {
 public:
  explicit constexpr Fnv1a(std::uint64_t base = 0) noexcept
      : h_(1469598103934665603ULL ^ base) {}

  constexpr Fnv1a& mix(std::uint64_t v) noexcept {
    h_ ^= v;
    h_ *= 1099511628211ULL;
    return *this;
  }

  constexpr Fnv1a& mix(std::string_view s) noexcept {
    for (const char c : s) mix(static_cast<unsigned char>(c));
    return *this;
  }

  constexpr std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_;
};

/// Pre-splits one independent child generator per run from `seed`,
/// sequentially, before any run executes. Index r of the result is the ONLY
/// generator run r may consume; how runs are then scheduled (threads, lanes,
/// processes) cannot change any outcome.
inline std::vector<Rng> splitRunRngs(std::uint64_t seed, std::uint32_t runs) {
  Rng master(seed);
  std::vector<Rng> rngs;
  rngs.reserve(runs);
  for (std::uint32_t r = 0; r < runs; ++r) rngs.push_back(master.split());
  return rngs;
}

/// Draws one raw seed per run, sequentially (for runs whose only per-run
/// randomness is a scheduler stream seeded with the value).
inline std::vector<std::uint64_t> drawRunSeeds(std::uint64_t seed,
                                               std::uint32_t runs) {
  Rng master(seed);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(runs);
  for (std::uint32_t r = 0; r < runs; ++r) seeds.push_back(master.next());
  return seeds;
}

}  // namespace ppn
