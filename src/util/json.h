// Minimal streaming JSON writer for machine-readable bench output.
//
// No third-party JSON dependency is available in this build, and the emitted
// documents are small (robustness tables, experiment manifests), so a tiny
// push-style writer suffices. It produces deterministic, valid JSON: keys and
// values are escaped per RFC 8259, doubles are rendered with enough digits to
// round-trip, and NaN/Inf (not representable in JSON) degrade to null.
//
// Usage:
//   JsonWriter w;
//   w.beginObject();
//   w.key("runs").value(24);
//   w.key("cells").beginArray();
//   w.beginObject(); ... w.endObject();
//   w.endArray();
//   w.endObject();
//   std::string doc = w.str();
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ppn {

/// Escapes `s` as a JSON string literal, including the surrounding quotes.
std::string jsonEscape(std::string_view s);

/// True when `s` is exactly one syntactically valid JSON value (RFC 8259)
/// plus optional surrounding whitespace. A structural validator, not a
/// parser: used by tests and telemetry consumers to assert that emitted
/// documents and JSONL event lines parse, without a DOM dependency.
bool jsonIsValid(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Writes an object key; must be followed by exactly one value (or
  /// container begin). Throws std::logic_error outside an object.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& null();

  /// The finished document. Throws std::logic_error if containers are still
  /// open or nothing was written.
  std::string str() const;

 private:
  enum class Ctx : std::uint8_t { kObject, kArray };
  void beforeValue();

  std::string out_;
  std::vector<Ctx> stack_;
  /// Whether the current container already holds an element (per level).
  std::vector<bool> hasElement_;
  bool pendingKey_ = false;
  bool done_ = false;
};

}  // namespace ppn
