// Minimal streaming JSON writer for machine-readable bench output.
//
// No third-party JSON dependency is available in this build, and the emitted
// documents are small (robustness tables, experiment manifests), so a tiny
// push-style writer suffices. It produces deterministic, valid JSON: keys and
// values are escaped per RFC 8259, doubles are rendered with enough digits to
// round-trip, and NaN/Inf (not representable in JSON) degrade to null.
//
// Usage:
//   JsonWriter w;
//   w.beginObject();
//   w.key("runs").value(24);
//   w.key("cells").beginArray();
//   w.beginObject(); ... w.endObject();
//   w.endArray();
//   w.endObject();
//   std::string doc = w.str();
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ppn {

/// Escapes `s` as a JSON string literal, including the surrounding quotes.
std::string jsonEscape(std::string_view s);

/// True when `s` is exactly one syntactically valid JSON value (RFC 8259)
/// plus optional surrounding whitespace. A structural validator, not a
/// parser: used by tests and telemetry consumers to assert that emitted
/// documents and JSONL event lines parse, without a DOM dependency.
bool jsonIsValid(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Writes an object key; must be followed by exactly one value (or
  /// container begin). Throws std::logic_error outside an object.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  /// Fixed-point rendering ("%.Nf", decimals clamped to 0..17) for documents
  /// whose bytes must be stable and diff-friendly across platforms (campaign
  /// health rates/latencies). NaN/Inf degrade to null like value(double).
  JsonWriter& valueFixed(double v, int decimals);
  JsonWriter& null();

  /// The finished document. Throws std::logic_error if containers are still
  /// open or nothing was written.
  std::string str() const;

 private:
  enum class Ctx : std::uint8_t { kObject, kArray };
  void beforeValue();

  std::string out_;
  std::vector<Ctx> stack_;
  /// Whether the current container already holds an element (per level).
  std::vector<bool> hasElement_;
  bool pendingKey_ = false;
  bool done_ = false;
};

/// Parsed JSON document node. A small DOM for the documents this repo reads
/// back (campaign manifests, checkpoints, shard artifacts): object member
/// order is preserved, and numbers keep their source text so 64-bit seeds
/// round-trip exactly instead of through a double.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject
  };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::kNull; }
  bool isBool() const { return kind_ == Kind::kBool; }
  bool isNumber() const { return kind_ == Kind::kNumber; }
  bool isString() const { return kind_ == Kind::kString; }
  bool isArray() const { return kind_ == Kind::kArray; }
  bool isObject() const { return kind_ == Kind::kObject; }

  /// Typed accessors throw std::logic_error on a kind mismatch — manifest
  /// readers surface that as a schema error with the offending key.
  bool asBool() const;
  double asDouble() const;
  /// Exact integer reads: nullopt when the number has a fraction/exponent or
  /// does not fit (never silently rounded through a double).
  std::optional<std::uint64_t> asU64() const;
  std::optional<std::int64_t> asI64() const;
  const std::string& asString() const;
  const std::vector<JsonValue>& items() const;    ///< array elements
  const std::vector<Member>& members() const;     ///< object, source order

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  /// Construction (used by the parser and by tests).
  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool v);
  static JsonValue makeNumber(std::string raw);
  static JsonValue makeString(std::string v);
  static JsonValue makeArray(std::vector<JsonValue> items);
  static JsonValue makeObject(std::vector<Member> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;  ///< number source text, or decoded string value
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Parses exactly one JSON document (RFC 8259, \uXXXX decoded to UTF-8).
/// Returns nullopt on malformed input and, when `error` is non-null, stores a
/// one-line description with the byte offset of the failure.
std::optional<JsonValue> jsonParse(std::string_view s,
                                   std::string* error = nullptr);

}  // namespace ppn
