#include "util/rng.h"

namespace ppn {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method. For bound == 0 we define the result
  // as 0 rather than UB; callers are expected to pass bound > 0.
  if (bound == 0) return 0;
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace ppn
