// Protocol 2 / Proposition 16: self-stabilizing symmetric naming under weak
// fairness with P + 1 states per mobile agent and a unique NON-initialized
// leader. Optimal: Theorem 11 shows P states do not suffice even with an
// initialized leader.
//
// Construction: Protocol 1 with (a) the mobile state space widened to 0..P so
// that U* = U_P can name up to P agents (names 1..P), and (b) a reset rule —
// when the guess n has overrun P and BST still meets a 0-agent (homonyms
// persist), it concludes the naming attempt failed (e.g. it started from a
// corrupted state) and restarts with n = k = 0.
#pragma once

#include <vector>

#include "core/protocol.h"
#include "naming/bst_state.h"

namespace ppn {

class SelfStabWeakNaming final : public Protocol {
 public:
  /// `withReset = false` drops the reset rule (lines 11-12) — the ablation
  /// used by bench/ablation_reset to show the reset is what buys
  /// self-stabilization: without it, a corrupted BST with n > P wedges the
  /// protocol forever.
  explicit SelfStabWeakNaming(StateId p, bool withReset = true);

  std::string name() const override;
  StateId numMobileStates() const override { return p_ + 1; }
  bool hasLeader() const override { return true; }
  bool isSymmetric() const override { return true; }

  MobilePair mobileDelta(StateId initiator, StateId responder) const override;
  LeaderResult leaderDelta(LeaderStateId leader, StateId mobile) const override;

  /// Self-stabilizing: neither the mobile agents nor the leader are
  /// initialized, so no initial states are declared.
  std::vector<LeaderStateId> allLeaderStates() const override;
  std::string describeLeaderState(LeaderStateId leader) const override;

  bool isValidName(StateId s) const override { return s != 0; }

  StateId p() const { return p_; }
  bool withReset() const { return withReset_; }

 private:
  StateId p_;
  bool withReset_;
};

}  // namespace ppn
