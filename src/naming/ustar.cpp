#include "naming/ustar.h"

#include <bit>
#include <stdexcept>

namespace ppn {

std::vector<std::uint32_t> buildUStar(std::uint32_t n) {
  if (n == 0) return {};
  if (n > 30) {
    throw std::invalid_argument("buildUStar: 2^n - 1 would not fit in memory");
  }
  // Iterative doubling mirrors the recursion U_n = U_{n-1}, n, U_{n-1}.
  std::vector<std::uint32_t> u{1};
  for (std::uint32_t level = 2; level <= n; ++level) {
    std::vector<std::uint32_t> next;
    next.reserve(u.size() * 2 + 1);
    next.insert(next.end(), u.begin(), u.end());
    next.push_back(level);
    next.insert(next.end(), u.begin(), u.end());
    u = std::move(next);
  }
  return u;
}

std::uint32_t rulerValue(std::uint64_t k) {
  if (k == 0) {
    throw std::invalid_argument("rulerValue: k is 1-based");
  }
  return static_cast<std::uint32_t>(std::countr_zero(k)) + 1;
}

}  // namespace ppn
