// The asymmetric-to-symmetric transformer of the paper's footnote 5
// (Bournez, Chalopin, Cohen, Koegler, Rabie [17]), reconstructed: every
// agent carries one extra *coin bit* next to its inner state, doubling the
// state count. The bit decides who plays the asymmetric initiator role, so
// the resulting rule set is symmetric:
//
//   bits differ              -> the 0-bit agent initiates the inner rule;
//                               both agents then flip their bits (so roles
//                               alternate between repeat encounters);
//   bits equal, states differ-> the lower inner state flips its bit (a
//                               deterministic tie-break step: the pair
//                               becomes role-assigned);
//   bits equal, states equal -> null. Two fully identical agents can never
//                               be separated by symmetric rules — this is
//                               exactly why the transformer "requires global
//                               fairness and doubles the number of states
//                               per agent", and why it is "frequently
//                               inadequate for obtaining a space efficient
//                               symmetric solution" (footnote 5): 2P states
//                               versus the optimal P+1.
//
// Names are the inner states (nameOf projection): coin flips are auxiliary
// and do not count as renamings.
#pragma once

#include "core/protocol.h"

namespace ppn {

class SymmetrizedProtocol final : public Protocol {
 public:
  /// Wraps `inner` (non-owning, must outlive the wrapper, must be
  /// leaderless). State encoding: inner * 2 + bit.
  explicit SymmetrizedProtocol(const Protocol& inner);

  std::string name() const override;
  StateId numMobileStates() const override { return 2 * innerQ_; }
  bool isSymmetric() const override { return true; }
  MobilePair mobileDelta(StateId initiator, StateId responder) const override;

  bool isValidName(StateId s) const override {
    return inner_->isValidName(innerState(s));
  }
  StateId nameOf(StateId s) const override {
    return inner_->nameOf(innerState(s));
  }

  StateId innerState(StateId s) const { return s / 2; }
  bool coin(StateId s) const { return (s & 1u) != 0; }
  StateId encode(StateId innerS, bool bit) const {
    return innerS * 2 + (bit ? 1u : 0u);
  }

 private:
  const Protocol* inner_;
  StateId innerQ_;
};

}  // namespace ppn
