#include "naming/counting_protocol.h"

#include <stdexcept>

#include "naming/bst_counting_core.h"

namespace ppn {

CountingProtocol::CountingProtocol(StateId p) : p_(p) {
  if (p < 2) throw std::invalid_argument("CountingProtocol: P must be >= 2");
}

std::string CountingProtocol::name() const {
  return "counting-protocol1(P=" + std::to_string(p_) + ")";
}

MobilePair CountingProtocol::mobileDelta(StateId initiator,
                                         StateId responder) const {
  if (initiator == responder) {
    return MobilePair{0, 0};  // homonyms drop to the sink
  }
  return MobilePair{initiator, responder};
}

LeaderResult CountingProtocol::leaderDelta(LeaderStateId leader,
                                           StateId mobile) const {
  BstState bst = unpackBst(leader);
  StateId name = mobile;
  const CountingCoreParams params{
      .nLimit = p_,
      .kMax = kBoundForExponent(p_ - 1),
      .nameCap = static_cast<StateId>(p_ - 1),
  };
  countingBody(bst, name, params);
  return LeaderResult{packBst(bst), name};
}

std::vector<LeaderStateId> CountingProtocol::allLeaderStates() const {
  if (p_ > 12) return {};  // enumeration would be impractically large
  std::vector<LeaderStateId> all;
  const std::uint64_t kMax = kBoundForExponent(p_ - 1);
  for (std::uint32_t n = 0; n <= p_; ++n) {
    for (std::uint64_t k = 0; k <= kMax; ++k) {
      all.push_back(packBst(BstState{.n = n, .k = k, .namePtr = 0}));
    }
  }
  return all;
}

std::string CountingProtocol::describeLeaderState(LeaderStateId leader) const {
  const BstState s = unpackBst(leader);
  return "BST(n=" + std::to_string(s.n) + ",k=" + std::to_string(s.k) + ")";
}

}  // namespace ppn
