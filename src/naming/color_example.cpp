#include "naming/color_example.h"

namespace ppn {

bool allBlack(const Configuration& c) {
  for (const StateId s : c.mobile) {
    if (s != ColorExample::kBlack) return false;
  }
  return true;
}

}  // namespace ppn
