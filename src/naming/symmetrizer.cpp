#include "naming/symmetrizer.h"

#include <stdexcept>

namespace ppn {

SymmetrizedProtocol::SymmetrizedProtocol(const Protocol& inner)
    : inner_(&inner), innerQ_(inner.numMobileStates()) {
  if (inner.hasLeader()) {
    throw std::invalid_argument(
        "SymmetrizedProtocol: leader interactions are already asymmetric; "
        "only leaderless protocols are transformed");
  }
}

std::string SymmetrizedProtocol::name() const {
  return "symmetrized(" + inner_->name() + ")";
}

MobilePair SymmetrizedProtocol::mobileDelta(StateId initiator,
                                            StateId responder) const {
  const StateId p = innerState(initiator);
  const StateId q = innerState(responder);
  const bool ba = coin(initiator);
  const bool bb = coin(responder);

  if (ba != bb) {
    // The 0-bit agent plays the inner initiator; both coins flip.
    const MobilePair r = ba ? inner_->mobileDelta(q, p)   // responder leads
                            : inner_->mobileDelta(p, q);  // initiator leads
    const StateId newP = ba ? r.responder : r.initiator;
    const StateId newQ = ba ? r.initiator : r.responder;
    return MobilePair{encode(newP, !ba), encode(newQ, !bb)};
  }
  if (p != q) {
    // Tie-break: the smaller inner state flips its coin. Symmetric because
    // the choice depends only on state values, never on position.
    if (p < q) return MobilePair{encode(p, !ba), responder};
    return MobilePair{initiator, encode(q, !bb)};
  }
  return MobilePair{initiator, responder};  // fully identical: stuck pair
}

}  // namespace ppn
