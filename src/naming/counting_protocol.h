// Protocol 1 — the space-optimal counting protocol of [11] (Beauquier,
// Burman, Clavière, Sohier, DISC 2015), restated as the paper's Theorem 15:
// with an initialized leader (BST) and arbitrarily initialized mobile agents,
// it counts any N <= P under weak fairness using P states per mobile agent,
// and as a by-product assigns distinct names in {1..N} whenever N < P.
//
// Mobile states are 0..P-1; 0 is the homonym sink (two agents meeting with
// equal names both drop to 0, signalling BST that homonyms still exist). BST
// keeps the guess n and the U* pointer k.
#pragma once

#include <vector>

#include "core/protocol.h"
#include "naming/bst_state.h"

namespace ppn {

class CountingProtocol final : public Protocol {
 public:
  /// P >= 2 (the paper's U* = U_{P-1} needs P-1 >= 1).
  explicit CountingProtocol(StateId p);

  std::string name() const override;
  StateId numMobileStates() const override { return p_; }
  bool hasLeader() const override { return true; }
  bool isSymmetric() const override { return true; }

  MobilePair mobileDelta(StateId initiator, StateId responder) const override;
  LeaderResult leaderDelta(LeaderStateId leader, StateId mobile) const override;

  /// BST is initialized (n = k = 0); mobile agents are not.
  std::optional<LeaderStateId> initialLeaderState() const override {
    return packBst(BstState{});
  }
  std::vector<LeaderStateId> allLeaderStates() const override;
  std::string describeLeaderState(LeaderStateId leader) const override;

  /// 0 is the homonym sink, never a final name.
  bool isValidName(StateId s) const override { return s != 0; }

  /// Theorem 15: the converged value of n is the population size N.
  std::optional<std::uint64_t> countingAnswer(LeaderStateId leader) const override {
    return unpackBst(leader).n;
  }

  StateId p() const { return p_; }

 private:
  StateId p_;
};

}  // namespace ppn
