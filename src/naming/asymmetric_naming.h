// Proposition 12: asymmetric self-stabilizing naming with the optimal P
// states per agent, no leader, correct under both weak and global fairness.
//
// The protocol has a single non-null rule type:
//     (s, s) -> (s, s + 1 mod P)
// i.e. when two homonyms meet, the responder advances to the next name
// cyclically. The paper's correctness proof introduces the *hole distance*
// potential function; `holePotential` below exposes it so tests can check the
// paper's key invariant: the potential strictly decreases (lexicographically)
// on every non-null transition.
#pragma once

#include <utility>

#include "core/configuration.h"
#include "core/protocol.h"

namespace ppn {

class AsymmetricNaming final : public Protocol {
 public:
  /// P = known upper bound on the population size; P >= 1.
  explicit AsymmetricNaming(StateId p);

  std::string name() const override;
  StateId numMobileStates() const override { return p_; }
  bool isSymmetric() const override { return false; }
  MobilePair mobileDelta(StateId initiator, StateId responder) const override;

  StateId p() const { return p_; }

 private:
  StateId p_;
};

/// The paper's potential: (number of holes, hole distance of the
/// configuration). A *hole* is a name no agent holds; the hole distance of an
/// agent in state i is the least j >= 0 with i + j mod P a hole (0 if there
/// is no hole). Strictly decreasing in lexicographic order on every non-null
/// transition, and bounded, so executions are silent after finitely many
/// non-null steps.
std::pair<std::uint32_t, std::uint64_t> holePotential(const Configuration& c,
                                                      StateId p);

}  // namespace ppn
