// The illustrative two-color protocol of the paper's Section 2, used to
// separate weak from global fairness.
//
// Agents are white (0) or black (1). When two whites meet they both turn
// black; when a black and a white meet they exchange colors. Starting from
// one black and two whites, there is a weakly fair infinite execution in
// which the single black token "jumps" between agents forever, yet every
// globally fair execution ends with all three agents black. The fairness
// benches, tests and the fairness_explorer example all exercise it.
#pragma once

#include "core/configuration.h"
#include "core/protocol.h"

namespace ppn {

class ColorExample final : public Protocol {
 public:
  static constexpr StateId kWhite = 0;
  static constexpr StateId kBlack = 1;

  std::string name() const override { return "color-example"; }
  StateId numMobileStates() const override { return 2; }
  bool isSymmetric() const override { return true; }

  MobilePair mobileDelta(StateId initiator, StateId responder) const override {
    if (initiator == kWhite && responder == kWhite) {
      return MobilePair{kBlack, kBlack};
    }
    if (initiator != responder) {
      return MobilePair{responder, initiator};  // exchange colors
    }
    return MobilePair{initiator, responder};  // black-black: null
  }
};

/// The example's target predicate: every agent black.
bool allBlack(const Configuration& c);

}  // namespace ppn
