#include "naming/registry.h"

#include <stdexcept>

#include "naming/asymmetric_naming.h"
#include "naming/counting_protocol.h"
#include "naming/global_leader_naming.h"
#include "naming/leader_uniform_naming.h"
#include "naming/selfstab_weak_naming.h"
#include "naming/symmetric_global_naming.h"

namespace ppn {

std::vector<std::string> protocolKeys() {
  return {"asymmetric",    "symmetric-global", "leader-uniform",
          "counting",      "selfstab-weak",    "global-leader"};
}

std::unique_ptr<Protocol> makeProtocol(const std::string& key, StateId p) {
  if (key == "asymmetric") return std::make_unique<AsymmetricNaming>(p);
  if (key == "symmetric-global") return std::make_unique<SymmetricGlobalNaming>(p);
  if (key == "leader-uniform") return std::make_unique<LeaderUniformNaming>(p);
  if (key == "counting") return std::make_unique<CountingProtocol>(p);
  if (key == "selfstab-weak") return std::make_unique<SelfStabWeakNaming>(p);
  if (key == "global-leader") return std::make_unique<GlobalLeaderNaming>(p);
  throw std::invalid_argument("unknown protocol key '" + key + "'");
}

bool isSelfStabilizing(const std::string& key) {
  if (key == "asymmetric" || key == "symmetric-global" || key == "selfstab-weak") {
    return true;
  }
  if (key == "leader-uniform" || key == "counting" || key == "global-leader") {
    return false;
  }
  throw std::invalid_argument("unknown protocol key '" + key + "'");
}

bool requiresGlobalFairness(const std::string& key) {
  if (key == "symmetric-global" || key == "global-leader") return true;
  if (key == "asymmetric" || key == "leader-uniform" || key == "counting" ||
      key == "selfstab-weak") {
    return false;
  }
  throw std::invalid_argument("unknown protocol key '" + key + "'");
}

std::string protocolAssumptions(const std::string& key) {
  if (key == "asymmetric") {
    return "asymmetric rules, no leader, arbitrary init, weak/global fairness, P states";
  }
  if (key == "symmetric-global") {
    return "symmetric rules, no leader, arbitrary init, global fairness, P+1 states";
  }
  if (key == "leader-uniform") {
    return "symmetric rules, initialized leader+agents, weak fairness, P states";
  }
  if (key == "counting") {
    return "counting (Thm 15): symmetric, initialized leader, weak fairness, P states";
  }
  if (key == "selfstab-weak") {
    return "symmetric rules, non-initialized leader, arbitrary init, weak fairness, P+1 states";
  }
  if (key == "global-leader") {
    return "symmetric rules, initialized leader, arbitrary agents, global fairness, P states";
  }
  throw std::invalid_argument("unknown protocol key '" + key + "'");
}

}  // namespace ppn
