#include "naming/selfstab_weak_naming.h"

#include <stdexcept>

#include "naming/bst_counting_core.h"

namespace ppn {

SelfStabWeakNaming::SelfStabWeakNaming(StateId p, bool withReset)
    : p_(p), withReset_(withReset) {
  if (p < 1) throw std::invalid_argument("SelfStabWeakNaming: P must be >= 1");
}

std::string SelfStabWeakNaming::name() const {
  return std::string("selfstab-weak-naming-protocol2(P=") + std::to_string(p_) +
         (withReset_ ? ")" : ", no-reset)");
}

MobilePair SelfStabWeakNaming::mobileDelta(StateId initiator,
                                           StateId responder) const {
  if (initiator == responder) {
    return MobilePair{0, 0};
  }
  return MobilePair{initiator, responder};
}

LeaderResult SelfStabWeakNaming::leaderDelta(LeaderStateId leader,
                                             StateId mobile) const {
  BstState bst = unpackBst(leader);
  StateId name = mobile;
  const CountingCoreParams params{
      .nLimit = p_ + 1,  // paper: body active while n <= P
      .kMax = kBoundForExponent(p_),
      .nameCap = p_,
  };
  if (!countingBody(bst, name, params)) {
    if (withReset_ && bst.n > p_ && name == 0) {
      // Reset rule (Protocol 2 lines 11-12): the naming attempt failed
      // because of a corrupted start; restart it.
      bst.n = 0;
      bst.k = 0;
    }
  }
  return LeaderResult{packBst(bst), name};
}

std::vector<LeaderStateId> SelfStabWeakNaming::allLeaderStates() const {
  if (p_ > 12) return {};
  std::vector<LeaderStateId> all;
  const std::uint64_t kMax = kBoundForExponent(p_);
  for (std::uint32_t n = 0; n <= p_ + 1; ++n) {
    for (std::uint64_t k = 0; k <= kMax; ++k) {
      all.push_back(packBst(BstState{.n = n, .k = k, .namePtr = 0}));
    }
  }
  return all;
}

std::string SelfStabWeakNaming::describeLeaderState(LeaderStateId leader) const {
  const BstState s = unpackBst(leader);
  return "BST(n=" + std::to_string(s.n) + ",k=" + std::to_string(s.k) + ")";
}

}  // namespace ppn
