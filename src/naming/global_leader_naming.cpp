#include "naming/global_leader_naming.h"

#include <stdexcept>

#include "naming/bst_counting_core.h"

namespace ppn {

GlobalLeaderNaming::GlobalLeaderNaming(StateId p) : p_(p) {
  if (p < 2) throw std::invalid_argument("GlobalLeaderNaming: P must be >= 2");
}

std::string GlobalLeaderNaming::name() const {
  return "global-leader-naming-protocol3(P=" + std::to_string(p_) + ")";
}

MobilePair GlobalLeaderNaming::mobileDelta(StateId initiator,
                                           StateId responder) const {
  if (initiator == responder) {
    return MobilePair{0, 0};
  }
  return MobilePair{initiator, responder};
}

LeaderResult GlobalLeaderNaming::leaderDelta(LeaderStateId leader,
                                             StateId mobile) const {
  BstState bst = unpackBst(leader);
  StateId name = mobile;
  const CountingCoreParams params{
      .nLimit = p_,
      .kMax = kBoundForExponent(p_ - 1),
      .nameCap = static_cast<StateId>(p_ - 1),
  };
  countingBody(bst, name, params);
  // Protocol 3 lines 11-16: renaming walk, active once the guess reached P.
  // Mirrors the pseudo-code's sequential layout (both blocks may run in the
  // single interaction where n first reaches P).
  if (bst.n == p_ && bst.namePtr < p_) {
    if (name == bst.namePtr) {
      bst.namePtr += 1;
    } else {
      name = bst.namePtr;
      bst.namePtr = 0;
    }
  }
  return LeaderResult{packBst(bst), name};
}

std::vector<LeaderStateId> GlobalLeaderNaming::allLeaderStates() const {
  if (p_ > 10) return {};
  std::vector<LeaderStateId> all;
  const std::uint64_t kMax = kBoundForExponent(p_ - 1);
  for (std::uint32_t n = 0; n <= p_; ++n) {
    for (std::uint64_t k = 0; k <= kMax; ++k) {
      for (std::uint32_t ptr = 0; ptr <= p_; ++ptr) {
        all.push_back(packBst(BstState{.n = n, .k = k, .namePtr = ptr}));
      }
    }
  }
  return all;
}

std::string GlobalLeaderNaming::describeLeaderState(LeaderStateId leader) const {
  const BstState s = unpackBst(leader);
  return "BST(n=" + std::to_string(s.n) + ",k=" + std::to_string(s.k) +
         ",ptr=" + std::to_string(s.namePtr) + ")";
}

}  // namespace ppn
