#include "naming/leader_uniform_naming.h"

#include <stdexcept>

namespace ppn {

LeaderUniformNaming::LeaderUniformNaming(StateId p) : p_(p) {
  if (p == 0) throw std::invalid_argument("LeaderUniformNaming: P must be >= 1");
}

std::string LeaderUniformNaming::name() const {
  return "leader-uniform-naming(P=" + std::to_string(p_) + ")";
}

MobilePair LeaderUniformNaming::mobileDelta(StateId initiator,
                                            StateId responder) const {
  return MobilePair{initiator, responder};  // all mobile-mobile rules null
}

LeaderResult LeaderUniformNaming::leaderDelta(LeaderStateId leader,
                                              StateId mobile) const {
  const StateId unnamed = static_cast<StateId>(p_ - 1);
  const auto c = static_cast<StateId>(leader);
  if (mobile == unnamed && c < unnamed) {
    return LeaderResult{static_cast<LeaderStateId>(c + 1), c};
  }
  return LeaderResult{leader, mobile};
}

std::vector<LeaderStateId> LeaderUniformNaming::allLeaderStates() const {
  std::vector<LeaderStateId> all;
  for (StateId c = 0; c < p_; ++c) all.push_back(c);
  return all;
}

std::string LeaderUniformNaming::describeLeaderState(LeaderStateId leader) const {
  return "c=" + std::to_string(leader);
}

}  // namespace ppn
