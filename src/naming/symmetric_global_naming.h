// Proposition 13: the first leaderless symmetric space-optimal
// self-stabilizing naming protocol, correct under global fairness for
// 2 < N <= P, using P + 1 states per agent (optimal by Proposition 2: P
// states are impossible for symmetric rules without a leader).
//
// States are 0..P, where state P is the extra "blank" state. Transition
// rules (paper numbering):
//   1. s != P : (s, P) -> (s, s+1 mod P)   — a blank agent adopts the
//                                            successor of a named neighbour
//   2. s != P : (s, s) -> (P, P)           — homonyms blank out
//   3.          (P, P) -> (1, 1)           — two blanks re-seed name 1
// Everything else is null.
#pragma once

#include "core/protocol.h"

namespace ppn {

class SymmetricGlobalNaming final : public Protocol {
 public:
  /// P >= 2 (with P = 1 rule 3's target name 1 would not exist).
  explicit SymmetricGlobalNaming(StateId p);

  std::string name() const override;
  StateId numMobileStates() const override { return p_ + 1; }
  bool isSymmetric() const override { return true; }
  MobilePair mobileDelta(StateId initiator, StateId responder) const override;

  /// State P is the blank marker, never a legal final name.
  bool isValidName(StateId s) const override { return s != p_; }

  StateId p() const { return p_; }
  StateId blankState() const { return p_; }

 private:
  StateId p_;
};

}  // namespace ppn
