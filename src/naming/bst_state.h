// Shared encoding of the BST (leader / base station) state of Protocols 1-3.
//
// The BST holds the counting guess n, the U* pointer k, and (Protocol 3 only)
// the renaming pointer name_ptr. They are packed into one LeaderStateId:
//   bits 56..63  n          (n <= P+1 <= 255)
//   bits 48..55  name_ptr   (name_ptr <= P <= 255)
//   bits  0..47  k          (k <= 2^P for the checker-sized P; simulations
//                            converge long before k could approach 2^48)
#pragma once

#include <cstdint>

#include "core/types.h"

namespace ppn {

struct BstState {
  std::uint32_t n = 0;
  std::uint64_t k = 0;
  std::uint32_t namePtr = 0;
};

inline constexpr std::uint64_t kBstKMask = (std::uint64_t{1} << 48) - 1;

inline constexpr LeaderStateId packBst(const BstState& s) {
  return (static_cast<std::uint64_t>(s.n & 0xffu) << 56) |
         (static_cast<std::uint64_t>(s.namePtr & 0xffu) << 48) |
         (s.k & kBstKMask);
}

inline constexpr BstState unpackBst(LeaderStateId id) {
  BstState s;
  s.n = static_cast<std::uint32_t>((id >> 56) & 0xffu);
  s.namePtr = static_cast<std::uint32_t>((id >> 48) & 0xffu);
  s.k = id & kBstKMask;
  return s;
}

}  // namespace ppn
