// The shared BST body of Protocols 1-3 (lines 1-9 of Protocol 1 in the
// paper): the leader successively guesses the population size n, naming
// 0-state agents along the U* sequence via the pointer k, and bumping the
// guess whenever the pointer overruns l_n = 2^n - 1 or it meets a name larger
// than the current guess.
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/types.h"
#include "naming/bst_state.h"
#include "naming/ustar.h"

namespace ppn {

struct CountingCoreParams {
  /// The body is active while n < nLimit (Protocols 1 and 3 use nLimit = P,
  /// Protocol 2 uses nLimit = P+1, i.e. the paper's "n <= P").
  std::uint32_t nLimit = 0;
  /// Saturation bound for k (the declared range: 2^(P-1) for Protocols 1/3,
  /// 2^P for Protocol 2 — clamped to the 48-bit field for very large P, which
  /// simulations can never reach anyway).
  std::uint64_t kMax = 0;
  /// Largest assignable name: P-1 for Protocols 1/3, P for Protocol 2. Only
  /// the single boundary index k = kMax can exceed it; see NOTE below.
  StateId nameCap = 0;
};

/// Computes the k saturation bound min(2^exponent, 48-bit field max).
inline std::uint64_t kBoundForExponent(std::uint32_t exponent) {
  if (exponent >= 48) return kBstKMask;
  return std::uint64_t{1} << exponent;
}

/// Applies the counting body to (bst, name) in place. Returns true when the
/// guard of line 2 held (the interaction was consumed by the counting body).
//
// NOTE on the boundary index: the paper's U* has length 2^n_max - 1 but the
// pseudo-code can, exactly once, step k to 2^n_max (when the final guess
// increment happens). The ruler value there would be n_max + 1, one past the
// name domain; we cap it at `nameCap`. This only matters (a) at the final
// N = P step of the counting protocol, where names are no longer claimed
// distinct, and (b) transiently before Protocol 2's self-stabilizing reset —
// in both cases any in-domain value is correct, and capping keeps the
// transition function total over the declared state space.
inline bool countingBody(BstState& bst, StateId& name,
                         const CountingCoreParams& params) {
  if (bst.n >= params.nLimit || (name != 0 && name <= bst.n)) {
    return false;
  }
  const std::uint64_t ln =
      (bst.n >= 63) ? ~std::uint64_t{0} : ((std::uint64_t{1} << bst.n) - 1);
  if (name == 0) {
    bst.k = std::min(bst.k + 1, params.kMax);
  } else {  // name > n: the population must be larger than n
    bst.k = std::min(ln + 1, params.kMax);
  }
  if (bst.k > ln) {
    bst.n += 1;
  }
  name = std::min(rulerValue(bst.k), params.nameCap);
  return true;
}

}  // namespace ppn
