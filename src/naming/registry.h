// Name-keyed factory over all protocols in this library, so benches, tests
// and examples can be driven by a --protocol flag.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/protocol.h"

namespace ppn {

/// Keys accepted by makeProtocol.
std::vector<std::string> protocolKeys();

/// Creates the protocol `key` with bound P. Throws std::invalid_argument for
/// unknown keys or invalid P. Keys:
///   asymmetric        — Prop 12, P states, no leader, self-stabilizing
///   symmetric-global  — Prop 13, P+1 states, no leader, self-stabilizing
///   leader-uniform    — Prop 14, P states, initialized leader + agents
///   counting          — Protocol 1 of [11] (Theorem 15)
///   selfstab-weak     — Protocol 2 / Prop 16, P+1 states, self-stabilizing
///   global-leader     — Protocol 3 / Prop 17, P states, initialized leader
std::unique_ptr<Protocol> makeProtocol(const std::string& key, StateId p);

/// One-line summary of a protocol's model assumptions (for tables).
std::string protocolAssumptions(const std::string& key);

/// Whether the paper claims the protocol is self-stabilizing (Props 12, 13,
/// 16): it must re-converge from ARBITRARY corruption of the whole
/// configuration, which is what the robustness certification enforces.
/// Throws std::invalid_argument for unknown keys.
bool isSelfStabilizing(const std::string& key);

/// Whether the protocol's correctness claim needs global fairness (Props 13,
/// 17). Under merely weakly fair (deterministic) schedulers these protocols
/// have violating executions, so certification sweeps skip those cells.
/// Throws std::invalid_argument for unknown keys.
bool requiresGlobalFairness(const std::string& key);

}  // namespace ppn
