// Protocol 3 / Proposition 17: symmetric naming with the optimal P states
// per mobile agent, an initialized leader and NON-initialized mobile agents,
// under global fairness. (Under weak fairness this is impossible with P
// states — Theorem 11 — and indeed the weak-fairness checker finds violating
// schedules for this protocol at N = P.)
//
// Construction: Protocol 1, plus a renaming pointer name_ptr used once the
// guess has reached n = P. BST then walks the names upward: meeting an agent
// whose name equals name_ptr increments the pointer; meeting any other agent
// renames it to name_ptr and resets the pointer. Under global fairness the
// walk eventually completes (name_ptr = P) with the agents named 0..P-1.
#pragma once

#include <vector>

#include "core/protocol.h"
#include "naming/bst_state.h"

namespace ppn {

class GlobalLeaderNaming final : public Protocol {
 public:
  explicit GlobalLeaderNaming(StateId p);

  std::string name() const override;
  StateId numMobileStates() const override { return p_; }
  bool hasLeader() const override { return true; }
  bool isSymmetric() const override { return true; }

  MobilePair mobileDelta(StateId initiator, StateId responder) const override;
  LeaderResult leaderDelta(LeaderStateId leader, StateId mobile) const override;

  /// BST initialized: n = k = name_ptr = 0. Mobile agents arbitrary.
  std::optional<LeaderStateId> initialLeaderState() const override {
    return packBst(BstState{});
  }
  std::vector<LeaderStateId> allLeaderStates() const override;
  std::string describeLeaderState(LeaderStateId leader) const override;

  /// For N < P the protocol behaves exactly like Protocol 1 (names 1..N, no
  /// agent keeps 0); for N = P the final names are 0..P-1, so 0 is legal.
  bool isValidName(StateId s) const override {
    (void)s;
    return true;
  }

  std::optional<std::uint64_t> countingAnswer(LeaderStateId leader) const override {
    return unpackBst(leader).n;
  }

  StateId p() const { return p_; }

 private:
  StateId p_;
};

}  // namespace ppn
