// Proposition 14: with an initialized leader AND uniformly initialized
// mobile agents, symmetric naming needs only the trivially optimal P states,
// under weak (hence also global) fairness.
//
// Construction (paper proof, 0-based states here): mobile agents start in the
// reserved state P-1; the leader holds a counter c initialized to 0. When the
// leader meets an agent still in state P-1 and c < P-1, it names the agent c
// and increments c. The P-th agent (if the population is full) keeps P-1 as
// its name. Mobile-mobile interactions are all null, so the protocol is
// trivially symmetric.
#pragma once

#include <vector>

#include "core/protocol.h"

namespace ppn {

class LeaderUniformNaming final : public Protocol {
 public:
  explicit LeaderUniformNaming(StateId p);

  std::string name() const override;
  StateId numMobileStates() const override { return p_; }
  bool hasLeader() const override { return true; }
  bool isSymmetric() const override { return true; }
  MobilePair mobileDelta(StateId initiator, StateId responder) const override;
  LeaderResult leaderDelta(LeaderStateId leader, StateId mobile) const override;

  std::optional<StateId> uniformMobileInit() const override {
    return static_cast<StateId>(p_ - 1);
  }
  std::optional<LeaderStateId> initialLeaderState() const override {
    return LeaderStateId{0};
  }
  std::vector<LeaderStateId> allLeaderStates() const override;
  std::string describeLeaderState(LeaderStateId leader) const override;

  StateId p() const { return p_; }

 private:
  StateId p_;
};

}  // namespace ppn
