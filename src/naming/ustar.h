// The U* naming sequence of Protocols 1-3 (from Beauquier, Burman, Clavière,
// Sohier, "Space-optimal counting in population protocols", DISC 2015 — the
// paper's reference [11]).
//
// Recursive definition: U_1 = (1), U_n = U_{n-1}, n, U_{n-1}. |U_n| = 2^n - 1
// and the k-th element (1-based) is the classical *ruler function*
// ctz(k) + 1, where ctz is the number of trailing zero bits of k. Both forms
// are provided; tests cross-check them.
#pragma once

#include <cstdint>
#include <vector>

namespace ppn {

/// Materializes U_n as a vector of length 2^n - 1 with values in 1..n.
/// Intended for tests and small n; protocols use rulerValue().
std::vector<std::uint32_t> buildUStar(std::uint32_t n);

/// The k-th element of the infinite ruler sequence, k >= 1: ctz(k) + 1.
/// For 1 <= k <= 2^n - 1 this equals U_n[k-1].
std::uint32_t rulerValue(std::uint64_t k);

/// l_n = 2^n - 1 = |U_n| (the paper's shortcut).
constexpr std::uint64_t ustarLength(std::uint32_t n) {
  return (std::uint64_t{1} << n) - 1;
}

}  // namespace ppn
