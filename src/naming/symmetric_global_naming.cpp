#include "naming/symmetric_global_naming.h"

#include <stdexcept>

namespace ppn {

SymmetricGlobalNaming::SymmetricGlobalNaming(StateId p) : p_(p) {
  if (p < 2) {
    throw std::invalid_argument("SymmetricGlobalNaming: P must be >= 2");
  }
}

std::string SymmetricGlobalNaming::name() const {
  return "symmetric-global-naming(P=" + std::to_string(p_) + ")";
}

MobilePair SymmetricGlobalNaming::mobileDelta(StateId initiator,
                                              StateId responder) const {
  const StateId blank = p_;
  if (initiator == blank && responder == blank) {
    return MobilePair{1, 1};  // rule 3
  }
  if (initiator == responder) {
    return MobilePair{blank, blank};  // rule 2 (s != P homonyms)
  }
  if (responder == blank) {
    // rule 1: (s, P) -> (s, s+1 mod P)
    return MobilePair{initiator, static_cast<StateId>((initiator + 1) % p_)};
  }
  if (initiator == blank) {
    // symmetric counterpart of rule 1: (P, s) -> (s+1 mod P, s)
    return MobilePair{static_cast<StateId>((responder + 1) % p_), responder};
  }
  return MobilePair{initiator, responder};
}

}  // namespace ppn
